(* Graph analytics across coherence configurations.

     dune exec examples/graph_analytics.exe

   Runs the BC (betweenness-centrality-style push) and PR (PageRank-style
   pull) workloads on every Table V configuration and prints the comparison
   the paper's Figure 3 makes: DeNovo GPU caches exploit the temporal
   locality of BC's atomic updates, while PR mostly rewards the flat LLC. *)

module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Report = Spandex_system.Report
module Registry = Spandex_workloads.Registry

let () =
  let params = Params.bench in
  let geom = Registry.geometry_of_params params in
  List.iter
    (fun name ->
      let entry = Registry.find name in
      let wl = entry.Registry.build ~scale:0.5 geom in
      let cells =
        List.map
          (fun config ->
            let result = Run.simulate ~params ~config wl in
            Run.assert_clean result;
            { Report.config = config.Config.name; result })
          Config.all
      in
      let row = { Report.workload = name; cells } in
      Printf.printf "%s  (normalized to HMG)\n" (String.uppercase_ascii name);
      Printf.printf "  %-8s %8s %8s\n" "config" "time" "traffic";
      List.iter2
        (fun (c, t) (_, f) -> Printf.printf "  %-8s %8.2f %8.2f\n" c t f)
        (Report.normalized row ~metric:Report.cycles)
        (Report.normalized row ~metric:Report.flits);
      let sb = Report.best row ~among:(fun n -> n.[0] = 'S') ~metric:Report.cycles in
      let hb = Report.best row ~among:(fun n -> n.[0] = 'H') ~metric:Report.cycles in
      Printf.printf "  best Spandex %s vs best hierarchical %s: %.0f%% faster\n\n"
        sb.Report.config hb.Report.config
        (100.0
        *. (1.0
           -. float_of_int sb.Report.result.Run.cycles
              /. float_of_int hb.Report.result.Run.cycles)))
    [ "bc"; "pr" ]
