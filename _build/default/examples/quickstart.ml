(* Quickstart: build a workload, run it on a Spandex system, read results.

     dune exec examples/quickstart.exe

   A CPU thread produces an array; after a barrier, a GPU warp sums it and
   publishes the total; the CPU verifies.  The same program runs unchanged
   on all six cache configurations of the paper's Table V. *)

module Addr = Spandex_proto.Addr
module Ops = Spandex_device.Ops
module Config = Spandex_system.Config
module Run = Spandex_system.Run
module Workload = Spandex_system.Workload

let () =
  let n = 64 in
  let data i = Addr.line_of_word_index i in
  let total_addr = Addr.line_of_word_index 1000 in
  let expected_total = (n * (n - 1) / 2) + (n * 7) in
  (* CPU: produce, wait, verify the GPU's published total. *)
  let cpu_program =
    Array.concat
      [
        Array.init n (fun i -> Ops.Store (data i, i + 7));
        [| Ops.Barrier 0; Ops.Barrier 1; Ops.Check (total_addr, expected_total) |];
      ]
  in
  (* GPU warp: wait, read + sum (as Checks, so the run self-verifies),
     publish. *)
  let gpu_program =
    Array.concat
      [
        [| Ops.Barrier 0 |];
        Array.init n (fun i -> Ops.Check (data i, i + 7));
        [| Ops.Store (total_addr, expected_total); Ops.Barrier 1 |];
      ]
  in
  let workload =
    {
      Workload.name = "quickstart";
      cpu_programs = [| cpu_program |];
      gpu_programs = [| [| gpu_program |] |];
      barrier_parties = [| 2; 2 |];
      region_of = (fun _ -> 0);
    }
  in
  Printf.printf "%-5s %10s %10s %8s\n" "cfg" "cycles" "flits" "checks";
  List.iter
    (fun config ->
      let r = Run.simulate ~config workload in
      Run.assert_clean r;
      Printf.printf "%-5s %10d %10d %8d\n" config.Config.name r.Run.cycles
        r.Run.total_flits r.Run.checks)
    Config.all;
  print_endline "all configurations produced and verified the same data."
