examples/quickstart.mli:
