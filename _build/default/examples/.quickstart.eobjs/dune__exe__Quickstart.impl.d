examples/quickstart.ml: Array List Printf Spandex_device Spandex_proto Spandex_system
