examples/graph_analytics.ml: List Printf Spandex_system Spandex_workloads String
