(** Globally unique transaction identifiers.

    Responses echo the transaction id of the request they answer; forwarded
    requests preserve the original id so the remote owner's direct response
    reaches the right MSHR entry.  A single process-wide counter keeps ids
    unique across every device without coordination. *)

val fresh : unit -> int

val reset : unit -> unit
(** Reset the counter (between independent simulations, for
    reproducibility of logged ids; correctness never depends on it). *)
