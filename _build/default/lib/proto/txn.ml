let counter = ref 0

let fresh () =
  incr counter;
  !counter

let reset () = counter := 0
