(** Atomic read-modify-write operations.

    Carried by [ReqWT+data] requests when the update is performed remotely
    at the LLC (paper §III-A: "this request must specify the required update
    operation"), and executed locally by ownership-based caches. *)

type t =
  | Read  (** atomic load: returns the current value, writes it back. *)
  | Exch of int  (** atomic exchange. *)
  | Add of int  (** fetch-and-add. *)
  | Max of int  (** fetch-and-max. *)
  | Cas of { expected : int; desired : int }  (** compare-and-swap. *)

val apply : t -> int -> int * int
(** [apply op old] is [(new_value, returned_value)]; the returned value is
    the pre-update value (paper: the RspWT+data response "carries the value
    of the data before the update"). *)

val pp : Format.formatter -> t -> unit
