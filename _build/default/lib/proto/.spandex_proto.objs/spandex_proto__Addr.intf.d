lib/proto/addr.mli: Format Spandex_util
