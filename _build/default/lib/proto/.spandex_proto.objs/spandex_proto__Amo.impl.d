lib/proto/amo.ml: Format
