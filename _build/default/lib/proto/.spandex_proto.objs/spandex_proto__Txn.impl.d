lib/proto/txn.ml:
