lib/proto/msg.mli: Amo Format Spandex_util
