lib/proto/linedata.ml: Addr Array Spandex_util
