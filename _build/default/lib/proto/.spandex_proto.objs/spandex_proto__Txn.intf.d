lib/proto/txn.mli:
