lib/proto/msg.ml: Addr Amo Array Format List Printf Spandex_util String
