lib/proto/linedata.mli: Spandex_util
