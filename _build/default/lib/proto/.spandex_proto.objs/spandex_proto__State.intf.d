lib/proto/state.mli: Format
