lib/proto/addr.ml: Format Int Spandex_util
