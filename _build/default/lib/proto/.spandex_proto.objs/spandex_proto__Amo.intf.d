lib/proto/amo.mli: Format
