lib/proto/state.ml: Format
