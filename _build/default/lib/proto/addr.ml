let line_bytes = 64
let word_bytes = 4
let words_per_line = line_bytes / word_bytes

type t = { line : int; word : int }

let make ~line ~word =
  assert (word >= 0 && word < words_per_line);
  assert (line >= 0);
  { line; word }

let of_byte b = { line = b / line_bytes; word = b mod line_bytes / word_bytes }
let to_byte { line; word } = (line * line_bytes) + (word * word_bytes)
let equal a b = a.line = b.line && a.word = b.word

let compare a b =
  match Int.compare a.line b.line with
  | 0 -> Int.compare a.word b.word
  | c -> c

let pp fmt { line; word } = Format.fprintf fmt "%d.%d" line word

let line_of_word_index i =
  { line = i / words_per_line; word = i mod words_per_line }

let full_mask = Spandex_util.Mask.full ~words:words_per_line
