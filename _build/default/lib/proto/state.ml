type device = I | V | O | S
type mesi = M_I | M_S | M_E | M_M
type llc_line = L_I | L_V | L_S

let device_of_mesi = function M_I -> I | M_S -> S | M_E -> O | M_M -> O
let device_readable = function V | O | S -> true | I -> false
let device_writable = function O -> true | I | V | S -> false
let device_to_string = function I -> "I" | V -> "V" | O -> "O" | S -> "S"

let mesi_to_string = function
  | M_I -> "I"
  | M_S -> "S"
  | M_E -> "E"
  | M_M -> "M"

let llc_line_to_string = function L_I -> "I" | L_V -> "V" | L_S -> "S"
let pp_device fmt s = Format.pp_print_string fmt (device_to_string s)
let pp_mesi fmt s = Format.pp_print_string fmt (mesi_to_string s)
let pp_llc_line fmt s = Format.pp_print_string fmt (llc_line_to_string s)
