type t =
  | Read
  | Exch of int
  | Add of int
  | Max of int
  | Cas of { expected : int; desired : int }

let apply op old =
  match op with
  | Read -> (old, old)
  | Exch v -> (v, old)
  | Add v -> (old + v, old)
  | Max v -> ((if v > old then v else old), old)
  | Cas { expected; desired } ->
    if old = expected then (desired, old) else (old, old)

let pp fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Exch v -> Format.fprintf fmt "exch(%d)" v
  | Add v -> Format.fprintf fmt "add(%d)" v
  | Max v -> Format.fprintf fmt "max(%d)" v
  | Cas { expected; desired } -> Format.fprintf fmt "cas(%d,%d)" expected desired
