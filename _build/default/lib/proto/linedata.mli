(** Helpers for the mask-relative value arrays carried in message payloads.

    A payload [Data values] lists one value per set bit of the mask, in
    increasing word order.  These helpers convert between that packed form
    and full [words_per_line]-sized arrays, and extract/merge sub-masks. *)

val pack : mask:Spandex_util.Mask.t -> full:int array -> int array
(** Select the masked words of a full line array into packed order. *)

val unpack_into : mask:Spandex_util.Mask.t -> values:int array -> full:int array -> unit
(** Scatter packed [values] into a full line array at the masked positions. *)

val iter : mask:Spandex_util.Mask.t -> values:int array -> f:(word:int -> value:int -> unit) -> unit

val extract : mask:Spandex_util.Mask.t -> values:int array -> sub:Spandex_util.Mask.t -> int array
(** Packed values for [sub], which must be a subset of [mask]. *)

val value_at : mask:Spandex_util.Mask.t -> values:int array -> word:int -> int
(** The value carried for [word], which must be in [mask]. *)

val init_word : line:int -> word:int -> int
(** Deterministic initial memory contents, so tests can predict the value
    of never-written words. *)

val fresh_line : line:int -> int array
(** A full line of initial memory contents. *)
