(** Coherence states.

    Spandex supports four stable states at any attached device (paper
    §III-A) and the same four at the LLC (§III-B); internal MESI states map
    onto them (Table I / §III-D). *)

type device = I | V | O | S
(** Invalid / Valid (self-invalidated) / Owned / Shared
    (writer-invalidated). *)

type mesi = M_I | M_S | M_E | M_M
(** Internal states of a MESI line-granularity cache. *)

type llc_line = L_I | L_V | L_S
(** Line-level LLC state; ownership is tracked separately per word. *)

val device_of_mesi : mesi -> device
(** The §III-D mapping: I->I, S->S, E and M -> O. *)

val device_readable : device -> bool
(** A read hits without a request in V, O, or S. *)

val device_writable : device -> bool
(** A write hits without a request only in O. *)

val pp_device : Format.formatter -> device -> unit
val pp_mesi : Format.formatter -> mesi -> unit
val pp_llc_line : Format.formatter -> llc_line -> unit
val device_to_string : device -> string
val mesi_to_string : mesi -> string
val llc_line_to_string : llc_line -> string
