(** Address geometry.

    The whole system uses 64-byte cache lines divided into 16 four-byte
    words (paper §III: state and communication at word or line
    granularity).  Addresses are abstracted to a (line, word) pair; byte
    offsets inside a word never matter to the protocols. *)

val line_bytes : int (* 64 *)
val word_bytes : int (* 4 *)
val words_per_line : int (* 16 *)

type t = { line : int; word : int }
(** [line] is the cache-line number, [word] is the word index within it. *)

val make : line:int -> word:int -> t
(** Validates [0 <= word < words_per_line]. *)

val of_byte : int -> t
(** Split a byte address. *)

val to_byte : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val line_of_word_index : int -> t
(** Treat a flat word index (as used by array-shaped workloads) as an
    address: word index [i] lives in line [i / words_per_line]. *)

val full_mask : Spandex_util.Mask.t
(** Mask covering every word of a line. *)
