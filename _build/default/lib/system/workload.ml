module Ops = Spandex_device.Ops

type t = {
  name : string;
  cpu_programs : Ops.t array array;
  gpu_programs : Ops.t array array array;
  barrier_parties : int array;
  region_of : int -> int;
}

let total_ops t =
  let cpu = Array.fold_left (fun acc p -> acc + Array.length p) 0 t.cpu_programs in
  let gpu =
    Array.fold_left
      (fun acc cu ->
        Array.fold_left (fun acc p -> acc + Array.length p) acc cu)
      0 t.gpu_programs
  in
  cpu + gpu

let validate t =
  let check_program p =
    Array.iter
      (function
        | Ops.Barrier b | Ops.Barrier_region (b, _) ->
          if b < 0 || b >= Array.length t.barrier_parties then
            invalid_arg
              (Printf.sprintf "workload %s: barrier id %d out of range" t.name b)
        | _ -> ())
      p
  in
  Array.iter check_program t.cpu_programs;
  Array.iter (fun cu -> Array.iter check_program cu) t.gpu_programs
