(** A runnable workload: one program per CPU core and per GPU warp, plus the
    barrier table the programs reference.  Produced by the generators in
    [spandex_workloads]. *)

type t = {
  name : string;
  cpu_programs : Spandex_device.Ops.t array array;
      (** indexed by CPU core; may be shorter than the configured core
          count (extra cores idle). *)
  gpu_programs : Spandex_device.Ops.t array array array;
      (** indexed by CU, then warp. *)
  barrier_parties : int array;
      (** parties for each barrier id used in the programs. *)
  region_of : int -> int;
      (** software region classification by line, consumed by
          region-selective acquires (paper II-C); [fun _ -> 0] when the
          workload does not use regions. *)
}

val total_ops : t -> int

val validate : t -> unit
(** Checks every barrier id is in range; raises [Invalid_argument]. *)
