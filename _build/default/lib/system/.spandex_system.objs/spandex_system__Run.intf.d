lib/system/run.mli: Config Params Spandex_device Spandex_proto Spandex_util Workload
