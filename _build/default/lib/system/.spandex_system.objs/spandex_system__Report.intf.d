lib/system/report.mli: Run Spandex_proto
