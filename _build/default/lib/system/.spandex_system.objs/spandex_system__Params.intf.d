lib/system/params.mli: Format Spandex
