lib/system/config.mli:
