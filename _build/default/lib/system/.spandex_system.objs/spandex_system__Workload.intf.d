lib/system/workload.mli: Spandex_device
