lib/system/workload.ml: Array Printf Spandex_device
