lib/system/params.ml: Format Spandex
