lib/system/report.ml: List Run String
