lib/system/config.ml: List Printf String
