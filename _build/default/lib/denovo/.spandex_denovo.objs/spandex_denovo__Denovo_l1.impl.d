lib/denovo/denovo_l1.ml: Array Format Hashtbl List Option Printf Spandex Spandex_device Spandex_mem Spandex_net Spandex_proto Spandex_sim Spandex_util
