lib/denovo/denovo_l1.mli: Spandex_device Spandex_net Spandex_proto Spandex_sim Spandex_util
