(** Discrete-event simulation engine.

    A single global event queue ordered by (cycle, insertion order).  All
    simulated components schedule closures; the engine advances time to the
    next event.  Determinism: for a fixed seed and workload the event order
    is identical across runs. *)

type t

exception Deadlock of string
(** Raised by [run] when the queue drains while some registered completion
    condition is still unmet — a lost message or a protocol deadlock. *)

val create : unit -> t

val now : t -> int
(** Current simulation cycle. *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at cycle [now t + delay]. [delay >= 0]. *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Schedule at an absolute cycle, which must not be in the past. *)

val run : t -> until_done:(unit -> bool) -> pending_desc:(unit -> string) -> int
(** Drain events until [until_done ()] is true; returns the finish cycle.
    Raises {!Deadlock} (with [pending_desc ()] in the message) if the queue
    empties first.  A step limit guards against livelock. *)

val run_all : t -> int
(** Drain every queued event and return the final cycle.  For unit tests
    that drive components directly and then inspect the settled state. *)

val set_step_limit : t -> int -> unit
(** Override the default step limit (events processed) of [run]. *)

val events_processed : t -> int
