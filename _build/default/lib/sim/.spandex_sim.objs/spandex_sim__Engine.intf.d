lib/sim/engine.mli:
