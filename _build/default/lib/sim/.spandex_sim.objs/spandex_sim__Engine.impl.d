lib/sim/engine.ml: Printf Spandex_util
