type t = {
  queue : (unit -> unit) Spandex_util.Pqueue.t;
  mutable time : int;
  mutable steps : int;
  mutable step_limit : int;
}

exception Deadlock of string

let create () =
  {
    queue = Spandex_util.Pqueue.create ();
    time = 0;
    steps = 0;
    step_limit = 500_000_000;
  }

let now t = t.time

let at t ~time f =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.at: time %d is in the past (now %d)" time t.time);
  Spandex_util.Pqueue.push t.queue ~time f

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  at t ~time:(t.time + delay) f

let run_all t =
  let rec loop () =
    match Spandex_util.Pqueue.pop t.queue with
    | None -> t.time
    | Some (time, f) ->
      t.time <- time;
      t.steps <- t.steps + 1;
      f ();
      loop ()
  in
  loop ()

let set_step_limit t n = t.step_limit <- n
let events_processed t = t.steps

let run t ~until_done ~pending_desc =
  let rec loop () =
    if until_done () then t.time
    else
      match Spandex_util.Pqueue.pop t.queue with
      | None -> raise (Deadlock (pending_desc ()))
      | Some (time, f) ->
        t.time <- time;
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then
          raise
            (Deadlock
               (Printf.sprintf "step limit %d exceeded at cycle %d: %s"
                  t.step_limit t.time (pending_desc ())));
        f ();
        loop ()
  in
  loop ()
