type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 32

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t name r;
    r

let add t name n = cell t name := !(cell t name) + n
let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let set_max t name n =
  let r = cell t name in
  if n > !r then r := n

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let merge_into ~dst ~prefix src =
  Hashtbl.iter (fun k r -> add dst (prefix ^ "." ^ k) !r) src

let to_assoc t = List.map (fun k -> (k, get t k)) (names t)

let pp fmt t =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s = %d@." k v) (to_assoc t)
