type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64: Steele, Lea, Flood 2014. *)
let bits64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t =
  let seed = Int64.to_int (bits64 t) in
  { state = Int64.of_int seed }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (bits64 t) land max_int in
  r mod bound

let int_in t ~lo ~hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let geometric t ~p =
  assert (p > 0.0 && p <= 1.0);
  let rec loop n = if float t 1.0 < p then n else loop (n + 1) in
  loop 0
