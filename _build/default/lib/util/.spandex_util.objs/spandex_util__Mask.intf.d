lib/util/mask.mli: Format
