lib/util/mask.ml: Format Int List Sys
