lib/util/rng.mli:
