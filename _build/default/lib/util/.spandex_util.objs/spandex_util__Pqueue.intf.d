lib/util/pqueue.mli:
