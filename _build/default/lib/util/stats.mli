(** Named counters and scalar statistics.

    Every simulated component owns a [Stats.t] scoped with a prefix; the
    system run collects them into report rows. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Add 1 to a named counter, creating it at 0 if absent. *)

val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 when the counter was never touched. *)

val set_max : t -> string -> int -> unit
(** Keep the running maximum under the given name. *)

val names : t -> string list
(** Sorted list of counters that have been touched. *)

val merge_into : dst:t -> prefix:string -> t -> unit
(** Fold [src] counters into [dst] with [prefix ^ "."] prepended. *)

val to_assoc : t -> (string * int) list
val pp : Format.formatter -> t -> unit
