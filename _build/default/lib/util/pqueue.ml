type 'a entry = { time : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy = Obj.magic 0

let create () = { heap = Array.make 16 dummy; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let push t ~time value =
  if t.size = Array.length t.heap then grow t;
  let entry = { time; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less entry t.heap.(parent) then begin
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let min = t.heap.(0) in
    t.size <- t.size - 1;
    let last = t.heap.(t.size) in
    t.heap.(t.size) <- dummy;
    if t.size > 0 then begin
      t.heap.(0) <- last;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (min.time, min.value)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let clear t =
  for i = 0 to t.size - 1 do
    t.heap.(i) <- dummy
  done;
  t.size <- 0
