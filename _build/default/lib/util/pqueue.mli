(** Binary-heap priority queue keyed by [(time, sequence)].

    The event engine needs stable FIFO ordering among events scheduled for
    the same cycle, so each push records a monotonically increasing sequence
    number and ties are broken by it. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Insert with key [time]; FIFO among equal times. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-time element, or [None] when empty. *)

val peek_time : 'a t -> int option
(** Time of the minimum element without removing it. *)

val clear : 'a t -> unit
