(** Deterministic pseudo-random number generation.

    All randomness in the simulator and in workload generation flows through
    this splitmix64 generator so that every experiment is reproducible from
    a seed.  The global [Random] module is never used. *)

type t

val create : seed:int -> t
(** [create ~seed] makes an independent generator. Two generators created
    with the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t].
    Used to give each thread/warp its own stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] counts Bernoulli(p) failures before the first success;
    used for reuse-distance and burst-length generation. *)
