module Engine = Spandex_sim.Engine
module Linedata = Spandex_proto.Linedata

type t = {
  engine : Engine.t;
  latency : int;
  service_interval : int;
  lines : (int, int array) Hashtbl.t;
  mutable next_free : int;
  mutable reads : int;
  mutable writes : int;
}

let create engine ~latency ~service_interval =
  {
    engine;
    latency;
    service_interval;
    lines = Hashtbl.create 4096;
    next_free = 0;
    reads = 0;
    writes = 0;
  }

let backing t line =
  match Hashtbl.find_opt t.lines line with
  | Some a -> a
  | None ->
    let a = Linedata.fresh_line ~line in
    Hashtbl.add t.lines line a;
    a

let read_line t ~line ~k =
  t.reads <- t.reads + 1;
  let now = Engine.now t.engine in
  let start = if t.next_free > now then t.next_free else now in
  t.next_free <- start + t.service_interval;
  Engine.at t.engine ~time:(start + t.latency) (fun () ->
      k (Array.copy (backing t line)))

let write_words t ~line ~mask ~values =
  t.writes <- t.writes + 1;
  Linedata.unpack_into ~mask ~values ~full:(backing t line)

let peek_word t { Spandex_proto.Addr.line; word } = (backing t line).(word)
let reads t = t.reads
let writes t = t.writes
