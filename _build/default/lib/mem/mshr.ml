type 'a t = { capacity : int; entries : (int, 'a) Hashtbl.t }

let create ~capacity =
  assert (capacity > 0);
  { capacity; entries = Hashtbl.create capacity }

let is_full t = Hashtbl.length t.entries >= t.capacity
let count t = Hashtbl.length t.entries
let capacity t = t.capacity

let alloc t v =
  if is_full t then None
  else begin
    let txn = Spandex_proto.Txn.fresh () in
    Hashtbl.add t.entries txn v;
    Some txn
  end

let find t ~txn = Hashtbl.find_opt t.entries txn
let free t ~txn = Hashtbl.remove t.entries txn

let find_first t ~f =
  Hashtbl.fold
    (fun txn v best ->
      if not (f v) then best
      else
        match best with
        | Some (btxn, _) when btxn <= txn -> best
        | _ -> Some (txn, v))
    t.entries None

let iter t ~f = Hashtbl.iter (fun txn v -> f ~txn v) t.entries
