lib/mem/cache_frame.mli:
