lib/mem/dram.ml: Array Hashtbl Spandex_proto Spandex_sim
