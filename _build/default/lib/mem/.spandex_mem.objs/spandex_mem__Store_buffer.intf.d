lib/mem/store_buffer.mli: Spandex_proto Spandex_util
