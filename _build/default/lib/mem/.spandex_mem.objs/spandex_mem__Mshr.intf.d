lib/mem/mshr.mli:
