lib/mem/store_buffer.ml: Array Hashtbl List Spandex_proto Spandex_util
