lib/mem/mshr.ml: Hashtbl Spandex_proto
