lib/mem/cache_frame.ml: Hashtbl List Option Spandex_proto
