lib/mem/dram.mli: Spandex_proto Spandex_sim Spandex_util
