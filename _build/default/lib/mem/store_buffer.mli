(** Coalescing store buffer.

    Pending stores are held per line with a word mask and values; stores to
    a line already buffered coalesce into one entry (paper §II-B/§II-C:
    both GPU coherence and DeNovo coalesce stores to the same line in the
    write buffer).  The owning L1 decides when and how entries are issued
    (write-through vs. ownership). *)

type entry = {
  line : int;
  mutable mask : Spandex_util.Mask.t;
  values : int array;  (** full line array; only masked words are live. *)
}

type t

val create : capacity:int -> t
(** [capacity] is the maximum number of line entries. *)

val push : t -> addr:Spandex_proto.Addr.t -> value:int -> [ `Coalesced | `New | `Full ]
(** Add a store.  [`Full] means no entry exists for the line and the buffer
    is at capacity; the core must stall and retry after a drain. *)

val is_empty : t -> bool
val count : t -> int

val take_oldest : t -> entry option
(** Remove and return the oldest entry (FIFO order of line allocation). *)

val peek_oldest : t -> entry option
(** The oldest entry without removing it. *)

val find : t -> line:int -> entry option
(** Entry for [line] if buffered; used for store-to-load forwarding. *)

val forward : t -> addr:Spandex_proto.Addr.t -> int option
(** Value a load of [addr] must observe from the buffer, if any. *)

val remove : t -> line:int -> unit
val iter : t -> f:(entry -> unit) -> unit
