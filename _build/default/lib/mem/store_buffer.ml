module Mask = Spandex_util.Mask
module Addr = Spandex_proto.Addr

type entry = { line : int; mutable mask : Mask.t; values : int array }

type t = {
  capacity : int;
  table : (int, entry) Hashtbl.t;
  mutable order : int list;  (** line allocation order, oldest first. *)
}

let create ~capacity =
  assert (capacity > 0);
  { capacity; table = Hashtbl.create capacity; order = [] }

let push t ~addr:{ Addr.line; word } ~value =
  match Hashtbl.find_opt t.table line with
  | Some e ->
    e.mask <- Mask.add e.mask word;
    e.values.(word) <- value;
    `Coalesced
  | None ->
    if Hashtbl.length t.table >= t.capacity then `Full
    else begin
      let e =
        { line; mask = Mask.singleton word; values = Array.make Addr.words_per_line 0 }
      in
      e.values.(word) <- value;
      Hashtbl.add t.table line e;
      t.order <- t.order @ [ line ];
      `New
    end

let is_empty t = Hashtbl.length t.table = 0
let count t = Hashtbl.length t.table

let remove t ~line =
  if Hashtbl.mem t.table line then begin
    Hashtbl.remove t.table line;
    t.order <- List.filter (fun l -> l <> line) t.order
  end

let take_oldest t =
  match t.order with
  | [] -> None
  | line :: rest ->
    let e = Hashtbl.find t.table line in
    Hashtbl.remove t.table line;
    t.order <- rest;
    Some e

let peek_oldest t =
  match t.order with
  | [] -> None
  | line :: _ -> Some (Hashtbl.find t.table line)

let find t ~line = Hashtbl.find_opt t.table line

let forward t ~addr:{ Addr.line; word } =
  match Hashtbl.find_opt t.table line with
  | Some e when Mask.mem e.mask word -> Some e.values.(word)
  | Some _ | None -> None

let iter t ~f = List.iter (fun line -> f (Hashtbl.find t.table line)) t.order
