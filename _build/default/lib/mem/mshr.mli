(** Miss status holding registers.

    A capacity-limited table of outstanding transactions, generic over the
    per-miss bookkeeping each protocol needs.  Entries are keyed by the
    transaction id of the request they track. *)

type 'a t

val create : capacity:int -> 'a t

val alloc : 'a t -> 'a -> int option
(** Allocate an entry under a fresh transaction id, or [None] if full. *)

val find : 'a t -> txn:int -> 'a option
val free : 'a t -> txn:int -> unit
val is_full : 'a t -> bool
val count : 'a t -> int
val capacity : 'a t -> int

val find_first : 'a t -> f:('a -> bool) -> (int * 'a) option
(** Entry with the smallest transaction id satisfying [f] — i.e. the oldest
    matching miss. *)

val iter : 'a t -> f:(txn:int -> 'a -> unit) -> unit
