lib/core/backing.ml: Spandex_mem Spandex_proto Spandex_sim
