lib/core/llc.mli: Backing Spandex_net Spandex_proto Spandex_sim Spandex_util
