lib/core/backing.mli: Spandex_mem Spandex_sim
