lib/core/llc.ml: Array Backing Format List Option Printf Spandex_mem Spandex_net Spandex_proto Spandex_sim Spandex_util String Sys
