lib/core/tu.mli: Spandex_proto Spandex_util
