lib/core/tu.ml: Array Spandex_proto Spandex_util
