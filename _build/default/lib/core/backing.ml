module Engine = Spandex_sim.Engine
module Dram = Spandex_mem.Dram
module Addr = Spandex_proto.Addr

type recall_kind = Recall_shared | Recall_excl

type recall_handler =
  line:int -> kind:recall_kind -> k:((int array * bool) option -> unit) -> unit

type t = {
  name : string;
  acquire : line:int -> excl:bool -> k:(int array option -> excl:bool -> unit) -> unit;
  writeback : line:int -> data:int array -> dirty:bool -> k:(unit -> unit) -> unit;
  set_recall_handler : recall_handler -> unit;
  quiescent : unit -> bool;
  describe_pending : unit -> string;
}

let dram engine dram =
  {
    name = "dram";
    acquire =
      (fun ~line ~excl:_ ~k ->
        Dram.read_line dram ~line ~k:(fun data -> k (Some data) ~excl:true));
    writeback =
      (fun ~line ~data ~dirty ~k ->
        if dirty then
          Dram.write_words dram ~line ~mask:Addr.full_mask ~values:data;
        Engine.schedule engine ~delay:0 k);
    set_recall_handler = (fun _ -> ());
    quiescent = (fun () -> true);
    describe_pending = (fun () -> "dram: none");
  }
