(** Backing store behind a Spandex LLC.

    A flat Spandex system backs the LLC with DRAM.  The hierarchical
    baseline's intermediate GPU L2 is the same Spandex engine backed by a
    MESI client port to the directory LLC (DESIGN.md §4); that
    implementation lives in [spandex_mesi] and produces this record. *)

type recall_kind =
  | Recall_shared
      (** the parent wants a read copy: end exclusivity, surrender internal
          ownership, keep a shared copy. *)
  | Recall_excl
      (** the parent wants the line gone: purge sharers and owners and drop
          the line. *)

type recall_handler =
  line:int -> kind:recall_kind -> k:((int array * bool) option -> unit) -> unit
(** Installed by the LLC engine.  [k] receives [Some (data, dirty)] when
    the LLC held the line, [None] when it did not (e.g. an eviction
    write-back crossed the recall in flight). *)

type t = {
  name : string;
  acquire : line:int -> excl:bool -> k:(int array option -> excl:bool -> unit) -> unit;
      (** Obtain permission (and data on a first fetch) for [line].  [k]
          gets the line contents when a fetch occurred, and the exclusivity
          actually granted (which is at least [excl]). *)
  writeback : line:int -> data:int array -> dirty:bool -> k:(unit -> unit) -> unit;
      (** Surrender the line on eviction. *)
  set_recall_handler : recall_handler -> unit;
  quiescent : unit -> bool;
  describe_pending : unit -> string;
}

val dram : Spandex_sim.Engine.t -> Spandex_mem.Dram.t -> t
(** DRAM backing: acquire always grants exclusivity after the memory
    latency; write-backs commit dirty data; recalls never occur. *)
