lib/net/network.mli: Spandex_proto Spandex_sim Spandex_util
