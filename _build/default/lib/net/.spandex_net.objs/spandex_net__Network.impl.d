lib/net/network.ml: Array Format Hashtbl Lazy Option Printf Spandex_proto Spandex_sim Spandex_util String Sys
