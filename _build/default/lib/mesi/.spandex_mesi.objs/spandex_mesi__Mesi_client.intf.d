lib/mesi/mesi_client.mli: Spandex Spandex_net Spandex_proto Spandex_sim Spandex_util
