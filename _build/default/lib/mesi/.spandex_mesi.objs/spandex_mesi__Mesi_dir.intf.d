lib/mesi/mesi_dir.mli: Spandex_mem Spandex_net Spandex_proto Spandex_sim Spandex_util
