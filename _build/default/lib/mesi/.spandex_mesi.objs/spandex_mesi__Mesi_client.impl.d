lib/mesi/mesi_client.ml: Array Format Hashtbl Option Printf Spandex Spandex_mem Spandex_net Spandex_proto Spandex_sim Spandex_util
