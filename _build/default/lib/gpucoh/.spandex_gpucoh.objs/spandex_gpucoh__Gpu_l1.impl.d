lib/gpucoh/gpu_l1.ml: Array Hashtbl List Option Printf Spandex Spandex_device Spandex_mem Spandex_net Spandex_proto Spandex_sim Spandex_util
