(** Cyclic barrier.

    Used by workloads for kernel boundaries and phase separation.  The
    protocol-level cost of a barrier (store-buffer flush, self-invalidation)
    is charged by the core model, which performs Release before arriving and
    Acquire after waking; the barrier object itself only coordinates. *)

type t

val create : Spandex_sim.Engine.t -> parties:int -> t

val arrive : t -> k:(unit -> unit) -> unit
(** Block until all [parties] have arrived in the current generation, then
    release everyone (continuations run on the next cycle) and reset. *)

val waiting : t -> int
val generation : t -> int
