type t = {
  engine : Spandex_sim.Engine.t;
  parties : int;
  mutable waiters : (unit -> unit) list;
  mutable generation : int;
}

let create engine ~parties =
  assert (parties > 0);
  { engine; parties; waiters = []; generation = 0 }

let arrive t ~k =
  t.waiters <- k :: t.waiters;
  if List.length t.waiters = t.parties then begin
    let to_release = List.rev t.waiters in
    t.waiters <- [];
    t.generation <- t.generation + 1;
    List.iter
      (fun k -> Spandex_sim.Engine.schedule t.engine ~delay:1 k)
      to_release
  end

let waiting t = List.length t.waiters
let generation t = t.generation
