(** Accumulates failures of the workloads' [Check] ops.

    A simulation run that produces wrong data is a protocol bug; every
    experiment asserts the log is clean at the end. *)

type failure = {
  core : int;
  addr : Spandex_proto.Addr.t;
  expected : int;
  actual : int;
  cycle : int;
}

type t

val create : unit -> t
val record : t -> failure -> unit
val checks : t -> int
val incr_checks : t -> unit
val failures : t -> failure list
val is_clean : t -> bool
val pp_failure : Format.formatter -> failure -> unit
