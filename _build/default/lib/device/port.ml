type t = {
  load : Spandex_proto.Addr.t -> k:(int -> unit) -> unit;
  store : Spandex_proto.Addr.t -> value:int -> k:(unit -> unit) -> unit;
  rmw : Spandex_proto.Addr.t -> Spandex_proto.Amo.t -> k:(int -> unit) -> unit;
  acquire : k:(unit -> unit) -> unit;
  acquire_region : region:int -> k:(unit -> unit) -> unit;
  release : k:(unit -> unit) -> unit;
  quiescent : unit -> bool;
  describe_pending : unit -> string;
}
