type failure = {
  core : int;
  addr : Spandex_proto.Addr.t;
  expected : int;
  actual : int;
  cycle : int;
}

type t = { mutable checks : int; mutable failures : failure list }

let create () = { checks = 0; failures = [] }
let record t f = t.failures <- f :: t.failures
let checks t = t.checks
let incr_checks t = t.checks <- t.checks + 1
let failures t = List.rev t.failures
let is_clean t = t.failures = []

let pp_failure fmt { core; addr; expected; actual; cycle } =
  Format.fprintf fmt "core %d @%d: %a expected %d, got %d" core cycle
    Spandex_proto.Addr.pp addr expected actual
