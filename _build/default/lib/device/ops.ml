module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo

type t =
  | Load of Addr.t
  | Store of Addr.t * int
  | Rmw of Addr.t * Amo.t
  | Acquire
  | Acquire_region of int
  | Release
  | Barrier of int
  | Barrier_region of int * int
  | Compute of int
  | Check of Addr.t * int

let pp fmt = function
  | Load a -> Format.fprintf fmt "load %a" Addr.pp a
  | Store (a, v) -> Format.fprintf fmt "store %a <- %d" Addr.pp a v
  | Rmw (a, op) -> Format.fprintf fmt "rmw %a %a" Addr.pp a Amo.pp op
  | Acquire -> Format.pp_print_string fmt "acquire"
  | Acquire_region r -> Format.fprintf fmt "acquire region %d" r
  | Release -> Format.pp_print_string fmt "release"
  | Barrier b -> Format.fprintf fmt "barrier %d" b
  | Barrier_region (b, r) -> Format.fprintf fmt "barrier %d (region %d)" b r
  | Compute n -> Format.fprintf fmt "compute %d" n
  | Check (a, v) -> Format.fprintf fmt "check %a = %d" Addr.pp a v

let count p ops = Array.fold_left (fun acc op -> if p op then acc + 1 else acc) 0 ops
let loads = count (function Load _ | Check _ -> true | _ -> false)
let stores = count (function Store _ -> true | _ -> false)
let rmws = count (function Rmw _ -> true | _ -> false)
