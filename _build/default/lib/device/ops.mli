(** Abstract core operations.

    Workload generators compile each benchmark down to per-thread /
    per-warp arrays of these; the protocols only ever observe the memory
    operations and DRF synchronization points (paper §III-E). *)

type t =
  | Load of Spandex_proto.Addr.t
  | Store of Spandex_proto.Addr.t * int
  | Rmw of Spandex_proto.Addr.t * Spandex_proto.Amo.t
      (** atomic read-modify-write; acquire+release semantics. *)
  | Acquire  (** synchronization read side: self-invalidate stale data. *)
  | Acquire_region of int
      (** region-selective acquire (paper II-C: DeNovo regions): only data
          in the named region is potentially stale and self-invalidated;
          protocols without region support fall back to a full acquire. *)
  | Release  (** synchronization write side: drain pending writes. *)
  | Barrier of int
      (** global barrier (index into the workload's barrier table);
          implies Release before arrival and Acquire after wake-up. *)
  | Barrier_region of int * int
      (** [(barrier, region)]: as [Barrier], but the wake-up acquire is
          region-selective — only the named region's data may be stale
          across this synchronization (paper II-C). *)
  | Compute of int  (** busy for [n] core cycles. *)
  | Check of Spandex_proto.Addr.t * int
      (** load and verify the value — the workloads' built-in oracle. *)

val pp : Format.formatter -> t -> unit

val loads : t array -> int
(** Number of Load/Check ops, for workload statistics. *)

val stores : t array -> int
val rmws : t array -> int
