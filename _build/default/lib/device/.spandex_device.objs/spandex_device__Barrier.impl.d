lib/device/barrier.ml: List Spandex_sim
