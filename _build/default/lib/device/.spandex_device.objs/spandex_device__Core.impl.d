lib/device/core.ml: Array Barrier Check_log Format Fun List Ops Port Printf Spandex_sim Spandex_util String
