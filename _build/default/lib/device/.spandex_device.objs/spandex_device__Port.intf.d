lib/device/port.mli: Spandex_proto
