lib/device/ops.ml: Array Format Spandex_proto
