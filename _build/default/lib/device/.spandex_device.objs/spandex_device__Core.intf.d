lib/device/core.mli: Barrier Check_log Ops Port Spandex_sim Spandex_util
