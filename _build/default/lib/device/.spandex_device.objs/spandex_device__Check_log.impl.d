lib/device/check_log.ml: Format List Spandex_proto
