lib/device/check_log.mli: Format Spandex_proto
