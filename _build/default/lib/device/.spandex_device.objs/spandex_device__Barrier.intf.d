lib/device/barrier.mli: Spandex_sim
