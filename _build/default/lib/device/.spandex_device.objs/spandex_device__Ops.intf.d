lib/device/ops.mli: Format Spandex_proto
