lib/device/port.ml: Spandex_proto
