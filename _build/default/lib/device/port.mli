(** The interface every L1 cache presents to its core.

    Each protocol library (MESI, GPU coherence, DeNovo) builds one of these
    records; the core model is protocol-agnostic.  All callbacks fire as
    simulation events — possibly in the same cycle for hits. *)

type t = {
  load : Spandex_proto.Addr.t -> k:(int -> unit) -> unit;
      (** [k] receives the loaded value when it is bound. *)
  store : Spandex_proto.Addr.t -> value:int -> k:(unit -> unit) -> unit;
      (** [k] fires when the store is accepted (buffered or completed);
          the port stalls the caller while the store buffer is full. *)
  rmw : Spandex_proto.Addr.t -> Spandex_proto.Amo.t -> k:(int -> unit) -> unit;
      (** atomic RMW with acquire+release semantics; [k] receives the
          pre-update value. *)
  acquire : k:(unit -> unit) -> unit;
      (** DRF acquire: wait for pending reads, self-invalidate stale data
          (protocols without self-invalidation complete immediately). *)
  acquire_region : region:int -> k:(unit -> unit) -> unit;
      (** region-selective acquire (paper II-C): invalidate only the named
          region's stale data; defaults to a full acquire. *)
  release : k:(unit -> unit) -> unit;
      (** DRF release: complete all buffered/pending writes. *)
  quiescent : unit -> bool;
      (** no outstanding misses or buffered stores. *)
  describe_pending : unit -> string;  (** for deadlock diagnostics. *)
}
