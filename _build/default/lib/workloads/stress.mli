(** Randomized data-race-free workloads for property testing.

    Programs are built as a sequence of phases separated by global
    barriers.  Within a phase every word has at most one writer; reads
    target words whose value was fixed by an earlier phase and are emitted
    as [Check] ops; designated atomic words may be updated by several
    threads (with the accumulated total checked one phase later).  Any
    [Check] failure on any configuration is a protocol bug, so this is an
    executable SC-for-DRF litmus generator. *)

type spec = {
  seed : int;
  phases : int;
  words : int;  (** size of the shared data pool. *)
  writes_per_phase : int;  (** per thread. *)
  reads_per_phase : int;
  atomics_per_phase : int;
  atomic_words : int;  (** size of the atomic-counter pool. *)
  hot_fraction : float;  (** fraction of accesses aimed at a small hot set
                              to force ownership migration and contention. *)
}

val default_spec : spec

val generate :
  spec -> Microbench.geometry -> Spandex_system.Workload.t
