module Rng = Spandex_util.Rng

type t = {
  vertices : int;
  edges : (int * int) array;
  out_edges : int list array;
}

let build vertices edges =
  let out_edges = Array.make vertices [] in
  Array.iter (fun (s, d) -> out_edges.(s) <- d :: out_edges.(s)) edges;
  { vertices; edges; out_edges }

let power_law ~seed ~vertices ~avg_degree =
  let rng = Rng.create ~seed in
  let n_edges = vertices * avg_degree in
  (* Preferential attachment approximated by sampling targets from the
     endpoint list built so far (each prior endpoint is equally likely, so
     high-degree vertices attract more new edges). *)
  let endpoints = Array.make (2 * n_edges) 0 in
  let n_endpoints = ref 0 in
  let target () =
    if !n_endpoints = 0 || Rng.int rng 4 = 0 then Rng.int rng vertices
    else endpoints.(Rng.int rng !n_endpoints)
  in
  let edges =
    Array.init n_edges (fun _ ->
        let s = Rng.int rng vertices in
        let d = target () in
        endpoints.(!n_endpoints) <- s;
        endpoints.(!n_endpoints + 1) <- d;
        n_endpoints := !n_endpoints + 2;
        (s, d))
  in
  build vertices edges

let community ~seed ~vertices ~parts ~avg_degree ~local_frac =
  let rng = Rng.create ~seed in
  let n_edges = vertices * avg_degree in
  let part_range p =
    let base = vertices / parts and extra = vertices mod parts in
    let lo = (p * base) + min p extra in
    (lo, lo + base + (if p < extra then 1 else 0))
  in
  (* Unbalanced work: community p gets weight ~ 1/(1+p mod 7). *)
  let weights = Array.init parts (fun p -> 1.0 /. float_of_int (1 + (p mod 7))) in
  let total_weight = Array.fold_left ( +. ) 0.0 weights in
  let pick_part () =
    let x = ref (Rng.float rng total_weight) in
    let p = ref 0 in
    (try
       for i = 0 to parts - 1 do
         x := !x -. weights.(i);
         if !x <= 0.0 then begin
           p := i;
           raise Exit
         end
       done
     with Exit -> ());
    !p
  in
  (* Per-community endpoint pools give preferential (hub) destinations:
     sampling a prior endpoint weights vertices by their degree so far. *)
  let pools = Array.init parts (fun _ -> (Array.make n_edges 0, ref 0)) in
  let global_pool = (Array.make n_edges 0, ref 0) in
  let pick_pref (pool, count) lo hi =
    if !count > 0 && Rng.int rng 4 > 0 then pool.(Rng.int rng !count)
    else lo + Rng.int rng (max 1 (hi - lo))
  in
  let record (pool, count) d =
    if !count < Array.length pool then begin
      pool.(!count) <- d;
      incr count
    end
  in
  let edges =
    Array.init n_edges (fun _ ->
        let p = pick_part () in
        let lo, hi = part_range p in
        let s = lo + Rng.int rng (max 1 (hi - lo)) in
        let d =
          if Rng.float rng 1.0 < local_frac then pick_pref pools.(p) lo hi
          else pick_pref global_pool 0 vertices
        in
        if d >= lo && d < hi then record pools.(p) d;
        record global_pool d;
        (s, d))
  in
  build vertices edges

let mesh ~seed ~vertices ~avg_degree =
  let rng = Rng.create ~seed in
  let edges =
    Array.init (vertices * avg_degree) (fun i ->
        let s = i mod vertices in
        let d = (s + 1 + Rng.int rng (vertices - 1)) mod vertices in
        (s, d))
  in
  build vertices edges

let in_degree t =
  let deg = Array.make t.vertices 0 in
  Array.iter (fun (_, d) -> deg.(d) <- deg.(d) + 1) t.edges;
  deg
