(** The three synthetic microbenchmarks (paper §IV-B1).

    Each generator takes the thread geometry it should emit for and a
    [scale] factor (1.0 reproduces the bench-harness sizes; tests use
    smaller).  All data-race-free reads are emitted as [Check] ops, so each
    run verifies protocol correctness end to end. *)

type geometry = { cpus : int; cus : int; warps : int }

val indirection : ?scale:float -> geometry -> Spandex_system.Workload.t
(** CPU and GPU take turns transposing a matrix in a loop; strided accesses,
    no L1 reuse.  Highlights the cost of hierarchical indirection. *)

val reuseo : ?scale:float -> geometry -> Spandex_system.Workload.t
(** Each device densely reads and writes its own cache-fitting tile
    (re-used across iterations) and sparsely reads the other device's tile.
    Highlights the benefit of obtaining ownership for updates. *)

val reuses : ?scale:float -> geometry -> Spandex_system.Workload.t
(** Everybody densely reads a shared matrix every iteration; a rotating
    writer sparsely updates a few words between iterations.  Highlights
    writer-initiated invalidation (Shared state reuse). *)

val region_reuse :
  ?scale:float -> ?use_regions:bool -> geometry -> Spandex_system.Workload.t
(** Extension workload for DeNovo regions (paper §II-C): every thread
    densely re-reads a large read-only region each iteration while a small
    shared region carries cross-iteration communication.  With
    [use_regions] (default), synchronization self-invalidates only the
    shared region, preserving the read-only data in self-invalidating
    caches; with [use_regions:false] every barrier flashes everything —
    the cost the paper's region optimization removes. *)

val all : (string * (?scale:float -> geometry -> Spandex_system.Workload.t)) list

val chunk : parts:int -> n:int -> int -> int * int
(** [chunk ~parts ~n i] is the half-open range of the i-th near-equal
    contiguous partition of [0, n); shared by the generators. *)
