(** Name-indexed access to every workload, for the CLI and the bench
    harness.  Geometry defaults to the full Table VI machine. *)

type entry = {
  name : string;
  kind : [ `Micro | `App | `Stress ];
  build : ?scale:float -> Microbench.geometry -> Spandex_system.Workload.t;
}

val entries : entry list
val find : string -> entry
(** Raises [Not_found]. *)

val names : string list
val geometry_of_params : Spandex_system.Params.t -> Microbench.geometry
