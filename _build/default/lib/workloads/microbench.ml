module Ops = Spandex_device.Ops

type geometry = { cpus : int; cus : int; warps : int }

let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))

(* Distribute [0, n) across [parts] as contiguous chunks. *)
let chunk ~parts ~n i =
  let base = n / parts and extra = n mod parts in
  let lo = (i * base) + min i extra in
  let hi = lo + base + (if i < extra then 1 else 0) in
  (lo, hi)

let warp_list g =
  List.concat_map
    (fun cu -> List.init g.warps (fun w -> (cu, w)))
    (List.init g.cus Fun.id)

(* --- Indirection ------------------------------------------------------------ *)

(* CPU threads transpose A into B; GPU warps transpose B back into A;
   repeat.  Reads are strided down columns (one line per access) so there
   is no spatial or temporal L1 reuse; all communication is CPU<->GPU. *)
let indirection ?(scale = 1.0) g =
  (* The matrices must overflow every L1 (paper: "tile size is selected to
     ensure data is not reused from the L1 cache"), so GPU-written data is
     evicted and written back before the CPU touches it. *)
  let n = scaled scale 144 in
  let iters = 2 in
  let alloc = Gen.allocator () in
  let a = Gen.region alloc ~words:(n * n) in
  let b = Gen.region alloc ~words:(n * n) in
  let mem = Gen.mem () in
  let t = Gen.create ~cpus:g.cpus ~cus:g.cus ~warps:g.warps in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let stride =
    let rec find s = if gcd s n = 1 then s else find (s + 2) in
    find 7
  in
  let transpose builder ~src ~dst ~rows =
    let lo, hi = rows in
    for c = 0 to n - 1 do
      (* Column-major reads: consecutive accesses touch different lines. *)
      let c = c * stride mod n in
      for r = lo to hi - 1 do
        let v = Gen.read mem (Gen.addr src ((r * n) + c)) in
        Gen.emit_check builder mem (Gen.addr src ((r * n) + c));
        Gen.emit_store builder mem (Gen.addr dst ((c * n) + r)) v
      done
    done
  in
  let warps = warp_list g in
  for _iter = 1 to iters do
    (* CPU phase: A -> B. *)
    Array.iteri
      (fun i builder -> transpose builder ~src:a ~dst:b ~rows:(chunk ~parts:g.cpus ~n i))
      t.Gen.cpus;
    Gen.global_barrier t;
    (* GPU phase: B -> A. *)
    List.iteri
      (fun i (cu, w) ->
        transpose t.Gen.gpus.(cu).(w) ~src:b ~dst:a
          ~rows:(chunk ~parts:(List.length warps) ~n i))
      warps;
    Gen.global_barrier t
  done;
  Gen.finish t ~name:"indirection"

(* --- ReuseO ------------------------------------------------------------------ *)

(* Dense per-thread tiles written every iteration and re-read the next one
   (ownership exploits this reuse); sparse cross-device reads of the other
   side's tiles. *)
let reuseo ?(scale = 1.0) g =
  (* Tiles are sized to fit in the L1 even with four warps sharing one
     (paper: "tiles are sized to fit in the cache"). *)
  let tile = scaled scale 192 in
  let sparse = scaled scale 24 in
  let iters = 3 in
  let alloc = Gen.allocator () in
  let warps = warp_list g in
  let nw = List.length warps in
  let cpu_tiles = Array.init g.cpus (fun _ -> Gen.region alloc ~words:tile) in
  let gpu_tiles = Array.init nw (fun _ -> Gen.region alloc ~words:tile) in
  let mem = Gen.mem () in
  let t = Gen.create ~cpus:g.cpus ~cus:g.cus ~warps:g.warps in
  let rng = Spandex_util.Rng.create ~seed:0xBEEF in
  for iter = 1 to iters do
    (* Dense read-modify-write of the own tile. *)
    Array.iteri
      (fun i builder ->
        let r = cpu_tiles.(i) in
        for j = 0 to tile - 1 do
          Gen.emit_check builder mem (Gen.addr r j);
          Gen.emit_store builder mem (Gen.addr r j) ((iter * 100000) + (i * 1000) + j)
        done)
      t.Gen.cpus;
    List.iteri
      (fun i (cu, w) ->
        let builder = t.Gen.gpus.(cu).(w) in
        let r = gpu_tiles.(i) in
        for j = 0 to tile - 1 do
          Gen.emit_check builder mem (Gen.addr r j);
          Gen.emit_store builder mem (Gen.addr r j)
            ((iter * 100000) + (7000 + (i * 1000)) + j)
        done)
      warps;
    Gen.global_barrier t;
    (* Sparse reads of the remote side's freshly written tiles. *)
    if nw > 0 then
      Array.iter
        (fun builder ->
          for _ = 1 to sparse do
            let tgt = Spandex_util.Rng.int rng nw in
            let j = Spandex_util.Rng.int rng tile in
            Gen.emit_check builder mem (Gen.addr gpu_tiles.(tgt) j)
          done)
        t.Gen.cpus;
    if g.cpus > 0 then
      List.iter
        (fun (cu, w) ->
          let builder = t.Gen.gpus.(cu).(w) in
          for _ = 1 to sparse do
            let tgt = Spandex_util.Rng.int rng g.cpus in
            let j = Spandex_util.Rng.int rng tile in
            Gen.emit_check builder mem (Gen.addr cpu_tiles.(tgt) j)
          done)
        warps;
    Gen.global_barrier t
  done;
  Gen.finish t ~name:"reuseo"

(* --- ReuseS ------------------------------------------------------------------ *)

(* A shared matrix densely read by everyone each iteration, sparsely
   written by a rotating single writer in between.  Only Shared state can
   carry the dense read data across iterations. *)
let reuses ?(scale = 1.0) g =
  (* The shared matrix fits in an L1, so Shared state can carry the dense
     read data across iterations; CPU and GPU read in alternating phases
     ("take turns"), putting the CPU's reuse on the critical path. *)
  let words = scaled scale 768 in
  let sparse = scaled scale 16 in
  let iters = 3 in
  let alloc = Gen.allocator () in
  let m = Gen.region alloc ~words in
  let mem = Gen.mem () in
  let t = Gen.create ~cpus:g.cpus ~cus:g.cus ~warps:g.warps in
  let warps = warp_list g in
  let rng = Spandex_util.Rng.create ~seed:0xCAFE in
  for iter = 1 to iters do
    (* CPU turn: dense reads. *)
    Array.iter
      (fun builder ->
        for j = 0 to words - 1 do
          Gen.emit_check builder mem (Gen.addr m j)
        done)
      t.Gen.cpus;
    Gen.global_barrier t;
    (* GPU turn: dense reads. *)
    List.iter
      (fun (cu, w) ->
        let builder = t.Gen.gpus.(cu).(w) in
        for j = 0 to words - 1 do
          Gen.emit_check builder mem (Gen.addr m j)
        done)
      warps;
    Gen.global_barrier t;
    (* One rotating writer sparsely updates. *)
    let writer_idx = iter mod (g.cpus + List.length warps) in
    let builder =
      if writer_idx < g.cpus then t.Gen.cpus.(writer_idx)
      else
        let cu, w = List.nth warps (writer_idx - g.cpus) in
        t.Gen.gpus.(cu).(w)
    in
    for _ = 1 to sparse do
      let j = Spandex_util.Rng.int rng words in
      Gen.emit_store builder mem (Gen.addr m j) ((iter * 1_000_000) + j)
    done;
    Gen.global_barrier t
  done;
  Gen.finish t ~name:"reuses"

(* --- Region reuse (extension, paper II-C) ------------------------------------ *)

let region_reuse ?(scale = 1.0) ?(use_regions = true) g =
  (* Each party's read-only block fits its L1 even with four warps sharing
     one (4 x 192 words = 3KB of a 4KB L1), so the only thing standing
     between it and full reuse is the flash self-invalidation at each
     barrier — exactly what regions remove. *)
  let private_words = scaled scale 192 in
  let shared_words = scaled scale 32 in
  let iters = 4 in
  let alloc = Gen.allocator () in
  let warps = warp_list g in
  let parties = g.cpus + List.length warps in
  let privates = Array.init parties (fun _ -> Gen.region alloc ~words:private_words) in
  let shared = Gen.region alloc ~words:shared_words in
  let shared_lo = (Gen.addr shared 0).Spandex_proto.Addr.line in
  let shared_hi = (Gen.addr shared (shared_words - 1)).Spandex_proto.Addr.line in
  (* Region 1 = the communicated buffer; region 0 = everything else. *)
  let region_of line = if line >= shared_lo && line <= shared_hi then 1 else 0 in
  let mem = Gen.mem () in
  let t = Gen.create ~cpus:g.cpus ~cus:g.cus ~warps:g.warps in
  let builders =
    Array.of_list
      (Array.to_list t.Gen.cpus
      @ List.map (fun (cu, w) -> t.Gen.gpus.(cu).(w)) warps)
  in
  let barrier t =
    (* Region-selective barriers need explicit allocation: reuse
       [barrier_among] mechanics through a synthetic op per builder. *)
    let id = List.length t.Gen.barriers in
    t.Gen.barriers <- parties :: t.Gen.barriers;
    Array.iter
      (fun b ->
        Gen.emit b
          (if use_regions then Ops.Barrier_region (id, 1) else Ops.Barrier id))
      builders
  in
  for iter = 1 to iters do
    (* One rotating producer refreshes the shared buffer... *)
    let producer = builders.((iter - 1) mod parties) in
    for j = 0 to shared_words - 1 do
      Gen.emit_store producer mem (Gen.addr shared j) ((iter * 1000) + j)
    done;
    barrier t;
    (* ...then everyone reads it plus their private read-only block, which
       only survives the barrier when the acquire is region-selective. *)
    Array.iteri
      (fun p builder ->
        for j = 0 to shared_words - 1 do
          Gen.emit_check builder mem (Gen.addr shared j)
        done;
        for j = 0 to private_words - 1 do
          Gen.emit_check builder mem (Gen.addr privates.(p) j)
        done)
      builders;
    barrier t
  done;
  Gen.finish ~region_of t ~name:(if use_regions then "regions" else "noregions")

let all =
  [ ("indirection", indirection); ("reuseo", reuseo); ("reuses", reuses) ]
