module Rng = Spandex_util.Rng

type spec = {
  seed : int;
  phases : int;
  words : int;
  writes_per_phase : int;
  reads_per_phase : int;
  atomics_per_phase : int;
  atomic_words : int;
  hot_fraction : float;
}

let default_spec =
  {
    seed = 1;
    phases = 6;
    words = 512;
    writes_per_phase = 24;
    reads_per_phase = 24;
    atomics_per_phase = 8;
    atomic_words = 8;
    hot_fraction = 0.3;
  }

let generate spec (g : Microbench.geometry) =
  let rng = Rng.create ~seed:spec.seed in
  let alloc = Gen.allocator () in
  let data = Gen.region alloc ~words:spec.words in
  let atomics = Gen.region alloc ~words:spec.atomic_words in
  let mem = Gen.mem () in
  let t = Gen.create ~cpus:g.cpus ~cus:g.cus ~warps:g.warps in
  let execs = Apps.executors g t in
  let nexec = Array.length execs in
  let hot = max 1 (spec.words / 16) in
  let pick_word () =
    if Rng.float rng 1.0 < spec.hot_fraction then Rng.int rng hot
    else Rng.int rng spec.words
  in
  (* Track atomic totals separately: their mid-phase values are
     timing-dependent, so they are only checked at phase boundaries. *)
  for phase = 1 to spec.phases do
    (* Pass 1: assign this phase's writers (word -> writer) so reads can be
       kept race-free against EVERY thread's writes, not just earlier ones. *)
    let writer = Hashtbl.create 64 in
    let write_sets =
      Array.init nexec (fun p ->
          let mine = ref [] in
          for _ = 1 to spec.writes_per_phase do
            let w = pick_word () in
            if not (Hashtbl.mem writer w) then begin
              Hashtbl.add writer w p;
              mine := w :: !mine
            end
          done;
          List.rev !mine)
    in
    (* Pass 2: emit the ops. *)
    Array.iteri
      (fun p builder ->
        List.iter
          (fun w ->
            Gen.emit_store builder mem (Gen.addr data w)
              ((phase * 1_000_000) + (p * 1000) + w))
          write_sets.(p);
        (* Reads target words unwritten in this phase: their value was
           fixed by an earlier phase, so the Check is race-free. *)
        for _ = 1 to spec.reads_per_phase do
          let w = pick_word () in
          if not (Hashtbl.mem writer w) then
            Gen.emit_check builder mem (Gen.addr data w)
        done;
        (* Atomics: racy by design; totals audited next phase. *)
        for _ = 1 to spec.atomics_per_phase do
          let a = Rng.int rng spec.atomic_words in
          Gen.emit_rmw_add builder mem (Gen.addr atomics a) (1 + (p mod 3))
        done)
      execs;
    Gen.global_barrier t;
    (* One rotating thread audits the atomic totals. *)
    let auditor = execs.(phase mod nexec) in
    for a = 0 to spec.atomic_words - 1 do
      Gen.emit_check auditor mem (Gen.addr atomics a)
    done;
    Gen.global_barrier t
  done;
  Gen.finish t ~name:(Printf.sprintf "stress-%d" spec.seed)
