module Ops = Spandex_device.Ops
module Amo = Spandex_proto.Amo
module Rng = Spandex_util.Rng

type geometry = Microbench.geometry = { cpus : int; cus : int; warps : int }

let scaled scale n = max 1 (int_of_float (float_of_int n *. scale))
let chunk = Microbench.chunk

let warp_list (g : geometry) =
  List.concat_map
    (fun cu -> List.init g.warps (fun w -> (cu, w)))
    (List.init g.cus Fun.id)

(* All executors (CPU threads then warps), with their builders. *)
let executors (g : geometry) (t : Gen.t) =
  Array.of_list
    (List.init g.cpus (fun i -> t.Gen.cpus.(i))
    @ List.map (fun (cu, w) -> t.Gen.gpus.(cu).(w)) (warp_list g))

(* --- BC ---------------------------------------------------------------------- *)

let bc ?(scale = 1.0) g =
  let vertices = scaled scale 1536 in
  let iters = 2 in
  let alloc = Gen.allocator () in
  let centrality = Gen.region alloc ~words:vertices in
  let mem = Gen.mem () in
  let t = Gen.create ~cpus:g.cpus ~cus:g.cus ~warps:g.warps in
  let execs = executors g t in
  let parts = Array.length execs in
  (* Communities aligned with the vertex partitioning: each thread's atomic
     updates mostly target its own hub vertices (high temporal locality),
     with unbalanced per-partition work (paper §V-B). *)
  let graph =
    Graph.community ~seed:42 ~vertices ~parts ~avg_degree:6 ~local_frac:0.95
  in
  for iter = 1 to iters do
    Array.iteri
      (fun p builder ->
        let lo, hi = chunk ~parts ~n:vertices p in
        for v = lo to hi - 1 do
          (* Push updates to every neighbour; multiple threads may target
             the same (hub) vertex, hence atomics (paper §IV-B2). *)
          List.iter
            (fun d -> Gen.emit_rmw_add builder mem (Gen.addr centrality d) iter)
            graph.Graph.out_edges.(v)
        done)
      execs;
    Gen.global_barrier t
  done;
  (* Verification epilogue, spread across CPU threads and sampled so it
     stays off the measured critical path. *)
  Array.iteri
    (fun i checker ->
      let v = ref i in
      while !v < vertices do
        Gen.emit_check checker mem (Gen.addr centrality !v);
        v := !v + (4 * g.cpus)
      done)
    t.Gen.cpus;
  Gen.finish t ~name:"bc"

(* --- PR ---------------------------------------------------------------------- *)

let pr ?(scale = 1.0) g =
  let vertices = scaled scale 1024 in
  let graph = Graph.mesh ~seed:43 ~vertices ~avg_degree:4 in
  let iters = 2 in
  let alloc = Gen.allocator () in
  let rank = [| Gen.region alloc ~words:vertices; Gen.region alloc ~words:vertices |] in
  let mem = Gen.mem () in
  let t = Gen.create ~cpus:g.cpus ~cus:g.cus ~warps:g.warps in
  let execs = executors g t in
  let parts = Array.length execs in
  for iter = 1 to iters do
    let prev = rank.((iter - 1) mod 2) and cur = rank.(iter mod 2) in
    Array.iteri
      (fun p builder ->
        let lo, hi = chunk ~parts ~n:vertices p in
        for v = lo to hi - 1 do
          (* Pull: read each neighbour's previous rank, write own rank. *)
          let acc = ref 0 in
          List.iter
            (fun d ->
              acc := !acc + Gen.read mem (Gen.addr prev d);
              Gen.emit_check builder mem (Gen.addr prev d))
            graph.Graph.out_edges.(v);
          Gen.emit_store builder mem (Gen.addr cur v) (!acc land 0x3FFFFFFF)
        done)
      execs;
    Gen.global_barrier t
  done;
  Gen.finish t ~name:"pr"

(* --- HSTI -------------------------------------------------------------------- *)

let hsti ?(scale = 1.0) g =
  let block = 128 in
  let blocks = scaled scale 48 in
  let bins = 64 in
  let alloc = Gen.allocator () in
  let input = Gen.region alloc ~words:(block * blocks) in
  let hist = Gen.region alloc ~words:bins in
  let queue = Gen.region alloc ~words:1 in
  let mem = Gen.mem () in
  let t = Gen.create ~cpus:g.cpus ~cus:g.cus ~warps:g.warps in
  let execs = executors g t in
  let parts = Array.length execs in
  (* Blocks are popped from a shared queue: the pop's atomic traffic is
     real, the resulting assignment is modelled statically (round-robin) so
     programs stay branch-free (DESIGN.md §1). *)
  Array.iteri
    (fun p builder ->
      let rec go b =
        if b < blocks then begin
          Gen.emit_rmw_add builder mem (Gen.addr queue 0) 1;
          (* Image data is smooth: runs of neighbouring pixels fall into the
             same (or a nearby) bin, giving the atomic updates the high
             spatial locality Table VII reports for HSTI. *)
          let run = 24 in
          for j = 0 to block - 1 do
            let a = Gen.addr input ((b * block) + j) in
            let base = Gen.read mem (Gen.addr input ((b * block) + (j / run * run))) in
            Gen.emit_check builder mem a;
            Gen.emit_rmw_add builder mem
              (Gen.addr hist ((base + (j mod run / 8)) mod bins))
              1
          done;
          go (b + parts)
        end
      in
      go p)
    execs;
  Gen.global_barrier t;
  let checker = t.Gen.cpus.(0) in
  Gen.emit_check checker mem (Gen.addr queue 0);
  for b = 0 to bins - 1 do
    Gen.emit_check checker mem (Gen.addr hist b)
  done;
  Gen.finish t ~name:"hsti"

(* --- TRNS -------------------------------------------------------------------- *)

let trns ?(scale = 1.0) g =
  let n = scaled scale 48 in
  let alloc = Gen.allocator () in
  let m = Gen.region alloc ~words:(n * n) in
  (* One flag per matrix block, one block per line: the guarding atomics
     have no spatial locality (paper §V-B: "TRNS atomics exhibit low
     spatial locality"). *)
  let nblocks = (n + 7) / 8 in
  let flags = Gen.region alloc ~words:(nblocks * nblocks * Spandex_proto.Addr.words_per_line) in
  let flag bi bj = Gen.addr flags (((bi * nblocks) + bj) * Spandex_proto.Addr.words_per_line) in
  let mem = Gen.mem () in
  let t = Gen.create ~cpus:g.cpus ~cus:g.cus ~warps:g.warps in
  let execs = executors g t in
  let parts = Array.length execs in
  (* All strictly-upper pairs, visited in a scattered order. *)
  let pairs =
    Array.of_list
      (List.concat_map
         (fun i -> List.filter_map (fun j -> if j > i then Some (i, j) else None)
                     (List.init n Fun.id))
         (List.init n Fun.id))
  in
  let rng = Rng.create ~seed:44 in
  Rng.shuffle rng pairs;
  Array.iteri
    (fun p builder ->
      let rec go k =
        if k < Array.length pairs then begin
          let i, j = pairs.(k) in
          let a_ij = Gen.addr m ((i * n) + j) and a_ji = Gen.addr m ((j * n) + i) in
          (* Lock both blocks (statically disjoint, so uncontended, but the
             atomic and fence traffic is that of fine-grain arbitration). *)
          Gen.emit builder (Ops.Rmw (flag (i / 8) (j / 8), Amo.Exch 1));
          Gen.emit builder (Ops.Rmw (flag (j / 8) (i / 8), Amo.Exch 1));
          Gen.emit builder Ops.Acquire;
          let vij = Gen.read mem a_ij and vji = Gen.read mem a_ji in
          Gen.emit_check builder mem a_ij;
          Gen.emit_check builder mem a_ji;
          Gen.emit_store builder mem a_ij vji;
          Gen.emit_store builder mem a_ji vij;
          Gen.emit builder Ops.Release;
          Gen.emit builder (Ops.Rmw (flag (i / 8) (j / 8), Amo.Exch 0));
          Gen.emit builder (Ops.Rmw (flag (j / 8) (i / 8), Amo.Exch 0));
          go (k + parts)
        end
      in
      go p)
    execs;
  Gen.finish t ~name:"trns"

(* --- RSCT -------------------------------------------------------------------- *)

let rsct ?(scale = 1.0) g =
  let window = scaled scale 192 in
  let tasks = 6 in
  let alloc = Gen.allocator () in
  let input = Gen.region alloc ~words:(window * tasks) in
  let params = Gen.region alloc ~words:(16 * tasks) in
  let mem = Gen.mem () in
  let t = Gen.create ~cpus:g.cpus ~cus:g.cus ~warps:g.warps in
  let warps = warp_list g in
  for task = 0 to tasks - 1 do
    (* The CPU produces a small parameter set... *)
    let producer = t.Gen.cpus.(task mod g.cpus) in
    for j = 0 to 15 do
      Gen.emit_store producer mem (Gen.addr params ((task * 16) + j))
        ((task * 1000) + j)
    done;
    (* ...and sparsely samples the input. *)
    for j = 0 to 7 do
      Gen.emit_check producer mem (Gen.addr input ((task * window) + (j * 17) mod window))
    done;
    Gen.global_barrier t;
    (* Every GPU core densely reads the SAME window and the parameters:
       hierarchical sharing (paper Table VII: RSCT sharing = hierarchical,
       data locality high). *)
    List.iter
      (fun (cu, w) ->
        let builder = t.Gen.gpus.(cu).(w) in
        for j = 0 to 15 do
          Gen.emit_check builder mem (Gen.addr params ((task * 16) + j))
        done;
        for j = 0 to window - 1 do
          Gen.emit_check builder mem (Gen.addr input ((task * window) + j))
        done)
      warps;
    Gen.global_barrier t
  done;
  Gen.finish t ~name:"rsct"

(* --- TQH --------------------------------------------------------------------- *)

let tqh ?(scale = 1.0) g =
  let block = scaled scale 96 in
  let rounds = 4 in
  let bins = 32 in
  let nw = List.length (warp_list g) in
  let alloc = Gen.allocator () in
  let input = Gen.region alloc ~words:(block * nw * rounds) in
  let records = Gen.region alloc ~words:(16 * nw * rounds) in
  let tails = Gen.region alloc ~words:g.cus in
  let heads = Gen.region alloc ~words:g.cus in
  let hist = Gen.region alloc ~words:bins in
  let mem = Gen.mem () in
  let t = Gen.create ~cpus:g.cpus ~cus:g.cus ~warps:g.warps in
  let warps = warp_list g in
  for round = 0 to rounds - 1 do
    (* CPU threads push one task record per warp and bump the tails. *)
    List.iteri
      (fun i (cu, _) ->
        let task = (round * nw) + i in
        let producer = t.Gen.cpus.(i mod g.cpus) in
        for j = 0 to 15 do
          Gen.emit_store producer mem (Gen.addr records ((task * 16) + j))
            ((task * 100) + j)
        done;
        Gen.emit_rmw_add producer mem (Gen.addr tails cu) 1)
      warps;
    Gen.global_barrier t;
    (* Each warp pops and processes a PRIVATE input partition (hierarchical
       sharing is minimal, Table VII), updating a shared histogram. *)
    List.iteri
      (fun i (cu, w) ->
        let builder = t.Gen.gpus.(cu).(w) in
        let task = (round * nw) + i in
        Gen.emit_rmw_add builder mem (Gen.addr heads cu) 1;
        for j = 0 to 15 do
          Gen.emit_check builder mem (Gen.addr records ((task * 16) + j))
        done;
        for j = 0 to block - 1 do
          let a = Gen.addr input ((task * block) + j) in
          let v = Gen.read mem a in
          Gen.emit_check builder mem a;
          if j mod 4 = 0 then
            Gen.emit_rmw_add builder mem (Gen.addr hist (v mod bins)) 1
        done)
      warps;
    Gen.global_barrier t
  done;
  let checker = t.Gen.cpus.(0) in
  for b = 0 to bins - 1 do
    Gen.emit_check checker mem (Gen.addr hist b)
  done;
  Gen.finish t ~name:"tqh"

let all =
  [
    ("bc", bc);
    ("pr", pr);
    ("hsti", hsti);
    ("trns", trns);
    ("rsct", rsct);
    ("tqh", tqh);
  ]
