(** Workload-construction utilities.

    Generators build per-thread op arrays while tracking the expected value
    of every word (initial contents follow
    {!Spandex_proto.Linedata.init_word}), so data-race-free reads can be
    emitted as [Check] ops — every experiment doubles as a coherence test. *)

type region
(** A contiguous range of words, line-aligned and disjoint from every other
    region of the same allocator. *)

type alloc

val allocator : unit -> alloc
val region : alloc -> words:int -> region
val addr : region -> int -> Spandex_proto.Addr.t
(** [addr r i] is the i-th word of the region; bounds-checked. *)

val size : region -> int

(** {2 Expected-value tracking} *)

type mem

val mem : unit -> mem
val read : mem -> Spandex_proto.Addr.t -> int
(** Current expected value (initial memory contents if never written). *)

val write : mem -> Spandex_proto.Addr.t -> int -> unit

val add : mem -> Spandex_proto.Addr.t -> int -> int
(** Fetch-and-add on the expectation; returns the new value. *)

(** {2 Program builders} *)

type builder

val builder : unit -> builder
val emit : builder -> Spandex_device.Ops.t -> unit
val emit_store : builder -> mem -> Spandex_proto.Addr.t -> int -> unit
(** Emit a store and record the expectation. *)

val emit_check : builder -> mem -> Spandex_proto.Addr.t -> unit
(** Emit a Check against the current expected value. *)

val emit_load : builder -> Spandex_proto.Addr.t -> unit
val emit_rmw_add : builder -> mem -> Spandex_proto.Addr.t -> int -> unit
(** Emit an atomic add and track it. *)

val ops : builder -> Spandex_device.Ops.t array

(** {2 Whole-workload assembly} *)

type t = {
  cpus : builder array;
  gpus : builder array array;  (** per CU, per warp. *)
  mutable barriers : int list;  (** parties per allocated barrier, reversed. *)
}

val create : cpus:int -> cus:int -> warps:int -> t

val global_barrier : t -> unit
(** Emit a barrier joining every CPU thread and every warp. *)

val barrier_among : t -> members:[ `Cpu of int | `Warp of int * int ] list -> unit
(** Emit a barrier joining only the listed participants. *)

val finish :
  ?region_of:(int -> int) -> t -> name:string -> Spandex_system.Workload.t
(** [region_of] classifies lines into software regions for
    region-selective acquires; defaults to a single region. *)
