(** Synthetic graphs for the Pannotia workloads.

    The paper evaluates BC on `olesnik` and PR on `wing` (Table VII); those
    inputs are not redistributable here, so we generate graphs with the
    properties the evaluation depends on: a skewed (preferential
    attachment) degree distribution for BC — which is what gives its atomic
    updates high temporal locality — and a more uniform mesh-like structure
    for PR. *)

type t = {
  vertices : int;
  edges : (int * int) array;  (** directed (src, dst). *)
  out_edges : int list array;  (** adjacency: destinations per source. *)
}

val power_law : seed:int -> vertices:int -> avg_degree:int -> t
(** Preferential attachment: a few hub vertices receive most edges. *)

val community :
  seed:int ->
  vertices:int ->
  parts:int ->
  avg_degree:int ->
  local_frac:float ->
  t
(** Community-structured power-law graph: the vertex space is split into
    [parts] contiguous communities; edge sources are drawn from a skewed
    (unbalanced) distribution over communities, and each destination is,
    with probability [local_frac], a preferential pick {e within the
    source's community}.  When the communities align with a vertex
    partitioning, each partition's updates mostly target its own hub
    vertices — the locality structure BC's evaluation depends on
    (paper §V-B: high temporal locality in atomics, unbalanced work). *)

val mesh : seed:int -> vertices:int -> avg_degree:int -> t
(** Near-uniform degree, neighbours scattered pseudo-randomly. *)

val in_degree : t -> int array
