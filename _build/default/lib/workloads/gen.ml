module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo
module Linedata = Spandex_proto.Linedata
module Ops = Spandex_device.Ops
module Workload = Spandex_system.Workload

type region = { base : int; words : int }
type alloc = { mutable next_line : int }

let allocator () = { next_line = 0 }

let region a ~words =
  let lines = (words + Addr.words_per_line - 1) / Addr.words_per_line in
  let base = a.next_line * Addr.words_per_line in
  a.next_line <- a.next_line + lines;
  { base; words }

let addr r i =
  if i < 0 || i >= r.words then invalid_arg "Gen.addr: out of region";
  Addr.line_of_word_index (r.base + i)

let size r = r.words

type mem = (int, int) Hashtbl.t

let mem () : mem = Hashtbl.create 4096
let key (a : Addr.t) = (a.Addr.line * Addr.words_per_line) + a.Addr.word

let read m a =
  match Hashtbl.find_opt m (key a) with
  | Some v -> v
  | None -> Linedata.init_word ~line:a.Addr.line ~word:a.Addr.word

let write m a v = Hashtbl.replace m (key a) v

let add m a delta =
  let v = read m a + delta in
  write m a v;
  v

type builder = { mutable rev_ops : Ops.t list; mutable count : int }

let builder () = { rev_ops = []; count = 0 }

let emit b op =
  b.rev_ops <- op :: b.rev_ops;
  b.count <- b.count + 1

let emit_store b m a v =
  write m a v;
  emit b (Ops.Store (a, v))

let emit_check b m a = emit b (Ops.Check (a, read m a))
let emit_load b a = emit b (Ops.Load a)

let emit_rmw_add b m a delta =
  ignore (add m a delta);
  emit b (Ops.Rmw (a, Amo.Add delta))

let ops b = Array.of_list (List.rev b.rev_ops)

type t = {
  cpus : builder array;
  gpus : builder array array;
  mutable barriers : int list;
}

let create ~cpus ~cus ~warps =
  {
    cpus = Array.init cpus (fun _ -> builder ());
    gpus = Array.init cus (fun _ -> Array.init warps (fun _ -> builder ()));
    barriers = [];
  }

let alloc_barrier t ~parties =
  let id = List.length t.barriers in
  t.barriers <- parties :: t.barriers;
  id

let global_barrier t =
  let parties =
    Array.length t.cpus
    + Array.fold_left (fun acc cu -> acc + Array.length cu) 0 t.gpus
  in
  let id = alloc_barrier t ~parties in
  Array.iter (fun b -> emit b (Ops.Barrier id)) t.cpus;
  Array.iter (fun cu -> Array.iter (fun b -> emit b (Ops.Barrier id)) cu) t.gpus

let barrier_among t ~members =
  let id = alloc_barrier t ~parties:(List.length members) in
  List.iter
    (fun m ->
      let b =
        match m with
        | `Cpu i -> t.cpus.(i)
        | `Warp (cu, w) -> t.gpus.(cu).(w)
      in
      emit b (Ops.Barrier id))
    members

let finish ?(region_of = fun _ -> 0) t ~name =
  {
    Workload.name;
    cpu_programs = Array.map ops t.cpus;
    gpu_programs = Array.map (fun cu -> Array.map ops cu) t.gpus;
    barrier_parties = Array.of_list (List.rev t.barriers);
    region_of;
  }
