(** The six collaborative CPU-GPU applications (paper §IV-B2, Table VII),
    reproduced as communication-pattern generators.

    Each generator emits the memory-access and synchronization pattern the
    paper's evaluation attributes the benchmark's behaviour to; real kernel
    arithmetic is elided (it does not touch the memory system) and dynamic
    work distribution is replaced by an equivalent static schedule with the
    same atomic queue traffic (DESIGN.md §1).  DRF reads are [Check] ops. *)

type geometry = Microbench.geometry = { cpus : int; cus : int; warps : int }

val bc : ?scale:float -> geometry -> Spandex_system.Workload.t
(** Betweenness centrality: push-based; vertices partitioned CPU/GPU; every
    edge is an atomic update to the destination's centrality; the skewed
    graph gives atomics high temporal locality (data, fine-grain, flat). *)

val pr : ?scale:float -> geometry -> Spandex_system.Workload.t
(** PageRank: pull-based; plain reads of neighbours' ranks, one store per
    vertex per iteration; bound by memory throughput (data, coarse-grain,
    flat, moderate locality). *)

val hsti : ?scale:float -> geometry -> Spandex_system.Workload.t
(** Input-partitioned histogram: atomic pops from one shared queue counter,
    streaming reads of the popped block, atomic updates of a compact bin
    array (high atomic spatial locality; low data locality). *)

val trns : ?scale:float -> geometry -> Spandex_system.Workload.t
(** In-place transposition: per-block flag atomics (spread one per line —
    low spatial locality) guarding strided swap reads/writes. *)

val rsct : ?scale:float -> geometry -> Spandex_system.Workload.t
(** Random sample consensus: task-partitioned; the CPU produces small
    parameter sets; every GPU core densely reads the same input window per
    task (hierarchical sharing, fine-grain sync). *)

val tqh : ?scale:float -> geometry -> Spandex_system.Workload.t
(** Task-queue histogram: the CPU pushes task records and bumps queue
    tails; each GPU core pops and streams a private input partition
    (minimal hierarchical sharing) plus shared atomic histogram updates. *)

val all : (string * (?scale:float -> geometry -> Spandex_system.Workload.t)) list

val executors : geometry -> Gen.t -> Gen.builder array
(** All execution contexts (CPU threads, then warps in CU order) of a
    workload under construction; shared by generators. *)
