type entry = {
  name : string;
  kind : [ `Micro | `App | `Stress ];
  build : ?scale:float -> Microbench.geometry -> Spandex_system.Workload.t;
}

let stress_build ?scale g =
  let scale = Option.value ~default:1.0 scale in
  let spec =
    {
      Stress.default_spec with
      Stress.words = max 64 (int_of_float (512.0 *. scale));
      writes_per_phase = max 4 (int_of_float (24.0 *. scale));
      reads_per_phase = max 4 (int_of_float (24.0 *. scale));
    }
  in
  Stress.generate spec g

let entries =
  List.map
    (fun (name, build) -> { name; kind = `Micro; build })
    Microbench.all
  @ List.map (fun (name, build) -> { name; kind = `App; build }) Apps.all
  @ [
      {
        name = "regions";
        kind = `Micro;
        build = (fun ?scale g -> Microbench.region_reuse ?scale g);
      };
      { name = "stress"; kind = `Stress; build = stress_build };
    ]

let find name =
  List.find (fun e -> String.lowercase_ascii name = e.name) entries

let names = List.map (fun e -> e.name) entries

let geometry_of_params (p : Spandex_system.Params.t) =
  {
    Microbench.cpus = p.Spandex_system.Params.cpu_cores;
    cus = p.Spandex_system.Params.gpu_cus;
    warps = p.Spandex_system.Params.warps_per_cu;
  }
