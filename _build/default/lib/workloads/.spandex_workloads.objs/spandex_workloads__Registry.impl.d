lib/workloads/registry.ml: Apps List Microbench Option Spandex_system Stress String
