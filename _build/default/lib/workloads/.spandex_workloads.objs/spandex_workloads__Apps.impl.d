lib/workloads/apps.ml: Array Fun Gen Graph List Microbench Spandex_device Spandex_proto Spandex_util
