lib/workloads/stress.mli: Microbench Spandex_system
