lib/workloads/stress.ml: Apps Array Gen Hashtbl List Microbench Printf Spandex_util
