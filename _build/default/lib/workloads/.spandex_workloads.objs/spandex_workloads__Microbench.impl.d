lib/workloads/microbench.ml: Array Fun Gen List Spandex_device Spandex_proto Spandex_util
