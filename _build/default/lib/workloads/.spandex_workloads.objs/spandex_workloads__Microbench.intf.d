lib/workloads/microbench.mli: Spandex_system
