lib/workloads/registry.mli: Microbench Spandex_system
