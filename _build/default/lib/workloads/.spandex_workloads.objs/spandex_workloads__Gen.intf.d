lib/workloads/gen.mli: Spandex_device Spandex_proto Spandex_system
