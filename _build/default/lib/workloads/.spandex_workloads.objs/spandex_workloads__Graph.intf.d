lib/workloads/graph.mli:
