lib/workloads/apps.mli: Gen Microbench Spandex_system
