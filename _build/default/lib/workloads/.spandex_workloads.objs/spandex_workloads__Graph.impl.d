lib/workloads/graph.ml: Array Spandex_util
