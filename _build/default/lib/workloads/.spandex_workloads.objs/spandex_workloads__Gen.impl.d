lib/workloads/gen.ml: Array Hashtbl List Spandex_device Spandex_proto Spandex_system
