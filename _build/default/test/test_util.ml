(* Unit and property tests for spandex_util. *)

module Mask = Spandex_util.Mask
module Pqueue = Spandex_util.Pqueue
module Rng = Spandex_util.Rng
module Stats = Spandex_util.Stats

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ----- Mask ------------------------------------------------------------- *)

let mask_basics () =
  check_int "empty count" 0 (Mask.count Mask.empty);
  check_int "full 16" 16 (Mask.count (Mask.full ~words:16));
  check_bool "mem singleton" true (Mask.mem (Mask.singleton 5) 5);
  check_bool "not mem" false (Mask.mem (Mask.singleton 5) 6);
  check_int "add" 2 (Mask.count (Mask.add (Mask.singleton 0) 15));
  check_int "remove" 0 (Mask.count (Mask.remove (Mask.singleton 3) 3));
  check_bool "subset" true (Mask.subset (Mask.singleton 2) (Mask.full ~words:16));
  check_bool "not subset" false (Mask.subset (Mask.full ~words:16) (Mask.singleton 2))

let mask_iter_order () =
  let m = Mask.of_list [ 14; 2; 7; 0 ] in
  Alcotest.(check (list int)) "sorted order" [ 0; 2; 7; 14 ] (Mask.to_list m)

let mask_pp () =
  let s = Format.asprintf "%a" (Mask.pp ~words:8) (Mask.of_list [ 0; 7 ]) in
  Alcotest.(check string) "pp" "10000001" s

let mask_gen = QCheck2.Gen.int_bound 0xFFFF

let mask_props =
  [
    QCheck2.Test.make ~name:"union_comm" QCheck2.Gen.(pair mask_gen mask_gen)
      (fun (a, b) -> Mask.equal (Mask.union a b) (Mask.union b a));
    QCheck2.Test.make ~name:"inter_subset" QCheck2.Gen.(pair mask_gen mask_gen)
      (fun (a, b) -> Mask.subset (Mask.inter a b) a);
    QCheck2.Test.make ~name:"diff_disjoint" QCheck2.Gen.(pair mask_gen mask_gen)
      (fun (a, b) -> Mask.is_empty (Mask.inter (Mask.diff a b) b));
    QCheck2.Test.make ~name:"count_union_inter"
      QCheck2.Gen.(pair mask_gen mask_gen) (fun (a, b) ->
        Mask.count (Mask.union a b) + Mask.count (Mask.inter a b)
        = Mask.count a + Mask.count b);
    QCheck2.Test.make ~name:"of_to_list_roundtrip" mask_gen (fun m ->
        Mask.equal m (Mask.of_list (Mask.to_list m)));
    QCheck2.Test.make ~name:"fold_counts" mask_gen (fun m ->
        Mask.fold m ~init:0 ~f:(fun acc _ -> acc + 1) = Mask.count m);
  ]

(* ----- Pqueue ------------------------------------------------------------ *)

let pqueue_ordering () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:5 "c";
  Pqueue.push q ~time:1 "a";
  Pqueue.push q ~time:3 "b";
  Alcotest.(check (option int)) "peek" (Some 1) (Pqueue.peek_time q);
  let pop () = Option.map snd (Pqueue.pop q) in
  Alcotest.(check (option string)) "first" (Some "a") (pop ());
  Alcotest.(check (option string)) "second" (Some "b") (pop ());
  Alcotest.(check (option string)) "third" (Some "c") (pop ());
  Alcotest.(check (option string)) "empty" None (pop ())

let pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~time:7 v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list int)) "fifo among equal times" [ 1; 2; 3; 4 ] order

let pqueue_prop =
  QCheck2.Test.make ~name:"pqueue_sorts"
    QCheck2.Gen.(list_size (int_bound 200) (int_bound 1000))
    (fun times ->
      let q = Pqueue.create () in
      List.iter (fun t -> Pqueue.push q ~time:t t) times;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      drain [] = List.sort compare times)

let pqueue_interleaved () =
  (* Interleave pushes and pops; popped times must be non-decreasing given
     pushes never go into the past. *)
  let rng = Rng.create ~seed:3 in
  let q = Pqueue.create () in
  let now = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool rng || Pqueue.is_empty q then
      Pqueue.push q ~time:(!now + Rng.int rng 50) ()
    else begin
      let t, () = Option.get (Pqueue.pop q) in
      Alcotest.(check bool) "monotone" true (t >= !now);
      now := t
    end
  done

(* ----- Rng ---------------------------------------------------------------- *)

let rng_determinism () =
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let rng_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17);
    let w = Rng.int_in r ~lo:(-3) ~hi:4 in
    check_bool "int_in range" true (w >= -3 && w <= 4);
    let f = Rng.float r 2.5 in
    check_bool "float range" true (f >= 0.0 && f < 2.5)
  done

let rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check_bool "streams differ" true (xs <> ys)

let rng_shuffle_permutes () =
  let r = Rng.create ~seed:11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let rng_geometric () =
  let r = Rng.create ~seed:13 in
  let n = 5000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.geometric r ~p:0.5
  done;
  (* Mean of Geometric(0.5) failures-before-success is 1. *)
  let mean = float_of_int !total /. float_of_int n in
  check_bool "mean near 1" true (mean > 0.8 && mean < 1.2)

(* ----- Stats ---------------------------------------------------------------- *)

let stats_counters () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 40;
  check_int "a" 2 (Stats.get s "a");
  check_int "b" 40 (Stats.get s "b");
  check_int "missing" 0 (Stats.get s "zzz");
  Stats.set_max s "m" 5;
  Stats.set_max s "m" 3;
  check_int "max keeps" 5 (Stats.get s "m")

let stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a "x" 1;
  Stats.add b "x" 2;
  let dst = Stats.create () in
  Stats.merge_into ~dst ~prefix:"one" a;
  Stats.merge_into ~dst ~prefix:"two" b;
  check_int "one.x" 1 (Stats.get dst "one.x");
  check_int "two.x" 2 (Stats.get dst "two.x");
  Alcotest.(check (list string)) "names sorted" [ "one.x"; "two.x" ] (Stats.names dst)

let tests =
  [
    test "mask_basics" mask_basics;
    test "mask_iter_order" mask_iter_order;
    test "mask_pp" mask_pp;
    test "pqueue_ordering" pqueue_ordering;
    test "pqueue_fifo_ties" pqueue_fifo_ties;
    test "pqueue_interleaved" pqueue_interleaved;
    test "rng_determinism" rng_determinism;
    test "rng_bounds" rng_bounds;
    test "rng_split_independent" rng_split_independent;
    test "rng_shuffle_permutes" rng_shuffle_permutes;
    test "rng_geometric" rng_geometric;
    test "stats_counters" stats_counters;
    test "stats_merge" stats_merge;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) (mask_props @ [ pqueue_prop ])
