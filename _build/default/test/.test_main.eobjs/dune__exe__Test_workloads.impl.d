test/test_workloads.ml: Alcotest Array Hashtbl Helpers List Printf Spandex_device Spandex_proto Spandex_system Spandex_workloads
