test/test_system.ml: Alcotest Array Helpers List Spandex_device Spandex_proto Spandex_system Spandex_util Spandex_workloads
