test/test_sim.ml: Alcotest Array Helpers List Spandex_device Spandex_net Spandex_proto Spandex_sim Spandex_util
