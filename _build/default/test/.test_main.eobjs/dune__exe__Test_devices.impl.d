test/test_devices.ml: Alcotest Array Fun Helpers List Option Proto_harness Spandex_denovo Spandex_device Spandex_gpucoh Spandex_mesi Spandex_net Spandex_proto Spandex_sim Spandex_util
