test/test_random.ml: Alcotest Helpers List QCheck2 QCheck_alcotest Spandex_system Spandex_workloads
