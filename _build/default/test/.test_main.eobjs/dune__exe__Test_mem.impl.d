test/test_mem.ml: Alcotest Array Helpers List Option Spandex_mem Spandex_proto Spandex_sim Spandex_util
