test/test_tu.ml: Alcotest Array Helpers QCheck2 QCheck_alcotest Spandex Spandex_proto Spandex_util
