test/proto_harness.ml: Alcotest Array Format List Spandex Spandex_mem Spandex_net Spandex_proto Spandex_sim Spandex_util String
