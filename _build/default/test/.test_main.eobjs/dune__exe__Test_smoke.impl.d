test/test_smoke.ml: Array Helpers List Spandex_device Spandex_proto
