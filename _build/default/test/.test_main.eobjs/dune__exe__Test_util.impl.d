test/test_util.ml: Alcotest Array Format Fun Helpers List Option QCheck2 QCheck_alcotest Spandex_util
