test/test_proto.ml: Alcotest Array Helpers List QCheck2 QCheck_alcotest Spandex_proto Spandex_util
