test/test_llc.ml: Addr Alcotest Array Dram Helpers List Llc Mask Msg Proto_harness Spandex_proto
