test/test_backing.ml: Alcotest Array Helpers List Proto_harness Spandex Spandex_mesi Spandex_net Spandex_proto Spandex_sim Spandex_util
