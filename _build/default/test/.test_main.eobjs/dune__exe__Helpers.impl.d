test/helpers.ml: Alcotest List Spandex_device Spandex_proto Spandex_system
