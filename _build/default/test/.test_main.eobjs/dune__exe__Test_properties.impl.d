test/test_properties.ml: Alcotest Helpers List Spandex_proto Spandex_system Spandex_util Spandex_workloads String
