(* End-to-end smoke tests: small workloads over every cache configuration,
   verified through the workloads' Check ops. *)

open Helpers
module Ops = Spandex_device.Ops
module Amo = Spandex_proto.Amo

let store i v = Ops.Store (w i, v)
let check i v = Ops.Check (w i, v)

let single_cpu_rw () =
  let program =
    Array.concat
      [
        Array.init 32 (fun i -> store (i * 3) (1000 + i));
        [| Ops.Release |];
        Array.init 32 (fun i -> check (i * 3) (1000 + i));
      ]
  in
  check_all_configs ~params:quick_params
    (workload ~name:"single_cpu_rw" ~cpu:[| program |] ~gpu:[||] ())

let single_gpu_rw () =
  let warp =
    Array.concat
      [
        Array.init 32 (fun i -> store (i * 5) (2000 + i));
        [| Ops.Release |];
        Array.init 32 (fun i -> check (i * 5) (2000 + i));
      ]
  in
  check_all_configs ~params:quick_params
    (workload ~name:"single_gpu_rw" ~cpu:[||] ~gpu:[| [| warp |] |] ())

let cpu_to_cpu () =
  let producer =
    Array.concat
      [ Array.init 24 (fun i -> store i (3000 + i)); [| Ops.Barrier 0 |] ]
  in
  let consumer =
    Array.concat
      [ [| Ops.Barrier 0 |]; Array.init 24 (fun i -> check i (3000 + i)) ]
  in
  check_all_configs ~params:quick_params
    (workload ~name:"cpu_to_cpu" ~barriers:[| 2 |]
       ~cpu:[| producer; consumer |] ~gpu:[||] ())

let cpu_to_gpu () =
  let producer =
    Array.concat
      [ Array.init 24 (fun i -> store (100 + i) (4000 + i)); [| Ops.Barrier 0 |] ]
  in
  let consumer =
    Array.concat
      [ [| Ops.Barrier 0 |]; Array.init 24 (fun i -> check (100 + i) (4000 + i)) ]
  in
  check_all_configs ~params:quick_params
    (workload ~name:"cpu_to_gpu" ~barriers:[| 2 |] ~cpu:[| producer |]
       ~gpu:[| [| consumer |] |] ())

let gpu_to_cpu () =
  let producer =
    Array.concat
      [ Array.init 24 (fun i -> store (200 + i) (5000 + i)); [| Ops.Barrier 0 |] ]
  in
  let consumer =
    Array.concat
      [ [| Ops.Barrier 0 |]; Array.init 24 (fun i -> check (200 + i) (5000 + i)) ]
  in
  check_all_configs ~params:quick_params
    (workload ~name:"gpu_to_cpu" ~barriers:[| 2 |] ~cpu:[| consumer |]
       ~gpu:[| [| producer |] |] ())

let gpu_to_gpu () =
  let producer =
    Array.concat
      [ Array.init 24 (fun i -> store (300 + i) (6000 + i)); [| Ops.Barrier 0 |] ]
  in
  let consumer =
    Array.concat
      [ [| Ops.Barrier 0 |]; Array.init 24 (fun i -> check (300 + i) (6000 + i)) ]
  in
  check_all_configs ~params:quick_params
    (workload ~name:"gpu_to_gpu" ~barriers:[| 2 |] ~cpu:[||]
       ~gpu:[| [| producer |]; [| consumer |] |] ())

(* Every context hammers one counter with fetch-and-add; after a barrier one
   CPU core checks the total.  Exercises ReqWT+data at the LLC, DeNovo
   ownership atomics, and MESI RMWs depending on configuration. *)
let atomics_sum () =
  let n = 20 in
  let adders = 2 + (2 * 2) in
  (* 2 CPUs + 2 CUs x 2 warps *)
  let counter = 4000 in
  let add_prog extra =
    Array.concat
      [
        Array.init n (fun _ -> Ops.Rmw (w counter, Amo.Add 1));
        [| Ops.Barrier 0 |];
        extra;
      ]
  in
  let expected = Spandex_proto.Linedata.init_word ~line:(w counter).Spandex_proto.Addr.line
      ~word:(w counter).Spandex_proto.Addr.word + (n * adders)
  in
  let checker = add_prog [| Ops.Acquire; check counter expected |] in
  let cpu = [| checker; add_prog [||] |] in
  let gpu =
    [| [| add_prog [||]; add_prog [||] |]; [| add_prog [||]; add_prog [||] |] |]
  in
  check_all_configs ~params:quick_params
    (workload ~name:"atomics_sum" ~barriers:[| adders |] ~cpu ~gpu ())

(* CPU and GPU write disjoint words of the same lines: word-granularity
   configurations avoid false sharing; all must stay correct. *)
let false_sharing () =
  let evens = Array.init 32 (fun i -> 2 * i) in
  let odds = Array.init 32 (fun i -> (2 * i) + 1) in
  let prog mine theirs myval theirval =
    Array.concat
      [
        Array.map (fun i -> store i (myval + i)) mine;
        [| Ops.Barrier 0 |];
        Array.map (fun i -> check i (myval + i)) mine;
        Array.map (fun i -> check i (theirval + i)) theirs;
      ]
  in
  check_all_configs ~params:quick_params
    (workload ~name:"false_sharing" ~barriers:[| 2 |]
       ~cpu:[| prog evens odds 7000 8000 |]
       ~gpu:[| [| prog odds evens 8000 7000 |] |] ())

(* Ping-pong ownership between two CPU cores through multiple barriers. *)
let ping_pong () =
  let rounds = 4 in
  let prog me =
    let ops = ref [] in
    for r = 0 to rounds - 1 do
      let writer = r mod 2 in
      if me = writer then
        for i = 0 to 7 do
          ops := store (500 + i) ((1000 * r) + i) :: !ops
        done
      else ();
      ops := Ops.Barrier 0 :: !ops;
      for i = 0 to 7 do
        ops := check (500 + i) ((1000 * r) + i) :: !ops
      done;
      ops := Ops.Barrier 0 :: !ops
    done;
    Array.of_list (List.rev !ops)
  in
  check_all_configs ~params:quick_params
    (workload ~name:"ping_pong" ~barriers:[| 2 |] ~cpu:[| prog 0; prog 1 |]
       ~gpu:[||] ())

let tests =
  [
    test "single_cpu_rw" single_cpu_rw;
    test "single_gpu_rw" single_gpu_rw;
    test "cpu_to_cpu" cpu_to_cpu;
    test "cpu_to_gpu" cpu_to_gpu;
    test "gpu_to_cpu" gpu_to_cpu;
    test "gpu_to_gpu" gpu_to_gpu;
    test "atomics_sum" atomics_sum;
    test "false_sharing" false_sharing;
    test "ping_pong" ping_pong;
  ]
