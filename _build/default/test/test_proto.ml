(* Unit and property tests for spandex_proto. *)

module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo
module Msg = Spandex_proto.Msg
module Linedata = Spandex_proto.Linedata
module Txn = Spandex_proto.Txn
module State = Spandex_proto.State
module Mask = Spandex_util.Mask

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ----- Addr ----------------------------------------------------------------- *)

let addr_geometry () =
  check_int "line bytes" 64 Addr.line_bytes;
  check_int "words per line" 16 Addr.words_per_line;
  let a = Addr.of_byte 132 in
  check_int "line" 2 a.Addr.line;
  check_int "word" 1 a.Addr.word;
  check_int "roundtrip" 132 (Addr.to_byte (Addr.of_byte 132));
  let b = Addr.line_of_word_index 35 in
  check_int "flat line" 2 b.Addr.line;
  check_int "flat word" 3 b.Addr.word

let addr_compare () =
  let a = Addr.make ~line:1 ~word:5 and b = Addr.make ~line:1 ~word:6 in
  check_bool "lt" true (Addr.compare a b < 0);
  check_bool "eq" true (Addr.equal a a);
  check_bool "line dominates" true
    (Addr.compare (Addr.make ~line:0 ~word:15) (Addr.make ~line:1 ~word:0) < 0)

let addr_invalid () =
  Alcotest.check_raises "word out of range" (Assert_failure ("lib/proto/addr.ml", 10, 2))
    (fun () -> ignore (Addr.make ~line:0 ~word:16))

(* ----- Amo ------------------------------------------------------------------ *)

let amo_semantics () =
  check_int "add new" 7 (fst (Amo.apply (Amo.Add 3) 4));
  check_int "add returns old" 4 (snd (Amo.apply (Amo.Add 3) 4));
  check_int "exch new" 9 (fst (Amo.apply (Amo.Exch 9) 4));
  check_int "exch old" 4 (snd (Amo.apply (Amo.Exch 9) 4));
  check_int "max up" 8 (fst (Amo.apply (Amo.Max 8) 4));
  check_int "max keeps" 9 (fst (Amo.apply (Amo.Max 4) 9));
  check_int "read keeps" 4 (fst (Amo.apply Amo.Read 4));
  check_int "cas hit" 5 (fst (Amo.apply (Amo.Cas { expected = 4; desired = 5 }) 4));
  check_int "cas miss" 4 (fst (Amo.apply (Amo.Cas { expected = 3; desired = 5 }) 4));
  check_int "cas returns old" 4 (snd (Amo.apply (Amo.Cas { expected = 4; desired = 5 }) 4))

(* ----- Msg ------------------------------------------------------------------ *)

let msg_flits () =
  let mk ?payload mask =
    Msg.make ~txn:1 ~kind:(Msg.Req Msg.ReqV) ~line:0 ~mask ?payload ~src:0
      ~dst:1 ()
  in
  check_int "control is 1 flit" 1 (Msg.flits (mk (Mask.singleton 0)));
  let data n = Msg.Data (Array.make n 0) in
  check_int "1 word data" 2 (Msg.flits (mk ~payload:(data 1) (Mask.singleton 0)));
  check_int "4 words = 16B = 1 data flit" 2
    (Msg.flits (mk ~payload:(data 4) (Mask.of_list [ 0; 1; 2; 3 ])));
  check_int "5 words = 2 data flits" 3
    (Msg.flits (mk ~payload:(data 5) (Mask.of_list [ 0; 1; 2; 3; 4 ])));
  check_int "full line = 4 data flits" 5
    (Msg.flits (mk ~payload:(data 16) Addr.full_mask))

let msg_categories () =
  let cat k = Msg.category k in
  Alcotest.(check bool) "reqv" true (cat (Msg.Req Msg.ReqV) = Msg.Cat_ReqV);
  Alcotest.(check bool) "nack counts as reqv" true (cat (Msg.Rsp Msg.Nack) = Msg.Cat_ReqV);
  Alcotest.(check bool) "wt and wt+data together" true
    (cat (Msg.Req Msg.ReqWT) = cat (Msg.Req Msg.ReqWTdata));
  Alcotest.(check bool) "o and o+data together" true
    (cat (Msg.Req Msg.ReqO) = cat (Msg.Req Msg.ReqOdata));
  Alcotest.(check bool) "probes with acks" true
    (cat (Msg.Probe Msg.Inv) = cat (Msg.Rsp Msg.Ack));
  Alcotest.(check bool) "rvko rsp is probe traffic" true
    (cat (Msg.Rsp Msg.RspRvkO) = Msg.Cat_Probe);
  check_int "six categories" 6 (List.length Msg.all_categories)

let msg_validation () =
  (* Payload length must match the mask. *)
  let bad () =
    ignore
      (Msg.make ~txn:1 ~kind:(Msg.Rsp Msg.RspV) ~line:0
         ~mask:(Mask.of_list [ 0; 1 ])
         ~payload:(Msg.Data [| 1 |])
         ~src:0 ~dst:1 ())
  in
  (try
     bad ();
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  (* Demand must be a subset of the mask. *)
  (try
     ignore
       (Msg.make ~txn:1 ~kind:(Msg.Req Msg.ReqV) ~line:0
          ~mask:(Mask.singleton 1) ~demand:(Mask.singleton 2) ~src:0 ~dst:1 ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let msg_defaults () =
  let m =
    Msg.make ~txn:9 ~kind:(Msg.Req Msg.ReqO) ~line:3 ~mask:(Mask.singleton 2)
      ~src:4 ~dst:5 ()
  in
  check_int "requestor defaults to src" 4 m.Msg.requestor;
  check_bool "demand defaults to mask" true (Mask.equal m.Msg.demand m.Msg.mask);
  check_bool "not forwarded" false m.Msg.fwd

let rsp_pairing () =
  List.iter
    (fun (req, rsp) -> check_bool "pairing" true (Msg.rsp_of_req req = rsp))
    [
      (Msg.ReqV, Msg.RspV);
      (Msg.ReqS, Msg.RspS);
      (Msg.ReqWT, Msg.RspWT);
      (Msg.ReqO, Msg.RspO);
      (Msg.ReqWTdata, Msg.RspWTdata);
      (Msg.ReqOdata, Msg.RspOdata);
      (Msg.ReqWB, Msg.RspWB);
    ]

(* ----- Linedata ------------------------------------------------------------- *)

let linedata_pack_unpack () =
  let full = Array.init 16 (fun i -> 100 + i) in
  let mask = Mask.of_list [ 1; 5; 13 ] in
  let packed = Linedata.pack ~mask ~full in
  Alcotest.(check (array int)) "packed order" [| 101; 105; 113 |] packed;
  let dst = Array.make 16 0 in
  Linedata.unpack_into ~mask ~values:packed ~full:dst;
  check_int "unpacked 5" 105 dst.(5);
  check_int "untouched" 0 dst.(0);
  check_int "value_at" 113 (Linedata.value_at ~mask ~values:packed ~word:13)

let linedata_extract () =
  let mask = Mask.of_list [ 0; 3; 8; 9 ] in
  let values = [| 10; 13; 18; 19 |] in
  let sub = Mask.of_list [ 3; 9 ] in
  Alcotest.(check (array int)) "extract" [| 13; 19 |]
    (Linedata.extract ~mask ~values ~sub)

let linedata_roundtrip_prop =
  QCheck2.Test.make ~name:"pack_unpack_roundtrip"
    QCheck2.Gen.(int_bound 0xFFFF)
    (fun mask ->
      let full = Array.init 16 (fun i -> i * 31) in
      let packed = Linedata.pack ~mask ~full in
      let dst = Array.make 16 (-1) in
      Linedata.unpack_into ~mask ~values:packed ~full:dst;
      Mask.fold mask ~init:true ~f:(fun acc w -> acc && dst.(w) = full.(w)))

let linedata_init_deterministic () =
  check_int "stable" (Linedata.init_word ~line:7 ~word:3)
    (Linedata.init_word ~line:7 ~word:3);
  check_bool "distinct words differ" true
    (Linedata.init_word ~line:7 ~word:3 <> Linedata.init_word ~line:7 ~word:4);
  Alcotest.(check (array int)) "fresh_line matches init_word"
    (Array.init 16 (fun w -> Linedata.init_word ~line:9 ~word:w))
    (Linedata.fresh_line ~line:9)

(* ----- State / Txn ----------------------------------------------------------- *)

let state_mapping () =
  check_bool "E maps to O" true (State.device_of_mesi State.M_E = State.O);
  check_bool "M maps to O" true (State.device_of_mesi State.M_M = State.O);
  check_bool "S maps to S" true (State.device_of_mesi State.M_S = State.S);
  check_bool "I maps to I" true (State.device_of_mesi State.M_I = State.I);
  check_bool "V readable" true (State.device_readable State.V);
  check_bool "I not readable" false (State.device_readable State.I);
  check_bool "only O writable" true
    (State.device_writable State.O
    && (not (State.device_writable State.V))
    && not (State.device_writable State.S))

let txn_unique () =
  Txn.reset ();
  let a = Txn.fresh () and b = Txn.fresh () in
  check_bool "distinct" true (a <> b);
  Txn.reset ();
  check_int "reset restarts" a (Txn.fresh ())

let tests =
  [
    test "addr_geometry" addr_geometry;
    test "addr_compare" addr_compare;
    test "amo_semantics" amo_semantics;
    test "msg_flits" msg_flits;
    test "msg_categories" msg_categories;
    test "msg_validation" msg_validation;
    test "msg_defaults" msg_defaults;
    test "rsp_pairing" rsp_pairing;
    test "linedata_pack_unpack" linedata_pack_unpack;
    test "linedata_extract" linedata_extract;
    test "linedata_init_deterministic" linedata_init_deterministic;
    test "state_mapping" state_mapping;
    test "txn_unique" txn_unique;
  ]
  @ [ QCheck_alcotest.to_alcotest ~long:false linedata_roundtrip_prop ]
