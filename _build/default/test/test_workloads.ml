(* Tests for the workload generators: structural validity, determinism, and
   the communication-pattern properties the paper's evaluation relies on. *)

module Ops = Spandex_device.Ops
module Workload = Spandex_system.Workload
module Registry = Spandex_workloads.Registry
module Microbench = Spandex_workloads.Microbench
module Apps = Spandex_workloads.Apps
module Graph = Spandex_workloads.Graph
module Gen = Spandex_workloads.Gen
module Stress = Spandex_workloads.Stress
module Addr = Spandex_proto.Addr

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let geom = { Microbench.cpus = 2; cus = 2; warps = 2 }

let all_build_and_validate () =
  List.iter
    (fun e ->
      let wl = e.Registry.build ~scale:0.25 geom in
      Workload.validate wl;
      check_bool (e.Registry.name ^ " nonempty") true (Workload.total_ops wl > 0);
      check_int
        (e.Registry.name ^ " cpu programs")
        geom.Microbench.cpus
        (Array.length wl.Workload.cpu_programs);
      check_int
        (e.Registry.name ^ " gpu cus")
        geom.Microbench.cus
        (Array.length wl.Workload.gpu_programs))
    Registry.entries

let generators_deterministic () =
  List.iter
    (fun e ->
      let a = e.Registry.build ~scale:0.25 geom in
      let b = e.Registry.build ~scale:0.25 geom in
      check_bool (e.Registry.name ^ " deterministic") true
        (a.Workload.cpu_programs = b.Workload.cpu_programs
        && a.Workload.gpu_programs = b.Workload.gpu_programs))
    Registry.entries

let barrier_participation_consistent () =
  (* Every context must execute each barrier id the same number of times,
     totalling the barrier's party count. *)
  List.iter
    (fun e ->
      let wl = e.Registry.build ~scale:0.25 geom in
      let uses = Array.make (Array.length wl.Workload.barrier_parties) 0 in
      let count p =
        Array.iter
          (function
            | Ops.Barrier b | Ops.Barrier_region (b, _) -> uses.(b) <- uses.(b) + 1
            | _ -> ())
          p
      in
      Array.iter count wl.Workload.cpu_programs;
      Array.iter (fun cu -> Array.iter count cu) wl.Workload.gpu_programs;
      Array.iteri
        (fun b parties ->
          check_bool
            (Printf.sprintf "%s barrier %d arrivals" e.Registry.name b)
            true
            (uses.(b) mod parties = 0))
        wl.Workload.barrier_parties)
    Registry.entries

let scale_changes_size () =
  let small = (Registry.find "indirection").Registry.build ~scale:0.25 geom in
  let big = (Registry.find "indirection").Registry.build ~scale:1.0 geom in
  check_bool "scaling grows the workload" true
    (Workload.total_ops big > 2 * Workload.total_ops small)

(* ----- graph generators -------------------------------------------------------- *)

let graph_shapes () =
  let g = Graph.power_law ~seed:1 ~vertices:500 ~avg_degree:4 in
  check_int "edge count" 2000 (Array.length g.Graph.edges);
  Array.iter
    (fun (s, d) ->
      check_bool "in range" true (s >= 0 && s < 500 && d >= 0 && d < 500))
    g.Graph.edges;
  (* Power law: the top vertex should have far more than average degree. *)
  let deg = Graph.in_degree g in
  let dmax = Array.fold_left max 0 deg in
  check_bool "hubs exist" true (dmax > 12);
  let m = Graph.mesh ~seed:1 ~vertices:500 ~avg_degree:4 in
  let mdeg = Graph.in_degree m in
  let mmax = Array.fold_left max 0 mdeg in
  check_bool "mesh flatter than power law" true (mmax < dmax)

let community_graph_local () =
  let parts = 10 in
  let vertices = 500 in
  let g =
    Graph.community ~seed:2 ~vertices ~parts ~avg_degree:4 ~local_frac:0.9
  in
  let part_of v = v * parts / vertices in
  let local =
    Array.fold_left
      (fun acc (s, d) -> if part_of s = part_of d then acc + 1 else acc)
      0 g.Graph.edges
  in
  let frac = float_of_int local /. float_of_int (Array.length g.Graph.edges) in
  check_bool "mostly community-local" true (frac > 0.75)

(* ----- Gen utilities ------------------------------------------------------------ *)

let regions_disjoint () =
  let alloc = Gen.allocator () in
  let a = Gen.region alloc ~words:20 in
  let b = Gen.region alloc ~words:20 in
  (* Regions are line-aligned, so word 19 of [a] and word 0 of [b] are in
     different lines. *)
  check_bool "line-disjoint" true
    ((Gen.addr a 19).Addr.line < (Gen.addr b 0).Addr.line)

let mem_tracks_expectations () =
  let m = Gen.mem () in
  let a = Addr.make ~line:3 ~word:2 in
  check_int "initial value"
    (Spandex_proto.Linedata.init_word ~line:3 ~word:2)
    (Gen.read m a);
  Gen.write m a 5;
  check_int "after write" 5 (Gen.read m a);
  check_int "add returns new" 8 (Gen.add m a 3);
  check_int "accumulated" 8 (Gen.read m a)

let stress_reads_are_race_free () =
  (* Within a phase, no Check may target a word any thread stores to. *)
  let wl = Stress.generate Stress.default_spec geom in
  let programs =
    Array.to_list wl.Workload.cpu_programs
    @ List.concat_map Array.to_list (Array.to_list wl.Workload.gpu_programs)
  in
  let positions = List.map (fun p -> (p, ref 0)) programs in
  let n_barriers = Array.length wl.Workload.barrier_parties in
  (* Walk phase by phase: collect ops of each program up to its next
     barrier, check write/read disjointness, advance. *)
  for _phase = 0 to n_barriers - 1 do
    let writes = Hashtbl.create 64 and reads = Hashtbl.create 64 in
    List.iter
      (fun (p, pos) ->
        let continue = ref true in
        while !continue && !pos < Array.length p do
          (match p.(!pos) with
          | Ops.Barrier _ -> continue := false
          | Ops.Store (a, _) -> Hashtbl.replace writes a ()
          | Ops.Check (a, _) -> Hashtbl.replace reads a ()
          | _ -> ());
          incr pos
        done)
      positions;
    Hashtbl.iter
      (fun a () ->
        check_bool "no read-write race in a phase" false (Hashtbl.mem writes a))
      reads
  done

let tests =
  [
    test "all_build_and_validate" all_build_and_validate;
    test "generators_deterministic" generators_deterministic;
    test "barrier_participation_consistent" barrier_participation_consistent;
    test "scale_changes_size" scale_changes_size;
    test "graph_shapes" graph_shapes;
    test "community_graph_local" community_graph_local;
    test "regions_disjoint" regions_disjoint;
    test "mem_tracks_expectations" mem_tracks_expectations;
    test "stress_reads_are_race_free" stress_reads_are_race_free;
  ]
