(* Randomized SC-for-DRF litmus testing: every seed generates a fresh
   data-race-free workload whose Checks encode the only values DRF
   execution may observe; any mismatch on any configuration is a protocol
   bug.  This is the executable counterpart of the paper's III-E
   consistency argument. *)

module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Stress = Spandex_workloads.Stress
module Microbench = Spandex_workloads.Microbench

let test = Helpers.test
let geom = { Microbench.cpus = 2; cus = 2; warps = 2 }

let params =
  { Params.bench with Params.cpu_cores = 2; gpu_cus = 2; warps_per_cu = 2 }

(* Tiny caches: every eviction / purge / recall path stays hot. *)
let tiny_params =
  {
    Params.small with
    Params.cpu_cores = 2;
    gpu_cus = 2;
    warps_per_cu = 2;
    mem_latency = 15;
  }

let run_spec ~params spec =
  let wl = Stress.generate spec geom in
  List.iter
    (fun config ->
      let r = Run.simulate ~params ~config wl in
      match Run.assert_clean r with
      | () -> ()
      | exception Failure msg ->
        Alcotest.failf "seed %d on %s: %s" spec.Stress.seed
          config.Config.name msg)
    Config.all

let drf_seeds () =
  for seed = 1 to 12 do
    run_spec ~params { Stress.default_spec with Stress.seed }
  done

let drf_hot_contention () =
  (* Almost everything lands in a small hot set: maximal ownership
     migration and atomic contention. *)
  for seed = 20 to 26 do
    run_spec ~params
      {
        Stress.default_spec with
        Stress.seed;
        hot_fraction = 0.9;
        atomic_words = 2;
        atomics_per_phase = 16;
      }
  done

let drf_under_capacity_pressure () =
  (* Tiny caches: evictions, purges and hierarchy recalls on every path. *)
  for seed = 30 to 35 do
    run_spec ~params:tiny_params
      { Stress.default_spec with Stress.seed; words = 2048; phases = 4 }
  done

let drf_many_phases () =
  run_spec ~params
    { Stress.default_spec with Stress.seed = 40; phases = 16; words = 128 }

(* Long mode (QCHECK_LONG=1): a heavier soak across many random seeds. *)
let drf_soak =
  QCheck2.Test.make ~name:"drf_soak_long" ~count:2 ~long_factor:25
    QCheck2.Gen.(int_range 50_000 1_000_000)
    (fun seed ->
      run_spec ~params
        {
          Stress.default_spec with
          Stress.seed;
          phases = 8;
          words = 1024;
          hot_fraction = 0.5;
        };
      run_spec ~params:tiny_params
        { Stress.default_spec with Stress.seed = seed + 1; words = 2048 };
      true)

let drf_qcheck =
  QCheck2.Test.make ~name:"drf_random_seeds" ~count:6
    QCheck2.Gen.(int_range 100 10_000)
    (fun seed ->
      run_spec ~params
        { Stress.default_spec with Stress.seed; phases = 4 };
      true)

let tests =
  [
    test "drf_seeds" drf_seeds;
    test "drf_hot_contention" drf_hot_contention;
    test "drf_under_capacity_pressure" drf_under_capacity_pressure;
    test "drf_many_phases" drf_many_phases;
  ]
  @ [
      QCheck_alcotest.to_alcotest ~long:false drf_qcheck;
      QCheck_alcotest.to_alcotest ~long:false drf_soak;
    ]
