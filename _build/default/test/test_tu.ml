(* Tests for the TU response collector (paper III-D). *)

module Tu = Spandex.Tu
module Msg = Spandex_proto.Msg
module Mask = Spandex_util.Mask
module Addr = Spandex_proto.Addr

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rsp ?payload ~kind ~mask () =
  Msg.make ~txn:1 ~kind:(Msg.Rsp kind) ~line:0 ~mask ?payload ~src:2 ~dst:3 ()

let data_rsp ~mask values = rsp ~kind:Msg.RspV ~mask ~payload:(Msg.Data values) ()

let single_response_completes () =
  let t = Tu.create ~demand:(Mask.singleton 3) in
  match Tu.absorb t (data_rsp ~mask:(Mask.singleton 3) [| 33 |]) with
  | Some r ->
    check_int "value" 33 r.Tu.values.(3);
    check_bool "mask" true (Mask.equal r.Tu.data_mask (Mask.singleton 3))
  | None -> Alcotest.fail "expected completion"

let partial_responses_accumulate () =
  (* "A device that can issue multi-word requests must be able to handle
     multiple partial word granularity responses." *)
  let t = Tu.create ~demand:Addr.full_mask in
  check_bool "low half pending" true
    (Tu.absorb t (data_rsp ~mask:0x00FF (Array.init 8 (fun i -> i))) = None);
  match Tu.absorb t (data_rsp ~mask:0xFF00 (Array.init 8 (fun i -> 8 + i))) with
  | Some r ->
    check_int "word 0" 0 r.Tu.values.(0);
    check_int "word 15" 15 r.Tu.values.(15)
  | None -> Alcotest.fail "expected completion"

let opportunistic_words_folded_in () =
  (* Demand one word; a response covering more completes and keeps all. *)
  let t = Tu.create ~demand:(Mask.singleton 2) in
  match Tu.absorb t (data_rsp ~mask:0x000F [| 10; 11; 12; 13 |]) with
  | Some r ->
    check_int "demanded" 12 r.Tu.values.(2);
    check_int "extra" 13 r.Tu.values.(3);
    check_int "four words of data" 4 (Mask.count r.Tu.data_mask)
  | None -> Alcotest.fail "expected completion"

let acks_count_toward_completion () =
  let t = Tu.create ~demand:(Mask.of_list [ 0; 1 ]) in
  check_bool "pending" true
    (Tu.absorb t (rsp ~kind:Msg.RspO ~mask:(Mask.singleton 0) ()) = None);
  match Tu.absorb t (rsp ~kind:Msg.RspO ~mask:(Mask.singleton 1) ()) with
  | Some r ->
    check_bool "acked words" true (Mask.equal r.Tu.acked (Mask.of_list [ 0; 1 ]));
    check_bool "no data" true (Mask.is_empty r.Tu.data_mask)
  | None -> Alcotest.fail "expected completion"

let nacks_reported () =
  let t = Tu.create ~demand:(Mask.of_list [ 4; 5 ]) in
  check_bool "pending" true
    (Tu.absorb t (data_rsp ~mask:(Mask.singleton 4) [| 7 |]) = None);
  match Tu.absorb t (rsp ~kind:Msg.Nack ~mask:(Mask.singleton 5) ()) with
  | Some r ->
    check_bool "nacked word visible" true (Mask.equal r.Tu.nacked (Mask.singleton 5));
    check_int "data still there" 7 r.Tu.values.(4)
  | None -> Alcotest.fail "expected completion"

let mixed_sources () =
  (* LLC answers some words, two distinct owners the rest. *)
  let t = Tu.create ~demand:(Mask.of_list [ 0; 7; 15 ]) in
  check_bool "llc part" true (Tu.absorb t (data_rsp ~mask:(Mask.singleton 0) [| 1 |]) = None);
  check_bool "owner A" true (Tu.absorb t (data_rsp ~mask:(Mask.singleton 7) [| 2 |]) = None);
  match Tu.absorb t (data_rsp ~mask:(Mask.singleton 15) [| 3 |]) with
  | Some r ->
    check_int "a" 1 r.Tu.values.(0);
    check_int "b" 2 r.Tu.values.(7);
    check_int "c" 3 r.Tu.values.(15)
  | None -> Alcotest.fail "expected completion"

let completion_prop =
  QCheck2.Test.make ~name:"tu_completes_iff_demand_covered"
    QCheck2.Gen.(pair (int_bound 0xFFFF) (list_size (int_bound 8) (int_bound 0xFFFF)))
    (fun (demand, masks) ->
      let demand = if demand = 0 then 1 else demand in
      let t = Tu.create ~demand in
      let rec feed covered = function
        | [] -> true (* never completed, and demand never covered *)
        | m :: rest -> (
          let m = if m = 0 then 1 else m in
          let payload = Msg.Data (Array.make (Mask.count m) 0) in
          match Tu.absorb t (rsp ~kind:Msg.RspV ~mask:m ~payload ()) with
          | Some _ -> Mask.subset demand (Mask.union covered m)
          | None ->
            let covered = Mask.union covered m in
            if Mask.subset demand covered then false (* should have completed *)
            else feed covered rest)
      in
      feed Mask.empty masks)

let tests =
  [
    test "single_response_completes" single_response_completes;
    test "partial_responses_accumulate" partial_responses_accumulate;
    test "opportunistic_words_folded_in" opportunistic_words_folded_in;
    test "acks_count_toward_completion" acks_count_toward_completion;
    test "nacks_reported" nacks_reported;
    test "mixed_sources" mixed_sources;
  ]
  @ [ QCheck_alcotest.to_alcotest ~long:false completion_prop ]
