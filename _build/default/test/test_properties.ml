(* Regression guards for the cache-behaviour properties each paper result
   depends on.  These assert the *mechanism* behind every Figure 2/3
   conclusion, not just the end numbers, so a workload-generator or
   protocol regression that silently changes the story fails loudly. *)

module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Registry = Spandex_workloads.Registry
module Microbench = Spandex_workloads.Microbench
module Stats = Spandex_util.Stats
module Msg = Spandex_proto.Msg

let test = Helpers.test
let check_bool = Alcotest.(check bool)

(* Full-width geometry at half scale keeps each run under a second. *)
let params = Params.bench
let geom = Registry.geometry_of_params params

let run name config =
  let wl = (Registry.find name).Registry.build ~scale:0.5 geom in
  let r = Run.simulate ~params ~config wl in
  Run.assert_clean r;
  r

let get r k = Stats.get r.Run.stats k

(* Sum a per-device counter over a component prefix. *)
let total r ~component ~counter =
  List.fold_left
    (fun acc (k, v) ->
      let suffix = "." ^ counter in
      if
        String.length k > String.length component
        && String.sub k 0 (String.length component) = component
        && String.length k >= String.length suffix
        && String.sub k (String.length k - String.length suffix)
             (String.length suffix)
           = suffix
      then acc + v
      else acc)
    0
    (Stats.to_assoc r.Run.stats)

let ratio a b = float_of_int a /. float_of_int (max 1 b)

(* BC's story: DeNovo GPU caches exploit atomic temporal locality. *)
let bc_denovo_atomics_hit_locally () =
  let r = run "bc" Config.sdd in
  let hits = total r ~component:"denovo_l1" ~counter:"rmw_hit_owned" in
  let misses = total r ~component:"denovo_l1" ~counter:"rmw_miss" in
  check_bool "most atomics hit owned words" true
    (ratio hits (hits + misses) > 0.6);
  (* ...while GPU coherence performs every atomic at the LLC. *)
  let g = run "bc" Config.sdg in
  check_bool "gpu-coh atomics all remote" true
    (total g ~component:"gpu_l1" ~counter:"rmw" > 0
    && total g ~component:"gpu_l1" ~counter:"rmw_hit_owned" = 0)

(* ReuseO's story: ownership carries written tiles across iterations. *)
let reuseo_ownership_reuse () =
  let r = run "reuseo" Config.sdd in
  let owned_hits = total r ~component:"denovo_l1" ~counter:"store_hit_owned" in
  check_bool "re-written tiles hit owned words" true (owned_hits > 1000);
  (* GPU coherence re-fetches: its traffic for the same workload is far
     higher. *)
  let g = run "reuseo" Config.smg in
  check_bool "write-through streams more traffic" true
    (g.Run.total_flits > r.Run.total_flits)

(* ReuseS's story: only Shared state survives the barriers. *)
let reuses_shared_state_reuse () =
  let mesi = run "reuses" Config.smg in
  let denovo = run "reuses" Config.sdd in
  let mesi_hits = total mesi ~component:"mesi_l1" ~counter:"load_hit" in
  let mesi_misses = total mesi ~component:"mesi_l1" ~counter:"load_miss" in
  check_bool "MESI CPUs keep the matrix across iterations" true
    (ratio mesi_hits (mesi_hits + mesi_misses) > 0.9);
  let d_hits = total denovo ~component:"denovo_l1" ~counter:"load_hit" in
  let d_misses = total denovo ~component:"denovo_l1" ~counter:"load_miss" in
  check_bool "self-invalidation costs the DeNovo CPUs reuse" true
    (ratio d_hits (d_hits + d_misses) < ratio mesi_hits (mesi_hits + mesi_misses))

(* Indirection's story: no cross-iteration reuse — every line the GPU
   reads misses again each iteration (spatial within-line hits remain). *)
let indirection_defeats_caches () =
  let r = run "indirection" Config.smg in
  let misses = total r ~component:"gpu_l1" ~counter:"load_miss" in
  (* At scale 0.5 the matrix is 72x72 = 324 lines, read fully by the GPU in
     each of 2 iterations: ~648 misses iff nothing survives the barrier. *)
  check_bool "every line re-missed each iteration" true
    (misses >= 580 && misses <= 750)

(* RSCT's story: the hierarchy's L2 absorbs the shared-window re-reads. *)
let rsct_l2_filters_sharing () =
  let r = run "rsct" Config.hmg in
  let l2_hits = get r "gpu_l2.hit" in
  let dir_hits = get r "mesi_dir.hit" + get r "mesi_dir.miss" in
  check_bool "L2 serves most GPU traffic" true (l2_hits > 4 * dir_hits)

(* The flat LLC never blocks ownership transfers; the directory always
   does. *)
let blocking_vs_nonblocking_transfers () =
  let h = run "bc" Config.hmd in
  check_bool "directory forwarded transfers block" true
    (get h "mesi_dir.fwd_getm" > 0);
  let s = run "bc" Config.sdd in
  check_bool "Spandex transfers forwarded without blocking" true
    (get s "spandex_llc.fwd_reqodata" > 0);
  (* Spandex blocks only for Inv collection and RvkO write-backs; BC on
     SDD needs neither. *)
  check_bool "no invalidation bursts" true (get s "spandex_llc.inv_bursts" = 0)

(* The hierarchical baseline routes CPU-GPU sharing through two levels. *)
let hierarchy_pays_indirection () =
  let h = run "indirection" Config.hmg in
  check_bool "L2 misses escalate to the directory" true
    (get h "mesi_client.getm" + get h "mesi_client.gets" > 500);
  check_bool "directory recalls the L2 for CPU reads" true
    (get h "gpu_l2.recall" > 100)

(* TRNS's story: fine-grain flag atomics + word-granularity wins. *)
let trns_word_granularity_avoids_false_sharing () =
  let smd = run "trns" Config.smd in
  (* MESI CPUs beside DeNovo warps force Fig-1d partial downgrades... *)
  check_bool "partial downgrades occur" true
    (total smd ~component:"mesi_l1" ~counter:"partial_downgrade_wb" > 0);
  (* ...which the all-word-granularity configuration avoids entirely. *)
  let sdd = run "trns" Config.sdd in
  check_bool "no partial downgrades without MESI" true
    (total sdd ~component:"mesi_l1" ~counter:"partial_downgrade_wb" = 0)

(* The GPU cores really do hide latency: a GPU-heavy workload keeps many
   requests in flight (coalesced misses and parallel warps). *)
let gpu_latency_tolerance () =
  let r = run "rsct" Config.smg in
  check_bool "misses coalesce across warps" true
    (total r ~component:"gpu_l1" ~counter:"load_miss_coalesced" > 0)

let tests =
  [
    test "bc_denovo_atomics_hit_locally" bc_denovo_atomics_hit_locally;
    test "reuseo_ownership_reuse" reuseo_ownership_reuse;
    test "reuses_shared_state_reuse" reuses_shared_state_reuse;
    test "indirection_defeats_caches" indirection_defeats_caches;
    test "rsct_l2_filters_sharing" rsct_l2_filters_sharing;
    test "blocking_vs_nonblocking_transfers" blocking_vs_nonblocking_transfers;
    test "hierarchy_pays_indirection" hierarchy_pays_indirection;
    test "trns_word_granularity_avoids_false_sharing" trns_word_granularity_avoids_false_sharing;
    test "gpu_latency_tolerance" gpu_latency_tolerance;
  ]
