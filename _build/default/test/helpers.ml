(* Shared test utilities. *)

module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo
module Ops = Spandex_device.Ops
module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Workload = Spandex_system.Workload

let w i = Addr.line_of_word_index i

(* A workload touching word indices offset by [base] so tests don't collide
   in interesting ways unless they mean to. *)
let workload ?(name = "test") ?(barriers = [||]) ~cpu ~gpu () =
  { Workload.name; cpu_programs = cpu; gpu_programs = gpu; barrier_parties = barriers; region_of = (fun _ -> 0) }

let simulate ?params config wl =
  let r = Run.simulate ?params ~config wl in
  Run.assert_clean r;
  r

let run_all_configs ?params wl =
  List.map (fun c -> (c, simulate ?params c wl)) Config.all

let check_all_configs ?params wl =
  List.iter (fun c -> ignore (simulate ?params c wl)) Config.all

let test name f = Alcotest.test_case name `Quick f

(* Small but not tiny: exercises the protocols without long runtimes. *)
let quick_params =
  {
    Params.default with
    Params.cpu_cores = 2;
    gpu_cus = 2;
    warps_per_cu = 2;
    mem_latency = 40;
  }
