(* Unit tests for the Spandex LLC: every Table III transition, the blocking
   cases, the races of paper III-C, and eviction/purge machinery. *)

open Proto_harness
module State = Spandex_proto.State
module Amo = Spandex_proto.Amo

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let w = Mask.singleton
let full = Addr.full_mask

(* --- ReqV ------------------------------------------------------------------- *)

let reqv_fills_from_memory () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqV ~line:3 ~mask:full ());
  let m = expect_kind ~what:"fill" (inbox t 0) (Msg.Rsp Msg.RspV) in
  check_int "all words" 16 (List.length (payload_list m));
  check_int "first value" (init_word ~line:3 ~word:0) (List.hd (payload_list m));
  check_bool "line resident V" true (Llc.line_state t.llc ~line:3 = Some State.L_V);
  check_bool "no ownership" true (Mask.is_empty (Llc.owned_mask t.llc ~line:3))

let reqv_no_state_change () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqV ~line:3 ~mask:full ());
  ignore (req t ~from:1 ~kind:Msg.ReqV ~line:3 ~mask:full ());
  check_bool "still V" true (Llc.line_state t.llc ~line:3 = Some State.L_V);
  check_bool "no sharers" true (Llc.sharers t.llc ~line:3 = [])

let reqv_forwards_owned_words () =
  let t = setup () in
  (* Device 0 takes word 4. *)
  ignore (req t ~from:0 ~kind:Msg.ReqO ~line:3 ~mask:(w 4) ());
  clear_inboxes t;
  (* Device 1 reads the line demanding word 4. *)
  ignore (req t ~from:1 ~kind:Msg.ReqV ~line:3 ~mask:full ~demand:(w 4) ());
  let fill = expect_kind ~what:"LLC part" (inbox t 1) (Msg.Rsp Msg.RspV) in
  check_int "15 local words" 15 (List.length (payload_list fill));
  let fwd = expect_kind ~what:"forward" (inbox t 0) (Msg.Req Msg.ReqV) in
  check_bool "fwd flag" true fwd.Msg.fwd;
  check_bool "fwd covers owned word" true (Mask.mem fwd.Msg.mask 4);
  check_bool "fwd demand" true (Mask.mem fwd.Msg.demand 4);
  check_int "requestor preserved" 1 fwd.Msg.requestor;
  (* Ownership unchanged by ReqV. *)
  check_bool "still owned by 0" true (Llc.owner_of t.llc (Addr.make ~line:3 ~word:4) = Some 0)

let reqv_self_owned_demand_nacked () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqO ~line:3 ~mask:(w 2) ());
  clear_inboxes t;
  ignore (req t ~from:0 ~kind:Msg.ReqV ~line:3 ~mask:(w 2) ~demand:(w 2) ());
  let nack = expect_kind ~what:"self nack" (inbox t 0) (Msg.Rsp Msg.Nack) in
  check_bool "nack word" true (Mask.mem nack.Msg.mask 2)

(* --- ReqO / ReqO+data --------------------------------------------------------- *)

let reqo_grants_word_ownership () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqO ~line:5 ~mask:(Mask.of_list [ 1; 2 ]) ());
  let rsp = expect_kind ~what:"grant" (inbox t 0) (Msg.Rsp Msg.RspO) in
  check_bool "no data in RspO" true (payload_list rsp = []);
  check_bool "owner recorded" true
    (Llc.owner_of t.llc (Addr.make ~line:5 ~word:1) = Some 0
    && Llc.owner_of t.llc (Addr.make ~line:5 ~word:2) = Some 0);
  check_bool "other words unowned" true
    (Llc.owner_of t.llc (Addr.make ~line:5 ~word:3) = None)

let reqo_transfer_nonblocking () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqO ~line:5 ~mask:(w 1) ());
  clear_inboxes t;
  ignore (req t ~from:1 ~kind:Msg.ReqO ~line:5 ~mask:(w 1) ());
  (* Ownership moves immediately; the old owner is told to downgrade and
     answers the requestor directly; the LLC does not block. *)
  check_bool "new owner immediately" true
    (Llc.owner_of t.llc (Addr.make ~line:5 ~word:1) = Some 1);
  let fwd = expect_kind ~what:"revoke fwd" (inbox t 0) (Msg.Req Msg.ReqO) in
  check_int "fwd requestor" 1 fwd.Msg.requestor;
  (* A third request for the same line is served without waiting. *)
  ignore (req t ~from:2 ~kind:Msg.ReqV ~line:5 ~mask:(w 9) ());
  ignore (expect_kind ~what:"not blocked" (inbox t 2) (Msg.Rsp Msg.RspV))

let reqodata_carries_data () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqOdata ~line:6 ~mask:(w 3) ());
  let rsp = expect_kind ~what:"grant+data" (inbox t 0) (Msg.Rsp Msg.RspOdata) in
  check_int "value" (init_word ~line:6 ~word:3) (List.hd (payload_list rsp));
  check_bool "owned" true (Llc.owner_of t.llc (Addr.make ~line:6 ~word:3) = Some 0)

let reqodata_forwards_to_owner () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqOdata ~line:6 ~mask:(w 3) ());
  clear_inboxes t;
  ignore (req t ~from:1 ~kind:Msg.ReqOdata ~line:6 ~mask:(w 3) ());
  let fwd = expect_kind ~what:"fwd" (inbox t 0) (Msg.Req Msg.ReqOdata) in
  check_int "to old owner, requestor 1" 1 fwd.Msg.requestor;
  expect_no_kind ~what:"LLC must not answer the owned word" (inbox t 1)
    (Msg.Rsp Msg.RspOdata);
  check_bool "transfer immediate" true
    (Llc.owner_of t.llc (Addr.make ~line:6 ~word:3) = Some 1)

(* --- ReqWT / ReqWT+data -------------------------------------------------------- *)

let reqwt_writes_through () =
  let t = setup () in
  ignore
    (req t ~from:0 ~kind:Msg.ReqWT ~line:7 ~mask:(Mask.of_list [ 0; 8 ])
       ~payload:(Msg.Data [| 111; 222 |])
       ());
  ignore (expect_kind ~what:"ack" (inbox t 0) (Msg.Rsp Msg.RspWT));
  check_bool "data at LLC" true
    (Llc.peek_word t.llc (Addr.make ~line:7 ~word:0) = Some 111
    && Llc.peek_word t.llc (Addr.make ~line:7 ~word:8) = Some 222);
  check_bool "no ownership from WT" true (Mask.is_empty (Llc.owned_mask t.llc ~line:7))

let reqwt_revokes_owner_fig1d () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqO ~line:7 ~mask:(w 5) ());
  clear_inboxes t;
  ignore
    (req t ~from:1 ~kind:Msg.ReqWT ~line:7 ~mask:(Mask.of_list [ 5; 6 ])
       ~payload:(Msg.Data [| 55; 66 |])
       ());
  (* LLC immediately updates data and ownership, forwards a data-less
     revoke; the owner (not the LLC) acks the revoked word. *)
  check_bool "word 5 no longer owned" true
    (Llc.owner_of t.llc (Addr.make ~line:7 ~word:5) = None);
  check_bool "written immediately" true
    (Llc.peek_word t.llc (Addr.make ~line:7 ~word:5) = Some 55);
  let fwd = expect_kind ~what:"revoke" (inbox t 0) (Msg.Req Msg.ReqO) in
  check_bool "revoke covers only owned word" true (Mask.equal fwd.Msg.mask (w 5));
  let ack = expect_kind ~what:"partial ack" (inbox t 1) (Msg.Rsp Msg.RspWT) in
  check_bool "LLC acks only unowned part" true (Mask.equal ack.Msg.mask (w 6))

let reqwtdata_atomic_at_llc () =
  let t = setup () in
  ignore
    (req t ~from:0 ~kind:Msg.ReqWTdata ~line:8 ~mask:(w 2) ~amo:(Amo.Add 5) ());
  let rsp = expect_kind ~what:"old value" (inbox t 0) (Msg.Rsp Msg.RspWTdata) in
  check_int "returns pre-update value" (init_word ~line:8 ~word:2)
    (List.hd (payload_list rsp));
  check_bool "updated at LLC" true
    (Llc.peek_word t.llc (Addr.make ~line:8 ~word:2)
    = Some (init_word ~line:8 ~word:2 + 5))

let reqwtdata_blocks_on_rvko () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqOdata ~line:8 ~mask:(w 2) ());
  clear_inboxes t;
  ignore
    (req t ~from:1 ~kind:Msg.ReqWTdata ~line:8 ~mask:(w 2) ~amo:(Amo.Add 1) ());
  let rvko = expect_kind ~what:"revoke" (inbox t 0) (Msg.Probe Msg.RvkO) in
  expect_no_kind ~what:"blocked until write-back" (inbox t 1)
    (Msg.Rsp Msg.RspWTdata);
  (* A racing read is queued behind the blocking state... *)
  ignore (req t ~from:2 ~kind:Msg.ReqV ~line:8 ~mask:(w 0) ());
  expect_no_kind ~what:"queued" (inbox t 2) (Msg.Rsp Msg.RspV);
  (* ...until the owner writes back (value 99). *)
  rsp t ~from:0 ~kind:Msg.RspRvkO ~line:8 ~mask:(w 2)
    ~payload:(Msg.Data [| 99 |]) ~txn:rvko.Msg.txn ();
  let result = expect_kind ~what:"atomic done" (inbox t 1) (Msg.Rsp Msg.RspWTdata) in
  check_int "old value from owner" 99 (List.hd (payload_list result));
  check_bool "post-update at LLC" true
    (Llc.peek_word t.llc (Addr.make ~line:8 ~word:2) = Some 100);
  ignore (expect_kind ~what:"queued read replayed" (inbox t 2) (Msg.Rsp Msg.RspV))

(* --- ReqS: options (1) and (3) --------------------------------------------------- *)

let reqs_opt3_treated_as_ownership () =
  (* Unshared, no MESI owner: option (3) grants ownership with data. *)
  let t = setup ~kind_of:(fun id -> if id = 1 then Llc.Kind_mesi else Llc.Kind_denovo) () in
  ignore (req t ~from:1 ~kind:Msg.ReqS ~line:9 ~mask:full ());
  let rsp = expect_kind ~what:"E grant" (inbox t 1) (Msg.Rsp Msg.RspOdata) in
  check_int "full data" 16 (List.length (payload_list rsp));
  check_bool "whole line owned" true
    (Mask.equal (Llc.owned_mask t.llc ~line:9) full);
  check_bool "no sharers" true (Llc.sharers t.llc ~line:9 = [])

let reqs_opt3_with_denovo_owner () =
  let t = setup ~kind_of:(fun id -> if id = 1 then Llc.Kind_mesi else Llc.Kind_denovo) () in
  ignore (req t ~from:0 ~kind:Msg.ReqO ~line:9 ~mask:(w 7) ());
  clear_inboxes t;
  ignore (req t ~from:1 ~kind:Msg.ReqS ~line:9 ~mask:full ());
  (* Non-MESI owner: option 3; the DeNovo owner receives ReqO+data. *)
  let fwd = expect_kind ~what:"fwd odata" (inbox t 0) (Msg.Req Msg.ReqOdata) in
  check_bool "only owned word forwarded" true (Mask.equal fwd.Msg.mask (w 7));
  let rsp = expect_kind ~what:"rest from LLC" (inbox t 1) (Msg.Rsp Msg.RspOdata) in
  check_int "15 words" 15 (List.length (payload_list rsp));
  check_bool "requestor owns all" true
    (Llc.owner_of t.llc (Addr.make ~line:9 ~word:7) = Some 1)

let reqs_opt1_with_mesi_owner () =
  let t = setup ~kind_of:(fun _ -> Llc.Kind_mesi) () in
  ignore (req t ~from:0 ~kind:Msg.ReqOdata ~line:9 ~mask:full ());
  clear_inboxes t;
  ignore (req t ~from:1 ~kind:Msg.ReqS ~line:9 ~mask:full ());
  let fwd = expect_kind ~what:"fwd ReqS" (inbox t 0) (Msg.Req Msg.ReqS) in
  check_int "requestor" 1 fwd.Msg.requestor;
  (* Blocked until the owner's write-back copy arrives. *)
  check_bool "still owned while blocked" true
    (not (Mask.is_empty (Llc.owned_mask t.llc ~line:9)));
  rsp t ~from:0 ~kind:Msg.RspRvkO ~line:9 ~mask:full
    ~payload:(Msg.Data (Array.init 16 (fun i -> 900 + i)))
    ~txn:fwd.Msg.txn ();
  check_bool "line Shared" true (Llc.line_state t.llc ~line:9 = Some State.L_S);
  check_bool "ownership cleared" true (Mask.is_empty (Llc.owned_mask t.llc ~line:9));
  let sharers = Llc.sharers t.llc ~line:9 in
  check_bool "old owner and requestor are sharers" true
    (List.mem 0 sharers && List.mem 1 sharers);
  check_bool "write-back merged" true
    (Llc.peek_word t.llc (Addr.make ~line:9 ~word:4) = Some 904)

let reqs_opt1_when_already_shared () =
  let t = setup ~kind_of:(fun _ -> Llc.Kind_mesi) () in
  (* Build LS state via opt1 path. *)
  ignore (req t ~from:0 ~kind:Msg.ReqOdata ~line:9 ~mask:full ());
  let fwd = expect_kind ~what:"setup" (inbox t 0) (Msg.Rsp Msg.RspOdata) in
  ignore fwd;
  clear_inboxes t;
  let txn = req t ~from:1 ~kind:Msg.ReqS ~line:9 ~mask:full () in
  ignore txn;
  let fwd = expect_kind ~what:"fwd" (inbox t 0) (Msg.Req Msg.ReqS) in
  rsp t ~from:0 ~kind:Msg.RspRvkO ~line:9 ~mask:full
    ~payload:(Msg.Data (Array.make 16 7)) ~txn:fwd.Msg.txn ();
  clear_inboxes t;
  (* Third reader: immediate RspS, added to sharers, no blocking. *)
  ignore (req t ~from:2 ~kind:Msg.ReqS ~line:9 ~mask:full ());
  let rsp2 = expect_kind ~what:"shared read" (inbox t 2) (Msg.Rsp Msg.RspS) in
  check_int "line data" 16 (List.length (payload_list rsp2));
  check_bool "three sharers" true (List.length (Llc.sharers t.llc ~line:9) = 3)

let write_to_shared_collects_acks () =
  let t = setup ~kind_of:(fun _ -> Llc.Kind_mesi) () in
  (* LS with sharers {0,1} as above. *)
  ignore (req t ~from:0 ~kind:Msg.ReqOdata ~line:9 ~mask:full ());
  clear_inboxes t;
  let _ = req t ~from:1 ~kind:Msg.ReqS ~line:9 ~mask:full () in
  let fwd = expect_kind ~what:"fwd" (inbox t 0) (Msg.Req Msg.ReqS) in
  rsp t ~from:0 ~kind:Msg.RspRvkO ~line:9 ~mask:full
    ~payload:(Msg.Data (Array.make 16 7)) ~txn:fwd.Msg.txn ();
  clear_inboxes t;
  (* Device 2 writes word 0: both sharers must be invalidated first. *)
  ignore
    (req t ~from:2 ~kind:Msg.ReqWT ~line:9 ~mask:(w 0)
       ~payload:(Msg.Data [| 1234 |]) ());
  let inv0 = expect_kind ~what:"inv to 0" (inbox t 0) (Msg.Probe Msg.Inv) in
  let inv1 = expect_kind ~what:"inv to 1" (inbox t 1) (Msg.Probe Msg.Inv) in
  expect_no_kind ~what:"write blocked" (inbox t 2) (Msg.Rsp Msg.RspWT);
  rsp t ~from:0 ~kind:Msg.Ack ~line:9 ~mask:full ~txn:inv0.Msg.txn ();
  expect_no_kind ~what:"one ack is not enough" (inbox t 2) (Msg.Rsp Msg.RspWT);
  rsp t ~from:1 ~kind:Msg.Ack ~line:9 ~mask:full ~txn:inv1.Msg.txn ();
  ignore (expect_kind ~what:"write completes" (inbox t 2) (Msg.Rsp Msg.RspWT));
  check_bool "line back to V" true (Llc.line_state t.llc ~line:9 = Some State.L_V);
  check_bool "no sharers left" true (Llc.sharers t.llc ~line:9 = []);
  check_bool "value" true (Llc.peek_word t.llc (Addr.make ~line:9 ~word:0) = Some 1234)

(* --- ReqWB ----------------------------------------------------------------------- *)

let wb_from_owner_merges () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqO ~line:11 ~mask:(Mask.of_list [ 0; 1 ]) ());
  clear_inboxes t;
  ignore
    (req t ~from:0 ~kind:Msg.ReqWB ~line:11 ~mask:(Mask.of_list [ 0; 1 ])
       ~payload:(Msg.Data [| 10; 11 |])
       ());
  ignore (expect_kind ~what:"wb ack" (inbox t 0) (Msg.Rsp Msg.RspWB));
  check_bool "ownership returned" true (Mask.is_empty (Llc.owned_mask t.llc ~line:11));
  check_bool "data merged" true
    (Llc.peek_word t.llc (Addr.make ~line:11 ~word:0) = Some 10
    && Llc.peek_word t.llc (Addr.make ~line:11 ~word:1) = Some 11)

let wb_from_non_owner_dropped () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqO ~line:11 ~mask:(w 0) ());
  (* Ownership races away to device 1. *)
  ignore (req t ~from:1 ~kind:Msg.ReqO ~line:11 ~mask:(w 0) ());
  clear_inboxes t;
  (* Device 0's stale write-back must be acked but ignored. *)
  ignore
    (req t ~from:0 ~kind:Msg.ReqWB ~line:11 ~mask:(w 0)
       ~payload:(Msg.Data [| 666 |])
       ());
  ignore (expect_kind ~what:"still acked" (inbox t 0) (Msg.Rsp Msg.RspWB));
  check_bool "owner unchanged" true
    (Llc.owner_of t.llc (Addr.make ~line:11 ~word:0) = Some 1);
  check_bool "stale data dropped" true
    (Llc.peek_word t.llc (Addr.make ~line:11 ~word:0) <> Some 666)

let wb_for_absent_line_acked () =
  let t = setup () in
  ignore
    (req t ~from:0 ~kind:Msg.ReqWB ~line:50 ~mask:(w 0)
       ~payload:(Msg.Data [| 1 |])
       ());
  ignore (expect_kind ~what:"acked" (inbox t 0) (Msg.Rsp Msg.RspWB));
  check_bool "not allocated" true (Llc.line_state t.llc ~line:50 = None)

(* --- capacity: eviction and purge -------------------------------------------------- *)

let eviction_writes_back_dirty () =
  let t = setup ~sets:1 ~ways:2 () in
  ignore
    (req t ~from:0 ~kind:Msg.ReqWT ~line:1 ~mask:(w 0)
       ~payload:(Msg.Data [| 77 |]) ());
  ignore (req t ~from:0 ~kind:Msg.ReqV ~line:2 ~mask:full ());
  (* Third line in a 2-way set evicts the LRU (line 1, dirty). *)
  ignore (req t ~from:0 ~kind:Msg.ReqV ~line:3 ~mask:full ());
  check_bool "victim gone" true (Llc.line_state t.llc ~line:1 = None);
  check_int "dirty data reached memory" 77
    (Dram.peek_word t.dram (Addr.make ~line:1 ~word:0))

let eviction_purges_owned_victim () =
  let t = setup ~sets:1 ~ways:2 () in
  ignore (req t ~from:0 ~kind:Msg.ReqO ~line:1 ~mask:(w 0) ());
  ignore (req t ~from:1 ~kind:Msg.ReqO ~line:2 ~mask:(w 0) ());
  clear_inboxes t;
  (* Allocating line 3 must first revoke a victim's owner. *)
  ignore (req t ~from:2 ~kind:Msg.ReqV ~line:3 ~mask:full ());
  expect_no_kind ~what:"fill waits for purge" (inbox t 2) (Msg.Rsp Msg.RspV);
  let rvko = expect_kind ~what:"revoke victim owner" (inbox t 0) (Msg.Probe Msg.RvkO) in
  rsp t ~from:0 ~kind:Msg.RspRvkO ~line:1 ~mask:(w 0)
    ~payload:(Msg.Data [| 42 |]) ~txn:rvko.Msg.txn ();
  ignore (expect_kind ~what:"fill proceeds" (inbox t 2) (Msg.Rsp Msg.RspV));
  check_int "revoked data written back" 42
    (Dram.peek_word t.dram (Addr.make ~line:1 ~word:0))

(* --- blocked-queue ordering --------------------------------------------------------- *)

let blocked_requests_replay_in_order () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqOdata ~line:12 ~mask:(w 0) ());
  clear_inboxes t;
  (* Block the line with an LLC atomic needing the owner's data. *)
  let _ = req t ~from:1 ~kind:Msg.ReqWTdata ~line:12 ~mask:(w 0) ~amo:(Amo.Add 1) () in
  let rvko = expect_kind ~what:"rvko" (inbox t 0) (Msg.Probe Msg.RvkO) in
  (* Queue two writes while blocked. *)
  ignore
    (req t ~from:2 ~kind:Msg.ReqWT ~line:12 ~mask:(w 1)
       ~payload:(Msg.Data [| 1 |]) ());
  ignore
    (req t ~from:2 ~kind:Msg.ReqWT ~line:12 ~mask:(w 1)
       ~payload:(Msg.Data [| 2 |]) ());
  rsp t ~from:0 ~kind:Msg.RspRvkO ~line:12 ~mask:(w 0)
    ~payload:(Msg.Data [| 5 |]) ~txn:rvko.Msg.txn ();
  (* Replay preserved order: the final value is the second write. *)
  check_bool "last write wins" true
    (Llc.peek_word t.llc (Addr.make ~line:12 ~word:1) = Some 2);
  check_int "both acked" 2
    (List.length
       (List.filter (fun (m : Msg.t) -> m.Msg.kind = Msg.Rsp Msg.RspWT) (inbox t 2)))

(* --- crossing write-back (III-C case 2) ---------------------------------------------- *)

let crossing_wb_satisfies_revocation () =
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqOdata ~line:13 ~mask:(w 0) ());
  clear_inboxes t;
  let _ = req t ~from:1 ~kind:Msg.ReqWTdata ~line:13 ~mask:(w 0) ~amo:(Amo.Add 1) () in
  let rvko = expect_kind ~what:"rvko sent" (inbox t 0) (Msg.Probe Msg.RvkO) in
  (* The owner's eviction write-back crosses the RvkO and carries the data. *)
  ignore
    (req t ~from:0 ~kind:Msg.ReqWB ~line:13 ~mask:(w 0)
       ~payload:(Msg.Data [| 30 |]) ());
  let done_ = expect_kind ~what:"atomic unblocked by WB" (inbox t 1) (Msg.Rsp Msg.RspWTdata) in
  check_int "data came from the WB" 30 (List.hd (payload_list done_));
  (* The late data-less RspRvkO is ignored as a duplicate. *)
  rsp t ~from:0 ~kind:Msg.RspRvkO ~line:13 ~mask:(w 0) ~txn:rvko.Msg.txn ();
  check_bool "value intact" true
    (Llc.peek_word t.llc (Addr.make ~line:13 ~word:0) = Some 31)

let partial_rvko_responses_accumulate () =
  (* An owner may answer a multi-word revocation in parts (a word mid-RMW
     is surrendered late); the LLC must merge every part. *)
  let t = setup () in
  ignore (req t ~from:0 ~kind:Msg.ReqO ~line:14 ~mask:(Mask.of_list [ 0; 1 ]) ());
  clear_inboxes t;
  let _ = req t ~from:1 ~kind:Msg.ReqWTdata ~line:14 ~mask:(w 0) ~amo:(Amo.Add 1) () in
  let rvko = expect_kind ~what:"rvko both words" (inbox t 0) (Msg.Probe Msg.RvkO) in
  check_int "covers full holding" 2 (Mask.count rvko.Msg.mask);
  rsp t ~from:0 ~kind:Msg.RspRvkO ~line:14 ~mask:(w 1)
    ~payload:(Msg.Data [| 100 |]) ~txn:rvko.Msg.txn ();
  expect_no_kind ~what:"still waiting for word 0" (inbox t 1) (Msg.Rsp Msg.RspWTdata);
  rsp t ~from:0 ~kind:Msg.RspRvkO ~line:14 ~mask:(w 0)
    ~payload:(Msg.Data [| 200 |]) ~txn:rvko.Msg.txn ();
  let rsp_ = expect_kind ~what:"now complete" (inbox t 1) (Msg.Rsp Msg.RspWTdata) in
  check_int "old value from second part" 200 (List.hd (payload_list rsp_));
  check_bool "both parts merged" true
    (Llc.peek_word t.llc (Addr.make ~line:14 ~word:1) = Some 100
    && Llc.peek_word t.llc (Addr.make ~line:14 ~word:0) = Some 201)

let tests =
  [
    test "reqv_fills_from_memory" reqv_fills_from_memory;
    test "reqv_no_state_change" reqv_no_state_change;
    test "reqv_forwards_owned_words" reqv_forwards_owned_words;
    test "reqv_self_owned_demand_nacked" reqv_self_owned_demand_nacked;
    test "reqo_grants_word_ownership" reqo_grants_word_ownership;
    test "reqo_transfer_nonblocking" reqo_transfer_nonblocking;
    test "reqodata_carries_data" reqodata_carries_data;
    test "reqodata_forwards_to_owner" reqodata_forwards_to_owner;
    test "reqwt_writes_through" reqwt_writes_through;
    test "reqwt_revokes_owner_fig1d" reqwt_revokes_owner_fig1d;
    test "reqwtdata_atomic_at_llc" reqwtdata_atomic_at_llc;
    test "reqwtdata_blocks_on_rvko" reqwtdata_blocks_on_rvko;
    test "reqs_opt3_treated_as_ownership" reqs_opt3_treated_as_ownership;
    test "reqs_opt3_with_denovo_owner" reqs_opt3_with_denovo_owner;
    test "reqs_opt1_with_mesi_owner" reqs_opt1_with_mesi_owner;
    test "reqs_opt1_when_already_shared" reqs_opt1_when_already_shared;
    test "write_to_shared_collects_acks" write_to_shared_collects_acks;
    test "wb_from_owner_merges" wb_from_owner_merges;
    test "wb_from_non_owner_dropped" wb_from_non_owner_dropped;
    test "wb_for_absent_line_acked" wb_for_absent_line_acked;
    test "eviction_writes_back_dirty" eviction_writes_back_dirty;
    test "eviction_purges_owned_victim" eviction_purges_owned_victim;
    test "blocked_requests_replay_in_order" blocked_requests_replay_in_order;
    test "crossing_wb_satisfies_revocation" crossing_wb_satisfies_revocation;
    test "partial_rvko_responses_accumulate" partial_rvko_responses_accumulate;
  ]
