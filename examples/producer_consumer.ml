(* Producer/consumer with protocol introspection.

     dune exec examples/producer_consumer.exe

   Builds a flat Spandex system by hand — network, DRAM, LLC, one DeNovo
   CPU L1, one GPU-coherence L1 — drives it through a produce/consume
   handshake, and prints the coherence state the paper's §III describes:
   word-granularity ownership at the LLC, Valid/Owned state at the DeNovo
   cache, and the request mix on the network. *)

module Engine = Spandex_sim.Engine
module Network = Spandex_net.Network
module Addr = Spandex_proto.Addr
module Dram = Spandex_mem.Dram
module Llc = Spandex.Llc
module Backing = Spandex.Backing
module Denovo_l1 = Spandex_denovo.Denovo_l1
module Gpu_l1 = Spandex_gpucoh.Gpu_l1
module Port = Spandex_device.Port

let cpu_id = 0
let gpu_id = 1
let llc_id = 2

let () =
  let engine = Engine.create () in
  let net = Network.create engine (Network.flat_topology ~latency:8) in
  let dram = Dram.create engine ~latency:100 ~service_interval:2 in
  let llc =
    Llc.create engine net
      (Backing.dram engine dram)
      {
        Llc.llc_id;
        banks = 1;
        sets = 256;
        ways = 8;
        access_latency = 8;
        kind_of = (fun id -> if id = cpu_id then Llc.Kind_denovo else Llc.Kind_gpu);
        reqs_policy = Llc.Reqs_auto;
      }
  in
  let cpu =
    Denovo_l1.create engine net
      {
        Denovo_l1.id = cpu_id;
        llc_id;
        llc_banks = 1;
        sets = 16;
        ways = 4;
        mshrs = 16;
        sb_capacity = 16;
        hit_latency = 1;
        coalesce_window = 4;
        max_reqv_retries = 1;
        atomics_at_llc = false;
        region_of = (fun _ -> 0);
        policy = Spandex_l1.Spandex_policy.Static_own;
      }
  in
  let gpu =
    Gpu_l1.create engine net
      {
        Gpu_l1.id = gpu_id;
        llc_id;
        llc_banks = 1;
        sets = 16;
        ways = 4;
        mshrs = 16;
        sb_capacity = 16;
        hit_latency = 1;
        coalesce_window = 4;
        max_reqv_retries = 1;
      }
  in
  let cpu_port = Denovo_l1.port cpu and gpu_port = Gpu_l1.port gpu in
  let addr i = Addr.make ~line:5 ~word:i in
  let phase name = Printf.printf "\n== %s (cycle %d)\n" name (Engine.now engine) in
  let show_states () =
    Printf.printf "  LLC line 5: state=%s owned-words=%d sharers=%d\n"
      (match Llc.line_state llc ~line:5 with
      | Some s -> Spandex_proto.State.llc_line_to_string s
      | None -> "absent")
      (Spandex_util.Mask.count (Llc.owned_mask llc ~line:5))
      (List.length (Llc.sharers llc ~line:5));
    Printf.printf "  DeNovo CPU: word0 %s, word1 %s | GPU valid lines: %d\n"
      (Spandex_proto.State.device_to_string (Denovo_l1.word_state cpu (addr 0)))
      (Spandex_proto.State.device_to_string (Denovo_l1.word_state cpu (addr 1)))
      (Gpu_l1.valid_lines gpu)
  in
  let finished = ref false in
  (* The driver script: CPU produces 8 words (gaining word ownership),
     releases; GPU acquires, reads them, writes a reply; CPU reads it. *)
  let rec produce i k =
    if i = 8 then k ()
    else cpu_port.Port.store (addr i) ~value:(100 + i) ~k:(fun () -> produce (i + 1) k)
  in
  let rec consume i k =
    if i = 8 then k ()
    else
      gpu_port.Port.load (addr i) ~k:(fun v ->
          assert (v = 100 + i);
          consume (i + 1) k)
  in
  produce 0 (fun () ->
      cpu_port.Port.release ~k:(fun () ->
          phase "CPU produced words 0-7 and released";
          show_states ();
          gpu_port.Port.acquire ~k:(fun () ->
              consume 0 (fun () ->
                  phase "GPU consumed words 0-7";
                  show_states ();
                  gpu_port.Port.store (addr 15) ~value:999 ~k:(fun () ->
                      gpu_port.Port.release ~k:(fun () ->
                          cpu_port.Port.acquire ~k:(fun () ->
                              cpu_port.Port.load (addr 15) ~k:(fun v ->
                                  assert (v = 999);
                                  phase "CPU read the GPU's reply";
                                  show_states ();
                                  finished := true))))))));
  let cycles =
    Engine.run engine
      ~until_done:(fun () ->
        !finished && cpu_port.Port.quiescent () && gpu_port.Port.quiescent ()
        && Llc.quiescent llc
        && Network.in_flight net = 0)
      ~pending_desc:(fun () -> "producer/consumer demo")
  in
  Printf.printf "\nfinished in %d cycles; network messages by kind:\n" cycles;
  List.iter
    (fun (k, v) -> Printf.printf "  %-12s %d\n" k v)
    (Spandex_util.Stats.to_assoc (Network.stats net))
