(* Message-level protocol trace of the paper's Figure 1 scenarios.

     dune exec examples/protocol_trace.exe

   Recreates the four request flows of Figure 1 on a tiny flat Spandex
   system — a DeNovo "accelerator", a GPU-coherence cache, and a MESI cache
   attached to one Spandex LLC — with the transaction trace sink armed, so
   every Req/Rsp/probe is replayed in order afterwards, followed by the
   per-request-class latency histograms:

     1a: word-granularity ReqO then ReqWT to disjoint words of one line
     1b: ReqWT+data (atomic at the LLC) for remotely owned data (RvkO)
     1c: line-granularity ReqV with a remote owner (direct response)
     1d: word ReqWT hitting a line-granularity MESI owner (partial
         downgrade + write-back of the rest) *)

module Engine = Spandex_sim.Engine
module Trace = Spandex_sim.Trace
module Hist = Spandex_util.Hist
module Network = Spandex_net.Network
module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo
module Dram = Spandex_mem.Dram
module Llc = Spandex.Llc
module Backing = Spandex.Backing
module Port = Spandex_device.Port

let acc_id = 0 (* DeNovo "custom accelerator" *)
let gpu_id = 1
let mesi_id = 2
let llc_id = 3

let device_name = function
  | 0 -> "acc"
  | 1 -> "gpu"
  | 2 -> "mesi"
  | 3 -> "llc"
  | d -> Printf.sprintf "dev%d" d

let () =
  let trace =
    Trace.create { Trace.capacity = 1 lsl 12; sample_every = 1 lsl 20 }
  in
  let engine = Engine.create ~trace () in
  let net = Network.create engine (Network.flat_topology ~latency:4) in
  let dram = Dram.create engine ~latency:20 ~service_interval:1 in
  let _llc =
    Llc.create engine net
      (Backing.dram engine dram)
      {
        Llc.llc_id;
        banks = 1;
        sets = 64;
        ways = 4;
        access_latency = 2;
        kind_of =
          (fun id ->
            if id = mesi_id then Llc.Kind_mesi
            else if id = gpu_id then Llc.Kind_gpu
            else Llc.Kind_denovo);
        reqs_policy = Llc.Reqs_auto;
      }
  in
  let acc =
    Spandex_denovo.Denovo_l1.create engine net
      {
        Spandex_denovo.Denovo_l1.id = acc_id;
        llc_id;
        llc_banks = 1;
        sets = 8;
        ways = 2;
        mshrs = 8;
        sb_capacity = 8;
        hit_latency = 1;
        coalesce_window = 2;
        max_reqv_retries = 1;
        atomics_at_llc = false;
        region_of = (fun _ -> 0);
        policy = Spandex_l1.Spandex_policy.Static_own;
      }
  in
  let gpu =
    Spandex_gpucoh.Gpu_l1.create engine net
      {
        Spandex_gpucoh.Gpu_l1.id = gpu_id;
        llc_id;
        llc_banks = 1;
        sets = 8;
        ways = 2;
        mshrs = 8;
        sb_capacity = 8;
        hit_latency = 1;
        coalesce_window = 2;
        max_reqv_retries = 1;
      }
  in
  let mesi =
    Spandex_mesi.Mesi_l1.create engine net
      {
        Spandex_mesi.Mesi_l1.id = mesi_id;
        llc_id;
        llc_banks = 1;
        sets = 8;
        ways = 2;
        mshrs = 8;
        sb_capacity = 8;
        hit_latency = 1;
        coalesce_window = 2;
        notify_home_on_fwd_getm = false;
      }
  in
  let acc_p = Spandex_denovo.Denovo_l1.port acc in
  let gpu_p = Spandex_gpucoh.Gpu_l1.port gpu in
  let mesi_p = Spandex_mesi.Mesi_l1.port mesi in
  let finished = ref false in
  (* Each scenario is a CPS step; run them in sequence with banners. *)
  let fig_1a k =
    (* Accelerator takes word 0 with a data-less ReqO; the GPU writes word 5
       of the same line through — no false sharing, no blocking. *)
    acc_p.Port.store (Addr.make ~line:10 ~word:0) ~value:1 ~k:(fun () ->
        acc_p.Port.release ~k:(fun () ->
            gpu_p.Port.store (Addr.make ~line:10 ~word:5) ~value:2
              ~k:(fun () -> gpu_p.Port.release ~k)))
  in
  let fig_1b k =
    (* GPU atomic performed at the LLC: the accelerator's ownership of word
       0 is revoked with RvkO and the line written back first. *)
    gpu_p.Port.rmw (Addr.make ~line:10 ~word:0) (Amo.Add 1) ~k:(fun old ->
        assert (old = 1);
        k ())
  in
  let fig_1c k =
    (* GPU line-granularity ReqV: the LLC answers the words it holds and
       forwards the accelerator-owned word, which responds directly. *)
    acc_p.Port.store (Addr.make ~line:11 ~word:3) ~value:33 ~k:(fun () ->
        acc_p.Port.release ~k:(fun () ->
            gpu_p.Port.acquire ~k:(fun () ->
                gpu_p.Port.load (Addr.make ~line:11 ~word:3) ~k:(fun v ->
                    assert (v = 33);
                    k ()))))
  in
  let fig_1d k =
    (* GPU word write-through against a MESI line owner: the MESI cache is
       revoked for the written word and writes back the rest of the line. *)
    mesi_p.Port.store (Addr.make ~line:12 ~word:1) ~value:7 ~k:(fun () ->
        mesi_p.Port.release ~k:(fun () ->
            gpu_p.Port.store (Addr.make ~line:12 ~word:9) ~value:8
              ~k:(fun () -> gpu_p.Port.release ~k)))
  in
  let steps =
    [
      ("Fig 1a: ReqO word 0 (accelerator); ReqWT word 5 (GPU), same line", fig_1a);
      ("Fig 1b: GPU ReqWT+data on word 0 owned by the accelerator (RvkO)", fig_1b);
      ("Fig 1c: GPU line ReqV with an accelerator-owned word (direct rsp)", fig_1c);
      ("Fig 1d: GPU word ReqWT on a MESI-owned line (partial downgrade)", fig_1d);
    ]
  in
  (* Banners are stamped with the cycle each scenario starts at, then
     interleaved with the recorded message events during the replay. *)
  let banners = ref [] in
  let rec run_steps = function
    | [] -> finished := true
    | (name, step) :: rest ->
      banners := (Engine.now engine, name) :: !banners;
      step (fun () -> run_steps rest)
  in
  run_steps steps;
  let cycles =
    Engine.run engine
      ~until_done:(fun () ->
        !finished && acc_p.Port.quiescent () && gpu_p.Port.quiescent ()
        && mesi_p.Port.quiescent ()
        && Network.in_flight net = 0)
      ~pending_desc:(fun () -> "protocol trace demo")
  in
  let pending_banners = ref (List.rev !banners) in
  let flush_banners upto =
    let rec go () =
      match !pending_banners with
      | (cycle, name) :: rest when cycle <= upto ->
        Printf.printf "\n--- %s (cycle %d)\n" name cycle;
        pending_banners := rest;
        go ()
      | _ -> ()
    in
    go ()
  in
  Trace.iter trace ~f:(fun ev ->
      match ev with
      | Trace.Msg_send { time; src; dst; txn; kind; line } ->
        flush_banners time;
        Printf.printf "%4d  %-4s -> %-4s %-10s line=%d txn=%d\n" time
          (device_name src) (device_name dst) (Trace.kind_name kind) line txn
      | _ -> ());
  Printf.printf "\nper-class latency (cycles):\n";
  List.iter
    (fun (cls, (s : Hist.summary)) ->
      Printf.printf "  %-10s count=%-3d p50=%-4d p99=%-4d max=%d\n" cls
        s.Hist.count s.Hist.p50 s.Hist.p99 s.Hist.max)
    (Trace.latency_summaries trace);
  Printf.printf "\nall four Figure-1 scenarios completed in %d cycles.\n" cycles
