(* Command-line driver: run any workload on any cache configuration and
   inspect results.

     spandex_cli list
     spandex_cli run -w bc -c SMD
     spandex_cli run -w indirection --all-configs --scale 0.5
     spandex_cli sweep --jobs 4   # every workload x every configuration
     spandex_cli bench -o BENCH_sweep.json
     spandex_cli run -w stress -c SDD --stats --seed 7
     spandex_cli trace bc -c SMD -o bc.trace.json   # open in Perfetto
     spandex_cli explain bc --txn 42                # one txn's timeline *)

open Cmdliner
module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Sweep = Spandex_system.Sweep
module Report = Spandex_system.Report
module Registry = Spandex_workloads.Registry
module Trace = Spandex_sim.Trace
module Hist = Spandex_util.Hist
module Metrics = Spandex_obs.Metrics
module Pdes_prof = Spandex_obs.Pdes_prof
module Pdes = Spandex_sim.Pdes

let params_of ?(backend = Spandex_sim.Engine.Wheel_backend) ~cpus ~cus ~warps
    ~fault ~watchdog ~trace () =
  let base = Params.bench in
  {
    base with
    Params.cpu_cores = Option.value ~default:base.Params.cpu_cores cpus;
    gpu_cus = Option.value ~default:base.Params.gpu_cus cus;
    warps_per_cu = Option.value ~default:base.Params.warps_per_cu warps;
    fault;
    watchdog_cycles =
      Option.value ~default:base.Params.watchdog_cycles watchdog;
    trace;
    engine_backend = backend;
  }

let backend_of ~shards = function
  | "wheel" -> Spandex_sim.Engine.Wheel_backend
  | "heap" -> Spandex_sim.Engine.Heap_backend
  | "pdes" ->
    let shards =
      if shards > 0 then shards
      else max 2 (Domain.recommended_domain_count ())
    in
    Spandex_sim.Engine.Pdes_backend { shards }
  | s ->
    Printf.eprintf "unknown engine %s (wheel, heap or pdes)\n" s;
    exit 1

let fault_spec_of ~drop ~dup ~delay ~reorder ~seed =
  if drop = 0.0 && dup = 0.0 && delay = 0.0 && reorder = 0.0 then None
  else
    Some
      (Spandex_net.Fault.uniform ~drop ~dup ~delay ~reorder ~seed ())

let run_one ~params ~config ~scale ~stats entry =
  let geom = Registry.geometry_of_params params in
  let wl = entry.Registry.build ~scale geom in
  let t0 = Unix.gettimeofday () in
  let r =
    try Run.simulate ~params ~config wl with
    | Spandex_sim.Engine.Livelock l ->
      Format.eprintf "%s %s: %a@." entry.Registry.name config.Config.name
        Spandex_sim.Engine.pp_livelock l;
      exit 2
    | Spandex_util.Retry.Exhausted what ->
      Printf.eprintf "%s %s: retries exhausted: %s\n" entry.Registry.name
        config.Config.name what;
      exit 2
  in
  Run.assert_clean r;
  Printf.printf
    "%-12s %-4s cycles=%-9d flits=%-9d msgs=%-8d checks=%-7d wall=%.2fs\n"
    entry.Registry.name config.Config.name r.Run.cycles r.Run.total_flits
    r.Run.messages r.Run.checks
    (Unix.gettimeofday () -. t0);
  Printf.printf "  traffic: %s\n"
    (String.concat " "
       (List.map
          (fun (cat, n) ->
            Printf.sprintf "%s=%d" (Spandex_proto.Msg.category_name cat) n)
          r.Run.traffic));
  if params.Params.fault <> None then
    Format.printf "  %a@." Report.pp_fault_summary (Report.fault_summary r);
  if r.Run.latency <> [] then
    Format.printf "  @[<v 2>latency (cycles):@,%a@]@." Report.pp_latency r;
  if stats then
    List.iter
      (fun (k, v) -> Printf.printf "  %-40s %d\n" k v)
      (Spandex_util.Stats.to_assoc r.Run.stats)

(* --- arguments ------------------------------------------------------------- *)

let workload_arg =
  let doc =
    Printf.sprintf "Workload to run; one of: %s."
      (String.concat ", " Registry.names)
  in
  Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~doc)

let config_arg =
  let doc = "Cache configuration (HMG, HMD, SMG, SMD, SDG or SDD)." in
  Arg.(value & opt (some string) None & info [ "c"; "config" ] ~doc)

let all_configs_arg =
  Arg.(value & flag & info [ "all-configs" ] ~doc:"Run every configuration.")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Workload size factor.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Dump per-component counters.")

let cpus_arg =
  Arg.(value & opt (some int) None & info [ "cpus" ] ~doc:"CPU core count.")

let cus_arg =
  Arg.(value & opt (some int) None & info [ "cus" ] ~doc:"GPU CU count.")

let warps_arg =
  Arg.(value & opt (some int) None & info [ "warps" ] ~doc:"Warps per CU.")

let fault_drop_arg =
  Arg.(
    value & opt float 0.0
    & info [ "fault-drop" ]
        ~doc:"Probability of dropping an eligible message (0 disables).")

let fault_dup_arg =
  Arg.(
    value & opt float 0.0
    & info [ "fault-dup" ]
        ~doc:"Probability of duplicating an eligible message.")

let fault_delay_arg =
  Arg.(
    value & opt float 0.0
    & info [ "fault-delay" ] ~doc:"Probability of adding extra latency.")

let fault_reorder_arg =
  Arg.(
    value & opt float 0.0
    & info [ "fault-reorder" ]
        ~doc:"Probability of jittering delivery order within a window.")

let fault_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ]
        ~doc:"Deterministic seed for the fault-injection plan.")

let trace_flag_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Record a transaction-level trace during the run: per-class \
           latency histograms are printed afterwards.  Results are \
           bit-identical to an untraced run.")

let watchdog_arg =
  Arg.(
    value & opt (some int) None
    & info [ "watchdog-cycles" ]
        ~doc:
          "Raise a structured livelock error when no core retires an op for \
           this many cycles (0 disables; default 200000).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for independent simulations (0 = cores - 1, \
           1 = sequential). Results are bit-identical for any value.")

let engine_arg =
  Arg.(
    value & opt string "wheel"
    & info [ "engine" ]
        ~doc:
          "Simulation backend: 'wheel' (timing wheel, default), 'heap' \
           (the pre-wheel binary heap reference scheduler) or 'pdes' \
           (conservative parallel discrete-event simulation — the machine \
           is sharded across domains synchronized on the topology's \
           minimum latency; see --shards).  Results are bit-identical for \
           every backend; only speed differs.")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ]
        ~doc:
          "Shard count for --engine pdes (0 = recommended domain count, \
           min 2).  The effective count is capped by the number of \
           placement units — one per core, one per home bank (each LLC or \
           directory bank carries its own DRAM channel), plus one for the \
           GPU-L2 complex on hierarchical configs; barrier workloads \
           collapse the cores onto a single unit.  Fault plans do not cap \
           (fault RNG streams are per-link).  A capped request is \
           reported with the reason, not an error.")

let resolve_jobs jobs = if jobs <= 0 then Sweep.default_jobs () else jobs

(* --- commands -------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "Workloads:\n";
    List.iter
      (fun e ->
        Printf.printf "  %-12s (%s)\n" e.Registry.name
          (match e.Registry.kind with
          | `Micro -> "synthetic microbenchmark, paper IV-B1"
          | `App -> "collaborative application, paper IV-B2"
          | `Stress -> "randomized DRF litmus generator"))
      Registry.entries;
    Printf.printf "Configurations:\n";
    List.iter
      (fun c -> Printf.printf "  %s\n" (Config.describe c))
      Config.extended
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads and configurations")
    Term.(const run $ const ())

let run_cmd =
  let run workload config all_configs scale stats cpus cus warps drop dup delay
      reorder fault_seed watchdog trace engine shards =
    let entry =
      try Registry.find workload
      with Not_found ->
        Printf.eprintf "unknown workload %s (try: %s)\n" workload
          (String.concat ", " Registry.names);
        exit 1
    in
    let fault = fault_spec_of ~drop ~dup ~delay ~reorder ~seed:fault_seed in
    let trace = if trace then Some Trace.default_spec else None in
    let backend = backend_of ~shards engine in
    let params = params_of ~backend ~cpus ~cus ~warps ~fault ~watchdog ~trace () in
    let configs =
      if all_configs then Config.all
      else
        match config with
        | Some name -> (
          try [ Config.by_name name ]
          with Not_found ->
            Printf.eprintf "unknown configuration %s\n" name;
            exit 1)
        | None -> [ Config.smd ]
    in
    List.iter (fun config -> run_one ~params ~config ~scale ~stats entry) configs
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload")
    Term.(
      const run $ workload_arg $ config_arg $ all_configs_arg $ scale_arg
      $ stats_arg $ cpus_arg $ cus_arg $ warps_arg $ fault_drop_arg
      $ fault_dup_arg $ fault_delay_arg $ fault_reorder_arg $ fault_seed_arg
      $ watchdog_arg $ trace_flag_arg $ engine_arg $ shards_arg)

(* The (workload x config) job matrix: every non-stress registry entry on
   every swept cache configuration (the paper's six plus the adaptive
   extensions), in registry order. *)
let sweep_jobs ~params ~scale entries =
  let geom = Registry.geometry_of_params params in
  List.concat_map
    (fun e ->
      let wl = e.Registry.build ~scale geom in
      List.map
        (fun config ->
          { Sweep.label = e.Registry.name; params; config; workload = wl })
        Config.extended)
    entries

let rows_of_results entries results =
  let ncfg = List.length Config.extended in
  List.mapi
    (fun i e ->
      let cells =
        List.mapi
          (fun j config ->
            {
              Report.config = config.Config.name;
              result = results.((i * ncfg) + j);
            })
          Config.extended
      in
      { Report.workload = e.Registry.name; cells })
    entries

let sweep_entries () =
  List.filter (fun e -> e.Registry.kind <> `Stress) Registry.entries

let sweep_cmd =
  let run scale jobs =
    let jobs = resolve_jobs jobs in
    let params = Params.bench in
    let entries = sweep_entries () in
    let cells = sweep_jobs ~params ~scale entries in
    let results = Array.of_list (Sweep.simulate_all ~jobs cells) in
    Array.iter Run.assert_clean results;
    let rows = rows_of_results entries results in
    List.iter
      (fun (row : Report.row) ->
        Printf.printf "%-12s " row.Report.workload;
        List.iter
          (fun (c, v) -> Printf.printf "%s=%.2f " c v)
          (Report.normalized row ~metric:Report.cycles);
        Printf.printf "\n")
      rows;
    let h = Report.headline rows in
    Printf.printf
      "Sbest vs Hbest: time avg %.0f%% (max %.0f%%), traffic avg %.0f%% (max %.0f%%)\n"
      (100.0 *. h.Report.time_avg)
      (100.0 *. h.Report.time_max)
      (100.0 *. h.Report.traffic_avg)
      (100.0 *. h.Report.traffic_max)
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Run every workload on every configuration")
    Term.(const run $ scale_arg $ jobs_arg)

(* --- trace / explain: transaction-level observability ------------------------ *)

let find_entry name =
  try Registry.find name
  with Not_found ->
    Printf.eprintf "unknown workload %s (try: %s)\n" name
      (String.concat ", " Registry.names);
    exit 1

let find_config = function
  | None -> Config.smd
  | Some name -> (
    try Config.by_name name
    with Not_found ->
      Printf.eprintf "unknown configuration %s\n" name;
      exit 1)

let simulate_traced ~params ~config entry ~scale =
  let geom = Registry.geometry_of_params params in
  let wl = entry.Registry.build ~scale geom in
  let r = Run.simulate ~params ~config wl in
  Run.assert_clean r;
  r

let device_name_of (r : Run.result) id =
  if id >= 0 && id < Array.length r.Run.device_names then
    r.Run.device_names.(id)
  else Printf.sprintf "dev%d" id

let workload_pos_arg =
  let doc =
    Printf.sprintf "Workload to trace; one of: %s."
      (String.concat ", " Registry.names)
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let trace_cmd =
  let run workload config scale format out capacity sample_every drop dup delay
      reorder fault_seed =
    let entry = find_entry workload in
    let config = find_config config in
    let spec = { Trace.capacity; sample_every } in
    let fault = fault_spec_of ~drop ~dup ~delay ~reorder ~seed:fault_seed in
    let params = { Params.bench with Params.trace = Some spec; fault } in
    let r = simulate_traced ~params ~config entry ~scale in
    let tr = r.Run.trace in
    let out =
      match out with
      | Some o -> o
      | None ->
        Printf.sprintf "TRACE_%s_%s.%s" entry.Registry.name config.Config.name
          (if format = "jsonl" then "jsonl" else "json")
    in
    let buf = Buffer.create (1 lsl 16) in
    (match format with
    | "chrome" -> Trace.export_chrome tr ~device_name:(device_name_of r) buf
    | "jsonl" -> Trace.export_jsonl tr ~device_name:(device_name_of r) buf
    | f ->
      Printf.eprintf "unknown trace format %s (chrome or jsonl)\n" f;
      exit 1);
    let oc = open_out out in
    Buffer.output_buffer oc buf;
    close_out oc;
    Printf.printf "%s %s: %d events recorded (%d dropped, %d open spans)\n"
      entry.Registry.name config.Config.name (Trace.recorded tr)
      (Trace.dropped tr) (Trace.open_spans tr);
    Format.printf "@[<v 2>latency (cycles):@,%a@]@." Report.pp_latency r;
    Printf.printf "wrote %s%s\n" out
      (if format = "chrome" then " (load it at https://ui.perfetto.dev)"
       else "")
  in
  let format_arg =
    Arg.(
      value & opt string "chrome"
      & info [ "format" ]
          ~doc:
            "Export format: 'chrome' (Chrome trace-event JSON, loadable in \
             Perfetto or chrome://tracing) or 'jsonl' (one JSON object per \
             line for ad-hoc analysis).")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ]
          ~doc:"Output path (default TRACE_<workload>_<config>.<ext>).")
  in
  let capacity_arg =
    Arg.(
      value & opt int Trace.default_spec.Trace.capacity
      & info [ "capacity" ]
          ~doc:
            "Trace ring capacity in events (rounded up to a power of two); \
             the oldest events are dropped once it fills.")
  in
  let sample_every_arg =
    Arg.(
      value & opt int Trace.default_spec.Trace.sample_every
      & info [ "sample-every" ]
          ~doc:"Cycles between occupancy counter samples.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one workload with transaction tracing enabled and export the \
          trace (Chrome trace-event JSON for Perfetto, or JSONL).  The \
          simulated results are bit-identical to an untraced run.")
    Term.(
      const run $ workload_pos_arg $ config_arg $ scale_arg $ format_arg
      $ out_arg $ capacity_arg $ sample_every_arg $ fault_drop_arg
      $ fault_dup_arg $ fault_delay_arg $ fault_reorder_arg $ fault_seed_arg)

let explain_cmd =
  let run workload config scale txn capacity drop dup delay reorder fault_seed
      =
    let entry = find_entry workload in
    let config = find_config config in
    (* Sparse counter samples: the ring budget goes to the protocol events
       [explain] actually renders. *)
    let spec = { Trace.capacity; sample_every = 1 lsl 20 } in
    let fault = fault_spec_of ~drop ~dup ~delay ~reorder ~seed:fault_seed in
    let params = { Params.bench with Params.trace = Some spec; fault } in
    let r = simulate_traced ~params ~config entry ~scale in
    let tr = r.Run.trace in
    let dev = device_name_of r in
    (* The transaction family: the requested txn plus every successor
       linked by a txn.chain instant (timeout re-issues reuse the same txn
       id; protocol-level retries and conversions allocate a new one and
       record the link). *)
    let family = Hashtbl.create 8 in
    Hashtbl.replace family txn ();
    let shown = ref 0 in
    Printf.printf "txn %d in %s on %s:\n" txn entry.Registry.name
      config.Config.name;
    Trace.iter tr ~f:(fun ev ->
        let mem t = Hashtbl.mem family t in
        match ev with
        | Trace.Span_begin { time; dev = d; txn = t; cls; line } when mem t ->
          incr shown;
          Printf.printf "%10d  %-14s txn=%-6d issue %s line=0x%x\n" time
            (dev d) t (Trace.cls_name cls) line
        | Trace.Span_end { time; dev = d; txn = t; cls; latency } when mem t ->
          incr shown;
          Printf.printf "%10d  %-14s txn=%-6d complete %s (latency %d)\n" time
            (dev d) t (Trace.cls_name cls) latency
        | Trace.Instant { time; dev = d; name; txn = t; arg } when mem t ->
          incr shown;
          if name = "txn.chain" then begin
            Hashtbl.replace family arg ();
            Printf.printf "%10d  %-14s txn=%-6d continues as txn %d\n" time
              (dev d) t arg
          end
          else
            Printf.printf "%10d  %-14s txn=%-6d %s (arg %d)\n" time (dev d) t
              name arg
        | Trace.Msg_send { time; src; dst; txn = t; kind; line } when mem t ->
          incr shown;
          Printf.printf "%10d  %-14s txn=%-6d %s -> %s line=0x%x\n" time
            (dev src) t (Trace.kind_name kind) (dev dst) line
        | _ -> ());
    if !shown = 0 then begin
      Printf.eprintf
        "txn %d not found in trace (ring may have wrapped; rerun with a \
         larger --capacity)\n"
        txn;
      exit 1
    end
    else if Trace.dropped tr > 0 then
      Printf.printf
        "  note: ring dropped %d events; early history may be missing (use \
         --capacity to keep more)\n"
        (Trace.dropped tr)
  in
  let txn_arg =
    Arg.(
      required & opt (some int) None
      & info [ "txn" ] ~doc:"Transaction id to reconstruct.")
  in
  let capacity_arg =
    Arg.(
      value & opt int (1 lsl 21)
      & info [ "capacity" ]
          ~doc:"Trace ring capacity in events while reconstructing.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Re-run one workload with tracing and print a single transaction's \
          timeline: issue, network messages, retries, fault injections, \
          nacks, protocol-level follow-on transactions, and completion.")
    Term.(
      const run $ workload_pos_arg $ config_arg $ scale_arg $ txn_arg
      $ capacity_arg $ fault_drop_arg $ fault_dup_arg $ fault_delay_arg
      $ fault_reorder_arg $ fault_seed_arg)

(* --- metrics / profile: time-series and PDES-shard observability ------------- *)

let metrics_cmd =
  let run workload config scale format out sample_every engine shards =
    let entry = find_entry workload in
    let config = find_config config in
    if sample_every < 1 then begin
      Printf.eprintf "--sample-every must be >= 1\n";
      exit 1
    end;
    let backend = backend_of ~shards engine in
    let params =
      {
        Params.bench with
        Params.metrics = Some { Metrics.sample_every };
        engine_backend = backend;
        (* The chrome export merges metric counter tracks into the
           transaction timeline, so it needs the trace sink too. *)
        trace = (if format = "chrome" then Some Trace.default_spec else None);
      }
    in
    let r = simulate_traced ~params ~config entry ~scale in
    let m = r.Run.metrics in
    let out =
      match out with
      | Some o -> o
      | None ->
        Printf.sprintf "METRICS_%s_%s.%s" entry.Registry.name
          config.Config.name
          (match format with "csv" -> "csv" | "chrome" -> "json" | _ -> "om")
    in
    let buf = Buffer.create (1 lsl 16) in
    (match format with
    | "openmetrics" -> Metrics.export_openmetrics m buf
    | "csv" -> Metrics.export_csv m buf
    | "chrome" ->
      Trace.export_chrome
        ~extra:(Metrics.chrome_counter_events m)
        r.Run.trace
        ~device_name:(device_name_of r)
        buf
    | f ->
      Printf.eprintf "unknown metrics format %s (openmetrics, csv or chrome)\n"
        f;
      exit 1);
    let oc = open_out out in
    Buffer.output_buffer oc buf;
    close_out oc;
    Printf.printf "%s %s: %d series, %d samples (every %d cycles)\n"
      entry.Registry.name config.Config.name (Metrics.num_series m)
      (Metrics.num_samples m) sample_every;
    Printf.printf "wrote %s%s\n" out
      (if format = "chrome" then " (load it at https://ui.perfetto.dev)"
       else "")
  in
  let format_arg =
    Arg.(
      value & opt string "openmetrics"
      & info [ "format" ]
          ~doc:
            "Export format: 'openmetrics' (Prometheus-compatible text, \
             sample timestamps carry the simulated cycle), 'csv' \
             (long-format cycle,metric,labels,kind,value,delta) or 'chrome' \
             (Chrome trace-event JSON with the metric series merged into \
             the transaction timeline as counter tracks).")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ]
          ~doc:"Output path (default METRICS_<workload>_<config>.<ext>).")
  in
  let sample_every_arg =
    Arg.(
      value & opt int Metrics.default_spec.Metrics.sample_every
      & info [ "sample-every" ]
          ~doc:"Cycles between metric samples.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run one workload with time-series metrics enabled — cache \
          occupancy, MSHR/store-buffer pressure, network in-flight and \
          per-virtual-channel depth, retry and fault counters, DRAM queue \
          depth — and export them.  Sampling runs inline in the engine \
          dispatch loop and never enqueues events, so the simulated \
          results are bit-identical to a metrics-off run.")
    Term.(
      const run $ workload_pos_arg $ config_arg $ scale_arg $ format_arg
      $ out_arg $ sample_every_arg $ engine_arg $ shards_arg)

let profile_cmd =
  let run workloads config scale engine shards =
    let backend = backend_of ~shards engine in
    (match backend with
    | Spandex_sim.Engine.Pdes_backend _ -> ()
    | _ ->
      Printf.eprintf "profile requires --engine pdes\n";
      exit 1);
    let config = find_config config in
    let params = { Params.bench with Params.engine_backend = backend } in
    let entries =
      match workloads with
      | None -> sweep_entries ()
      | Some names ->
        String.split_on_char ',' names
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map find_entry
    in
    let geom = Registry.geometry_of_params params in
    (* Bank -> shard placement table, grouped by shard: the banked
       partition spreads the home complex, so the placement is the first
       thing to look at when one shard dominates. *)
    let placement_line (table : (string * int) array) =
      let max_shard = Array.fold_left (fun a (_, s) -> max a s) 0 table in
      List.init (max_shard + 1) (fun s ->
          let names =
            Array.to_list table
            |> List.filter_map (fun (n, sh) ->
                   if sh = s then Some n else None)
          in
          Printf.sprintf "s%d[%s]" s (String.concat " " names))
      |> String.concat " "
    in
    let peaks_line peaks =
      Array.to_list peaks
      |> List.mapi (fun b d -> Printf.sprintf "b%d=%d" b d)
      |> String.concat " "
    in
    let agg = ref [||] in
    let profiled = ref 0 and capped = ref [] in
    (* Pass a partition table to the final report only when every profiled
       cell placed components the same way (barrier workloads collapse
       cores onto one shard, so cells can disagree). *)
    let common_partition = ref `Unset in
    List.iter
      (fun (e : Registry.entry) ->
        let wl = e.Registry.build ~scale geom in
        let r = Run.simulate ~params ~config wl in
        Run.assert_clean r;
        match r.Run.shard_profile with
        | Some prof ->
          incr profiled;
          Printf.printf
            "%-12s %-4s shards=%d events=%-9d rounds=%-7d barrier-wait=%.1f%%\n"
            e.Registry.name config.Config.name r.Run.shards r.Run.events
            (Array.fold_left (fun acc s -> max acc s.Pdes.sp_rounds) 0 prof)
            (100.0 *. Pdes_prof.barrier_wait_fraction prof);
          Printf.printf "             placement: %s\n"
            (placement_line r.Run.partition);
          Printf.printf "             dram peak queue depth: %s\n"
            (peaks_line r.Run.dram_channel_peaks);
          (match r.Run.cap_reason with
          | Some why when r.Run.shards < shards ->
            Printf.printf "             note: capped to %d shard(s) — %s\n"
              r.Run.shards why
          | _ -> ());
          (match !common_partition with
          | `Unset -> common_partition := `Same r.Run.partition
          | `Same p when p <> r.Run.partition -> common_partition := `Mixed
          | _ -> ());
          agg := (if Array.length !agg = 0 then prof else Pdes_prof.add !agg prof)
        | None -> capped := (e.Registry.name, r.Run.cap_reason) :: !capped)
      entries;
    List.iter
      (fun (name, reason) ->
        Printf.printf "  note: %s ran sequentially, not profiled — %s\n" name
          (Option.value reason
             ~default:"shard count capped to 1 by the partition"))
      (List.rev !capped);
    if !profiled = 0 then begin
      Printf.eprintf
        "no multi-shard runs to profile (every cell was capped to one \
         shard)\n";
      exit 1
    end;
    Printf.printf "\n";
    let partition =
      match !common_partition with `Same p -> Some p | _ -> None
    in
    Format.printf "%a@." (Pdes_prof.pp ?partition) (Pdes_prof.analyze !agg)
  in
  let workloads_arg =
    Arg.(
      value & opt (some string) None
      & info [ "w"; "workloads" ]
          ~doc:
            "Comma-separated workload subset to profile (default: every \
             non-stress workload).")
  in
  let profile_engine_arg =
    Arg.(
      value & opt string "pdes"
      & info [ "engine" ]
          ~doc:"Simulation backend; must be 'pdes' (the default here).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run workloads on the PDES backend and print the per-shard \
          profile: events executed, execute vs. barrier-wait vs. \
          inbox-drain wall split, SPSC channel stalls and depth, GC \
          pressure, and the load-imbalance / barrier-wait summary naming \
          the dominant shard.  Profiling reads a wall clock only — \
          simulated results stay bit-identical.")
    Term.(
      const run $ workloads_arg $ config_arg $ scale_arg $ profile_engine_arg
      $ shards_arg)

(* --- check: exhaustive-interleaving model checker ---------------------------- *)

module Litmus = Spandex_check.Litmus
module Checker = Spandex_check.Checker
module Schedule = Spandex_check.Schedule

let check_replay ~path ~out =
  let header, violation, steps, sys =
    try Checker.replay ~trace:Trace.default_spec ~path ()
    with Failure m | Sys_error m ->
      Printf.eprintf "cannot replay %s: %s\n" path m;
      exit 1
  in
  Printf.printf "replaying %s: case=%s config=%s cpus=%d gpus=%d%s%s%s\n" path
    header.Schedule.h_case header.Schedule.h_config header.Schedule.h_cpus
    header.Schedule.h_gpus
    (if header.Schedule.h_banks > 1 then
       Printf.sprintf " banks=%d" header.Schedule.h_banks
     else "")
    (if header.Schedule.h_faults then " faults" else "")
    (match header.Schedule.h_seed_bug with
    | Some b -> Printf.sprintf " seed-bug=%s" b
    | None -> "");
  Printf.printf "recorded violation: %s\n" header.Schedule.h_violation;
  List.iteri
    (fun i (a, descr) ->
      Printf.printf "  %3d %-10s %s\n" i (Schedule.action_name a) descr)
    steps;
  (match sys with
  | None -> ()
  | Some sys ->
    let tr = Spandex_sim.Engine.trace sys.Run.sys_engine in
    let names = sys.Run.sys_device_names in
    let dev id =
      if id >= 0 && id < Array.length names then names.(id)
      else Printf.sprintf "dev%d" id
    in
    let buf = Buffer.create (1 lsl 16) in
    Trace.export_chrome tr ~device_name:dev buf;
    let oc = open_out out in
    Buffer.output_buffer oc buf;
    close_out oc;
    Printf.printf "wrote %s (load it at https://ui.perfetto.dev)\n" out);
  match violation with
  | Some v ->
    Printf.printf "reproduced: %s\n" (Checker.violation_descr v);
    0
  | None ->
    Printf.eprintf
      "counterexample did NOT reproduce a violation (stale file, or the \
       bug was fixed)\n";
    1

let check_cmd =
  let run case config cpus gpus llc_banks faults fault_budget max_states
      budget_secs no_reduce seed_bug out replay =
    match replay with
    | Some path ->
      let out = Option.value ~default:"CHECK_replay.trace.json" out in
      exit (check_replay ~path ~out)
    | None ->
      let config = find_config config in
      let cases =
        match case with
        | None -> Litmus.all
        | Some name -> (
          try [ Litmus.by_name name ]
          with Not_found ->
            Printf.eprintf "unknown case %s (try: %s)\n" name
              (String.concat ", "
                 (List.map (fun c -> c.Litmus.case_name) Litmus.all));
            exit 1)
      in
      let seed_bug =
        Option.map
          (fun name ->
            try Checker.bug_of_name name
            with Not_found | Failure _ ->
              Printf.eprintf "unknown seed bug %s (try: %s)\n" name
                (String.concat ", "
                   (List.map Checker.bug_name Checker.all_bugs));
              exit 1)
          seed_bug
      in
      let violated = ref false in
      List.iter
        (fun (c : Litmus.case) ->
          if cpus + gpus < c.Litmus.min_devices then
            Printf.printf
              "%-8s %-4s skipped (needs >= %d devices, have %d)\n"
              c.Litmus.case_name config.Config.name c.Litmus.min_devices
              (cpus + gpus)
          else begin
            let out =
              match out with
              | Some o -> o
              | None ->
                Printf.sprintf "CHECK_%s_%s.jsonl" c.Litmus.case_name
                  config.Config.name
            in
            let t0 = Unix.gettimeofday () in
            let o =
              Checker.check_and_report ~max_states ~budget_secs ~fault_budget
                ~reduce:(not no_reduce) ?seed_bug ~llc_banks ~case:c ~config
                ~cpus ~gpus ~faults ~out ()
            in
            Printf.printf
              "%-8s %-4s states=%-7d executions=%-6d transitions=%-8d \
               wall=%.2fs%s\n"
              c.Litmus.case_name config.Config.name o.Checker.o_states
              o.Checker.o_executions o.Checker.o_transitions
              (Unix.gettimeofday () -. t0)
              (if o.Checker.o_truncated then
                 " TRUNCATED (raise --max-states / --budget-secs)"
               else "");
            match o.Checker.o_violation with
            | None -> ()
            | Some (v, steps) ->
              violated := true;
              Printf.printf "  VIOLATION: %s\n" (Checker.violation_descr v);
              Printf.printf "  counterexample: %d steps -> %s (replay with \
                             'spandex_cli check --replay %s')\n"
                (List.length steps) out out
          end)
        cases;
      if !violated then exit 1
  in
  let case_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "case" ]
          ~doc:
            (Printf.sprintf
               "Litmus case to explore; one of: %s (default: all)."
               (String.concat ", "
                  (List.map (fun c -> c.Litmus.case_name) Litmus.all))))
  in
  let check_cpus_arg =
    Arg.(value & opt int 2 & info [ "cpus" ] ~doc:"CPU device count.")
  in
  let check_gpus_arg =
    Arg.(value & opt int 0 & info [ "gpus" ] ~doc:"GPU device count.")
  in
  let llc_banks_arg =
    Arg.(
      value & opt int 1
      & info [ "llc-banks" ]
          ~doc:
            "Explore with this many address-interleaved LLC banks.  \
             Banking must be invisible to the protocol: every case must \
             reach the same verdict for any bank count.")
  in
  let faults_arg =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Add message drop/duplicate choice points (bounded by \
             --fault-budget per execution) on top of delivery order.")
  in
  let fault_budget_arg =
    Arg.(
      value & opt int 1
      & info [ "fault-budget" ]
          ~doc:"Maximum fault actions per explored execution.")
  in
  let max_states_arg =
    Arg.(
      value & opt int 200_000
      & info [ "max-states" ]
          ~doc:"Stop after this many distinct explored states.")
  in
  let budget_secs_arg =
    Arg.(
      value & opt float 120.0
      & info [ "budget-secs" ] ~doc:"Wall-clock budget for the search.")
  in
  let no_reduce_arg =
    Arg.(
      value & flag
      & info [ "no-reduce" ]
          ~doc:"Skip counterexample minimization (keep the raw schedule).")
  in
  let seed_bug_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "seed-bug" ]
          ~doc:
            (Printf.sprintf
               "Wire a deliberate protocol bug into every L1 endpoint to \
                validate the oracle; one of: %s."
               (String.concat ", "
                  (List.map Checker.bug_name Checker.all_bugs))))
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ]
          ~doc:
            "Counterexample path (default CHECK_<case>_<config>.jsonl); in \
             --replay mode, the Perfetto trace path (default \
             CHECK_replay.trace.json).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Re-execute a counterexample JSONL deterministically, print its \
             schedule, and export a Perfetto timeline of the violating run.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively explore every message-delivery interleaving of small \
          DRF litmus programs under one cache configuration, checking SWMR, \
          LLC ownership registration, data values, and deadlock-freedom at \
          every choice point.  Violations are written as replayable JSONL \
          counterexamples.")
    Term.(
      const run $ case_arg $ config_arg $ check_cpus_arg $ check_gpus_arg
      $ llc_banks_arg $ faults_arg $ fault_budget_arg $ max_states_arg
      $ budget_secs_arg $ no_reduce_arg $ seed_bug_arg $ out_arg $ replay_arg)

(* --- bench: machine-readable perf harness ----------------------------------- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let bench_cmd =
  let run scale jobs workloads out engine shards repeat =
    let jobs = resolve_jobs jobs in
    let repeat = max 1 repeat in
    let recommended = Domain.recommended_domain_count () in
    if jobs > recommended then
      Printf.eprintf
        "warning: --jobs %d exceeds recommended_domain_count %d; extra \
         domains will contend for cores and the speedup will suffer\n%!"
        jobs recommended;
    (* Bench measures the hot path: per-message construction checks stay
       off unless SPANDEX_CHECKS explicitly asks for them.  Flipped before
       any worker domain spawns. *)
    if Sys.getenv_opt "SPANDEX_CHECKS" = None then
      Spandex_proto.Msg.set_checks false;
    let backend = backend_of ~shards engine in
    let is_pdes =
      match backend with
      | Spandex_sim.Engine.Pdes_backend _ -> true
      | _ -> false
    in
    let requested_shards =
      match backend with
      | Spandex_sim.Engine.Pdes_backend { shards } -> shards
      | _ -> 1
    in
    let params = { Params.bench with Params.engine_backend = backend } in
    let entries =
      match workloads with
      | None -> sweep_entries ()
      | Some names ->
        String.split_on_char ',' names
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map (fun n ->
               try Registry.find n
               with Not_found ->
                 Printf.eprintf "unknown workload %s (try: %s)\n" n
                   (String.concat ", " Registry.names);
                 exit 1)
    in
    let cells = sweep_jobs ~params ~scale entries in
    let n = List.length cells in
    Printf.printf "bench: %d simulations (%d workloads x %d configs), jobs=%d\n%!"
      n (List.length entries) (List.length Config.extended) jobs;
    (* Sequential reference pass: times each simulation individually and is
       the --jobs 1 baseline for the speedup.  With --repeat N every timed
       pass runs N times and the pass with the median total wall clock is
       reported, so one descheduled run cannot skew the speedup. *)
    let median_of ps =
      let a = Array.of_list ps in
      Array.sort (fun (_, w1) (_, w2) -> compare (w1 : float) w2) a;
      a.(Array.length a / 2)
    in
    let seq_pass () =
      let t0 = Unix.gettimeofday () in
      let rs =
        List.map
          (fun (j : Sweep.job) ->
            let t0 = Unix.gettimeofday () in
            let r =
              Run.simulate ~params:j.Sweep.params ~config:j.Sweep.config
                j.Sweep.workload
            in
            let wall = Unix.gettimeofday () -. t0 in
            Run.assert_clean r;
            (j, r, wall))
          cells
      in
      (rs, Unix.gettimeofday () -. t0)
    in
    let wall_min ps = List.fold_left (fun acc (_, w) -> min acc w) infinity ps
    and wall_max ps = List.fold_left (fun acc (_, w) -> max acc w) 0.0 ps in
    let seq_passes = List.init repeat (fun _ -> seq_pass ()) in
    let seq, seq_wall = median_of seq_passes in
    let seq_wall_min = wall_min seq_passes
    and seq_wall_max = wall_max seq_passes in
    (* Parallel pass over the same jobs, timed as one sweep. *)
    let par_pass () =
      let t0 = Unix.gettimeofday () in
      let rs = Sweep.simulate_all_gc ~jobs cells in
      (rs, Unix.gettimeofday () -. t0)
    in
    let par_passes = List.init repeat (fun _ -> par_pass ()) in
    let (par, par_gc), par_wall = median_of par_passes in
    let par_wall_min = wall_min par_passes
    and par_wall_max = wall_max par_passes in
    (* With --engine pdes the timed passes above already ran the parallel
       backend; a wheel reference pass supplies the speedup denominator
       and the backend bit-identity gate (every cell must match the
       sequential wheel exactly). *)
    let pdes_ref =
      if not is_pdes then None
      else begin
        let wheel_params =
          { params with Params.engine_backend = Spandex_sim.Engine.Wheel_backend }
        in
        let pass () =
          let t0 = Unix.gettimeofday () in
          let rs =
            List.map
              (fun (j : Sweep.job) ->
                Run.simulate ~params:wheel_params ~config:j.Sweep.config
                  j.Sweep.workload)
              cells
          in
          (rs, Unix.gettimeofday () -. t0)
        in
        let wheel_rs, wheel_wall =
          median_of (List.init repeat (fun _ -> pass ()))
        in
        let divergences =
          List.concat
            (List.map2
               (fun ((j : Sweep.job), r, _) w ->
                 match Report.diff_result w r with
                 | None -> []
                 | Some d ->
                   [
                     Printf.sprintf "%s %s: %s" j.Sweep.label
                       j.Sweep.config.Config.name d;
                   ])
               seq wheel_rs)
        in
        Some (wheel_wall, divergences)
      end
    in
    let effective_shards =
      List.fold_left
        (fun acc (_, (r : Run.result), _) -> max acc r.Run.shards)
        1 seq
    in
    let shards_capped = is_pdes && effective_shards < requested_shards in
    (* Why the partition capped: taken from the run that used the most
       shards, so the reported reason matches [shards_effective]. *)
    let cap_reason =
      List.fold_left
        (fun acc (_, (r : Run.result), _) ->
          if r.Run.shards = effective_shards && r.Run.cap_reason <> None then
            r.Run.cap_reason
          else acc)
        None seq
    in
    if shards_capped then
      Printf.eprintf
        "warning: --shards %d exceeds what the machine partition supports; \
         capped at %d — %s\n%!"
        requested_shards effective_shards
        (match cap_reason with
        | Some why -> why
        | None -> "placement-unit count");
    let divergences =
      List.concat
        (List.map2
           (fun (j, r, _) p ->
             match Report.diff_result r p with
             | None -> []
             | Some d ->
               [
                 Printf.sprintf "%s %s: %s" j.Sweep.label
                   j.Sweep.config.Config.name d;
               ])
           seq par)
    in
    (* [total_events] counts the paper's six baseline configurations only,
       so it stays comparable across baselines that add or drop extension
       configurations; the extended total covers every swept cell. *)
    let baseline_names = List.map (fun c -> c.Config.name) Config.all in
    let total_events =
      List.fold_left
        (fun acc ((j : Sweep.job), (r : Run.result), _) ->
          if List.mem j.Sweep.config.Config.name baseline_names then
            acc + r.Run.events
          else acc)
        0 seq
    in
    let total_events_extended =
      List.fold_left (fun acc (_, r, _) -> acc + r.Run.events) 0 seq
    in
    let total_minor_words =
      List.fold_left (fun acc (_, r, _) -> acc +. r.Run.minor_words) 0.0 seq
    in
    let total_major_collections =
      List.fold_left (fun acc (_, r, _) -> acc + r.Run.major_collections) 0 seq
    in
    let speedup = seq_wall /. max 1e-9 par_wall in
    (* One traced re-run of the first cell: asserts tracing does not change
       simulated results and supplies the per-class latency section. *)
    let traced =
      match (cells, seq) with
      | (j : Sweep.job) :: _, (_, base, _) :: _ ->
        let tparams =
          { j.Sweep.params with Params.trace = Some Trace.default_spec }
        in
        let tr =
          Run.simulate ~params:tparams ~config:j.Sweep.config j.Sweep.workload
        in
        Some (j, tr, Report.same_result base tr)
      | _ -> None
    in
    (* One metrics-enabled re-run of the same cell: asserts the inline
       metric sampler does not change simulated results either. *)
    let metriced =
      match (cells, seq) with
      | (j : Sweep.job) :: _, (_, base, _) :: _ ->
        let mparams =
          { j.Sweep.params with Params.metrics = Some Metrics.default_spec }
        in
        let mr =
          Run.simulate ~params:mparams ~config:j.Sweep.config j.Sweep.workload
        in
        Some (j, mr, Report.same_result base mr)
      | _ -> None
    in
    let buf = Buffer.create 4096 in
    Printf.bprintf buf "{\n";
    Printf.bprintf buf "  \"schema\": \"spandex-bench-sweep/7\",\n";
    Printf.bprintf buf "  \"scale\": %g,\n" scale;
    Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
    Printf.bprintf buf "  \"jobs_used\": %d,\n" jobs;
    Printf.bprintf buf "  \"repeat\": %d,\n" repeat;
    Printf.bprintf buf "  \"engine\": %s,\n" (json_string engine);
    Printf.bprintf buf "  \"shards_requested\": %d,\n" requested_shards;
    Printf.bprintf buf "  \"shards_effective\": %d,\n" effective_shards;
    Printf.bprintf buf "  \"pdes_shards_capped\": %b,\n" shards_capped;
    Printf.bprintf buf "  \"pdes_cap_reason\": %s,\n"
      (match cap_reason with
      | Some why when shards_capped -> json_string why
      | _ -> "null");
    (match pdes_ref with
    | None -> ()
    | Some (wheel_wall, divs) ->
      Printf.bprintf buf "  \"wheel_wall_s\": %.6f,\n" wheel_wall;
      Printf.bprintf buf "  \"pdes_wall_s\": %.6f,\n" seq_wall;
      Printf.bprintf buf "  \"pdes_speedup\": %.3f,\n"
        (wheel_wall /. max 1e-9 seq_wall);
      Printf.bprintf buf "  \"pdes_identical\": %b,\n" (divs = []));
    Printf.bprintf buf "  \"msg_checks\": %b,\n"
      (Spandex_proto.Msg.checks_enabled ());
    Printf.bprintf buf "  \"recommended_domains\": %d,\n" recommended;
    Printf.bprintf buf "  \"simulations_total\": %d,\n" n;
    Printf.bprintf buf "  \"sequential_wall_s\": %.6f,\n" seq_wall;
    Printf.bprintf buf "  \"sequential_wall_min_s\": %.6f,\n" seq_wall_min;
    Printf.bprintf buf "  \"sequential_wall_max_s\": %.6f,\n" seq_wall_max;
    Printf.bprintf buf "  \"parallel_wall_s\": %.6f,\n" par_wall;
    Printf.bprintf buf "  \"parallel_wall_min_s\": %.6f,\n" par_wall_min;
    Printf.bprintf buf "  \"parallel_wall_max_s\": %.6f,\n" par_wall_max;
    Printf.bprintf buf "  \"speedup\": %.3f,\n" speedup;
    Printf.bprintf buf "  \"total_events\": %d,\n" total_events;
    Printf.bprintf buf "  \"total_events_extended\": %d,\n"
      total_events_extended;
    let eps wall = float_of_int total_events_extended /. max 1e-9 wall in
    Printf.bprintf buf "  \"events_per_sec_sequential\": %.0f,\n"
      (eps seq_wall);
    (* min events/sec comes from the slowest pass (max wall), and vice
       versa — the spread the --repeat satellite asks for. *)
    Printf.bprintf buf "  \"events_per_sec_sequential_min\": %.0f,\n"
      (eps seq_wall_max);
    Printf.bprintf buf "  \"events_per_sec_sequential_max\": %.0f,\n"
      (eps seq_wall_min);
    Printf.bprintf buf "  \"events_per_sec_parallel\": %.0f,\n" (eps par_wall);
    Printf.bprintf buf "  \"events_per_sec_parallel_min\": %.0f,\n"
      (eps par_wall_max);
    Printf.bprintf buf "  \"events_per_sec_parallel_max\": %.0f,\n"
      (eps par_wall_min);
    (* Allocation metrics (sequential pass): catches allocation
       regressions that wall-clock noise can hide. *)
    Printf.bprintf buf "  \"minor_words_total\": %.0f,\n" total_minor_words;
    Printf.bprintf buf "  \"minor_words_per_event\": %.2f,\n"
      (total_minor_words /. float_of_int (max 1 total_events_extended));
    Printf.bprintf buf "  \"major_collections_total\": %d,\n"
      total_major_collections;
    (* Per-worker-domain GC accounting for the reported parallel pass:
       each worker runs with its own tuned GC (see Sweep), so imbalance
       here is visible instead of averaged away. *)
    Printf.bprintf buf "  \"parallel_workers\": [\n";
    let ngc = List.length par_gc in
    List.iteri
      (fun i (g : Sweep.worker_gc) ->
        Printf.bprintf buf
          "    { \"jobs\": %d, \"minor_words\": %.0f, \
           \"major_collections\": %d }%s\n"
          g.Sweep.wg_jobs g.Sweep.wg_minor_words g.Sweep.wg_major_collections
          (if i = ngc - 1 then "" else ","))
      par_gc;
    Printf.bprintf buf "  ],\n";
    Printf.bprintf buf "  \"identical\": %b,\n" (divergences = []);
    (match traced with
    | None -> ()
    | Some (j, tr, same) ->
      Printf.bprintf buf "  \"trace_identical\": %b,\n" same;
      Printf.bprintf buf "  \"latency_workload\": %s,\n"
        (json_string j.Sweep.label);
      Printf.bprintf buf "  \"latency_config\": %s,\n"
        (json_string j.Sweep.config.Config.name);
      Printf.bprintf buf "  \"latency\": {\n";
      let rows = tr.Run.latency in
      let nrows = List.length rows in
      List.iteri
        (fun i (name, (s : Hist.summary)) ->
          Printf.bprintf buf
            "    %s: { \"count\": %d, \"p50\": %d, \"p90\": %d, \"p99\": %d, \
             \"max\": %d, \"mean\": %.2f }%s\n"
            (json_string name) s.Hist.count s.Hist.p50 s.Hist.p90 s.Hist.p99
            s.Hist.max s.Hist.mean
            (if i = nrows - 1 then "" else ","))
        rows;
      Printf.bprintf buf "  },\n");
    (match metriced with
    | None -> ()
    | Some (_, mr, same) ->
      Printf.bprintf buf "  \"metrics_identical\": %b,\n" same;
      Printf.bprintf buf "  \"metrics_series\": %d,\n"
        (Metrics.num_series mr.Run.metrics);
      Printf.bprintf buf "  \"metrics_samples\": %d,\n"
        (Metrics.num_samples mr.Run.metrics));
    Printf.bprintf buf "  \"simulations\": [\n";
    List.iteri
      (fun i ((j : Sweep.job), (r : Run.result), wall) ->
        Printf.bprintf buf
          "    { \"workload\": %s, \"config\": %s, \"cycles\": %d, \
           \"events\": %d, \"flits\": %d, \"messages\": %d, \
           \"wall_s\": %.6f, \"events_per_sec\": %.0f, \
           \"minor_words_per_event\": %.2f, \"major_collections\": %d, \
           \"shards\": %d, \"shard_events\": [%s]"
          (json_string j.Sweep.label)
          (json_string j.Sweep.config.Config.name)
          r.Run.cycles r.Run.events r.Run.total_flits r.Run.messages wall
          (float_of_int r.Run.events /. max 1e-9 wall)
          (r.Run.minor_words /. float_of_int (max 1 r.Run.events))
          r.Run.major_collections r.Run.shards
          (String.concat ", "
             (Array.to_list (Array.map string_of_int r.Run.shard_events)));
        (* The banked placement only means something on multi-shard pdes
           cells; sequential backends report all zeros, so skip them. *)
        if is_pdes then begin
          Printf.bprintf buf ", \"partition\": { %s }"
            (String.concat ", "
               (Array.to_list
                  (Array.map
                     (fun (name, s) ->
                       Printf.sprintf "%s: %d" (json_string name) s)
                     r.Run.partition)));
          (match r.Run.cap_reason with
          | Some why ->
            Printf.bprintf buf ", \"cap_reason\": %s" (json_string why)
          | None -> ());
          Printf.bprintf buf ", \"dram_channel_peaks\": [%s]"
            (String.concat ", "
               (Array.to_list
                  (Array.map string_of_int r.Run.dram_channel_peaks)))
        end;
        (match r.Run.shard_profile with
        | None -> ()
        | Some prof ->
          Printf.bprintf buf
            ", \"shard_profile\": { \"rounds\": %d, \
             \"barrier_wait_fraction\": %.6f, \"shards\": ["
            (Array.fold_left (fun acc s -> max acc s.Pdes.sp_rounds) 0 prof)
            (Pdes_prof.barrier_wait_fraction prof);
          Array.iteri
            (fun k (s : Pdes.shard_profile) ->
              Printf.bprintf buf
                "%s{ \"events\": %d, \"rounds\": %d, \"busy_rounds\": %d, \
                 \"exec_s\": %.6f, \"barrier_s\": %.6f, \"drain_s\": %.6f, \
                 \"full_stalls\": %d, \"max_link_depth\": %d, \
                 \"minor_words\": %.0f, \"major_collections\": %d, \
                 \"max_round_events\": %d, \"round_stride\": %d, \
                 \"round_events\": [%s] }"
                (if k = 0 then "" else ", ")
                s.Pdes.sp_events s.Pdes.sp_rounds s.Pdes.sp_busy_rounds
                s.Pdes.sp_exec_s s.Pdes.sp_barrier_s s.Pdes.sp_drain_s
                s.Pdes.sp_full_stalls s.Pdes.sp_max_link_depth
                s.Pdes.sp_minor_words s.Pdes.sp_major_collections
                s.Pdes.sp_max_round_events s.Pdes.sp_round_stride
                (String.concat ", "
                   (Array.to_list
                      (Array.map string_of_int s.Pdes.sp_round_events))))
            prof;
          Printf.bprintf buf "] }");
        Printf.bprintf buf " }%s\n" (if i = n - 1 then "" else ","))
      seq;
    Printf.bprintf buf "  ]\n}\n";
    let oc = open_out out in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf
      "  sequential: %.2fs | parallel (%d jobs): %.2fs | speedup: %.2fx\n"
      seq_wall jobs par_wall speedup;
    if repeat > 1 then
      Printf.printf
        "  spread over %d repeats: sequential %.2f-%.2fs | parallel \
         %.2f-%.2fs\n"
        repeat seq_wall_min seq_wall_max par_wall_min par_wall_max;
    Printf.printf "  events/sec (sequential): %.0f%s\n"
      (float_of_int total_events_extended /. max 1e-9 seq_wall)
      (if repeat > 1 then
         Printf.sprintf " (min %.0f, max %.0f)"
           (float_of_int total_events_extended /. max 1e-9 seq_wall_max)
           (float_of_int total_events_extended /. max 1e-9 seq_wall_min)
       else "");
    Printf.printf "  alloc: %.1f minor words/event | %d major collections\n"
      (total_minor_words /. float_of_int (max 1 total_events_extended))
      total_major_collections;
    (match pdes_ref with
    | None -> ()
    | Some (wheel_wall, _) ->
      Printf.printf
        "  pdes: %d shard(s) effective (%d requested) | wheel ref: %.2fs | \
         pdes speedup: %.2fx\n"
        effective_shards requested_shards wheel_wall
        (wheel_wall /. max 1e-9 seq_wall));
    Printf.printf "  wrote %s\n" out;
    if divergences <> [] then begin
      Printf.eprintf
        "FAIL: parallel sweep diverged from sequential on %d simulation(s):\n"
        (List.length divergences);
      List.iter (fun d -> Printf.eprintf "  %s\n" d) divergences;
      exit 1
    end;
    (match pdes_ref with
    | Some (_, (_ :: _ as divs)) ->
      Printf.eprintf
        "FAIL: pdes backend diverged from the wheel on %d simulation(s):\n"
        (List.length divs);
      List.iter (fun d -> Printf.eprintf "  %s\n" d) divs;
      exit 1
    | _ -> ());
    (match traced with
    | Some (j, tr, false) ->
      Printf.eprintf "FAIL: traced run of %s %s diverged from untraced: %s\n"
        j.Sweep.label j.Sweep.config.Config.name
        (match
           List.find_opt
             (fun (j', _, _) ->
               j'.Sweep.label = j.Sweep.label
               && j'.Sweep.config.Config.name = j.Sweep.config.Config.name)
             seq
         with
        | Some (_, base, _) ->
          Option.value ~default:"(no field diff)" (Report.diff_result base tr)
        | None -> "(baseline missing)");
      exit 1
    | _ -> ());
    match metriced with
    | Some (j, mr, false) ->
      Printf.eprintf
        "FAIL: metrics-enabled run of %s %s diverged from metrics-off: %s\n"
        j.Sweep.label j.Sweep.config.Config.name
        (match seq with
        | (_, base, _) :: _ ->
          Option.value ~default:"(no field diff)" (Report.diff_result base mr)
        | [] -> "(baseline missing)");
      exit 1
    | _ -> ()
  in
  let workloads_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "workloads" ]
          ~doc:
            "Comma-separated workload subset to bench (default: every \
             non-stress workload).")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_sweep.json"
      & info [ "o"; "out" ] ~doc:"Output path for the JSON perf report.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ]
          ~doc:
            "Run each timed pass N times and report the pass with the \
             median total wall clock (simulated results are identical \
             across repeats; only timings vary).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Time the full sweep sequentially and in parallel, assert the \
          results are bit-identical, and write a machine-readable \
          BENCH_sweep.json (wall-clock, events/sec, allocation metrics, \
          speedup).  Message-construction checks are disabled unless \
          SPANDEX_CHECKS is set in the environment.")
    Term.(
      const run $ scale_arg $ jobs_arg $ workloads_arg $ out_arg $ engine_arg
      $ shards_arg $ repeat_arg)

let soak_cmd =
  let run seeds jobs_geometry =
    let params, tiny, geom =
      match jobs_geometry with
      | _ ->
        ( { Params.bench with Params.cpu_cores = 2; gpu_cus = 2; warps_per_cu = 2 },
          {
            Params.small with
            Params.cpu_cores = 2;
            gpu_cus = 2;
            warps_per_cu = 2;
            mem_latency = 15;
          },
          { Spandex_workloads.Microbench.cpus = 2; cus = 2; warps = 2 } )
    in
    let fails = ref 0 and runs = ref 0 in
    for seed = 1 to seeds do
      List.iter
        (fun (p, spec) ->
          let wl = Spandex_workloads.Stress.generate spec geom in
          List.iter
            (fun config ->
              incr runs;
              match Run.simulate ~params:p ~config wl with
              | r -> (
                try Run.assert_clean r
                with Failure m ->
                  incr fails;
                  Printf.printf "FAIL %s seed=%d: %s\n%!" config.Config.name
                    seed m)
              | exception e ->
                incr fails;
                Printf.printf "CRASH %s seed=%d: %s\n%!" config.Config.name
                  seed (Printexc.to_string e))
            Config.extended)
        [
          ( params,
            {
              Spandex_workloads.Stress.default_spec with
              Spandex_workloads.Stress.seed;
              phases = 6;
              hot_fraction = 0.6;
            } );
          ( tiny,
            {
              Spandex_workloads.Stress.default_spec with
              Spandex_workloads.Stress.seed;
              phases = 4;
              words = 1536;
            } );
        ]
    done;
    Printf.printf "soak: %d runs, %d failures\n" !runs !fails;
    if !fails > 0 then exit 1
  in
  let seeds_arg =
    Arg.(value & opt int 25 & info [ "seeds" ] ~doc:"Random seeds to soak.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Randomized SC-for-DRF litmus soak: every seed builds a fresh \
          data-race-free program whose checked loads verify the protocols \
          on all configurations (contended and capacity-pressure variants)")
    Term.(const run $ seeds_arg $ const ())

let () =
  let info =
    Cmd.info "spandex_cli" ~version:"1.0"
      ~doc:"Spandex heterogeneous-coherence simulator (ISCA 2018 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            sweep_cmd;
            trace_cmd;
            explain_cmd;
            metrics_cmd;
            profile_cmd;
            check_cmd;
            bench_cmd;
            soak_cmd;
          ]))
