let () =
  Alcotest.run "spandex"
    [
      ("util", Test_util.tests);
      ("proto", Test_proto.tests);
      ("mem", Test_mem.tests);
      ("sim", Test_sim.tests);
      ("trace", Test_trace.tests);
      ("wheel", Test_wheel.tests);
      ("tu", Test_tu.tests);
      ("llc", Test_llc.tests);
      ("devices", Test_devices.tests);
      ("dir", Test_dir.tests);
      ("devices2", Test_devices2.tests);
      ("workloads", Test_workloads.tests);
      ("system", Test_system.tests);
      ("smoke", Test_smoke.tests);
      ("properties", Test_properties.tests);
      ("backing", Test_backing.tests);
      ("extensions", Test_extensions.tests);
      ("faults", Test_faults.tests);
      ("sweep", Test_sweep.tests);
      ("spsc", Test_spsc.tests);
      ("pdes", Test_pdes.tests);
      ("obs", Test_obs.tests);
      ("chassis", Test_chassis.tests);
      ("random", Test_random.tests);
      ("check", Test_check.tests);
    ]
