(* Device-cache unit tests: request generation (Table II), external-request
   handling (Table IV), and the III-C/III-D race behaviours, with a
   scripted LLC endpoint. *)

module Engine = Spandex_sim.Engine
module Network = Spandex_net.Network
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Mask = Spandex_util.Mask
module Amo = Spandex_proto.Amo
module State = Spandex_proto.State
module Port = Spandex_device.Port
module Gpu_l1 = Spandex_gpucoh.Gpu_l1
module Denovo_l1 = Spandex_denovo.Denovo_l1
module Mesi_l1 = Spandex_mesi.Mesi_l1

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let dev_id = 0
let llc_id = 10
let peer_id = 5
let w = Mask.singleton
let full = Addr.full_mask

type h = {
  engine : Engine.t;
  net : Network.t;
  llc_inbox : Msg.t list ref;
  peer_inbox : Msg.t list ref;
}

let harness () =
  Spandex_proto.Txn.reset ();
  let engine = Engine.create () in
  let net = Network.create engine (Network.flat_topology ~latency:2) in
  let llc_inbox = ref [] and peer_inbox = ref [] in
  Network.register net ~id:llc_id (fun m -> llc_inbox := m :: !llc_inbox);
  Network.register net ~id:peer_id (fun m -> peer_inbox := m :: !peer_inbox);
  { engine; net; llc_inbox; peer_inbox }

let run h = ignore (Engine.run_all ~strict:false h.engine)
let llc_msgs h = List.rev !(h.llc_inbox)
let peer_msgs h = List.rev !(h.peer_inbox)

let clear h =
  h.llc_inbox := [];
  h.peer_inbox := []

let expect = Proto_harness.expect_kind
let expect_no = Proto_harness.expect_no_kind
let values = Proto_harness.payload_list

(* Answer the device's last request with a response echoing its txn. *)
let reply h ?payload ~to_:(m : Msg.t) ~kind ?mask ?(from = llc_id) () =
  let mask = Option.value ~default:m.Msg.mask mask in
  Network.send h.net
    (Msg.make ~txn:m.Msg.txn ~kind:(Msg.Rsp kind) ~line:m.Msg.line ~mask
       ?payload ~src:from ~dst:dev_id ());
  run h

(* Inject an external (forwarded request or probe) into the device. *)
let inject h ~kind ~line ~mask ?demand ?(requestor = peer_id) () =
  Network.send h.net
    (Msg.make ~txn:(Spandex_proto.Txn.fresh ()) ~kind ~line ~mask ?demand
       ~src:llc_id ~dst:dev_id ~requestor ~fwd:true ());
  run h

let mk_gpu h =
  Gpu_l1.create h.engine h.net
    { Gpu_l1.id = dev_id; llc_id; llc_banks = 1; sets = 4; ways = 2; mshrs = 8;
      sb_capacity = 8; hit_latency = 1; coalesce_window = 2; max_reqv_retries = 1 }

let mk_denovo ?(atomics_at_llc = false) h =
  Denovo_l1.create h.engine h.net
    { Denovo_l1.id = dev_id; llc_id; llc_banks = 1; sets = 4; ways = 2;
      mshrs = 8; sb_capacity = 8; hit_latency = 1; coalesce_window = 2;
      max_reqv_retries = 1; atomics_at_llc; region_of = (fun _ -> 0);
      policy = Spandex_l1.Spandex_policy.Static_own }

let mk_mesi ?(notify = false) h =
  Mesi_l1.create h.engine h.net
    { Mesi_l1.id = dev_id; llc_id; llc_banks = 1; sets = 4; ways = 2; mshrs = 8;
      sb_capacity = 8; hit_latency = 1; coalesce_window = 2;
      notify_home_on_fwd_getm = notify }

let a line word = Addr.make ~line ~word

(* ===== GPU coherence ========================================================= *)

let gpu_read_miss_line_reqv () =
  let h = harness () in
  let l1 = mk_gpu h in
  let port = Gpu_l1.port l1 in
  let got = ref None in
  port.Port.load (a 2 3) ~k:(fun v -> got := Some v);
  run h;
  let m = expect ~what:"line read" (llc_msgs h) (Msg.Req Msg.ReqV) in
  check_bool "line granularity (Table II)" true (Mask.equal m.Msg.mask full);
  reply h ~to_:m ~kind:Msg.RspV
    ~payload:(Msg.Data (Array.init 16 (fun i -> 50 + i)))
    ();
  check_int "value delivered" 53 (Option.get !got);
  (* Subsequent read of another word in the line hits. *)
  clear h;
  port.Port.load (a 2 9) ~k:(fun v -> got := Some v);
  run h;
  check_int "hit after fill" 59 (Option.get !got);
  expect_no ~what:"no second request" (llc_msgs h) (Msg.Req Msg.ReqV)

let gpu_store_writes_through_word () =
  let h = harness () in
  let l1 = mk_gpu h in
  let port = Gpu_l1.port l1 in
  port.Port.store (a 3 1) ~value:11 ~k:(fun () -> ());
  port.Port.store (a 3 2) ~value:22 ~k:(fun () -> ());
  let released = ref false in
  port.Port.release ~k:(fun () -> released := true);
  run h;
  let m = expect ~what:"coalesced WT" (llc_msgs h) (Msg.Req Msg.ReqWT) in
  check_bool "word granularity, coalesced" true
    (Mask.equal m.Msg.mask (Mask.of_list [ 1; 2 ]));
  Alcotest.(check (list int)) "values" [ 11; 22 ] (values m);
  check_bool "release waits for ack" false !released;
  reply h ~to_:m ~kind:Msg.RspWT ();
  check_bool "release completes" true !released

let gpu_rmw_bypasses_l1 () =
  let h = harness () in
  let l1 = mk_gpu h in
  let port = Gpu_l1.port l1 in
  let got = ref None in
  port.Port.rmw (a 4 0) (Amo.Add 2) ~k:(fun v -> got := Some v);
  run h;
  let m = expect ~what:"atomic at LLC" (llc_msgs h) (Msg.Req Msg.ReqWTdata) in
  check_bool "carries the op" true (m.Msg.amo = Some (Amo.Add 2));
  reply h ~to_:m ~kind:Msg.RspWTdata ~payload:(Msg.Data [| 40 |]) ();
  check_int "old value" 40 (Option.get !got)

let gpu_acquire_flash_invalidates () =
  let h = harness () in
  let l1 = mk_gpu h in
  let port = Gpu_l1.port l1 in
  port.Port.load (a 2 0) ~k:(fun _ -> ());
  run h;
  let m = expect ~what:"fill" (llc_msgs h) (Msg.Req Msg.ReqV) in
  reply h ~to_:m ~kind:Msg.RspV ~payload:(Msg.Data (Array.make 16 1)) ();
  check_int "one valid line" 1 (Gpu_l1.valid_lines l1);
  let done_ = ref false in
  port.Port.acquire ~k:(fun () -> done_ := true);
  run h;
  check_bool "acquire done" true !done_;
  check_int "flash invalidated" 0 (Gpu_l1.valid_lines l1)

let gpu_nack_retry_then_convert () =
  let h = harness () in
  let l1 = mk_gpu h in
  let port = Gpu_l1.port l1 in
  port.Port.load (a 2 7) ~k:(fun _ -> ());
  run h;
  let m1 = expect ~what:"first try" (llc_msgs h) (Msg.Req Msg.ReqV) in
  clear h;
  (* Owner Nacks the demanded word but the LLC supplied the rest. *)
  reply h ~to_:m1 ~kind:Msg.RspV ~mask:(Mask.diff full (w 7))
    ~payload:(Msg.Data (Array.make 15 3))
    ();
  reply h ~to_:m1 ~kind:Msg.Nack ~mask:(w 7) ~from:peer_id ();
  let m2 = expect ~what:"retried as ReqV" (llc_msgs h) (Msg.Req Msg.ReqV) in
  check_bool "retry only the nacked word" true (Mask.equal m2.Msg.mask (w 7));
  clear h;
  reply h ~to_:m2 ~kind:Msg.Nack ~mask:(w 7) ~from:peer_id ();
  (* After max_reqv_retries the TU converts to an ordered request. *)
  let m3 = expect ~what:"converted" (llc_msgs h) (Msg.Req Msg.ReqWTdata) in
  check_bool "atomic read" true (m3.Msg.amo = Some Amo.Read)

let gpu_inv_acked_silently () =
  let h = harness () in
  let l1 = mk_gpu h in
  ignore (Gpu_l1.port l1);
  inject h ~kind:(Msg.Probe Msg.Inv) ~line:6 ~mask:full ();
  ignore (expect ~what:"ack" (llc_msgs h) (Msg.Rsp Msg.Ack))

(* ===== DeNovo ================================================================ *)

let denovo_read_word_demand_line_fill () =
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  let got = ref None in
  port.Port.load (a 2 5) ~k:(fun v -> got := Some v);
  run h;
  let m = expect ~what:"reqv" (llc_msgs h) (Msg.Req Msg.ReqV) in
  check_bool "demands only the word" true (Mask.equal m.Msg.demand (w 5));
  check_bool "asks for the whole line" true (Mask.equal m.Msg.mask full);
  reply h ~to_:m ~kind:Msg.RspV ~payload:(Msg.Data (Array.init 16 (fun i -> i))) ();
  check_int "value" 5 (Option.get !got);
  check_bool "opportunistic words valid" true
    (Denovo_l1.word_state l1 (a 2 11) = State.V)

let denovo_store_reqo_no_data () =
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  port.Port.store (a 3 4) ~value:44 ~k:(fun () -> ());
  let flushed = ref false in
  port.Port.release ~k:(fun () -> flushed := true);
  run h;
  let m = expect ~what:"ownership" (llc_msgs h) (Msg.Req Msg.ReqO) in
  check_bool "no payload (data-less)" true (values m = []);
  check_bool "word granularity" true (Mask.equal m.Msg.mask (w 4));
  reply h ~to_:m ~kind:Msg.RspO ();
  check_bool "release done" true !flushed;
  check_bool "owned locally" true (Denovo_l1.word_state l1 (a 3 4) = State.O);
  let got = ref None in
  port.Port.load (a 3 4) ~k:(fun v -> got := Some v);
  run h;
  check_int "owned hit returns store value" 44 (Option.get !got)

let denovo_rmw_local_with_ownership () =
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  let got = ref None in
  port.Port.rmw (a 4 2) (Amo.Add 3) ~k:(fun v -> got := Some v);
  run h;
  let m = expect ~what:"reqodata" (llc_msgs h) (Msg.Req Msg.ReqOdata) in
  reply h ~to_:m ~kind:Msg.RspOdata ~payload:(Msg.Data [| 10 |]) ();
  check_int "old" 10 (Option.get !got);
  check_bool "kept owned" true (Denovo_l1.word_state l1 (a 4 2) = State.O);
  (* Second RMW hits locally with no traffic. *)
  clear h;
  port.Port.rmw (a 4 2) (Amo.Add 1) ~k:(fun v -> got := Some v);
  run h;
  check_int "local old value" 13 (Option.get !got);
  check_bool "no message" true (llc_msgs h = [])

let denovo_rmw_at_llc_mode () =
  let h = harness () in
  let l1 = mk_denovo ~atomics_at_llc:true h in
  let port = Denovo_l1.port l1 in
  port.Port.rmw (a 4 2) (Amo.Add 3) ~k:(fun _ -> ());
  run h;
  let m = expect ~what:"SDG-style atomic" (llc_msgs h) (Msg.Req Msg.ReqWTdata) in
  reply h ~to_:m ~kind:Msg.RspWTdata ~payload:(Msg.Data [| 1 |]) ();
  check_bool "not owned afterwards" true (Denovo_l1.word_state l1 (a 4 2) = State.I)

let denovo_acquire_keeps_owned () =
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  (* Gain one owned and one valid word. *)
  port.Port.store (a 5 0) ~value:1 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  run h;
  reply h ~to_:(expect ~what:"o" (llc_msgs h) (Msg.Req Msg.ReqO)) ~kind:Msg.RspO ();
  clear h;
  port.Port.load (a 5 9) ~k:(fun _ -> ());
  run h;
  let m = expect ~what:"v" (llc_msgs h) (Msg.Req Msg.ReqV) in
  reply h ~to_:m ~kind:Msg.RspV
    ~payload:(Msg.Data (Array.make (Mask.count m.Msg.mask) 9))
    ();
  check_bool "valid" true (Denovo_l1.word_state l1 (a 5 9) = State.V);
  port.Port.acquire ~k:(fun () -> ());
  run h;
  check_bool "V flashed" true (Denovo_l1.word_state l1 (a 5 9) = State.I);
  check_bool "O survives (paper II-C)" true (Denovo_l1.word_state l1 (a 5 0) = State.O)

let denovo_external_table_iv () =
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  (* Own words 0 and 1 of line 6. *)
  port.Port.store (a 6 0) ~value:100 ~k:(fun () -> ());
  port.Port.store (a 6 1) ~value:101 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  run h;
  reply h ~to_:(expect ~what:"grant" (llc_msgs h) (Msg.Req Msg.ReqO)) ~kind:Msg.RspO ();
  clear h;
  (* fwd ReqV: serve data, stay Owned. *)
  inject h ~kind:(Msg.Req Msg.ReqV) ~line:6 ~mask:(w 0) ();
  let rv = expect ~what:"rspv direct" (peer_msgs h) (Msg.Rsp Msg.RspV) in
  Alcotest.(check (list int)) "data" [ 100 ] (values rv);
  check_bool "still owned" true (Denovo_l1.word_state l1 (a 6 0) = State.O);
  clear h;
  (* fwd ReqO: downgrade, ack requestor, no data. *)
  inject h ~kind:(Msg.Req Msg.ReqO) ~line:6 ~mask:(w 0) ();
  let ro = expect ~what:"rspo direct" (peer_msgs h) (Msg.Rsp Msg.RspO) in
  check_bool "no data" true (values ro = []);
  check_bool "downgraded" true (Denovo_l1.word_state l1 (a 6 0) = State.I);
  clear h;
  (* RvkO: write data back to the LLC, downgrade. *)
  inject h ~kind:(Msg.Probe Msg.RvkO) ~line:6 ~mask:(w 1) ();
  let rr = expect ~what:"rsprvko" (llc_msgs h) (Msg.Rsp Msg.RspRvkO) in
  Alcotest.(check (list int)) "wb data" [ 101 ] (values rr);
  check_bool "downgraded too" true (Denovo_l1.word_state l1 (a 6 1) = State.I);
  clear h;
  (* fwd ReqV for a word no longer owned: Nack the demand. *)
  inject h ~kind:(Msg.Req Msg.ReqV) ~line:6 ~mask:(w 0) ~demand:(w 0) ();
  ignore (expect ~what:"nack" (peer_msgs h) (Msg.Rsp Msg.Nack));
  (* Inv in a non-S state: silently acknowledged. *)
  clear h;
  inject h ~kind:(Msg.Probe Msg.Inv) ~line:6 ~mask:full ();
  ignore (expect ~what:"ack" (llc_msgs h) (Msg.Rsp Msg.Ack))

let denovo_fwd_reqs_surrenders_data () =
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  port.Port.store (a 7 2) ~value:7 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  run h;
  reply h ~to_:(expect ~what:"grant" (llc_msgs h) (Msg.Req Msg.ReqO)) ~kind:Msg.RspO ();
  clear h;
  inject h ~kind:(Msg.Req Msg.ReqS) ~line:7 ~mask:(w 2) ();
  (* No Shared state in DeNovo: data to both, down to Invalid. *)
  ignore (expect ~what:"data to reader" (peer_msgs h) (Msg.Rsp Msg.RspS));
  ignore (expect ~what:"wb copy to LLC" (llc_msgs h) (Msg.Rsp Msg.RspRvkO));
  check_bool "invalid" true (Denovo_l1.word_state l1 (a 7 2) = State.I)

let denovo_eviction_wb_serves_externals () =
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  (* sets=4: lines 8, 12, 16 conflict (set 0) with ways=2. *)
  let own line v =
    port.Port.store (a line 0) ~value:v ~k:(fun () -> ());
    port.Port.release ~k:(fun () -> ());
    run h;
    let m = expect ~what:"own" (llc_msgs h) (Msg.Req Msg.ReqO) in
    clear h;
    reply h ~to_:m ~kind:Msg.RspO ()
  in
  own 8 80;
  own 12 120;
  (* Granting line 16 commits it and evicts the LRU owned line, whose data
     leaves in a ReqWB. *)
  own 16 160;
  let wb = expect ~what:"eviction wb" (llc_msgs h) (Msg.Req Msg.ReqWB) in
  let evicted_line = wb.Msg.line in
  let expected_value = if evicted_line = 8 then 80 else 120 in
  Alcotest.(check (list int)) "wb payload" [ expected_value ] (values wb);
  clear h;
  (* A forwarded read for the in-flight word is served from the record. *)
  inject h ~kind:(Msg.Req Msg.ReqV) ~line:evicted_line ~mask:(w 0) ();
  let rv = expect ~what:"served from wb record" (peer_msgs h) (Msg.Rsp Msg.RspV) in
  Alcotest.(check (list int)) "retained data" [ expected_value ] (values rv);
  (* Local loads also forward from the record. *)
  let got = ref None in
  port.Port.load (a evicted_line 0) ~k:(fun v -> got := Some v);
  run h;
  check_int "local wb forward" expected_value (Option.get !got);
  reply h ~to_:wb ~kind:Msg.RspWB ()

let denovo_steal_mid_own_grant () =
  (* III-C case 1: a data-less fwd ReqO for a word whose own ReqO grant is
     incomplete is answered immediately, and the word is not kept. *)
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  port.Port.store (a 9 3) ~value:93 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  run h;
  let grant = expect ~what:"own req" (llc_msgs h) (Msg.Req Msg.ReqO) in
  clear h;
  (* The steal arrives before the grant response. *)
  inject h ~kind:(Msg.Req Msg.ReqO) ~line:9 ~mask:(w 3) ();
  ignore (expect ~what:"immediate ack" (peer_msgs h) (Msg.Rsp Msg.RspO));
  reply h ~to_:grant ~kind:Msg.RspO ();
  check_bool "stolen word not kept" true (Denovo_l1.word_state l1 (a 9 3) = State.I)

let denovo_data_request_mid_rmw_delayed () =
  (* III-C case 1: externals needing data wait for a pending ReqO+data. *)
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  ignore l1;
  let got = ref None in
  port.Port.rmw (a 10 1) (Amo.Add 1) ~k:(fun v -> got := Some v);
  run h;
  let grant = expect ~what:"odata" (llc_msgs h) (Msg.Req Msg.ReqOdata) in
  clear h;
  inject h ~kind:(Msg.Req Msg.ReqOdata) ~line:10 ~mask:(w 1) ();
  expect_no ~what:"delayed until data arrives" (peer_msgs h) (Msg.Rsp Msg.RspOdata);
  reply h ~to_:grant ~kind:Msg.RspOdata ~payload:(Msg.Data [| 7 |]) ();
  check_int "rmw applied" 7 (Option.get !got);
  let fwd = expect ~what:"served post-RMW" (peer_msgs h) (Msg.Rsp Msg.RspOdata) in
  Alcotest.(check (list int)) "post-update value" [ 8 ] (values fwd)

(* ===== MESI ================================================================== *)

let mesi_read_miss_reqs () =
  let h = harness () in
  let l1 = mk_mesi h in
  let port = Mesi_l1.port l1 in
  let got = ref None in
  port.Port.load (a 2 1) ~k:(fun v -> got := Some v);
  run h;
  let m = expect ~what:"gets" (llc_msgs h) (Msg.Req Msg.ReqS) in
  check_bool "line granularity" true (Mask.equal m.Msg.mask full);
  reply h ~to_:m ~kind:Msg.RspS ~payload:(Msg.Data (Array.init 16 Fun.id)) ();
  check_int "value" 1 (Option.get !got);
  check_bool "S state" true (Mesi_l1.line_state l1 ~line:2 = State.M_S)

let mesi_e_grant_and_silent_upgrade () =
  let h = harness () in
  let l1 = mk_mesi h in
  let port = Mesi_l1.port l1 in
  port.Port.load (a 3 0) ~k:(fun _ -> ());
  run h;
  let m = expect ~what:"gets" (llc_msgs h) (Msg.Req Msg.ReqS) in
  reply h ~to_:m ~kind:Msg.RspOdata ~payload:(Msg.Data (Array.make 16 0)) ();
  check_bool "E on exclusive grant" true (Mesi_l1.line_state l1 ~line:3 = State.M_E);
  clear h;
  (* Store to E: silent E->M, no traffic. *)
  port.Port.store (a 3 5) ~value:5 ~k:(fun () -> ());
  let done_ = ref false in
  port.Port.release ~k:(fun () -> done_ := true);
  run h;
  check_bool "silent upgrade" true (llc_msgs h = []);
  check_bool "M state" true (Mesi_l1.line_state l1 ~line:3 = State.M_M);
  check_bool "release immediate" true !done_

let mesi_write_miss_rfo () =
  let h = harness () in
  let l1 = mk_mesi h in
  let port = Mesi_l1.port l1 in
  port.Port.store (a 4 2) ~value:42 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  run h;
  (* Read-for-ownership: full-line ReqO+data even for one word (Table II). *)
  let m = expect ~what:"rfo" (llc_msgs h) (Msg.Req Msg.ReqOdata) in
  check_bool "full line" true (Mask.equal m.Msg.mask full);
  reply h ~to_:m ~kind:Msg.RspOdata ~payload:(Msg.Data (Array.make 16 9)) ();
  check_bool "M" true (Mesi_l1.line_state l1 ~line:4 = State.M_M);
  check_bool "store applied over fetched line" true
    (Mesi_l1.peek_word l1 (a 4 2) = Some 42 && Mesi_l1.peek_word l1 (a 4 3) = Some 9)

let mesi_fwd_reqs_downgrades_to_s () =
  let h = harness () in
  let l1 = mk_mesi h in
  let port = Mesi_l1.port l1 in
  port.Port.store (a 5 0) ~value:50 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  run h;
  reply h
    ~to_:(expect ~what:"rfo" (llc_msgs h) (Msg.Req Msg.ReqOdata))
    ~kind:Msg.RspOdata
    ~payload:(Msg.Data (Array.make 16 3))
    ();
  clear h;
  inject h ~kind:(Msg.Req Msg.ReqS) ~line:5 ~mask:full ();
  let to_reader = expect ~what:"data to reader" (peer_msgs h) (Msg.Rsp Msg.RspS) in
  check_int "line data" 16 (List.length (values to_reader));
  let wb = expect ~what:"wb copy to LLC" (llc_msgs h) (Msg.Rsp Msg.RspRvkO) in
  check_int "full line" 16 (List.length (values wb));
  check_bool "S afterwards" true (Mesi_l1.line_state l1 ~line:5 = State.M_S)

let mesi_partial_downgrade_fig1d () =
  let h = harness () in
  let l1 = mk_mesi h in
  let port = Mesi_l1.port l1 in
  port.Port.store (a 6 1) ~value:61 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  run h;
  reply h
    ~to_:(expect ~what:"rfo" (llc_msgs h) (Msg.Req Msg.ReqOdata))
    ~kind:Msg.RspOdata
    ~payload:(Msg.Data (Array.make 16 6))
    ();
  clear h;
  (* Word-granularity revocation from a Spandex LLC (Fig. 1d): serve the
     word, fall to I, write back everything else. *)
  inject h ~kind:(Msg.Req Msg.ReqO) ~line:6 ~mask:(w 9) ();
  ignore (expect ~what:"direct ack to writer" (peer_msgs h) (Msg.Rsp Msg.RspO));
  let wb = expect ~what:"wb of remainder" (llc_msgs h) (Msg.Req Msg.ReqWB) in
  check_int "15 words written back" 15 (Mask.count wb.Msg.mask);
  check_bool "word 9 excluded" false (Mask.mem wb.Msg.mask 9);
  check_bool "line dropped" true (Mesi_l1.line_state l1 ~line:6 = State.M_I);
  (* The store's value survives in the write-back. *)
  check_bool "wb carries the stored value" true
    (List.nth (values wb) 1 = 61)

let mesi_inv_on_s () =
  let h = harness () in
  let l1 = mk_mesi h in
  let port = Mesi_l1.port l1 in
  port.Port.load (a 7 0) ~k:(fun _ -> ());
  run h;
  reply h
    ~to_:(expect ~what:"gets" (llc_msgs h) (Msg.Req Msg.ReqS))
    ~kind:Msg.RspS
    ~payload:(Msg.Data (Array.make 16 1))
    ();
  clear h;
  inject h ~kind:(Msg.Probe Msg.Inv) ~line:7 ~mask:full ();
  ignore (expect ~what:"ack" (llc_msgs h) (Msg.Rsp Msg.Ack));
  check_bool "invalidated" true (Mesi_l1.line_state l1 ~line:7 = State.M_I);
  (* Stale Inv (no copy): still acked. *)
  clear h;
  inject h ~kind:(Msg.Probe Msg.Inv) ~line:7 ~mask:full ();
  ignore (expect ~what:"stale ack" (llc_msgs h) (Msg.Rsp Msg.Ack))

let mesi_rvko_writes_back () =
  let h = harness () in
  let l1 = mk_mesi h in
  let port = Mesi_l1.port l1 in
  port.Port.store (a 8 0) ~value:80 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  run h;
  reply h
    ~to_:(expect ~what:"rfo" (llc_msgs h) (Msg.Req Msg.ReqOdata))
    ~kind:Msg.RspOdata
    ~payload:(Msg.Data (Array.make 16 0))
    ();
  clear h;
  inject h ~kind:(Msg.Probe Msg.RvkO) ~line:8 ~mask:full ();
  let wb = expect ~what:"rsprvko" (llc_msgs h) (Msg.Rsp Msg.RspRvkO) in
  check_bool "dirty value" true (List.hd (values wb) = 80);
  check_bool "I after revoke" true (Mesi_l1.line_state l1 ~line:8 = State.M_I)

let mesi_steal_mid_write () =
  (* III-D case 2: a downgrade during a pending miss forces I + WB of the
     non-downgraded words once the grant lands. *)
  let h = harness () in
  let l1 = mk_mesi h in
  let port = Mesi_l1.port l1 in
  port.Port.store (a 9 4) ~value:94 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  run h;
  let grant = expect ~what:"rfo" (llc_msgs h) (Msg.Req Msg.ReqOdata) in
  clear h;
  inject h ~kind:(Msg.Req Msg.ReqO) ~line:9 ~mask:(w 0) ();
  ignore (expect ~what:"steal acked at once" (peer_msgs h) (Msg.Rsp Msg.RspO));
  reply h ~to_:grant ~kind:Msg.RspOdata ~payload:(Msg.Data (Array.make 16 2)) ();
  let wb = expect ~what:"wb of kept words" (llc_msgs h) (Msg.Req Msg.ReqWB) in
  check_int "15 kept words" 15 (Mask.count wb.Msg.mask);
  check_bool "line dropped (III-D rule)" true (Mesi_l1.line_state l1 ~line:9 = State.M_I);
  check_bool "store value in the wb" true (List.mem 94 (values wb))

let mesi_eviction_writes_back_m () =
  let h = harness () in
  let l1 = mk_mesi h in
  let port = Mesi_l1.port l1 in
  let fill line v =
    port.Port.store (a line 0) ~value:v ~k:(fun () -> ());
    port.Port.release ~k:(fun () -> ());
    run h;
    let rfo = expect ~what:"rfo" (llc_msgs h) (Msg.Req Msg.ReqOdata) in
    clear h;
    reply h ~to_:rfo ~kind:Msg.RspOdata ~payload:(Msg.Data (Array.make 16 0)) ()
  in
  (* sets=4, ways=2: three same-set lines force an eviction; the victim's
     PutM is emitted while installing the third line. *)
  fill 8 1;
  fill 12 2;
  fill 16 3;
  let wb = expect ~what:"PutM" (llc_msgs h) (Msg.Req Msg.ReqWB) in
  check_int "full line" 16 (Mask.count wb.Msg.mask)

let tests =
  [
    test "gpu_read_miss_line_reqv" gpu_read_miss_line_reqv;
    test "gpu_store_writes_through_word" gpu_store_writes_through_word;
    test "gpu_rmw_bypasses_l1" gpu_rmw_bypasses_l1;
    test "gpu_acquire_flash_invalidates" gpu_acquire_flash_invalidates;
    test "gpu_nack_retry_then_convert" gpu_nack_retry_then_convert;
    test "gpu_inv_acked_silently" gpu_inv_acked_silently;
    test "denovo_read_word_demand_line_fill" denovo_read_word_demand_line_fill;
    test "denovo_store_reqo_no_data" denovo_store_reqo_no_data;
    test "denovo_rmw_local_with_ownership" denovo_rmw_local_with_ownership;
    test "denovo_rmw_at_llc_mode" denovo_rmw_at_llc_mode;
    test "denovo_acquire_keeps_owned" denovo_acquire_keeps_owned;
    test "denovo_external_table_iv" denovo_external_table_iv;
    test "denovo_fwd_reqs_surrenders_data" denovo_fwd_reqs_surrenders_data;
    test "denovo_eviction_wb_serves_externals" denovo_eviction_wb_serves_externals;
    test "denovo_steal_mid_own_grant" denovo_steal_mid_own_grant;
    test "denovo_data_request_mid_rmw_delayed" denovo_data_request_mid_rmw_delayed;
    test "mesi_read_miss_reqs" mesi_read_miss_reqs;
    test "mesi_e_grant_and_silent_upgrade" mesi_e_grant_and_silent_upgrade;
    test "mesi_write_miss_rfo" mesi_write_miss_rfo;
    test "mesi_fwd_reqs_downgrades_to_s" mesi_fwd_reqs_downgrades_to_s;
    test "mesi_partial_downgrade_fig1d" mesi_partial_downgrade_fig1d;
    test "mesi_inv_on_s" mesi_inv_on_s;
    test "mesi_rvko_writes_back" mesi_rvko_writes_back;
    test "mesi_steal_mid_write" mesi_steal_mid_write;
    test "mesi_eviction_writes_back_m" mesi_eviction_writes_back_m;
  ]
