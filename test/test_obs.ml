(* Time-series metrics and the PDES shard profiler: series sampling and
   merge semantics, OpenMetrics/CSV/Chrome exporter well-formedness, the
   profiler's accounting identities, and the load-bearing invariant that
   enabling metrics never changes simulated results — on the full 60-cell
   bench matrix and under the PDES backend. *)

module Metrics = Spandex_obs.Metrics
module Pdes_prof = Spandex_obs.Pdes_prof
module Pdes = Spandex_sim.Pdes
module Trace = Spandex_sim.Trace
module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Sweep = Spandex_system.Sweep
module Report = Spandex_system.Report
module Registry = Spandex_workloads.Registry

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ----- registry: sampling, kinds, merge -------------------------------------- *)

let disabled_is_noop () =
  let reg = Metrics.disabled in
  check_bool "off" false (Metrics.on reg);
  Metrics.counter reg ~name:"x_total" (fun () -> Alcotest.fail "probed");
  Metrics.sample reg ~time:0;
  check_int "no series" 0 (Metrics.num_series reg);
  check_int "no samples" 0 (Metrics.num_samples reg)

let sampling_records_typed_series () =
  let reg = Metrics.create { Metrics.sample_every = 4 } in
  let ops = ref 0 and depth = ref 5 in
  Metrics.counter reg ~name:"t_ops_total"
    ~labels:[ ("shard", "0") ]
    ~help:"ops" (fun () -> !ops);
  Metrics.gauge reg ~name:"t_depth" (fun () -> !depth);
  Metrics.ratio reg ~name:"t_hit_ratio" (fun () -> (!ops, !depth));
  Metrics.sample reg ~time:0;
  ops := 3;
  depth := 6;
  Metrics.sample reg ~time:4;
  check_int "series" 3 (Metrics.num_series reg);
  check_int "samples" 6 (Metrics.num_samples reg);
  match Metrics.dump reg with
  | [ (cn, cl, ck, cs); (gn, _, gk, gs); (rn, _, rk, rs) ] ->
    check_string "counter name" "t_ops_total" cn;
    check_bool "counter labels" true (cl = [ ("shard", "0") ]);
    check_bool "counter kind" true (ck = Metrics.Counter);
    check_bool "counter points" true (cs = [| (0, 0, 1); (4, 3, 1) |]);
    check_string "gauge name" "t_depth" gn;
    check_bool "gauge kind" true (gk = Metrics.Gauge);
    check_bool "gauge points" true (gs = [| (0, 5, 1); (4, 6, 1) |]);
    check_string "ratio name" "t_hit_ratio" rn;
    check_bool "ratio kind" true (rk = Metrics.Ratio);
    check_bool "ratio points" true (rs = [| (0, 0, 5); (4, 3, 6) |])
  | l -> Alcotest.failf "expected 3 series, got %d" (List.length l)

let rejects_bad_cadence () =
  match Metrics.create { Metrics.sample_every = 0 } with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let merge_combines_registries () =
  (* Distinct identities concatenate; the same (name, labels, kind)
     identity across registries merges its points in time order. *)
  let a = Metrics.create Metrics.default_spec in
  let b = Metrics.create Metrics.default_spec in
  let va = ref 1 and vb = ref 10 in
  Metrics.gauge a ~name:"m" ~labels:[ ("shard", "0") ] (fun () -> !va);
  Metrics.gauge a ~name:"shared" (fun () -> !va);
  Metrics.gauge b ~name:"m" ~labels:[ ("shard", "1") ] (fun () -> !vb);
  Metrics.gauge b ~name:"shared" (fun () -> !vb);
  Metrics.sample a ~time:0;
  Metrics.sample b ~time:64;
  va := 2;
  Metrics.sample a ~time:128;
  let m = Metrics.merge [ a; b; Metrics.disabled ] in
  check_int "distinct label sets stay separate" 3 (Metrics.num_series m);
  check_int "all samples survive" 6 (Metrics.num_samples m);
  let shared =
    List.find_opt (fun (n, _, _, _) -> n = "shared") (Metrics.dump m)
  in
  (match shared with
  | Some (_, _, _, pts) ->
    check_bool "same-identity series merged by time" true
      (pts = [| (0, 1, 1); (64, 10, 1); (128, 2, 1) |])
  | None -> Alcotest.fail "shared series missing");
  check_bool "all-disabled merges to disabled" false
    (Metrics.on (Metrics.merge [ Metrics.disabled ]))

(* ----- exporters -------------------------------------------------------------- *)

let exporter_registry () =
  let reg = Metrics.create Metrics.default_spec in
  let ops = ref 0 in
  Metrics.counter reg ~name:"t_ops_total"
    ~labels:[ ("device", "llc.b0"); ("odd label", "a\"b") ]
    ~help:"operations" (fun () -> !ops);
  Metrics.gauge reg ~name:"t depth" (fun () -> 7) (* name needs sanitizing *);
  Metrics.ratio reg ~name:"t_ratio" (fun () -> (1, 2));
  Metrics.sample reg ~time:0;
  ops := 5;
  Metrics.sample reg ~time:64;
  ops := 6;
  Metrics.sample reg ~time:128;
  reg

let name_charset_ok name =
  let ok i c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || c = '_' || c = ':'
    || (i > 0 && c >= '0' && c <= '9')
  in
  name <> ""
  && List.for_all
       (fun i -> ok i name.[i])
       (List.init (String.length name) Fun.id)

let openmetrics_wellformed () =
  let reg = exporter_registry () in
  let buf = Buffer.create 256 in
  Metrics.export_openmetrics reg buf;
  let lines =
    String.split_on_char '\n' (String.trim (Buffer.contents buf))
  in
  check_string "terminator" "# EOF" (List.nth lines (List.length lines - 1));
  let samples =
    List.filter
      (fun l -> l <> "" && not (String.length l >= 1 && l.[0] = '#'))
      lines
  in
  check_int "one line per sample" (Metrics.num_samples reg)
    (List.length samples);
  (* Counter families drop the _total suffix in the TYPE declaration; the
     samples keep it. *)
  check_bool "counter TYPE strips _total" true
    (contains (Buffer.contents buf) "# TYPE t_ops counter");
  check_bool "counter samples keep _total" true
    (contains (Buffer.contents buf) "t_ops_total{");
  check_bool "help line" true
    (contains (Buffer.contents buf) "# HELP t_ops operations");
  check_bool "ratio exports as gauge" true
    (contains (Buffer.contents buf) "# TYPE t_ratio gauge");
  check_bool "ratio value is the quotient" true
    (contains (Buffer.contents buf) "t_ratio 0.5 0");
  (* Every sample line is 'name{labels} value cycle' with a sane metric
     name, a numeric value, and an integer cycle timestamp. *)
  List.iter
    (fun l ->
      match String.split_on_char ' ' l with
      | [ series; value; cycle ] ->
        let name =
          match String.index_opt series '{' with
          | Some i -> String.sub series 0 i
          | None -> series
        in
        check_bool ("metric name charset: " ^ name) true (name_charset_ok name);
        check_bool ("numeric value: " ^ value) true
          (float_of_string_opt value <> None);
        check_bool ("integer cycle: " ^ cycle) true
          (int_of_string_opt cycle <> None)
      | _ -> Alcotest.failf "malformed sample line: %s" l)
    samples;
  (* Label values are escaped, keys sanitized. *)
  check_bool "label escaping" true
    (contains (Buffer.contents buf) "odd_label=\"a\\\"b\"")

let csv_wellformed () =
  let reg = exporter_registry () in
  let buf = Buffer.create 256 in
  Metrics.export_csv reg buf;
  let lines =
    String.split_on_char '\n' (String.trim (Buffer.contents buf))
  in
  check_string "header" "cycle,metric,labels,kind,value,delta"
    (List.hd lines);
  check_int "one row per sample" (Metrics.num_samples reg)
    (List.length lines - 1);
  (* The counter's delta column is the per-interval difference. *)
  let counter_rows =
    List.filter (fun l -> contains l ",t_ops_total,") lines
  in
  let deltas =
    List.map
      (fun l ->
        match List.rev (String.split_on_char ',' l) with
        | d :: _ -> d
        | [] -> assert false)
      counter_rows
  in
  check_bool "counter deltas" true (deltas = [ "0"; "5"; "1" ]);
  (* Gauge rows leave the delta empty. *)
  List.iter
    (fun l ->
      if contains l ",gauge," || contains l ",ratio," then
        check_bool ("empty delta: " ^ l) true
          (String.length l > 0 && l.[String.length l - 1] = ','))
    (List.tl lines)

let chrome_counters_json_valid () =
  let reg = exporter_registry () in
  let events = ref [] in
  Metrics.chrome_counter_events reg ~emit:(fun s -> events := s :: !events);
  check_int "one event per sample" (Metrics.num_samples reg)
    (List.length !events);
  List.iter
    (fun e ->
      check_bool ("counter event parses: " ^ e) true (Helpers.json_valid e);
      check_bool "is a counter phase" true (contains e "\"ph\":\"C\""))
    !events

(* ----- end-to-end: a simulated run with metrics on ---------------------------- *)

let bench_cell () =
  let params = Params.bench in
  let geom = Registry.geometry_of_params params in
  ((Registry.find "bc").Registry.build ~scale:0.25 geom, Config.smd)

let simulated_run_collects_series () =
  let wl, config = bench_cell () in
  let params =
    { Params.bench with Params.metrics = Some Metrics.default_spec }
  in
  let r = Run.simulate ~params ~config wl in
  Run.assert_clean r;
  let m = r.Run.metrics in
  check_bool "registry live" true (Metrics.on m);
  check_bool "collected series" true (Metrics.num_series m > 0);
  check_bool "collected samples" true (Metrics.num_samples m > 0);
  let names = List.map (fun (n, _, _, _) -> n) (Metrics.dump m) in
  List.iter
    (fun expected ->
      check_bool ("series registered: " ^ expected) true
        (List.mem expected names))
    [
      "spandex_llc_bank_lines";
      "spandex_l1_mshr_occupancy";
      "spandex_net_in_flight";
      "spandex_net_flits_total";
      "spandex_net_vc_depth";
      "spandex_dram_queue_depth";
      "spandex_engine_events_total";
    ];
  (* The engine-events counter's last sample cannot exceed the run's
     event total, and must be monotone. *)
  (match
     List.find_opt
       (fun (n, _, _, _) -> n = "spandex_engine_events_total")
       (Metrics.dump m)
   with
  | Some (_, _, _, pts) ->
    check_bool "events counter sampled" true (Array.length pts > 0);
    let mono = ref true and prev = ref min_int in
    Array.iter
      (fun (_, v, _) ->
        if v < !prev then mono := false;
        prev := v)
      pts;
    check_bool "monotone" true !mono;
    let _, last, _ = pts.(Array.length pts - 1) in
    check_bool "bounded by run events" true (last <= r.Run.events)
  | None -> Alcotest.fail "engine events series missing");
  (* The whole Chrome document with metric counter tracks merged in must
     still parse. *)
  let tparams = { params with Params.trace = Some Trace.default_spec } in
  let rt = Run.simulate ~params:tparams ~config wl in
  let buf = Buffer.create (1 lsl 16) in
  Trace.export_chrome
    ~extra:(Metrics.chrome_counter_events rt.Run.metrics)
    rt.Run.trace
    ~device_name:(fun id -> rt.Run.device_names.(id))
    buf;
  check_bool "merged chrome export parses" true
    (Helpers.json_valid (String.trim (Buffer.contents buf)))

(* ----- the identity gate: metrics-on ≡ metrics-off ---------------------------- *)

let matrix ~params names =
  let geom = Registry.geometry_of_params params in
  List.concat_map
    (fun n ->
      let wl = (Registry.find n).Registry.build ~scale:0.25 geom in
      List.map
        (fun config -> { Sweep.label = n; params; config; workload = wl })
        Config.all)
    names

let non_stress_names =
  List.filter_map
    (fun e ->
      if e.Registry.kind = `Stress then None else Some e.Registry.name)
    Registry.entries

let with_metrics (j : Sweep.job) =
  {
    j with
    Sweep.params =
      { j.Sweep.params with Params.metrics = Some Metrics.default_spec };
  }

let metrics_on_matches_off_all_cells () =
  (* The full 60-cell bench matrix, mirroring the trace_identical gate:
     every cell must report bit-identical results with the metric sampler
     armed.  The sampler runs inline in the dispatch loop and never
     enqueues events, so any divergence is a probe mutating simulation
     state. *)
  let cells = matrix ~params:Params.bench non_stress_names in
  check_int "matrix size" 60 (List.length cells);
  let off = Sweep.simulate_all ~jobs:1 cells in
  let on_ = Sweep.simulate_all ~jobs:1 (List.map with_metrics cells) in
  List.iter2
    (fun ((j : Sweep.job), o) m ->
      (match Report.diff_result o m with
      | None -> ()
      | Some d ->
        Alcotest.failf "%s %s diverged with metrics on: %s" j.Sweep.label
          j.Sweep.config.Config.name d);
      check_bool "metrics actually collected" true
        (Metrics.num_samples m.Run.metrics > 0))
    (List.combine cells off) on_

let metrics_on_matches_off_pdes () =
  (* Same identity under the sharded backend: per-shard registries sample
     from their own domains and merge after the run. *)
  let wl, config = bench_cell () in
  let params =
    {
      Params.bench with
      Params.engine_backend = Spandex_sim.Engine.Pdes_backend { shards = 2 };
    }
  in
  let off = Run.simulate ~params ~config wl in
  let on_ =
    Run.simulate
      ~params:{ params with Params.metrics = Some Metrics.default_spec }
      ~config wl
  in
  (match Report.diff_result off on_ with
  | None -> ()
  | Some d -> Alcotest.failf "pdes run diverged with metrics on: %s" d);
  check_bool "per-shard registries merged" true
    (Metrics.num_samples on_.Run.metrics > 0)

(* ----- PDES shard profiler ---------------------------------------------------- *)

let pdes_profile_sanity () =
  let wl, config = bench_cell () in
  let params =
    {
      Params.bench with
      Params.engine_backend = Spandex_sim.Engine.Pdes_backend { shards = 2 };
    }
  in
  let r = Run.simulate ~params ~config wl in
  Run.assert_clean r;
  match r.Run.shard_profile with
  | None -> Alcotest.fail "pdes run must carry a shard profile"
  | Some prof ->
    check_int "one profile per shard" r.Run.shards (Array.length prof);
    Array.iteri
      (fun i (s : Pdes.shard_profile) ->
        check_int
          (Printf.sprintf "shard %d events match shard_events" i)
          r.Run.shard_events.(i) s.Pdes.sp_events;
        check_bool "rounds positive" true (s.Pdes.sp_rounds > 0);
        check_bool "busy rounds bounded" true
          (s.Pdes.sp_busy_rounds >= 0
          && s.Pdes.sp_busy_rounds <= s.Pdes.sp_rounds);
        check_bool "wall split non-negative" true
          (s.Pdes.sp_exec_s >= 0.0
          && s.Pdes.sp_barrier_s >= 0.0
          && s.Pdes.sp_drain_s >= 0.0);
        (* The curve is capped at 512 buckets plus one partial tail. *)
        check_bool "load curve bounded" true
          (Array.length s.Pdes.sp_round_events <= 513);
        check_int
          (Printf.sprintf "shard %d load curve sums to its events" i)
          s.Pdes.sp_events
          (Array.fold_left ( + ) 0 s.Pdes.sp_round_events))
      prof;
    let f = Pdes_prof.barrier_wait_fraction prof in
    check_bool "barrier-wait fraction in [0,1]" true (f >= 0.0 && f <= 1.0);
    let rep = Pdes_prof.analyze prof in
    check_int "report total events" r.Run.events rep.Pdes_prof.r_total_events;
    check_bool "dominant shard valid" true
      (rep.Pdes_prof.r_dominant_shard >= 0
      && rep.Pdes_prof.r_dominant_shard < r.Run.shards);
    check_bool "max/mean >= 1" true (rep.Pdes_prof.r_load_max_mean >= 1.0);
    let s =
      Format.asprintf "%a" (Pdes_prof.pp ~partition:r.Run.partition) rep
    in
    check_bool "report names the dominant shard" true
      (contains s "dominant shard");
    check_bool "report prints the wall split header" true
      (contains s "barrier(s)")

let pdes_prof_add_pads_and_sums () =
  let wl, config = bench_cell () in
  let params =
    {
      Params.bench with
      Params.engine_backend = Spandex_sim.Engine.Pdes_backend { shards = 2 };
    }
  in
  let r = Run.simulate ~params ~config wl in
  let prof = Option.get r.Run.shard_profile in
  let double = Pdes_prof.add prof prof in
  check_int "same shard count" (Array.length prof) (Array.length double);
  Array.iteri
    (fun i (s : Pdes.shard_profile) ->
      check_int "events doubled" (2 * prof.(i).Pdes.sp_events) s.Pdes.sp_events;
      check_bool "aggregates drop the round curve" true
        (s.Pdes.sp_round_events = [||]))
    double;
  (* Different shard counts pad with zero-profiles. *)
  let padded = Pdes_prof.add prof (Array.sub prof 0 1) in
  check_int "padded to the wider array" (Array.length prof)
    (Array.length padded);
  check_int "padded tail keeps its events" prof.(1).Pdes.sp_events
    padded.(1).Pdes.sp_events;
  check_int "overlapping head sums" (2 * prof.(0).Pdes.sp_events)
    padded.(0).Pdes.sp_events

let tests =
  [
    test "disabled_is_noop" disabled_is_noop;
    test "sampling_records_typed_series" sampling_records_typed_series;
    test "rejects_bad_cadence" rejects_bad_cadence;
    test "merge_combines_registries" merge_combines_registries;
    test "openmetrics_wellformed" openmetrics_wellformed;
    test "csv_wellformed" csv_wellformed;
    test "chrome_counters_json_valid" chrome_counters_json_valid;
    test "simulated_run_collects_series" simulated_run_collects_series;
    test "metrics_on_matches_off_pdes" metrics_on_matches_off_pdes;
    test "pdes_profile_sanity" pdes_profile_sanity;
    test "pdes_prof_add_pads_and_sums" pdes_prof_add_pads_and_sums;
    test "metrics_on_matches_off_all_cells" metrics_on_matches_off_all_cells;
  ]
