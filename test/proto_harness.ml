(* Harness for protocol unit tests: a real engine/network/LLC with scripted
   fake devices whose messages are captured rather than auto-answered, so
   each test controls both sides of every transaction. *)

module Engine = Spandex_sim.Engine
module Network = Spandex_net.Network
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Mask = Spandex_util.Mask
module Llc = Spandex.Llc
module Backing = Spandex.Backing
module Dram = Spandex_mem.Dram

type fake = { id : Msg.device_id; inbox : Msg.t list ref }

type t = {
  engine : Engine.t;
  net : Network.t;
  dram : Dram.t;
  llc : Llc.t;
  devices : fake array;
}

let llc_id = 10

(* Three fake devices (0, 1, 2); device kinds are configurable to steer the
   ReqS policy. *)
let setup_with_policy ?(kind_of = fun _ -> Llc.Kind_denovo) ?(sets = 16)
    ?(ways = 4) ?(reqs_policy = Llc.Reqs_auto) () =
  Spandex_proto.Txn.reset ();
  let engine = Engine.create () in
  let net = Network.create engine (Network.flat_topology ~latency:2) in
  let dram = Dram.create engine ~latency:5 ~service_interval:0 in
  let llc =
    Llc.create engine net
      (Backing.dram engine dram)
      { Llc.llc_id; banks = 1; sets; ways; access_latency = 1; kind_of; reqs_policy }
  in
  let devices =
    Array.init 3 (fun id ->
        let inbox = ref [] in
        Network.register net ~id (fun m -> inbox := m :: !inbox);
        { id; inbox })
  in
  { engine; net; dram; llc; devices }

let setup ?kind_of ?sets ?ways () = setup_with_policy ?kind_of ?sets ?ways ()

let run t = ignore (Engine.run_all ~strict:false t.engine)

let inbox t i = List.rev !((t.devices.(i)).inbox)
let clear_inboxes t = Array.iter (fun d -> d.inbox := []) t.devices

(* Send a device-originated message into the system and settle. *)
let send ?demand ?payload ?amo ?txn t ~from ~kind ~line ~mask () =
  let txn = match txn with Some x -> x | None -> Spandex_proto.Txn.fresh () in
  Network.send t.net
    (Msg.make ~txn ~kind ~line ~mask ?demand ?payload ?amo ~src:from
       ~dst:llc_id ());
  run t;
  txn

let req ?demand ?payload ?amo ?txn t ~from ~kind ~line ~mask () =
  send ?demand ?payload ?amo ?txn t ~from ~kind:(Msg.Req kind) ~line ~mask ()

let rsp ?payload ?txn t ~from ~kind ~line ~mask () =
  ignore (send ?payload ?txn t ~from ~kind:(Msg.Rsp kind) ~line ~mask ())

(* Message-list assertions. *)
let kinds msgs = List.map (fun (m : Msg.t) -> m.Msg.kind) msgs

let find_kind msgs kind =
  List.find_opt (fun (m : Msg.t) -> m.Msg.kind = kind) msgs

let expect_kind ~what msgs kind =
  match find_kind msgs kind with
  | Some m -> m
  | None ->
    Alcotest.failf "%s: expected %s among [%s]" what
      (Format.asprintf "%a" Msg.pp_kind kind)
      (String.concat "; "
         (List.map (Format.asprintf "%a" Msg.pp_kind) (kinds msgs)))

let expect_no_kind ~what msgs kind =
  if find_kind msgs kind <> None then
    Alcotest.failf "%s: did not expect %s" what
      (Format.asprintf "%a" Msg.pp_kind kind)

let payload_list (m : Msg.t) =
  match m.Msg.payload with
  | Msg.Data values | Msg.Data_pooled values -> Array.to_list values
  | Msg.No_data -> []

let init_word = Spandex_proto.Linedata.init_word
