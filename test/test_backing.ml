(* Unit tests for the LLC's backing interface: fetches, exclusivity
   upgrades, and parent recalls — the machinery that makes the Spandex
   engine double as the hierarchical GPU L2 (DESIGN.md par.4) — plus the
   MESI client port against a scripted directory. *)

module Engine = Spandex_sim.Engine
module Network = Spandex_net.Network
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Mask = Spandex_util.Mask
module State = Spandex_proto.State
module Llc = Spandex.Llc
module Backing = Spandex.Backing
module Mesi_client = Spandex_mesi.Mesi_client

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let llc_id = 10
let full = Addr.full_mask
let expect = Proto_harness.expect_kind
let expect_no = Proto_harness.expect_no_kind

(* A scripted backing: the test controls when acquires complete and can
   fire recalls. *)
type scripted = {
  mutable acquires : (int * bool * (int array option -> excl:bool -> unit)) list;
  mutable writebacks : (int * int array * bool) list;
  mutable recall : Backing.recall_handler;
}

let scripted_backing () =
  let s = { acquires = []; writebacks = []; recall = (fun ~line:_ ~kind:_ ~k -> k None) } in
  let backing =
    {
      Backing.name = "scripted";
      acquire = (fun ~line ~excl ~k -> s.acquires <- s.acquires @ [ (line, excl, k) ]);
      writeback =
        (fun ~line ~data ~dirty ~k ->
          s.writebacks <- s.writebacks @ [ (line, data, dirty) ];
          k ());
      set_recall_handler = (fun h -> s.recall <- h);
      quiescent = (fun () -> true);
      describe_pending = (fun () -> "scripted");
    }
  in
  (s, backing)

type h = {
  engine : Engine.t;
  net : Network.t;
  llc : Llc.t;
  script : scripted;
  inboxes : Msg.t list ref array;
}

let harness () =
  Spandex_proto.Txn.reset ();
  let engine = Engine.create () in
  let net = Network.create engine (Network.flat_topology ~latency:2) in
  let script, backing = scripted_backing () in
  let llc =
    Llc.create engine net backing
      {
        Llc.llc_id;
        banks = 1;
        sets = 8;
        ways = 2;
        access_latency = 1;
        kind_of = (fun _ -> Llc.Kind_denovo);
        reqs_policy = Llc.Reqs_auto;
      }
  in
  let inboxes =
    Array.init 2 (fun id ->
        let inbox = ref [] in
        Network.register net ~id (fun m -> inbox := m :: !inbox);
        inbox)
  in
  { engine; net; llc; script; inboxes }

let run h = ignore (Engine.run_all ~strict:false h.engine)
let msgs h i = List.rev !(h.inboxes.(i))
let clear h = Array.iter (fun r -> r := []) h.inboxes

let send h ~from ~kind ~line ~mask ?payload () =
  Network.send h.net
    (Msg.make ~txn:(Spandex_proto.Txn.fresh ()) ~kind ~line ~mask ?payload
       ~src:from ~dst:llc_id ());
  run h

let grant h ?(data = Array.init 16 (fun i -> 700 + i)) ?(excl = true) () =
  match h.script.acquires with
  | (_, _, k) :: rest ->
    h.script.acquires <- rest;
    k (Some data) ~excl;
    run h
  | [] -> Alcotest.fail "no pending acquire to grant"

(* --- fetch and upgrade -------------------------------------------------------- *)

let fetch_blocks_until_grant () =
  let h = harness () in
  send h ~from:0 ~kind:(Msg.Req Msg.ReqV) ~line:3 ~mask:full ();
  (* The read waits on the backing fetch. *)
  expect_no ~what:"no response before fill" (msgs h 0) (Msg.Rsp Msg.RspV);
  check_int "one acquire" 1 (List.length h.script.acquires);
  (match h.script.acquires with
  | [ (3, excl, _) ] -> check_bool "ReqV fetches shared" false excl
  | _ -> Alcotest.fail "expected acquire of line 3");
  grant h ~excl:false ();
  let rsp = expect ~what:"fill served" (msgs h 0) (Msg.Rsp Msg.RspV) in
  check_int "backed data" 700 (List.hd (Proto_harness.payload_list rsp))

let write_triggers_exclusive_upgrade () =
  let h = harness () in
  send h ~from:0 ~kind:(Msg.Req Msg.ReqV) ~line:3 ~mask:full ();
  grant h ~excl:false ();
  clear h;
  (* A write needs exclusivity: the LLC must upgrade through the backing. *)
  send h ~from:0 ~kind:(Msg.Req Msg.ReqO) ~line:3 ~mask:(Mask.singleton 0) ();
  expect_no ~what:"blocked on upgrade" (msgs h 0) (Msg.Rsp Msg.RspO);
  (match h.script.acquires with
  | [ (3, true, _) ] -> ()
  | _ -> Alcotest.fail "expected exclusive upgrade of line 3");
  grant h ();
  ignore (expect ~what:"granted after upgrade" (msgs h 0) (Msg.Rsp Msg.RspO))

let upgrade_refreshes_stale_data () =
  (* An Inv raced past the upgrade: the grant carries fresh data that must
     replace the LLC's copy (III-C). *)
  let h = harness () in
  send h ~from:0 ~kind:(Msg.Req Msg.ReqV) ~line:3 ~mask:full ();
  grant h ~excl:false ~data:(Array.make 16 1) ();
  clear h;
  send h ~from:0 ~kind:(Msg.Req Msg.ReqWT) ~line:3 ~mask:(Mask.singleton 2)
    ~payload:(Msg.Data [| 42 |]) ();
  grant h ~data:(Array.make 16 9) ();
  check_bool "written word" true
    (Llc.peek_word h.llc (Addr.make ~line:3 ~word:2) = Some 42);
  check_bool "other words refreshed from the grant" true
    (Llc.peek_word h.llc (Addr.make ~line:3 ~word:5) = Some 9)

(* --- recalls -------------------------------------------------------------------- *)

let fill h ~line =
  send h ~from:0 ~kind:(Msg.Req Msg.ReqO) ~line ~mask:(Mask.singleton 1) ();
  grant h ()

let recall_excl_purges_and_drops () =
  let h = harness () in
  fill h ~line:3;
  clear h;
  let result = ref None in
  h.script.recall ~line:3 ~kind:Backing.Recall_excl ~k:(fun r -> result := Some r);
  run h;
  (* The internal owner must be revoked first. *)
  let rvko = expect ~what:"internal revoke" (msgs h 0) (Msg.Probe Msg.RvkO) in
  check_bool "not yet resolved" true (!result = None);
  send h ~from:0 ~kind:(Msg.Rsp Msg.RspRvkO) ~line:3 ~mask:(Mask.singleton 1)
    ~payload:(Msg.Data [| 77 |]) ();
  ignore rvko;
  (match !result with
  | Some (Some (data, dirty)) ->
    check_int "revoked data merged" 77 data.(1);
    check_bool "dirty" true dirty
  | _ -> Alcotest.fail "recall must resolve with data");
  check_bool "line dropped" true (Llc.line_state h.llc ~line:3 = None)

let recall_shared_keeps_line () =
  let h = harness () in
  fill h ~line:3;
  clear h;
  let result = ref None in
  h.script.recall ~line:3 ~kind:Backing.Recall_shared ~k:(fun r -> result := Some r);
  run h;
  send h ~from:0 ~kind:(Msg.Rsp Msg.RspRvkO) ~line:3 ~mask:(Mask.singleton 1)
    ~payload:(Msg.Data [| 88 |]) ();
  (match !result with
  | Some (Some (data, _)) -> check_int "data surrendered" 88 data.(1)
  | _ -> Alcotest.fail "recall must resolve");
  check_bool "line kept" true (Llc.line_state h.llc ~line:3 <> None);
  check_bool "ownership gone" true (Mask.is_empty (Llc.owned_mask h.llc ~line:3));
  clear h;
  (* Reads still hit; a write must re-upgrade. *)
  send h ~from:1 ~kind:(Msg.Req Msg.ReqV) ~line:3 ~mask:(Mask.singleton 5) ();
  ignore (expect ~what:"read hits shared line" (msgs h 1) (Msg.Rsp Msg.RspV));
  send h ~from:1 ~kind:(Msg.Req Msg.ReqO) ~line:3 ~mask:(Mask.singleton 5) ();
  check_int "write re-upgrades" 1 (List.length h.script.acquires)

let recall_of_absent_line_resolves_none () =
  let h = harness () in
  let result = ref None in
  h.script.recall ~line:9 ~kind:Backing.Recall_excl ~k:(fun r -> result := Some r);
  run h;
  check_bool "absent line" true (!result = Some None)

let recall_queued_behind_pending_fetch () =
  let h = harness () in
  send h ~from:0 ~kind:(Msg.Req Msg.ReqV) ~line:3 ~mask:full ();
  let result = ref None in
  h.script.recall ~line:3 ~kind:Backing.Recall_excl ~k:(fun r -> result := Some r);
  run h;
  check_bool "recall waits for the fetch" true (!result = None);
  grant h ~excl:false ();
  (match !result with
  | Some (Some _) -> ()
  | _ -> Alcotest.fail "recall must resolve after the fetch");
  (* The recall dropped the line; the still-unserved ReqV re-fetches. *)
  check_int "reader re-fetches" 1 (List.length h.script.acquires);
  grant h ~excl:false ~data:(Array.make 16 12) ();
  let rsp = expect ~what:"read finally served" (msgs h 0) (Msg.Rsp Msg.RspV) in
  check_int "fresh data" 12 (List.hd (Proto_harness.payload_list rsp))

let eviction_writes_back_through_backing () =
  let h = harness () in
  (* sets=8, ways=2: lines 1, 9, 17 conflict. *)
  send h ~from:0 ~kind:(Msg.Req Msg.ReqWT) ~line:1 ~mask:(Mask.singleton 0)
    ~payload:(Msg.Data [| 5 |]) ();
  grant h ();
  send h ~from:0 ~kind:(Msg.Req Msg.ReqV) ~line:9 ~mask:full ();
  grant h ~excl:false ();
  send h ~from:0 ~kind:(Msg.Req Msg.ReqV) ~line:17 ~mask:full ();
  (match h.script.writebacks with
  | [ (1, data, true) ] -> check_int "dirty eviction data" 5 data.(0)
  | _ -> Alcotest.fail "expected a dirty write-back of line 1")

(* --- Mesi_client against a scripted directory ----------------------------------- *)

type ch = {
  cengine : Engine.t;
  cnet : Network.t;
  client : Mesi_client.t;
  dir_inbox : Msg.t list ref;
  req_inbox : Msg.t list ref;
}

let client_harness () =
  Spandex_proto.Txn.reset ();
  let cengine = Engine.create () in
  let cnet = Network.create cengine (Network.flat_topology ~latency:2) in
  let dir_inbox = ref [] and req_inbox = ref [] in
  Network.register cnet ~id:20 (fun m -> dir_inbox := m :: !dir_inbox);
  Network.register cnet ~id:5 (fun m -> req_inbox := m :: !req_inbox);
  let client =
    Mesi_client.create cengine cnet
      { Mesi_client.id = 8; dir_id = 20; dir_banks = 1; hit_latency = 1 }
  in
  { cengine; cnet; client; dir_inbox; req_inbox }

let crun c = ignore (Engine.run_all ~strict:false c.cengine)

let canswer c ~kind ?payload () =
  match List.rev !(c.dir_inbox) with
  | m :: _ ->
    c.dir_inbox := [];
    Network.send c.cnet
      (Msg.make ~txn:m.Msg.txn ~kind:(Msg.Rsp kind) ~line:m.Msg.line
         ~mask:m.Msg.mask ?payload ~src:20 ~dst:8 ());
    crun c
  | [] -> Alcotest.fail "no directory request to answer"

let client_acquire_states () =
  let c = client_harness () in
  let b = Mesi_client.backing c.client in
  let got = ref None in
  (* Shared fetch: GetS. *)
  b.Backing.acquire ~line:4 ~excl:false ~k:(fun d ~excl -> got := Some (d, excl));
  crun c;
  ignore (expect ~what:"gets" (List.rev !(c.dir_inbox)) (Msg.Req Msg.ReqS));
  canswer c ~kind:Msg.RspS ~payload:(Msg.Data (Array.make 16 3)) ();
  (match !got with
  | Some (Some d, false) -> check_int "data" 3 d.(0)
  | _ -> Alcotest.fail "expected shared grant");
  (* Re-acquire shared: satisfied locally, no directory traffic. *)
  got := None;
  b.Backing.acquire ~line:4 ~excl:false ~k:(fun d ~excl -> got := Some (d, excl));
  crun c;
  check_bool "local hit" true (!got = Some (None, false));
  check_bool "no new request" true (!(c.dir_inbox) = []);
  (* Upgrade to exclusive: GetM. *)
  got := None;
  b.Backing.acquire ~line:4 ~excl:true ~k:(fun d ~excl -> got := Some (d, excl));
  crun c;
  ignore (expect ~what:"getm" (List.rev !(c.dir_inbox)) (Msg.Req Msg.ReqOdata));
  canswer c ~kind:Msg.RspOdata ~payload:(Msg.Data (Array.make 16 4)) ();
  (match !got with
  | Some (Some _, true) -> ()
  | _ -> Alcotest.fail "expected exclusive grant")

let client_writeback_putm () =
  let c = client_harness () in
  let b = Mesi_client.backing c.client in
  b.Backing.acquire ~line:4 ~excl:true ~k:(fun _ ~excl:_ -> ());
  crun c;
  canswer c ~kind:Msg.RspOdata ~payload:(Msg.Data (Array.make 16 0)) ();
  let done_ = ref false in
  b.Backing.writeback ~line:4 ~data:(Array.make 16 44) ~dirty:true ~k:(fun () ->
      done_ := true);
  crun c;
  let putm = expect ~what:"putm" (List.rev !(c.dir_inbox)) (Msg.Req Msg.ReqWB) in
  check_int "data" 44 (List.hd (Proto_harness.payload_list putm));
  check_bool "waits for ack" false !done_;
  canswer c ~kind:Msg.RspWB ();
  check_bool "acked" true !done_;
  (* A forwarded request while the PutM is in flight is served from the
     retained record... *)
  b.Backing.acquire ~line:4 ~excl:true ~k:(fun _ ~excl:_ -> ());
  crun c;
  ignore (expect ~what:"refetch" (List.rev !(c.dir_inbox)) (Msg.Req Msg.ReqOdata))

let client_fwd_served_from_wb_record () =
  let c = client_harness () in
  let b = Mesi_client.backing c.client in
  b.Backing.acquire ~line:4 ~excl:true ~k:(fun _ ~excl:_ -> ());
  crun c;
  canswer c ~kind:Msg.RspOdata ~payload:(Msg.Data (Array.make 16 0)) ();
  b.Backing.writeback ~line:4 ~data:(Array.make 16 55) ~dirty:true ~k:(fun () -> ());
  crun c;
  c.dir_inbox := [];
  (* The dir forwarded a GetM before seeing our PutM. *)
  Network.send c.cnet
    (Msg.make ~txn:999 ~kind:(Msg.Req Msg.ReqOdata) ~line:4 ~mask:full ~src:20
       ~dst:8 ~requestor:5 ~fwd:true ());
  crun c;
  let rsp = expect ~what:"data to requestor" (List.rev !(c.req_inbox)) (Msg.Rsp Msg.RspOdata) in
  check_int "retained data" 55 (List.hd (Proto_harness.payload_list rsp));
  ignore (expect ~what:"transfer ack to dir" (List.rev !(c.dir_inbox)) (Msg.Rsp Msg.RspRvkO))

let tests =
  [
    test "fetch_blocks_until_grant" fetch_blocks_until_grant;
    test "write_triggers_exclusive_upgrade" write_triggers_exclusive_upgrade;
    test "upgrade_refreshes_stale_data" upgrade_refreshes_stale_data;
    test "recall_excl_purges_and_drops" recall_excl_purges_and_drops;
    test "recall_shared_keeps_line" recall_shared_keeps_line;
    test "recall_of_absent_line_resolves_none" recall_of_absent_line_resolves_none;
    test "recall_queued_behind_pending_fetch" recall_queued_behind_pending_fetch;
    test "eviction_writes_back_through_backing" eviction_writes_back_through_backing;
    test "client_acquire_states" client_acquire_states;
    test "client_writeback_putm" client_writeback_putm;
    test "client_fwd_served_from_wb_record" client_fwd_served_from_wb_record;
  ]
