(* Shared test utilities. *)

module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo
module Ops = Spandex_device.Ops
module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Workload = Spandex_system.Workload

let w i = Addr.line_of_word_index i

(* A workload touching word indices offset by [base] so tests don't collide
   in interesting ways unless they mean to. *)
let workload ?(name = "test") ?(barriers = [||]) ~cpu ~gpu () =
  { Workload.name; cpu_programs = cpu; gpu_programs = gpu; barrier_parties = barriers; region_of = (fun _ -> 0) }

let simulate ?params config wl =
  let r = Run.simulate ?params ~config wl in
  Run.assert_clean r;
  r

let run_all_configs ?params wl =
  List.map (fun c -> (c, simulate ?params c wl)) Config.all

let check_all_configs ?params wl =
  List.iter (fun c -> ignore (simulate ?params c wl)) Config.all

let test name f = Alcotest.test_case name `Quick f

(* A minimal JSON syntax checker: validates structure without building
   values, enough to catch escaping and comma/bracket bugs in exporters
   without a JSON dependency. *)
let json_valid s =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  let skip_ws () =
    while !i < n && (s.[!i] = ' ' || s.[!i] = '\n' || s.[!i] = '\t' || s.[!i] = '\r') do
      incr i
    done
  in
  let fail = ref false in
  let expect c = if !i < n && s.[!i] = c then incr i else fail := true in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail := true
  and lit l =
    if !i + String.length l <= n && String.sub s !i (String.length l) = l then
      i := !i + String.length l
    else fail := true
  and number () =
    if peek () = Some '-' then incr i;
    let digits = ref 0 in
    while (not !fail) && !i < n && (match s.[!i] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false) do
      incr digits;
      incr i
    done;
    if !digits = 0 then fail := true
  and string_lit () =
    expect '"';
    let closed = ref false in
    while (not !fail) && (not !closed) && !i < n do
      (match s.[!i] with
      | '\\' -> incr i (* skip the escaped char below *)
      | '"' -> closed := true
      | c when Char.code c < 0x20 -> fail := true
      | _ -> ());
      incr i
    done;
    if not !closed then fail := true
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr i
    else begin
      let continue = ref true in
      while (not !fail) && !continue do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr i
        | Some ']' ->
          incr i;
          continue := false
        | _ ->
          fail := true;
          continue := false
      done
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr i
    else begin
      let continue = ref true in
      while (not !fail) && !continue do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr i
        | Some '}' ->
          incr i;
          continue := false
        | _ ->
          fail := true;
          continue := false
      done
    end
  in
  value ();
  skip_ws ();
  (not !fail) && !i = n

(* Small but not tiny: exercises the protocols without long runtimes. *)
let quick_params =
  {
    Params.default with
    Params.cpu_cores = 2;
    gpu_cus = 2;
    warps_per_cu = 2;
    mem_latency = 40;
  }
