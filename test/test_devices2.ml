(* Second device/LLC behaviour suite: store-buffer pressure, epochs and
   stale fills, release ordering, RMW interactions, and LLC edge cases not
   covered by the Table III/IV suites. *)

module Engine = Spandex_sim.Engine
module Network = Spandex_net.Network
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Mask = Spandex_util.Mask
module Amo = Spandex_proto.Amo
module State = Spandex_proto.State
module Port = Spandex_device.Port
module Gpu_l1 = Spandex_gpucoh.Gpu_l1
module Denovo_l1 = Spandex_denovo.Denovo_l1
module Mesi_l1 = Spandex_mesi.Mesi_l1

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let dev_id = 0
let llc_id = 10
let peer_id = 5
let w = Mask.singleton
let full = Addr.full_mask
let a line word = Addr.make ~line ~word
let expect = Proto_harness.expect_kind
let expect_no = Proto_harness.expect_no_kind
let values = Proto_harness.payload_list

type h = {
  engine : Engine.t;
  net : Network.t;
  llc_inbox : Msg.t list ref;
  peer_inbox : Msg.t list ref;
}

let harness () =
  Spandex_proto.Txn.reset ();
  let engine = Engine.create () in
  let net = Network.create engine (Network.flat_topology ~latency:2) in
  let llc_inbox = ref [] and peer_inbox = ref [] in
  Network.register net ~id:llc_id (fun m -> llc_inbox := m :: !llc_inbox);
  Network.register net ~id:peer_id (fun m -> peer_inbox := m :: !peer_inbox);
  { engine; net; llc_inbox; peer_inbox }

let run h = ignore (Engine.run_all ~strict:false h.engine)

(* Bounded run for scenarios whose deferred-retry polling only quiesces
   after the test injects a response. *)
let run_until h pred =
  ignore
    (Engine.run h.engine ~until_done:pred ~pending_desc:(fun () -> "test"))

let llc_msgs h = List.rev !(h.llc_inbox)

let clear h =
  h.llc_inbox := [];
  h.peer_inbox := []

let reply h ?payload ~to_:(m : Msg.t) ~kind ?mask ?(from = llc_id) () =
  let mask = Option.value ~default:m.Msg.mask mask in
  Network.send h.net
    (Msg.make ~txn:m.Msg.txn ~kind:(Msg.Rsp kind) ~line:m.Msg.line ~mask
       ?payload ~src:from ~dst:dev_id ());
  run h

let mk_gpu ?(sb_capacity = 2) h =
  Gpu_l1.create h.engine h.net
    { Gpu_l1.id = dev_id; llc_id; llc_banks = 1; sets = 4; ways = 2; mshrs = 8;
      sb_capacity; hit_latency = 1; coalesce_window = 2; max_reqv_retries = 1 }

let mk_denovo h =
  Denovo_l1.create h.engine h.net
    { Denovo_l1.id = dev_id; llc_id; llc_banks = 1; sets = 4; ways = 2;
      mshrs = 8; sb_capacity = 4; hit_latency = 1; coalesce_window = 2;
      max_reqv_retries = 1; atomics_at_llc = false; region_of = (fun _ -> 0);
      policy = Spandex_l1.Spandex_policy.Static_own }

(* --- GPU store-buffer pressure -------------------------------------------------- *)

let gpu_sb_pressure_stalls_and_recovers () =
  let h = harness () in
  let l1 = mk_gpu ~sb_capacity:2 h in
  let port = Gpu_l1.port l1 in
  let accepted = ref 0 in
  (* Three stores to distinct lines against a 2-entry buffer: the third
     finds it full and stalls until the drain frees an entry. *)
  for i = 0 to 2 do
    port.Port.store (a (20 + i) 0) ~value:i ~k:(fun () -> incr accepted)
  done;
  run h;
  check_bool "full buffer stalled a store" true
    (Spandex_util.Stats.get (Gpu_l1.stats l1) "sb_full_stall" >= 1);
  check_int "all recovered after drains" 3 !accepted;
  (* The three write-throughs eventually reach the LLC. *)
  let wts =
    List.filter (fun (m : Msg.t) -> m.Msg.kind = Msg.Req Msg.ReqWT) (llc_msgs h)
  in
  check_int "all entries drained" 3 (List.length wts);
  List.iter (fun m -> reply h ~to_:m ~kind:Msg.RspWT ()) wts;
  let flushed = ref false in
  port.Port.release ~k:(fun () -> flushed := true);
  run h;
  check_bool "quiesces" true !flushed

let gpu_stale_fill_not_cached_across_acquire () =
  let h = harness () in
  let l1 = mk_gpu h in
  let port = Gpu_l1.port l1 in
  let got = ref None in
  port.Port.load (a 2 0) ~k:(fun v -> got := Some v);
  run h;
  let m = expect ~what:"miss" (llc_msgs h) (Msg.Req Msg.ReqV) in
  (* An acquire fires while the fill is outstanding. *)
  port.Port.acquire ~k:(fun () -> ());
  run h;
  reply h ~to_:m ~kind:Msg.RspV ~payload:(Msg.Data (Array.make 16 7)) ();
  (* The demanded load still completes (its value predates the acquire in
     program order)... *)
  check_int "load value delivered" 7 (Option.get !got);
  (* ...but the fill must NOT be cached: its other words may predate the
     synchronization. *)
  check_int "stale fill dropped" 0 (Gpu_l1.valid_lines l1)

let gpu_rmw_invalidates_cached_line () =
  let h = harness () in
  let l1 = mk_gpu h in
  let port = Gpu_l1.port l1 in
  port.Port.load (a 2 0) ~k:(fun _ -> ());
  run h;
  reply h
    ~to_:(expect ~what:"fill" (llc_msgs h) (Msg.Req Msg.ReqV))
    ~kind:Msg.RspV
    ~payload:(Msg.Data (Array.make 16 1))
    ();
  check_int "cached" 1 (Gpu_l1.valid_lines l1);
  clear h;
  (* The RspWT+data's return value makes the cached line stale (III-A). *)
  port.Port.rmw (a 2 3) (Amo.Add 1) ~k:(fun _ -> ());
  run h;
  reply h
    ~to_:(expect ~what:"atomic" (llc_msgs h) (Msg.Req Msg.ReqWTdata))
    ~kind:Msg.RspWTdata
    ~payload:(Msg.Data [| 1 |])
    ();
  check_int "line invalidated by the atomic" 0 (Gpu_l1.valid_lines l1)

let gpu_release_blocks_on_outstanding_wt () =
  let h = harness () in
  let l1 = mk_gpu h in
  let port = Gpu_l1.port l1 in
  port.Port.store (a 3 0) ~value:1 ~k:(fun () -> ());
  let released = ref false in
  port.Port.release ~k:(fun () -> released := true);
  run h;
  let m1 = expect ~what:"wt" (llc_msgs h) (Msg.Req Msg.ReqWT) in
  check_bool "release pending" false !released;
  (* Another store while flushing joins the flush. *)
  port.Port.store (a 4 0) ~value:2 ~k:(fun () -> ());
  run h;
  reply h ~to_:m1 ~kind:Msg.RspWT ();
  check_bool "still pending (second WT outstanding)" false !released;
  let m2 =
    List.find
      (fun (m : Msg.t) -> m.Msg.kind = Msg.Req Msg.ReqWT && m.Msg.line = 4)
      (llc_msgs h)
  in
  reply h ~to_:m2 ~kind:Msg.RspWT ();
  check_bool "released once empty" true !released

(* --- DeNovo: reads, epochs, stalls ---------------------------------------------- *)

let denovo_nack_retry_then_convert () =
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  let got = ref None in
  port.Port.load (a 2 3) ~k:(fun v -> got := Some v);
  run h;
  let m1 = expect ~what:"reqv" (llc_msgs h) (Msg.Req Msg.ReqV) in
  clear h;
  reply h ~to_:m1 ~kind:Msg.Nack ~mask:(w 3) ~from:peer_id ();
  let m2 = expect ~what:"retried" (llc_msgs h) (Msg.Req Msg.ReqV) in
  check_bool "demands the word" true (Mask.equal m2.Msg.demand (w 3));
  clear h;
  reply h ~to_:m2 ~kind:Msg.Nack ~mask:(w 3) ~from:peer_id ();
  (* DeNovo converts to ReqO+data (III-C: "a ReqWT+data or ReqO+data"). *)
  let m3 = expect ~what:"converted" (llc_msgs h) (Msg.Req Msg.ReqOdata) in
  reply h ~to_:m3 ~kind:Msg.RspOdata ~payload:(Msg.Data [| 99 |]) ();
  check_int "finally served" 99 (Option.get !got);
  check_bool "converted read owns the word" true
    (Denovo_l1.word_state l1 (a 2 3) = State.O)

let denovo_stale_opportunistic_fill_dropped () =
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  let got = ref None in
  port.Port.load (a 2 3) ~k:(fun v -> got := Some v);
  run h;
  let m = expect ~what:"reqv" (llc_msgs h) (Msg.Req Msg.ReqV) in
  port.Port.acquire ~k:(fun () -> ());
  run h;
  reply h ~to_:m ~kind:Msg.RspV ~payload:(Msg.Data (Array.init 16 (fun i -> i))) ();
  check_int "demanded word served" 3 (Option.get !got);
  check_bool "opportunistic words not installed after acquire" true
    (Denovo_l1.word_state l1 (a 2 9) = State.I)

let denovo_load_defers_behind_same_word_rmw () =
  let h = harness () in
  let l1 = mk_denovo h in
  ignore l1;
  let port = Denovo_l1.port l1 in
  let rmw_done = ref None and load_done = ref None in
  port.Port.rmw (a 6 2) (Amo.Add 5) ~k:(fun v -> rmw_done := Some v);
  run_until h (fun () -> llc_msgs h <> []);
  (* A second context reads the same word mid-grant: it must wait and then
     observe the post-RMW value locally. *)
  port.Port.load (a 6 2) ~k:(fun v -> load_done := Some v);
  check_bool "load deferred" true (!load_done = None);
  let m = expect ~what:"grant" (llc_msgs h) (Msg.Req Msg.ReqOdata) in
  reply h ~to_:m ~kind:Msg.RspOdata ~payload:(Msg.Data [| 10 |]) ();
  check_int "rmw old value" 10 (Option.get !rmw_done);
  check_int "load sees post-rmw value" 15 (Option.get !load_done)

let denovo_sb_full_stalls () =
  let h = harness () in
  let l1 = mk_denovo h in
  let port = Denovo_l1.port l1 in
  let accepted = ref 0 in
  for i = 0 to 4 do
    port.Port.store (a (30 + i) 0) ~value:i ~k:(fun () -> incr accepted)
  done;
  run h;
  check_bool "full buffer stalled a store" true
    (Spandex_util.Stats.get (Denovo_l1.stats l1) "sb_full_stall" >= 1);
  check_int "all recovered after drains" 5 !accepted;
  let reqs =
    List.filter (fun (m : Msg.t) -> m.Msg.kind = Msg.Req Msg.ReqO) (llc_msgs h)
  in
  check_int "five ownership requests" 5 (List.length reqs);
  List.iter (fun m -> reply h ~to_:m ~kind:Msg.RspO ()) reqs;
  check_bool "all owned" true
    (Denovo_l1.owned_words l1 = 5)

(* --- MESI: RMW ordering and upgrade behaviour ------------------------------------ *)

let mesi_rmw_waits_for_same_line_store () =
  let h = harness () in
  let l1 = Mesi_l1.create h.engine h.net
      { Mesi_l1.id = dev_id; llc_id; llc_banks = 1; sets = 4; ways = 2;
        mshrs = 8; sb_capacity = 8; hit_latency = 1; coalesce_window = 50;
        notify_home_on_fwd_getm = false }
  in
  let port = Mesi_l1.port l1 in
  (* A store parks in the buffer (long coalesce window); the RMW to the
     same line must force it out first and observe it. *)
  port.Port.store (a 7 0) ~value:70 ~k:(fun () -> ());
  let got = ref None in
  port.Port.rmw (a 7 0) (Amo.Add 1) ~k:(fun v -> got := Some v);
  run_until h (fun () -> llc_msgs h <> []);
  let m = expect ~what:"forced rfo" (llc_msgs h) (Msg.Req Msg.ReqOdata) in
  reply h ~to_:m ~kind:Msg.RspOdata ~payload:(Msg.Data (Array.make 16 0)) ();
  check_int "rmw saw the buffered store" 70 (Option.get !got);
  check_bool "final value" true (Mesi_l1.peek_word l1 (a 7 0) = Some 71)

let mesi_load_waits_on_pending_write () =
  (* A load beside a pending same-line write must NOT issue its own ReqS
     (the two would race at the LLC and one would be granted data-less);
     it is served from the write's grant. *)
  let h = harness () in
  let l1 = Mesi_l1.create h.engine h.net
      { Mesi_l1.id = dev_id; llc_id; llc_banks = 1; sets = 4; ways = 2;
        mshrs = 8; sb_capacity = 8; hit_latency = 1; coalesce_window = 1;
        notify_home_on_fwd_getm = false }
  in
  let port = Mesi_l1.port l1 in
  port.Port.store (a 9 0) ~value:90 ~k:(fun () -> ());
  run_until h (fun () -> llc_msgs h <> []);
  let rfo = expect ~what:"write miss" (llc_msgs h) (Msg.Req Msg.ReqOdata) in
  clear h;
  let got = ref None in
  port.Port.load (a 9 5) ~k:(fun v -> got := Some v);
  run h;
  check_bool "no separate read request" true (llc_msgs h = []);
  check_bool "load parked" true (!got = None);
  reply h ~to_:rfo ~kind:Msg.RspOdata ~payload:(Msg.Data (Array.make 16 3)) ();
  check_int "served from the grant" 3 (Option.get !got)

let mesi_store_misses_coalesce_whole_line () =
  let h = harness () in
  let l1 = Mesi_l1.create h.engine h.net
      { Mesi_l1.id = dev_id; llc_id; llc_banks = 1; sets = 4; ways = 2;
        mshrs = 8; sb_capacity = 8; hit_latency = 1; coalesce_window = 4;
        notify_home_on_fwd_getm = false }
  in
  let port = Mesi_l1.port l1 in
  port.Port.store (a 8 0) ~value:1 ~k:(fun () -> ());
  port.Port.store (a 8 9) ~value:2 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  run h;
  (* One RfO for both buffered words. *)
  let rfos =
    List.filter (fun (m : Msg.t) -> m.Msg.kind = Msg.Req Msg.ReqOdata) (llc_msgs h)
  in
  check_int "single miss" 1 (List.length rfos);
  reply h ~to_:(List.hd rfos) ~kind:Msg.RspOdata
    ~payload:(Msg.Data (Array.make 16 0)) ();
  check_bool "both applied" true
    (Mesi_l1.peek_word l1 (a 8 0) = Some 1 && Mesi_l1.peek_word l1 (a 8 9) = Some 2)

(* --- LLC edge cases ---------------------------------------------------------------- *)

let llc_plain_remote_write_without_amo () =
  (* ReqWT+data with values and no atomic op: a remote write returning the
     pre-update data (the paper's byte-store escape hatch). *)
  let open Proto_harness in
  let t = setup () in
  ignore
    (req t ~from:0 ~kind:Msg.ReqWTdata ~line:6 ~mask:(Mask.singleton 4)
       ~payload:(Msg.Data [| 1234 |])
       ());
  let rsp = expect_kind ~what:"old data" (inbox t 0) (Msg.Rsp Msg.RspWTdata) in
  check_int "pre-update value returned" (init_word ~line:6 ~word:4)
    (List.hd (payload_list rsp));
  check_bool "updated" true
    (Spandex.Llc.peek_word t.llc (Addr.make ~line:6 ~word:4) = Some 1234)

let llc_writer_keeps_its_shared_copy () =
  (* A sharer's own write must not invalidate the writer itself. *)
  let open Proto_harness in
  let t = setup ~kind_of:(fun _ -> Spandex.Llc.Kind_mesi) () in
  ignore (req t ~from:0 ~kind:Msg.ReqOdata ~line:9 ~mask:Addr.full_mask ());
  clear_inboxes t;
  let _ = req t ~from:1 ~kind:Msg.ReqS ~line:9 ~mask:Addr.full_mask () in
  let fwd = expect_kind ~what:"fwd" (inbox t 0) (Msg.Req Msg.ReqS) in
  rsp t ~from:0 ~kind:Msg.RspRvkO ~line:9 ~mask:Addr.full_mask
    ~payload:(Msg.Data (Array.make 16 0)) ~txn:fwd.Msg.txn ();
  clear_inboxes t;
  (* Sharer 1 writes: only sharer 0 gets an Inv. *)
  ignore
    (req t ~from:1 ~kind:Msg.ReqWT ~line:9 ~mask:(Mask.singleton 0)
       ~payload:(Msg.Data [| 5 |]) ());
  ignore (expect_kind ~what:"inv to the other sharer" (inbox t 0) (Msg.Probe Msg.Inv));
  expect_no ~what:"writer not invalidated" (inbox t 1) (Msg.Probe Msg.Inv);
  rsp t ~from:0 ~kind:Msg.Ack ~line:9 ~mask:Addr.full_mask ();
  ignore (expect_kind ~what:"write done" (inbox t 1) (Msg.Rsp Msg.RspWT))

let llc_dirty_eviction_after_wb_merge () =
  let open Proto_harness in
  let t = setup ~sets:1 ~ways:2 () in
  (* Own then write back line 1 (making the LLC's copy dirty)... *)
  ignore (req t ~from:0 ~kind:Msg.ReqO ~line:1 ~mask:(Mask.singleton 0) ());
  ignore
    (req t ~from:0 ~kind:Msg.ReqWB ~line:1 ~mask:(Mask.singleton 0)
       ~payload:(Msg.Data [| 321 |]) ());
  (* ...then force its eviction and check memory. *)
  ignore (req t ~from:0 ~kind:Msg.ReqV ~line:2 ~mask:Addr.full_mask ());
  ignore (req t ~from:0 ~kind:Msg.ReqV ~line:3 ~mask:Addr.full_mask ());
  check_int "merged write-back reached memory" 321
    (Spandex_mem.Dram.peek_word t.dram (Addr.make ~line:1 ~word:0))

let core_barrier_is_release_acquire () =
  (* The core must perform Release before arriving and Acquire after. *)
  let e = Engine.create () in
  let log = ref [] in
  let port =
    {
      Port.load = (fun _ ~k -> Engine.schedule e ~delay:1 (fun () -> k 0));
      store = (fun _ ~value:_ ~k -> Engine.schedule e ~delay:1 k);
      rmw = (fun _ _ ~k -> Engine.schedule e ~delay:1 (fun () -> k 0));
      acquire =
        (fun ~k ->
          log := `Acquire :: !log;
          Engine.schedule e ~delay:1 k);
      acquire_region = (fun ~region:_ ~k -> Engine.schedule e ~delay:1 k);
      release =
        (fun ~k ->
          log := `Release :: !log;
          Engine.schedule e ~delay:1 k);
      quiescent = (fun () -> true);
      describe_pending = (fun () -> "stub");
    }
  in
  let check_log = Spandex_device.Check_log.create () in
  let barriers = [| Spandex_device.Barrier.create e ~parties:1 |] in
  let core =
    Spandex_device.Core.create e ~port ~barriers ~check_log ~core_id:0 ~clock:1
      ~programs:[| [| Spandex_device.Ops.Barrier 0 |] |]
  in
  Spandex_device.Core.start core;
  ignore
    (Engine.run e
       ~until_done:(fun () -> Spandex_device.Core.finished core)
       ~pending_desc:(fun () -> "core"));
  Alcotest.(check (list string))
    "release before acquire"
    [ "release"; "acquire" ]
    (List.rev_map (function `Release -> "release" | `Acquire -> "acquire") !log)

let tests =
  [
    test "gpu_sb_pressure_stalls_and_recovers" gpu_sb_pressure_stalls_and_recovers;
    test "gpu_stale_fill_not_cached_across_acquire" gpu_stale_fill_not_cached_across_acquire;
    test "gpu_rmw_invalidates_cached_line" gpu_rmw_invalidates_cached_line;
    test "gpu_release_blocks_on_outstanding_wt" gpu_release_blocks_on_outstanding_wt;
    test "denovo_nack_retry_then_convert" denovo_nack_retry_then_convert;
    test "denovo_stale_opportunistic_fill_dropped" denovo_stale_opportunistic_fill_dropped;
    test "denovo_load_defers_behind_same_word_rmw" denovo_load_defers_behind_same_word_rmw;
    test "denovo_sb_full_stalls" denovo_sb_full_stalls;
    test "mesi_rmw_waits_for_same_line_store" mesi_rmw_waits_for_same_line_store;
    test "mesi_load_waits_on_pending_write" mesi_load_waits_on_pending_write;
    test "mesi_store_misses_coalesce_whole_line" mesi_store_misses_coalesce_whole_line;
    test "llc_plain_remote_write_without_amo" llc_plain_remote_write_without_amo;
    test "llc_writer_keeps_its_shared_copy" llc_writer_keeps_its_shared_copy;
    test "llc_dirty_eviction_after_wb_merge" llc_dirty_eviction_after_wb_merge;
    test "core_barrier_is_release_acquire" core_barrier_is_release_acquire;
  ]
