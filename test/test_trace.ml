(* Observability layer: histogram quantiles against a naive oracle, the
   trace ring's wraparound semantics, disabled-sink no-ops, exporter
   well-formedness, and the load-bearing invariant that tracing never
   changes simulated results. *)

module Hist = Spandex_util.Hist
module Trace = Spandex_sim.Trace
module Msg = Spandex_proto.Msg
module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Report = Spandex_system.Report
module Registry = Spandex_workloads.Registry

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ----- Hist ----------------------------------------------------------------- *)

let hist_basics () =
  let h = Hist.create () in
  check_bool "empty" true (Hist.is_empty h);
  check_int "empty quantile" 0 (Hist.quantile h 0.99);
  List.iter (Hist.record h) [ 3; 1; 4; 1; 5 ];
  check_int "count" 5 (Hist.count h);
  check_int "min" 1 (Hist.min_value h);
  check_int "max" 5 (Hist.max_value h);
  (* Values below 2^sub_bits land in exact unit buckets, so small-value
     quantiles are exact order statistics. *)
  check_int "p50 exact" 3 (Hist.quantile h 0.5);
  check_int "p100 is max" 5 (Hist.quantile h 1.0);
  Alcotest.(check (float 1e-9)) "mean" 2.8 (Hist.mean h);
  let s = Hist.summary h in
  check_int "summary count" 5 s.Hist.count;
  check_int "summary max" 5 s.Hist.max;
  Hist.record h (-7);
  check_int "negative clamps to 0" 0 (Hist.min_value h)

let hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.record a) [ 10; 1000 ];
  Hist.record_n b 77 ~n:3;
  Hist.merge_into ~dst:a b;
  check_int "merged count" 5 (Hist.count a);
  check_int "merged min" 10 (Hist.min_value a);
  check_int "merged max" 1000 (Hist.max_value a);
  check_int "merged p50 bucket" (Hist.index 77) (Hist.index (Hist.quantile a 0.5))

(* The oracle: exact order statistic at rank ceil(q*n) from a sorted list.
   The histogram must return an upper bound from the same bucket, clamped
   to the true maximum. *)
let quantile_oracle values q =
  let a = Array.of_list values in
  Array.sort compare a;
  let n = Array.length a in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  a.(min (n - 1) (rank - 1))

let value_gen =
  (* Spread across magnitudes so both exact and log-bucketed ranges are
     exercised: v = m lsl s for small m and shifts up to 30. *)
  QCheck2.Gen.(map (fun (m, s) -> m lsl s) (pair (int_bound 0xFFF) (int_bound 30)))

let hist_quantile_props =
  [
    QCheck2.Test.make ~name:"hist_quantile_vs_oracle"
      QCheck2.Gen.(list_size (int_range 1 300) value_gen)
      (fun values ->
        let h = Hist.create () in
        List.iter (Hist.record h) values;
        List.for_all
          (fun q ->
            let est = Hist.quantile h q in
            let exact = quantile_oracle values q in
            Hist.index est = Hist.index exact
            && est >= exact
            && est <= Hist.max_value h)
          [ 0.5; 0.9; 0.99; 1.0 ])
      ~print:(fun l -> String.concat ";" (List.map string_of_int l));
    QCheck2.Test.make ~name:"hist_bucket_bounds_inverse" value_gen
      (fun v ->
        let i = Hist.index v in
        let lo, hi = Hist.bucket_bounds i in
        lo <= v && v <= hi)
      ~print:string_of_int;
    QCheck2.Test.make ~name:"hist_merge_is_concat"
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 100) value_gen)
          (list_size (int_range 1 100) value_gen))
      (fun (xs, ys) ->
        let a = Hist.create () and b = Hist.create () and c = Hist.create () in
        List.iter (Hist.record a) xs;
        List.iter (Hist.record b) ys;
        List.iter (Hist.record c) (xs @ ys);
        Hist.merge_into ~dst:a b;
        Hist.count a = Hist.count c
        && Hist.min_value a = Hist.min_value c
        && Hist.max_value a = Hist.max_value c
        && List.for_all
             (fun q -> Hist.quantile a q = Hist.quantile c q)
             [ 0.5; 0.9; 0.99; 1.0 ]);
  ]

(* ----- trace sink ------------------------------------------------------------ *)

let trace_disabled () =
  let tr = Trace.disabled in
  check_bool "off" false (Trace.on tr);
  check_int "name is 0" 0 (Trace.name tr "anything");
  Trace.span_begin tr ~time:1 ~dev:0 ~txn:7 ~cls:0 ~line:0;
  Trace.span_end tr ~time:5 ~dev:0 ~txn:7;
  Trace.instant tr ~time:1 ~dev:0 ~name:0 ~txn:(-1) ~arg:0;
  Trace.counter tr ~time:1 ~dev:0 ~name:0 ~value:3;
  Trace.msg_send tr ~time:1 ~src:0 ~dst:1 ~txn:7 ~kind:0 ~line:0;
  check_int "nothing recorded" 0 (Trace.total tr);
  check_int "no open spans" 0 (Trace.open_spans tr);
  Alcotest.(check (list (pair string reject)))
    "no latency" [] (Trace.latency_summaries tr);
  let n = ref 0 in
  Trace.iter tr ~f:(fun _ -> incr n);
  check_int "iter empty" 0 !n

let trace_ring_wrap () =
  let tr = Trace.create { Trace.capacity = 8; sample_every = 64 } in
  let name = Trace.name tr "tick" in
  for t = 0 to 19 do
    Trace.instant tr ~time:t ~dev:0 ~name ~txn:(-1) ~arg:t
  done;
  check_int "total" 20 (Trace.total tr);
  check_int "recorded = capacity" 8 (Trace.recorded tr);
  check_int "dropped" 12 (Trace.dropped tr);
  let times = ref [] in
  Trace.iter tr ~f:(fun ev ->
      match ev with
      | Trace.Instant { time; name = n; _ } ->
        Alcotest.(check string) "name survives wrap" "tick" n;
        times := time :: !times
      | _ -> Alcotest.fail "unexpected event kind");
  Alcotest.(check (list int))
    "oldest-to-newest, oldest dropped"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.rev !times)

let trace_capacity_rounds_up () =
  let tr = Trace.create { Trace.capacity = 5; sample_every = 64 } in
  let name = Trace.name tr "x" in
  for t = 0 to 7 do
    Trace.instant tr ~time:t ~dev:0 ~name ~txn:(-1) ~arg:0
  done;
  check_int "capacity rounded to 8" 8 (Trace.recorded tr);
  check_int "nothing dropped yet" 0 (Trace.dropped tr)

let trace_spans () =
  let tr = Trace.create { Trace.capacity = 16; sample_every = 64 } in
  Trace.span_begin tr ~time:10 ~dev:2 ~txn:42 ~cls:0 ~line:3;
  check_int "one open span" 1 (Trace.open_spans tr);
  Trace.span_end tr ~time:150 ~dev:2 ~txn:42;
  check_int "closed" 0 (Trace.open_spans tr);
  (* An end without a begin is ignored, not miscounted. *)
  Trace.span_end tr ~time:160 ~dev:2 ~txn:999;
  check_int "unmatched end ignored" 0 (Trace.open_spans tr);
  (match Trace.latency_summaries tr with
  | [ (name, s) ] ->
    Alcotest.(check string) "class name" (Trace.cls_name 0) name;
    check_int "count" 1 s.Hist.count;
    check_int "latency" 140 s.Hist.p50
  | l -> Alcotest.failf "expected one class, got %d" (List.length l));
  check_int "class histogram count" 1 (Hist.count (Trace.latency tr ~cls:0))

let trace_span_survives_wrap () =
  (* Latency accounting lives beside the ring, so a span whose begin event
     was evicted by wraparound still records its latency on end. *)
  let tr = Trace.create { Trace.capacity = 8; sample_every = 64 } in
  let name = Trace.name tr "noise" in
  Trace.span_begin tr ~time:0 ~dev:0 ~txn:1 ~cls:2 ~line:0;
  for t = 1 to 40 do
    Trace.instant tr ~time:t ~dev:0 ~name ~txn:(-1) ~arg:0
  done;
  Trace.span_end tr ~time:500 ~dev:0 ~txn:1;
  match Trace.latency_summaries tr with
  | [ (_, s) ] ->
    check_int "count" 1 s.Hist.count;
    check_int "latency despite eviction" 500 s.Hist.max
  | l -> Alcotest.failf "expected one class, got %d" (List.length l)

(* ----- exporters ------------------------------------------------------------- *)

(* The shared minimal JSON syntax checker (Helpers.json_valid). *)
let json_valid = Helpers.json_valid

let populated_sink () =
  let tr = Trace.create { Trace.capacity = 64; sample_every = 64 } in
  let quoted = Trace.name tr "needs \"escaping\"\n" in
  Trace.span_begin tr ~time:1 ~dev:0 ~txn:5 ~cls:1 ~line:9;
  Trace.msg_send tr ~time:2 ~src:0 ~dst:3 ~txn:5 ~kind:1 ~line:9;
  Trace.instant tr ~time:3 ~dev:3 ~name:quoted ~txn:5 ~arg:(-1);
  Trace.counter tr ~time:4 ~dev:0 ~name:quoted ~value:7;
  Trace.span_end tr ~time:20 ~dev:0 ~txn:5;
  tr

let export_chrome_valid () =
  let tr = populated_sink () in
  let buf = Buffer.create 256 in
  Trace.export_chrome tr ~device_name:(Printf.sprintf "dev\"%d\"") buf;
  let s = Buffer.contents buf in
  check_bool "chrome JSON parses" true (json_valid (String.trim s));
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  check_bool "has traceEvents" true (contains s "traceEvents");
  check_bool "escaped device name" true (contains s "dev\\\"0\\\"")

let export_jsonl_valid () =
  let tr = populated_sink () in
  let buf = Buffer.create 256 in
  Trace.export_jsonl tr ~device_name:(Printf.sprintf "dev%d") buf;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  (* header + 5 events *)
  check_int "line count" 6 (List.length lines);
  List.iter
    (fun l -> check_bool ("line parses: " ^ l) true (json_valid l))
    lines

(* ----- bit identity ---------------------------------------------------------- *)

let traced_params (p : Params.t) =
  { p with Params.trace = Some Trace.default_spec }

let run_pair ~params ~config wl =
  let plain = Run.simulate ~params ~config wl in
  let traced = Run.simulate ~params:(traced_params params) ~config wl in
  (plain, traced)

let trace_bit_identity () =
  (* The acceptance invariant: enabling tracing changes no simulated
     outcome — cycles, flits, messages, event counts, stats — across
     workloads and configurations. *)
  let geom = Registry.geometry_of_params Params.bench in
  List.iter
    (fun name ->
      let wl = (Registry.find name).Registry.build ~scale:0.25 geom in
      List.iter
        (fun config ->
          let plain, traced = run_pair ~params:Params.bench ~config wl in
          (match Report.diff_result plain traced with
          | None -> ()
          | Some d ->
            Alcotest.failf "%s %s: traced run diverged: %s" name
              config.Config.name d);
          check_bool
            (Printf.sprintf "%s %s: traced latency present" name
               config.Config.name)
            true
            (traced.Run.latency <> []);
          check_bool "untraced latency empty" true (plain.Run.latency = []))
        Config.all)
    [ "rsct"; "tqh" ]

let trace_bit_identity_faulted () =
  (* Same invariant under fault injection, where the trace layer also
     records drop/dup/delay instants and retry resends. *)
  let fault =
    Spandex_net.Fault.uniform ~drop:0.02 ~dup:0.01 ~delay:0.05 ~reorder:0.02
      ~seed:11 ()
  in
  let params = { Params.bench with Params.fault = Some fault } in
  let geom = Registry.geometry_of_params params in
  let wl = (Registry.find "bc").Registry.build ~scale:0.25 geom in
  List.iter
    (fun config ->
      let plain, traced = run_pair ~params ~config wl in
      match Report.diff_result plain traced with
      | None -> ()
      | Some d ->
        Alcotest.failf "bc %s faulted: traced run diverged: %s"
          config.Config.name d)
    [ Config.smd; Config.by_name "HMG" ]

let trace_end_to_end_export () =
  (* A full traced simulation exports valid Chrome JSON and JSONL. *)
  let geom = Registry.geometry_of_params Params.bench in
  let wl = (Registry.find "rsct").Registry.build ~scale:0.25 geom in
  let r =
    Run.simulate ~params:(traced_params Params.bench) ~config:Config.smd wl
  in
  Run.assert_clean r;
  let device_name id =
    if id >= 0 && id < Array.length r.Run.device_names then
      r.Run.device_names.(id)
    else Printf.sprintf "dev%d" id
  in
  let buf = Buffer.create 65536 in
  Trace.export_chrome r.Run.trace ~device_name buf;
  check_bool "chrome export parses" true
    (json_valid (String.trim (Buffer.contents buf)));
  Buffer.clear buf;
  Trace.export_jsonl r.Run.trace ~device_name buf;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check_int "jsonl lines = header + recorded"
    (Trace.recorded r.Run.trace + 1)
    (List.length lines);
  List.iter (fun l -> check_bool "jsonl line parses" true (json_valid l)) lines

let tests =
  [
    test "hist_basics" hist_basics;
    test "hist_merge" hist_merge;
    test "trace_disabled" trace_disabled;
    test "trace_ring_wrap" trace_ring_wrap;
    test "trace_capacity_rounds_up" trace_capacity_rounds_up;
    test "trace_spans" trace_spans;
    test "trace_span_survives_wrap" trace_span_survives_wrap;
    test "export_chrome_valid" export_chrome_valid;
    test "export_jsonl_valid" export_jsonl_valid;
    test "trace_bit_identity" trace_bit_identity;
    test "trace_bit_identity_faulted" trace_bit_identity_faulted;
    test "trace_end_to_end_export" trace_end_to_end_export;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) hist_quantile_props
