(* The bounded SPSC link channel under the PDES backend's discipline
   (exactly one pushing domain, exactly one popping domain): FIFO order,
   no lost or duplicated elements under randomized pacing, and honest
   backpressure ([try_push] = false on a full ring).  Plus the
   deterministic cross-shard merge: deliveries injected with equal
   arrival times dispatch in canonical (arrival, send time, tie) order
   regardless of insertion order — the property that makes PDES
   bit-identical to the sequential wheel. *)

module Spsc = Spandex_util.Spsc
module Engine = Spandex_sim.Engine
module Msg = Spandex_proto.Msg
module Mask = Spandex_util.Mask

let test = Helpers.test

(* ----- ring basics ---------------------------------------------------------- *)

let spsc_capacity_and_backpressure () =
  let ch = Spsc.create ~capacity:5 ~dummy:(-1) in
  (* Capacity rounds up to a power of two. *)
  Alcotest.(check int) "rounded capacity" 8 (Spsc.capacity ch);
  Alcotest.(check (option int)) "empty pop" None (Spsc.pop ch);
  for i = 0 to 7 do
    Alcotest.(check bool) "push accepted" true (Spsc.try_push ch i)
  done;
  Alcotest.(check bool) "full ring refuses" false (Spsc.try_push ch 99);
  Alcotest.(check int) "length" 8 (Spsc.length ch);
  Alcotest.(check (option int)) "fifo head" (Some 0) (Spsc.pop ch);
  (* One slot freed: exactly one more push fits. *)
  Alcotest.(check bool) "freed slot" true (Spsc.try_push ch 8);
  Alcotest.(check bool) "full again" false (Spsc.try_push ch 100);
  let rec drain acc =
    match Spsc.pop ch with Some v -> drain (v :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3; 4; 5; 6; 7; 8 ] (drain [])

let spsc_single_domain_interleaved () =
  (* Wrap-around soak: interleave pushes and pops so head/tail lap the
     ring many times. *)
  let ch = Spsc.create ~capacity:4 ~dummy:(-1) in
  let popped = ref [] in
  let next = ref 0 in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 10_000 do
    if Random.State.bool rng then begin
      if Spsc.try_push ch !next then incr next
    end
    else
      match Spsc.pop ch with
      | Some v -> popped := v :: !popped
      | None -> ()
  done;
  let rec drain () =
    match Spsc.pop ch with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  let got = List.rev !popped in
  Alcotest.(check int) "nothing lost" !next (List.length got);
  List.iteri
    (fun i v -> if v <> i then Alcotest.failf "slot %d: got %d" i v)
    got

(* ----- two-domain property: FIFO, no loss, no duplication ------------------- *)

let spsc_two_domains ~capacity ~total ~seed () =
  let ch = Spsc.create ~capacity ~dummy:(-1) in
  let producer =
    Domain.spawn (fun () ->
        let rng = Random.State.make [| seed |] in
        for i = 0 to total - 1 do
          while not (Spsc.try_push ch i) do
            Domain.cpu_relax ()
          done;
          (* Randomized pacing: stall occasionally so the consumer
             observes every relative speed, including empty rings. *)
          if Random.State.int rng 64 = 0 then
            for _ = 1 to Random.State.int rng 500 do
              Domain.cpu_relax ()
            done
        done)
  in
  let got = Array.make total (-1) in
  let n = ref 0 in
  let rng = Random.State.make [| seed + 1 |] in
  while !n < total do
    (match Spsc.pop ch with
    | Some v ->
      got.(!n) <- v;
      incr n
    | None -> Domain.cpu_relax ());
    if Random.State.int rng 64 = 0 then
      for _ = 1 to Random.State.int rng 500 do
        Domain.cpu_relax ()
      done
  done;
  Domain.join producer;
  Alcotest.(check (option int)) "ring drained" None (Spsc.pop ch);
  Array.iteri
    (fun i v -> if v <> i then Alcotest.failf "slot %d: got %d" i v)
    got

let spsc_cross_domain_fifo () =
  (* A tight ring (heavy backpressure) and a roomy one, several seeds. *)
  List.iter
    (fun (capacity, total, seed) -> spsc_two_domains ~capacity ~total ~seed ())
    [ (2, 300, 3); (16, 2_000, 7); (1024, 20_000, 11) ]

(* ----- deterministic merge of equal-timestamp deliveries --------------------- *)

let msg ~txn ~src ~dst =
  Msg.make ~txn ~kind:(Msg.Req Msg.ReqV) ~line:0 ~mask:(Mask.singleton 0) ~src
    ~dst ()

let equal_time_injections_merge_canonically () =
  (* Deliveries stamped elsewhere ([Engine.inject], the cross-shard path)
     all arriving at cycle 10, inserted in scrambled order: dispatch must
     follow the canonical key (arrival, send time t0, tie), not insertion
     order.  This is exactly where a conservative PDES run could diverge
     from the sequential wheel if merging were sloppy. *)
  let e = Engine.create () in
  let order = ref [] in
  let ep =
    {
      Engine.handler = (fun (m : Msg.t) -> order := m.Msg.txn :: !order);
      ingress_free = 0;
      in_flight = ref 0;
    }
  in
  (* (txn, t0, tie): canonical order is txn 1, 2, 3, 4.  Ties encode
     (src, seq) with src the high bits, so txn 3 (src 1, seq 0) sorts
     before txn 4 (src 2, seq 0) at equal (time, t0). *)
  let stamped =
    [
      (4, 9, (2 lsl 40) lor 0);
      (2, 8, (9 lsl 40) lor 5);
      (1, 8, (3 lsl 40) lor 7);
      (3, 9, (1 lsl 40) lor 0);
    ]
  in
  List.iter
    (fun (txn, t0, tie) ->
      Engine.inject e ~time:10 ~t0 ~tie (msg ~txn ~src:(tie lsr 40) ~dst:0) ep)
    stamped;
  Alcotest.(check int) "in flight counted" 4 !(ep.Engine.in_flight);
  ignore (Engine.run_all e);
  Alcotest.(check (list int)) "canonical (t0, tie) order" [ 1; 2; 3; 4 ]
    (List.rev !order);
  Alcotest.(check int) "in flight drained" 0 !(ep.Engine.in_flight)

let component_events_precede_equal_time_deliveries () =
  (* At one cycle, component events run before message deliveries in every
     backend; an injected (cross-shard) delivery must respect that too. *)
  let e = Engine.create () in
  let order = ref [] in
  let ep =
    {
      Engine.handler = (fun (_ : Msg.t) -> order := "delivery" :: !order);
      ingress_free = 0;
      in_flight = ref 0;
    }
  in
  Engine.inject e ~time:10 ~t0:8 ~tie:0 (msg ~txn:1 ~src:0 ~dst:0) ep;
  Engine.at e ~time:10 (fun () -> order := "component" :: !order);
  ignore (Engine.run_all e);
  Alcotest.(check (list string))
    "components first" [ "component"; "delivery" ] (List.rev !order)

let tests =
  [
    test "spsc: capacity rounding and backpressure"
      spsc_capacity_and_backpressure;
    test "spsc: wrap-around soak (single domain)"
      spsc_single_domain_interleaved;
    test "spsc: cross-domain FIFO, no loss/dup" spsc_cross_domain_fifo;
    test "merge: equal-time injections dispatch canonically"
      equal_time_injections_merge_canonically;
    test "merge: component events precede equal-time deliveries"
      component_events_precede_equal_time_deliveries;
  ]
