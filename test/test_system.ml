(* System-level integration tests: configuration wiring, banking,
   statistics, reports, and cross-configuration result invariants. *)

module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Report = Spandex_system.Report
module Workload = Spandex_system.Workload
module Registry = Spandex_workloads.Registry
module Microbench = Spandex_workloads.Microbench
module Msg = Spandex_proto.Msg

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let geom = { Microbench.cpus = 2; cus = 2; warps = 2 }

let params =
  { Params.bench with Params.cpu_cores = 2; gpu_cus = 2; warps_per_cu = 2 }

let run_micro name config =
  let wl = (Registry.find name).Registry.build ~scale:0.25 geom in
  let r = Run.simulate ~params ~config wl in
  Run.assert_clean r;
  r

let configs_cover_table_v () =
  check_int "six configurations" 6 (List.length Config.all);
  Alcotest.(check (list string))
    "paper order"
    [ "HMG"; "HMD"; "SMG"; "SMD"; "SDG"; "SDD" ]
    (List.map (fun c -> c.Config.name) Config.all);
  check_bool "lookup is case-insensitive" true (Config.by_name "smd" == Config.smd);
  check_bool "only SDG does CPU atomics at LLC" true
    (List.for_all
       (fun c -> c.Config.cpu_atomics_at_llc = (c.Config.name = "SDG"))
       Config.all);
  Alcotest.(check (list string))
    "extended set appends the adaptive configurations"
    [ "HMG"; "HMD"; "SMG"; "SMD"; "SDG"; "SDD"; "SDA"; "SAA" ]
    (List.map (fun c -> c.Config.name) Config.extended);
  check_bool "extended lookup" true (Config.by_name "saa" == Config.saa)

let simulation_deterministic () =
  let a = run_micro "reuseo" Config.smd in
  let b = run_micro "reuseo" Config.smd in
  check_int "cycles identical" a.Run.cycles b.Run.cycles;
  check_int "flits identical" a.Run.total_flits b.Run.total_flits;
  check_int "messages identical" a.Run.messages b.Run.messages

let traffic_breakdown_sums () =
  let r = run_micro "indirection" Config.sdd in
  let sum = List.fold_left (fun acc (_, n) -> acc + n) 0 r.Run.traffic in
  check_int "categories sum to total" r.Run.total_flits sum

let protocol_vocabulary_respected () =
  (* No write-through requests in an all-ownership configuration, and no
     ownership requests from a pure GPU-coherence/MESI... (SMG: MESI uses
     ReqO+data which is Cat_ReqO, so only check SDD's WT absence and that
     GPU coherence emits no ReqO in SDG's GPU). *)
  let r = run_micro "indirection" Config.sdd in
  let wt = List.assoc Msg.Cat_ReqWT r.Run.traffic in
  check_int "no write-through traffic in SDD" 0 wt;
  let r2 = run_micro "indirection" Config.hmg in
  check_bool "write-through traffic present in HMG" true
    (List.assoc Msg.Cat_ReqWT r2.Run.traffic > 0)

let hierarchical_uses_probe_traffic () =
  let r = run_micro "reuses" Config.hmg in
  check_bool "invalidations occurred" true
    (List.assoc Msg.Cat_Probe r.Run.traffic > 0)

let stats_are_collected () =
  let r = run_micro "reuseo" Config.hmd in
  let s = r.Run.stats in
  check_bool "dir counters" true (Spandex_util.Stats.get s "mesi_dir.hit" > 0);
  check_bool "l2 counters" true (Spandex_util.Stats.get s "gpu_l2.hit" > 0);
  check_bool "l1 counters" true
    (Spandex_util.Stats.get s "mesi_l1.0.load_hit" > 0);
  check_bool "core counters" true (Spandex_util.Stats.get s "core.0.ops" > 0)

let banking_preserved_correctness () =
  List.iter
    (fun banks ->
      let p = { params with Params.llc_banks = banks } in
      let wl = (Registry.find "stress").Registry.build ~scale:0.5 geom in
      List.iter
        (fun config ->
          let r = Run.simulate ~params:p ~config wl in
          Run.assert_clean r)
        Config.all)
    [ 1; 4 ]

let geometry_subsets_work () =
  (* CPU-only and GPU-only systems. *)
  let cpu_only =
    {
      Workload.name = "cpu-only";
      cpu_programs =
        [|
          [|
            Spandex_device.Ops.Store (Spandex_proto.Addr.make ~line:0 ~word:0, 1);
            Spandex_device.Ops.Release;
            Spandex_device.Ops.Check (Spandex_proto.Addr.make ~line:0 ~word:0, 1);
          |];
        |];
      gpu_programs = [||];
      barrier_parties = [||];
      region_of = (fun _ -> 0);
    }
  in
  List.iter
    (fun config -> Run.assert_clean (Run.simulate ~params ~config cpu_only))
    Config.all

let report_normalization () =
  let wl = (Registry.find "reuseo").Registry.build ~scale:0.25 geom in
  let cells =
    List.map
      (fun config ->
        { Report.config = config.Config.name; result = Run.simulate ~params ~config wl })
      Config.all
  in
  let row = { Report.workload = "reuseo"; cells } in
  let norm = Report.normalized row ~metric:Report.cycles in
  check_bool "HMG is 1.0" true (List.assoc "HMG" norm = 1.0);
  let h = Report.headline [ row ] in
  check_bool "headline in sane range" true
    (h.Report.time_avg > -1.0 && h.Report.time_avg < 1.0);
  let shares = Report.traffic_share (List.hd cells).Report.result in
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 shares in
  check_bool "shares sum to 1" true (abs_float (total -. 1.0) < 1e-9)

let checks_catch_wrong_data () =
  (* The oracle must actually detect wrong values. *)
  let wl =
    {
      Workload.name = "bad-check";
      cpu_programs =
        [|
          [|
            Spandex_device.Ops.Store (Spandex_proto.Addr.make ~line:0 ~word:0, 1);
            Spandex_device.Ops.Release;
            Spandex_device.Ops.Check (Spandex_proto.Addr.make ~line:0 ~word:0, 999);
          |];
        |];
      gpu_programs = [||];
      barrier_parties = [||];
      region_of = (fun _ -> 0);
    }
  in
  let r = Run.simulate ~params ~config:Config.smd wl in
  check_int "failure recorded" 1 (List.length r.Run.failures);
  match Run.assert_clean r with
  | () -> Alcotest.fail "assert_clean must raise"
  | exception Failure _ -> ()

let workload_too_big_rejected () =
  let wl =
    {
      Workload.name = "too-many-cpus";
      cpu_programs = Array.make 9 [||];
      gpu_programs = [||];
      barrier_parties = [||];
      region_of = (fun _ -> 0);
    }
  in
  match Run.simulate ~params ~config:Config.smd wl with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let tests =
  [
    test "configs_cover_table_v" configs_cover_table_v;
    test "simulation_deterministic" simulation_deterministic;
    test "traffic_breakdown_sums" traffic_breakdown_sums;
    test "protocol_vocabulary_respected" protocol_vocabulary_respected;
    test "hierarchical_uses_probe_traffic" hierarchical_uses_probe_traffic;
    test "stats_are_collected" stats_are_collected;
    test "banking_preserved_correctness" banking_preserved_correctness;
    test "geometry_subsets_work" geometry_subsets_work;
    test "report_normalization" report_normalization;
    test "checks_catch_wrong_data" checks_catch_wrong_data;
    test "workload_too_big_rejected" workload_too_big_rejected;
  ]
