(* PDES backend equivalence: [--engine pdes] must be bit-identical to the
   sequential wheel backend — cycles, flits, traffic breakdown, messages,
   events, checks and full merged stats — on every cell of the bench
   matrix, including fault-armed cells (which the partition caps to one
   shard) and traced cells (span/instant/send streams merge back to the
   sequential stream; counter samples are per-shard and excluded).  This
   is the acceptance gate for the conservative parallel backend. *)

module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Sweep = Spandex_system.Sweep
module Report = Spandex_system.Report
module Registry = Spandex_workloads.Registry
module Engine = Spandex_sim.Engine
module Trace = Spandex_sim.Trace

let test = Helpers.test

let pdes_params ?(shards = 2) (p : Params.t) =
  { p with Params.engine_backend = Engine.Pdes_backend { shards } }

let matrix ~params names =
  let geom = Registry.geometry_of_params params in
  List.concat_map
    (fun n ->
      let wl = (Registry.find n).Registry.build ~scale:0.25 geom in
      List.map
        (fun config -> { Sweep.label = n; params; config; workload = wl })
        Config.all)
    names

let non_stress_names =
  List.filter_map
    (fun e ->
      if e.Registry.kind = `Stress then None else Some e.Registry.name)
    Registry.entries

let check_identical cells seq par =
  List.iteri
    (fun i ((j : Sweep.job), (s, p)) ->
      match Report.diff_result s p with
      | None -> ()
      | Some d ->
        Alcotest.failf "job %d (%s %s) diverged: %s" i j.Sweep.label
          j.Sweep.config.Config.name d)
    (List.combine cells (List.combine seq par))

(* ----- smoke: one cell, two shards ----------------------------------------- *)

let smoke_two_shards () =
  let params = Params.bench in
  let geom = Registry.geometry_of_params params in
  let wl = (Registry.find "rsct").Registry.build ~scale:0.25 geom in
  let config = List.hd Config.all in
  let seq = Run.simulate ~params ~config wl in
  let par = Run.simulate ~params:(pdes_params params) ~config wl in
  Run.assert_clean par;
  Alcotest.(check bool) "used >1 shard" true (par.Run.shards > 1);
  Alcotest.(check int)
    "shard events sum"
    par.Run.events
    (Array.fold_left ( + ) 0 par.Run.shard_events);
  match Report.diff_result seq par with
  | None -> ()
  | Some d -> Alcotest.failf "pdes diverged from wheel: %s" d

(* ----- the full matrix ------------------------------------------------------ *)

let pdes_matches_wheel_all_cells () =
  let cells = matrix ~params:Params.bench non_stress_names in
  Alcotest.(check int) "matrix size" 60 (List.length cells);
  let wheel = Sweep.simulate_all ~jobs:1 cells in
  let pdes =
    Sweep.simulate_all ~jobs:1
      (List.map
         (fun j -> { j with Sweep.params = pdes_params j.Sweep.params })
         cells)
  in
  List.iter Run.assert_clean pdes;
  check_identical cells wheel pdes

let pdes_matches_wheel_many_shards () =
  (* Request more shards than the partition can use; the effective count
     is capped (devices + banks) and results must still be identical. *)
  let cells = matrix ~params:Params.bench [ "rsct"; "bc" ] in
  let wheel = Sweep.simulate_all ~jobs:1 cells in
  let pdes =
    Sweep.simulate_all ~jobs:1
      (List.map
         (fun j -> { j with Sweep.params = pdes_params ~shards:64 j.Sweep.params })
         cells)
  in
  check_identical cells wheel pdes

let pdes_matches_wheel_under_faults () =
  (* Fault plans force a single shard (the RNG draw order is global), but
     [--engine pdes] must still accept the request and reproduce the
     wheel bit-for-bit. *)
  let fault =
    Spandex_net.Fault.uniform ~drop:0.02 ~dup:0.01 ~delay:0.03 ~reorder:0.03
      ~seed:7 ()
  in
  let params = { Params.bench with Params.fault = Some fault } in
  let cells = matrix ~params [ "tqh" ] in
  let wheel = Sweep.simulate_all ~jobs:1 cells in
  let pdes =
    Sweep.simulate_all ~jobs:1
      (List.map
         (fun j -> { j with Sweep.params = pdes_params j.Sweep.params })
         cells)
  in
  List.iter
    (fun (r : Run.result) ->
      Alcotest.(check int) "fault runs are single-shard" 1 r.Run.shards)
    pdes;
  check_identical cells wheel pdes

(* ----- traced runs ---------------------------------------------------------- *)

(* Counter samples are taken by per-shard samplers (per-shard occupancy is
   a per-shard quantity), so the comparable part of a trace is the
   span/instant/send stream.  Spans and sends carry txn ids, which are
   per-device allocations — identical across backends. *)
let comparable_events tr =
  let evs = ref [] in
  Trace.iter tr ~f:(fun ev ->
      match ev with
      | Trace.Counter _ -> ()
      | ev -> evs := ev :: !evs);
  List.rev !evs

let pdes_trace_matches_wheel () =
  let params =
    { Params.bench with Params.trace = Some Trace.default_spec }
  in
  let geom = Registry.geometry_of_params params in
  let wl = (Registry.find "rsct").Registry.build ~scale:0.25 geom in
  let config = List.hd Config.all in
  let seq = Run.simulate ~params ~config wl in
  let par = Run.simulate ~params:(pdes_params params) ~config wl in
  Alcotest.(check bool) "used >1 shard" true (par.Run.shards > 1);
  (match Report.diff_result seq par with
  | None -> ()
  | Some d -> Alcotest.failf "traced pdes diverged from wheel: %s" d);
  let es = comparable_events seq.Run.trace in
  let ep = comparable_events par.Run.trace in
  Alcotest.(check int) "trace event count" (List.length es) (List.length ep);
  List.iteri
    (fun i (a, b) ->
      if a <> b then Alcotest.failf "trace event %d differs" i)
    (List.combine es ep);
  let project =
    List.map (fun (n, s) ->
        ( n,
          ( s.Spandex_util.Hist.count,
            (s.Spandex_util.Hist.p50, s.Spandex_util.Hist.p99),
            s.Spandex_util.Hist.max ) ))
  in
  Alcotest.(check (list (pair string (triple int (pair int int) int))))
    "latency summaries" (project seq.Run.latency) (project par.Run.latency)

let tests =
  [
    test "pdes: smoke, two shards == wheel" smoke_two_shards;
    test "pdes: all 60 cells == wheel" pdes_matches_wheel_all_cells;
    test "pdes: over-requested shards capped, == wheel"
      pdes_matches_wheel_many_shards;
    test "pdes: fault-armed cells == wheel (single shard)"
      pdes_matches_wheel_under_faults;
    test "pdes: traced run == wheel (spans/instants/sends)"
      pdes_trace_matches_wheel;
  ]
