(* PDES backend equivalence: [--engine pdes] must be bit-identical to the
   sequential wheel backend — cycles, flits, traffic breakdown, messages,
   events, checks and full merged stats — on every cell of the bench
   matrix, including fault-armed cells at shards > 1 (per-link fault RNG
   streams are shard-count-invariant) and traced cells (span/instant/send
   streams merge back to the sequential stream; counter samples are
   per-shard and excluded).  This is the acceptance gate for the
   conservative parallel backend and its banked home-complex partition. *)

module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Sweep = Spandex_system.Sweep
module Report = Spandex_system.Report
module Registry = Spandex_workloads.Registry
module Engine = Spandex_sim.Engine
module Trace = Spandex_sim.Trace
module Stats = Spandex_util.Stats

let test = Helpers.test

let pdes_params ?(shards = 2) (p : Params.t) =
  { p with Params.engine_backend = Engine.Pdes_backend { shards } }

let matrix ~params names =
  let geom = Registry.geometry_of_params params in
  List.concat_map
    (fun n ->
      let wl = (Registry.find n).Registry.build ~scale:0.25 geom in
      List.map
        (fun config -> { Sweep.label = n; params; config; workload = wl })
        Config.all)
    names

let non_stress_names =
  List.filter_map
    (fun e ->
      if e.Registry.kind = `Stress then None else Some e.Registry.name)
    Registry.entries

let check_identical cells seq par =
  List.iteri
    (fun i ((j : Sweep.job), (s, p)) ->
      match Report.diff_result s p with
      | None -> ()
      | Some d ->
        Alcotest.failf "job %d (%s %s) diverged: %s" i j.Sweep.label
          j.Sweep.config.Config.name d)
    (List.combine cells (List.combine seq par))

(* ----- smoke: one cell, two shards ----------------------------------------- *)

let smoke_two_shards () =
  let params = Params.bench in
  let geom = Registry.geometry_of_params params in
  let wl = (Registry.find "rsct").Registry.build ~scale:0.25 geom in
  let config = List.hd Config.all in
  let seq = Run.simulate ~params ~config wl in
  let par = Run.simulate ~params:(pdes_params params) ~config wl in
  Run.assert_clean par;
  Alcotest.(check bool) "used >1 shard" true (par.Run.shards > 1);
  Alcotest.(check int)
    "shard events sum"
    par.Run.events
    (Array.fold_left ( + ) 0 par.Run.shard_events);
  (* The banked partition must actually distribute the home complex: with
     banks > shards, no single shard may own every home bank. *)
  let home_bank name =
    String.length name > 5
    && (String.sub name 0 5 = "llc.b" || String.sub name 0 5 = "dir.b")
  in
  let bank_shards =
    Array.to_list par.Run.partition
    |> List.filter_map (fun (name, s) -> if home_bank name then Some s else None)
  in
  Alcotest.(check bool) "home banks span shards" true
    (List.length (List.sort_uniq compare bank_shards) > 1);
  match Report.diff_result seq par with
  | None -> ()
  | Some d -> Alcotest.failf "pdes diverged from wheel: %s" d

(* ----- the full matrix ------------------------------------------------------ *)

let pdes_matches_wheel_all_cells () =
  let cells = matrix ~params:Params.bench non_stress_names in
  Alcotest.(check int) "matrix size" 60 (List.length cells);
  let wheel = Sweep.simulate_all ~jobs:1 cells in
  let pdes =
    Sweep.simulate_all ~jobs:1
      (List.map
         (fun j -> { j with Sweep.params = pdes_params j.Sweep.params })
         cells)
  in
  List.iter Run.assert_clean pdes;
  check_identical cells wheel pdes

let pdes_matches_wheel_many_shards () =
  (* Request more shards than the partition can use; the effective count
     is capped (core + home-bank + GPU-complex placement units) and the
     banked partition must still reproduce the wheel bit-for-bit. *)
  let cells = matrix ~params:Params.bench [ "rsct"; "bc" ] in
  let wheel = Sweep.simulate_all ~jobs:1 cells in
  List.iter
    (fun shards ->
      let pdes =
        Sweep.simulate_all ~jobs:1
          (List.map
             (fun j ->
               { j with Sweep.params = pdes_params ~shards j.Sweep.params })
             cells)
      in
      check_identical cells wheel pdes)
    [ 3; 64 ]

(* ----- fault-armed multi-shard runs ----------------------------------------- *)

let fault_plan ~seed =
  Spandex_net.Fault.uniform ~drop:0.02 ~dup:0.01 ~delay:0.03 ~reorder:0.03
    ~seed ()

let pdes_matches_wheel_under_faults () =
  (* Fault plans no longer cap the shard count: per-(src, dst) link RNG
     streams derive from the plan seed alone, so the same drops, dups and
     delays happen at any shard count and the wheel is reproduced
     bit-for-bit on multi-shard partitions. *)
  let params = { Params.bench with Params.fault = Some (fault_plan ~seed:7) } in
  let cells = matrix ~params [ "tqh" ] in
  let wheel = Sweep.simulate_all ~jobs:1 cells in
  List.iter
    (fun shards ->
      let pdes =
        Sweep.simulate_all ~jobs:1
          (List.map
             (fun j ->
               { j with Sweep.params = pdes_params ~shards j.Sweep.params })
             cells)
      in
      List.iter
        (fun (r : Run.result) ->
          Alcotest.(check bool) "fault run uses >1 shard" true
            (r.Run.shards > 1))
        pdes;
      check_identical cells wheel pdes)
    [ 2; 4 ]

let fault_keys =
  [ "fault.injected"; "fault.drop"; "fault.dup"; "fault.delay"; "fault.reorder" ]

let fault_rng_per_link_deterministic () =
  (* Same plan => same per-link decision streams, regardless of how many
     shards the sends are spread over: the summed fault counters (and the
     whole result) are invariant across shards in {1, 2, 4}. *)
  let params =
    { Params.bench with Params.fault = Some (fault_plan ~seed:11) }
  in
  let geom = Registry.geometry_of_params params in
  let wl = (Registry.find "tqh").Registry.build ~scale:0.25 geom in
  let config = List.hd Config.all in
  let counts (r : Run.result) =
    List.map (fun k -> (k, Stats.get r.Run.stats ("net." ^ k))) fault_keys
  in
  let base = Run.simulate ~params ~config wl in
  Alcotest.(check bool) "plan injects faults" true
    (Stats.get base.Run.stats "net.fault.injected" > 0);
  List.iter
    (fun shards ->
      let r = Run.simulate ~params:(pdes_params ~shards params) ~config wl in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "fault decisions at %d shard(s)" shards)
        (counts base) (counts r);
      match Report.diff_result base r with
      | None -> ()
      | Some d ->
        Alcotest.failf "faulted pdes (%d shards) diverged: %s" shards d)
    [ 1; 2; 4 ]

(* ----- traced runs ---------------------------------------------------------- *)

(* Counter samples are taken by per-shard samplers (per-shard occupancy is
   a per-shard quantity), so the comparable part of a trace is the
   span/instant/send stream.  Spans and sends carry txn ids, which are
   per-device allocations — identical across backends. *)
let comparable_events tr =
  let evs = ref [] in
  Trace.iter tr ~f:(fun ev ->
      match ev with
      | Trace.Counter _ -> ()
      | ev -> evs := ev :: !evs);
  List.rev !evs

(* The pre-partition placement (home complex pinned to shard 0, cores to
   shard 1): with it, the k-way trace merge's (time, shard) order happens
   to reproduce the wheel's same-cycle event order exactly. *)
let legacy_partition =
  {
    Params.home_banks = Params.Pin 0;
    gpu_complex = Params.Pin 0;
    cores = Params.Pin 1;
  }

let pdes_trace_matches_wheel () =
  let params =
    { Params.bench with Params.trace = Some Trace.default_spec }
  in
  let geom = Registry.geometry_of_params params in
  let wl = (Registry.find "rsct").Registry.build ~scale:0.25 geom in
  let config = List.hd Config.all in
  let seq = Run.simulate ~params ~config wl in
  (* Pinned legacy partition: the merged stream must equal the wheel's
     event-for-event. *)
  let pinned =
    Run.simulate
      ~params:
        (pdes_params { params with Params.pdes_partition = legacy_partition })
      ~config wl
  in
  Alcotest.(check bool) "used >1 shard" true (pinned.Run.shards > 1);
  (match Report.diff_result seq pinned with
  | None -> ()
  | Some d -> Alcotest.failf "traced pdes diverged from wheel: %s" d);
  let es = comparable_events seq.Run.trace in
  let ep = comparable_events pinned.Run.trace in
  Alcotest.(check int) "trace event count" (List.length es) (List.length ep);
  List.iteri
    (fun i (a, b) ->
      if a <> b then Alcotest.failf "trace event %d differs" i)
    (List.combine es ep);
  (* Spread (default) partition: same-cycle events from different shards
     merge by shard index, which need not match the wheel's same-cycle
     interleave — but the multiset of timestamped events must be
     identical. *)
  let spread = Run.simulate ~params:(pdes_params params) ~config wl in
  (match Report.diff_result seq spread with
  | None -> ()
  | Some d -> Alcotest.failf "traced spread pdes diverged from wheel: %s" d);
  let sorted evs = List.sort compare evs in
  let es' = sorted es and ep' = sorted (comparable_events spread.Run.trace) in
  Alcotest.(check int)
    "spread trace event count" (List.length es') (List.length ep');
  List.iteri
    (fun i (a, b) ->
      if a <> b then Alcotest.failf "spread trace event %d differs (sorted)" i)
    (List.combine es' ep');
  let project =
    List.map (fun (n, s) ->
        ( n,
          ( s.Spandex_util.Hist.count,
            (s.Spandex_util.Hist.p50, s.Spandex_util.Hist.p99),
            s.Spandex_util.Hist.max ) ))
  in
  Alcotest.(check (list (pair string (triple int (pair int int) int))))
    "latency summaries" (project seq.Run.latency) (project pinned.Run.latency)

let tests =
  [
    test "pdes: smoke, two shards == wheel" smoke_two_shards;
    test "pdes: all 60 cells == wheel" pdes_matches_wheel_all_cells;
    test "pdes: over-requested shards capped, == wheel"
      pdes_matches_wheel_many_shards;
    test "pdes: fault-armed multi-shard cells == wheel"
      pdes_matches_wheel_under_faults;
    test "pdes: fault RNG is per-link deterministic across shard counts"
      fault_rng_per_link_deterministic;
    test "pdes: traced run == wheel (spans/instants/sends)"
      pdes_trace_matches_wheel;
  ]
