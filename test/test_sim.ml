(* Tests for the event engine, network model, barriers and the core model. *)

module Engine = Spandex_sim.Engine
module Network = Spandex_net.Network
module Msg = Spandex_proto.Msg
module Mask = Spandex_util.Mask
module Barrier = Spandex_device.Barrier

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ----- Engine ------------------------------------------------------------------ *)

let engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:5 (fun () -> log := "c" :: !log);
  let t = Engine.run_all e in
  check_int "final time" 5 t;
  Alcotest.(check (list string)) "order with fifo ties" [ "a"; "b"; "c" ]
    (List.rev !log)

let engine_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref 0 in
  Engine.schedule e ~delay:2 (fun () ->
      incr hits;
      Engine.schedule e ~delay:3 (fun () ->
          incr hits;
          check_int "nested time" 5 (Engine.now e)));
  ignore (Engine.run_all e);
  check_int "both ran" 2 !hits

let engine_deadlock_detection () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1 ignore;
  match
    Engine.run e ~until_done:(fun () -> false) ~pending_desc:(fun () -> "stuck!")
  with
  | _ -> Alcotest.fail "expected Deadlock"
  | exception Engine.Deadlock msg ->
    check_bool "message propagated" true (msg = "stuck!")

let engine_step_limit () =
  let e = Engine.create () in
  Engine.set_step_limit e 10;
  let rec spin () = Engine.schedule e ~delay:1 spin in
  spin ();
  match Engine.run e ~until_done:(fun () -> false) ~pending_desc:(fun () -> "x") with
  | _ -> Alcotest.fail "expected Deadlock from step limit"
  | exception Engine.Deadlock _ -> ()

let engine_no_past_scheduling () =
  let e = Engine.create () in
  Engine.schedule e ~delay:5 (fun () ->
      match Engine.at e ~time:2 ignore with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
  ignore (Engine.run_all e)

(* ----- Network ------------------------------------------------------------------- *)

let msg ?(payload = Msg.No_data) ~src ~dst () =
  Msg.make ~txn:1 ~kind:(Msg.Req Msg.ReqV) ~line:0 ~mask:(Mask.singleton 0)
    ~payload ~src ~dst ()

let network_delivery_latency () =
  let e = Engine.create () in
  let net = Network.create e (Network.flat_topology ~latency:7) in
  let arrival = ref (-1) in
  Network.register net ~id:1 (fun _ -> arrival := Engine.now e);
  Network.send net (msg ~src:0 ~dst:1 ());
  check_int "in flight" 1 (Network.in_flight net);
  ignore (Engine.run_all e);
  check_int "latency respected" 7 !arrival;
  check_int "drained" 0 (Network.in_flight net)

let network_ingress_serialization () =
  (* Two same-cycle arrivals at one endpoint drain one per cycle. *)
  let e = Engine.create () in
  let net = Network.create e (Network.flat_topology ~latency:3) in
  let arrivals = ref [] in
  Network.register net ~id:1 (fun _ -> arrivals := Engine.now e :: !arrivals);
  Network.send net (msg ~src:0 ~dst:1 ());
  Network.send net (msg ~src:2 ~dst:1 ());
  ignore (Engine.run_all e);
  Alcotest.(check (list int)) "serialized" [ 3; 4 ] (List.rev !arrivals)

let network_point_to_point_fifo () =
  let e = Engine.create () in
  let net = Network.create e (Network.flat_topology ~latency:4) in
  let order = ref [] in
  Network.register net ~id:1 (fun m -> order := m.Msg.txn :: !order);
  for i = 1 to 5 do
    Network.send net
      (Msg.make ~txn:i ~kind:(Msg.Req Msg.ReqV) ~line:0 ~mask:(Mask.singleton 0)
         ~src:0 ~dst:1 ())
  done;
  ignore (Engine.run_all e);
  Alcotest.(check (list int)) "fifo per pair" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let network_traffic_accounting () =
  let e = Engine.create () in
  let net = Network.create e (Network.flat_topology ~latency:1) in
  Network.register net ~id:1 ignore;
  Network.send net (msg ~src:0 ~dst:1 ());
  Network.send net (msg ~payload:(Msg.Data [| 5 |]) ~src:0 ~dst:1 ());
  ignore (Engine.run_all e);
  check_int "msgs" 2 (Network.messages_sent net);
  check_int "reqv flits: 1 control + (1 control + 1 data)" 3
    (Network.traffic_flits net Msg.Cat_ReqV);
  check_int "total" 3 (Network.total_flits net)

let network_grouped_topology () =
  let topo =
    Network.grouped_topology
      ~group_of:(fun id -> id / 10)
      ~local_latency:2 ~cross_latency:9
  in
  check_int "local" 2 (topo.Network.latency ~src:1 ~dst:2);
  check_int "cross" 9 (topo.Network.latency ~src:1 ~dst:12);
  check_int "local hops" 1 (topo.Network.hops ~src:1 ~dst:2);
  (* Hops derive from the latency structure: 9 cycles over 2-cycle links
     rounds to 5 link crossings, not a hardcoded 2. *)
  check_int "cross hops" 5 (topo.Network.hops ~src:1 ~dst:12);
  check_int "min latency" 2 topo.Network.min_latency

(* ----- Barrier --------------------------------------------------------------------- *)

let barrier_releases_all () =
  let e = Engine.create () in
  let b = Barrier.create e ~parties:3 in
  let released = ref 0 in
  Barrier.arrive b ~k:(fun () -> incr released);
  Barrier.arrive b ~k:(fun () -> incr released);
  ignore (Engine.run_all e);
  check_int "waits for all" 0 !released;
  check_int "waiting" 2 (Barrier.waiting b);
  Barrier.arrive b ~k:(fun () -> incr released);
  ignore (Engine.run_all e);
  check_int "all released" 3 !released;
  check_int "generation bumped" 1 (Barrier.generation b)

let barrier_cyclic_reuse () =
  let e = Engine.create () in
  let b = Barrier.create e ~parties:2 in
  let phase = ref 0 in
  let rec participant rounds =
    if rounds > 0 then
      Barrier.arrive b ~k:(fun () ->
          incr phase;
          participant (rounds - 1))
  in
  participant 3;
  participant 3;
  ignore (Engine.run_all e);
  check_int "three rounds of two" 6 !phase;
  check_int "three generations" 3 (Barrier.generation b)

(* ----- Core model ------------------------------------------------------------------- *)

(* A stub port that answers everything after a fixed delay and records the
   op sequence; lets us test warp interleaving in isolation. *)
let stub_port engine ~mem_delay log =
  let pending = ref 0 in
  {
    Spandex_device.Port.load =
      (fun a ~k ->
        incr pending;
        log := `Load a :: !log;
        Engine.schedule engine ~delay:mem_delay (fun () ->
            decr pending;
            k 0));
    store =
      (fun a ~value:_ ~k ->
        log := `Store a :: !log;
        Engine.schedule engine ~delay:1 k);
    rmw =
      (fun a _ ~k ->
        incr pending;
        log := `Rmw a :: !log;
        Engine.schedule engine ~delay:mem_delay (fun () ->
            decr pending;
            k 0));
    acquire = (fun ~k -> Engine.schedule engine ~delay:1 k);
    acquire_region = (fun ~region:_ ~k -> Engine.schedule engine ~delay:1 k);
    release = (fun ~k -> Engine.schedule engine ~delay:1 k);
    quiescent = (fun () -> !pending = 0);
    describe_pending = (fun () -> "stub");
  }

let core_warp_interleaving () =
  (* Two warps issuing long loads: the second warp's load issues while the
     first is outstanding — latency hiding. *)
  let e = Engine.create () in
  let log = ref [] in
  let port = stub_port e ~mem_delay:50 log in
  let check_log = Spandex_device.Check_log.create () in
  let addr i = Spandex_proto.Addr.make ~line:i ~word:0 in
  let prog i = [| Spandex_device.Ops.Load (addr i); Spandex_device.Ops.Load (addr (10 + i)) |] in
  let core =
    Spandex_device.Core.create e ~port ~barriers:[||] ~check_log ~core_id:0
      ~clock:1 ~programs:[| prog 0; prog 1 |]
  in
  Spandex_device.Core.start core;
  let finish =
    Engine.run e
      ~until_done:(fun () -> Spandex_device.Core.finished core)
      ~pending_desc:(fun () -> Spandex_device.Core.describe_pending core)
  in
  (* 4 loads of 50 cycles: serial execution would be ~200; interleaving two
     warps halves it. *)
  check_bool "latency hidden" true (finish < 150);
  check_int "all ops issued" 4 (List.length !log)

let core_single_context_blocks () =
  let e = Engine.create () in
  let log = ref [] in
  let port = stub_port e ~mem_delay:50 log in
  let check_log = Spandex_device.Check_log.create () in
  let addr i = Spandex_proto.Addr.make ~line:i ~word:0 in
  let core =
    Spandex_device.Core.create e ~port ~barriers:[||] ~check_log ~core_id:0
      ~clock:1
      ~programs:[| [| Spandex_device.Ops.Load (addr 0); Spandex_device.Ops.Load (addr 1) |] |]
  in
  Spandex_device.Core.start core;
  let finish =
    Engine.run e
      ~until_done:(fun () -> Spandex_device.Core.finished core)
      ~pending_desc:(fun () -> "core")
  in
  check_bool "blocking loads serialize" true (finish >= 100)

let core_gpu_clock_scaling () =
  let e = Engine.create () in
  let log = ref [] in
  let port = stub_port e ~mem_delay:1 log in
  let check_log = Spandex_device.Check_log.create () in
  let compute = Array.make 10 (Spandex_device.Ops.Compute 1) in
  let core =
    Spandex_device.Core.create e ~port ~barriers:[||] ~check_log ~core_id:0
      ~clock:3 ~programs:[| compute |]
  in
  Spandex_device.Core.start core;
  let finish =
    Engine.run e
      ~until_done:(fun () -> Spandex_device.Core.finished core)
      ~pending_desc:(fun () -> "core")
  in
  check_bool "slow clock scales issue" true (finish >= 30)

let tests =
  [
    test "engine_ordering" engine_ordering;
    test "engine_nested_scheduling" engine_nested_scheduling;
    test "engine_deadlock_detection" engine_deadlock_detection;
    test "engine_step_limit" engine_step_limit;
    test "engine_no_past_scheduling" engine_no_past_scheduling;
    test "network_delivery_latency" network_delivery_latency;
    test "network_ingress_serialization" network_ingress_serialization;
    test "network_point_to_point_fifo" network_point_to_point_fifo;
    test "network_traffic_accounting" network_traffic_accounting;
    test "network_grouped_topology" network_grouped_topology;
    test "barrier_releases_all" barrier_releases_all;
    test "barrier_cyclic_reuse" barrier_cyclic_reuse;
    test "core_warp_interleaving" core_warp_interleaving;
    test "core_single_context_blocks" core_single_context_blocks;
    test "core_gpu_clock_scaling" core_gpu_clock_scaling;
  ]
