(* Unit and property tests for the timing-wheel scheduler, mirroring the
   Pqueue suite: sort order, FIFO tie-break among equal cycles, the
   overflow-heap handoff for far-future times, clear/reuse, and engine-level
   equivalence between the wheel and heap backends on identical random
   schedules. *)

module Wheel = Spandex_util.Wheel
module Pqueue = Spandex_util.Pqueue
module Rng = Spandex_util.Rng
module Engine = Spandex_sim.Engine

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Tiny horizon so bounded random times routinely land in the overflow
   heap; correctness must not depend on which tier held an event. *)
let small_wheel () = Wheel.create ~horizon:16 ~dummy:(-1) ()

let wheel_ordering () =
  let q = Wheel.create ~dummy:"" () in
  Wheel.push q ~time:5 "c";
  Wheel.push q ~time:1 "a";
  Wheel.push q ~time:3 "b";
  Alcotest.(check (option int)) "peek" (Some 1) (Wheel.peek_time q);
  let pop () = Option.map snd (Wheel.pop q) in
  Alcotest.(check (option string)) "first" (Some "a") (pop ());
  Alcotest.(check (option string)) "second" (Some "b") (pop ());
  Alcotest.(check (option string)) "third" (Some "c") (pop ());
  Alcotest.(check (option string)) "empty" None (pop ())

let wheel_fifo_ties () =
  let q = Wheel.create ~dummy:0 () in
  List.iter (fun v -> Wheel.push q ~time:7 v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> snd (Option.get (Wheel.pop q))) in
  Alcotest.(check (list int)) "fifo among equal times" [ 1; 2; 3; 4 ] order

let wheel_empty_raises () =
  let q = Wheel.create ~dummy:0 () in
  Alcotest.check_raises "min_time empty"
    (Invalid_argument "Wheel.min_time: empty") (fun () ->
      ignore (Wheel.min_time q));
  Alcotest.check_raises "pop_min empty"
    (Invalid_argument "Wheel.pop_min: empty") (fun () ->
      ignore (Wheel.pop_min q))

let wheel_rejects_past () =
  let q = Wheel.create ~dummy:0 () in
  Wheel.push q ~time:10 1;
  ignore (Wheel.pop q);
  (* Cursor now sits at 10; scheduling into the past must be refused just
     like Engine.at refuses it. *)
  check_bool "past push raises" true
    (match Wheel.push q ~time:3 2 with
    | () -> false
    | exception Invalid_argument _ -> true)

let wheel_overflow_handoff () =
  (* Far-future events beyond the horizon go through the overflow heap and
     come back in order, interleaved with near events pushed later. *)
  let q = small_wheel () in
  Wheel.push q ~time:1000 1000;
  Wheel.push q ~time:40 40;
  check_int "both counted" 2 (Wheel.length q);
  check_int "overflow used" 2 (Wheel.overflow_pushes q);
  Wheel.push q ~time:3 3;
  let order =
    List.init 3 (fun _ ->
        let t = Wheel.min_time q in
        let v = Wheel.pop_min q in
        check_int "time matches value" t v;
        v)
  in
  Alcotest.(check (list int)) "sorted across tiers" [ 3; 40; 1000 ] order;
  check_bool "drained" true (Wheel.is_empty q)

let wheel_overflow_fifo_with_slots () =
  (* An overflow entry for cycle T always predates any direct slot push
     for T, so at T the overflow side must drain first. *)
  let q = small_wheel () in
  Wheel.push q ~time:100 1;  (* overflow: 100 >= 0 + 16 *)
  Wheel.push q ~time:90 0;   (* overflow *)
  ignore (Wheel.pop q);      (* pops 0 at 90; cursor at 90 *)
  Wheel.push q ~time:100 2;  (* slot: 100 - 90 < 16, pushed after 1 *)
  Alcotest.(check (list int))
    "overflow before slot at equal time" [ 1; 2 ]
    (List.init 2 (fun _ -> snd (Option.get (Wheel.pop q))))

let drain q =
  let rec go acc =
    if Wheel.is_empty q then List.rev acc
    else
      let t = Wheel.min_time q in
      let v = Wheel.pop_min q in
      go ((t, v) :: acc)
  in
  go []

let wheel_props =
  let open QCheck2 in
  [
    Test.make ~name:"wheel_sorts_with_overflow"
      Gen.(list_size (int_bound 300) (int_bound 1000))
      (fun times ->
        let q = small_wheel () in
        List.iter (fun t -> Wheel.push q ~time:t t) times;
        List.map fst (drain q) = List.sort compare times);
    Test.make ~name:"wheel_fifo_tie_break"
      (* Few distinct times -> many ties; drained order must be the stable
         sort of the submissions, i.e. FIFO among equal times. *)
      Gen.(list_size (int_bound 300) (int_bound 4))
      (fun times ->
        let q = Wheel.create ~dummy:(-1) () in
        List.iteri (fun i t -> Wheel.push q ~time:t i) times;
        let expected =
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.mapi (fun i t -> (t, i)) times)
        in
        drain q = expected);
    Test.make ~name:"wheel_matches_pqueue"
      (* The wheel and the reference heap must agree on every
         (time, value) sequence, whatever mix of tiers the times hit. *)
      Gen.(list_size (int_bound 300) (int_bound 2000))
      (fun times ->
        let q = small_wheel () in
        let h = Pqueue.create () in
        List.iteri
          (fun i t ->
            Wheel.push q ~time:t i;
            Pqueue.push h ~time:t i)
          times;
        let rec drain_h acc =
          match Pqueue.pop h with
          | None -> List.rev acc
          | Some tv -> drain_h (tv :: acc)
        in
        drain q = drain_h []);
    Test.make ~name:"wheel_clear_reuse"
      Gen.(
        pair
          (list_size (int_bound 200) (int_bound 1000))
          (list_size (int_bound 200) (int_bound 1000)))
      (fun (first, second) ->
        let q = small_wheel () in
        List.iter (fun t -> Wheel.push q ~time:t t) first;
        Wheel.clear q;
        Wheel.is_empty q
        &&
        (List.iter (fun t -> Wheel.push q ~time:t t) second;
         List.map fst (drain q) = List.sort compare second));
  ]

let wheel_interleaved () =
  (* Interleave pushes and pops; popped times must be non-decreasing given
     pushes never go into the past.  Push offsets straddle the horizon so
     both tiers stay busy. *)
  let rng = Rng.create ~seed:3 in
  let q = small_wheel () in
  let now = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool rng || Wheel.is_empty q then
      Wheel.push q ~time:(!now + Rng.int rng 50) 0
    else begin
      let t, _ = Option.get (Wheel.pop q) in
      check_bool "monotone" true (t >= !now);
      now := t
    end
  done;
  check_bool "overflow exercised" true (Wheel.overflow_pushes q > 0)

(* ----- engine backend equivalence ------------------------------------------ *)

(* Run the same self-expanding schedule on both engine backends and compare
   the full execution traces (cycle, label).  Each handler deterministically
   schedules follow-ups from its own seeded stream, including far-future
   delays that only the overflow heap can serve. *)
let engine_backends_agree () =
  let trace backend =
    let e = Engine.create ~backend () in
    let rng = Rng.create ~seed:42 in
    let log = ref [] in
    let rec work depth label () =
      log := (Engine.now e, label) :: !log;
      if depth < 4 then
        let fanout = Rng.int rng 3 in
        for i = 0 to fanout - 1 do
          let delay =
            match Rng.int rng 4 with
            | 0 -> 0
            | 1 -> Rng.int rng 8
            | 2 -> Rng.int rng 100
            | _ -> 400 + Rng.int rng 2000  (* beyond the wheel horizon *)
          in
          Engine.schedule e ~delay (work (depth + 1) ((label * 10) + i))
        done
    in
    for root = 0 to 19 do
      Engine.schedule e ~delay:(Rng.int rng 600) (work 0 root)
    done;
    ignore (Engine.run_all e : int);
    List.rev !log
  in
  let w = trace Engine.Wheel_backend in
  let h = trace Engine.Heap_backend in
  check_int "same event count" (List.length h) (List.length w);
  check_bool "identical traces" true (w = h)

let engine_overflow_order () =
  (* Far-future thunks (watchdog-beat distances) interleave correctly with
     a dense near-term stream. *)
  let e = Engine.create () in
  let log = ref [] in
  let mark label () = log := label :: !log in
  Engine.schedule e ~delay:100_000 (mark "far");
  Engine.schedule e ~delay:50_000 (mark "mid");
  for i = 0 to 9 do
    Engine.schedule e ~delay:i (mark (Printf.sprintf "near%d" i))
  done;
  ignore (Engine.run_all e : int);
  Alcotest.(check (list string))
    "overflow events last, in order"
    (List.init 10 (Printf.sprintf "near%d") @ [ "mid"; "far" ])
    (List.rev !log)

let tests =
  [
    test "wheel_ordering" wheel_ordering;
    test "wheel_fifo_ties" wheel_fifo_ties;
    test "wheel_empty_raises" wheel_empty_raises;
    test "wheel_rejects_past" wheel_rejects_past;
    test "wheel_overflow_handoff" wheel_overflow_handoff;
    test "wheel_overflow_fifo_with_slots" wheel_overflow_fifo_with_slots;
    test "wheel_interleaved" wheel_interleaved;
    test "engine_backends_agree" engine_backends_agree;
    test "engine_overflow_order" engine_overflow_order;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) wheel_props
