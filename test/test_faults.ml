(* Fault injection and recovery: the seeded fault plan, the end-to-end
   retry table, home-side reply caches, and the livelock watchdog.

   The end-to-end tests run real workloads over a network that drops,
   duplicates, delays and reorders messages, and require both that every
   Check op still sees the right value and that faults were actually
   injected (a plan that never fires proves nothing). *)

open Helpers
module Ops = Spandex_device.Ops
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Engine = Spandex_sim.Engine
module Fault = Spandex_net.Fault
module Retry = Spandex_util.Retry
module Stats = Spandex_util.Stats
module Registry = Spandex_workloads.Registry
module Report = Spandex_system.Report

(* [contains ~sub s]: naive substring test, enough for error messages. *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  at 0

let store i v = Ops.Store (w i, v)
let check i v = Ops.Check (w i, v)

(* Producer-consumer across the CPU/GPU boundary: stores to 64 distinct
   lines, a barrier, then checked loads, then the reverse direction —
   every message class (ReqO/ReqWT upstream, ReqV/ReqS downstream,
   write-backs, probes on the return leg) is exercised. *)
let producer_consumer () =
  let line i = i * Spandex_proto.Addr.words_per_line in
  let producer =
    Array.concat
      [
        Array.init 64 (fun i -> store (line i) (4000 + i));
        [| Ops.Barrier 0 |];
        [| Ops.Barrier 1 |];
        Array.init 64 (fun i -> check (line (100 + i)) (6000 + i));
      ]
  in
  let consumer =
    Array.concat
      [
        [| Ops.Barrier 0 |];
        Array.init 64 (fun i -> check (line i) (4000 + i));
        Array.init 64 (fun i -> store (line (100 + i)) (6000 + i));
        [| Ops.Barrier 1 |];
      ]
  in
  workload ~name:"producer_consumer" ~barriers:[| 2; 2 |] ~cpu:[| producer |]
    ~gpu:[| [| consumer |] |] ()

let graph () =
  let geom = Registry.geometry_of_params quick_params in
  (Registry.find "pr").Registry.build ~scale:0.25 geom

let faulty_params ?(watchdog = 200_000) spec =
  { quick_params with Params.fault = Some spec; watchdog_cycles = watchdog }

(* ----- fault plan unit tests ------------------------------------------------ *)

let msg ?(kind = Msg.Req Msg.ReqV) ?(fwd = false) () =
  Msg.make ~txn:1 ~kind ~line:0 ~mask:Addr.full_mask ~src:0 ~dst:9 ~fwd ()

let faultable_classification () =
  let ok k = Alcotest.(check bool) "faultable" true (Fault.faultable k)
  and no k = Alcotest.(check bool) "lossless" false (Fault.faultable k) in
  ok (msg ());
  ok (msg ~kind:(Msg.Req Msg.ReqOdata) ());
  ok (msg ~kind:(Msg.Rsp Msg.RspV) ());
  ok (msg ~kind:(Msg.Rsp Msg.RspWB) ());
  ok (msg ~kind:(Msg.Rsp Msg.Nack) ());
  (* Forwarded requests, probes, acks, data-carrying responses, and RspO
     ownership grants ride the lossless channel: no end-to-end timer can
     recover their loss (re-soliciting an RspO would mean re-sending the
     forwarded revocation, which can race into a later registration
     epoch at the old owner). *)
  no (msg ~kind:(Msg.Rsp Msg.RspO) ());
  no (msg ~fwd:true ());
  no (msg ~kind:(Msg.Req Msg.ReqS) ~fwd:true ());
  no (msg ~kind:(Msg.Probe Msg.Inv) ());
  no (msg ~kind:(Msg.Probe Msg.RvkO) ());
  no (msg ~kind:(Msg.Rsp Msg.Ack) ());
  no (msg ~kind:(Msg.Rsp Msg.RspRvkO) ());
  no (msg ~kind:(Msg.Rsp Msg.RspS) ());
  no (msg ~kind:(Msg.Rsp Msg.RspOdata) ());
  no (msg ~kind:(Msg.Rsp Msg.RspWTdata) ())

let verdicts spec n =
  let f = Fault.create spec ~stats:(Stats.create ()) in
  List.init n (fun i -> Fault.route f ~now:(i * 10) ~latency:8 (msg ()))

let plan_deterministic () =
  let spec = Fault.uniform ~drop:0.3 ~dup:0.3 ~delay:0.3 ~reorder:0.3 ~seed:42 () in
  Alcotest.(check bool)
    "same seed, same verdicts" true
    (verdicts spec 200 = verdicts spec 200);
  Alcotest.(check bool)
    "different seed differs" true
    (verdicts spec 200 <> verdicts { spec with Fault.seed = 43 } 200)

let lossless_never_dropped () =
  let spec = Fault.uniform ~drop:1.0 ~seed:5 () in
  let stats = Stats.create () in
  let f = Fault.create spec ~stats in
  for i = 0 to 49 do
    match
      Fault.route f ~now:(i * 10) ~latency:8 (msg ~kind:(Msg.Probe Msg.Inv) ())
    with
    | Fault.Drop -> Alcotest.fail "dropped a probe"
    | Fault.Deliver _ -> ()
  done;
  Alcotest.(check bool) "exemptions recorded" true
    (Stats.get stats "fault.exempt" = 50);
  (match Fault.route f ~now:600 ~latency:8 (msg ()) with
  | Fault.Drop -> ()
  | Fault.Deliver _ -> Alcotest.fail "did not drop an eligible request")

let fifo_clamp_monotone () =
  let spec =
    Fault.uniform ~delay:0.7 ~reorder:0.7 ~delay_min:5 ~delay_max:400
      ~reorder_window:300 ~seed:11 ()
  in
  let f = Fault.create spec ~stats:(Stats.create ()) in
  let last = ref 0 in
  for i = 0 to 199 do
    let now = i * 3 in
    match Fault.route f ~now ~latency:8 (msg ()) with
    | Fault.Drop -> Alcotest.fail "no drops in this plan"
    | Fault.Deliver delays ->
      List.iter
        (fun d ->
          let arrival = now + d in
          if arrival < !last then
            Alcotest.failf "per-pair FIFO violated: %d after %d" arrival !last;
          last := max !last arrival)
        delays
  done

(* ----- retry table unit tests ----------------------------------------------- *)

let retry_cfg =
  {
    Retry.base_timeout = 100;
    backoff_factor = 2;
    max_timeout = 400;
    jitter = 0;
    max_attempts = 4;
  }

let make_retry engine ?(cfg = retry_cfg) stats =
  Retry.create cfg ~seed:7
    ~schedule:(fun ~delay k -> Engine.schedule engine ~delay k)
    ~stats

let retry_backoff_schedule () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let r = make_retry engine stats in
  let fired = ref [] in
  Retry.arm r ~txn:1 ~describe:"probe txn"
    ~resend:(fun () -> fired := Engine.now engine :: !fired);
  (* Let it exhaust: 4 resends at exponentially-backed-off times, then
     [Exhausted] on the fifth firing. *)
  let exhausted = ref false in
  (try ignore (Engine.run_all engine)
   with Retry.Exhausted m ->
     exhausted := true;
     Alcotest.(check bool) "message names txn" true
       (contains ~sub:"txn 1" m && contains ~sub:"probe txn" m));
  Alcotest.(check bool) "exhausted raised" true !exhausted;
  Alcotest.(check (list int))
    "resends at base * factor^n, capped" [ 100; 300; 700; 1100 ]
    (List.rev !fired);
  Alcotest.(check int) "resend counter" 4 (Stats.get stats "retry.resend")

let retry_complete_cancels () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let r = make_retry engine stats in
  let fired = ref 0 in
  Retry.arm r ~txn:3 ~describe:"fast txn" ~resend:(fun () -> incr fired);
  Engine.schedule engine ~delay:50 (fun () -> Retry.complete r ~txn:3);
  ignore (Engine.run_all engine);
  Alcotest.(check int) "no resends after completion" 0 !fired;
  Alcotest.(check int) "pending drained" 0 (Retry.pending r);
  Alcotest.(check int) "not counted recovered" 0
    (Stats.get stats "retry.recovered")

let retry_recovered_counted () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let r = make_retry engine stats in
  Retry.arm r ~txn:9 ~describe:"slow txn" ~resend:(fun () -> ());
  (* Complete after the first resend: one recovery. *)
  Engine.schedule engine ~delay:150 (fun () -> Retry.complete r ~txn:9);
  ignore (Engine.run_all engine);
  Alcotest.(check int) "one resend" 1 (Stats.get stats "retry.resend");
  Alcotest.(check int) "recovered" 1 (Stats.get stats "retry.recovered")

let retry_multi_arm_appends () =
  let engine = Engine.create () in
  let r = make_retry engine (Stats.create ()) in
  let order = ref [] in
  Retry.arm r ~txn:4 ~describe:"two msgs"
    ~resend:(fun () -> order := "first" :: !order);
  Retry.arm r ~txn:4 ~describe:"two msgs"
    ~resend:(fun () -> order := "second" :: !order);
  Engine.schedule engine ~delay:120 (fun () -> Retry.complete r ~txn:4);
  ignore (Engine.run_all engine);
  Alcotest.(check (list string))
    "both resends run in issue order" [ "first"; "second" ] (List.rev !order)

(* ----- engine unit tests ----------------------------------------------------- *)

let run_all_honors_step_limit () =
  let engine = Engine.create () in
  Engine.set_step_limit engine 100;
  let rec churn () = Engine.schedule engine ~delay:1 churn in
  churn ();
  match Engine.run_all engine with
  | _ -> Alcotest.fail "expected Deadlock from the step limit"
  | exception Engine.Deadlock m ->
    Alcotest.(check bool) "names the limit" true
      (contains ~sub:"step limit" m)

let watchdog_raises_livelock () =
  let engine = Engine.create () in
  let rec churn () = Engine.schedule engine ~delay:10 churn in
  churn ();
  Engine.set_watchdog engine ~interval:1_000
    ~progress:(fun () -> 0)
    ~describe:(fun () -> "stuck component txn 42");
  match Engine.run engine ~until_done:(fun () -> false) ~pending_desc:(fun () -> "") with
  | _ -> Alcotest.fail "expected Livelock"
  | exception Engine.Livelock l ->
    Alcotest.(check bool) "stall measured" true (l.Engine.stalled_for >= 1_000);
    Alcotest.(check bool) "detail names the component" true
      (contains ~sub:"stuck component txn 42" l.Engine.detail)

let watchdog_quiet_when_progressing () =
  let engine = Engine.create () in
  let ops = ref 0 in
  let rec work n = if n > 0 then Engine.schedule engine ~delay:100 (fun () -> incr ops; work (n - 1)) in
  work 200;
  Engine.set_watchdog engine ~interval:1_000
    ~progress:(fun () -> !ops)
    ~describe:(fun () -> "unused");
  let cycles = Engine.run engine ~until_done:(fun () -> !ops = 200) ~pending_desc:(fun () -> "") in
  Alcotest.(check int) "ran to completion" 20_000 cycles

(* ----- end-to-end recovery -------------------------------------------------- *)

(* Every config must survive cleanly ([simulate] asserts the checks); the
   fault and retry counters are summed across configs before requiring
   them non-zero — at low probabilities a single small run can
   legitimately draw zero faults. *)
let assert_recovers ~spec ~configs wl =
  let injected = ref 0 and resends = ref 0 in
  List.iter
    (fun config ->
      let r = simulate ~params:(faulty_params spec) config wl in
      let s = Report.fault_summary r in
      injected := !injected + s.Report.injected;
      resends := !resends + s.Report.resends)
    configs;
  if !injected = 0 then Alcotest.fail "plan injected no faults";
  if !resends = 0 then Alcotest.fail "no retries exercised"

let recovers_drop_dup () =
  List.iter
    (fun seed ->
      let spec = Fault.uniform ~drop:0.02 ~dup:0.02 ~seed () in
      assert_recovers ~spec ~configs:Config.all (producer_consumer ());
      assert_recovers ~spec
        ~configs:[ Config.by_name "SDD"; Config.by_name "HMG" ]
        (graph ()))
    [ 1; 2; 3 ]

let recovers_all_fault_types () =
  List.iter
    (fun seed ->
      let spec =
        Fault.uniform ~drop:0.03 ~dup:0.03 ~delay:0.05 ~reorder:0.05 ~seed ()
      in
      assert_recovers ~spec ~configs:Config.all (producer_consumer ()))
    [ 1; 2; 3 ]

let recovers_heavy_loss () =
  (* 10% loss: most transactions need at least one resend; several need the
     home reply cache (duplicate arrivals of non-idempotent requests). *)
  let spec = Fault.uniform ~drop:0.1 ~dup:0.1 ~seed:99 () in
  assert_recovers ~spec ~configs:Config.all (producer_consumer ())

let zero_prob_plan_is_identity () =
  (* An armed plan whose probabilities are all zero must not perturb timing:
     proves the hooks themselves are behavior-neutral. *)
  let wl = producer_consumer () in
  let base = simulate ~params:quick_params Config.smd wl in
  let spec = Fault.uniform ~seed:1 () in
  let armed = simulate ~params:(faulty_params spec) Config.smd wl in
  Alcotest.(check int) "cycles identical" base.Run.cycles armed.Run.cycles;
  Alcotest.(check int) "flits identical" base.Run.total_flits
    armed.Run.total_flits;
  Alcotest.(check int) "messages identical" base.Run.messages armed.Run.messages

let total_loss_trips_watchdog () =
  (* Drop everything eligible: requests re-send forever, nothing completes.
     The watchdog must convert the spin into a structured Livelock naming
     the stuck component and its pending transaction. *)
  let spec =
    Fault.uniform ~drop:1.0
      ~retry:{ Retry.default with Retry.max_attempts = max_int - 1 }
      ~seed:1 ()
  in
  let params = { (faulty_params ~watchdog:20_000 spec) with Params.cpu_cores = 1; gpu_cus = 1 } in
  match Run.simulate ~params ~config:Config.smd (producer_consumer ()) with
  | _ -> Alcotest.fail "expected Livelock under total message loss"
  | exception Engine.Livelock l ->
    Alcotest.(check bool) "stalled at least the interval" true
      (l.Engine.stalled_for >= 20_000);
    Alcotest.(check bool) "names a component" true
      (contains ~sub:"l1" l.Engine.detail
      || contains ~sub:"core" l.Engine.detail);
    Alcotest.(check bool) "names a pending txn" true
      (contains ~sub:"txn" l.Engine.detail)

let total_loss_exhausts_retries () =
  (* With the watchdog off and a small attempt cap, the retry table itself
     reports the dead transaction. *)
  let spec =
    Fault.uniform ~drop:1.0
      ~retry:{ Retry.default with Retry.max_attempts = 3 }
      ~seed:1 ()
  in
  let params = faulty_params ~watchdog:0 spec in
  match Run.simulate ~params ~config:Config.smd (producer_consumer ()) with
  | _ -> Alcotest.fail "expected Exhausted under total message loss"
  | exception Retry.Exhausted m ->
    Alcotest.(check bool) "names the txn" true
      (contains ~sub:"txn" m)

let fault_report_totals () =
  let spec = Fault.uniform ~drop:0.05 ~dup:0.05 ~seed:2 () in
  let r = simulate ~params:(faulty_params spec) Config.sdd (producer_consumer ()) in
  let s = Report.fault_summary r in
  Alcotest.(check int) "injected = drop + dup + delay + reorder"
    s.Report.injected
    (s.Report.dropped + s.Report.duplicated + s.Report.delayed
   + s.Report.reordered);
  Alcotest.(check bool) "recovered <= resends" true
    (s.Report.recovered <= s.Report.resends)

let tests =
  [
    test "faultable_classification" faultable_classification;
    test "plan_deterministic" plan_deterministic;
    test "lossless_never_dropped" lossless_never_dropped;
    test "fifo_clamp_monotone" fifo_clamp_monotone;
    test "retry_backoff_schedule" retry_backoff_schedule;
    test "retry_complete_cancels" retry_complete_cancels;
    test "retry_recovered_counted" retry_recovered_counted;
    test "retry_multi_arm_appends" retry_multi_arm_appends;
    test "run_all_honors_step_limit" run_all_honors_step_limit;
    test "watchdog_raises_livelock" watchdog_raises_livelock;
    test "watchdog_quiet_when_progressing" watchdog_quiet_when_progressing;
    test "recovers_drop_dup" recovers_drop_dup;
    test "recovers_all_fault_types" recovers_all_fault_types;
    test "recovers_heavy_loss" recovers_heavy_loss;
    test "zero_prob_plan_is_identity" zero_prob_plan_is_identity;
    test "total_loss_trips_watchdog" total_loss_trips_watchdog;
    test "total_loss_exhausts_retries" total_loss_exhausts_retries;
    test "fault_report_totals" fault_report_totals;
  ]
