(* Unit tests for spandex_mem: cache frames, MSHRs, store buffer, DRAM. *)

module Cache_frame = Spandex_mem.Cache_frame
module Mshr = Spandex_mem.Mshr
module Store_buffer = Spandex_mem.Store_buffer
module Dram = Spandex_mem.Dram
module Addr = Spandex_proto.Addr
module Mask = Spandex_util.Mask
module Engine = Spandex_sim.Engine

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ----- Cache_frame ------------------------------------------------------------ *)

let frame_insert_find () =
  let f = Cache_frame.create ~sets:4 ~ways:2 in
  check_int "capacity" 8 (Cache_frame.capacity f);
  (match Cache_frame.insert f ~line:0 "a" ~can_evict:(fun ~line:_ _ -> true) with
  | Cache_frame.Inserted -> ()
  | _ -> Alcotest.fail "expected Inserted");
  Alcotest.(check (option string)) "find" (Some "a") (Cache_frame.find f ~line:0);
  Alcotest.(check (option string)) "miss" None (Cache_frame.find f ~line:4);
  check_int "count" 1 (Cache_frame.count f)

let frame_lru_eviction () =
  let f = Cache_frame.create ~sets:1 ~ways:2 in
  let ins line v = ignore (Cache_frame.insert f ~line v ~can_evict:(fun ~line:_ _ -> true)) in
  ins 0 "a";
  ins 1 "b";
  Cache_frame.touch f ~line:0;
  (* line 1 is now LRU. *)
  (match Cache_frame.insert f ~line:2 "c" ~can_evict:(fun ~line:_ _ -> true) with
  | Cache_frame.Evicted (1, "b") -> ()
  | Cache_frame.Evicted (l, _) -> Alcotest.failf "evicted line %d, expected 1" l
  | _ -> Alcotest.fail "expected eviction");
  check_bool "victim gone" true (Cache_frame.find f ~line:1 = None);
  check_bool "touched survives" true (Cache_frame.find f ~line:0 <> None)

let frame_pinning () =
  let f = Cache_frame.create ~sets:1 ~ways:2 in
  let ins line v p =
    Cache_frame.insert f ~line v ~can_evict:(fun ~line:l _ -> not (List.mem l p))
  in
  ignore (ins 0 "a" []);
  ignore (ins 1 "b" []);
  (* Both pinned: no room. *)
  (match ins 2 "c" [ 0; 1 ] with
  | Cache_frame.No_room -> ()
  | _ -> Alcotest.fail "expected No_room");
  (* Only line 0 evictable. *)
  (match ins 2 "c" [ 1 ] with
  | Cache_frame.Evicted (0, "a") -> ()
  | _ -> Alcotest.fail "expected eviction of line 0")

let frame_sets_disjoint () =
  (* Lines mapping to different sets never evict each other. *)
  let f = Cache_frame.create ~sets:4 ~ways:1 in
  let ins line = ignore (Cache_frame.insert f ~line line ~can_evict:(fun ~line:_ _ -> true)) in
  ins 0;
  ins 1;
  ins 2;
  ins 3;
  check_int "all resident" 4 (Cache_frame.count f);
  (match Cache_frame.insert f ~line:4 4 ~can_evict:(fun ~line:_ _ -> true) with
  | Cache_frame.Evicted (0, _) -> () (* 4 mod 4 = set 0 *)
  | _ -> Alcotest.fail "expected conflict eviction of line 0");
  check_bool "other sets untouched" true
    (Cache_frame.find f ~line:1 <> None
    && Cache_frame.find f ~line:2 <> None
    && Cache_frame.find f ~line:3 <> None)

let frame_remove_iter () =
  let f = Cache_frame.create ~sets:2 ~ways:2 in
  let ins line = ignore (Cache_frame.insert f ~line line ~can_evict:(fun ~line:_ _ -> true)) in
  ins 0;
  ins 1;
  ins 2;
  Cache_frame.remove f ~line:1;
  check_int "count after remove" 2 (Cache_frame.count f);
  let sum = Cache_frame.fold f ~init:0 ~f:(fun acc ~line:_ v -> acc + v) in
  check_int "fold" 2 sum;
  Cache_frame.remove f ~line:1 (* idempotent *);
  check_int "still 2" 2 (Cache_frame.count f)

let frame_size_lines () =
  let sets, ways = Cache_frame.size_lines ~bytes:(32 * 1024) ~ways:8 in
  check_int "sets" 64 sets;
  check_int "ways" 8 ways

(* ----- Mshr --------------------------------------------------------------------- *)

let mshr_alloc_free () =
  let m = Mshr.create ~capacity:2 () in
  let t1 = Option.get (Mshr.alloc m "a") in
  let t2 = Option.get (Mshr.alloc m "b") in
  check_bool "full" true (Mshr.is_full m);
  check_bool "alloc fails when full" true (Mshr.alloc m "c" = None);
  Alcotest.(check (option string)) "find" (Some "a") (Mshr.find m ~txn:t1);
  Mshr.free m ~txn:t1;
  check_bool "not full" false (Mshr.is_full m);
  Alcotest.(check (option string)) "freed" None (Mshr.find m ~txn:t1);
  Mshr.free m ~txn:t2;
  check_int "empty" 0 (Mshr.count m)

let mshr_find_first_oldest () =
  let m = Mshr.create ~capacity:8 () in
  let _t1 = Option.get (Mshr.alloc m 10) in
  let t2 = Option.get (Mshr.alloc m 20) in
  let _t3 = Option.get (Mshr.alloc m 21) in
  (match Mshr.find_first m ~f:(fun v -> v >= 20) with
  | Some (txn, 20) -> check_int "oldest matching" t2 txn
  | _ -> Alcotest.fail "expected to find 20")

(* ----- Store_buffer --------------------------------------------------------------- *)

let sb_coalesce () =
  let sb = Store_buffer.create ~capacity:4 in
  let a w = Addr.make ~line:3 ~word:w in
  check_bool "new" true (Store_buffer.push sb ~addr:(a 0) ~value:1 ~now:0 = `New);
  check_bool "coalesced" true (Store_buffer.push sb ~addr:(a 5) ~value:2 ~now:0 = `Coalesced);
  check_bool "overwrite coalesces" true (Store_buffer.push sb ~addr:(a 0) ~value:9 ~now:0 = `Coalesced);
  check_int "one entry" 1 (Store_buffer.count sb);
  Alcotest.(check (option int)) "forward latest" (Some 9)
    (Store_buffer.forward sb ~addr:(a 0));
  Alcotest.(check (option int)) "no forward for unwritten" None
    (Store_buffer.forward sb ~addr:(a 1))

let sb_capacity_and_fifo () =
  let sb = Store_buffer.create ~capacity:2 in
  let a line = Addr.make ~line ~word:0 in
  ignore (Store_buffer.push sb ~addr:(a 0) ~value:1 ~now:0);
  ignore (Store_buffer.push sb ~addr:(a 1) ~value:2 ~now:0);
  check_bool "full" true (Store_buffer.push sb ~addr:(a 2) ~value:3 ~now:0 = `Full);
  check_bool "coalescing still allowed when full" true
    (Store_buffer.push sb ~addr:(Addr.make ~line:0 ~word:3) ~value:4 ~now:0 = `Coalesced);
  let e = Option.get (Store_buffer.take_oldest sb) in
  check_int "fifo order" 0 e.Store_buffer.line;
  check_int "coalesced mask" 2 (Mask.count e.Store_buffer.mask);
  let e2 = Option.get (Store_buffer.take_oldest sb) in
  check_int "second" 1 e2.Store_buffer.line;
  check_bool "drained" true (Store_buffer.is_empty sb)

let sb_peek_and_remove () =
  let sb = Store_buffer.create ~capacity:4 in
  ignore (Store_buffer.push sb ~addr:(Addr.make ~line:7 ~word:1) ~value:5 ~now:0);
  (match Store_buffer.peek_oldest sb with
  | Some e -> check_int "peek line" 7 e.Store_buffer.line
  | None -> Alcotest.fail "expected entry");
  check_int "peek does not remove" 1 (Store_buffer.count sb);
  Store_buffer.remove sb ~line:7;
  check_bool "removed" true (Store_buffer.is_empty sb)

(* ----- Dram ------------------------------------------------------------------------- *)

let dram_read_write () =
  let engine = Engine.create () in
  let dram = Dram.create engine ~latency:10 ~service_interval:0 in
  let got = ref None in
  Dram.read_line dram ~line:5 ~k:(fun values -> got := Some values.(3));
  ignore (Engine.run_all engine);
  check_int "initial contents" (Spandex_proto.Linedata.init_word ~line:5 ~word:3)
    (Option.get !got);
  Dram.write_words dram ~line:5 ~mask:(Mask.singleton 3) ~values:[| 42 |];
  check_int "peek after write" 42 (Dram.peek_word dram (Addr.make ~line:5 ~word:3));
  check_int "reads counted" 1 (Dram.reads dram);
  check_int "writes counted" 1 (Dram.writes dram)

let dram_latency_and_bandwidth () =
  let engine = Engine.create () in
  let dram = Dram.create engine ~latency:10 ~service_interval:4 in
  let t1 = ref 0 and t2 = ref 0 in
  Dram.read_line dram ~line:0 ~k:(fun _ -> t1 := Engine.now engine);
  Dram.read_line dram ~line:1 ~k:(fun _ -> t2 := Engine.now engine);
  ignore (Engine.run_all engine);
  check_int "first after latency" 10 !t1;
  check_int "second queued behind service interval" 14 !t2

let dram_copy_isolated () =
  (* The callback receives a copy; mutating it must not corrupt memory. *)
  let engine = Engine.create () in
  let dram = Dram.create engine ~latency:1 ~service_interval:0 in
  Dram.read_line dram ~line:2 ~k:(fun values -> values.(0) <- 12345);
  ignore (Engine.run_all engine);
  check_bool "backing unchanged" true
    (Dram.peek_word dram (Addr.make ~line:2 ~word:0) <> 12345)

let tests =
  [
    test "frame_insert_find" frame_insert_find;
    test "frame_lru_eviction" frame_lru_eviction;
    test "frame_pinning" frame_pinning;
    test "frame_sets_disjoint" frame_sets_disjoint;
    test "frame_remove_iter" frame_remove_iter;
    test "frame_size_lines" frame_size_lines;
    test "mshr_alloc_free" mshr_alloc_free;
    test "mshr_find_first_oldest" mshr_find_first_oldest;
    test "sb_coalesce" sb_coalesce;
    test "sb_capacity_and_fifo" sb_capacity_and_fifo;
    test "sb_peek_and_remove" sb_peek_and_remove;
    test "dram_read_write" dram_read_write;
    test "dram_latency_and_bandwidth" dram_latency_and_bandwidth;
    test "dram_copy_isolated" dram_copy_isolated;
  ]
