(* Determinism of the parallel sweep runner (Sweep.map / simulate_all):
   a --jobs 4 sweep must be bit-identical to --jobs 1 in everything a run
   reports — cycles, flits, traffic breakdown, messages, events, checks and
   the full merged stats — including under an armed fault-injection plan
   with a fixed seed.  This is the guarantee the bench harness and CI
   enforce end-to-end. *)

module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Sweep = Spandex_system.Sweep
module Report = Spandex_system.Report
module Registry = Spandex_workloads.Registry

let test = Helpers.test

let matrix ~params names =
  let geom = Registry.geometry_of_params params in
  List.concat_map
    (fun n ->
      let wl = (Registry.find n).Registry.build ~scale:0.25 geom in
      List.map
        (fun config -> { Sweep.label = n; params; config; workload = wl })
        Config.all)
    names

let check_identical cells seq par =
  List.iteri
    (fun i ((j : Sweep.job), (s, p)) ->
      match Report.diff_result s p with
      | None -> ()
      | Some d ->
        Alcotest.failf "job %d (%s %s) diverged: %s" i j.Sweep.label
          j.Sweep.config.Config.name d)
    (List.combine cells (List.combine seq par))

let sweep_matches_sequential () =
  let params = Params.bench in
  let cells = matrix ~params [ "rsct"; "tqh" ] in
  let seq = Sweep.simulate_all ~jobs:1 cells in
  let par = Sweep.simulate_all ~jobs:4 cells in
  List.iter Run.assert_clean par;
  check_identical cells seq par

let sweep_matches_sequential_under_faults () =
  let fault =
    Spandex_net.Fault.uniform ~drop:0.02 ~dup:0.01 ~delay:0.03 ~reorder:0.03
      ~seed:7 ()
  in
  let params = { Params.bench with Params.fault = Some fault } in
  let cells = matrix ~params [ "tqh" ] in
  let seq = Sweep.simulate_all ~jobs:1 cells in
  let par = Sweep.simulate_all ~jobs:4 cells in
  check_identical cells seq par

(* ----- wheel vs heap scheduler ---------------------------------------------- *)

(* The timing-wheel engine must reproduce the pre-wheel binary-heap engine
   bit-for-bit: same cycles, flits, traffic breakdown, messages, events,
   checks and merged stats on every cell of the bench matrix.  This is the
   end-to-end determinism guarantee behind making the wheel the default
   backend. *)

let heap_params (p : Params.t) =
  { p with Params.engine_backend = Spandex_sim.Engine.Heap_backend }

let non_stress_names =
  List.filter_map
    (fun e ->
      if e.Registry.kind = `Stress then None else Some e.Registry.name)
    Registry.entries

let wheel_matches_heap_engine () =
  let cells = matrix ~params:Params.bench non_stress_names in
  let wheel = Sweep.simulate_all ~jobs:1 cells in
  let heap =
    Sweep.simulate_all ~jobs:1
      (List.map
         (fun j -> { j with Sweep.params = heap_params j.Sweep.params })
         cells)
  in
  List.iter Run.assert_clean wheel;
  check_identical cells wheel heap

let wheel_matches_heap_under_faults () =
  (* Delay/reorder-only plan whose delays reach far beyond the wheel's
     512-cycle horizon, so faulted deliveries ride the overflow heap and
     must still interleave exactly as the reference heap orders them. *)
  let fault =
    Spandex_net.Fault.uniform ~delay:0.2 ~reorder:0.1 ~delay_min:600
      ~delay_max:4096 ~seed:11 ()
  in
  let params = { Params.bench with Params.fault = Some fault } in
  let cells = matrix ~params [ "rsct"; "tqh" ] in
  let wheel = Sweep.simulate_all ~jobs:1 cells in
  let heap =
    Sweep.simulate_all ~jobs:1
      (List.map
         (fun j -> { j with Sweep.params = heap_params j.Sweep.params })
         cells)
  in
  check_identical cells wheel heap

let sweep_matches_sequential_all_cells () =
  (* The full 60-cell bench matrix (every non-stress workload x every
     baseline config) with message/event pooling active inside each
     [Run.simulate]: per-domain pools must not let one cell's recycled
     records bleed into another's results. *)
  let cells = matrix ~params:Params.bench non_stress_names in
  Alcotest.(check int) "matrix size" 60 (List.length cells);
  let seq = Sweep.simulate_all ~jobs:1 cells in
  let par = Sweep.simulate_all ~jobs:4 cells in
  List.iter Run.assert_clean par;
  check_identical cells seq par

let sweep_repeated_run_is_stable () =
  (* Two parallel runs of the same jobs agree with each other, not just
     with the sequential reference: no hidden cross-run state survives. *)
  let params = Params.bench in
  let cells = matrix ~params [ "rsct" ] in
  let a = Sweep.simulate_all ~jobs:3 cells in
  let b = Sweep.simulate_all ~jobs:3 cells in
  check_identical cells a b

let map_preserves_order () =
  let xs = List.init 200 Fun.id in
  Alcotest.(check (list int))
    "submission order" (List.map (fun x -> x * 7) xs)
    (Sweep.map ~jobs:4 (fun x -> x * 7) xs)

let map_jobs_one_is_sequential () =
  let xs = [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int))
    "jobs=1" (List.map succ xs)
    (Sweep.map ~jobs:1 succ xs)

exception Boom of int

let map_reraises_first_failure () =
  match
    Sweep.map ~jobs:4
      (fun x -> if x mod 3 = 0 then raise (Boom x) else x)
      (List.init 20 (fun i -> i + 1))
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x ->
    Alcotest.(check int) "first failure in submission order" 3 x

let tests =
  [
    test "map_preserves_order" map_preserves_order;
    test "map_jobs_one_is_sequential" map_jobs_one_is_sequential;
    test "map_reraises_first_failure" map_reraises_first_failure;
    test "sweep_matches_sequential" sweep_matches_sequential;
    test "sweep_matches_sequential_under_faults"
      sweep_matches_sequential_under_faults;
    test "sweep_repeated_run_is_stable" sweep_repeated_run_is_stable;
    test "sweep_matches_sequential_all_cells" sweep_matches_sequential_all_cells;
    test "wheel_matches_heap_engine" wheel_matches_heap_engine;
    test "wheel_matches_heap_under_faults" wheel_matches_heap_under_faults;
  ]
