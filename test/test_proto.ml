(* Unit and property tests for spandex_proto. *)

module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo
module Msg = Spandex_proto.Msg
module Linedata = Spandex_proto.Linedata
module Txn = Spandex_proto.Txn
module State = Spandex_proto.State
module Mask = Spandex_util.Mask

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ----- Addr ----------------------------------------------------------------- *)

let addr_geometry () =
  check_int "line bytes" 64 Addr.line_bytes;
  check_int "words per line" 16 Addr.words_per_line;
  let a = Addr.of_byte 132 in
  check_int "line" 2 a.Addr.line;
  check_int "word" 1 a.Addr.word;
  check_int "roundtrip" 132 (Addr.to_byte (Addr.of_byte 132));
  let b = Addr.line_of_word_index 35 in
  check_int "flat line" 2 b.Addr.line;
  check_int "flat word" 3 b.Addr.word

let addr_compare () =
  let a = Addr.make ~line:1 ~word:5 and b = Addr.make ~line:1 ~word:6 in
  check_bool "lt" true (Addr.compare a b < 0);
  check_bool "eq" true (Addr.equal a a);
  check_bool "line dominates" true
    (Addr.compare (Addr.make ~line:0 ~word:15) (Addr.make ~line:1 ~word:0) < 0)

let addr_invalid () =
  Alcotest.check_raises "word out of range" (Assert_failure ("lib/proto/addr.ml", 10, 2))
    (fun () -> ignore (Addr.make ~line:0 ~word:16))

(* ----- Amo ------------------------------------------------------------------ *)

let amo_semantics () =
  check_int "add new" 7 (fst (Amo.apply (Amo.Add 3) 4));
  check_int "add returns old" 4 (snd (Amo.apply (Amo.Add 3) 4));
  check_int "exch new" 9 (fst (Amo.apply (Amo.Exch 9) 4));
  check_int "exch old" 4 (snd (Amo.apply (Amo.Exch 9) 4));
  check_int "max up" 8 (fst (Amo.apply (Amo.Max 8) 4));
  check_int "max keeps" 9 (fst (Amo.apply (Amo.Max 4) 9));
  check_int "read keeps" 4 (fst (Amo.apply Amo.Read 4));
  check_int "cas hit" 5 (fst (Amo.apply (Amo.Cas { expected = 4; desired = 5 }) 4));
  check_int "cas miss" 4 (fst (Amo.apply (Amo.Cas { expected = 3; desired = 5 }) 4));
  check_int "cas returns old" 4 (snd (Amo.apply (Amo.Cas { expected = 4; desired = 5 }) 4))

(* ----- Msg ------------------------------------------------------------------ *)

let msg_flits () =
  let mk ?payload mask =
    Msg.make ~txn:1 ~kind:(Msg.Req Msg.ReqV) ~line:0 ~mask ?payload ~src:0
      ~dst:1 ()
  in
  check_int "control is 1 flit" 1 (Msg.flits (mk (Mask.singleton 0)));
  let data n = Msg.Data (Array.make n 0) in
  check_int "1 word data" 2 (Msg.flits (mk ~payload:(data 1) (Mask.singleton 0)));
  check_int "4 words = 16B = 1 data flit" 2
    (Msg.flits (mk ~payload:(data 4) (Mask.of_list [ 0; 1; 2; 3 ])));
  check_int "5 words = 2 data flits" 3
    (Msg.flits (mk ~payload:(data 5) (Mask.of_list [ 0; 1; 2; 3; 4 ])));
  check_int "full line = 4 data flits" 5
    (Msg.flits (mk ~payload:(data 16) Addr.full_mask))

let msg_categories () =
  let cat k = Msg.category k in
  Alcotest.(check bool) "reqv" true (cat (Msg.Req Msg.ReqV) = Msg.Cat_ReqV);
  Alcotest.(check bool) "nack counts as reqv" true (cat (Msg.Rsp Msg.Nack) = Msg.Cat_ReqV);
  Alcotest.(check bool) "wt and wt+data together" true
    (cat (Msg.Req Msg.ReqWT) = cat (Msg.Req Msg.ReqWTdata));
  Alcotest.(check bool) "o and o+data together" true
    (cat (Msg.Req Msg.ReqO) = cat (Msg.Req Msg.ReqOdata));
  Alcotest.(check bool) "probes with acks" true
    (cat (Msg.Probe Msg.Inv) = cat (Msg.Rsp Msg.Ack));
  Alcotest.(check bool) "rvko rsp is probe traffic" true
    (cat (Msg.Rsp Msg.RspRvkO) = Msg.Cat_Probe);
  check_int "six categories" 6 (List.length Msg.all_categories)

let msg_validation () =
  (* Payload length must match the mask. *)
  let bad () =
    ignore
      (Msg.make ~txn:1 ~kind:(Msg.Rsp Msg.RspV) ~line:0
         ~mask:(Mask.of_list [ 0; 1 ])
         ~payload:(Msg.Data [| 1 |])
         ~src:0 ~dst:1 ())
  in
  (try
     bad ();
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  (* Demand must be a subset of the mask. *)
  (try
     ignore
       (Msg.make ~txn:1 ~kind:(Msg.Req Msg.ReqV) ~line:0
          ~mask:(Mask.singleton 1) ~demand:(Mask.singleton 2) ~src:0 ~dst:1 ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let msg_defaults () =
  let m =
    Msg.make ~txn:9 ~kind:(Msg.Req Msg.ReqO) ~line:3 ~mask:(Mask.singleton 2)
      ~src:4 ~dst:5 ()
  in
  check_int "requestor defaults to src" 4 m.Msg.requestor;
  check_bool "demand defaults to mask" true (Mask.equal m.Msg.demand m.Msg.mask);
  check_bool "not forwarded" false m.Msg.fwd

let rsp_pairing () =
  List.iter
    (fun (req, rsp) -> check_bool "pairing" true (Msg.rsp_of_req req = rsp))
    [
      (Msg.ReqV, Msg.RspV);
      (Msg.ReqS, Msg.RspS);
      (Msg.ReqWT, Msg.RspWT);
      (Msg.ReqO, Msg.RspO);
      (Msg.ReqWTdata, Msg.RspWTdata);
      (Msg.ReqOdata, Msg.RspOdata);
      (Msg.ReqWB, Msg.RspWB);
    ]

(* ----- Linedata ------------------------------------------------------------- *)

let linedata_pack_unpack () =
  let full = Array.init 16 (fun i -> 100 + i) in
  let mask = Mask.of_list [ 1; 5; 13 ] in
  let packed = Linedata.pack ~mask ~full in
  Alcotest.(check (array int)) "packed order" [| 101; 105; 113 |] packed;
  let dst = Array.make 16 0 in
  Linedata.unpack_into ~mask ~values:packed ~full:dst;
  check_int "unpacked 5" 105 dst.(5);
  check_int "untouched" 0 dst.(0);
  check_int "value_at" 113 (Linedata.value_at ~mask ~values:packed ~word:13)

let linedata_extract () =
  let mask = Mask.of_list [ 0; 3; 8; 9 ] in
  let values = [| 10; 13; 18; 19 |] in
  let sub = Mask.of_list [ 3; 9 ] in
  Alcotest.(check (array int)) "extract" [| 13; 19 |]
    (Linedata.extract ~mask ~values ~sub)

let linedata_roundtrip_prop =
  QCheck2.Test.make ~name:"pack_unpack_roundtrip"
    QCheck2.Gen.(int_bound 0xFFFF)
    (fun mask ->
      let full = Array.init 16 (fun i -> i * 31) in
      let packed = Linedata.pack ~mask ~full in
      let dst = Array.make 16 (-1) in
      Linedata.unpack_into ~mask ~values:packed ~full:dst;
      Mask.fold mask ~init:true ~f:(fun acc w -> acc && dst.(w) = full.(w)))

let linedata_init_deterministic () =
  check_int "stable" (Linedata.init_word ~line:7 ~word:3)
    (Linedata.init_word ~line:7 ~word:3);
  check_bool "distinct words differ" true
    (Linedata.init_word ~line:7 ~word:3 <> Linedata.init_word ~line:7 ~word:4);
  Alcotest.(check (array int)) "fresh_line matches init_word"
    (Array.init 16 (fun w -> Linedata.init_word ~line:9 ~word:w))
    (Linedata.fresh_line ~line:9)

(* ----- State / Txn ----------------------------------------------------------- *)

let state_mapping () =
  check_bool "E maps to O" true (State.device_of_mesi State.M_E = State.O);
  check_bool "M maps to O" true (State.device_of_mesi State.M_M = State.O);
  check_bool "S maps to S" true (State.device_of_mesi State.M_S = State.S);
  check_bool "I maps to I" true (State.device_of_mesi State.M_I = State.I);
  check_bool "V readable" true (State.device_readable State.V);
  check_bool "I not readable" false (State.device_readable State.I);
  check_bool "only O writable" true
    (State.device_writable State.O
    && (not (State.device_writable State.V))
    && not (State.device_writable State.S))

let txn_unique () =
  Txn.reset ();
  let a = Txn.fresh () and b = Txn.fresh () in
  check_bool "distinct" true (a <> b);
  Txn.reset ();
  check_int "reset restarts" a (Txn.fresh ())

(* ----- message pool aliasing ------------------------------------------------ *)

(* The recycle/reuse contract behind [Run]'s message pooling: a recycled
   record (and a recycled owned payload array) may be handed out again,
   but never while a live reference exists — [keep] pins a record and its
   payload out of the pool forever.  Physical equality is the oracle. *)

let with_pool f =
  let was_pool = Msg.pooling_enabled () in
  let was_checks = Msg.checks_enabled () in
  Msg.set_pooling true;
  Msg.set_checks true;
  Fun.protect
    ~finally:(fun () ->
      Msg.set_pooling was_pool;
      Msg.set_checks was_checks)
    f

let mk ?(mask = Mask.singleton 0) ?(payload = Msg.No_data) () =
  Msg.make ~txn:(Txn.fresh ()) ~kind:(Msg.Req Msg.ReqV) ~mask ~line:1 ~payload
    ~src:0 ~dst:1 ()

let payload_arr m =
  match m.Msg.payload with
  | Msg.Data_pooled a -> a
  | _ -> Alcotest.fail "expected pooled payload"

let pool_recycles_records () =
  with_pool @@ fun () ->
  let m1 = mk () in
  Msg.recycle m1;
  let m2 = mk () in
  check_bool "recycled record is reused" true (m1 == m2);
  let m3 = mk () in
  check_bool "live records never alias" true (not (m2 == m3));
  Msg.recycle m2;
  Msg.recycle m3

let pool_never_reuses_kept_records () =
  with_pool @@ fun () ->
  let m1 = mk () in
  Msg.keep m1;
  Msg.recycle m1;
  (* A kept record must not come back even after a recycle call. *)
  let m2 = mk () in
  check_bool "kept record stays out of the pool" true (not (m1 == m2));
  (* keep is sticky: a second recycle still cannot free it. *)
  Msg.recycle m1;
  let m3 = mk () in
  check_bool "keep is sticky" true (not (m1 == m3));
  Msg.recycle m2;
  Msg.recycle m3

let pool_recycles_owned_payloads () =
  with_pool @@ fun () ->
  let full = Array.init Addr.words_per_line (fun i -> i) in
  let m1 = mk ~mask:(Mask.full ~words:4)
      ~payload:(Msg.pooled_pack ~mask:(Mask.full ~words:4) ~full)
      () in
  let a1 = payload_arr m1 in
  Msg.recycle m1;
  (* The next same-size pooled payload takes the recycled array... *)
  let m2 = mk ~mask:(Mask.full ~words:4)
      ~payload:(Msg.pooled_pack ~mask:(Mask.full ~words:4) ~full)
      () in
  check_bool "recycled payload array is reused" true (a1 == payload_arr m2);
  (* ...but two live messages never share one. *)
  let m3 = mk ~mask:(Mask.full ~words:4)
      ~payload:(Msg.pooled_pack ~mask:(Mask.full ~words:4) ~full)
      () in
  check_bool "live payloads never alias" true
    (not (payload_arr m2 == payload_arr m3));
  Msg.recycle m2;
  Msg.recycle m3

let pool_never_reuses_kept_payloads () =
  with_pool @@ fun () ->
  let full = Array.init Addr.words_per_line (fun i -> 7 * i) in
  let m1 = mk ~mask:(Mask.full ~words:3)
      ~payload:(Msg.pooled_pack ~mask:(Mask.full ~words:3) ~full)
      () in
  let a1 = payload_arr m1 in
  Msg.keep m1;
  Msg.recycle m1;
  let m2 = mk ~mask:(Mask.full ~words:3)
      ~payload:(Msg.pooled_pack ~mask:(Mask.full ~words:3) ~full)
      () in
  check_bool "kept payload array stays out of the pool" true
    (not (a1 == payload_arr m2));
  check_bool "kept payload survives later allocations" true
    (a1.(1) = full.(1));
  Msg.recycle m2

let tests =
  [
    test "addr_geometry" addr_geometry;
    test "addr_compare" addr_compare;
    test "amo_semantics" amo_semantics;
    test "msg_flits" msg_flits;
    test "msg_categories" msg_categories;
    test "msg_validation" msg_validation;
    test "msg_defaults" msg_defaults;
    test "rsp_pairing" rsp_pairing;
    test "linedata_pack_unpack" linedata_pack_unpack;
    test "linedata_extract" linedata_extract;
    test "linedata_init_deterministic" linedata_init_deterministic;
    test "state_mapping" state_mapping;
    test "txn_unique" txn_unique;
    test "pool_recycles_records" pool_recycles_records;
    test "pool_never_reuses_kept_records" pool_never_reuses_kept_records;
    test "pool_recycles_owned_payloads" pool_recycles_owned_payloads;
    test "pool_never_reuses_kept_payloads" pool_never_reuses_kept_payloads;
  ]
  @ [ QCheck_alcotest.to_alcotest ~long:false linedata_roundtrip_prop ]
