(* Tests for the implemented extensions: DeNovo regions (paper II-C), the
   ReqS policy options (III-B), and the adaptive write policy (V). *)

module Engine = Spandex_sim.Engine
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Mask = Spandex_util.Mask
module State = Spandex_proto.State
module Port = Spandex_device.Port
module Denovo_l1 = Spandex_denovo.Denovo_l1
module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Registry = Spandex_workloads.Registry
module Microbench = Spandex_workloads.Microbench
module Llc = Spandex.Llc

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let geom = { Microbench.cpus = 2; cus = 2; warps = 2 }

let params =
  { Params.bench with Params.cpu_cores = 2; gpu_cus = 2; warps_per_cu = 2 }

(* ----- DeNovo regions --------------------------------------------------------- *)

(* Build a standalone DeNovo L1 with a scripted LLC, like test_devices. *)
let denovo_standalone ~policy region_of =
  let engine = Engine.create () in
  let net = Spandex_net.Network.create engine (Spandex_net.Network.flat_topology ~latency:2) in
  let llc_inbox = ref [] in
  Spandex_net.Network.register net ~id:10 (fun m -> llc_inbox := m :: !llc_inbox);
  let l1 =
    Denovo_l1.create engine net
      {
        Denovo_l1.id = 0;
        llc_id = 10;
        llc_banks = 1;
        sets = 8;
        ways = 2;
        mshrs = 8;
        sb_capacity = 8;
        hit_latency = 1;
        coalesce_window = 2;
        max_reqv_retries = 1;
        atomics_at_llc = false;
        region_of;
        policy;
      }
  in
  (engine, net, llc_inbox, l1)

let denovo_with_regions region_of =
  denovo_standalone ~policy:Spandex_l1.Spandex_policy.Static_own region_of

let fill_valid engine net llc_inbox l1 ~line =
  let port = Denovo_l1.port l1 in
  port.Port.load (Addr.make ~line ~word:0) ~k:(fun _ -> ());
  ignore (Engine.run_all ~strict:false engine);
  let m =
    Proto_harness.expect_kind ~what:"fill" (List.rev !llc_inbox)
      (Msg.Req Msg.ReqV)
  in
  llc_inbox := [];
  Spandex_net.Network.send net
    (Msg.make ~txn:m.Msg.txn ~kind:(Msg.Rsp Msg.RspV) ~line ~mask:m.Msg.mask
       ~payload:(Msg.Data (Array.make (Mask.count m.Msg.mask) 5))
       ~src:10 ~dst:0 ());
  ignore (Engine.run_all ~strict:false engine)

let region_acquire_selective () =
  (* Lines < 100 are region 0, >= 100 are region 1. *)
  let engine, net, llc_inbox, l1 =
    denovo_with_regions (fun line -> if line < 100 then 0 else 1)
  in
  fill_valid engine net llc_inbox l1 ~line:3;
  fill_valid engine net llc_inbox l1 ~line:103;
  check_bool "both valid" true
    (Denovo_l1.word_state l1 (Addr.make ~line:3 ~word:0) = State.V
    && Denovo_l1.word_state l1 (Addr.make ~line:103 ~word:0) = State.V);
  let port = Denovo_l1.port l1 in
  port.Port.acquire_region ~region:1 ~k:(fun () -> ());
  ignore (Engine.run_all ~strict:false engine);
  check_bool "region 1 invalidated" true
    (Denovo_l1.word_state l1 (Addr.make ~line:103 ~word:0) = State.I);
  check_bool "region 0 preserved" true
    (Denovo_l1.word_state l1 (Addr.make ~line:3 ~word:0) = State.V);
  port.Port.acquire ~k:(fun () -> ());
  ignore (Engine.run_all ~strict:false engine);
  check_bool "full acquire clears the rest" true
    (Denovo_l1.word_state l1 (Addr.make ~line:3 ~word:0) = State.I)

let region_workload_correct_everywhere () =
  (* The regions workload must stay DRF-correct on every configuration,
     with and without region-selective barriers. *)
  List.iter
    (fun use_regions ->
      let wl = Microbench.region_reuse ~scale:0.5 ~use_regions geom in
      List.iter
        (fun config ->
          Run.assert_clean (Run.simulate ~params ~config wl))
        Config.extended)
    [ true; false ]

let region_reduces_invalidation_traffic () =
  let run use_regions =
    Run.simulate ~params ~config:Config.sdd
      (Microbench.region_reuse ~scale:1.0 ~use_regions geom)
  in
  let with_r = run true and without = run false in
  Run.assert_clean with_r;
  Run.assert_clean without;
  check_bool "regions reduce traffic on SDD" true
    (with_r.Run.total_flits < without.Run.total_flits)

(* ----- ReqS policy options ----------------------------------------------------- *)

let reqs_policy_results_identical () =
  (* All four policies are correct; they differ only in performance. *)
  let wl = (Registry.find "reuses").Registry.build ~scale:0.25 geom in
  List.iter
    (fun policy ->
      let p = { params with Params.reqs_policy = policy } in
      List.iter
        (fun config -> Run.assert_clean (Run.simulate ~params:p ~config wl))
        Config.all)
    [ Llc.Reqs_auto; Llc.Reqs_shared; Llc.Reqs_valid; Llc.Reqs_owned ]

let reqs_option2_precludes_reuse () =
  (* With option (2), writer-invalidated readers cannot retain data, so the
     dense re-reads of ReuseS all miss: far more read traffic. *)
  let wl = (Registry.find "reuses").Registry.build ~scale:0.5 geom in
  let run policy =
    Run.simulate ~params:{ params with Params.reqs_policy = policy }
      ~config:Config.smd wl
  in
  let auto = run Llc.Reqs_auto and valid = run Llc.Reqs_valid in
  check_bool "option 2 costs traffic" true
    (valid.Run.total_flits > 2 * auto.Run.total_flits)

let reqs_option2_served_as_reqv () =
  (* Unit-level: an LLC under Reqs_valid answers ReqS with RspV and grants
     neither Shared state nor ownership. *)
  let open Proto_harness in
  let t =
    setup_with_policy ~kind_of:(fun _ -> Llc.Kind_mesi)
      ~reqs_policy:Llc.Reqs_valid ()
  in
  ignore (req t ~from:0 ~kind:Msg.ReqS ~line:4 ~mask:Addr.full_mask ());
  ignore (expect_kind ~what:"valid data" (inbox t 0) (Msg.Rsp Msg.RspV));
  check_bool "no sharers" true (Llc.sharers t.llc ~line:4 = []);
  check_bool "no owner" true (Mask.is_empty (Llc.owned_mask t.llc ~line:4))

let reqs_option1_forced () =
  let open Proto_harness in
  let t =
    setup_with_policy ~kind_of:(fun _ -> Llc.Kind_denovo)
      ~reqs_policy:Llc.Reqs_shared ()
  in
  ignore (req t ~from:0 ~kind:Msg.ReqS ~line:4 ~mask:Addr.full_mask ());
  ignore (expect_kind ~what:"shared data" (inbox t 0) (Msg.Rsp Msg.RspS));
  check_bool "line shared" true
    (Llc.line_state t.llc ~line:4 = Some State.L_S);
  check_int "one sharer" 1 (List.length (Llc.sharers t.llc ~line:4))

(* ----- adaptive write policy ---------------------------------------------------- *)

let adaptive_streams_write_through () =
  let engine = Engine.create () in
  let net = Spandex_net.Network.create engine (Spandex_net.Network.flat_topology ~latency:2) in
  let llc_inbox = ref [] in
  Spandex_net.Network.register net ~id:10 (fun m -> llc_inbox := m :: !llc_inbox);
  let l1 =
    Denovo_l1.create engine net
      {
        Denovo_l1.id = 0;
        llc_id = 10;
        llc_banks = 1;
        sets = 8;
        ways = 2;
        mshrs = 8;
        sb_capacity = 8;
        hit_latency = 1;
        coalesce_window = 2;
        max_reqv_retries = 1;
        atomics_at_llc = false;
        region_of = (fun _ -> 0);
        policy = Spandex_l1.Spandex_policy.adaptive_writes;
      }
  in
  let port = Denovo_l1.port l1 in
  (* A cold store streams: the predictor has no reuse evidence. *)
  port.Port.store (Addr.make ~line:2 ~word:0) ~value:1 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  ignore (Engine.run_all ~strict:false engine);
  let m =
    Proto_harness.expect_kind ~what:"streaming store" (List.rev !llc_inbox)
      (Msg.Req Msg.ReqWT)
  in
  check_bool "write-through carries data" true (m.Msg.payload <> Msg.No_data);
  Spandex_net.Network.send net
    (Msg.make ~txn:m.Msg.txn ~kind:(Msg.Rsp Msg.RspWT) ~line:2 ~mask:m.Msg.mask
       ~src:10 ~dst:0 ());
  ignore (Engine.run_all ~strict:false engine);
  check_bool "completed as Valid, not Owned" true
    (Denovo_l1.word_state l1 (Addr.make ~line:2 ~word:0) = State.V);
  (* Rapid re-writes to the same line are reuse evidence: the predictor
     switches the line to ownership. *)
  llc_inbox := [];
  let rec rewrite n k =
    if n = 0 then k ()
    else
      port.Port.store (Addr.make ~line:2 ~word:0) ~value:n ~k:(fun () ->
          port.Port.release ~k:(fun () ->
              (match
                 List.find_opt
                   (fun (m : Msg.t) -> m.Msg.kind = Msg.Req Msg.ReqWT)
                   !llc_inbox
               with
              | Some m ->
                Spandex_net.Network.send net
                  (Msg.make ~txn:m.Msg.txn ~kind:(Msg.Rsp Msg.RspWT) ~line:2
                     ~mask:m.Msg.mask ~src:10 ~dst:0 ());
                llc_inbox := []
              | None -> ());
              rewrite (n - 1) k))
  in
  rewrite 3 (fun () -> ());
  ignore (Engine.run_all ~strict:false engine);
  port.Port.store (Addr.make ~line:2 ~word:1) ~value:9 ~k:(fun () -> ());
  port.Port.release ~k:(fun () -> ());
  ignore (Engine.run_all ~strict:false engine);
  ignore
    (Proto_harness.expect_kind ~what:"switched to ownership"
       (List.rev !llc_inbox) (Msg.Req Msg.ReqO))

let adaptive_config_correct () =
  List.iter
    (fun config ->
      List.iter
        (fun wname ->
          let wl = (Registry.find wname).Registry.build ~scale:0.25 geom in
          Run.assert_clean (Run.simulate ~params ~config wl))
        [ "reuseo"; "indirection"; "bc"; "stress" ])
    [ Config.sda; Config.saa ]

let adaptive_promotes_repeated_read_misses () =
  (* SAA's read-side adaptation: with [adaptive_full] (read threshold 2),
     the first two misses to a line go out as ReqV, the third is promoted
     to ReqO+data and its fill installs as Owned, surviving acquires. *)
  let engine, net, llc_inbox, l1 =
    denovo_standalone ~policy:Spandex_l1.Spandex_policy.adaptive_full
      (fun _ -> 0)
  in
  let port = Denovo_l1.port l1 in
  let respond (m : Msg.t) ~kind =
    Spandex_net.Network.send net
      (Msg.make ~txn:m.Msg.txn ~kind:(Msg.Rsp kind) ~line:2 ~mask:m.Msg.demand
         ~payload:(Msg.Data (Array.make (Mask.count m.Msg.demand) 7))
         ~src:10 ~dst:0 ())
  in
  for i = 1 to 2 do
    port.Port.load (Addr.make ~line:2 ~word:0) ~k:(fun _ -> ());
    ignore (Engine.run_all ~strict:false engine);
    let m =
      Proto_harness.expect_kind
        ~what:(Printf.sprintf "cold miss %d" i)
        (List.rev !llc_inbox) (Msg.Req Msg.ReqV)
    in
    llc_inbox := [];
    respond m ~kind:Msg.RspV;
    ignore (Engine.run_all ~strict:false engine);
    port.Port.acquire ~k:(fun () -> ());
    ignore (Engine.run_all ~strict:false engine)
  done;
  port.Port.load (Addr.make ~line:2 ~word:0) ~k:(fun _ -> ());
  ignore (Engine.run_all ~strict:false engine);
  let m =
    Proto_harness.expect_kind ~what:"promoted miss" (List.rev !llc_inbox)
      (Msg.Req Msg.ReqOdata)
  in
  llc_inbox := [];
  respond m ~kind:Msg.RspOdata;
  ignore (Engine.run_all ~strict:false engine);
  check_bool "promoted fill installs Owned" true
    (Denovo_l1.word_state l1 (Addr.make ~line:2 ~word:0) = State.O);
  port.Port.acquire ~k:(fun () -> ());
  ignore (Engine.run_all ~strict:false engine);
  check_bool "owned fill survives the acquire" true
    (Denovo_l1.word_state l1 (Addr.make ~line:2 ~word:0) = State.O)

let adaptive_read_promotion_reduces_traffic () =
  (* On the read-reuse workload with repeated acquires, SAA's promoted
     reads retain data across synchronization that SDA keeps re-fetching. *)
  let wl = (Registry.find "reuseo").Registry.build ~scale:0.5 geom in
  let run config =
    let r = Run.simulate ~params ~config wl in
    Run.assert_clean r;
    r
  in
  let saa = run Config.saa in
  let promoted =
    List.fold_left
      (fun acc (n, v) ->
        if String.ends_with ~suffix:"load_promoted_own" n then acc + v else acc)
      0
      (Spandex_util.Stats.to_assoc saa.Run.stats)
  in
  check_bool "promotions happened" true (promoted > 0)

let adaptive_tracks_best_static () =
  (* On the ownership-friendly workload the adaptive policy must land close
     to SDD (within 20%), far from the pure write-through loss. *)
  let wl = (Registry.find "reuseo").Registry.build ~scale:0.5 geom in
  let flits config =
    let r = Run.simulate ~params ~config wl in
    Run.assert_clean r;
    r.Run.total_flits
  in
  let sdd = flits Config.sdd and sda = flits Config.sda in
  check_bool "adaptive near SDD on reuseo" true
    (float_of_int sda < 1.2 *. float_of_int sdd)

let tests =
  [
    test "region_acquire_selective" region_acquire_selective;
    test "region_workload_correct_everywhere" region_workload_correct_everywhere;
    test "region_reduces_invalidation_traffic" region_reduces_invalidation_traffic;
    test "reqs_policy_results_identical" reqs_policy_results_identical;
    test "reqs_option2_precludes_reuse" reqs_option2_precludes_reuse;
    test "reqs_option2_served_as_reqv" reqs_option2_served_as_reqv;
    test "reqs_option1_forced" reqs_option1_forced;
    test "adaptive_streams_write_through" adaptive_streams_write_through;
    test "adaptive_config_correct" adaptive_config_correct;
    test "adaptive_tracks_best_static" adaptive_tracks_best_static;
    test "adaptive_promotes_repeated_read_misses"
      adaptive_promotes_repeated_read_misses;
    test "adaptive_read_promotion_reduces_traffic"
      adaptive_read_promotion_reduces_traffic;
  ]
