(* Model checker: exhaustive interleaving exploration, invariant oracle,
   seeded-bug detection, counterexample minimization and replay, and the
   Engine.Stuck silent-deadlock audit. *)

module Engine = Spandex_sim.Engine
module Network = Spandex_net.Network
module Msg = Spandex_proto.Msg
module Config = Spandex_system.Config
module Litmus = Spandex_check.Litmus
module Checker = Spandex_check.Checker
module Schedule = Spandex_check.Schedule

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- Engine.Stuck: silent deadlock fails loudly -------------------------------- *)

(* A mesi L1 sends its first request into a black hole (no LLC endpoint
   handler does anything).  The queue drains with the MSHR still holding
   the miss: run_all must raise Stuck naming the device and line rather
   than returning as if complete. *)
let stuck_on_swallowed_reply () =
  let engine = Engine.create () in
  let net = Network.create engine (Spandex_net.Network.flat_topology ~latency:3) in
  Network.register net ~id:10 (fun _msg -> () (* black-hole LLC *));
  let l1 =
    Spandex_mesi.Mesi_l1.create engine net
      {
        Spandex_mesi.Mesi_l1.id = 0;
        llc_id = 10;
        llc_banks = 1;
        sets = 4;
        ways = 2;
        mshrs = 4;
        sb_capacity = 4;
        hit_latency = 1;
        coalesce_window = 0;
        notify_home_on_fwd_getm = false;
      }
  in
  let port = Spandex_mesi.Mesi_l1.port l1 in
  port.Spandex_device.Port.load
    (Spandex_proto.Addr.make ~line:3 ~word:0)
    ~k:(fun _ -> ());
  match Engine.run_all engine with
  | _ -> Alcotest.fail "run_all returned despite a live MSHR entry"
  | exception Engine.Stuck s ->
    check_bool "names the device" true
      (List.exists
         (fun w -> w.Engine.pw_device = "l1.0" && w.Engine.pw_line = 3)
         s.Engine.stuck_work);
    (* Permissive mode must still drain quietly. *)
    ignore (Engine.run_all ~strict:false engine)

(* ----- clean exploration --------------------------------------------------------- *)

let explore_clean config ~cpus ~gpus ~faults case () =
  let o = Checker.check ~budget_secs:60. ~case ~config ~cpus ~gpus ~faults () in
  (match o.Checker.o_violation with
  | None -> ()
  | Some (v, steps) ->
    Alcotest.failf "unexpected violation (%d steps): %s" (List.length steps)
      (Checker.violation_descr v));
  check_bool "not truncated" false o.Checker.o_truncated;
  check_bool "explored at least one state" true (o.Checker.o_states > 0)

(* Explored-state counts for a fixed (case, config) pair are part of the
   checker's determinism contract: same search, same count. *)
let state_count_stable () =
  let run () =
    let o =
      Checker.check ~case:Litmus.ww ~config:Config.sdd ~cpus:2 ~gpus:0
        ~faults:false ()
    in
    check_bool "no violation" true (o.Checker.o_violation = None);
    o.Checker.o_states
  in
  let a = run () and b = run () in
  check_int "same explored-state count" a b

(* LLC banking is a pure layout change (bank = set index mod banks): the
   protocol cannot observe it, so exploring with a banked LLC must visit
   exactly the same state space as the single-bank search. *)
let banked_llc_same_state_space () =
  let run banks =
    let o =
      Checker.check ~llc_banks:banks ~case:Litmus.ww ~config:Config.sdd
        ~cpus:2 ~gpus:0 ~faults:false ()
    in
    check_bool "no violation" true (o.Checker.o_violation = None);
    o.Checker.o_states
  in
  check_int "banked state count matches single-bank" (run 1) (run 2)

(* ----- seeded bugs --------------------------------------------------------------- *)

let tmp_cex name = Filename.concat (Filename.get_temp_dir_name ()) name

let seeded_bug_caught bug expected_kind () =
  let out = tmp_cex (Printf.sprintf "cex_%s.jsonl" (Checker.bug_name bug)) in
  let o =
    Checker.check_and_report ~budget_secs:60. ~seed_bug:bug ~case:Litmus.own
      ~config:Config.smd ~cpus:2 ~gpus:0 ~faults:false ~out ()
  in
  match o.Checker.o_violation with
  | None -> Alcotest.failf "seeded bug %s not caught" (Checker.bug_name bug)
  | Some (v, steps) ->
    check_bool
      (Printf.sprintf "%s produces the expected violation kind"
         (Checker.bug_name bug))
      true (expected_kind v);
    check_bool "counterexample is non-trivial" true (List.length steps > 0);
    (* The minimized counterexample must replay to the same violation. *)
    let _header, replayed, _steps, _sys = Checker.replay ~path:out () in
    (match replayed with
    | Some rv ->
      check_bool "replay reproduces a violation of the same kind" true
        (expected_kind rv)
    | None -> Alcotest.fail "replay of the counterexample found no violation");
    Sys.remove out

let deadlock_kind = function Checker.Deadlock _ -> true | _ -> false

let stale_kind = function Checker.Data_mismatch _ -> true | _ -> false

(* ----- fault actions ------------------------------------------------------------- *)

let faults_explore_clean () =
  explore_clean Config.sdd ~cpus:2 ~gpus:0 ~faults:true Litmus.mp ()

(* ----- counterexample round-trip ------------------------------------------------- *)

let schedule_roundtrip () =
  let header =
    {
      Schedule.h_case = "ww";
      h_config = "SDD";
      h_cpus = 2;
      h_gpus = 0;
      h_banks = 2;
      h_faults = true;
      h_seed_bug = Some "skip-inv-ack";
      h_violation = "deadlock: llc.0 collecting acks";
    }
  in
  let steps =
    [
      (Schedule.Deliver 0, "ReqO txn=1 line=0 0->2");
      (Schedule.Drop 3, "RspO txn=1 line=0 2->0");
      (Schedule.Dup 4, "ReqV txn=2 line=1 1->2");
    ]
  in
  let path = tmp_cex "cex_roundtrip.jsonl" in
  Schedule.write ~path header steps;
  let header', actions = Schedule.read ~path in
  Sys.remove path;
  check_bool "header survives" true (header' = header);
  check_bool "actions survive" true (actions = List.map fst steps)

let tests =
  [
    Alcotest.test_case "stuck_on_swallowed_reply" `Quick
      stuck_on_swallowed_reply;
    Alcotest.test_case "schedule_roundtrip" `Quick schedule_roundtrip;
    Alcotest.test_case "mesi_ww_clean" `Quick
      (explore_clean Config.smd ~cpus:2 ~gpus:0 ~faults:false Litmus.ww);
    Alcotest.test_case "denovo_own_clean" `Quick
      (explore_clean Config.sdd ~cpus:2 ~gpus:0 ~faults:false Litmus.own);
    Alcotest.test_case "gpu_mp_clean" `Quick
      (explore_clean Config.sdg ~cpus:1 ~gpus:1 ~faults:false Litmus.mp);
    Alcotest.test_case "state_count_stable" `Quick state_count_stable;
    Alcotest.test_case "banked_llc_same_state_space" `Quick
      banked_llc_same_state_space;
    Alcotest.test_case "faults_mp_clean" `Quick faults_explore_clean;
    Alcotest.test_case "seeded_skip_inv_ack_deadlocks" `Quick
      (seeded_bug_caught Checker.Skip_inv_ack deadlock_kind);
    Alcotest.test_case "seeded_ack_no_inv_stale_data" `Quick
      (seeded_bug_caught Checker.Ack_no_inv stale_kind);
  ]
