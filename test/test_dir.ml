(* Unit tests for the hierarchical baseline: the directory MESI LLC and
   (through small-cache integration runs) the GPU L2 + client recalls. *)

module Engine = Spandex_sim.Engine
module Network = Spandex_net.Network
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Mask = Spandex_util.Mask
module Dram = Spandex_mem.Dram
module Mesi_dir = Spandex_mesi.Mesi_dir

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let dir_id = 10
let full = Addr.full_mask
let expect = Proto_harness.expect_kind
let expect_no = Proto_harness.expect_no_kind
let values = Proto_harness.payload_list

type h = {
  engine : Engine.t;
  net : Network.t;
  dram : Dram.t;
  dir : Mesi_dir.t;
  inboxes : Msg.t list ref array;
}

let harness ?(sets = 16) ?(ways = 4) () =
  Spandex_proto.Txn.reset ();
  let engine = Engine.create () in
  let net = Network.create engine (Network.flat_topology ~latency:2) in
  let dram = Dram.create engine ~latency:5 ~service_interval:0 in
  let dir =
    Mesi_dir.create engine net dram
      { Mesi_dir.dir_id; banks = 1; sets; ways; access_latency = 1 }
  in
  let inboxes =
    Array.init 3 (fun id ->
        let inbox = ref [] in
        Network.register net ~id (fun m -> inbox := m :: !inbox);
        inbox)
  in
  { engine; net; dram; dir; inboxes }

let run h = ignore (Engine.run_all ~strict:false h.engine)
let msgs h i = List.rev !(h.inboxes.(i))
let clear h = Array.iter (fun r -> r := []) h.inboxes

let send h ?payload ?txn ~from ~kind ~line () =
  let txn = match txn with Some t -> t | None -> Spandex_proto.Txn.fresh () in
  Network.send h.net
    (Msg.make ~txn ~kind ~line ~mask:full ?payload ~src:from ~dst:dir_id ());
  run h;
  txn

let gets h ~from ~line = ignore (send h ~from ~kind:(Msg.Req Msg.ReqS) ~line ())
let getm h ~from ~line = ignore (send h ~from ~kind:(Msg.Req Msg.ReqOdata) ~line ())

let dir_e_grant_then_fwd_gets () =
  let h = harness () in
  gets h ~from:0 ~line:3;
  (* First reader gets Exclusive (RspOdata). *)
  ignore (expect ~what:"E grant" (msgs h 0) (Msg.Rsp Msg.RspOdata));
  check_bool "dir tracks owner" true
    (Mesi_dir.line_state h.dir ~line:3 = Some (Mesi_dir.D_M 0));
  clear h;
  (* Second reader: blocking FwdGetS to the owner. *)
  gets h ~from:1 ~line:3;
  let fwd = expect ~what:"fwdgets" (msgs h 0) (Msg.Req Msg.ReqS) in
  check_int "requestor" 1 fwd.Msg.requestor;
  expect_no ~what:"reader blocked" (msgs h 1) (Msg.Rsp Msg.RspS);
  (* A third request is queued while the line is in a transient state. *)
  gets h ~from:2 ~line:3;
  expect_no ~what:"third queued" (msgs h 2) (Msg.Rsp Msg.RspS);
  (* Owner confirms with a write-back copy; both readers proceed. *)
  ignore
    (send h ~from:0 ~kind:(Msg.Rsp Msg.RspRvkO) ~line:3 ~txn:fwd.Msg.txn
       ~payload:(Msg.Data (Array.init 16 (fun i -> 30 + i)))
       ());
  (match Mesi_dir.line_state h.dir ~line:3 with
  | Some (Mesi_dir.D_S sharers) ->
    check_bool "owner + both readers shared" true
      (List.mem 0 sharers && List.mem 1 sharers && List.mem 2 sharers)
  | _ -> Alcotest.fail "expected D_S");
  let r2 = expect ~what:"queued reader served" (msgs h 2) (Msg.Rsp Msg.RspS) in
  check_int "merged data" 35 (List.nth (values r2) 5)

let dir_getm_invalidates_sharers () =
  let h = harness () in
  (* Build D_S {0,1,2}. *)
  gets h ~from:0 ~line:4;
  let fwd = expect ~what:"fwd" (msgs h 0) (Msg.Rsp Msg.RspOdata) in
  ignore fwd;
  clear h;
  gets h ~from:1 ~line:4;
  let f = expect ~what:"fwdgets" (msgs h 0) (Msg.Req Msg.ReqS) in
  ignore
    (send h ~from:0 ~kind:(Msg.Rsp Msg.RspRvkO) ~line:4 ~txn:f.Msg.txn
       ~payload:(Msg.Data (Array.make 16 4))
       ());
  clear h;
  (* Writer 2: invalidate sharers 0 and 1, then grant. *)
  getm h ~from:2 ~line:4;
  let inv0 = expect ~what:"inv 0" (msgs h 0) (Msg.Probe Msg.Inv) in
  let inv1 = expect ~what:"inv 1" (msgs h 1) (Msg.Probe Msg.Inv) in
  expect_no ~what:"blocked until acks" (msgs h 2) (Msg.Rsp Msg.RspOdata);
  ignore (send h ~from:0 ~kind:(Msg.Rsp Msg.Ack) ~line:4 ~txn:inv0.Msg.txn ());
  ignore (send h ~from:1 ~kind:(Msg.Rsp Msg.Ack) ~line:4 ~txn:inv1.Msg.txn ());
  ignore (expect ~what:"granted" (msgs h 2) (Msg.Rsp Msg.RspOdata));
  check_bool "owner 2" true (Mesi_dir.line_state h.dir ~line:4 = Some (Mesi_dir.D_M 2))

let dir_getm_forwards_to_owner () =
  let h = harness () in
  getm h ~from:0 ~line:5;
  clear h;
  getm h ~from:1 ~line:5;
  let fwd = expect ~what:"fwdgetm" (msgs h 0) (Msg.Req Msg.ReqOdata) in
  check_int "req" 1 fwd.Msg.requestor;
  expect_no ~what:"blocked" (msgs h 1) (Msg.Rsp Msg.RspOdata);
  (* Old owner confirms the transfer (data goes directly to the new one). *)
  ignore (send h ~from:0 ~kind:(Msg.Rsp Msg.RspRvkO) ~line:5 ~txn:fwd.Msg.txn ());
  check_bool "transferred" true (Mesi_dir.line_state h.dir ~line:5 = Some (Mesi_dir.D_M 1))

let dir_putm_merges () =
  let h = harness () in
  getm h ~from:0 ~line:6;
  clear h;
  ignore
    (send h ~from:0 ~kind:(Msg.Req Msg.ReqWB) ~line:6
       ~payload:(Msg.Data (Array.init 16 (fun i -> 600 + i)))
       ());
  ignore (expect ~what:"ack" (msgs h 0) (Msg.Rsp Msg.RspWB));
  check_bool "line valid at dir" true
    (Mesi_dir.line_state h.dir ~line:6 = Some Mesi_dir.D_V);
  check_bool "merged" true
    (Mesi_dir.peek_word h.dir (Addr.make ~line:6 ~word:3) = Some 603)

let dir_putm_from_non_owner_dropped () =
  let h = harness () in
  getm h ~from:0 ~line:7;
  getm h ~from:1 ~line:7;
  let fwd = expect ~what:"fwd" (msgs h 0) (Msg.Req Msg.ReqOdata) in
  ignore (send h ~from:0 ~kind:(Msg.Rsp Msg.RspRvkO) ~line:7 ~txn:fwd.Msg.txn ());
  clear h;
  (* Device 0 no longer owns; its stale PutM must not clobber. *)
  ignore
    (send h ~from:0 ~kind:(Msg.Req Msg.ReqWB) ~line:7
       ~payload:(Msg.Data (Array.make 16 666))
       ());
  ignore (expect ~what:"still acked" (msgs h 0) (Msg.Rsp Msg.RspWB));
  check_bool "owner unchanged" true
    (Mesi_dir.line_state h.dir ~line:7 = Some (Mesi_dir.D_M 1))

let dir_crossing_putm_unblocks_fwd () =
  let h = harness () in
  getm h ~from:0 ~line:8;
  clear h;
  gets h ~from:1 ~line:8;
  ignore (expect ~what:"fwd out" (msgs h 0) (Msg.Req Msg.ReqS));
  (* The owner's eviction crossed the forward: its PutM both merges data
     and unblocks the transfer. *)
  ignore
    (send h ~from:0 ~kind:(Msg.Req Msg.ReqWB) ~line:8
       ~payload:(Msg.Data (Array.make 16 88))
       ());
  check_bool "unblocked to shared" true
    (match Mesi_dir.line_state h.dir ~line:8 with
    | Some (Mesi_dir.D_S _) -> true
    | _ -> false);
  check_bool "data merged" true
    (Mesi_dir.peek_word h.dir (Addr.make ~line:8 ~word:0) = Some 88)

let dir_eviction_recalls_owner () =
  let h = harness ~sets:1 ~ways:2 () in
  getm h ~from:0 ~line:1;
  getm h ~from:1 ~line:2;
  clear h;
  (* Line 3 needs a way: the LRU owned line is recalled. *)
  gets h ~from:2 ~line:3;
  let rvko = expect ~what:"recall" (msgs h 0) (Msg.Probe Msg.RvkO) in
  check_int "recalls line 1" 1 rvko.Msg.line;
  expect_no ~what:"requestor waits" (msgs h 2) (Msg.Rsp Msg.RspOdata);
  ignore
    (send h ~from:0 ~kind:(Msg.Rsp Msg.RspRvkO) ~line:1 ~txn:rvko.Msg.txn
       ~payload:(Msg.Data (Array.make 16 11))
       ());
  ignore (expect ~what:"now served" (msgs h 2) (Msg.Rsp Msg.RspOdata));
  check_int "recalled data reached memory" 11
    (Dram.peek_word h.dram (Addr.make ~line:1 ~word:0))

(* --- hierarchical integration: recalls through the GPU L2 ------------------- *)

(* Tiny caches force L2 evictions, dir recalls and client write-backs; the
   stress workload's Checks verify no data is lost through any of it. *)
let hierarchy_recalls_under_pressure () =
  let params =
    {
      Spandex_system.Params.small with
      Spandex_system.Params.cpu_cores = 2;
      gpu_cus = 2;
      warps_per_cu = 2;
      mem_latency = 15;
    }
  in
  let geom = { Spandex_workloads.Microbench.cpus = 2; cus = 2; warps = 2 } in
  List.iter
    (fun seed ->
      let wl =
        Spandex_workloads.Stress.generate
          {
            Spandex_workloads.Stress.default_spec with
            Spandex_workloads.Stress.seed;
            phases = 4;
            (* enough lines to overflow the tiny directory and force
               recalls of L2- and CPU-owned lines. *)
            words = 2048;
          }
          geom
      in
      List.iter
        (fun config ->
          let r = Spandex_system.Run.simulate ~params ~config wl in
          Spandex_system.Run.assert_clean r;
          (* The tiny LLC guarantees the recall machinery actually ran. *)
          if config.Spandex_system.Config.llc = Spandex_system.Config.H_mesi
          then
            check_bool "dir recalls exercised" true
              (Spandex_util.Stats.get r.Spandex_system.Run.stats
                 "mesi_dir.evict_recall"
              > 0))
        [ Spandex_system.Config.hmg; Spandex_system.Config.hmd ])
    [ 1; 2; 3 ]

let tests =
  [
    test "dir_e_grant_then_fwd_gets" dir_e_grant_then_fwd_gets;
    test "dir_getm_invalidates_sharers" dir_getm_invalidates_sharers;
    test "dir_getm_forwards_to_owner" dir_getm_forwards_to_owner;
    test "dir_putm_merges" dir_putm_merges;
    test "dir_putm_from_non_owner_dropped" dir_putm_from_non_owner_dropped;
    test "dir_crossing_putm_unblocks_fwd" dir_crossing_putm_unblocks_fwd;
    test "dir_eviction_recalls_owner" dir_eviction_recalls_owner;
    test "hierarchy_recalls_under_pressure" hierarchy_recalls_under_pressure;
  ]
