(* Unit and property tests for spandex_util. *)

module Mask = Spandex_util.Mask
module Pqueue = Spandex_util.Pqueue
module Rng = Spandex_util.Rng
module Stats = Spandex_util.Stats

let test = Helpers.test
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ----- Mask ------------------------------------------------------------- *)

let mask_basics () =
  check_int "empty count" 0 (Mask.count Mask.empty);
  check_int "full 16" 16 (Mask.count (Mask.full ~words:16));
  check_bool "mem singleton" true (Mask.mem (Mask.singleton 5) 5);
  check_bool "not mem" false (Mask.mem (Mask.singleton 5) 6);
  check_int "add" 2 (Mask.count (Mask.add (Mask.singleton 0) 15));
  check_int "remove" 0 (Mask.count (Mask.remove (Mask.singleton 3) 3));
  check_bool "subset" true (Mask.subset (Mask.singleton 2) (Mask.full ~words:16));
  check_bool "not subset" false (Mask.subset (Mask.full ~words:16) (Mask.singleton 2))

let mask_iter_order () =
  let m = Mask.of_list [ 14; 2; 7; 0 ] in
  Alcotest.(check (list int)) "sorted order" [ 0; 2; 7; 14 ] (Mask.to_list m)

let mask_pp () =
  let s = Format.asprintf "%a" (Mask.pp ~words:8) (Mask.of_list [ 0; 7 ]) in
  Alcotest.(check string) "pp" "10000001" s

let mask_gen = QCheck2.Gen.int_bound 0xFFFF

let mask_props =
  [
    QCheck2.Test.make ~name:"union_comm" QCheck2.Gen.(pair mask_gen mask_gen)
      (fun (a, b) -> Mask.equal (Mask.union a b) (Mask.union b a));
    QCheck2.Test.make ~name:"inter_subset" QCheck2.Gen.(pair mask_gen mask_gen)
      (fun (a, b) -> Mask.subset (Mask.inter a b) a);
    QCheck2.Test.make ~name:"diff_disjoint" QCheck2.Gen.(pair mask_gen mask_gen)
      (fun (a, b) -> Mask.is_empty (Mask.inter (Mask.diff a b) b));
    QCheck2.Test.make ~name:"count_union_inter"
      QCheck2.Gen.(pair mask_gen mask_gen) (fun (a, b) ->
        Mask.count (Mask.union a b) + Mask.count (Mask.inter a b)
        = Mask.count a + Mask.count b);
    QCheck2.Test.make ~name:"of_to_list_roundtrip" mask_gen (fun m ->
        Mask.equal m (Mask.of_list (Mask.to_list m)));
    QCheck2.Test.make ~name:"fold_counts" mask_gen (fun m ->
        Mask.fold m ~init:0 ~f:(fun acc _ -> acc + 1) = Mask.count m);
  ]

(* Reference model: a plain int set must agree with every set-algebra
   operation on masks. *)
module ISet = Set.Make (Int)

let model m = ISet.of_list (Mask.to_list m)
let mask_of_model s = Mask.of_list (ISet.elements s)
let full16 = Mask.full ~words:16
let word_gen = QCheck2.Gen.int_bound 15

let mask_model_props =
  [
    QCheck2.Test.make ~name:"union_vs_model"
      QCheck2.Gen.(pair mask_gen mask_gen)
      (fun (a, b) ->
        Mask.equal (Mask.union a b) (mask_of_model (ISet.union (model a) (model b))));
    QCheck2.Test.make ~name:"inter_vs_model"
      QCheck2.Gen.(pair mask_gen mask_gen)
      (fun (a, b) ->
        Mask.equal (Mask.inter a b) (mask_of_model (ISet.inter (model a) (model b))));
    QCheck2.Test.make ~name:"diff_vs_model"
      QCheck2.Gen.(pair mask_gen mask_gen)
      (fun (a, b) ->
        Mask.equal (Mask.diff a b) (mask_of_model (ISet.diff (model a) (model b))));
    QCheck2.Test.make ~name:"complement_roundtrip" mask_gen (fun m ->
        Mask.equal m (Mask.diff full16 (Mask.diff full16 m)));
    QCheck2.Test.make ~name:"complement_partitions" mask_gen (fun m ->
        let co = Mask.diff full16 m in
        Mask.is_empty (Mask.inter m co)
        && Mask.equal (Mask.union m co) full16);
    QCheck2.Test.make ~name:"set_get_agreement"
      QCheck2.Gen.(pair mask_gen word_gen)
      (fun (m, w) ->
        Mask.mem (Mask.add m w) w
        && (not (Mask.mem (Mask.remove m w) w))
        && Mask.mem m w = ISet.mem w (model m)
        && Mask.equal (Mask.add m w) (mask_of_model (ISet.add w (model m)))
        && Mask.equal (Mask.remove m w)
             (mask_of_model (ISet.remove w (model m))));
    QCheck2.Test.make ~name:"per_word_union_inter"
      QCheck2.Gen.(pair (pair mask_gen mask_gen) word_gen)
      (fun ((a, b), w) ->
        Mask.mem (Mask.union a b) w = (Mask.mem a w || Mask.mem b w)
        && Mask.mem (Mask.inter a b) w = (Mask.mem a w && Mask.mem b w)
        && Mask.mem (Mask.diff a b) w = (Mask.mem a w && not (Mask.mem b w)));
  ]

(* ----- Pqueue ------------------------------------------------------------ *)

let pqueue_ordering () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:5 "c";
  Pqueue.push q ~time:1 "a";
  Pqueue.push q ~time:3 "b";
  Alcotest.(check (option int)) "peek" (Some 1) (Pqueue.peek_time q);
  let pop () = Option.map snd (Pqueue.pop q) in
  Alcotest.(check (option string)) "first" (Some "a") (pop ());
  Alcotest.(check (option string)) "second" (Some "b") (pop ());
  Alcotest.(check (option string)) "third" (Some "c") (pop ());
  Alcotest.(check (option string)) "empty" None (pop ())

let pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~time:7 v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list int)) "fifo among equal times" [ 1; 2; 3; 4 ] order

let pqueue_prop =
  QCheck2.Test.make ~name:"pqueue_sorts"
    QCheck2.Gen.(list_size (int_bound 200) (int_bound 1000))
    (fun times ->
      let q = Pqueue.create () in
      List.iter (fun t -> Pqueue.push q ~time:t t) times;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      drain [] = List.sort compare times)

let pqueue_alloc_free_api () =
  (* min_time/pop_min mirror peek_time/pop without the option/tuple boxing;
     they must agree and raise on empty. *)
  let q = Pqueue.create ~capacity:1 () in
  Alcotest.check_raises "min_time empty"
    (Invalid_argument "Pqueue.min_time: empty") (fun () ->
      ignore (Pqueue.min_time q));
  Alcotest.check_raises "pop_min empty"
    (Invalid_argument "Pqueue.pop_min: empty") (fun () ->
      ignore (Pqueue.pop_min q));
  List.iter (fun (t, v) -> Pqueue.push q ~time:t v) [ (9, "z"); (2, "a"); (5, "m") ];
  check_int "min_time" 2 (Pqueue.min_time q);
  Alcotest.(check string) "pop_min" "a" (Pqueue.pop_min q);
  check_int "min_time after pop" 5 (Pqueue.min_time q);
  Alcotest.(check string) "pop_min 2" "m" (Pqueue.pop_min q);
  Alcotest.(check string) "pop_min 3" "z" (Pqueue.pop_min q);
  check_bool "empty again" true (Pqueue.is_empty q)

(* Drain through the alloc-free API, returning (time, value) pairs. *)
let drain_min q =
  let rec go acc =
    if Pqueue.is_empty q then List.rev acc
    else
      let t = Pqueue.min_time q in
      let v = Pqueue.pop_min q in
      go ((t, v) :: acc)
  in
  go []

let pqueue_props =
  let open QCheck2 in
  [
    Test.make ~name:"pqueue_pop_min_sorts"
      Gen.(list_size (int_bound 300) (int_bound 1000))
      (fun times ->
        let q = Pqueue.create ~capacity:1 () in
        List.iter (fun t -> Pqueue.push q ~time:t t) times;
        List.map fst (drain_min q) = List.sort compare times);
    Test.make ~name:"pqueue_fifo_tie_break"
      (* Few distinct times -> many ties; drained order must be the stable
         sort of the submissions, i.e. FIFO among equal times. *)
      Gen.(list_size (int_bound 300) (int_bound 4))
      (fun times ->
        let q = Pqueue.create () in
        List.iteri (fun i t -> Pqueue.push q ~time:t i) times;
        let expected =
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.mapi (fun i t -> (t, i)) times)
        in
        drain_min q = expected);
    Test.make ~name:"pqueue_grow_clear_reuse"
      Gen.(
        pair
          (list_size (int_bound 200) (int_bound 1000))
          (list_size (int_bound 200) (int_bound 1000)))
      (fun (first, second) ->
        (* Grow from minimal capacity, clear, then reuse: the second batch
           must sort correctly and ties stay FIFO by the new seqs. *)
        let q = Pqueue.create ~capacity:1 () in
        List.iter (fun t -> Pqueue.push q ~time:t t) first;
        Pqueue.clear q;
        Pqueue.is_empty q
        &&
        (List.iter (fun t -> Pqueue.push q ~time:t t) second;
         List.map fst (drain_min q) = List.sort compare second));
  ]

let pqueue_interleaved () =
  (* Interleave pushes and pops; popped times must be non-decreasing given
     pushes never go into the past. *)
  let rng = Rng.create ~seed:3 in
  let q = Pqueue.create () in
  let now = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool rng || Pqueue.is_empty q then
      Pqueue.push q ~time:(!now + Rng.int rng 50) ()
    else begin
      let t, () = Option.get (Pqueue.pop q) in
      Alcotest.(check bool) "monotone" true (t >= !now);
      now := t
    end
  done

(* ----- Rng ---------------------------------------------------------------- *)

let rng_determinism () =
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let rng_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17);
    let w = Rng.int_in r ~lo:(-3) ~hi:4 in
    check_bool "int_in range" true (w >= -3 && w <= 4);
    let f = Rng.float r 2.5 in
    check_bool "float range" true (f >= 0.0 && f < 2.5)
  done

let rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  check_bool "streams differ" true (xs <> ys)

let rng_shuffle_permutes () =
  let r = Rng.create ~seed:11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let rng_geometric () =
  let r = Rng.create ~seed:13 in
  let n = 5000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.geometric r ~p:0.5
  done;
  (* Mean of Geometric(0.5) failures-before-success is 1. *)
  let mean = float_of_int !total /. float_of_int n in
  check_bool "mean near 1" true (mean > 0.8 && mean < 1.2)

(* ----- Stats ---------------------------------------------------------------- *)

let stats_counters () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 40;
  check_int "a" 2 (Stats.get s "a");
  check_int "b" 40 (Stats.get s "b");
  check_int "missing" 0 (Stats.get s "zzz");
  Stats.set_max s "m" 5;
  Stats.set_max s "m" 3;
  check_int "max keeps" 5 (Stats.get s "m")

let stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a "x" 1;
  Stats.add b "x" 2;
  let dst = Stats.create () in
  Stats.merge_into ~dst ~prefix:"one" a;
  Stats.merge_into ~dst ~prefix:"two" b;
  check_int "one.x" 1 (Stats.get dst "one.x");
  check_int "two.x" 2 (Stats.get dst "two.x");
  Alcotest.(check (list string)) "names sorted" [ "one.x"; "two.x" ] (Stats.names dst)

let stats_merge_max () =
  (* Regression: [merge_into] used to fold every counter with [add], so a
     [set_max] high-water mark merged on top of an existing value summed
     the two maxima — reporting an occupancy that never occurred.  Max
     counters must combine with max, and stay max-tagged in the
     destination for further merges. *)
  let a = Stats.create () and b = Stats.create () in
  Stats.set_max a "mshr.hwm" 7;
  Stats.add a "ops" 10;
  Stats.set_max b "mshr.hwm" 4;
  Stats.add b "ops" 5;
  let dst = Stats.create () in
  Stats.merge_into ~dst ~prefix:"l1" a;
  Stats.merge_into ~dst ~prefix:"l1" b;
  check_int "max of maxima, not sum" 7 (Stats.get dst "l1.mshr.hwm");
  check_int "additive still sums" 15 (Stats.get dst "l1.ops");
  (* The merged slot keeps the tag: a second-level merge is still max. *)
  let top = Stats.create () in
  Stats.merge_into ~dst:top ~prefix:"sys" dst;
  Stats.merge_into ~dst:top ~prefix:"sys" dst;
  check_int "re-merge stays max" 7 (Stats.get top "sys.l1.mshr.hwm");
  check_int "re-merge sums additive" 30 (Stats.get top "sys.l1.ops");
  (* Interned-key path tags the slot the same way. *)
  let c = Stats.create () in
  let k = Stats.key c "depth" in
  Stats.max_key c k 9;
  let d = Stats.create () in
  Stats.set_max d "depth" 6;
  let m = Stats.create () in
  Stats.merge_into ~dst:m ~prefix:"q" c;
  Stats.merge_into ~dst:m ~prefix:"q" d;
  check_int "max_key tags too" 9 (Stats.get m "q.depth")

let stats_interned_visibility () =
  let s = Stats.create () in
  let k = Stats.key s "quiet" in
  Alcotest.(check (list string)) "interned but untouched" [] (Stats.names s);
  Stats.bump s k;
  Alcotest.(check (list string)) "touched" [ "quiet" ] (Stats.names s);
  check_int "value" 1 (Stats.get s "quiet");
  check_bool "same slot on re-intern" true (Stats.key s "quiet" = k);
  Stats.incr s "quiet";
  check_int "string api shares the slot" 2 (Stats.get s "quiet")

let stats_get_prefixed () =
  let a = Stats.create () in
  Stats.add a "x.y" 3;
  let dst = Stats.create () in
  Stats.merge_into ~dst ~prefix:"n" a;
  check_int "get_prefixed" 3 (Stats.get_prefixed dst ~prefix:"n" "x.y");
  check_int "absent" 0 (Stats.get_prefixed dst ~prefix:"m" "x.y")

let stats_interned_agrees =
  (* The interned-key fast path and the string API must be observationally
     identical: same counters, same values, same visibility. *)
  QCheck2.Test.make ~name:"stats_interned_agrees"
    QCheck2.Gen.(list_size (int_bound 200) (pair (int_bound 4) (int_bound 20)))
    (fun ops ->
      let names = [| "alpha"; "beta"; "gamma"; "delta"; "eps" |] in
      let via_string = Stats.create () in
      let via_key = Stats.create () in
      let keys = Array.map (fun n -> Stats.key via_key n) names in
      List.iter
        (fun (i, v) ->
          Stats.add via_string names.(i) v;
          Stats.bump_by via_key keys.(i) v)
        ops;
      Stats.to_assoc via_string = Stats.to_assoc via_key
      && Stats.names via_string = Stats.names via_key
      && Array.for_all
           (fun n -> Stats.get via_string n = Stats.get via_key n)
           names)

let tests =
  [
    test "mask_basics" mask_basics;
    test "mask_iter_order" mask_iter_order;
    test "mask_pp" mask_pp;
    test "pqueue_ordering" pqueue_ordering;
    test "pqueue_fifo_ties" pqueue_fifo_ties;
    test "pqueue_alloc_free_api" pqueue_alloc_free_api;
    test "pqueue_interleaved" pqueue_interleaved;
    test "rng_determinism" rng_determinism;
    test "rng_bounds" rng_bounds;
    test "rng_split_independent" rng_split_independent;
    test "rng_shuffle_permutes" rng_shuffle_permutes;
    test "rng_geometric" rng_geometric;
    test "stats_counters" stats_counters;
    test "stats_merge" stats_merge;
    test "stats_merge_max" stats_merge_max;
    test "stats_interned_visibility" stats_interned_visibility;
    test "stats_get_prefixed" stats_get_prefixed;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      (mask_props @ mask_model_props @ [ pqueue_prop ] @ pqueue_props
      @ [ stats_interned_agrees ])
