(* Bit-identity of the chassis-backed L1s against the pre-refactor seed.

   The golden file (chassis_golden.expected) was generated from the tree
   *before* the four protocol modules were rebuilt on lib/l1's Chassis and
   Policy layers; every digest folds in everything a run reports — cycles,
   flits, per-category traffic, messages, events, checks, failures and the
   full merged stats — and, for traced cells, the exported JSONL trace
   stream and the per-request-class latency histograms.  Any drift in event
   ordering, stats naming, trace emission or latency bucketing shows up as
   a digest mismatch on the exact (workload, config) cell that diverged.

   Regenerate (only when a change is *meant* to alter simulation results):

     SPANDEX_CHASSIS_GOLDEN=$PWD/test/chassis_golden.expected \
       dune exec test/test_main.exe -- test chassis *)

module Msg = Spandex_proto.Msg
module Stats = Spandex_util.Stats
module Hist = Spandex_util.Hist
module Trace = Spandex_sim.Trace
module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Sweep = Spandex_system.Sweep
module Registry = Spandex_workloads.Registry

let test = Helpers.test

let non_stress_names =
  List.filter_map
    (fun e -> if e.Registry.kind = `Stress then None else Some e.Registry.name)
    Registry.entries

(* The seed configurations the goldens cover: the paper's six plus SDA,
   whose adaptive-write behaviour predates the policy layer and must be
   reproduced by it exactly.  (SAA is new in the policy layer and has no
   pre-refactor reference.) *)
let golden_configs = Config.all @ [ Config.sda ]

let matrix ~params names =
  let geom = Registry.geometry_of_params params in
  List.concat_map
    (fun n ->
      let wl = (Registry.find n).Registry.build ~scale:0.25 geom in
      List.map
        (fun config -> { Sweep.label = n; params; config; workload = wl })
        golden_configs)
    names

let add_result b (r : Run.result) =
  Buffer.add_string b
    (Printf.sprintf "cycles=%d flits=%d msgs=%d events=%d checks=%d fails=%d\n"
       r.Run.cycles r.Run.total_flits r.Run.messages r.Run.events r.Run.checks
       (List.length r.Run.failures));
  List.iter
    (fun (c, n) ->
      Buffer.add_string b (Printf.sprintf "traffic.%s=%d\n" (Msg.category_name c) n))
    r.Run.traffic;
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%s=%d\n" name v))
    (Stats.to_assoc r.Run.stats)

let add_latency b (r : Run.result) =
  List.iter
    (fun (cls, (s : Hist.summary)) ->
      Buffer.add_string b
        (Printf.sprintf "latency.%s count=%d p50=%d p90=%d p99=%d max=%d\n" cls
           s.Hist.count s.Hist.p50 s.Hist.p90 s.Hist.p99 s.Hist.max))
    r.Run.latency

let add_trace b (r : Run.result) =
  Trace.export_jsonl r.Run.trace
    ~device_name:(fun id -> r.Run.device_names.(id))
    b

let digest ~traced (r : Run.result) =
  let b = Buffer.create 8192 in
  add_result b r;
  if traced then begin
    add_latency b r;
    add_trace b r
  end;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* One golden line per cell: "<mode> <workload> <config> <md5>". *)
let lines_for ~mode ~traced cells =
  let results = Sweep.simulate_all ~jobs:1 cells in
  List.map2
    (fun (j : Sweep.job) r ->
      Printf.sprintf "%s %s %s %s" mode j.Sweep.label j.Sweep.config.Config.name
        (digest ~traced r))
    cells results

let traced_params =
  { Params.bench with Params.trace = Some Trace.default_spec }

let fault_params =
  let fault =
    Spandex_net.Fault.uniform ~drop:0.02 ~dup:0.01 ~delay:0.03 ~reorder:0.03
      ~seed:7 ()
  in
  { Params.bench with Params.fault = Some fault }

let all_lines () =
  lines_for ~mode:"untraced" ~traced:false
    (matrix ~params:Params.bench non_stress_names)
  @ lines_for ~mode:"traced" ~traced:true
      (matrix ~params:traced_params [ "rsct"; "tqh"; "bc" ])
  @ lines_for ~mode:"fault" ~traced:false (matrix ~params:fault_params [ "tqh" ])

(* `dune runtest` runs the binary in the test directory; `dune exec` from
   the project root does not. *)
let golden_file =
  if Sys.file_exists "chassis_golden.expected" then "chassis_golden.expected"
  else "test/chassis_golden.expected"

let read_golden () =
  let ic = open_in golden_file in
  let rec go acc =
    match input_line ic with
    | line -> go (if line = "" then acc else line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let bit_identical_to_seed () =
  let lines = all_lines () in
  match Sys.getenv_opt "SPANDEX_CHASSIS_GOLDEN" with
  | Some path ->
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    Printf.printf "wrote %d golden digests to %s\n" (List.length lines) path
  | None ->
    let expected = read_golden () in
    Alcotest.(check int)
      "golden cell count" (List.length expected) (List.length lines);
    List.iter2
      (fun want got ->
        if want <> got then
          Alcotest.failf "digest drift:\n  expected %s\n  got      %s" want got)
      expected lines

let tests = [ test "bit_identical_to_seed" bit_identical_to_seed ]
