(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md §5 for the index), then runs Bechamel
   microbenchmarks of the protocol primitives (§III-F overheads).

   Absolute numbers come from our event-driven model, not the authors'
   Simics/GEMS/GPGPU-Sim testbed; the comparisons are normalized to HMG as
   in the paper, and the shapes — who wins, roughly by how much — are the
   reproduction target (EXPERIMENTS.md records paper-vs-measured). *)

module Msg = Spandex_proto.Msg
module Config = Spandex_system.Config
module Params = Spandex_system.Params
module Run = Spandex_system.Run
module Sweep = Spandex_system.Sweep
module Report = Spandex_system.Report
module Registry = Spandex_workloads.Registry
module Microbench = Spandex_workloads.Microbench
module Apps = Spandex_workloads.Apps

let params = Params.bench
let geometry = Registry.geometry_of_params params

(* Worker domains for the sweeps below; every simulation is independent and
   [Sweep.map] returns results in submission order, so the printed tables
   are identical for any value (test/test_sweep.ml asserts this). *)
let jobs = ref (Sweep.default_jobs ())

let () =
  Arg.parse
    [
      ( "--jobs",
        Arg.Set_int jobs,
        "N  worker domains for simulation sweeps (default: cores - 1)" );
    ]
    (fun a -> raise (Arg.Bad ("unknown argument: " ^ a)))
    "spandex_bench [--jobs N]"

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ----- Table I: coherence strategy classification -------------------------- *)

let table1 () =
  section "Table I: Coherence strategy classification";
  Printf.printf "%-14s %-18s %-18s %s\n" "Strategy" "Stale invalidation"
    "Write propagation" "Granularity";
  Printf.printf "%-14s %-18s %-18s %s\n" "MESI" "writer-invalidate" "ownership"
    "line";
  Printf.printf "%-14s %-18s %-18s %s\n" "GPU coherence" "self-invalidate"
    "write-through" "loads: line, stores: word";
  Printf.printf "%-14s %-18s %-18s %s\n" "DeNovo" "self-invalidate"
    "ownership" "loads: flexible, stores: word"

(* ----- Table II: observed request generation per device protocol ----------- *)

(* Not a static table: run one tiny single-device scenario per protocol and
   report the request kinds its L1 actually put on the network. *)
let table2 () =
  section "Table II: Requests generated per device protocol (observed)";
  let program =
    [|
      Spandex_device.Ops.Load (Spandex_proto.Addr.make ~line:1 ~word:0);
      Spandex_device.Ops.Store (Spandex_proto.Addr.make ~line:2 ~word:3, 42);
      Spandex_device.Ops.Rmw
        (Spandex_proto.Addr.make ~line:3 ~word:1, Spandex_proto.Amo.Add 1);
      Spandex_device.Ops.Release;
    |]
  in
  let observe ~name ~config ~gpu_side =
    let wl =
      {
        Spandex_system.Workload.name = "table2";
        cpu_programs = (if gpu_side then [||] else [| program |]);
        gpu_programs = (if gpu_side then [| [| program |] |] else [||]);
        barrier_parties = [||];
        region_of = (fun _ -> 0);
      }
    in
    let r = Run.simulate ~params ~config wl in
    let reqs =
      Spandex_util.Stats.to_assoc r.Run.stats
      |> List.filter_map (fun (k, v) ->
             if v > 0 && String.length k > 7 && String.sub k 0 4 = "net." then
               let s = String.sub k 4 (String.length k - 4) in
               if String.length s >= 3 && String.sub s 0 3 = "Req" then Some s
               else None
             else None)
      |> List.sort_uniq String.compare
    in
    Printf.printf "%-14s load/store/RMW/eviction emit: %s\n" name
      (String.concat ", " reqs)
  in
  observe ~name:"GPU coherence" ~config:Config.smg ~gpu_side:true;
  observe ~name:"DeNovo" ~config:Config.sdd ~gpu_side:true;
  observe ~name:"MESI" ~config:Config.smg ~gpu_side:false

(* ----- Tables III & IV: implemented transition logic ----------------------- *)

let table3 () =
  section "Table III: Spandex LLC transitions (as implemented in Spandex.Llc)";
  List.iter
    (fun (req, next, fwd) ->
      Printf.printf "%-13s next=%-3s fwd_to_owner=%s\n" req next fwd)
    [
      ("ReqV", "-", "ReqV");
      ("ReqS (1)", "S", "ReqS (blocking write-back)");
      ("ReqS (3)", "O", "ReqO+data");
      ("ReqWT", "V", "ReqO (revoke, no data)");
      ("ReqO", "O", "ReqO");
      ("ReqWT+data", "V", "RvkO (blocking write-back)");
      ("ReqO+data", "O", "ReqO+data");
      ("ReqWB(owner)", "V", "-");
      ("ReqWB(other)", "-", "- (acknowledged, dropped)");
    ];
  Printf.printf "(asserted by unit tests in test/test_llc.ml)\n"

let table4 () =
  section "Table IV: device transitions on external requests (as implemented)";
  List.iter
    (fun (req, exp, next, rsp) ->
      Printf.printf "%-10s expected=%-2s next=%-2s response=%s\n" req exp next
        rsp)
    [
      ("ReqV", "O", "O", "RspV to requestor (Nack if no longer owner)");
      ("ReqO", "O", "I", "RspO to requestor");
      ("ReqO+data", "O", "I", "RspO+data to requestor");
      ("RvkO", "O", "I", "RspRvkO to LLC");
      ("Inv", "S", "I", "Ack to LLC (silently acked in other states)");
      ("ReqS", "O", "S", "RspS to requestor + RspRvkO to LLC");
    ];
  Printf.printf "(asserted by unit tests in test/test_devices.ml)\n"

(* ----- Tables V-VII --------------------------------------------------------- *)

let table5 () =
  section "Table V: simulated cache configurations";
  List.iter (fun c -> Printf.printf "%s\n" (Config.describe c)) Config.all

let table6 () =
  section "Table VI: system parameters (scaled; DESIGN.md par.5)";
  Format.printf "%a@." Params.pp params

let table7 () =
  section "Table VII: collaborative application characterization";
  Printf.printf "%-6s %-6s %-12s %-13s %s\n" "App" "Part." "Sync" "Sharing"
    "Locality";
  List.iter
    (fun (n, p, s, sh, l) ->
      Printf.printf "%-6s %-6s %-12s %-13s %s\n" n p s sh l)
    [
      ("BC", "data", "fine-grain", "flat", "atomics: high");
      ("PR", "data", "coarse-grain", "flat", "data: moderate");
      ("HSTI", "data", "fine-grain", "flat", "data: low, atomics: high");
      ("TRNS", "data", "fine-grain", "flat", "low");
      ("RSCT", "task", "fine-grain", "hierarchical", "data: high, atomics: low");
      ("TQH", "task", "fine-grain", "hierarchical", "data: low, atomics: high");
    ]

(* ----- Figures 2 and 3 ------------------------------------------------------- *)

(* One job per (workload x config) cell, fanned out across domains; the
   flat result list is regrouped into rows in submission order. *)
let run_rows benches =
  let cells =
    List.concat_map
      (fun (name, build) ->
        let wl = build ?scale:(Some 1.0) geometry in
        List.map
          (fun config ->
            { Sweep.label = name; params; config; workload = wl })
          Config.all)
      benches
  in
  let results = Array.of_list (Sweep.simulate_all ~jobs:!jobs cells) in
  Array.iter Run.assert_clean results;
  let ncfg = List.length Config.all in
  List.mapi
    (fun i (name, _) ->
      let cells =
        List.mapi
          (fun j config ->
            {
              Report.config = config.Config.name;
              result = results.((i * ncfg) + j);
            })
          Config.all
      in
      { Report.workload = name; cells })
    benches

let print_row (row : Report.row) =
  let times = Report.normalized row ~metric:Report.cycles in
  let traffics = Report.normalized row ~metric:Report.flits in
  Printf.printf "%-12s time    " row.Report.workload;
  List.iter (fun (c, v) -> Printf.printf "%s=%.2f " c v) times;
  Printf.printf "\n%-12s traffic " "";
  List.iter (fun (c, v) -> Printf.printf "%s=%.2f " c v) traffics;
  Printf.printf "\n";
  List.iter
    (fun (cell : Report.cell) ->
      Printf.printf "  %s flits by category: " cell.Report.config;
      List.iter
        (fun (cat, share) ->
          if share > 0.005 then
            Printf.printf "%s=%.0f%% " (Msg.category_name cat)
              (100.0 *. share))
        (Report.traffic_share cell.Report.result);
      Printf.printf "(total %d)\n" cell.Report.result.Run.total_flits)
    row.Report.cells

let figure benches title =
  section title;
  let rows = run_rows benches in
  List.iter print_row rows;
  rows

let summary ~label ~paper rows =
  section (Printf.sprintf "%s (paper: %s)" label paper);
  let h = Report.headline rows in
  Printf.printf
    "execution time reduction: avg %.0f%% (max %.0f%%)\n\
     network traffic reduction: avg %.0f%% (max %.0f%%)\n"
    (100.0 *. h.Report.time_avg)
    (100.0 *. h.Report.time_max)
    (100.0 *. h.Report.traffic_avg)
    (100.0 *. h.Report.traffic_max);
  List.iter
    (fun (row : Report.row) ->
      let is c name = String.length name > 0 && name.[0] = c in
      let hb = Report.best row ~among:(is 'H') ~metric:Report.cycles in
      let sb = Report.best row ~among:(is 'S') ~metric:Report.cycles in
      Printf.printf "  %-12s Hbest=%s (%d cyc, %d flits)  Sbest=%s (%d cyc, %d flits)\n"
        row.Report.workload hb.Report.config hb.Report.result.Run.cycles
        hb.Report.result.Run.total_flits sb.Report.config
        sb.Report.result.Run.cycles sb.Report.result.Run.total_flits)
    rows

(* ----- III-F: storage-overhead accounting ------------------------------------- *)

(* The paper argues Spandex's word-granularity ownership costs one state
   bit per word (owner IDs live in the data field of owned words) versus a
   line-granularity MESI directory's sharer vector, and that a state-only
   Spandex LLC cannot match a state-only directory.  Compute both for the
   simulated geometry. *)
let overheads () =
  section "III-F: coherence-state storage per LLC line (this geometry)";
  let devices = params.Params.cpu_cores + params.Params.gpu_cus in
  let words = Spandex_proto.Addr.words_per_line in
  let spandex_bits =
    (* 2 line-state bits + 1 owned bit per word; owner IDs reuse the data
       field of owned words. *)
    2 + words
  in
  let mesi_dir_bits =
    (* 2-3 state bits + a full sharer bit-vector. *)
    3 + devices
  in
  let owner_id_bits = int_of_float (ceil (log (float_of_int devices) /. log 2.0)) in
  let state_only_spandex = 2 + (words * (1 + owner_id_bits)) in
  Printf.printf
    "  devices=%d, words/line=%d\n\
    \  Spandex LLC (inclusive, IDs in data field): %d bits/line\n\
    \  MESI directory (line granularity):          %d bits/line\n\
    \  state-only Spandex (IDs in state):          %d bits/line  (cannot match\n\
    \    a state-only directory, as III-F notes)\n"
    devices words spandex_bits mesi_dir_bits state_only_spandex;
  Printf.printf
    "  request vocabulary: %d request kinds -> %d message-id bits (MESI-style\n\
    \  protocols need >= 3; at most one extra bit, as III-F claims)\n"
    7
    (int_of_float (ceil (log 16.0 /. log 2.0)))

(* ----- Ablations of the design choices DESIGN.md calls out -------------------- *)

let run_with ~params ~config wl =
  let r = Run.simulate ~params ~config wl in
  Run.assert_clean r;
  r

(* Run an ablation's simulations across domains, keeping the print loop
   sequential: [points] describes each simulation, [show] consumes the
   results in submission order. *)
let sweep_with points ~sim ~show =
  let results = Array.of_list (Sweep.map ~jobs:!jobs sim points) in
  show results

let ablation_regions () =
  section "Ablation: DeNovo regions (paper II-C selective self-invalidation)";
  Printf.printf
    "region-selective acquires preserve read-only data in self-invalidating\n\
     caches; writer-invalidated (MESI) configurations are unaffected.\n";
  let configs = [ Config.smg; Config.sdg; Config.sdd ] in
  let points =
    List.concat_map
      (fun config -> [ (config, true); (config, false) ])
      configs
  in
  sweep_with points
    ~sim:(fun (config, use_regions) ->
      run_with ~params ~config
        (Microbench.region_reuse ~scale:1.0 ~use_regions geometry))
    ~show:(fun results ->
      List.iteri
        (fun i config ->
          let with_r = results.(2 * i) in
          let without = results.((2 * i) + 1) in
          Printf.printf
            "  %-4s full-flush: %7d cyc %8d flits | regions: %7d cyc %8d flits \
             (%.0f%% time, %.0f%% traffic)\n"
            config.Config.name without.Run.cycles without.Run.total_flits
            with_r.Run.cycles with_r.Run.total_flits
            (100.0
            *. (1.0 -. float_of_int with_r.Run.cycles /. float_of_int without.Run.cycles))
            (100.0
            *. (1.0
               -. float_of_int with_r.Run.total_flits
                  /. float_of_int without.Run.total_flits)))
        configs)

let ablation_reqs_policy () =
  section "Ablation: ReqS handling options (1)/(2)/(3) (paper III-B, Table III)";
  Printf.printf
    "ReuseS on SMD, where MESI CPU reads hit the flat Spandex LLC:\n";
  let wl = Microbench.reuses ~scale:1.0 geometry in
  let points =
    [
      ("auto (paper's evaluation)", Spandex.Llc.Reqs_auto);
      ("always option 1 (Shared)", Spandex.Llc.Reqs_shared);
      ("always option 2 (Valid)", Spandex.Llc.Reqs_valid);
      ("always option 3 (Owned)", Spandex.Llc.Reqs_owned);
    ]
  in
  sweep_with points
    ~sim:(fun (_, policy) ->
      let p = { params with Params.reqs_policy = policy } in
      run_with ~params:p ~config:Config.smd wl)
    ~show:(fun results ->
      List.iteri
        (fun i (name, _) ->
          let r = results.(i) in
          Printf.printf "  %-28s %7d cyc %8d flits\n" name r.Run.cycles
            r.Run.total_flits)
        points)

let ablation_llc_banks () =
  section "Ablation: LLC bank-level parallelism (Table VI NUCA banks)";
  Printf.printf "indirection on SMG: all 40 cores hammer the flat LLC.\n";
  let wl = Microbench.indirection ~scale:1.0 geometry in
  let points = [ 1; 2; 4; 8 ] in
  sweep_with points
    ~sim:(fun banks ->
      let p = { params with Params.llc_banks = banks } in
      run_with ~params:p ~config:Config.smg wl)
    ~show:(fun results ->
      List.iteri
        (fun i banks ->
          let r = results.(i) in
          Printf.printf "  %2d bank(s): %8d cyc %9d flits\n" banks r.Run.cycles
            r.Run.total_flits)
        points)

let ablation_coalescing () =
  section "Ablation: store-buffer coalescing window (paper II-B coalescing)";
  Printf.printf "reuseo on SMG: streaming write-throughs from the GPU.\n";
  let wl = Microbench.reuseo ~scale:1.0 geometry in
  let points = [ 1; 6; 16 ] in
  sweep_with points
    ~sim:(fun window ->
      let p = { params with Params.coalesce_window = window } in
      run_with ~params:p ~config:Config.smg wl)
    ~show:(fun results ->
      List.iteri
        (fun i window ->
          let r = results.(i) in
          Printf.printf "  window %2d: %8d cyc %9d flits\n" window r.Run.cycles
            r.Run.total_flits)
        points)

let extension_adaptive () =
  section "Extension: adaptive write policy (paper V's dynamically-adapting caches)";
  Printf.printf
    "SDA = SDD with a per-line reuse predictor choosing ReqO vs ReqWT per\n\
     store; SAA adds read-side adaptation (repeatedly missed lines promote\n\
     ReqV to ReqO+data).  The goal is to track the better static policy\n\
     per workload.\n";
  let wnames = [ "reuseo"; "bc"; "indirection" ] in
  let configs = [ Config.sdg; Config.sdd; Config.sda; Config.saa ] in
  let points =
    List.concat_map
      (fun wname ->
        let wl = (Registry.find wname).Registry.build ~scale:1.0 geometry in
        List.map (fun config -> (wname, config, wl)) configs)
      wnames
  in
  sweep_with points
    ~sim:(fun (_, config, wl) -> run_with ~params ~config wl)
    ~show:(fun results ->
      let ncfg = List.length configs in
      List.iteri
        (fun i wname ->
          Printf.printf "  %-12s" wname;
          List.iteri
            (fun j config ->
              let r = results.((i * ncfg) + j) in
              Printf.printf " %s: %7d cyc %8d flits |" config.Config.name
                r.Run.cycles r.Run.total_flits)
            configs;
          Printf.printf "\n")
        wnames)

let ablation_hierarchy_distance () =
  section "Ablation: hierarchy distance (cross-cluster hop latency)";
  Printf.printf
    "indirection, HMG vs SMG: the hierarchical penalty grows with the\n\
     CPU<->GPU distance its indirection must round-trip.\n";
  let wl = Microbench.indirection ~scale:0.5 geometry in
  let crosses = [ 8; 16; 32; 64 ] in
  let points =
    List.concat_map
      (fun cross -> [ (cross, Config.hmg); (cross, Config.smg) ])
      crosses
  in
  sweep_with points
    ~sim:(fun (cross, config) ->
      let p = { params with Params.cross_net_latency = cross } in
      run_with ~params:p ~config wl)
    ~show:(fun results ->
      List.iteri
        (fun i cross ->
          let h = results.(2 * i) in
          let s = results.((2 * i) + 1) in
          Printf.printf
            "  cross=%2d: HMG %7d cyc | SMG %7d cyc | Spandex %.0f%% faster\n"
            cross h.Run.cycles s.Run.cycles
            (100.0
            *. (1.0 -. float_of_int s.Run.cycles /. float_of_int h.Run.cycles)))
        crosses)

let ablations () =
  ablation_regions ();
  ablation_hierarchy_distance ();
  ablation_reqs_policy ();
  ablation_llc_banks ();
  ablation_coalescing ();
  extension_adaptive ()

(* ----- Bechamel microbenchmarks of protocol primitives ----------------------- *)

let bechamel_suite () =
  section "Bechamel: protocol-primitive costs (Spandex overheads, cf. III-F)";
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"mask_fold_owner_words"
        (Staged.stage (fun () ->
             Spandex_util.Mask.fold 0b1010_1100_0011_0101 ~init:0
               ~f:(fun acc w -> acc + w)));
      Test.make ~name:"tu_absorb_two_partial_rsps"
        (Staged.stage (fun () ->
             let t = Spandex.Tu.create ~demand:Spandex_proto.Addr.full_mask in
             let mk mask =
               Msg.make ~txn:1 ~kind:(Msg.Rsp Msg.RspV) ~line:0 ~mask
                 ~payload:
                   (Msg.Data (Array.make (Spandex_util.Mask.count mask) 7))
                 ~src:0 ~dst:1 ()
             in
             ignore (Spandex.Tu.absorb t (mk 0x00FF));
             ignore (Spandex.Tu.absorb t (mk 0xFF00))));
      Test.make ~name:"cache_frame_fill_and_probe"
        (Staged.stage (fun () ->
             let f = Spandex_mem.Cache_frame.create ~sets:16 ~ways:4 in
             for i = 0 to 63 do
               ignore
                 (Spandex_mem.Cache_frame.insert f ~line:i i
                    ~can_evict:(fun ~line:_ _ -> true))
             done;
             ignore (Spandex_mem.Cache_frame.find f ~line:42)));
      Test.make ~name:"one_phase_system_run"
        (Staged.stage (fun () ->
             let wl =
               Spandex_workloads.Stress.generate
                 {
                   Spandex_workloads.Stress.default_spec with
                   phases = 1;
                   words = 64;
                 }
                 { Microbench.cpus = 2; cus = 1; warps = 2 }
             in
             let p =
               {
                 Params.small with
                 Params.cpu_cores = 2;
                 gpu_cus = 1;
                 warps_per_cu = 2;
               }
             in
             ignore (Run.simulate ~params:p ~config:Config.sdd wl)));
    ]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~kde:None ())
          [ clock ] test
      in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.OLS.estimates (Analyze.one ols clock raw) with
          | Some [ est ] -> Printf.printf "  %-30s %14.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-30s (no estimate)\n" name)
        results)
    tests

let () =
  Printf.printf "Spandex reproduction harness (Alsop, Sinclair, Adve - ISCA 2018)\n";
  table1 ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  table6 ();
  table7 ();
  let micro_rows =
    figure Microbench.all "Figure 2: synthetic microbenchmarks (normalized to HMG)"
  in
  let app_rows =
    figure Apps.all "Figure 3: collaborative applications (normalized to HMG)"
  in
  summary micro_rows ~label:"Microbenchmark headline"
    ~paper:"Sbest vs Hbest avg 18% time / 40% traffic";
  summary app_rows ~label:"Application headline"
    ~paper:"Sbest vs Hbest avg 16% time / 27% traffic";
  overheads ();
  ablations ();
  bechamel_suite ();
  Printf.printf "\ndone.\n"
