#!/bin/sh
# Run the exhaustive model checker over every litmus case on every cache
# configuration — with and without fault choice points — and compare the
# explored-state counts against the committed baseline.
#
#   bench/check_states.sh [baseline.txt]
#
# Fails when:
#   - any exploration reports a violation (the checker writes the
#     counterexample JSONL next to the working directory; CI uploads it),
#   - any exploration is truncated (the budget no longer covers the space),
#   - the explored-state count of any (case, config, mode) cell differs
#     from the baseline at all.  The search is deterministic, so drift
#     means the reachable state space itself changed: either a protocol
#     change (regenerate the baseline deliberately) or a reduction bug.
#
# Refresh the baseline with:
#   bench/check_states.sh --regen
set -eu

cli="dune exec bin/spandex_cli.exe --"
baseline=$(dirname "$0")/check_states_baseline.txt
regen=0
if [ "${1:-}" = "--regen" ]; then
  regen=1
elif [ -n "${1:-}" ]; then
  baseline=$1
fi

out=$(mktemp)
trap 'rm -f "$out"' EXIT

status=0
for cfg in HMG HMD SMG SMD SDG SDD; do
  for mode in plain faults; do
    flags=""
    [ "$mode" = "faults" ] && flags="--faults"
    if ! $cli check -c "$cfg" --cpus 2 $flags --budget-secs 120 >"$out.run" 2>&1
    then
      echo "FAIL: violation or error on $cfg ($mode):" >&2
      cat "$out.run" >&2
      status=1
    fi
    if grep -q TRUNCATED "$out.run"; then
      echo "FAIL: truncated exploration on $cfg ($mode):" >&2
      cat "$out.run" >&2
      status=1
    fi
    # "<case> <config> <mode> <states>" per cell, for the drift diff.
    awk -v mode="$mode" '$3 ~ /^states=/ {
      split($3, a, "="); print $1, $2, mode, a[2]
    }' "$out.run" >>"$out"
  done
done
rm -f "$out.run"
[ $status -eq 0 ] || exit $status

if [ "$regen" = 1 ]; then
  cp "$out" "$(dirname "$0")/check_states_baseline.txt"
  echo "wrote $(wc -l <"$out") cells to $(dirname "$0")/check_states_baseline.txt"
  exit 0
fi

if ! diff -u "$baseline" "$out"; then
  echo "FAIL: explored-state counts drifted from $baseline — the reachable" >&2
  echo "state space changed; regenerate with bench/check_states.sh --regen" >&2
  echo "if the change is intended" >&2
  exit 1
fi
echo "model-check states: $(wc -l <"$out") cells match the baseline"
