#!/bin/sh
# Compare a fresh bench report against the committed CI baseline.
#
#   bench/check_perf.sh <report.json> [baseline.json]
#
# Fails when:
#   - the report's sequential events/sec regresses more than 25% below the
#     baseline (guards the scheduler hot path against accidental slowdowns;
#     the slack absorbs runner-to-runner noise), or
#   - the total event count differs from the baseline at all (the sweep is
#     deterministic, so any drift means the simulation itself changed and
#     the baseline must be regenerated deliberately), or
#   - the report's sequential/parallel results were not bit-identical, or
#   - the report's traced verification run diverged from the untraced one
#     (schema spandex-bench-sweep/3 runs one cell with the transaction
#     trace enabled and asserts bit-identical results).
#
# Refresh the baseline with:
#   dune exec bin/spandex_cli.exe -- bench --jobs 2 --scale 0.25 \
#     --workloads rsct,tqh,bc -o bench/ci_baseline.json
set -eu

report=${1:?usage: check_perf.sh <report.json> [baseline.json]}
baseline=${2:-$(dirname "$0")/ci_baseline.json}

python3 - "$report" "$baseline" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
baseline = json.load(open(sys.argv[2]))

failures = []

if not report.get("identical", False):
    failures.append("sequential and parallel sweeps were not bit-identical")

# Schema v3 reports carry a traced verification run; older baselines may
# not, so only the report is checked.
if "trace_identical" in report and not report["trace_identical"]:
    failures.append("traced run diverged from the untraced run")

if report["total_events"] != baseline["total_events"]:
    failures.append(
        "total_events drifted: baseline %d, report %d — the simulation "
        "changed; regenerate bench/ci_baseline.json if intended"
        % (baseline["total_events"], report["total_events"])
    )

# total_events covers the paper's six baseline configurations; reports and
# baselines that sweep the extended set (SDA, SAA) also carry the full
# total, compared when both sides have it.
if "total_events_extended" in report and "total_events_extended" in baseline:
    if report["total_events_extended"] != baseline["total_events_extended"]:
        failures.append(
            "total_events_extended drifted: baseline %d, report %d"
            % (
                baseline["total_events_extended"],
                report["total_events_extended"],
            )
        )

base = baseline["events_per_sec_sequential"]
got = report["events_per_sec_sequential"]
floor = 0.75 * base
print(
    "perf: %d events/sec sequential (baseline %d, floor %d)"
    % (got, base, floor)
)
if got < floor:
    failures.append(
        "events/sec regressed >25%%: %d < %d (baseline %d)" % (got, floor, base)
    )

if failures:
    for f in failures:
        print("FAIL: " + f, file=sys.stderr)
    sys.exit(1)
print("perf check passed")
EOF
