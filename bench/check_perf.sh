#!/bin/sh
# Compare a fresh bench report against the committed CI baseline.
#
#   bench/check_perf.sh <report.json> [baseline.json]
#
# Fails when:
#   - the report's sequential events/sec regresses more than 25% below the
#     baseline (guards the scheduler hot path against accidental slowdowns;
#     the slack absorbs runner-to-runner noise), or
#   - the total event count differs from the baseline at all (the sweep is
#     deterministic, so any drift means the simulation itself changed and
#     the baseline must be regenerated deliberately), or
#   - the report's sequential/parallel results were not bit-identical, or
#   - the report's traced verification run diverged from the untraced one
#     (schema spandex-bench-sweep/3 runs one cell with the transaction
#     trace enabled and asserts bit-identical results), or
#   - the report's minor_words_per_event exceeds the baseline's by more
#     than 10% (guards the allocation diet on the message/event path; the
#     counters are deterministic, the slack only absorbs GC-version noise), or
#   - the parallel sweep was slower than the sequential one (speedup < 1.0)
#     on a machine that actually has cores to parallelize over
#     (recommended_domains > 1 and more than one worker used; single-core
#     runners skip this gate because domains just time-slice there), or
#   - a --engine pdes report (schema spandex-bench-sweep/5) was not
#     bit-identical to its sequential wheel reference pass
#     (pdes_identical), or its PDES pass was slower than the wheel
#     (pdes_speedup < 1.0) on a multi-core machine — single-core runners
#     skip the speedup gate, never the identity gate, or
#   - the report's metrics-enabled verification run diverged from the
#     metrics-off one (schema spandex-bench-sweep/6 runs one cell with the
#     time-series registry sampling and asserts bit-identical results), or
#   - a --engine pdes /6+ report is missing its per-cell shard_profile on a
#     multi-shard cell, or reports a barrier_wait_fraction outside [0, 1],
#     or a cell's shard_profile event counts do not sum to the cell's
#     event count, or
#   - a --engine pdes /7 report shows shard 0 carrying more than 2x the
#     mean event share on any multi-shard cell (the banked partition must
#     not recreate the old shard-0 home-complex hotspot), or a cell whose
#     partition spreads both the home banks and the cores over several
#     shards exceeds 2x max/mean event imbalance (barrier workloads
#     collapse the cores onto one shard — a structural serialization the
#     max/mean gate therefore skips; the shard-0 gate still applies).
#
# Refresh the baseline with:
#   dune exec bin/spandex_cli.exe -- bench --jobs 2 --scale 0.25 \
#     --workloads rsct,tqh,bc,trns --repeat 3 -o bench/ci_baseline.json
set -eu

report=${1:?usage: check_perf.sh <report.json> [baseline.json]}
baseline=${2:-$(dirname "$0")/ci_baseline.json}

python3 - "$report" "$baseline" <<'EOF'
import json, sys

report = json.load(open(sys.argv[1]))
baseline = json.load(open(sys.argv[2]))

failures = []

if not report.get("identical", False):
    failures.append("sequential and parallel sweeps were not bit-identical")

# Schema v3 reports carry a traced verification run; older baselines may
# not, so only the report is checked.
if "trace_identical" in report and not report["trace_identical"]:
    failures.append("traced run diverged from the untraced run")

# Schema v6 reports carry a metrics-enabled verification run: the inline
# sampler must not perturb simulated results.
if "metrics_identical" in report and not report["metrics_identical"]:
    failures.append("metrics-enabled run diverged from the metrics-off run")

if report["total_events"] != baseline["total_events"]:
    failures.append(
        "total_events drifted: baseline %d, report %d — the simulation "
        "changed; regenerate bench/ci_baseline.json if intended"
        % (baseline["total_events"], report["total_events"])
    )

# total_events covers the paper's six baseline configurations; reports and
# baselines that sweep the extended set (SDA, SAA) also carry the full
# total, compared when both sides have it.
if "total_events_extended" in report and "total_events_extended" in baseline:
    if report["total_events_extended"] != baseline["total_events_extended"]:
        failures.append(
            "total_events_extended drifted: baseline %d, report %d"
            % (
                baseline["total_events_extended"],
                report["total_events_extended"],
            )
        )

# The throughput and allocation gates compare like with like: a report
# benched on a different backend than the baseline (e.g. --engine pdes
# against the committed wheel baseline) skips them — its own gates are
# the bit-identity and pdes_speedup checks below.
engines_match = report.get("engine", "wheel") == baseline.get("engine", "wheel")
if not engines_match:
    print(
        "note: report engine %r != baseline engine %r; skipping "
        "events/sec and allocation gates"
        % (report.get("engine", "wheel"), baseline.get("engine", "wheel"))
    )

if engines_match:
    base = baseline["events_per_sec_sequential"]
    got = report["events_per_sec_sequential"]
    floor = 0.75 * base
    print(
        "perf: %d events/sec sequential (baseline %d, floor %d)"
        % (got, base, floor)
    )
    if got < floor:
        failures.append(
            "events/sec regressed >25%%: %d < %d (baseline %d)"
            % (got, floor, base)
        )

# Allocation-rate gate (schema v4): minor words per event is deterministic
# for a given sweep, so a >10% rise over the baseline means the allocation
# diet on the message/event path regressed.
if (
    engines_match
    and "minor_words_per_event" in report
    and "minor_words_per_event" in baseline
):
    base_mw = baseline["minor_words_per_event"]
    got_mw = report["minor_words_per_event"]
    ceil_mw = 1.10 * base_mw
    print(
        "alloc: %.2f minor words/event (baseline %.2f, ceiling %.2f)"
        % (got_mw, base_mw, ceil_mw)
    )
    if got_mw > ceil_mw:
        failures.append(
            "minor_words_per_event regressed >10%%: %.2f > %.2f "
            "(baseline %.2f)" % (got_mw, ceil_mw, base_mw)
        )

# Parallel-speedup gate: on a multi-core runner, a parallel sweep slower
# than the sequential one means domain coordination or GC interference is
# eating the win.  Skipped on single-core machines (and --jobs 1 reports),
# where extra domains can only time-slice.
if (
    report.get("recommended_domains", 1) > 1
    and report.get("jobs_used", 1) > 1
    and "speedup" in report
):
    print("speedup: %.3fx with %d jobs" % (report["speedup"], report["jobs_used"]))
    if report["speedup"] < 1.0:
        failures.append(
            "parallel sweep slower than sequential: speedup %.3f < 1.0 "
            "with %d jobs on %d recommended domains"
            % (report["speedup"], report["jobs_used"], report["recommended_domains"])
        )

# PDES gates (schema v5, --engine pdes reports only).  Bit-identity to the
# wheel reference is unconditional; the speedup gate needs real cores.
if "pdes_identical" in report:
    if not report["pdes_identical"]:
        failures.append("pdes backend was not bit-identical to the wheel")
    if "pdes_speedup" in report:
        print(
            "pdes: %.3fx vs wheel with %d effective shard(s) (%d requested)"
            % (
                report["pdes_speedup"],
                report.get("shards_effective", 1),
                report.get("shards_requested", 1),
            )
        )
        if (
            report.get("recommended_domains", 1) > 1
            and report.get("shards_effective", 1) > 1
            and report["pdes_speedup"] < 1.0
        ):
            failures.append(
                "pdes slower than the wheel: pdes_speedup %.3f < 1.0 with "
                "%d effective shards on %d recommended domains"
                % (
                    report["pdes_speedup"],
                    report.get("shards_effective", 1),
                    report["recommended_domains"],
                )
            )

# Shard-profile gates (schema v6+, --engine pdes reports only): every
# multi-shard cell must carry a shard_profile whose event counts sum to
# the cell's event total and whose barrier-wait fraction is a sane
# fraction of wall time.
schema_rev = report.get("schema", "").rsplit("/", 1)[-1]
if report.get("engine") == "pdes" and schema_rev in ("6", "7"):
    checked = 0
    for cell in report.get("simulations", []):
        label = "%s %s" % (cell.get("workload"), cell.get("config"))
        if cell.get("shards", 1) <= 1:
            continue
        prof = cell.get("shard_profile")
        if prof is None:
            failures.append(
                "pdes cell %s (shards=%d) has no shard_profile"
                % (label, cell.get("shards", 1))
            )
            continue
        checked += 1
        bwf = prof.get("barrier_wait_fraction")
        if bwf is None or not (0.0 <= bwf <= 1.0):
            failures.append(
                "pdes cell %s barrier_wait_fraction %r outside [0, 1]"
                % (label, bwf)
            )
        pe = sum(s["events"] for s in prof.get("shards", []))
        if pe != cell["events"]:
            failures.append(
                "pdes cell %s shard_profile events sum %d != cell events %d"
                % (label, pe, cell["events"])
            )
    if checked:
        print(
            "pdes profile: %d multi-shard cell(s) carry a sane shard_profile"
            % checked
        )

# Imbalance gates (schema v7, --engine pdes reports only).  The banked
# partition spreads home banks + DRAM channels across shards, so shard 0
# must never again carry the whole home complex: on every multi-shard
# cell its event share is capped at 2x the mean.  Cells whose partition
# also spreads the cores (no barrier collapse) must balance overall:
# max/mean event share below 2x.  Barrier workloads co-locate every core
# on one shard (1-cycle barrier wakes sit below the network lookahead),
# which that shard's event count reflects — the max/mean gate skips
# those structurally serialized cells rather than gate on physics.
if report.get("engine") == "pdes" and schema_rev == "7":
    s0_checked = mm_checked = 0
    for cell in report.get("simulations", []):
        label = "%s %s" % (cell.get("workload"), cell.get("config"))
        se = cell.get("shard_events", [])
        if cell.get("shards", 1) <= 1 or not se:
            continue
        mean = sum(se) / float(len(se))
        if mean <= 0:
            continue
        s0_checked += 1
        if se[0] > 2.0 * mean:
            failures.append(
                "pdes cell %s: shard 0 carries %.2fx the mean event share "
                "(> 2.0x) — the banked partition left a shard-0 hotspot"
                % (label, se[0] / mean)
            )
        part = cell.get("partition", {})
        bank_shards = {
            s for n, s in part.items()
            if n.startswith("llc.b") or n.startswith("dir.b")
        }
        core_shards = {s for n, s in part.items() if "l1." in n}
        if len(bank_shards) > 1 and len(core_shards) > 1:
            mm_checked += 1
            if max(se) > 2.0 * mean:
                failures.append(
                    "pdes cell %s: max/mean event imbalance %.2fx > 2.0x "
                    "with banks and cores both spread across shards"
                    % (label, max(se) / mean)
                )
    if s0_checked:
        print(
            "pdes imbalance: shard-0 share gated on %d cell(s), max/mean "
            "gated on %d core-spread cell(s)" % (s0_checked, mm_checked)
        )

if failures:
    for f in failures:
        print("FAIL: " + f, file=sys.stderr)
    sys.exit(1)
print("perf check passed")
EOF
