(** MESI L1 cache (paper §II-A, Table II).

    Line-granularity I/S/E/M states, writer-initiated invalidation,
    read-for-ownership writes: read misses issue ReqS for the full line;
    write and RMW misses issue ReqO+data for the full line (Table II — a
    line-granularity ownership cache does not generally overwrite the whole
    line, so it must fetch data with ownership); replacements of E/M lines
    write back the full line.  Acquire/release are ordering-only: MESI
    never self-invalidates.

    The same implementation attaches to the directory MESI LLC of the
    hierarchical baseline (which only ever exercises line-granularity
    externals) and, through its TU behaviours, to a Spandex LLC — where it
    must also handle word-granularity forwarded requests and probes,
    triggering a ReqWB for the non-downgraded words of a partially revoked
    line (paper Fig. 1d, §III-D). *)

type config = {
  id : Spandex_proto.Msg.device_id;
  llc_id : Spandex_proto.Msg.device_id;  (** first backing-cache bank endpoint. *)
  llc_banks : int;
  sets : int;
  ways : int;
  mshrs : int;
  sb_capacity : int;
  hit_latency : int;
  coalesce_window : int;
  notify_home_on_fwd_getm : bool;
      (** hierarchical directories block ownership transfers and need an
          explicit completion ack (RspRvkO without data) from the old
          owner; the Spandex LLC does not. *)
}

type t

val create : Spandex_sim.Engine.t -> Spandex_net.Network.t -> config -> t
val port : t -> Spandex_device.Port.t
val stats : t -> Spandex_util.Stats.t

val trace_sample : t -> time:int -> unit
(** Record occupancy counters into the engine's trace sink; no-op when
    tracing is disabled. *)

val register_metrics : t -> device:string -> Spandex_obs.Metrics.t -> unit
(** Register the chassis occupancy/stall/retry probes, labelled
    [device]. *)

(** {2 Test introspection} *)

val line_state : t -> line:int -> Spandex_proto.State.mesi
val peek_word : t -> Spandex_proto.Addr.t -> int option
val cached_lines : t -> int

val owned_mask : t -> line:int -> Spandex_util.Mask.t
(** Full mask when the line is held E/M (MESI write permission is
    line-granular), empty otherwise — the model checker's SWMR claim. *)

val fingerprint : t -> Spandex_util.Fingerprint.t -> unit
(** Append a canonical encoding of the full architectural state for the
    model checker's visited-state cache. *)
