module Mask = Spandex_util.Mask
module Stats = Spandex_util.Stats
module Engine = Spandex_sim.Engine
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo
module State = Spandex_proto.State
module Linedata = Spandex_proto.Linedata
module Network = Spandex_net.Network
module Cache_frame = Spandex_mem.Cache_frame
module Mshr = Spandex_mem.Mshr
module Store_buffer = Spandex_mem.Store_buffer
module Port = Spandex_device.Port
module Tu = Spandex.Tu
module Chassis = Spandex_l1.Chassis
module Policy = Spandex_l1.Policy

type config = {
  id : Msg.device_id;
  llc_id : Msg.device_id;
  llc_banks : int;
  sets : int;
  ways : int;
  mshrs : int;
  sb_capacity : int;
  hit_latency : int;
  coalesce_window : int;
  notify_home_on_fwd_getm : bool;
}

type line = { data : int array; mutable mstate : State.mesi }

type read_miss = {
  r_line : int;
  r_collector : Tu.t;
  mutable r_waiters : (int * (int -> unit)) list;
  mutable r_excl : bool;  (* some words granted with ownership (E). *)
  mutable r_valid_only : bool;
      (* served like a ReqV (LLC option (2)): the data must be dropped
         after the read completes, precluding reuse (paper III-B). *)
  mutable r_inv : bool;
      (* an Inv arrived mid-read (III-C case 1): the Shared grant it races
         with is already stale — deliver the values but cache nothing.  An
         exclusive grant is newer than any Inv and still installs. *)
  mutable r_downgraded : Spandex_util.Mask.t;
      (* a ReqS can be granted with ownership (option 3), so reads race
         with downgrades exactly like writes (§III-C case 1). *)
  mutable r_queued : Msg.t list;
}

(* A pending ReqO+data write or RMW miss. *)
type write_miss = {
  m_line : int;
  m_collector : Tu.t;
  m_store : (Mask.t * int array) option;  (* drained store-buffer entry. *)
  m_rmw : (int * Amo.t * (int -> unit)) option;
  mutable m_downgraded : Mask.t;  (* words stolen by data-less fwd ReqO. *)
  mutable m_queued : Msg.t list;  (* delayed data-needing externals. *)
  mutable m_loads : (int * (int -> unit)) list;
      (* loads that missed while this write was in flight: issuing a ReqS
         beside a pending ReqO+data for the same line would race it at the
         LLC and one of the two would be granted without data; the loads
         are served from the grant instead. *)
}

type wb_req = { b_line : int; b_values : int array }

type outstanding = Read of read_miss | Write of write_miss

type t = {
  ch : outstanding Chassis.t;
  cfg : config;
  frame : line Cache_frame.t;
  (* Write-backs in flight, keyed by transaction id.  Kept outside the MSHR
     file: the record is protocol state (the data must be servable while
     the LLC still lists this cache as owner) and must exist from the
     instant the line is downgraded, regardless of miss-resource pressure. *)
  wb_records : (int, wb_req) Hashtbl.t;
  forced_lines : (int, unit) Hashtbl.t;  (* drain immediately (RMW order). *)
  (* MESI is writer-invalidated: reads want Shared data, writes fetch the
     whole line with ownership.  Constant classification, but routed
     through the policy layer like every other protocol. *)
  policy : Policy.t;
  k_store_commit_owned : Stats.key;
  k_rmw_hit : Stats.key;
  k_rmw_miss : Stats.key;
  k_wb_issued : Stats.key;
}

let send t msg = Chassis.send t.ch msg

let request t ~txn ~kind ~line ~mask ?payload () =
  Chassis.request t.ch ~txn ~kind ~line ~mask ?payload ()

let free_txn t ~txn = Chassis.free_txn t.ch ~txn

let reply t (msg : Msg.t) ~kind ~dst ~mask ?payload () =
  Chassis.reply t.ch msg ~kind ~dst ~mask ?payload ()

let reply_data t msg ~kind ~dst ~mask ~values =
  Chassis.reply_data t.ch msg ~kind ~dst ~mask ~values

(* ----- frame management ----------------------------------------------------- *)

let send_wb t ~line ~values =
  let txn = Chassis.fresh_txn t.ch in
  Hashtbl.replace t.wb_records txn { b_line = line; b_values = values };
  Stats.bump t.ch.Chassis.stats t.k_wb_issued;
  request t ~txn ~kind:Msg.ReqWB ~line ~mask:Addr.full_mask
    ~payload:(Msg.pooled_copy values)
    ()

let install t ~line_id ~values ~mstate =
  match Cache_frame.find_exn t.frame ~line:line_id with
  | l ->
    Array.blit values 0 l.data 0 Addr.words_per_line;
    l.mstate <- mstate;
    l
  | exception Not_found -> (
    let fresh = { data = Array.copy values; mstate } in
    match
      Cache_frame.insert t.frame ~line:line_id fresh ~can_evict:(fun ~line:_ _ ->
          true)
    with
    | Cache_frame.Inserted -> fresh
    | Cache_frame.Evicted (vline, vmeta) ->
      Stats.incr t.ch.Chassis.stats "evictions";
      (match vmeta.mstate with
      | State.M_M | State.M_E -> send_wb t ~line:vline ~values:vmeta.data
      | State.M_S | State.M_I -> ());
      fresh
    | Cache_frame.No_room -> assert false)

(* ----- store-buffer drain ---------------------------------------------------- *)

let entry_ready t line =
  Chassis.entry_ready ~forced:(Hashtbl.mem t.forced_lines line) t.ch line

let write_pending_for t line =
  if Mshr.count t.ch.Chassis.outstanding = 0 then None
  else
  match
    Mshr.find_first_exn t.ch.Chassis.outstanding ~f:(function
      | Write w -> w.m_line = line
      | Read _ -> false)
  with
  | Write w -> Some w
  | _ -> None
  | exception Not_found -> None

(* A pending ReqS may be granted Exclusive (option 3), making this cache
   the registered owner; issuing a ReqO+data for the same line while it is
   in flight would be answered with a data-less self-grant.  Writes and
   RMWs therefore wait for reads to the same line. *)
let read_pending t line =
  Mshr.count t.ch.Chassis.outstanding > 0
  && Mshr.exists t.ch.Chassis.outstanding ~f:(function
       | Read m -> m.r_line = line
       | Write _ -> false)

let writes_pending t =
  let n = ref 0 in
  Mshr.iter t.ch.Chassis.outstanding ~f:(fun ~txn:_ -> function
    | Write _ -> incr n
    | Read _ -> ());
  !n

let rec drain t =
  match Store_buffer.peek_oldest_exn t.ch.Chassis.sb with
  | exception Not_found -> Chassis.check_release t.ch
  | e ->
    let line_id = e.Store_buffer.line in
    if not (entry_ready t line_id) then
      Chassis.arm_drain t.ch ~delay:(max 1 t.cfg.coalesce_window)
    else if write_pending_for t line_id <> None || read_pending t line_id then
      (* Same-line request already in flight; strict FIFO, re-checked when
         a response arrives. *)
      ()
    else begin
      match Cache_frame.find_exn t.frame ~line:line_id with
      | l when l.mstate = State.M_M || l.mstate = State.M_E ->
        let e = Store_buffer.take_oldest_exn t.ch.Chassis.sb in
        Hashtbl.remove t.forced_lines line_id;
        l.mstate <- State.M_M;
        for w = 0 to Addr.words_per_line - 1 do
          if Mask.mem e.Store_buffer.mask w then
            l.data.(w) <- e.Store_buffer.values.(w)
        done;
        Stats.bump t.ch.Chassis.stats t.k_store_commit_owned;
        Store_buffer.release t.ch.Chassis.sb e;
        (* A freed entry may unblock a stalled store on either drain path. *)
        Chassis.wake_stalled t.ch;
        drain t
      | _ | (exception Not_found) ->
        if Mshr.is_full t.ch.Chassis.outstanding then ()
        else begin
          let e = Store_buffer.take_oldest_exn t.ch.Chassis.sb in
          Hashtbl.remove t.forced_lines line_id;
          let w =
            {
              m_line = line_id;
              m_collector = Tu.create ~demand:Addr.full_mask;
              m_store = Some (e.Store_buffer.mask, Array.copy e.Store_buffer.values);
              m_rmw = None;
              m_downgraded = Mask.empty;
              m_queued = [];
              m_loads = [];
            }
          in
          (match Mshr.alloc t.ch.Chassis.outstanding (Write w) with
          | Some txn ->
            Stats.incr t.ch.Chassis.stats "write_miss";
            (* Read-for-ownership: fetch the whole line with ownership. *)
            let kind =
              Policy.req_of_write (t.policy.Policy.classify_write ~line:line_id)
            in
            request t ~txn ~kind ~line:line_id ~mask:Addr.full_mask ()
          | None -> assert false);
          Store_buffer.release t.ch.Chassis.sb e;
          Chassis.wake_stalled t.ch;
          drain t
        end
    end

(* ----- loads ---------------------------------------------------------------- *)

let rec load t (addr : Addr.t) ~k =
  (* Hit paths go straight to the engine's closure-free Apply event. *)
  let { Addr.line; word } = addr in
  match Store_buffer.forward t.ch.Chassis.sb ~addr with
  | Some v ->
    Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_load_sb_fwd;
    Engine.apply_later t.ch.Chassis.engine ~delay:t.cfg.hit_latency k v
  | None -> (
    (* A drained but un-granted store also forwards; any other load beside
       a pending write to the same line waits for the write's grant. *)
    match write_pending_for t line with
    | Some { m_store = Some (mask, values); _ } when Mask.mem mask word ->
      Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_load_sb_fwd;
      Engine.apply_later t.ch.Chassis.engine ~delay:t.cfg.hit_latency k
        values.(word)
    | Some w ->
      Stats.incr t.ch.Chassis.stats "load_waits_write";
      w.m_loads <- (word, k) :: w.m_loads
    | None -> (
      match Cache_frame.find_exn t.frame ~line with
      | l when l.mstate <> State.M_I ->
        Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_load_hit;
        Cache_frame.touch t.frame ~line;
        Engine.apply_later t.ch.Chassis.engine ~delay:t.cfg.hit_latency k
          l.data.(word)
      | _ | (exception Not_found) -> (
        Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_load_miss;
        match
          Mshr.find_first_exn t.ch.Chassis.outstanding ~f:(function
            | Read m -> m.r_line = line
            | _ -> false)
        with
        | Read m ->
          Stats.incr t.ch.Chassis.stats "load_miss_coalesced";
          m.r_waiters <- (word, k) :: m.r_waiters
        | _ -> assert false
        | exception Not_found -> (
          let m =
            {
              r_line = line;
              r_collector = Tu.create ~demand:Addr.full_mask;
              r_waiters = [ (word, k) ];
              r_excl = false;
              r_valid_only = false;
              r_inv = false;
              r_downgraded = Mask.empty;
              r_queued = [];
            }
          in
          match Mshr.alloc t.ch.Chassis.outstanding (Read m) with
          | Some txn ->
            let kind =
              Policy.req_of_read
                (t.policy.Policy.classify_read ~line Policy.absent)
            in
            request t ~txn ~kind ~line ~mask:Addr.full_mask ()
          | None ->
            Stats.incr t.ch.Chassis.stats "mshr_stall";
            Engine.schedule t.ch.Chassis.engine ~delay:4 (fun () ->
                load t addr ~k)))))

(* ----- stores and RMWs ------------------------------------------------------- *)

let rec store t (addr : Addr.t) ~value ~k =
  match
    Store_buffer.push t.ch.Chassis.sb ~addr ~value
      ~now:(Engine.now t.ch.Chassis.engine)
  with
  | `Coalesced | `New ->
    Stats.bump t.ch.Chassis.stats t.ch.Chassis.k_stores;
    Chassis.arm_drain t.ch ~delay:1;
    Engine.schedule t.ch.Chassis.engine ~delay:t.cfg.hit_latency k
  | `Full -> Chassis.stall_store t.ch (fun () -> store t addr ~value ~k)

let rec rmw t (addr : Addr.t) amo ~k =
  let { Addr.line; word } = addr in
  (* Program order: buffered stores to this line must commit first. *)
  if
    Store_buffer.mem t.ch.Chassis.sb ~line
    || write_pending_for t line <> None
    || read_pending t line
  then begin
    Hashtbl.replace t.forced_lines line ();
    Chassis.arm_drain t.ch ~delay:0;
    Engine.schedule t.ch.Chassis.engine ~delay:2 (fun () -> rmw t addr amo ~k)
  end
  else
    match Cache_frame.find_exn t.frame ~line with
    | l when l.mstate = State.M_M || l.mstate = State.M_E ->
      Stats.bump t.ch.Chassis.stats t.k_rmw_hit;
      l.mstate <- State.M_M;
      let next, old = Amo.apply amo l.data.(word) in
      l.data.(word) <- next;
      Engine.apply_later t.ch.Chassis.engine ~delay:t.cfg.hit_latency k old
    | _ | (exception Not_found) -> (
      Stats.bump t.ch.Chassis.stats t.k_rmw_miss;
      let w =
        {
          m_line = line;
          m_collector = Tu.create ~demand:Addr.full_mask;
          m_store = None;
          m_rmw = Some (word, amo, k);
          m_downgraded = Mask.empty;
          m_queued = [];
          m_loads = [];
        }
      in
      match Mshr.alloc t.ch.Chassis.outstanding (Write w) with
      | Some txn ->
        let kind =
          Policy.req_of_write (t.policy.Policy.classify_write ~line)
        in
        request t ~txn ~kind ~line ~mask:Addr.full_mask ()
      | None ->
        Stats.incr t.ch.Chassis.stats "mshr_stall";
        Engine.schedule t.ch.Chassis.engine ~delay:4 (fun () -> rmw t addr amo ~k))

(* ----- external requests (TU behaviours, §III-D) ------------------------------ *)

let wb_record_for t line =
  if Hashtbl.length t.wb_records = 0 then None
  else
  Hashtbl.fold
    (fun _ (b : wb_req) acc ->
      if b.b_line = line then Some b else acc)
    t.wb_records None

let read_pending_for t line =
  if Mshr.count t.ch.Chassis.outstanding = 0 then None
  else
  match
    Mshr.find_first_exn t.ch.Chassis.outstanding ~f:(function
      | Read m -> m.r_line = line
      | Write _ -> false)
  with
  | Read m -> Some m
  | _ -> None
  | exception Not_found -> None

(* Downgrade the owned line for an external request covering [msg.mask];
   words of the line outside the request are written back (Fig. 1d). *)
let rec external_req t (msg : Msg.t) =
  let line_id = msg.Msg.line in
  (* Order matters: while a write-back record is alive, any forwarded
     request for its words was serialized before the write-back at the LLC
     (point-to-point FIFO), i.e. it targets the OLD ownership epoch and
     must be served from the retained data — never queued behind a newer
     pending write for the same line (that would deadlock the chain). *)
  match Cache_frame.find_exn t.frame ~line:line_id with
  | l when l.mstate = State.M_M || l.mstate = State.M_E -> serve_owned t msg l
  | _ | (exception Not_found) -> (
    match wb_record_for t line_id with
    | Some b -> serve_from_wb t msg b
    | None -> (
      match write_pending_for t line_id with
      | Some w -> serve_mid_write t msg w
      | None -> (
        match read_pending_for t line_id with
        | Some m -> serve_mid_read t msg m
        | None -> (
          match msg.Msg.kind with
          | Msg.Req Msg.ReqV ->
            if not (Mask.is_empty msg.Msg.demand) then begin
              Stats.incr t.ch.Chassis.stats "nack_sent";
              reply t msg ~kind:Msg.Nack ~dst:msg.Msg.requestor
                ~mask:msg.Msg.demand ()
            end
          | Msg.Req Msg.ReqO ->
            reply t msg ~kind:Msg.RspO ~dst:msg.Msg.requestor
              ~mask:msg.Msg.mask ()
          | _ ->
            failwith
              (Format.asprintf "Mesi_l1 %d: external for line not held: %a"
                 t.cfg.id Msg.pp msg)))))

and serve_owned t (msg : Msg.t) l =
  let line_id = msg.Msg.line in
  let mask = msg.Msg.mask in
  let rest = Mask.diff Addr.full_mask mask in
  match msg.Msg.kind with
  | Msg.Req Msg.ReqV ->
    (* Owned data served in place; no state change (Table IV). *)
    reply_data t msg ~kind:Msg.RspV ~dst:msg.Msg.requestor ~mask ~values:l.data
  | Msg.Req Msg.ReqS ->
    (* O -> S: data to the requestor, write-back copy to the LLC. *)
    reply_data t msg ~kind:Msg.RspS ~dst:msg.Msg.requestor ~mask ~values:l.data;
    reply_data t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ~mask:Addr.full_mask
      ~values:l.data;
    l.mstate <- State.M_S
  | Msg.Req Msg.ReqO ->
    reply t msg ~kind:Msg.RspO ~dst:msg.Msg.requestor ~mask ();
    if not (Mask.is_empty rest) then begin
      Stats.incr t.ch.Chassis.stats "partial_downgrade_wb";
      send_wb_words t ~line:line_id ~mask:rest ~values:l.data
    end;
    Cache_frame.remove t.frame ~line:line_id
  | Msg.Req Msg.ReqOdata ->
    reply_data t msg ~kind:Msg.RspOdata ~dst:msg.Msg.requestor ~mask
      ~values:l.data;
    if t.cfg.notify_home_on_fwd_getm then
      (* Directory protocols block the line until the old owner confirms
         the transfer. *)
      reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ~mask ();
    if not (Mask.is_empty rest) then begin
      Stats.incr t.ch.Chassis.stats "partial_downgrade_wb";
      send_wb_words t ~line:line_id ~mask:rest ~values:l.data
    end;
    Cache_frame.remove t.frame ~line:line_id
  | Msg.Probe Msg.RvkO ->
    reply_data t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ~mask ~values:l.data;
    let outside = Mask.diff Addr.full_mask mask in
    if not (Mask.is_empty outside) then
      (* The LLC revokes everything it thinks we own; words outside the
         revocation are ours to write back. *)
      send_wb_words t ~line:line_id ~mask:outside ~values:l.data;
    Cache_frame.remove t.frame ~line:line_id
  | _ -> assert false

and send_wb_words t ~line ~mask ~values =
  let txn = Chassis.fresh_txn t.ch in
  Hashtbl.replace t.wb_records txn { b_line = line; b_values = Array.copy values };
  Stats.bump t.ch.Chassis.stats t.k_wb_issued;
  request t ~txn ~kind:Msg.ReqWB ~line ~mask
    ~payload:(Msg.pooled_pack ~mask ~full:values)
    ()

(* §III-C case 1: a pending ReqO+data is a transition *to* the expected
   state.  Data-needing externals wait for the fill; data-less downgrades
   (ReqO) are answered immediately and remembered. *)
and serve_mid_write t (msg : Msg.t) (w : write_miss) =
  match msg.Msg.kind with
  | Msg.Req Msg.ReqO ->
    Stats.incr t.ch.Chassis.stats "ext_stolen_mid_write";
    w.m_downgraded <- Mask.union w.m_downgraded msg.Msg.mask;
    reply t msg ~kind:Msg.RspO ~dst:msg.Msg.requestor ~mask:msg.Msg.mask ()
  | Msg.Req (Msg.ReqV | Msg.ReqS | Msg.ReqOdata) | Msg.Probe Msg.RvkO ->
    Stats.incr t.ch.Chassis.stats "ext_delayed";
    Msg.keep msg;
    w.m_queued <- w.m_queued @ [ msg ]
  | _ -> assert false

(* A pending ReqS may be mid-grant of Exclusive state (ReqS option 3), so
   it is also a "pending transition to the expected state". *)
and serve_mid_read t (msg : Msg.t) (m : read_miss) =
  match msg.Msg.kind with
  | Msg.Req Msg.ReqO ->
    Stats.incr t.ch.Chassis.stats "ext_stolen_mid_read";
    m.r_downgraded <- Mask.union m.r_downgraded msg.Msg.mask;
    reply t msg ~kind:Msg.RspO ~dst:msg.Msg.requestor ~mask:msg.Msg.mask ()
  | Msg.Req (Msg.ReqV | Msg.ReqS | Msg.ReqOdata) | Msg.Probe Msg.RvkO ->
    Stats.incr t.ch.Chassis.stats "ext_delayed";
    Msg.keep msg;
    m.r_queued <- m.r_queued @ [ msg ]
  | _ -> assert false

(* §III-D case 3: pending write-back — respond from the retained data; the
   in-flight ReqWB carries the data to the LLC (footnote 5). *)
and serve_from_wb t (msg : Msg.t) (b : wb_req) =
  match msg.Msg.kind with
  | Msg.Req Msg.ReqV ->
    reply_data t msg ~kind:Msg.RspV ~dst:msg.Msg.requestor ~mask:msg.Msg.mask
      ~values:b.b_values
  | Msg.Req Msg.ReqS ->
    reply_data t msg ~kind:Msg.RspS ~dst:msg.Msg.requestor ~mask:msg.Msg.mask
      ~values:b.b_values;
    reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ~mask:msg.Msg.mask ()
  | Msg.Req Msg.ReqO ->
    reply t msg ~kind:Msg.RspO ~dst:msg.Msg.requestor ~mask:msg.Msg.mask ()
  | Msg.Req Msg.ReqOdata ->
    reply_data t msg ~kind:Msg.RspOdata ~dst:msg.Msg.requestor
      ~mask:msg.Msg.mask ~values:b.b_values;
    if t.cfg.notify_home_on_fwd_getm then
      reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ~mask:msg.Msg.mask ()
  | Msg.Probe Msg.RvkO ->
    reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ~mask:msg.Msg.mask ()
  | _ -> assert false

(* ----- miss completion -------------------------------------------------------- *)

let complete_read t ~txn (m : read_miss) (r : Tu.result) =
  free_txn t ~txn;
  if (m.r_valid_only || m.r_inv) && not m.r_excl then begin
    (* Option (2): the read is satisfied but nothing may be cached. *)
    Stats.incr t.ch.Chassis.stats "read_uncached_opt2";
    List.iter (fun (w, k) -> k r.Tu.values.(w)) (List.rev m.r_waiters);
    drain t
  end
  else begin
  let mstate = if m.r_excl then State.M_E else State.M_S in
  let l = install t ~line_id:m.r_line ~values:r.Tu.values ~mstate in
  List.iter (fun (w, k) -> k r.Tu.values.(w)) (List.rev m.r_waiters);
  if not (Mask.is_empty m.r_downgraded) then begin
    let keep = Mask.diff Addr.full_mask m.r_downgraded in
    if not (Mask.is_empty keep) then
      send_wb_words t ~line:m.r_line ~mask:keep ~values:l.data;
    Cache_frame.remove t.frame ~line:m.r_line
  end;
  let queued = m.r_queued in
  m.r_queued <- [];
  List.iter (fun q -> external_req t q) queued;
  drain t
  end

let complete_write t ~txn (w : write_miss) (r : Tu.result) =
  free_txn t ~txn;
  let l = install t ~line_id:w.m_line ~values:r.Tu.values ~mstate:State.M_M in
  (match w.m_store with
  | Some (mask, values) ->
    Mask.iter mask ~f:(fun word -> l.data.(word) <- values.(word))
  | None -> ());
  let rmw_finish =
    match w.m_rmw with
    | Some (word, amo, k) ->
      let next, old = Amo.apply amo l.data.(word) in
      l.data.(word) <- next;
      fun () -> k old
    | None -> fun () -> ()
  in
  (* TU rule (§III-D case 2): if any downgrade arrived mid-miss, fall to I
     and write back the words that were not downgraded. *)
  if not (Mask.is_empty w.m_downgraded) then begin
    let keep = Mask.diff Addr.full_mask w.m_downgraded in
    if not (Mask.is_empty keep) then
      send_wb_words t ~line:w.m_line ~mask:keep ~values:l.data;
    Cache_frame.remove t.frame ~line:w.m_line
  end;
  rmw_finish ();
  (* Loads that waited on this write read the granted line. *)
  List.iter (fun (word, k) -> k l.data.(word)) (List.rev w.m_loads);
  w.m_loads <- [];
  (* Delayed externals now see a stable owner (or its write-back record). *)
  let queued = w.m_queued in
  w.m_queued <- [];
  List.iter (fun m -> external_req t m) queued;
  Chassis.check_release t.ch;
  drain t

(* ----- synchronization --------------------------------------------------------- *)

let acquire t ~k =
  (* Writer-initiated invalidation: nothing to self-invalidate (§II-A). *)
  Stats.incr t.ch.Chassis.stats "acquire";
  Engine.schedule t.ch.Chassis.engine ~delay:1 k

let release t ~k = Chassis.release t.ch ~k

(* ----- message handler ----------------------------------------------------------- *)

let handle t (msg : Msg.t) =
  match msg.Msg.kind with
  | Msg.Probe Msg.Inv ->
    (match Cache_frame.find_exn t.frame ~line:msg.Msg.line with
    | l when l.mstate = State.M_S ->
      Stats.incr t.ch.Chassis.stats "invalidated";
      Cache_frame.remove t.frame ~line:msg.Msg.line
    | _ | (exception Not_found) -> Stats.incr t.ch.Chassis.stats "inv_stale");
    (* The Inv may overtake a remote owner's direct RspS to our pending
       read: the Shared copy being assembled is already stale. *)
    (match read_pending_for t msg.Msg.line with
    | Some m -> m.r_inv <- true
    | None -> ());
    send t
      (Msg.make ~txn:msg.Msg.txn ~kind:(Msg.Rsp Msg.Ack) ~line:msg.Msg.line
         ~mask:msg.Msg.mask ~src:t.cfg.id ~dst:msg.Msg.src ())
  | Msg.Probe Msg.RvkO | Msg.Req _ -> external_req t msg
  | Msg.Rsp _ when Hashtbl.mem t.wb_records msg.Msg.txn ->
    (match msg.Msg.kind with
    | Msg.Rsp Msg.RspWB -> ()
    | _ -> failwith "Mesi_l1: unexpected write-back response");
    Hashtbl.remove t.wb_records msg.Msg.txn;
    Chassis.retire t.ch ~txn:msg.Msg.txn;
    drain t
  | Msg.Rsp _ -> (
    match Mshr.find_exn t.ch.Chassis.outstanding ~txn:msg.Msg.txn with
    | exception Not_found -> Stats.incr t.ch.Chassis.stats "orphan_rsp"
    | Read m -> (
      (match msg.Msg.kind with
      | Msg.Rsp (Msg.RspOdata | Msg.RspO) -> m.r_excl <- true
      | Msg.Rsp Msg.RspV -> m.r_valid_only <- true
      | _ -> ());
      match Tu.absorb m.r_collector msg with
      | None -> ()
      | Some r ->
        assert (Mask.is_empty r.Tu.nacked);
        complete_read t ~txn:msg.Msg.txn m r)
    | Write w -> (
      match Tu.absorb w.m_collector msg with
      | None -> ()
      | Some r ->
        assert (Mask.is_empty r.Tu.nacked);
        complete_write t ~txn:msg.Msg.txn w r))

(* ----- construction ---------------------------------------------------------------- *)

let quiescent t = Chassis.quiescent t.ch && Hashtbl.length t.wb_records = 0

let describe_pending t =
  let extra =
    Hashtbl.fold
      (fun txn (b : wb_req) acc ->
        (txn, Printf.sprintf "Wb line %d" b.b_line) :: acc)
      t.wb_records []
  in
  Chassis.describe_pending t.ch ~name:"mesi_l1"
    ~describe:(function
      | Read m -> Printf.sprintf "Read line %d" m.r_line
      | Write w -> Printf.sprintf "Write line %d" w.m_line)
    ~extra

let trace_sample t ~time = Chassis.trace_sample t.ch ~time ()

let register_metrics t ~device reg =
  Chassis.register_metrics t.ch ~device reg

let create engine net cfg =
  let ch =
    Chassis.create engine net ~id:cfg.id ~home_id:cfg.llc_id
      ~home_banks:cfg.llc_banks ~hit_latency:cfg.hit_latency
      ~coalesce_window:cfg.coalesce_window ~mshrs:cfg.mshrs
      ~sb_capacity:cfg.sb_capacity ~level:"l1" ~aux:"sb"
  in
  let t =
    {
      ch;
      cfg;
      frame = Cache_frame.create ~sets:cfg.sets ~ways:cfg.ways;
      wb_records = Hashtbl.create 16;
      forced_lines = Hashtbl.create 8;
      policy =
        Policy.static ~name:"mesi" ~read:Policy.Read_shared
          ~write:Policy.Write_own_data;
      k_store_commit_owned = Stats.key ch.Chassis.stats "store_commit_owned";
      k_rmw_hit = Stats.key ch.Chassis.stats "rmw_hit";
      k_rmw_miss = Stats.key ch.Chassis.stats "rmw_miss";
      k_wb_issued = Stats.key ch.Chassis.stats "wb_issued";
    }
  in
  ch.Chassis.drain <- (fun () -> drain t);
  ch.Chassis.writes_pending <- (fun () -> writes_pending t);
  ch.Chassis.source_line <-
    (function Read m -> m.r_line | Write w -> w.m_line);
  ch.Chassis.source_what <-
    (function Read _ -> "Read miss" | Write _ -> "Write miss");
  Engine.register_pending_source engine (fun () ->
      Hashtbl.fold
        (fun txn (b : wb_req) acc ->
          {
            Engine.pw_device = Printf.sprintf "mesi_l1.%d" cfg.id;
            pw_txn = txn;
            pw_line = b.b_line;
            pw_what = "write-back awaiting RspWB";
          }
          :: acc)
        t.wb_records []);
  Network.register net ~id:cfg.id (fun msg -> handle t msg);
  t

let port t =
  {
    Port.load = (fun addr ~k -> load t addr ~k);
    store = (fun addr ~value ~k -> store t addr ~value ~k);
    rmw = (fun addr amo ~k -> rmw t addr amo ~k);
    acquire = (fun ~k -> acquire t ~k);
    (* Writer-initiated invalidation: nothing to self-invalidate. *)
    acquire_region = (fun ~region:_ ~k -> acquire t ~k);
    release = (fun ~k -> release t ~k);
    quiescent = (fun () -> quiescent t);
    describe_pending = (fun () -> describe_pending t);
  }

let stats t = t.ch.Chassis.stats

let line_state t ~line =
  match Cache_frame.find t.frame ~line with
  | Some l -> l.mstate
  | None -> State.M_I

let peek_word t (addr : Addr.t) =
  match Cache_frame.find t.frame ~line:addr.Addr.line with
  | Some l when l.mstate <> State.M_I -> Some l.data.(addr.Addr.word)
  | _ -> None

let cached_lines t = Cache_frame.count t.frame

(* ----- model-checker introspection ----------------------------------------- *)

module Fp = Spandex_util.Fingerprint

let fp_collector fp c =
  let r = Tu.peek c in
  Fp.int fp (r.Tu.data_mask :> int);
  Fp.int fp (r.Tu.acked :> int);
  Fp.int fp (r.Tu.nacked :> int);
  Fp.masked_array fp ~mask:r.Tu.data_mask r.Tu.values

let fp_waiters fp ws = Fp.list fp Fp.int (List.sort compare (List.map fst ws))

let mesi_tag = function
  | State.M_I -> 0
  | State.M_S -> 1
  | State.M_E -> 2
  | State.M_M -> 3

let fp_amo fp = function
  | Amo.Read -> Fp.int fp 0
  | Amo.Exch v ->
    Fp.int fp 1;
    Fp.int fp v
  | Amo.Add v ->
    Fp.int fp 2;
    Fp.int fp v
  | Amo.Max v ->
    Fp.int fp 3;
    Fp.int fp v
  | Amo.Cas { expected; desired } ->
    Fp.int fp 4;
    Fp.int fp expected;
    Fp.int fp desired

let fingerprint t fp =
  Fp.tag fp "mesi_l1";
  Fp.int fp t.cfg.id;
  let lines =
    Cache_frame.fold t.frame ~init:[] ~f:(fun acc ~line l ->
        if l.mstate = State.M_I then acc else (line, l) :: acc)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Fp.int fp (List.length lines);
  List.iter
    (fun (line, l) ->
      Fp.int fp line;
      Fp.int fp (mesi_tag l.mstate);
      Fp.array fp l.data)
    lines;
  let forced =
    Hashtbl.fold (fun line () acc -> line :: acc) t.forced_lines []
    |> List.sort compare
  in
  Fp.list fp Fp.int forced;
  Chassis.fingerprint t.ch fp
    ~key:(function
      | Read m -> (m.r_line * 2) + 0
      | Write w -> (w.m_line * 2) + 1)
    ~payload:(fun fp -> function
      | Read m ->
        Fp.tag fp "R";
        Fp.int fp m.r_line;
        Fp.bool fp m.r_excl;
        Fp.bool fp m.r_valid_only;
        Fp.bool fp m.r_inv;
        Fp.int fp (m.r_downgraded :> int);
        fp_waiters fp m.r_waiters;
        Fp.list fp Msg.fingerprint m.r_queued;
        fp_collector fp m.r_collector
      | Write w ->
        Fp.tag fp "W";
        Fp.int fp w.m_line;
        (match w.m_store with
        | None -> Fp.int fp (-1)
        | Some (mask, values) ->
          Fp.int fp (mask :> int);
          Fp.masked_array fp ~mask values);
        (match w.m_rmw with
        | None -> Fp.int fp (-1)
        | Some (word, amo, _) ->
          Fp.int fp word;
          fp_amo fp amo);
        Fp.int fp (w.m_downgraded :> int);
        Fp.list fp Msg.fingerprint w.m_queued;
        fp_waiters fp w.m_loads;
        fp_collector fp w.m_collector);
  let wbs =
    Hashtbl.fold (fun txn b acc -> (txn, b) :: acc) t.wb_records []
    |> List.sort (fun (t1, b1) (t2, b2) ->
           match compare b1.b_line b2.b_line with
           | 0 -> compare t1 t2
           | c -> c)
  in
  Fp.int fp (List.length wbs);
  List.iter
    (fun (txn, (b : wb_req)) ->
      Fp.txn fp txn;
      Fp.int fp b.b_line;
      Fp.array fp b.b_values)
    wbs

let owned_mask t ~line =
  match line_state t ~line with
  | State.M_E | State.M_M -> Addr.full_mask
  | State.M_S | State.M_I -> Mask.empty
