(** Directory MESI LLC — the last level of the hierarchical baseline
    (paper §II-A, §II-D, §IV-A "H-MESI").

    Classic read-for-ownership, line-granularity directory: GetS (ReqS)
    misses allocate and grant Exclusive when unshared; GetM (ReqO+data)
    invalidates sharers or forwards to the owner, and the line sits in a
    {e blocking} transient state until the transfer is confirmed — the
    overhead Spandex's non-blocking word-granularity transfers avoid.
    Clients are MESI L1 caches ({!Mesi_l1}) and the hierarchical GPU L2's
    backside port ({!Mesi_client}). *)

type config = {
  dir_id : Spandex_proto.Msg.device_id;  (** first bank endpoint. *)
  banks : int;
  sets : int;
  ways : int;
  access_latency : int;
}

type t

val create :
  ?bank_engines:Spandex_sim.Engine.t array ->
  Spandex_sim.Engine.t ->
  Spandex_net.Network.t ->
  Spandex_mem.Dram.t ->
  config ->
  t
(** Registers the directory on the network under
    [dir_id .. dir_id + banks - 1].  Each bank is a self-contained
    component (its own engine, probe-txn allocator, stats and trace
    names) touching only lines ≡ bank (mod banks) — whose DRAM accesses
    route to the matching {!Spandex_mem.Dram} channel — so the PDES
    partition can place bank [b] on [bank_engines.(b)].  When omitted,
    every bank uses the positional [engine] (the classic single-shard
    wiring).  Requires [banks] to divide [sets]. *)

val bank_count : t -> int

val quiescent : t -> bool
val bank_quiescent : t -> int -> bool

val describe_pending : t -> string
val bank_describe_pending : t -> int -> string

val bank_stats : t -> int -> Spandex_util.Stats.t
(** Bank [b]'s counters; merge all banks under one prefix to reproduce
    the aggregate ({!Spandex_util.Stats.merge_into} sums). *)

val trace_sample : t -> time:int -> unit
(** Record every bank's pending-line and blocked-queue occupancy into its
    trace sink (["dir.pending"] / ["dir.blocked"] counters, dev = the
    bank endpoint); no-op when tracing is disabled. *)

val bank_trace_sample : t -> int -> time:int -> unit
(** One bank's occupancy counters, on that bank's shard trace — the
    sharded sampler entry point (sampling must stay shard-local). *)

val register_metrics : t -> device:string -> Spandex_obs.Metrics.t -> unit
(** Register every bank's probes on one registry: resident-line, pending
    and blocked gauges plus the reply-cache replay counter, labelled
    [device] and [bank]. *)

val bank_register_metrics :
  t -> device:string -> int -> Spandex_obs.Metrics.t -> unit
(** One bank's probes, for that bank's shard registry. *)

(** {2 Test introspection} *)

type dir_state = D_V | D_S of Spandex_proto.Msg.device_id list | D_M of Spandex_proto.Msg.device_id

val line_state : t -> line:int -> dir_state option
val peek_word : t -> Spandex_proto.Addr.t -> int option

val owner_of : t -> line:int -> Spandex_proto.Msg.device_id option
(** The registered modified owner of [line], if any. *)

val fingerprint : t -> Spandex_util.Fingerprint.t -> unit
(** Append a canonical encoding of the full architectural state for the
    model checker's visited-state cache. *)
