(** Directory MESI LLC — the last level of the hierarchical baseline
    (paper §II-A, §II-D, §IV-A "H-MESI").

    Classic read-for-ownership, line-granularity directory: GetS (ReqS)
    misses allocate and grant Exclusive when unshared; GetM (ReqO+data)
    invalidates sharers or forwards to the owner, and the line sits in a
    {e blocking} transient state until the transfer is confirmed — the
    overhead Spandex's non-blocking word-granularity transfers avoid.
    Clients are MESI L1 caches ({!Mesi_l1}) and the hierarchical GPU L2's
    backside port ({!Mesi_client}). *)

type config = {
  dir_id : Spandex_proto.Msg.device_id;  (** first bank endpoint. *)
  banks : int;
  sets : int;
  ways : int;
  access_latency : int;
}

type t

val create :
  Spandex_sim.Engine.t ->
  Spandex_net.Network.t ->
  Spandex_mem.Dram.t ->
  config ->
  t

val quiescent : t -> bool
val describe_pending : t -> string
val stats : t -> Spandex_util.Stats.t

val trace_sample : t -> time:int -> unit
(** Record pending-line and blocked-queue occupancy into the engine's
    trace sink (["dir.pending"] / ["dir.blocked"] counters); no-op when
    tracing is disabled. *)

val register_metrics : t -> device:string -> Spandex_obs.Metrics.t -> unit
(** Register directory probes: resident-line, pending and blocked gauges
    plus the reply-cache replay counter, labelled [device]. *)

(** {2 Test introspection} *)

type dir_state = D_V | D_S of Spandex_proto.Msg.device_id list | D_M of Spandex_proto.Msg.device_id

val line_state : t -> line:int -> dir_state option
val peek_word : t -> Spandex_proto.Addr.t -> int option

val owner_of : t -> line:int -> Spandex_proto.Msg.device_id option
(** The registered modified owner of [line], if any. *)

val fingerprint : t -> Spandex_util.Fingerprint.t -> unit
(** Append a canonical encoding of the full architectural state for the
    model checker's visited-state cache. *)
