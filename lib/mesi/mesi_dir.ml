module Mask = Spandex_util.Mask
module Stats = Spandex_util.Stats
module Engine = Spandex_sim.Engine
module Trace = Spandex_sim.Trace
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Linedata = Spandex_proto.Linedata
module Txn = Spandex_proto.Txn
module Network = Spandex_net.Network
module Frames = Spandex_mem.Banked_frame
module Dram = Spandex_mem.Dram

type config = {
  dir_id : Msg.device_id;  (* first bank endpoint. *)
  banks : int;
  sets : int;
  ways : int;
  access_latency : int;
}

let bank_of cfg line = cfg.dir_id + (line mod cfg.banks)

type dir_state = D_V | D_S of Msg.device_id list | D_M of Msg.device_id

type pending =
  | Fetching
  | Collecting_acks of { mutable acks_left : int; resume : unit -> unit }
  | Awaiting of {
      from : Msg.device_id;
      expect_data : bool;
      mutable satisfied : bool;
      resume : unit -> unit;
    }

type meta = {
  mutable dstate : dir_state;
  data : int array;
  mutable dirty : bool;
  mutable pending : pending option;
  mutable blocked : Msg.t list;
}

(* Per-bank mutable state (cf. Llc.bank): each directory bank runs on its
   own engine with its own stats, probe-txn allocator and trace names, and
   touches only lines ≡ bank (mod banks) — whose DRAM accesses route to
   that bank's channel.  No cross-bank shared mutable state, so the PDES
   partition can place each bank (plus its DRAM channel) on any shard. *)
type bank = {
  bk_engine : Engine.t;
  bk_txns : Txn.allocator;  (* probe ids: drawn in bank arrival order. *)
  bk_stats : Stats.t;
  bk_req_keys : Stats.key array;  (* "req.<kind>" by [Msg.req_kind_index]. *)
  bk_trace : Trace.t;
  bk_n_replay : int;  (* interned trace names (0 on a disabled sink). *)
  bk_n_pending : int;
  bk_n_blocked : int;
}

type t = {
  cfg : config;
  dram : Dram.t;
  frame : meta Frames.t;
  banks : bank array;
  (* At-most-once reply cache, armed only under fault injection: recorded
     responses per txn for non-idempotent request kinds, replayed when a
     duplicate or retried request arrives (cf. Llc.replay).  One table per
     bank — a line maps to exactly one bank. *)
  replay : (int, Msg.t list ref) Hashtbl.t array option;
}

let bank t line = t.banks.(line mod t.cfg.banks)

(* All outgoing messages carry [bank_of cfg line] as [src]; the send lands
   on that bank's engine. *)
let send t (msg : Msg.t) =
  let bk = t.banks.(msg.Msg.src - t.cfg.dir_id) in
  Engine.send_later bk.bk_engine ~delay:t.cfg.access_latency msg

let respond t (req : Msg.t) ~kind ?payload () =
  let msg =
    Msg.make ~txn:req.Msg.txn ~kind:(Msg.Rsp kind) ~line:req.Msg.line
      ~mask:req.Msg.mask ?payload ~src:(bank_of t.cfg req.Msg.line)
      ~dst:req.Msg.requestor ()
  in
  (match t.replay with
  | Some tables -> (
    match
      Hashtbl.find_opt tables.(req.Msg.line mod t.cfg.banks) req.Msg.txn
    with
    | Some sent -> sent := msg :: !sent
    | None -> ())
  | None -> ());
  send t msg

let respond_data t req meta ~kind =
  respond t req ~kind ~payload:(Msg.pooled_copy meta.data) ()

let forward t (req : Msg.t) ~kind ~dst =
  send t
    (Msg.make ~txn:req.Msg.txn ~kind:(Msg.Req kind) ~line:req.Msg.line
       ~mask:Addr.full_mask ~src:(bank_of t.cfg req.Msg.line) ~dst
       ~requestor:req.Msg.requestor ~fwd:true ())

let probe t ~kind ~dst ~line =
  send t
    (Msg.make
       ~txn:(Txn.next (bank t line).bk_txns)
       ~kind:(Msg.Probe kind) ~line ~mask:Addr.full_mask
       ~src:(bank_of t.cfg line) ~dst ())

let payload_values (msg : Msg.t) =
  match msg.Msg.payload with
  | Msg.Data v | Msg.Data_pooled v -> v
  | Msg.No_data -> invalid_arg "Mesi_dir: request missing data payload"

let rec handle t (msg : Msg.t) =
  match msg.Msg.kind with
  | Msg.Req k -> handle_req t msg k
  | Msg.Rsp k -> handle_rsp t msg k
  | Msg.Probe _ -> failwith "Mesi_dir: received a probe"

and handle_req t (msg : Msg.t) kind =
  let bk = bank t msg.Msg.line in
  Stats.bump bk.bk_stats bk.bk_req_keys.(Msg.req_kind_index kind);
  match Frames.find_exn t.frame ~line:msg.Msg.line with
  | exception Not_found ->
    if kind = Msg.ReqWB then begin
      Stats.incr bk.bk_stats "wb_stale";
      respond t msg ~kind:Msg.RspWB ()
    end
    else begin
      Stats.incr bk.bk_stats "miss";
      allocate_and_fetch t msg
    end
  | meta -> (
    Frames.touch t.frame ~line:msg.Msg.line;
    match meta.pending with
    | Some (Awaiting a) when kind = Msg.ReqWB && a.from = msg.Msg.src && not a.satisfied
      ->
      (* The owner's eviction crossed our forward/recall; the PutM carries
         the data. *)
      apply_wb t meta msg;
      respond t msg ~kind:Msg.RspWB ();
      a.satisfied <- true;
      meta.pending <- None;
      a.resume ()
    | Some _ ->
      Stats.incr bk.bk_stats "blocked";
      Msg.keep msg;
      meta.blocked <- meta.blocked @ [ msg ]
    | None -> dispatch t meta msg kind)

and dispatch t meta (msg : Msg.t) kind =
  let bk = bank t msg.Msg.line in
  Stats.incr bk.bk_stats "hit";
  match (kind, meta.dstate) with
  (* --- GetS ------------------------------------------------------------ *)
  | Msg.ReqS, D_V ->
    (* Unshared: grant Exclusive (standard MESI E optimization). *)
    Stats.incr bk.bk_stats "e_grant";
    meta.dstate <- D_M msg.Msg.requestor;
    respond_data t msg meta ~kind:Msg.RspOdata
  | Msg.ReqS, D_S sharers ->
    (* A requesting sharer is rare (it would have hit locally); skip the
       filter copy unless it is actually present. *)
    let others =
      if List.memq msg.Msg.requestor sharers then
        List.filter (fun d -> d <> msg.Msg.requestor) sharers
      else sharers
    in
    meta.dstate <- D_S (msg.Msg.requestor :: others);
    respond_data t msg meta ~kind:Msg.RspS
  | Msg.ReqS, D_M owner ->
    (* Blocking: downgrade the owner, who sends data to the requestor and a
       write-back copy here. *)
    Stats.incr bk.bk_stats "fwd_gets";
    (* The resume closure captures [msg]. *)
    Msg.keep msg;
    meta.pending <-
      Some
        (Awaiting
           {
             from = owner;
             expect_data = true;
             satisfied = false;
             resume =
               (fun () ->
                 meta.dstate <- D_S [ owner; msg.Msg.requestor ];
                 after_pending t msg.Msg.line);
           });
    forward t msg ~kind:Msg.ReqS ~dst:owner
  (* --- GetM ------------------------------------------------------------ *)
  | Msg.ReqOdata, D_V ->
    meta.dstate <- D_M msg.Msg.requestor;
    respond_data t msg meta ~kind:Msg.RspOdata
  | Msg.ReqOdata, D_S sharers ->
    let targets =
      if List.memq msg.Msg.requestor sharers then
        List.filter (fun d -> d <> msg.Msg.requestor) sharers
      else sharers
    in
    let grant () =
      meta.dstate <- D_M msg.Msg.requestor;
      respond_data t msg meta ~kind:Msg.RspOdata
    in
    if targets = [] then grant ()
    else begin
      Stats.incr bk.bk_stats "inv_bursts";
      Msg.keep msg;
      meta.pending <-
        Some
          (Collecting_acks
             {
               acks_left = List.length targets;
               resume =
                 (fun () ->
                   grant ();
                   after_pending t msg.Msg.line);
             });
      List.iter
        (fun d ->
          Stats.incr bk.bk_stats "inv_sent";
          probe t ~kind:Msg.Inv ~dst:d ~line:msg.Msg.line)
        targets
    end
  | Msg.ReqOdata, D_M owner when owner = msg.Msg.requestor ->
    (* Shouldn't arise (the owner writes locally), but answer with data. *)
    respond_data t msg meta ~kind:Msg.RspOdata
  | Msg.ReqOdata, D_M owner ->
    (* Blocking transfer: the old owner supplies data to the requestor and
       confirms to the directory. *)
    Stats.incr bk.bk_stats "fwd_getm";
    Msg.keep msg;
    meta.pending <-
      Some
        (Awaiting
           {
             from = owner;
             expect_data = false;
             satisfied = false;
             resume =
               (fun () ->
                 meta.dstate <- D_M msg.Msg.requestor;
                 after_pending t msg.Msg.line);
           });
    forward t msg ~kind:Msg.ReqOdata ~dst:owner
  (* --- PutM ------------------------------------------------------------ *)
  | Msg.ReqWB, _ ->
    apply_wb t meta msg;
    respond t msg ~kind:Msg.RspWB ()
  | (Msg.ReqV | Msg.ReqWT | Msg.ReqO | Msg.ReqWTdata), _ ->
    failwith
      (Format.asprintf "Mesi_dir: unsupported request %a (MESI is RfO-only)"
         Msg.pp msg)

and apply_wb t meta (msg : Msg.t) =
  match meta.dstate with
  | D_M owner when owner = msg.Msg.src ->
    Stats.incr (bank t msg.Msg.line).bk_stats "wb_live";
    let values = payload_values msg in
    Linedata.unpack_into ~mask:msg.Msg.mask ~values ~full:meta.data;
    meta.dirty <- true;
    meta.dstate <- D_V
  | D_M _ | D_V | D_S _ -> Stats.incr (bank t msg.Msg.line).bk_stats "wb_stale"

and handle_rsp t (msg : Msg.t) kind =
  match Frames.find_exn t.frame ~line:msg.Msg.line with
  | exception Not_found ->
    Stats.incr (bank t msg.Msg.line).bk_stats "rsp_orphan"
  | meta -> (
    match (kind, meta.pending) with
    | Msg.Ack, Some (Collecting_acks c) ->
      c.acks_left <- c.acks_left - 1;
      if c.acks_left = 0 then begin
        meta.pending <- None;
        c.resume ()
      end
    | Msg.RspRvkO, Some (Awaiting a) when a.from = msg.Msg.src ->
      if a.satisfied then Stats.incr (bank t msg.Msg.line).bk_stats "rvko_dup"
      else begin
        (if a.expect_data then
           match msg.Msg.payload with
           | Msg.Data values | Msg.Data_pooled values ->
             Linedata.unpack_into ~mask:msg.Msg.mask ~values ~full:meta.data;
             meta.dirty <- true
           | Msg.No_data ->
             (* Data already arrived in a crossing PutM. *)
             ());
        a.satisfied <- true;
        meta.pending <- None;
        a.resume ()
      end
    | (Msg.Ack | Msg.RspRvkO), _ ->
      Stats.incr (bank t msg.Msg.line).bk_stats "rsp_orphan"
    | _ -> failwith "Mesi_dir: unexpected response kind")

and after_pending t line =
  match Frames.find_exn t.frame ~line with
  | exception Not_found -> ()
  | meta ->
    if meta.pending = None then begin
      match meta.blocked with
      | [] -> ()
      | msgs ->
        meta.blocked <- [];
        List.iter (fun m -> handle t m) msgs
    end

and can_evict ~line:_ meta =
  meta.pending = None && meta.blocked = []
  && match meta.dstate with D_V -> true | D_S _ | D_M _ -> false

and allocate_and_fetch t (msg : Msg.t) =
  let line = msg.Msg.line in
  let bk = bank t line in
  let meta =
    {
      dstate = D_V;
      data = Array.make Addr.words_per_line 0;
      dirty = false;
      pending = None;
      blocked = [];
    }
  in
  let start_fetch () =
    meta.pending <- Some Fetching;
    Msg.keep msg;
    meta.blocked <- [ msg ];
    Dram.read_line t.dram ~line ~k:(fun values ->
        Array.blit values 0 meta.data 0 Addr.words_per_line;
        meta.pending <- None;
        after_pending t line)
  in
  match Frames.insert t.frame ~line meta ~can_evict with
  | Spandex_mem.Cache_frame.Inserted -> start_fetch ()
  | Spandex_mem.Cache_frame.Evicted (vline, vmeta) ->
    Stats.incr bk.bk_stats "evict";
    if vmeta.dirty then
      Dram.write_words t.dram ~line:vline ~mask:Addr.full_mask
        ~values:vmeta.data;
    start_fetch ()
  | Spandex_mem.Cache_frame.No_room -> begin
    match find_recall_victim t line with
    | Some (vline, vmeta) ->
      Stats.incr bk.bk_stats "evict_recall";
      Msg.keep msg;
      recall t vline vmeta ~k:(fun () -> handle t msg)
    | None ->
      Stats.incr bk.bk_stats "alloc_stall";
      Msg.keep msg;
      Engine.schedule bk.bk_engine ~delay:8 (fun () -> handle t msg)
  end

and find_recall_victim t line =
  Frames.lru_matching t.frame ~set_line:line ~f:(fun ~line:_ m ->
      m.pending = None)

(* Forcibly reclaim a line for eviction: invalidate sharers or revoke the
   owner, write back, drop, then replay its queued requests. *)
and recall t line meta ~k =
  let finish () =
    let queued = meta.blocked in
    meta.blocked <- [];
    if meta.dirty then
      Dram.write_words t.dram ~line ~mask:Addr.full_mask ~values:meta.data;
    Frames.remove t.frame ~line;
    k ();
    List.iter (fun m -> handle t m) queued
  in
  match meta.dstate with
  | D_V -> finish ()
  | D_S sharers ->
    meta.dstate <- D_V;
    meta.pending <-
      Some (Collecting_acks { acks_left = List.length sharers; resume = finish });
    List.iter
      (fun d ->
        Stats.incr (bank t line).bk_stats "inv_sent";
        probe t ~kind:Msg.Inv ~dst:d ~line)
      sharers
  | D_M owner ->
    (* dstate stays D_M so a crossing PutM from the owner is merged. *)
    meta.pending <-
      Some
        (Awaiting { from = owner; expect_data = true; satisfied = false; resume = finish });
    Stats.incr (bank t line).bk_stats "rvko_sent";
    probe t ~kind:Msg.RvkO ~dst:owner ~line

(* Request kinds whose reprocessing is NOT idempotent at the directory:
   a duplicate ReqS or ReqOdata for a txn already served would re-run
   state transitions (sharer insertion, owner transfer) against a world
   the original already changed.  ReqWB reprocessing is idempotent (the
   owner check rejects stale PutMs). *)
let replay_guarded = function
  | Msg.ReqS | Msg.ReqOdata -> true
  | Msg.ReqV | Msg.ReqWT | Msg.ReqO | Msg.ReqWTdata | Msg.ReqWB -> false

(* Network-facing entry point.  Under fault injection, guarded requests
   are deduplicated by txn id: the first arrival is marked and handled,
   later arrivals replay whatever responses the original produced. *)
let arrival t (msg : Msg.t) =
  match t.replay with
  | None -> handle t msg
  | Some tables -> (
    match msg.Msg.kind with
    | Msg.Req kind when (not msg.Msg.fwd) && replay_guarded kind -> (
      let bk = bank t msg.Msg.line in
      let table = tables.(msg.Msg.line mod t.cfg.banks) in
      match Hashtbl.find_opt table msg.Msg.txn with
      | Some sent ->
        Stats.incr bk.bk_stats "replayed";
        if Trace.on bk.bk_trace then
          Trace.instant bk.bk_trace ~time:(Engine.now bk.bk_engine)
            ~dev:(bank_of t.cfg msg.Msg.line) ~name:bk.bk_n_replay
            ~txn:msg.Msg.txn ~arg:(List.length !sent);
        List.iter (fun m -> send t m) (List.rev !sent)
      | None ->
        Hashtbl.add table msg.Msg.txn (ref []);
        handle t msg)
    | _ -> handle t msg)

let create ?bank_engines engine net dram (cfg : config) =
  (match bank_engines with
  | Some a when Array.length a <> cfg.banks ->
    invalid_arg "Mesi_dir.create: bank_engines length must equal banks"
  | _ -> ());
  let engine_of b =
    match bank_engines with Some a -> a.(b) | None -> engine
  in
  let make_bank b =
    let stats = Stats.create () in
    let e = engine_of b in
    let trace = Engine.trace e in
    {
      bk_engine = e;
      bk_txns = Txn.allocator ~id:(cfg.dir_id + b);
      bk_stats = stats;
      bk_req_keys =
        (let keys = Array.make 7 (Stats.key stats "req.ReqV") in
         List.iter
           (fun k ->
             keys.(Msg.req_kind_index k) <-
               Stats.key stats ("req." ^ Msg.req_kind_name k))
           Msg.all_req_kinds;
         keys);
      bk_trace = trace;
      bk_n_replay = Trace.name trace "dir.replay";
      bk_n_pending = Trace.name trace "dir.pending";
      bk_n_blocked = Trace.name trace "dir.blocked";
    }
  in
  let t =
    {
      cfg;
      dram;
      frame = Frames.create ~banks:cfg.banks ~sets:cfg.sets ~ways:cfg.ways;
      banks = Array.init cfg.banks make_bank;
      replay =
        (if Network.faults_enabled net then
           Some (Array.init cfg.banks (fun _ -> Hashtbl.create 256))
         else None);
    }
  in
  for b = 0 to cfg.banks - 1 do
    Network.register net ~id:(cfg.dir_id + b) (fun msg -> arrival t msg)
  done;
  Array.iteri
    (fun b bk ->
      Engine.register_pending_source bk.bk_engine (fun () ->
          Frames.fold_bank t.frame b ~init:[] ~f:(fun acc ~line m ->
              let item what =
                {
                  Engine.pw_device =
                    Printf.sprintf "dir.%d" (bank_of t.cfg line);
                  pw_txn = -1;
                  pw_line = line;
                  pw_what = what;
                }
              in
              let acc =
                match m.pending with
                | None -> acc
                | Some Fetching -> item "fetching from DRAM" :: acc
                | Some (Collecting_acks c) ->
                  item (Printf.sprintf "collecting %d inv ack(s)" c.acks_left)
                  :: acc
                | Some (Awaiting { from; _ }) ->
                  item (Printf.sprintf "awaiting owner %d" from) :: acc
              in
              if m.blocked = [] then acc
              else
                item
                  (Printf.sprintf "%d blocked request(s)"
                     (List.length m.blocked))
                :: acc)))
    t.banks;
  t

let bank_count t = t.cfg.banks

let bank_trace_sample t b ~time =
  let bk = t.banks.(b) in
  let pending, blocked =
    Frames.fold_bank t.frame b ~init:(0, 0) ~f:(fun (p, bl) ~line:_ m ->
        ((if m.pending = None then p else p + 1), bl + List.length m.blocked))
  in
  Trace.counter bk.bk_trace ~time ~dev:(t.cfg.dir_id + b) ~name:bk.bk_n_pending
    ~value:pending;
  Trace.counter bk.bk_trace ~time ~dev:(t.cfg.dir_id + b) ~name:bk.bk_n_blocked
    ~value:blocked

let trace_sample t ~time =
  for b = 0 to t.cfg.banks - 1 do
    bank_trace_sample t b ~time
  done

let bank_register_metrics t ~device b reg =
  let module Metrics = Spandex_obs.Metrics in
  let bk = t.banks.(b) in
  let labels = [ ("bank", string_of_int b); ("device", device) ] in
  Metrics.gauge reg ~name:"spandex_dir_lines" ~labels
    ~help:"resident directory lines" (fun () -> Frames.count_bank t.frame b);
  Metrics.gauge reg ~name:"spandex_dir_pending" ~labels
    ~help:"lines with an in-flight directory transaction" (fun () ->
      Frames.fold_bank t.frame b ~init:0 ~f:(fun p ~line:_ m ->
          if m.pending = None then p else p + 1));
  Metrics.gauge reg ~name:"spandex_dir_blocked" ~labels
    ~help:"requests parked behind a pending line" (fun () ->
      Frames.fold_bank t.frame b ~init:0 ~f:(fun bl ~line:_ m ->
          bl + List.length m.blocked));
  Metrics.counter reg ~name:"spandex_dir_replayed_total" ~labels
    ~help:"duplicate requests answered from the reply cache (fault runs)"
    (fun () -> Stats.get bk.bk_stats "replayed")

let register_metrics t ~device reg =
  for b = 0 to t.cfg.banks - 1 do
    bank_register_metrics t ~device b reg
  done

let bank_quiescent t b =
  Frames.fold_bank t.frame b ~init:true ~f:(fun acc ~line:_ m ->
      acc && m.pending = None && m.blocked = [])

let quiescent t =
  let ok = ref true in
  for b = 0 to t.cfg.banks - 1 do
    ok := !ok && bank_quiescent t b
  done;
  !ok

let bank_describe_pending t b =
  let busy =
    Frames.fold_bank t.frame b ~init:[] ~f:(fun acc ~line m ->
        match m.pending with
        | None -> acc
        | Some _ ->
          Printf.sprintf "line %d busy (+%d blocked)" line
            (List.length m.blocked)
          :: acc)
  in
  if busy = [] then Printf.sprintf "dir.%d: idle" (t.cfg.dir_id + b)
  else Printf.sprintf "dir.%d: %s" (t.cfg.dir_id + b) (String.concat "; " busy)

let describe_pending t =
  String.concat "; "
    (List.init t.cfg.banks (fun b -> bank_describe_pending t b))

let bank_stats t b = t.banks.(b).bk_stats

let line_state t ~line =
  Option.map (fun m -> m.dstate) (Frames.find t.frame ~line)

let peek_word t { Addr.line; word } =
  Option.map (fun m -> m.data.(word)) (Frames.find t.frame ~line)

(* ----- model-checker introspection ----------------------------------------- *)

module Fp = Spandex_util.Fingerprint

let fingerprint t fp =
  Fp.tag fp "dir";
  let lines =
    Frames.fold t.frame ~init:[] ~f:(fun acc ~line m -> (line, m) :: acc)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Fp.int fp (List.length lines);
  List.iter
    (fun (line, m) ->
      Fp.int fp line;
      (match m.dstate with
      | D_V -> Fp.int fp 0
      | D_S sharers ->
        Fp.int fp 1;
        Fp.list fp Fp.int (List.sort compare sharers)
      | D_M owner ->
        Fp.int fp 2;
        Fp.int fp owner);
      (* Data is stale while a modified owner holds the line. *)
      (match m.dstate with D_M _ -> () | D_V | D_S _ -> Fp.array fp m.data);
      Fp.bool fp m.dirty;
      (match m.pending with
      | None -> Fp.tag fp "-"
      | Some Fetching -> Fp.tag fp "F"
      | Some (Collecting_acks c) ->
        Fp.tag fp "C";
        Fp.int fp c.acks_left
      | Some (Awaiting { from; expect_data; satisfied; _ }) ->
        Fp.tag fp "A";
        Fp.int fp from;
        Fp.bool fp expect_data;
        Fp.bool fp satisfied);
      Fp.list fp Msg.fingerprint m.blocked)
    lines;
  match t.replay with
  | None -> ()
  | Some tables ->
    let entries =
      Array.fold_left
        (fun acc table ->
          Hashtbl.fold (fun txn msgs acc -> (txn, !msgs) :: acc) table acc)
        [] tables
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    Fp.list fp
      (fun fp (txn, msgs) ->
        Fp.txn fp txn;
        Fp.list fp Msg.fingerprint msgs)
      entries

let owner_of t ~line =
  match line_state t ~line with Some (D_M o) -> Some o | _ -> None
