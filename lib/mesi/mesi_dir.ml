module Mask = Spandex_util.Mask
module Stats = Spandex_util.Stats
module Engine = Spandex_sim.Engine
module Trace = Spandex_sim.Trace
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Linedata = Spandex_proto.Linedata
module Txn = Spandex_proto.Txn
module Network = Spandex_net.Network
module Cache_frame = Spandex_mem.Cache_frame
module Dram = Spandex_mem.Dram

type config = {
  dir_id : Msg.device_id;  (* first bank endpoint. *)
  banks : int;
  sets : int;
  ways : int;
  access_latency : int;
}

let bank_of cfg line = cfg.dir_id + (line mod cfg.banks)

type dir_state = D_V | D_S of Msg.device_id list | D_M of Msg.device_id

type pending =
  | Fetching
  | Collecting_acks of { mutable acks_left : int; resume : unit -> unit }
  | Awaiting of {
      from : Msg.device_id;
      expect_data : bool;
      mutable satisfied : bool;
      resume : unit -> unit;
    }

type meta = {
  mutable dstate : dir_state;
  data : int array;
  mutable dirty : bool;
  mutable pending : pending option;
  mutable blocked : Msg.t list;
}

type t = {
  engine : Engine.t;
  net : Network.t;
  dram : Dram.t;
  cfg : config;
  txns : Txn.allocator;  (* probe ids: drawn in directory arrival order. *)
  frame : meta Cache_frame.t;
  stats : Stats.t;
  req_keys : Stats.key array;  (* "req.<kind>" by [Msg.req_kind_index]. *)
  (* At-most-once reply cache, armed only under fault injection: recorded
     responses per txn for non-idempotent request kinds, replayed when a
     duplicate or retried request arrives (cf. Llc.replay). *)
  replay : (int, Msg.t list ref) Hashtbl.t option;
  trace : Trace.t;
  n_replay : int;  (** interned trace names (0 on a disabled sink). *)
  n_pending : int;
  n_blocked : int;
}

let send t msg = Engine.send_later t.engine ~delay:t.cfg.access_latency msg

let respond t (req : Msg.t) ~kind ?payload () =
  let msg =
    Msg.make ~txn:req.Msg.txn ~kind:(Msg.Rsp kind) ~line:req.Msg.line
      ~mask:req.Msg.mask ?payload ~src:(bank_of t.cfg req.Msg.line)
      ~dst:req.Msg.requestor ()
  in
  (match t.replay with
  | Some table -> (
    match Hashtbl.find_opt table req.Msg.txn with
    | Some sent -> sent := msg :: !sent
    | None -> ())
  | None -> ());
  send t msg

let respond_data t req meta ~kind =
  respond t req ~kind ~payload:(Msg.pooled_copy meta.data) ()

let forward t (req : Msg.t) ~kind ~dst =
  send t
    (Msg.make ~txn:req.Msg.txn ~kind:(Msg.Req kind) ~line:req.Msg.line
       ~mask:Addr.full_mask ~src:(bank_of t.cfg req.Msg.line) ~dst
       ~requestor:req.Msg.requestor ~fwd:true ())

let probe t ~kind ~dst ~line =
  send t
    (Msg.make ~txn:(Txn.next t.txns) ~kind:(Msg.Probe kind) ~line
       ~mask:Addr.full_mask ~src:(bank_of t.cfg line) ~dst ())

let payload_values (msg : Msg.t) =
  match msg.Msg.payload with
  | Msg.Data v | Msg.Data_pooled v -> v
  | Msg.No_data -> invalid_arg "Mesi_dir: request missing data payload"

let rec handle t (msg : Msg.t) =
  match msg.Msg.kind with
  | Msg.Req k -> handle_req t msg k
  | Msg.Rsp k -> handle_rsp t msg k
  | Msg.Probe _ -> failwith "Mesi_dir: received a probe"

and handle_req t (msg : Msg.t) kind =
  Stats.bump t.stats t.req_keys.(Msg.req_kind_index kind);
  match Cache_frame.find_exn t.frame ~line:msg.Msg.line with
  | exception Not_found ->
    if kind = Msg.ReqWB then begin
      Stats.incr t.stats "wb_stale";
      respond t msg ~kind:Msg.RspWB ()
    end
    else begin
      Stats.incr t.stats "miss";
      allocate_and_fetch t msg
    end
  | meta -> (
    Cache_frame.touch t.frame ~line:msg.Msg.line;
    match meta.pending with
    | Some (Awaiting a) when kind = Msg.ReqWB && a.from = msg.Msg.src && not a.satisfied
      ->
      (* The owner's eviction crossed our forward/recall; the PutM carries
         the data. *)
      apply_wb t meta msg;
      respond t msg ~kind:Msg.RspWB ();
      a.satisfied <- true;
      meta.pending <- None;
      a.resume ()
    | Some _ ->
      Stats.incr t.stats "blocked";
      Msg.keep msg;
      meta.blocked <- meta.blocked @ [ msg ]
    | None -> dispatch t meta msg kind)

and dispatch t meta (msg : Msg.t) kind =
  Stats.incr t.stats "hit";
  match (kind, meta.dstate) with
  (* --- GetS ------------------------------------------------------------ *)
  | Msg.ReqS, D_V ->
    (* Unshared: grant Exclusive (standard MESI E optimization). *)
    Stats.incr t.stats "e_grant";
    meta.dstate <- D_M msg.Msg.requestor;
    respond_data t msg meta ~kind:Msg.RspOdata
  | Msg.ReqS, D_S sharers ->
    (* A requesting sharer is rare (it would have hit locally); skip the
       filter copy unless it is actually present. *)
    let others =
      if List.memq msg.Msg.requestor sharers then
        List.filter (fun d -> d <> msg.Msg.requestor) sharers
      else sharers
    in
    meta.dstate <- D_S (msg.Msg.requestor :: others);
    respond_data t msg meta ~kind:Msg.RspS
  | Msg.ReqS, D_M owner ->
    (* Blocking: downgrade the owner, who sends data to the requestor and a
       write-back copy here. *)
    Stats.incr t.stats "fwd_gets";
    (* The resume closure captures [msg]. *)
    Msg.keep msg;
    meta.pending <-
      Some
        (Awaiting
           {
             from = owner;
             expect_data = true;
             satisfied = false;
             resume =
               (fun () ->
                 meta.dstate <- D_S [ owner; msg.Msg.requestor ];
                 after_pending t msg.Msg.line);
           });
    forward t msg ~kind:Msg.ReqS ~dst:owner
  (* --- GetM ------------------------------------------------------------ *)
  | Msg.ReqOdata, D_V ->
    meta.dstate <- D_M msg.Msg.requestor;
    respond_data t msg meta ~kind:Msg.RspOdata
  | Msg.ReqOdata, D_S sharers ->
    let targets =
      if List.memq msg.Msg.requestor sharers then
        List.filter (fun d -> d <> msg.Msg.requestor) sharers
      else sharers
    in
    let grant () =
      meta.dstate <- D_M msg.Msg.requestor;
      respond_data t msg meta ~kind:Msg.RspOdata
    in
    if targets = [] then grant ()
    else begin
      Stats.incr t.stats "inv_bursts";
      Msg.keep msg;
      meta.pending <-
        Some
          (Collecting_acks
             {
               acks_left = List.length targets;
               resume =
                 (fun () ->
                   grant ();
                   after_pending t msg.Msg.line);
             });
      List.iter
        (fun d ->
          Stats.incr t.stats "inv_sent";
          probe t ~kind:Msg.Inv ~dst:d ~line:msg.Msg.line)
        targets
    end
  | Msg.ReqOdata, D_M owner when owner = msg.Msg.requestor ->
    (* Shouldn't arise (the owner writes locally), but answer with data. *)
    respond_data t msg meta ~kind:Msg.RspOdata
  | Msg.ReqOdata, D_M owner ->
    (* Blocking transfer: the old owner supplies data to the requestor and
       confirms to the directory. *)
    Stats.incr t.stats "fwd_getm";
    Msg.keep msg;
    meta.pending <-
      Some
        (Awaiting
           {
             from = owner;
             expect_data = false;
             satisfied = false;
             resume =
               (fun () ->
                 meta.dstate <- D_M msg.Msg.requestor;
                 after_pending t msg.Msg.line);
           });
    forward t msg ~kind:Msg.ReqOdata ~dst:owner
  (* --- PutM ------------------------------------------------------------ *)
  | Msg.ReqWB, _ ->
    apply_wb t meta msg;
    respond t msg ~kind:Msg.RspWB ()
  | (Msg.ReqV | Msg.ReqWT | Msg.ReqO | Msg.ReqWTdata), _ ->
    failwith
      (Format.asprintf "Mesi_dir: unsupported request %a (MESI is RfO-only)"
         Msg.pp msg)

and apply_wb t meta (msg : Msg.t) =
  match meta.dstate with
  | D_M owner when owner = msg.Msg.src ->
    Stats.incr t.stats "wb_live";
    let values = payload_values msg in
    Linedata.unpack_into ~mask:msg.Msg.mask ~values ~full:meta.data;
    meta.dirty <- true;
    meta.dstate <- D_V
  | D_M _ | D_V | D_S _ -> Stats.incr t.stats "wb_stale"

and handle_rsp t (msg : Msg.t) kind =
  match Cache_frame.find_exn t.frame ~line:msg.Msg.line with
  | exception Not_found -> Stats.incr t.stats "rsp_orphan"
  | meta -> (
    match (kind, meta.pending) with
    | Msg.Ack, Some (Collecting_acks c) ->
      c.acks_left <- c.acks_left - 1;
      if c.acks_left = 0 then begin
        meta.pending <- None;
        c.resume ()
      end
    | Msg.RspRvkO, Some (Awaiting a) when a.from = msg.Msg.src ->
      if a.satisfied then Stats.incr t.stats "rvko_dup"
      else begin
        (if a.expect_data then
           match msg.Msg.payload with
           | Msg.Data values | Msg.Data_pooled values ->
             Linedata.unpack_into ~mask:msg.Msg.mask ~values ~full:meta.data;
             meta.dirty <- true
           | Msg.No_data ->
             (* Data already arrived in a crossing PutM. *)
             ());
        a.satisfied <- true;
        meta.pending <- None;
        a.resume ()
      end
    | (Msg.Ack | Msg.RspRvkO), _ -> Stats.incr t.stats "rsp_orphan"
    | _ -> failwith "Mesi_dir: unexpected response kind")

and after_pending t line =
  match Cache_frame.find_exn t.frame ~line with
  | exception Not_found -> ()
  | meta ->
    if meta.pending = None then begin
      match meta.blocked with
      | [] -> ()
      | msgs ->
        meta.blocked <- [];
        List.iter (fun m -> handle t m) msgs
    end

and can_evict ~line:_ meta =
  meta.pending = None && meta.blocked = []
  && match meta.dstate with D_V -> true | D_S _ | D_M _ -> false

and allocate_and_fetch t (msg : Msg.t) =
  let line = msg.Msg.line in
  let meta =
    {
      dstate = D_V;
      data = Array.make Addr.words_per_line 0;
      dirty = false;
      pending = None;
      blocked = [];
    }
  in
  let start_fetch () =
    meta.pending <- Some Fetching;
    Msg.keep msg;
    meta.blocked <- [ msg ];
    Dram.read_line t.dram ~line ~k:(fun values ->
        Array.blit values 0 meta.data 0 Addr.words_per_line;
        meta.pending <- None;
        after_pending t line)
  in
  match Cache_frame.insert t.frame ~line meta ~can_evict with
  | Cache_frame.Inserted -> start_fetch ()
  | Cache_frame.Evicted (vline, vmeta) ->
    Stats.incr t.stats "evict";
    if vmeta.dirty then
      Dram.write_words t.dram ~line:vline ~mask:Addr.full_mask
        ~values:vmeta.data;
    start_fetch ()
  | Cache_frame.No_room -> begin
    match find_recall_victim t line with
    | Some (vline, vmeta) ->
      Stats.incr t.stats "evict_recall";
      Msg.keep msg;
      recall t vline vmeta ~k:(fun () -> handle t msg)
    | None ->
      Stats.incr t.stats "alloc_stall";
      Msg.keep msg;
      Engine.schedule t.engine ~delay:8 (fun () -> handle t msg)
  end

and find_recall_victim t line =
  Cache_frame.lru_matching t.frame ~set_line:line ~f:(fun ~line:_ m ->
      m.pending = None)

(* Forcibly reclaim a line for eviction: invalidate sharers or revoke the
   owner, write back, drop, then replay its queued requests. *)
and recall t line meta ~k =
  let finish () =
    let queued = meta.blocked in
    meta.blocked <- [];
    if meta.dirty then
      Dram.write_words t.dram ~line ~mask:Addr.full_mask ~values:meta.data;
    Cache_frame.remove t.frame ~line;
    k ();
    List.iter (fun m -> handle t m) queued
  in
  match meta.dstate with
  | D_V -> finish ()
  | D_S sharers ->
    meta.dstate <- D_V;
    meta.pending <-
      Some (Collecting_acks { acks_left = List.length sharers; resume = finish });
    List.iter
      (fun d ->
        Stats.incr t.stats "inv_sent";
        probe t ~kind:Msg.Inv ~dst:d ~line)
      sharers
  | D_M owner ->
    (* dstate stays D_M so a crossing PutM from the owner is merged. *)
    meta.pending <-
      Some
        (Awaiting { from = owner; expect_data = true; satisfied = false; resume = finish });
    Stats.incr t.stats "rvko_sent";
    probe t ~kind:Msg.RvkO ~dst:owner ~line

(* Request kinds whose reprocessing is NOT idempotent at the directory:
   a duplicate ReqS or ReqOdata for a txn already served would re-run
   state transitions (sharer insertion, owner transfer) against a world
   the original already changed.  ReqWB reprocessing is idempotent (the
   owner check rejects stale PutMs). *)
let replay_guarded = function
  | Msg.ReqS | Msg.ReqOdata -> true
  | Msg.ReqV | Msg.ReqWT | Msg.ReqO | Msg.ReqWTdata | Msg.ReqWB -> false

(* Network-facing entry point.  Under fault injection, guarded requests
   are deduplicated by txn id: the first arrival is marked and handled,
   later arrivals replay whatever responses the original produced. *)
let arrival t (msg : Msg.t) =
  match t.replay with
  | None -> handle t msg
  | Some table -> (
    match msg.Msg.kind with
    | Msg.Req kind when (not msg.Msg.fwd) && replay_guarded kind -> (
      match Hashtbl.find_opt table msg.Msg.txn with
      | Some sent ->
        Stats.incr t.stats "replayed";
        if Trace.on t.trace then
          Trace.instant t.trace ~time:(Engine.now t.engine)
            ~dev:(bank_of t.cfg msg.Msg.line) ~name:t.n_replay
            ~txn:msg.Msg.txn ~arg:(List.length !sent);
        List.iter (fun m -> send t m) (List.rev !sent)
      | None ->
        Hashtbl.add table msg.Msg.txn (ref []);
        handle t msg)
    | _ -> handle t msg)

let create engine net dram cfg =
  let stats = Stats.create () in
  let trace = Engine.trace engine in
  let t =
    {
      engine;
      net;
      dram;
      cfg;
      txns = Txn.allocator ~id:cfg.dir_id;
      frame = Cache_frame.create ~sets:cfg.sets ~ways:cfg.ways;
      stats;
      req_keys =
        (let keys = Array.make 7 (Stats.key stats "req.ReqV") in
         List.iter
           (fun k ->
             keys.(Msg.req_kind_index k) <-
               Stats.key stats ("req." ^ Msg.req_kind_name k))
           Msg.all_req_kinds;
         keys);
      replay =
        (if Network.faults_enabled net then Some (Hashtbl.create 256) else None);
      trace;
      n_replay = Trace.name trace "dir.replay";
      n_pending = Trace.name trace "dir.pending";
      n_blocked = Trace.name trace "dir.blocked";
    }
  in
  for b = 0 to cfg.banks - 1 do
    Network.register net ~id:(cfg.dir_id + b) (fun msg -> arrival t msg)
  done;
  Engine.register_pending_source engine (fun () ->
      Cache_frame.fold t.frame ~init:[] ~f:(fun acc ~line m ->
          let item what =
            {
              Engine.pw_device = Printf.sprintf "dir.%d" (bank_of t.cfg line);
              pw_txn = -1;
              pw_line = line;
              pw_what = what;
            }
          in
          let acc =
            match m.pending with
            | None -> acc
            | Some Fetching -> item "fetching from DRAM" :: acc
            | Some (Collecting_acks c) ->
              item (Printf.sprintf "collecting %d inv ack(s)" c.acks_left)
              :: acc
            | Some (Awaiting { from; _ }) ->
              item (Printf.sprintf "awaiting owner %d" from) :: acc
          in
          if m.blocked = [] then acc
          else
            item (Printf.sprintf "%d blocked request(s)"
                    (List.length m.blocked))
            :: acc));
  t

let trace_sample t ~time =
  let pending, blocked =
    Cache_frame.fold t.frame ~init:(0, 0) ~f:(fun (p, b) ~line:_ m ->
        ( (if m.pending = None then p else p + 1),
          b + List.length m.blocked ))
  in
  Trace.counter t.trace ~time ~dev:t.cfg.dir_id ~name:t.n_pending
    ~value:pending;
  Trace.counter t.trace ~time ~dev:t.cfg.dir_id ~name:t.n_blocked
    ~value:blocked

let register_metrics t ~device reg =
  let module Metrics = Spandex_obs.Metrics in
  let labels = [ ("device", device) ] in
  Metrics.gauge reg ~name:"spandex_dir_lines" ~labels
    ~help:"resident directory lines" (fun () -> Cache_frame.count t.frame);
  Metrics.gauge reg ~name:"spandex_dir_pending" ~labels
    ~help:"lines with an in-flight directory transaction" (fun () ->
      Cache_frame.fold t.frame ~init:0 ~f:(fun p ~line:_ m ->
          if m.pending = None then p else p + 1));
  Metrics.gauge reg ~name:"spandex_dir_blocked" ~labels
    ~help:"requests parked behind a pending line" (fun () ->
      Cache_frame.fold t.frame ~init:0 ~f:(fun b ~line:_ m ->
          b + List.length m.blocked));
  Metrics.counter reg ~name:"spandex_dir_replayed_total" ~labels
    ~help:"duplicate requests answered from the reply cache (fault runs)"
    (fun () -> Stats.get t.stats "replayed")

let quiescent t =
  Cache_frame.fold t.frame ~init:true ~f:(fun acc ~line:_ m ->
      acc && m.pending = None && m.blocked = [])

let describe_pending t =
  let busy =
    Cache_frame.fold t.frame ~init:[] ~f:(fun acc ~line m ->
        match m.pending with
        | None -> acc
        | Some _ ->
          Printf.sprintf "line %d busy (+%d blocked)" line
            (List.length m.blocked)
          :: acc)
  in
  if busy = [] then "dir: idle" else "dir: " ^ String.concat "; " busy

let stats t = t.stats

let line_state t ~line =
  Option.map (fun m -> m.dstate) (Cache_frame.find t.frame ~line)

let peek_word t { Addr.line; word } =
  Option.map (fun m -> m.data.(word)) (Cache_frame.find t.frame ~line)

(* ----- model-checker introspection ----------------------------------------- *)

module Fp = Spandex_util.Fingerprint

let fingerprint t fp =
  Fp.tag fp "dir";
  let lines =
    Cache_frame.fold t.frame ~init:[] ~f:(fun acc ~line m -> (line, m) :: acc)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Fp.int fp (List.length lines);
  List.iter
    (fun (line, m) ->
      Fp.int fp line;
      (match m.dstate with
      | D_V -> Fp.int fp 0
      | D_S sharers ->
        Fp.int fp 1;
        Fp.list fp Fp.int (List.sort compare sharers)
      | D_M owner ->
        Fp.int fp 2;
        Fp.int fp owner);
      (* Data is stale while a modified owner holds the line. *)
      (match m.dstate with D_M _ -> () | D_V | D_S _ -> Fp.array fp m.data);
      Fp.bool fp m.dirty;
      (match m.pending with
      | None -> Fp.tag fp "-"
      | Some Fetching -> Fp.tag fp "F"
      | Some (Collecting_acks c) ->
        Fp.tag fp "C";
        Fp.int fp c.acks_left
      | Some (Awaiting { from; expect_data; satisfied; _ }) ->
        Fp.tag fp "A";
        Fp.int fp from;
        Fp.bool fp expect_data;
        Fp.bool fp satisfied);
      Fp.list fp Msg.fingerprint m.blocked)
    lines;
  match t.replay with
  | None -> ()
  | Some table ->
    let entries =
      Hashtbl.fold (fun txn msgs acc -> (txn, !msgs) :: acc) table []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    Fp.list fp
      (fun fp (txn, msgs) ->
        Fp.txn fp txn;
        Fp.list fp Msg.fingerprint msgs)
      entries

let owner_of t ~line =
  match line_state t ~line with Some (D_M o) -> Some o | _ -> None
