module Stats = Spandex_util.Stats
module Engine = Spandex_sim.Engine
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Network = Spandex_net.Network
module Mshr = Spandex_mem.Mshr
module Backing = Spandex.Backing
module Chassis = Spandex_l1.Chassis

type config = {
  id : Msg.device_id;
  dir_id : Msg.device_id;
  dir_banks : int;
  hit_latency : int;
}

type pstate = P_I | P_S | P_M

type acq = {
  a_line : int;
  a_k : int array option -> excl:bool -> unit;
}

type wb = { w_line : int; w_values : int array; w_k : unit -> unit }
type outstanding = Acq of acq | Wb of wb

type t = {
  ch : outstanding Chassis.t;
  cfg : config;
  states : (int, pstate) Hashtbl.t;
  (* Interned counters for the per-request fast paths. *)
  k_gets : Stats.key;
  k_getm : Stats.key;
  k_putm : Stats.key;
  mutable parked : int;  (* requests waiting for an MSHR slot. *)
  mutable recall_handler : Backing.recall_handler;
}

let state t line = Option.value ~default:P_I (Hashtbl.find_opt t.states line)

let set_state t line = function
  | P_I -> Hashtbl.remove t.states line
  | s -> Hashtbl.replace t.states line s

let request t ~txn ~kind ~line ?payload () =
  Chassis.request t.ch ~txn ~kind ~line ~mask:Addr.full_mask ?payload ()

let free_txn t ~txn = Chassis.free_txn t.ch ~txn

let reply t (msg : Msg.t) ~kind ~dst ?payload () =
  Chassis.reply t.ch msg ~kind ~dst ~mask:msg.Msg.mask ?payload ()

let pending_acq_for t line =
  Mshr.exists t.ch.Chassis.outstanding ~f:(function
    | Acq a -> a.a_line = line
    | _ -> false)

let wb_for t line =
  match
    Mshr.find_first_exn t.ch.Chassis.outstanding ~f:(function
      | Wb b -> b.w_line = line
      | _ -> false)
  with
  | Wb b -> Some b
  | _ -> None
  | exception Not_found -> None

(* ----- Backing interface ----------------------------------------------------- *)

let acquire t ~line ~excl ~k =
  match state t line with
  | P_M -> k None ~excl:true
  | P_S when not excl -> k None ~excl:false
  | P_S | P_I ->
    let kind = if excl then Msg.ReqOdata else Msg.ReqS in
    Stats.bump t.ch.Chassis.stats (if excl then t.k_getm else t.k_gets);
    let rec fire () =
      match
        Mshr.alloc t.ch.Chassis.outstanding (Acq { a_line = line; a_k = k })
      with
      | Some txn ->
        t.parked <- t.parked - 1;
        request t ~txn ~kind ~line ()
      | None ->
        (* All request slots busy: wait for responses to free one. *)
        Stats.incr t.ch.Chassis.stats "mshr_stall";
        Engine.schedule t.ch.Chassis.engine ~delay:4 fire
    in
    t.parked <- t.parked + 1;
    fire ()

let writeback t ~line ~data ~dirty ~k =
  match state t line with
  | P_M -> (
    (* PutM returns ownership (and data, even when clean: the directory
       believes we might have dirtied it). *)
    ignore dirty;
    set_state t line P_I;
    Stats.bump t.ch.Chassis.stats t.k_putm;
    let record = Wb { w_line = line; w_values = Array.copy data; w_k = k } in
    let rec fire () =
      match Mshr.alloc t.ch.Chassis.outstanding record with
      | Some txn ->
        t.parked <- t.parked - 1;
        request t ~txn ~kind:Msg.ReqWB ~line
          ~payload:(Msg.pooled_copy data) ()
      | None ->
        Stats.incr t.ch.Chassis.stats "mshr_stall";
        Engine.schedule t.ch.Chassis.engine ~delay:4 fire
    in
    t.parked <- t.parked + 1;
    fire ())
  | P_S ->
    (* Shared lines drop silently; a later Inv finds nothing and is Acked. *)
    set_state t line P_I;
    Stats.incr t.ch.Chassis.stats "silent_drop";
    Engine.schedule t.ch.Chassis.engine ~delay:0 k
  | P_I -> Engine.schedule t.ch.Chassis.engine ~delay:0 k

(* ----- directory-initiated messages ------------------------------------------- *)

let handle t (msg : Msg.t) =
  match msg.Msg.kind with
  | Msg.Probe Msg.Inv ->
    (* The L2 (and everything under it) must drop the line. *)
    if pending_acq_for t msg.Msg.line then begin
      (* §III-C: an Inv racing a pending upgrade is acknowledged at once;
         the upgrade's response will carry fresh data. *)
      Stats.incr t.ch.Chassis.stats "inv_mid_upgrade";
      set_state t msg.Msg.line P_I;
      reply t msg ~kind:Msg.Ack ~dst:msg.Msg.src ()
    end
    else begin
      set_state t msg.Msg.line P_I;
      (* [k] captures [msg] and may run after an async recall. *)
      Msg.keep msg;
      Msg.keep msg;
      t.recall_handler ~line:msg.Msg.line ~kind:Backing.Recall_excl
        ~k:(fun _ -> reply t msg ~kind:Msg.Ack ~dst:msg.Msg.src ())
    end
  | Msg.Req Msg.ReqS when msg.Msg.fwd -> (
    let from_record (b : wb) =
      reply t msg ~kind:Msg.RspS ~dst:msg.Msg.requestor
        ~payload:(Msg.pooled_copy b.w_values)
        ();
      reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ()
    in
    match wb_for t msg.Msg.line with
    | Some b -> from_record b
    | None ->
      (* The parent state changes only once the recall resolves: a purge
         already in flight must still see P_M when it writes back. *)
      Msg.keep msg;
      t.recall_handler ~line:msg.Msg.line ~kind:Backing.Recall_shared
        ~k:(fun result ->
          match (result, wb_for t msg.Msg.line) with
          | Some (data, _dirty), _ ->
            set_state t msg.Msg.line P_S;
            reply t msg ~kind:Msg.RspS ~dst:msg.Msg.requestor
              ~payload:(Msg.pooled_copy data)
              ();
            reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src
              ~payload:(Msg.Data data) ()
          | None, Some b ->
            (* The recall was queued behind a purge that evicted the line;
               the write-back record created by that eviction has the data. *)
            from_record b
          | None, None ->
            failwith "Mesi_client: forwarded ReqS for line not held"))
  | Msg.Req Msg.ReqOdata when msg.Msg.fwd -> (
    let from_record (b : wb) =
      reply t msg ~kind:Msg.RspOdata ~dst:msg.Msg.requestor
        ~payload:(Msg.pooled_copy b.w_values)
        ();
      reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ()
    in
    match wb_for t msg.Msg.line with
    | Some b -> from_record b
    | None ->
      Msg.keep msg;
      t.recall_handler ~line:msg.Msg.line ~kind:Backing.Recall_excl
        ~k:(fun result ->
          match (result, wb_for t msg.Msg.line) with
          | Some (data, _dirty), _ ->
            set_state t msg.Msg.line P_I;
            reply t msg ~kind:Msg.RspOdata ~dst:msg.Msg.requestor
              ~payload:(Msg.Data data) ();
            reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ()
          | None, Some b -> from_record b
          | None, None ->
            failwith "Mesi_client: forwarded ReqO+data for line not held"))
  | Msg.Probe Msg.RvkO -> (
    match wb_for t msg.Msg.line with
    | Some _ -> reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ()
    | None ->
      Msg.keep msg;
      t.recall_handler ~line:msg.Msg.line ~kind:Backing.Recall_excl
        ~k:(fun result ->
          set_state t msg.Msg.line P_I;
          match result with
          | Some (data, _dirty) ->
            reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src
              ~payload:(Msg.Data data) ()
          | None ->
            (* If a purge-eviction raced us, its PutM carries the data. *)
            reply t msg ~kind:Msg.RspRvkO ~dst:msg.Msg.src ()))
  | Msg.Rsp _ -> (
    match Mshr.find t.ch.Chassis.outstanding ~txn:msg.Msg.txn with
    | None -> Stats.incr t.ch.Chassis.stats "orphan_rsp"
    | Some (Acq a) -> (
      free_txn t ~txn:msg.Msg.txn;
      match (msg.Msg.kind, msg.Msg.payload) with
      | Msg.Rsp Msg.RspS, (Msg.Data values | Msg.Data_pooled values) ->
        set_state t a.a_line P_S;
        a.a_k (Some values) ~excl:false
      | Msg.Rsp Msg.RspOdata, (Msg.Data values | Msg.Data_pooled values) ->
        set_state t a.a_line P_M;
        a.a_k (Some values) ~excl:true
      | _ -> failwith "Mesi_client: unexpected acquire response")
    | Some (Wb b) ->
      (match msg.Msg.kind with
      | Msg.Rsp Msg.RspWB -> ()
      | _ -> failwith "Mesi_client: unexpected write-back response");
      free_txn t ~txn:msg.Msg.txn;
      b.w_k ())
  | Msg.Req _ ->
    failwith (Format.asprintf "Mesi_client: unexpected message %a" Msg.pp msg)

let trace_sample t ~time = Chassis.trace_sample t.ch ~time ~aux:t.parked ()

let register_metrics t ~device reg =
  Chassis.register_metrics t.ch ~device
    ~aux:("spandex_l2_parked", fun () -> t.parked)
    reg

let create engine net cfg =
  let ch =
    (* No store buffer at this level: the chassis's is a 1-entry stub that
       stays empty; the parent caches do the buffering. *)
    Chassis.create engine net ~id:cfg.id ~home_id:cfg.dir_id
      ~home_banks:cfg.dir_banks ~hit_latency:cfg.hit_latency ~coalesce_window:0
      ~mshrs:256 ~sb_capacity:1 ~level:"l2" ~aux:"parked"
  in
  let t =
    {
      ch;
      cfg;
      states = Hashtbl.create 1024;
      k_gets = Stats.key ch.Chassis.stats "gets";
      k_getm = Stats.key ch.Chassis.stats "getm";
      k_putm = Stats.key ch.Chassis.stats "putm";
      parked = 0;
      recall_handler = (fun ~line:_ ~kind:_ ~k -> k None);
    }
  in
  ch.Chassis.source_line <-
    (function Acq a -> a.a_line | Wb w -> w.w_line);
  ch.Chassis.source_what <-
    (function Acq _ -> "acquire (GetS/GetM)" | Wb _ -> "write-back (PutM)");
  Network.register net ~id:cfg.id (fun msg -> handle t msg);
  t

let quiescent t = Mshr.count t.ch.Chassis.outstanding = 0 && t.parked = 0

let describe_pending t =
  Printf.sprintf "mesi_client %d: outstanding=%d%s" t.cfg.id
    (Mshr.count t.ch.Chassis.outstanding)
    (Chassis.pending_summary t.ch
       ~describe:(function
         | Acq a -> Printf.sprintf "Acq line %d" a.a_line
         | Wb b -> Printf.sprintf "Wb line %d" b.w_line)
       ~extra:[])

let backing t =
  {
    Backing.name = "mesi_client";
    acquire = (fun ~line ~excl ~k -> acquire t ~line ~excl ~k);
    writeback = (fun ~line ~data ~dirty ~k -> writeback t ~line ~data ~dirty ~k);
    set_recall_handler = (fun h -> t.recall_handler <- h);
    quiescent = (fun () -> quiescent t);
    describe_pending = (fun () -> describe_pending t);
  }

let stats t = t.ch.Chassis.stats

(* ----- model-checker introspection ----------------------------------------- *)

module Fp = Spandex_util.Fingerprint

let fingerprint t fp =
  Fp.tag fp "mesi_client";
  Fp.int fp t.cfg.id;
  Fp.int fp t.parked;
  let lines =
    Hashtbl.fold
      (fun line s acc ->
        (line, (match s with P_I -> 0 | P_S -> 1 | P_M -> 2)) :: acc)
      t.states []
    |> List.sort compare
  in
  Fp.list fp
    (fun fp (line, s) ->
      Fp.int fp line;
      Fp.int fp s)
    lines;
  Chassis.fingerprint t.ch fp
    ~key:(function Acq a -> (a.a_line * 2) + 0 | Wb w -> (w.w_line * 2) + 1)
    ~payload:(fun fp -> function
      | Acq a ->
        Fp.tag fp "A";
        Fp.int fp a.a_line
      | Wb w ->
        Fp.tag fp "W";
        Fp.int fp w.w_line;
        Fp.array fp w.w_values)
