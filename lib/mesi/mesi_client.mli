(** MESI client port: the backside of the hierarchical GPU L2.

    Produces a {!Spandex.Backing.t} that satisfies the Spandex L2 engine's
    line acquisitions by issuing GetS / GetM (ReqS / ReqO+data) to the
    directory LLC, writes back evicted exclusive lines with PutM (ReqWB),
    and converts directory-initiated Inv / forwarded ReqS / forwarded
    ReqO+data / RvkO into parent recalls of the L2 (DESIGN.md §4).  This is
    where the hierarchical baseline pays its indirection: every GPU-side
    miss that the L2 cannot satisfy costs a second, blocking, line-granular
    MESI transaction. *)

type config = {
  id : Spandex_proto.Msg.device_id;  (** the L2's backside endpoint. *)
  dir_id : Spandex_proto.Msg.device_id;
  dir_banks : int;
  hit_latency : int;
}

type t

val create : Spandex_sim.Engine.t -> Spandex_net.Network.t -> config -> t
val backing : t -> Spandex.Backing.t
val stats : t -> Spandex_util.Stats.t

val trace_sample : t -> time:int -> unit
(** Record occupancy counters into the engine's trace sink; no-op when
    tracing is disabled. *)

val register_metrics : t -> device:string -> Spandex_obs.Metrics.t -> unit
(** Register the chassis probes (the aux gauge is the parked-request
    depth, as in {!trace_sample}), labelled [device]. *)

val fingerprint : t -> Spandex_util.Fingerprint.t -> unit
(** Append a canonical encoding of the client shim's state (per-line
    permissions, outstanding acquires/write-backs) for the model checker's
    visited-state cache. *)
