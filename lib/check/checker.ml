module Engine = Spandex_sim.Engine
module Network = Spandex_net.Network
module Fault = Spandex_net.Fault
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Mask = Spandex_util.Mask
module Fp = Spandex_util.Fingerprint
module Check_log = Spandex_device.Check_log
module Config = Spandex_system.Config
module R = Spandex_system.Run

(* ----- seeded bugs --------------------------------------------------------------- *)

type bug = Skip_inv_ack | Ack_no_inv

let bug_name = function
  | Skip_inv_ack -> "skip-inv-ack"
  | Ack_no_inv -> "ack-no-inv"

let bug_of_name = function
  | "skip-inv-ack" -> Skip_inv_ack
  | "ack-no-inv" -> Ack_no_inv
  | s -> invalid_arg (Printf.sprintf "unknown seeded bug %S" s)

let all_bugs = [ Skip_inv_ack; Ack_no_inv ]

(* ----- violations ---------------------------------------------------------------- *)

type violation =
  | Deadlock of string
  | Swmr of { line : int; word : int; owners : string list }
  | Llc_mismatch of string
  | Data_mismatch of string
  | Crash of string

let violation_descr = function
  | Deadlock d -> "deadlock: " ^ d
  | Swmr { line; word; owners } ->
    Printf.sprintf "SWMR violation: line %d word %d owned by [%s]" line word
      (String.concat "; " owners)
  | Llc_mismatch d -> "LLC ownership registration mismatch: " ^ d
  | Data_mismatch d -> "data-value mismatch: " ^ d
  | Crash d -> "execution crashed: " ^ d

(* ----- specification ------------------------------------------------------------- *)

type spec = {
  sp_case : Litmus.case;
  sp_config : Config.t;
  sp_cpus : int;
  sp_gpus : int;
  sp_banks : int;
  sp_faults : bool;
  sp_fault_budget : int;
  sp_seed_bug : bug option;
}

let header_of_spec spec ~violation =
  {
    Schedule.h_case = spec.sp_case.Litmus.case_name;
    h_config = spec.sp_config.Config.name;
    h_cpus = spec.sp_cpus;
    h_gpus = spec.sp_gpus;
    h_banks = spec.sp_banks;
    h_faults = spec.sp_faults;
    h_seed_bug = Option.map bug_name spec.sp_seed_bug;
    h_violation = violation;
  }

let spec_of_header (h : Schedule.header) =
  {
    sp_case = Litmus.by_name h.Schedule.h_case;
    sp_config = Config.by_name h.Schedule.h_config;
    sp_cpus = h.Schedule.h_cpus;
    sp_gpus = h.Schedule.h_gpus;
    sp_banks = h.Schedule.h_banks;
    sp_faults = h.Schedule.h_faults;
    sp_fault_budget = max_int;
    sp_seed_bug = Option.map bug_of_name h.Schedule.h_seed_bug;
  }

(* ----- one execution ------------------------------------------------------------- *)

type exec = {
  sys : R.system;
  mutable pool : (int * Msg.t) list;  (** held messages, in send order. *)
  mutable next_seq : int;
  mutable faults_used : int;
}

exception Bad_schedule of string

let install_bug net views bug =
  List.iter
    (fun v ->
      let id = v.R.view_id in
      Network.wrap_handler net ~id (fun inner msg ->
          match (bug, msg.Msg.kind) with
          | Skip_inv_ack, Msg.Probe Msg.Inv ->
            (* Swallow the invalidation: no state change, no Ack — the
               home collects acks forever. *)
            ()
          | Ack_no_inv, Msg.Probe Msg.Inv ->
            (* Acknowledge without invalidating: the local Shared copy
               survives and later reads return stale data. *)
            Network.send net
              (Msg.make ~txn:msg.Msg.txn ~kind:(Msg.Rsp Msg.Ack)
                 ~line:msg.Msg.line ~mask:msg.Msg.mask ~src:id
                 ~dst:msg.Msg.src ())
          | _ -> inner msg))
    views

let build_exec ?trace spec =
  let params =
    let p =
      Litmus.params ~cpus:spec.sp_cpus ~gpus:spec.sp_gpus
        ~faults:spec.sp_faults
    in
    let p = { p with Spandex_system.Params.llc_banks = spec.sp_banks } in
    match trace with
    | None -> p
    | Some t -> { p with Spandex_system.Params.trace = Some t }
  in
  let w = Litmus.workload spec.sp_case ~cpus:spec.sp_cpus ~gpus:spec.sp_gpus in
  let sys = R.build ~params ~config:spec.sp_config w in
  let ex = { sys; pool = []; next_seq = 0; faults_used = 0 } in
  Network.set_delivery_hook sys.R.sys_net (fun msg ~latency:_ ->
      ex.pool <- ex.pool @ [ (ex.next_seq, msg) ];
      ex.next_seq <- ex.next_seq + 1);
  Option.iter (install_bug sys.R.sys_net sys.R.sys_views) spec.sp_seed_bug;
  ex

(* Step queued events until the next choice point: with held messages we
   stop before jumping a long time gap (retry timers live tens of
   thousands of cycles out), but once the pool is empty we run the gap
   down so timer-driven recovery is part of the same execution. *)
let horizon = 1024

let stabilize ex =
  let eng = ex.sys.R.sys_engine in
  let rec go () =
    match Engine.next_event_time eng with
    | None -> ()
    | Some t ->
      if ex.pool <> [] && t - Engine.now eng > horizon then ()
      else if Engine.step eng then go ()
  in
  go ()

let describe_msg (m : Msg.t) = Format.asprintf "%a" Msg.pp m

let apply ex act =
  let seq = Schedule.seq_of act in
  match List.assoc_opt seq ex.pool with
  | None ->
    raise
      (Bad_schedule
         (Printf.sprintf "schedule names held message seq %d, but %s" seq
            (match ex.pool with
            | [] -> "the pool is empty"
            | l ->
              Printf.sprintf "held seqs are [%s]"
                (String.concat "; "
                   (List.map (fun (s, _) -> string_of_int s) l)))))
  | Some msg -> (
    match act with
    | Schedule.Deliver _ ->
      ex.pool <- List.remove_assoc seq ex.pool;
      Network.deliver_held ex.sys.R.sys_net msg
    | Schedule.Drop _ ->
      ex.pool <- List.remove_assoc seq ex.pool;
      ex.faults_used <- ex.faults_used + 1
    | Schedule.Dup _ ->
      (* Deliver a copy now; the original stays held and can be delivered
         (again) later — duplication plus arbitrary reordering. *)
      ex.faults_used <- ex.faults_used + 1;
      Network.deliver_held ex.sys.R.sys_net msg)

(* ----- invariant oracle ---------------------------------------------------------- *)

let word_owners ex ~line ~word =
  List.filter_map
    (fun v ->
      if Mask.mem (v.R.view_owned ~line) word then
        Some (v.R.view_id, v.R.view_name)
      else None)
    ex.sys.R.sys_views

(* INV1 (SWMR): at every choice point, each word has at most one L1
   owner. *)
let check_swmr ex lines =
  List.find_map
    (fun line ->
      let rec words w =
        if w >= Addr.words_per_line then None
        else
          match word_owners ex ~line ~word:w with
          | _ :: _ :: _ as owners ->
            Some (Swmr { line; word = w; owners = List.map snd owners })
          | _ -> words (w + 1)
      in
      words 0)
    lines

(* INV2: at termination the flat LLC's ownership registration agrees with
   the L1s' claims, word by word. *)
let check_llc_registration ex lines =
  match ex.sys.R.sys_llc with
  | None -> None
  | Some lv ->
    List.find_map
      (fun line ->
        let rec words w =
          if w >= Addr.words_per_line then None
          else
            let addr = Addr.make ~line ~word:w in
            let registered = lv.R.lv_owner_of addr in
            let claims = word_owners ex ~line ~word:w in
            match (registered, claims) with
            | None, [] -> words (w + 1)
            | Some d, [ (id, _) ] when d = id -> words (w + 1)
            | _ ->
              Some
                (Llc_mismatch
                   (Printf.sprintf
                      "line %d word %d: LLC registers %s, L1s claim [%s]"
                      line w
                      (match registered with
                      | None -> "no owner"
                      | Some d -> Printf.sprintf "device %d" d)
                      (String.concat "; " (List.map snd claims))))
        in
        words 0)
      lines

(* INV3: data-value coherence — the workloads' embedded [Check] ops must
   never observe a wrong value (litmus programs are DRF, so expected
   finals are schedule-independent). *)
let check_data ex =
  match List.concat_map Check_log.failures ex.sys.R.sys_check_logs with
  | [] -> None
  | f :: _ ->
    Some (Data_mismatch (Format.asprintf "%a" Check_log.pp_failure f))

let violation_at ex lines =
  match check_swmr ex lines with
  | Some v -> Some v
  | None -> (
    match check_data ex with
    | Some v -> Some v
    | None ->
      if ex.pool = [] then
        (* Terminal: stabilize drained the whole event queue. *)
        if not (ex.sys.R.sys_finished ()) then
          Some (Deadlock (ex.sys.R.sys_pending ()))
        else check_llc_registration ex lines
      else None)

(* ----- schedule execution -------------------------------------------------------- *)

(* Execute [actions] from a fresh system, stabilizing and running the
   oracle after every step.  Returns the first violation (if any), the
   actions actually taken annotated with message summaries, and the final
   execution state. *)
let execute_schedule ?trace spec actions =
  let lines = spec.sp_case.Litmus.case_lines in
  let taken = ref [] in
  match build_exec ?trace spec with
  | exception e -> (Some (Crash (Printexc.to_string e)), [], None)
  | ex ->
    let result =
      try
        stabilize ex;
        let rec go acts =
          match violation_at ex lines with
          | Some v -> Some v
          | None -> (
            match acts with
            | [] -> None
            | a :: rest ->
              let descr =
                match List.assoc_opt (Schedule.seq_of a) ex.pool with
                | Some m -> describe_msg m
                | None -> "<not held>"
              in
              taken := (a, descr) :: !taken;
              apply ex a;
              stabilize ex;
              go rest)
        in
        go actions
      with
      | Bad_schedule _ as e -> raise e
      | e -> Some (Crash (Printexc.to_string e))
    in
    (result, List.rev !taken, Some ex)

let node_fingerprint ex =
  let b = Buffer.create 512 in
  Buffer.add_string b (ex.sys.R.sys_fingerprint ());
  Buffer.add_string b "#pool:";
  let digests =
    List.map
      (fun (_, m) ->
        let fp = Fp.create () in
        Msg.fingerprint fp m;
        Fp.digest fp)
      ex.pool
  in
  List.iter
    (fun d ->
      Buffer.add_string b d;
      Buffer.add_char b ';')
    (List.sort compare digests);
  Buffer.add_string b "#faults:";
  Buffer.add_string b (string_of_int ex.faults_used);
  Buffer.contents b

let enabled spec ex =
  let deliver = List.map (fun (s, m) -> (Schedule.Deliver s, m)) ex.pool in
  let faults =
    if spec.sp_faults && ex.faults_used < spec.sp_fault_budget then
      List.concat_map
        (fun (s, m) ->
          if Fault.faultable m then
            [ (Schedule.Drop s, m); (Schedule.Dup s, m) ]
          else [])
        ex.pool
    else []
  in
  deliver @ faults

(* ----- DFS with sleep sets and a state cache ------------------------------------- *)

(* Sleep-set entries are content-addressed (action kind + canonical
   message digest) rather than seq-addressed, so they stay meaningful
   when the same state is reached along different paths whose pool
   sequence numbers differ. *)
type sleep_entry = { sk_key : string; sk_dst : int; sk_line : int }

let action_key act (m : Msg.t) =
  let fp = Fp.create () in
  Msg.fingerprint fp m;
  Schedule.action_name act ^ ":" ^ Fp.digest fp

let subset a b = List.for_all (fun x -> List.mem x b) a

type outcome = {
  o_states : int;  (** distinct architectural states visited. *)
  o_executions : int;  (** schedules re-executed from the initial state. *)
  o_transitions : int;  (** delivery/fault choices taken. *)
  o_violation : (violation * (Schedule.action * string) list) option;
      (** minimized violating schedule with message summaries. *)
  o_truncated : bool;  (** state cap or wall-clock budget hit. *)
}

let default_completion_cap = 10_000

(* Shortest-prefix minimization: find the smallest k such that the first
   k actions of the violating schedule, completed by always delivering
   the oldest held message with no further faults, still violate. *)
let minimize spec schedule =
  let lines = spec.sp_case.Litmus.case_lines in
  let complete prefix =
    match execute_schedule spec prefix with
    | Some _, taken, _ -> Some (List.map fst taken)
    | None, taken, Some ex ->
      let extra = ref [] in
      let rec go n =
        if n > default_completion_cap then None
        else
          match violation_at ex lines with
          | Some _ -> Some (List.map fst taken @ List.rev !extra)
          | None -> (
            match ex.pool with
            | [] -> None
            | (s, _) :: _ -> (
              let a = Schedule.Deliver s in
              match
                apply ex a;
                stabilize ex
              with
              | () ->
                extra := a :: !extra;
                go (n + 1)
              | exception _ ->
                Some (List.map fst taken @ List.rev (a :: !extra))))
      in
      go 0
    | None, _, None -> None
  in
  let n = List.length schedule in
  let rec try_k k =
    if k >= n then schedule
    else
      let prefix = List.filteri (fun i _ -> i < k) schedule in
      match complete prefix with
      | Some full -> full
      | None -> try_k (k + 1)
  in
  try_k 0

let check ?(max_states = 200_000) ?(budget_secs = 120.) ?(fault_budget = 1)
    ?(reduce = true) ?seed_bug ?(llc_banks = 1) ~case ~config ~cpus ~gpus
    ~faults () =
  let spec =
    {
      sp_case = case;
      sp_config = config;
      sp_cpus = cpus;
      sp_gpus = gpus;
      sp_banks = llc_banks;
      sp_faults = faults;
      sp_fault_budget = fault_budget;
      sp_seed_bug = seed_bug;
    }
  in
  let visited : (string, string list) Hashtbl.t = Hashtbl.create 4096 in
  let states = ref 0 and execs = ref 0 and transitions = ref 0 in
  let viol = ref None and truncated = ref false in
  let deadline = Sys.time () +. budget_secs in
  let stop () = !viol <> None || !truncated in
  let rec explore prefix sleep =
    if stop () then ()
    else if Sys.time () > deadline then truncated := true
    else begin
      incr execs;
      match execute_schedule spec prefix with
      | Some v, taken, _ -> viol := Some (v, prefix, taken)
      | None, _, None -> ()
      | None, _, Some ex ->
        let fpr = node_fingerprint ex in
        let sleep_keys =
          List.sort_uniq compare (List.map (fun s -> s.sk_key) sleep)
        in
        let explored_before = Hashtbl.find_opt visited fpr in
        let covered =
          match explored_before with
          (* A previous visit explored at least every action we would:
             its sleep set was a subset of ours. *)
          | Some old -> subset old sleep_keys
          | None -> false
        in
        if not covered then begin
          if explored_before = None then incr states;
          Hashtbl.replace visited fpr
            (match explored_before with
            | None -> sleep_keys
            | Some old -> List.filter (fun k -> List.mem k sleep_keys) old);
          if !states > max_states then truncated := true
          else
            let acts =
              List.filter
                (fun (a, m) -> not (List.mem (action_key a m) sleep_keys))
                (enabled spec ex)
            in
            let z = ref sleep in
            List.iter
              (fun (a, m) ->
                if not (stop ()) then begin
                  incr transitions;
                  let child_sleep =
                    (* Keep only sleeping actions independent of [a]:
                       different destination and different line (pool
                       identity is part of the content key). *)
                    List.filter
                      (fun s ->
                        s.sk_dst <> m.Msg.dst && s.sk_line <> m.Msg.line)
                      !z
                  in
                  explore (prefix @ [ a ]) child_sleep;
                  z :=
                    { sk_key = action_key a m;
                      sk_dst = m.Msg.dst;
                      sk_line = m.Msg.line }
                    :: !z
                end)
              acts
        end
    end
  in
  explore [] [];
  let violation =
    match !viol with
    | None -> None
    | Some (v0, prefix, _) ->
      let schedule = if reduce then minimize spec prefix else prefix in
      let v, steps, _ = execute_schedule spec schedule in
      Some (Option.value v ~default:v0, steps)
  in
  {
    o_states = !states;
    o_executions = !execs;
    o_transitions = !transitions;
    o_violation = violation;
    o_truncated = !truncated;
  }

(* ----- counterexample I/O and replay --------------------------------------------- *)

let write_counterexample ~path spec (v, steps) =
  Schedule.write ~path (header_of_spec spec ~violation:(violation_descr v)) steps

let check_and_report ?max_states ?budget_secs ?fault_budget ?reduce ?seed_bug
    ?(llc_banks = 1) ~case ~config ~cpus ~gpus ~faults ~out () =
  let outcome =
    check ?max_states ?budget_secs ?fault_budget ?reduce ?seed_bug ~llc_banks
      ~case ~config ~cpus ~gpus ~faults ()
  in
  (match outcome.o_violation with
  | Some cex ->
    let spec =
      {
        sp_case = case;
        sp_config = config;
        sp_cpus = cpus;
        sp_gpus = gpus;
        sp_banks = llc_banks;
        sp_faults = faults;
        sp_fault_budget = Option.value fault_budget ~default:1;
        sp_seed_bug = seed_bug;
      }
    in
    write_counterexample ~path:out spec cex
  | None -> ());
  outcome

let replay ?trace ~path () =
  let header, actions = Schedule.read ~path in
  let spec = spec_of_header header in
  let v, steps, ex = execute_schedule ?trace spec actions in
  (header, v, steps, Option.map (fun ex -> ex.sys) ex)
