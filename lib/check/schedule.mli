(** Delivery schedules and their JSONL counterexample format.

    A schedule is the sequence of choices the checker made at each choice
    point: deliver, drop, or duplicate one held in-flight message,
    identified by its pool sequence number (assigned in send order, which
    is deterministic given the preceding choices — so a schedule replays
    exactly).

    The on-disk format is one JSON object per line: a header recording
    the case / config / fault setting / seeded bug and the violation
    text, then one step object per action with a human-readable message
    summary.  Encoding and decoding are hand-rolled (flat objects only,
    no external JSON dependency). *)

type action =
  | Deliver of int  (** hand the held message with this seq to its dst. *)
  | Drop of int  (** discard it (fault choice; counts against budget). *)
  | Dup of int  (** deliver a copy now, keep the original held. *)

val seq_of : action -> int
val action_name : action -> string
val pp_action : Format.formatter -> action -> unit

type header = {
  h_case : string;
  h_config : string;
  h_cpus : int;
  h_gpus : int;
  h_banks : int;
      (** LLC bank count the case was explored with (1 in counterexample
          files written before banking existed). *)
  h_faults : bool;
  h_seed_bug : string option;
  h_violation : string;
}

val write : path:string -> header -> (action * string) list -> unit
(** Emit the JSONL counterexample; each action carries a one-line
    description of the message it manipulates. *)

val read : path:string -> header * action list
(** Parse a counterexample written by {!write}.  Raises [Failure] on
    malformed input. *)
