(** Litmus workloads for the model checker.

    Small data-race-free programs (2-3 devices, 1-2 lines) whose final
    values are schedule-independent, so the embedded [Check] ops are a
    sound data-value oracle under every delivery interleaving.  Each case
    targets one coherence mechanism: message passing across lines,
    same-line word conflicts, atomics, ownership migration, and read
    sharing. *)

type case = {
  case_name : string;
  case_descr : string;
  case_lines : int list;  (** cache-line footprint, for invariant scans. *)
  min_devices : int;
  programs : devices:int -> Spandex_device.Ops.t array array * int array;
      (** one program per device plus the barrier-parties table. *)
}

val mp : case
val ww : case
val rmw : case
val own : case
val shared : case
val all : case list

val by_name : string -> case
(** Case-insensitive lookup; raises [Not_found]. *)

val workload : case -> cpus:int -> gpus:int -> Spandex_system.Workload.t
(** Distribute the case's per-device programs over [cpus] CPU cores and
    then [gpus] single-warp GPU CUs.  Raises [Invalid_argument] when
    [cpus + gpus < min_devices]. *)

val checker_retry : Spandex_util.Retry.config
(** Jitter-free retry tuning used when fault actions are explored: one
    far-future deterministic timeout per request. *)

val params : cpus:int -> gpus:int -> faults:bool -> Spandex_system.Params.t
(** {!Spandex_system.Params.small} specialised for exhaustive search:
    matching core counts, a single LLC bank, no watchdog, no tracing, and
    — when [faults] — a zero-probability fault plan whose only effect is
    arming retry timers and replay caches so checker-injected drops are
    recoverable. *)
