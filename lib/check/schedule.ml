type action = Deliver of int | Drop of int | Dup of int

let seq_of = function Deliver s | Drop s | Dup s -> s

let action_name = function
  | Deliver _ -> "deliver"
  | Drop _ -> "drop"
  | Dup _ -> "dup"

let action_of_name name seq =
  match name with
  | "deliver" -> Deliver seq
  | "drop" -> Drop seq
  | "dup" -> Dup seq
  | _ -> failwith (Printf.sprintf "counterexample: unknown action %S" name)

let pp_action ppf a = Format.fprintf ppf "%s seq=%d" (action_name a) (seq_of a)

type header = {
  h_case : string;
  h_config : string;
  h_cpus : int;
  h_gpus : int;
  h_banks : int;  (** LLC bank count the case was explored with. *)
  h_faults : bool;
  h_seed_bug : string option;
  h_violation : string;
}

(* ----- hand-rolled flat JSON ----------------------------------------------------- *)

(* The emitter only ever produces flat objects with string / int / bool /
   null values, and the strings it writes (case names, config names,
   message summaries) contain no quotes or backslashes; [escape] guards
   the invariant anyway. *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char b '_'
      | '\n' | '\r' | '\t' -> Buffer.add_char b ' '
      | c when Char.code c < 0x20 -> Buffer.add_char b ' '
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let find_field json key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let n = String.length json in
  let rec scan i =
    if i + plen > n then None
    else if String.sub json i plen = pat then Some (i + plen)
    else scan (i + 1)
  in
  scan 0

let field_string json key =
  match find_field json key with
  | None -> None
  | Some i ->
    if i < String.length json && json.[i] = '"' then begin
      let j = String.index_from json (i + 1) '"' in
      Some (String.sub json (i + 1) (j - i - 1))
    end
    else None (* null or non-string *)

let field_raw json key =
  match find_field json key with
  | None -> None
  | Some i ->
    let n = String.length json in
    let j = ref i in
    while
      !j < n && (match json.[!j] with ',' | '}' -> false | _ -> true)
    do
      incr j
    done;
    Some (String.trim (String.sub json i (!j - i)))

let field_int json key =
  match field_raw json key with
  | Some raw -> (
    match int_of_string_opt raw with
    | Some v -> Some v
    | None -> failwith (Printf.sprintf "counterexample: bad int %S" raw))
  | None -> None

let field_bool json key =
  match field_raw json key with
  | Some "true" -> Some true
  | Some "false" -> Some false
  | _ -> None

let require what = function
  | Some v -> v
  | None -> failwith (Printf.sprintf "counterexample: missing %s" what)

(* ----- encode -------------------------------------------------------------------- *)

let header_line h =
  Printf.sprintf
    "{\"spandex_check\":1,\"case\":\"%s\",\"config\":\"%s\",\"cpus\":%d,\"gpus\":%d,\"banks\":%d,\"faults\":%b,\"seed_bug\":%s,\"violation\":\"%s\"}"
    (escape h.h_case) (escape h.h_config) h.h_cpus h.h_gpus h.h_banks
    h.h_faults
    (match h.h_seed_bug with
    | None -> "null"
    | Some b -> Printf.sprintf "\"%s\"" (escape b))
    (escape h.h_violation)

let step_line i (act, descr) =
  Printf.sprintf "{\"step\":%d,\"action\":\"%s\",\"seq\":%d,\"msg\":\"%s\"}" i
    (action_name act) (seq_of act) (escape descr)

let write ~path header steps =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (header_line header);
      output_char oc '\n';
      List.iteri
        (fun i step ->
          output_string oc (step_line i step);
          output_char oc '\n')
        steps)

(* ----- decode -------------------------------------------------------------------- *)

let read ~path =
  let ic = open_in path in
  let lines = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         while true do
           let l = String.trim (input_line ic) in
           if l <> "" then lines := l :: !lines
         done
       with End_of_file -> ());
      match List.rev !lines with
      | [] -> failwith "counterexample: empty file"
      | hd :: steps ->
        if field_int hd "spandex_check" <> Some 1 then
          failwith "counterexample: not a spandex_check v1 file";
        let header =
          {
            h_case = require "case" (field_string hd "case");
            h_config = require "config" (field_string hd "config");
            h_cpus = require "cpus" (field_int hd "cpus");
            h_gpus = require "gpus" (field_int hd "gpus");
            (* Absent in pre-banking counterexample files: they explored a
               single-bank LLC. *)
            h_banks = Option.value ~default:1 (field_int hd "banks");
            h_faults = require "faults" (field_bool hd "faults");
            h_seed_bug = field_string hd "seed_bug";
            h_violation =
              Option.value ~default:"" (field_string hd "violation");
          }
        in
        let actions =
          List.map
            (fun l ->
              action_of_name
                (require "action" (field_string l "action"))
                (require "seq" (field_int l "seq")))
            steps
        in
        (header, actions))
