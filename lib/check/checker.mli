(** Exhaustive-interleaving model checker over the deterministic engine.

    Stateless search in the CHESS style: every schedule is re-executed
    from a freshly built system, with the network's delivery hook holding
    each in-flight message until the explorer chooses which one delivers
    next.  Between choices the engine runs to quiescence ([stabilize]),
    so choice points are exactly the states where held messages exist.
    Optional fault choice points additionally drop or duplicate any
    {!Spandex_net.Fault.faultable} held message, bounded by a budget.

    Reduction: a canonical state-fingerprint cache (exact string match,
    no hash collisions) prunes states reached along multiple equivalent
    orders, and DPOR-style sleep sets skip sibling interleavings of
    independent actions (different destination device and different
    cache line).  Sleep entries are content-addressed so they remain
    valid across paths with different pool sequence numbering; a cache
    hit only prunes when the earlier visit explored with a sleep set no
    larger than the current one.

    The invariant oracle checks, at every choice point, single-writer /
    multiple-reader (at most one L1 owns any word) and the data-value
    oracle embedded in the DRF litmus programs, and at termination,
    deadlock-freedom (system must report finished once the queue and
    pool drain) and flat-LLC ownership-registration agreement. *)

type bug = Skip_inv_ack | Ack_no_inv

val bug_name : bug -> string
val bug_of_name : string -> bug
val all_bugs : bug list

type violation =
  | Deadlock of string
  | Swmr of { line : int; word : int; owners : string list }
  | Llc_mismatch of string
  | Data_mismatch of string
  | Crash of string

val violation_descr : violation -> string

type outcome = {
  o_states : int;
  o_executions : int;
  o_transitions : int;
  o_violation : (violation * (Schedule.action * string) list) option;
  o_truncated : bool;
}

val check :
  ?max_states:int ->
  ?budget_secs:float ->
  ?fault_budget:int ->
  ?reduce:bool ->
  ?seed_bug:bug ->
  ?llc_banks:int ->
  case:Litmus.case ->
  config:Spandex_system.Config.t ->
  cpus:int ->
  gpus:int ->
  faults:bool ->
  unit ->
  outcome
(** Explore every delivery interleaving of the case under the config.
    [faults] adds drop/duplicate choice points (at most [fault_budget]
    per execution, default 1).  [reduce] (default true) minimizes any
    counterexample to the shortest violating prefix plus a deterministic
    oldest-first completion.  [seed_bug] wires a deliberate protocol bug
    into every L1 endpoint, for validating the oracle end to end.
    [llc_banks] (default 1) explores with an address-interleaved banked
    LLC — banking must be invisible to the protocol, so every case must
    reach the same verdict for any bank count. *)

val check_and_report :
  ?max_states:int ->
  ?budget_secs:float ->
  ?fault_budget:int ->
  ?reduce:bool ->
  ?seed_bug:bug ->
  ?llc_banks:int ->
  case:Litmus.case ->
  config:Spandex_system.Config.t ->
  cpus:int ->
  gpus:int ->
  faults:bool ->
  out:string ->
  unit ->
  outcome
(** {!check}, writing any counterexample to [out] as JSONL. *)

val replay :
  ?trace:Spandex_sim.Trace.spec ->
  path:string ->
  unit ->
  Schedule.header
  * violation option
  * (Schedule.action * string) list
  * Spandex_system.Run.system option
(** Re-execute a counterexample file deterministically.  Returns the
    parsed header, the violation observed at the end of the schedule (it
    should match the header's recorded violation), the actions taken with
    message summaries, and the final system (for trace export when
    [trace] was supplied). *)
