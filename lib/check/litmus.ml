module Ops = Spandex_device.Ops
module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo
module Params = Spandex_system.Params
module Workload = Spandex_system.Workload
module Fault = Spandex_net.Fault
module Retry = Spandex_util.Retry

type case = {
  case_name : string;
  case_descr : string;
  case_lines : int list;
  min_devices : int;
  programs : devices:int -> Ops.t array array * int array;
}

let a ~line ~word = Addr.make ~line ~word

(* Each case builds one program per device (role order) plus the barrier
   table.  All programs are data-race-free: conflicting accesses are
   separated by barriers, so the final values are schedule-independent and
   the embedded [Check] ops form a sound oracle under every
   interleaving. *)

let mp =
  {
    case_name = "mp";
    case_descr = "producer writes two lines; consumers check after barrier";
    case_lines = [ 0; 1 ];
    min_devices = 2;
    programs =
      (fun ~devices ->
        let d = a ~line:0 ~word:0 and f = a ~line:1 ~word:0 in
        let producer =
          [| Ops.Store (d, 42); Ops.Store (f, 7); Ops.Barrier 0 |]
        in
        let consumer = [| Ops.Barrier 0; Ops.Check (d, 42); Ops.Check (f, 7) |] in
        ( Array.init devices (fun i -> if i = 0 then producer else consumer),
          [| devices |] ));
  }

let ww =
  {
    case_name = "ww";
    case_descr = "two writers hit different words of one line, cross-check";
    case_lines = [ 0 ];
    min_devices = 2;
    programs =
      (fun ~devices ->
        let w0 = a ~line:0 ~word:0 and w1 = a ~line:0 ~word:1 in
        let p0 = [| Ops.Store (w0, 1); Ops.Barrier 0; Ops.Check (w1, 2) |] in
        let p1 = [| Ops.Store (w1, 2); Ops.Barrier 0; Ops.Check (w0, 1) |] in
        let px = [| Ops.Barrier 0; Ops.Check (w0, 1); Ops.Check (w1, 2) |] in
        ( Array.init devices (fun i ->
              if i = 0 then p0 else if i = 1 then p1 else px),
          [| devices |] ));
  }

let rmw =
  {
    case_name = "rmw";
    case_descr = "every device fetch-and-adds twice; sum checked after barrier";
    case_lines = [ 0 ];
    min_devices = 2;
    programs =
      (fun ~devices ->
        let c = a ~line:0 ~word:0 in
        let adds = [| Ops.Rmw (c, Amo.Add 1); Ops.Rmw (c, Amo.Add 1) |] in
        (* Backing memory initialises words to a nonzero hash sentinel, so
           the counter must be zeroed (and the zeroing ordered by a
           barrier) before any device adds to it. *)
        ( Array.init devices (fun i ->
              if i = 0 then
                Array.concat
                  [ [| Ops.Store (c, 0); Ops.Barrier 0 |]; adds;
                    [| Ops.Barrier 1; Ops.Check (c, 2 * devices) |] ]
              else
                Array.concat [ [| Ops.Barrier 0 |]; adds; [| Ops.Barrier 1 |] ]),
          [| devices; devices |] ));
  }

let own =
  {
    case_name = "own";
    case_descr = "ownership migrates 0 -> 1 -> 0 across two barrier phases";
    case_lines = [ 0 ];
    min_devices = 2;
    programs =
      (fun ~devices ->
        let x = a ~line:0 ~word:0 in
        let p0 =
          [| Ops.Store (x, 1); Ops.Barrier 0; Ops.Barrier 1; Ops.Check (x, 3) |]
        in
        let p1 =
          [| Ops.Barrier 0; Ops.Check (x, 1); Ops.Store (x, 3); Ops.Barrier 1 |]
        in
        let px = [| Ops.Barrier 0; Ops.Barrier 1; Ops.Check (x, 3) |] in
        ( Array.init devices (fun i ->
              if i = 0 then p0 else if i = 1 then p1 else px),
          [| devices; devices |] ));
  }

let shared =
  {
    case_name = "shared";
    case_descr = "one writer, all devices read-share two lines";
    case_lines = [ 0; 1 ];
    min_devices = 2;
    programs =
      (fun ~devices ->
        let x = a ~line:0 ~word:0 and y = a ~line:1 ~word:2 in
        let p0 =
          [| Ops.Store (x, 5); Ops.Store (y, 9); Ops.Barrier 0;
             Ops.Check (x, 5) |]
        in
        let px = [| Ops.Barrier 0; Ops.Check (x, 5); Ops.Check (y, 9) |] in
        ( Array.init devices (fun i -> if i = 0 then p0 else px),
          [| devices |] ));
  }

let all = [ mp; ww; rmw; own; shared ]

let by_name name =
  let lname = String.lowercase_ascii name in
  List.find (fun c -> c.case_name = lname) all

let workload case ~cpus ~gpus =
  let devices = cpus + gpus in
  if devices < case.min_devices then
    invalid_arg
      (Printf.sprintf "litmus case %s needs at least %d devices"
         case.case_name case.min_devices);
  let programs, barrier_parties = case.programs ~devices in
  {
    Workload.name = Printf.sprintf "litmus-%s" case.case_name;
    cpu_programs = Array.sub programs 0 cpus;
    gpu_programs =
      Array.init gpus (fun j -> [| programs.(cpus + j) |]);
    barrier_parties;
    region_of = (fun _ -> 0);
  }

(* Retry timers fire at a fixed far-future offset with no jitter: during
   exploration the scheduler only steps across that gap once the delivery
   pool is empty, so retries model recovery from checker-injected drops
   without exploding the near-term interleaving space. *)
let checker_retry =
  { Retry.base_timeout = 50_000; backoff_factor = 2; max_timeout = 400_000;
    jitter = 0; max_attempts = 8 }

let params ~cpus ~gpus ~faults =
  let p = Params.small in
  {
    p with
    Params.cpu_cores = max cpus 1;
    gpu_cus = gpus;
    warps_per_cu = 1;
    llc_banks = 1;
    watchdog_cycles = 0;
    trace = None;
    fault =
      (if faults then
         (* Zero probabilities: the plan never fires on its own, but its
            presence arms the end-to-end retry timers and LLC replay
            caches that recovery from checker-chosen drops depends on. *)
         Some (Fault.uniform ~seed:1 ~retry:checker_retry ())
       else None);
  }
