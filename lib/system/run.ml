module Engine = Spandex_sim.Engine
module Trace = Spandex_sim.Trace
module Hist = Spandex_util.Hist
module Network = Spandex_net.Network
module Msg = Spandex_proto.Msg
module Txn = Spandex_proto.Txn
module Dram = Spandex_mem.Dram
module Stats = Spandex_util.Stats
module Core = Spandex_device.Core
module Port = Spandex_device.Port
module Barrier = Spandex_device.Barrier
module Check_log = Spandex_device.Check_log
module Pdes = Spandex_sim.Pdes
module Metrics = Spandex_obs.Metrics
module Llc = Spandex.Llc
module Backing = Spandex.Backing
module Mesi_l1 = Spandex_mesi.Mesi_l1
module Mesi_dir = Spandex_mesi.Mesi_dir
module Mesi_client = Spandex_mesi.Mesi_client
module Gpu_l1 = Spandex_gpucoh.Gpu_l1
module Denovo_l1 = Spandex_denovo.Denovo_l1

type result = {
  cycles : int;
  total_flits : int;
  traffic : (Msg.category * int) list;
  messages : int;
  events : int;
  checks : int;
  failures : Check_log.failure list;
  stats : Stats.t;
  minor_words : float;
  major_collections : int;
  latency : (string * Hist.summary) list;
  trace : Trace.t;
  device_names : string array;
  shards : int;
  shard_events : int array;
  metrics : Metrics.t;
  shard_profile : Pdes.shard_profile array option;
  partition : (string * int) array;
  cap_reason : string option;
  dram_channel_peaks : int array;
}

type component = {
  c_name : string;
  c_quiescent : unit -> bool;
  c_pending : unit -> string;
  c_stats : Stats.t;
  c_sample : time:int -> unit;
  c_metrics : Metrics.t -> unit;
  c_fingerprint : Spandex_util.Fingerprint.t -> unit;
}

type view = {
  view_id : int;
  view_name : string;
  view_owned : line:int -> Spandex_util.Mask.t;
  view_peek : Spandex_proto.Addr.t -> int option;
}

type llc_view = {
  lv_owner_of : Spandex_proto.Addr.t -> Msg.device_id option;
  lv_owned_mask : line:int -> Spandex_util.Mask.t;
  lv_peek : Spandex_proto.Addr.t -> int option;
}

type system = {
  sys_engine : Engine.t;
  sys_net : Network.t;
  sys_check_logs : Check_log.t list;
  sys_device_names : string array;
  sys_finished : unit -> bool;
  sys_pending : unit -> string;
  sys_fingerprint : unit -> string;
  sys_views : view list;
  sys_llc : llc_view option;
  sys_run : unit -> result;
}

let cache_geometry ~bytes ~ways =
  Spandex_mem.Cache_frame.size_lines ~bytes ~ways

let build_denovo engine net (p : Params.t) ~id ~llc_id ~atomics_at_llc ~region_of
    ~policy =
  let sets, ways = cache_geometry ~bytes:p.Params.l1_bytes ~ways:p.Params.l1_ways in
  let l1 =
    Denovo_l1.create engine net
      {
        Denovo_l1.id;
        llc_id;
        llc_banks = p.Params.llc_banks;
        sets;
        ways;
        mshrs = p.Params.mshrs;
        sb_capacity = p.Params.sb_capacity;
        hit_latency = p.Params.hit_latency;
        coalesce_window = p.Params.coalesce_window;
        max_reqv_retries = p.Params.max_reqv_retries;
        atomics_at_llc;
        region_of;
        policy;
      }
  in
  ( Denovo_l1.port l1,
    {
      c_name = Printf.sprintf "denovo_l1.%d" id;
      c_quiescent = (fun () -> (Denovo_l1.port l1).Port.quiescent ());
      c_pending = (fun () -> (Denovo_l1.port l1).Port.describe_pending ());
      c_stats = Denovo_l1.stats l1;
      c_sample = (fun ~time -> Denovo_l1.trace_sample l1 ~time);
      c_metrics =
        Denovo_l1.register_metrics l1
          ~device:(Printf.sprintf "denovo_l1.%d" id);
      c_fingerprint = Denovo_l1.fingerprint l1;
    },
    {
      view_id = id;
      view_name = Printf.sprintf "denovo_l1.%d" id;
      view_owned = (fun ~line -> Denovo_l1.owned_mask l1 ~line);
      view_peek = Denovo_l1.peek_word l1;
    } )

let build_mesi engine net (p : Params.t) ~id ~llc_id ~notify =
  let sets, ways = cache_geometry ~bytes:p.Params.l1_bytes ~ways:p.Params.l1_ways in
  let l1 =
    Mesi_l1.create engine net
      {
        Mesi_l1.id;
        llc_id;
        llc_banks = p.Params.llc_banks;
        sets;
        ways;
        mshrs = p.Params.mshrs;
        sb_capacity = p.Params.sb_capacity;
        hit_latency = p.Params.hit_latency;
        coalesce_window = p.Params.coalesce_window;
        notify_home_on_fwd_getm = notify;
      }
  in
  ( Mesi_l1.port l1,
    {
      c_name = Printf.sprintf "mesi_l1.%d" id;
      c_quiescent = (fun () -> (Mesi_l1.port l1).Port.quiescent ());
      c_pending = (fun () -> (Mesi_l1.port l1).Port.describe_pending ());
      c_stats = Mesi_l1.stats l1;
      c_sample = (fun ~time -> Mesi_l1.trace_sample l1 ~time);
      c_metrics =
        Mesi_l1.register_metrics l1 ~device:(Printf.sprintf "mesi_l1.%d" id);
      c_fingerprint = Mesi_l1.fingerprint l1;
    },
    {
      view_id = id;
      view_name = Printf.sprintf "mesi_l1.%d" id;
      view_owned = (fun ~line -> Mesi_l1.owned_mask l1 ~line);
      view_peek = Mesi_l1.peek_word l1;
    } )

let build_gpucoh engine net (p : Params.t) ~id ~llc_id =
  let sets, ways = cache_geometry ~bytes:p.Params.l1_bytes ~ways:p.Params.l1_ways in
  let l1 =
    Gpu_l1.create engine net
      {
        Gpu_l1.id;
        llc_id;
        llc_banks = p.Params.llc_banks;
        sets;
        ways;
        mshrs = p.Params.mshrs;
        sb_capacity = p.Params.sb_capacity;
        hit_latency = p.Params.hit_latency;
        coalesce_window = p.Params.coalesce_window;
        max_reqv_retries = p.Params.max_reqv_retries;
      }
  in
  ( Gpu_l1.port l1,
    {
      c_name = Printf.sprintf "gpu_l1.%d" id;
      c_quiescent = (fun () -> (Gpu_l1.port l1).Port.quiescent ());
      c_pending = (fun () -> (Gpu_l1.port l1).Port.describe_pending ());
      c_stats = Gpu_l1.stats l1;
      c_sample = (fun ~time -> Gpu_l1.trace_sample l1 ~time);
      c_metrics =
        Gpu_l1.register_metrics l1 ~device:(Printf.sprintf "gpu_l1.%d" id);
      c_fingerprint = Gpu_l1.fingerprint l1;
    },
    {
      view_id = id;
      view_name = Printf.sprintf "gpu_l1.%d" id;
      (* A GPU-coherence L1 never takes ownership of words. *)
      view_owned = (fun ~line:_ -> Spandex_util.Mask.empty);
      view_peek = Gpu_l1.peek_word l1;
    } )

let build ?(params = Params.default) ~(config : Config.t) (w : Workload.t) =
  Workload.validate w;
  Txn.reset ();
  let p = params in
  (* Allocation accounting covers the whole simulation — build + run — so
     bench harnesses can watch for allocation regressions alongside
     wall-clock.  Not part of bit-identity (GC counters are per-domain and
     scheduling-dependent). *)
  let gc0 = Gc.quick_stat () in
  (* Device ids: CPUs, then GPU CUs, then LLC/dir, L2 front, L2 back. *)
  let cpu_id i = i in
  let gpu_id j = p.Params.cpu_cores + j in
  let banks = p.Params.llc_banks in
  let home_id = p.Params.cpu_cores + p.Params.gpu_cus in
  let l2_front_id = home_id + banks in
  let l2_back_id = l2_front_id + banks in
  (* --- sharding plan ------------------------------------------------------ *)
  (* The partition (DESIGN.md §9): every self-contained component is a
     placement unit — each core (with its L1), each home bank (an LLC or
     directory bank plus its DRAM channel), and, hierarchical configs, the
     GPU-L2 complex (L2 banks + MESI client backside, whose shared
     MSHR/recall state forbids splitting).  [Params.pdes_partition] maps
     each group to shards; the default round-robins everything, so no
     shard is a component-pinned "home complex" any more.  Structural caps
     keep the partition sound:
     - barrier wakes are 1-cycle events on the barrier's engine, far
       below the network lookahead, so barrier workloads co-locate every
       core on one shard (the cores collapse to one unit);
     - more shards than placement units would leave empty shards.
     Fault plans no longer cap: per-(src, dst) link RNG streams make
     injection decisions shard-count-invariant (see [Fault]). *)
  let requested_shards =
    match p.Params.engine_backend with
    | Engine.Pdes_backend { shards } -> shards
    | Engine.Wheel_backend | Engine.Heap_backend -> 1
  in
  let n_cores =
    Array.length w.Workload.cpu_programs + Array.length w.Workload.gpu_programs
  in
  let has_barriers = Array.length w.Workload.barrier_parties > 0 in
  let hierarchical = config.Config.llc = Config.H_mesi in
  let core_units = if has_barriers then 1 else n_cores in
  let unit_count = core_units + banks + if hierarchical then 1 else 0 in
  let shard_cap = max 1 unit_count in
  let shards = max 1 (min requested_shards shard_cap) in
  let cap_reason =
    if requested_shards <= shards then None
    else
      let units =
        Printf.sprintf "%d core unit%s + %d home bank%s%s = %d placement units"
          core_units
          (if core_units = 1 then "" else "s")
          banks
          (if banks = 1 then "" else "s")
          (if hierarchical then " + 1 GPU-L2 complex" else "")
          unit_count
      in
      if has_barriers then
        Some
          (Printf.sprintf
             "barrier workload: barrier wakes are 1-cycle events below the \
              network lookahead, so all %d cores co-locate on one shard (%s)"
             n_cores units)
      else Some (Printf.sprintf "bank/component count: %s" units)
  in
  let partition_spec = p.Params.pdes_partition in
  let place (pl : Params.placement) ~unit_base u =
    if shards = 1 then 0
    else
      match pl with
      | Params.Pin s -> ((s mod shards) + shards) mod shards
      | Params.Spread -> (unit_base + u) mod shards
  in
  let bank_shard b = place partition_spec.Params.home_banks ~unit_base:0 b in
  let core_shard id =
    match (has_barriers, partition_spec.Params.cores) with
    (* The collapsed core unit is by far the heaviest (every core, L1 and
       pipeline event lands on it); give it the last shard so shard 0
       keeps only its round-robin share of home banks instead of
       re-becoming the hotspot the banked partition exists to break up. *)
    | true, Params.Spread -> shards - 1
    | true, (Params.Pin _ as pl) -> place pl ~unit_base:0 0
    | false, pl -> place pl ~unit_base:banks id
  in
  let gpu_shard =
    place partition_spec.Params.gpu_complex ~unit_base:(banks + core_units) 0
  in
  let shard_of id =
    if id < home_id then core_shard id
    else if id < l2_front_id then bank_shard (id - home_id)
    else gpu_shard
  in
  let trace =
    match p.Params.trace with
    | None -> Trace.disabled
    | Some spec -> Trace.create spec
  in
  (* One trace sink per shard — a sink is single-domain; they merge
     deterministically on export. *)
  let traces =
    Array.init shards (fun s ->
        if s = 0 then trace
        else
          match p.Params.trace with
          | None -> Trace.disabled
          | Some spec -> Trace.create spec)
  in
  let engines =
    Array.init shards (fun s ->
        Engine.create ~backend:p.Params.engine_backend ~trace:traces.(s) ())
  in
  let engine = engines.(0) in
  (* One metrics registry per shard, mirroring the trace sinks: every
     probe registered on shard [s]'s registry reads only state owned by
     shard [s]'s domain, and the registries merge after the run. *)
  let mregs =
    Array.init shards (fun _ ->
        match p.Params.metrics with
        | None -> Metrics.disabled
        | Some spec -> Metrics.create spec)
  in
  (* Human-readable endpoint names for trace export ("who is track 12?"). *)
  let device_names =
    Array.init (l2_back_id + 1) (fun id ->
        if id < p.Params.cpu_cores then
          match config.Config.cpu with
          | Config.Cpu_mesi -> Printf.sprintf "mesi_l1.%d" id
          | Config.Cpu_denovo -> Printf.sprintf "denovo_l1.%d" id
        else if id < home_id then (
          let j = id - p.Params.cpu_cores in
          match config.Config.gpu with
          | Config.Gpu_coh -> Printf.sprintf "gpu_l1.%d" j
          | Config.Gpu_denovo | Config.Gpu_adaptive | Config.Gpu_adaptive_rw ->
            Printf.sprintf "gpu_denovo_l1.%d" j)
        else if id < l2_front_id then (
          let b = id - home_id in
          match config.Config.llc with
          | Config.Spandex_flat -> Printf.sprintf "llc.b%d" b
          | Config.H_mesi -> Printf.sprintf "dir.b%d" b)
        else if id < l2_back_id then
          Printf.sprintf "gpu_l2.b%d" (id - l2_front_id)
        else "mesi_client")
  in
  let topo =
    match config.Config.llc with
    | Config.Spandex_flat ->
      Network.flat_topology ~latency:p.Params.flat_net_latency
    | Config.H_mesi ->
      let group_of id =
        if id = l2_back_id then 2
        else if id >= p.Params.cpu_cores && id < home_id then 1
        else if id >= l2_front_id && id < l2_back_id then 1
        else 0
      in
      Network.grouped_topology ~group_of
        ~local_latency:p.Params.local_net_latency
        ~cross_latency:p.Params.cross_net_latency
  in
  let pdes =
    if shards > 1 then
      Some
        (Pdes.create ~clock:Unix.gettimeofday
           ~lookahead:topo.Network.min_latency engines)
    else None
  in
  let net =
    match pdes with
    | None -> Network.create ?fault:p.Params.fault engine topo
    | Some pd ->
      Network.create_sharded ?fault:p.Params.fault engines topo ~shard_of
        ~cross:(fun ~src_shard ~dst_shard ~time ~t0 ~tie msg ep ->
          Pdes.push pd ~src_shard ~dst_shard ~time ~t0 ~tie msg ep)
  in
  (* Completion checks and the watchdog run on the topology's min-latency
     grid in every backend, so a sharded PDES run — which can only evaluate
     them at lookahead-aligned horizons — sees the identical boundary
     sequence and finishes at the identical cycle. *)
  Array.iter
    (fun e -> Engine.set_lookahead e topo.Network.min_latency)
    engines;
  (* One DRAM channel per home bank, each on its bank's shard engine: a
     bank only touches lines ≡ bank (mod banks), which route to exactly
     its channel, so memory timing state is bank-local.  The sequential
     backends build the identical banked structure (all channels on the
     one engine), keeping pdes == wheel bit-identity. *)
  let home_bank_engines = Array.init banks (fun b -> engines.(bank_shard b)) in
  let dram =
    Dram.create_banked home_bank_engines ~latency:p.Params.mem_latency
      ~service_interval:p.Params.mem_interval
  in
  (* Components tagged with their owning shard, for per-shard samplers. *)
  let components = ref [] in
  let add ?(shard = 0) c = components := (shard, c) :: !components in
  let all_components () = List.map snd !components in
  let kind_of id =
    if id < p.Params.cpu_cores then
      match config.Config.cpu with
      | Config.Cpu_mesi -> Llc.Kind_mesi
      | Config.Cpu_denovo -> Llc.Kind_denovo
    else
      match config.Config.gpu with
      | Config.Gpu_coh -> Llc.Kind_gpu
      | Config.Gpu_denovo | Config.Gpu_adaptive | Config.Gpu_adaptive_rw ->
        Llc.Kind_denovo
  in
  (* --- home level(s) ------------------------------------------------------ *)
  let cpu_home, gpu_home, llc_view =
    match config.Config.llc with
    | Config.Spandex_flat ->
      let sets, ways = cache_geometry ~bytes:p.Params.llc_bytes ~ways:p.Params.llc_ways in
      let llc =
        Llc.create ~bank_engines:home_bank_engines
          ~bank_backings:
            (Array.map (fun e -> Backing.dram e dram) home_bank_engines)
          engine net
          (Backing.dram engine dram)
          {
            Llc.llc_id = home_id;
            banks;
            sets;
            ways;
            (* The flat LLC replaces the intermediate level and sits at its
               distance (Table VI). *)
            access_latency = p.Params.l2_access;
            kind_of;
            reqs_policy = p.Params.reqs_policy;
          }
      in
      (* One component per bank, all named "spandex_llc": the merged stats
         sum back to the aggregate, and each bank's sampler/metrics/
         quiescence run on its own shard.  The fingerprint (settled
         points only) is emitted once, from bank 0's slot. *)
      for b = 0 to banks - 1 do
        add ~shard:(bank_shard b)
          {
            c_name = "spandex_llc";
            c_quiescent = (fun () -> Llc.bank_quiescent llc b);
            c_pending = (fun () -> Llc.bank_describe_pending llc b);
            c_stats = Llc.bank_stats llc b;
            c_sample = (fun ~time -> Llc.bank_trace_sample llc b ~time);
            c_metrics =
              (fun reg -> Llc.bank_register_metrics llc ~device:"spandex_llc" b reg);
            c_fingerprint =
              (if b = 0 then Llc.fingerprint llc else fun _ -> ());
          }
      done;
      ( home_id,
        home_id,
        Some
          {
            lv_owner_of = Llc.owner_of llc;
            lv_owned_mask = (fun ~line -> Llc.owned_mask llc ~line);
            lv_peek = Llc.peek_word llc;
          } )
    | Config.H_mesi ->
      let dsets, dways = cache_geometry ~bytes:p.Params.llc_bytes ~ways:p.Params.llc_ways in
      let dir =
        Mesi_dir.create ~bank_engines:home_bank_engines engine net dram
          { Mesi_dir.dir_id = home_id; banks; sets = dsets; ways = dways;
            access_latency = p.Params.llc_access }
      in
      for b = 0 to banks - 1 do
        add ~shard:(bank_shard b)
          {
            c_name = "mesi_dir";
            c_quiescent = (fun () -> Mesi_dir.bank_quiescent dir b);
            c_pending = (fun () -> Mesi_dir.bank_describe_pending dir b);
            c_stats = Mesi_dir.bank_stats dir b;
            c_sample = (fun ~time -> Mesi_dir.bank_trace_sample dir b ~time);
            c_metrics =
              (fun reg ->
                Mesi_dir.bank_register_metrics dir ~device:"mesi_dir" b reg);
            c_fingerprint =
              (if b = 0 then Mesi_dir.fingerprint dir else fun _ -> ());
          }
      done;
      (* The GPU-L2 complex — L2 banks plus the MESI client backside —
         shares MSHR and recall state through direct closure calls, so it
         is one placement unit on [gpu_shard]. *)
      let gpu_engine = engines.(gpu_shard) in
      let client =
        Mesi_client.create gpu_engine net
          { Mesi_client.id = l2_back_id; dir_id = home_id; dir_banks = banks;
            hit_latency = p.Params.hit_latency }
      in
      let l2sets, l2ways =
        cache_geometry ~bytes:p.Params.gpu_l2_bytes ~ways:p.Params.gpu_l2_ways
      in
      let l2 =
        Llc.create
          ~bank_engines:(Array.make banks gpu_engine)
          gpu_engine net
          (Mesi_client.backing client)
          {
            Llc.llc_id = l2_front_id;
            banks;
            sets = l2sets;
            ways = l2ways;
            access_latency = p.Params.l2_access;
            kind_of;
            reqs_policy = p.Params.reqs_policy;
          }
      in
      for b = 0 to banks - 1 do
        add ~shard:gpu_shard
          {
            c_name = "gpu_l2";
            c_quiescent = (fun () -> Llc.bank_quiescent l2 b);
            c_pending = (fun () -> Llc.bank_describe_pending l2 b);
            c_stats = Llc.bank_stats l2 b;
            c_sample = (fun ~time -> Llc.bank_trace_sample l2 b ~time);
            c_metrics =
              (fun reg -> Llc.bank_register_metrics l2 ~device:"gpu_l2" b reg);
            c_fingerprint = (if b = 0 then Llc.fingerprint l2 else fun _ -> ());
          }
      done;
      add ~shard:gpu_shard
        {
          c_name = "mesi_client";
          c_quiescent = (fun () -> (Mesi_client.backing client).Backing.quiescent ());
          c_pending = (fun () -> (Mesi_client.backing client).Backing.describe_pending ());
          c_stats = Mesi_client.stats client;
          c_sample = (fun ~time -> Mesi_client.trace_sample client ~time);
          c_metrics =
            Mesi_client.register_metrics client ~device:"mesi_client";
          c_fingerprint = Mesi_client.fingerprint client;
        };
      (home_id, l2_front_id, None)
  in
  (* --- L1s ------------------------------------------------------------------ *)
  (* Each L1 is created on its core's shard engine: the core drives its
     port directly and the L1 schedules its own latency/retry events, all
     of which must run on the owning shard's clock. *)
  let cpu_port eng i =
    match config.Config.cpu with
    | Config.Cpu_mesi ->
      build_mesi eng net p ~id:(cpu_id i) ~llc_id:cpu_home
        ~notify:(config.Config.llc = Config.H_mesi)
    | Config.Cpu_denovo ->
      build_denovo eng net p ~id:(cpu_id i) ~llc_id:cpu_home
        ~atomics_at_llc:config.Config.cpu_atomics_at_llc
        ~region_of:w.Workload.region_of
        ~policy:Spandex_l1.Spandex_policy.Static_own
  in
  let gpu_port eng j =
    match config.Config.gpu with
    | Config.Gpu_coh -> build_gpucoh eng net p ~id:(gpu_id j) ~llc_id:gpu_home
    | Config.Gpu_denovo | Config.Gpu_adaptive | Config.Gpu_adaptive_rw ->
      build_denovo eng net p ~id:(gpu_id j) ~llc_id:gpu_home
        ~atomics_at_llc:false ~region_of:w.Workload.region_of
        ~policy:
          (match config.Config.gpu with
          | Config.Gpu_adaptive -> Spandex_l1.Spandex_policy.adaptive_writes
          | Config.Gpu_adaptive_rw -> Spandex_l1.Spandex_policy.adaptive_full
          | Config.Gpu_coh | Config.Gpu_denovo ->
            Spandex_l1.Spandex_policy.Static_own)
  in
  (* --- cores ----------------------------------------------------------------- *)
  (* One check log per core: the per-core logs partition the global check
     stream, so a sharded run (cores on different domains) records exactly
     what a sequential run records — totals sum and failure lists
     concatenate in core order, independent of event interleave. *)
  let check_logs = ref [] in
  let new_check_log () =
    let log = Check_log.create () in
    check_logs := log :: !check_logs;
    log
  in
  (* Barrier workloads co-locate every core on one shard (see the shard
     plan above), so the barrier's wake events run on that shard. *)
  let barrier_engine = engines.(core_shard 0) in
  let barriers =
    Array.map
      (fun parties -> Barrier.create barrier_engine ~parties)
      w.Workload.barrier_parties
  in
  let cores = ref [] in
  let views = ref [] in
  Array.iteri
    (fun i program ->
      if i >= p.Params.cpu_cores then
        invalid_arg "workload uses more CPU cores than configured";
      let s = core_shard (cpu_id i) in
      let port, comp, view = cpu_port engines.(s) i in
      add ~shard:s comp;
      views := view :: !views;
      let core =
        Core.create engines.(s) ~port ~barriers ~check_log:(new_check_log ())
          ~core_id:(cpu_id i)
          ~clock:p.Params.cpu_clock ~programs:[| program |]
      in
      cores := core :: !cores)
    w.Workload.cpu_programs;
  Array.iteri
    (fun j warps ->
      if j >= p.Params.gpu_cus then
        invalid_arg "workload uses more GPU CUs than configured";
      let s = core_shard (gpu_id j) in
      let port, comp, view = gpu_port engines.(s) j in
      add ~shard:s comp;
      views := view :: !views;
      let core =
        Core.create engines.(s) ~port ~barriers ~check_log:(new_check_log ())
          ~core_id:(gpu_id j)
          ~clock:p.Params.gpu_clock ~programs:warps
      in
      cores := core :: !cores)
    w.Workload.gpu_programs;
  let cores = List.rev !cores in
  let views = List.rev !views in
  let check_logs = List.rev !check_logs in
  List.iter Core.start cores;
  (* Periodic occupancy sampling runs inline in the engine's dispatch loop —
     it never enqueues events, so event counts and scheduling are identical
     with tracing and metrics on or off.  One engine sampler serves both
     sinks: it fires on the faster cadence and each sink keeps its own
     next-due cursor (the engine samples at the first event past each
     multiple, not on exact multiples, so modulo gating would misfire). *)
  let metrics_on = Metrics.on mregs.(0) in
  if metrics_on then begin
    for s = 0 to shards - 1 do
      List.iter
        (fun (cs, c) -> if cs = s then c.c_metrics mregs.(s))
        (List.rev !components);
      Network.register_metrics net ~shard:s mregs.(s);
      Metrics.counter mregs.(s) ~name:"spandex_engine_events_total"
        ~labels:[ ("shard", string_of_int s) ]
        ~help:"engine events dispatched"
        (fun () -> Engine.events_processed engines.(s))
    done;
    (* Each DRAM channel's probes go on its owning bank's shard registry
       (probes must read only shard-local state). *)
    Array.iteri
      (fun b ch ->
        Dram.Channel.register_metrics ch
          ~labels:[ ("bank", string_of_int b) ]
          mregs.(bank_shard b))
      (Dram.channels dram);
    (* Depth gauges wrap every endpoint handler, so arm them only after
       all devices have registered; no-op on sharded networks. *)
    Network.enable_vc_depth_metrics net mregs.(0)
  end;
  if Trace.on trace || metrics_on then
    for s = 0 to shards - 1 do
      let sampled =
        List.filter_map
          (fun (cs, c) -> if cs = s then Some c else None)
          !components
      in
      let trace_every = if Trace.on trace then Trace.sample_every trace else 0
      and metrics_every = if metrics_on then Metrics.sample_every mregs.(s) else 0 in
      let every =
        match (trace_every, metrics_every) with
        | 0, m -> m
        | t, 0 -> t
        | t, m -> min t m
      in
      let next_trace = ref 0 and next_metrics = ref 0 in
      Engine.set_sampler engines.(s) ~every (fun time ->
          if trace_every > 0 && time >= !next_trace then begin
            next_trace := time + trace_every;
            List.iter (fun c -> c.c_sample ~time) sampled;
            Network.trace_sample_shard net ~shard:s ~time
          end;
          if metrics_every > 0 && time >= !next_metrics then begin
            next_metrics := time + metrics_every;
            Metrics.sample mregs.(s) ~time
          end)
    done;
  (* Component -> shard table, in device-id order, for profiling output
     and the bench schema (only devices this workload instantiates). *)
  let partition_table =
    let used =
      List.init (Array.length w.Workload.cpu_programs) cpu_id
      @ List.init (Array.length w.Workload.gpu_programs) gpu_id
      @ List.init banks (fun b -> home_id + b)
      @
      if hierarchical then
        List.init banks (fun b -> l2_front_id + b) @ [ l2_back_id ]
      else []
    in
    Array.of_list (List.map (fun id -> (device_names.(id), shard_of id)) used)
  in
  (* --- run ----------------------------------------------------------------- *)
  let finished () =
    List.for_all Core.finished cores
    && List.for_all (fun c -> c.c_quiescent ()) (all_components ())
    && Network.in_flight net = 0
  in
  let pending_desc () =
    let core_desc =
      List.filter_map
        (fun c -> if Core.finished c then None else Some (Core.describe_pending c))
        cores
    in
    let comp_desc =
      List.filter_map
        (fun c -> if c.c_quiescent () then None else Some (c.c_pending ()))
        (all_components ())
    in
    String.concat " | "
      (core_desc @ comp_desc
      @ [ Printf.sprintf "net in-flight=%d" (Network.in_flight net) ])
  in
  (* Canonical architectural-state fingerprint: components in build order,
     then cores, barriers, and in-flight message count.  One fresh
     accumulator per call so transaction-id remapping is first-encounter
     canonical — two executions that reach the same architectural state
     through different schedules digest identically. *)
  let fingerprint () =
    let fp = Spandex_util.Fingerprint.create () in
    List.iter (fun c -> c.c_fingerprint fp) (List.rev (all_components ()));
    List.iter (fun core -> Core.fingerprint core fp) cores;
    Array.iter
      (fun b ->
        Spandex_util.Fingerprint.tag fp "bar";
        Spandex_util.Fingerprint.int fp (Barrier.waiting b);
        Spandex_util.Fingerprint.int fp (Barrier.generation b))
      barriers;
    Spandex_util.Fingerprint.tag fp "net";
    Spandex_util.Fingerprint.int fp (Network.in_flight net);
    Spandex_util.Fingerprint.digest fp
  in
  let sys_run () =
    (* Message pooling is scoped to the run: hand-driven harnesses that
       deliver into inbox lists (and the model checker, which drives
       [Engine.step] itself) keep the allocate-per-message default. *)
    let was_pooling = Msg.pooling_enabled () in
    Msg.set_pooling true;
    Fun.protect ~finally:(fun () -> Msg.set_pooling was_pooling) @@ fun () ->
    if p.Params.watchdog_cycles > 0 then
      Engine.set_watchdog engine ~interval:p.Params.watchdog_cycles
        ~progress:(fun () ->
          List.fold_left
            (fun acc c -> acc + Stats.get (Core.stats c) "ops")
            0 cores)
        ~describe:pending_desc;
    let cycles =
      match pdes with
      | None -> Engine.run engine ~until_done:finished ~pending_desc
      | Some pd -> Pdes.run pd ~until_done:finished ~pending_desc
    in
    let stats = Stats.create () in
    List.iter
      (fun c -> Stats.merge_into ~dst:stats ~prefix:c.c_name c.c_stats)
      (all_components ());
    List.iter
      (fun c ->
        Stats.merge_into ~dst:stats
          ~prefix:(Printf.sprintf "core.%d" (Core.core_id c))
          (Core.stats c))
      cores;
    Array.iter
      (fun s -> Stats.merge_into ~dst:stats ~prefix:"net" s)
      (Network.shard_stats net);
    let out_trace =
      if shards = 1 then trace else Trace.merge (Array.to_list traces)
    in
    let gc1 = Gc.quick_stat () in
    {
      cycles;
      total_flits = Network.total_flits net;
      traffic =
        List.map (fun c -> (c, Network.traffic_flits net c)) Msg.all_categories;
      messages = Network.messages_sent net;
      events =
        Array.fold_left (fun acc e -> acc + Engine.events_processed e) 0 engines;
      checks =
        List.fold_left (fun acc l -> acc + Check_log.checks l) 0 check_logs;
      failures = List.concat_map Check_log.failures check_logs;
      stats;
      minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
      major_collections = gc1.Gc.major_collections - gc0.Gc.major_collections;
      latency = Trace.latency_summaries out_trace;
      trace = out_trace;
      device_names;
      shards;
      shard_events = Array.map Engine.events_processed engines;
      metrics = Metrics.merge (Array.to_list mregs);
      shard_profile = Option.map Pdes.profile pdes;
      partition = partition_table;
      cap_reason;
      dram_channel_peaks =
        Array.map Dram.Channel.peak_queue_depth (Dram.channels dram);
    }
  in
  {
    sys_engine = engine;
    sys_net = net;
    sys_check_logs = check_logs;
    sys_device_names = device_names;
    sys_finished = finished;
    sys_pending = pending_desc;
    sys_fingerprint = fingerprint;
    sys_views = views;
    sys_llc = llc_view;
    sys_run;
  }

let simulate ?params ~config w =
  let sys = build ?params ~config w in
  sys.sys_run ()

let assert_clean r =
  match r.failures with
  | [] -> ()
  | f :: _ ->
    failwith
      (Format.asprintf "data mismatch (%d total): %a" (List.length r.failures)
         Check_log.pp_failure f)
