type cell = { config : string; result : Run.result }
type row = { workload : string; cells : cell list }

let cycles (r : Run.result) = r.Run.cycles
let flits (r : Run.result) = r.Run.total_flits

let find_cell row name =
  List.find (fun c -> c.config = name) row.cells

let normalized row ~metric =
  let base = float_of_int (metric (find_cell row "HMG").result) in
  List.map
    (fun c -> (c.config, float_of_int (metric c.result) /. base))
    row.cells

let best row ~among ~metric =
  match List.filter (fun c -> among c.config) row.cells with
  | [] -> invalid_arg "Report.best: no matching configuration"
  | c :: rest ->
    List.fold_left
      (fun acc c -> if metric c.result < metric acc.result then c else acc)
      c rest

type headline = {
  time_avg : float;
  time_max : float;
  traffic_avg : float;
  traffic_max : float;
}

let headline rows =
  let reductions =
    List.map
      (fun row ->
        let is_h name = String.length name > 0 && name.[0] = 'H' in
        let is_s name = String.length name > 0 && name.[0] = 'S' in
        let hbest = best row ~among:is_h ~metric:cycles in
        let sbest = best row ~among:is_s ~metric:cycles in
        let time_red =
          1.0
          -. (float_of_int (cycles sbest.result)
             /. float_of_int (cycles hbest.result))
        in
        let traffic_red =
          1.0
          -. (float_of_int (flits sbest.result)
             /. float_of_int (flits hbest.result))
        in
        (time_red, traffic_red))
      rows
  in
  let n = float_of_int (List.length reductions) in
  let times = List.map fst reductions and traffics = List.map snd reductions in
  {
    time_avg = List.fold_left ( +. ) 0.0 times /. n;
    time_max = List.fold_left max neg_infinity times;
    traffic_avg = List.fold_left ( +. ) 0.0 traffics /. n;
    traffic_max = List.fold_left max neg_infinity traffics;
  }

let traffic_share (r : Run.result) =
  let total = float_of_int (max 1 r.Run.total_flits) in
  List.map
    (fun (cat, n) -> (cat, float_of_int n /. total))
    r.Run.traffic

(* ----- fault-injection summary ---------------------------------------------- *)

type fault_summary = {
  injected : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  reordered : int;
  resends : int;
  recovered : int;
  replayed : int;
}

let suffix_sum stats ~suffix =
  List.fold_left
    (fun acc (name, v) ->
      let ln = String.length name and ls = String.length suffix in
      if ln >= ls && String.sub name (ln - ls) ls = suffix then acc + v else acc)
    0
    (Spandex_util.Stats.to_assoc stats)

let fault_summary (r : Run.result) =
  let s = r.Run.stats in
  let net key = Spandex_util.Stats.get s ("net." ^ key) in
  {
    injected = net "fault.injected";
    dropped = net "fault.drop";
    duplicated = net "fault.dup";
    delayed = net "fault.delay";
    reordered = net "fault.reorder";
    resends = suffix_sum s ~suffix:".retry.resend";
    recovered = suffix_sum s ~suffix:".retry.recovered";
    replayed = suffix_sum s ~suffix:".replayed";
  }

let pp_fault_summary fmt s =
  Format.fprintf fmt
    "faults injected %d (drop %d, dup %d, delay %d, reorder %d) | resends %d \
     | txns recovered %d | home replays %d"
    s.injected s.dropped s.duplicated s.delayed s.reordered s.resends
    s.recovered s.replayed
