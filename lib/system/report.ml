type cell = { config : string; result : Run.result }
type row = { workload : string; cells : cell list }

let cycles (r : Run.result) = r.Run.cycles
let flits (r : Run.result) = r.Run.total_flits

let find_cell row name =
  List.find (fun c -> c.config = name) row.cells

let normalized row ~metric =
  let base = float_of_int (metric (find_cell row "HMG").result) in
  List.map
    (fun c -> (c.config, float_of_int (metric c.result) /. base))
    row.cells

let best row ~among ~metric =
  match List.filter (fun c -> among c.config) row.cells with
  | [] -> invalid_arg "Report.best: no matching configuration"
  | c :: rest ->
    List.fold_left
      (fun acc c -> if metric c.result < metric acc.result then c else acc)
      c rest

type headline = {
  time_avg : float;
  time_max : float;
  traffic_avg : float;
  traffic_max : float;
}

let headline rows =
  let reductions =
    List.map
      (fun row ->
        let is_h name = String.length name > 0 && name.[0] = 'H' in
        let is_s name = String.length name > 0 && name.[0] = 'S' in
        let hbest = best row ~among:is_h ~metric:cycles in
        let sbest = best row ~among:is_s ~metric:cycles in
        let time_red =
          1.0
          -. (float_of_int (cycles sbest.result)
             /. float_of_int (cycles hbest.result))
        in
        let traffic_red =
          1.0
          -. (float_of_int (flits sbest.result)
             /. float_of_int (flits hbest.result))
        in
        (time_red, traffic_red))
      rows
  in
  let n = float_of_int (List.length reductions) in
  let times = List.map fst reductions and traffics = List.map snd reductions in
  {
    time_avg = List.fold_left ( +. ) 0.0 times /. n;
    time_max = List.fold_left max neg_infinity times;
    traffic_avg = List.fold_left ( +. ) 0.0 traffics /. n;
    traffic_max = List.fold_left max neg_infinity traffics;
  }

(* Bit-identical equality over everything a run reports, used to assert the
   parallel sweep matches a sequential one.  Stats are compared as sorted
   (name, value) assoc lists, so interning order does not matter. *)
let same_result (a : Run.result) (b : Run.result) =
  a.Run.cycles = b.Run.cycles
  && a.Run.total_flits = b.Run.total_flits
  && a.Run.traffic = b.Run.traffic
  && a.Run.messages = b.Run.messages
  && a.Run.events = b.Run.events
  && a.Run.checks = b.Run.checks
  && a.Run.failures = b.Run.failures
  && Spandex_util.Stats.to_assoc a.Run.stats
     = Spandex_util.Stats.to_assoc b.Run.stats

let diff_result (a : Run.result) (b : Run.result) =
  if a.Run.cycles <> b.Run.cycles then
    Some (Printf.sprintf "cycles %d <> %d" a.Run.cycles b.Run.cycles)
  else if a.Run.total_flits <> b.Run.total_flits then
    Some
      (Printf.sprintf "total_flits %d <> %d" a.Run.total_flits b.Run.total_flits)
  else if a.Run.traffic <> b.Run.traffic then Some "traffic breakdown differs"
  else if a.Run.messages <> b.Run.messages then
    Some (Printf.sprintf "messages %d <> %d" a.Run.messages b.Run.messages)
  else if a.Run.events <> b.Run.events then
    Some (Printf.sprintf "events %d <> %d" a.Run.events b.Run.events)
  else if a.Run.checks <> b.Run.checks then
    Some (Printf.sprintf "checks %d <> %d" a.Run.checks b.Run.checks)
  else if a.Run.failures <> b.Run.failures then Some "check failures differ"
  else
    let sa = Spandex_util.Stats.to_assoc a.Run.stats in
    let sb = Spandex_util.Stats.to_assoc b.Run.stats in
    if sa = sb then None
    else
      let tbl = Hashtbl.create 64 in
      List.iter (fun (k, v) -> Hashtbl.replace tbl k v) sb;
      let bad =
        List.find_opt
          (fun (k, v) -> Hashtbl.find_opt tbl k <> Some v)
          sa
      in
      Some
        (match bad with
        | Some (k, v) ->
          Printf.sprintf "stat %s: %d <> %s" k v
            (match Hashtbl.find_opt tbl k with
            | Some w -> string_of_int w
            | None -> "absent")
        | None -> "stats counter sets differ")

let traffic_share (r : Run.result) =
  let total = float_of_int (max 1 r.Run.total_flits) in
  List.map
    (fun (cat, n) -> (cat, float_of_int n /. total))
    r.Run.traffic

(* ----- per-class latency ---------------------------------------------------- *)

let pp_latency fmt (r : Run.result) =
  match r.Run.latency with
  | [] -> Format.fprintf fmt "no latency data (run with tracing enabled)"
  | rows ->
    Format.fprintf fmt "@[<v>%-10s %9s %7s %7s %7s %7s %9s" "class" "count"
      "p50" "p90" "p99" "max" "mean";
    List.iter
      (fun (name, (s : Spandex_util.Hist.summary)) ->
        Format.fprintf fmt "@,%-10s %9d %7d %7d %7d %7d %9.1f" name
          s.Spandex_util.Hist.count s.Spandex_util.Hist.p50
          s.Spandex_util.Hist.p90 s.Spandex_util.Hist.p99
          s.Spandex_util.Hist.max s.Spandex_util.Hist.mean)
      rows;
    Format.fprintf fmt "@]"

(* ----- fault-injection summary ---------------------------------------------- *)

type fault_summary = {
  injected : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  reordered : int;
  resends : int;
  recovered : int;
  replayed : int;
}

let suffix_sum stats ~suffix =
  List.fold_left
    (fun acc (name, v) ->
      let ln = String.length name and ls = String.length suffix in
      if ln >= ls && String.sub name (ln - ls) ls = suffix then acc + v else acc)
    0
    (Spandex_util.Stats.to_assoc stats)

let fault_summary (r : Run.result) =
  let s = r.Run.stats in
  let net key = Spandex_util.Stats.get_prefixed s ~prefix:"net" key in
  {
    injected = net "fault.injected";
    dropped = net "fault.drop";
    duplicated = net "fault.dup";
    delayed = net "fault.delay";
    reordered = net "fault.reorder";
    resends = suffix_sum s ~suffix:".retry.resend";
    recovered = suffix_sum s ~suffix:".retry.recovered";
    replayed = suffix_sum s ~suffix:".replayed";
  }

let pp_fault_summary fmt s =
  Format.fprintf fmt
    "faults injected %d (drop %d, dup %d, delay %d, reorder %d) | resends %d \
     | txns recovered %d | home replays %d"
    s.injected s.dropped s.duplicated s.delayed s.reordered s.resends
    s.recovered s.replayed
