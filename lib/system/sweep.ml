(* Parallel sweep runner.

   Every [Run.simulate] call owns its engine, network, and stats, and the
   only process-wide simulator state (the transaction counter) is
   domain-local, so independent (config x workload x seed) simulations can
   run on separate domains.  Workers pull jobs from a shared atomic index
   and write results into per-job slots, so results come back in submission
   order and the output is bit-identical to a sequential run regardless of
   scheduling. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

type 'b outcome = Value of 'b | Raised of exn * Printexc.raw_backtrace

let map ?jobs f items =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let input = Array.of_list items in
  let n = Array.length input in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Value (f input.(i))
            with e -> Raised (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    (* The calling domain is one of the workers. *)
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (* Re-raise the first failure in submission order, as a sequential
       List.map would have surfaced it (later jobs may have run anyway). *)
    Array.to_list results
    |> List.map (function
         | Some (Value v) -> v
         | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

(* ----- simulation jobs ------------------------------------------------------ *)

type job = {
  label : string;
  params : Params.t;
  config : Config.t;
  workload : Workload.t;
}

let simulate_all ?jobs js =
  map ?jobs
    (fun j -> Run.simulate ~params:j.params ~config:j.config j.workload)
    js
