(* Parallel sweep runner.

   Every [Run.simulate] call owns its engine, network, and stats, and the
   only process-wide simulator state (the transaction counter) is
   domain-local, so independent (config x workload x seed) simulations can
   run on separate domains.  Workers pull jobs from a shared atomic index
   and write results into per-job slots, so results come back in submission
   order and the output is bit-identical to a sequential run regardless of
   scheduling. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

type 'b outcome = Value of 'b | Raised of exn * Printexc.raw_backtrace

type worker_gc = {
  wg_jobs : int;
  wg_minor_words : float;
  wg_major_collections : int;
}

(* Simulation allocates in a steady churn of short-lived records; a larger
   minor heap keeps that churn out of the major heap, and a raised
   space_overhead stops the (rare) major collections from compacting
   mid-sweep.  Each worker domain sets its own parameters — minor heaps
   are per-domain in OCaml 5 — and restores the caller's on exit so
   embedding programs are unaffected. *)
let tuned_minor_heap_words = 4 * 1024 * 1024
let tuned_space_overhead = 400

let with_tuned_gc f =
  let saved = Gc.get () in
  Gc.set
    {
      saved with
      Gc.minor_heap_size = tuned_minor_heap_words;
      space_overhead = tuned_space_overhead;
    };
  Fun.protect ~finally:(fun () -> Gc.set saved) f

(* [weights.(i)] is the expected relative cost of [items.(i)]; workers
   claim jobs heaviest-first so one long job started last cannot serialize
   the tail of the sweep.  Results still land in submission-order slots. *)
let claim_order n = function
  | None -> Array.init n (fun i -> i)
  | Some weights ->
    assert (Array.length weights = n);
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        match compare weights.(b) weights.(a) with
        | 0 -> compare a b
        | c -> c)
      order;
    order

let map_gc ?jobs ?weights f items =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let input = Array.of_list items in
  let n = Array.length input in
  let jobs = max 1 (min jobs n) in
  let order = claim_order n weights in
  if jobs <= 1 then begin
    let results = Array.make n None in
    let gc =
      with_tuned_gc @@ fun () ->
      let s0 = Gc.quick_stat () in
      Array.iter
        (fun i ->
          results.(i) <-
            Some
              (try Value (f input.(i))
               with e -> Raised (e, Printexc.get_raw_backtrace ())))
        order;
      let s1 = Gc.quick_stat () in
      {
        wg_jobs = n;
        wg_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
        wg_major_collections =
          s1.Gc.major_collections - s0.Gc.major_collections;
      }
    in
    ( Array.to_list results
      |> List.map (function
           | Some (Value v) -> v
           | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false),
      [ gc ] )
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let gc_slots = Array.make jobs None in
    let worker wid () =
      with_tuned_gc @@ fun () ->
      let s0 = Gc.quick_stat () in
      let claimed = ref 0 in
      let rec loop () =
        let k = Atomic.fetch_and_add next 1 in
        if k < n then begin
          let i = order.(k) in
          let r =
            try Value (f input.(i))
            with e -> Raised (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          incr claimed;
          loop ()
        end
      in
      loop ();
      let s1 = Gc.quick_stat () in
      gc_slots.(wid) <-
        Some
          {
            wg_jobs = !claimed;
            wg_minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
            wg_major_collections =
              s1.Gc.major_collections - s0.Gc.major_collections;
          }
    in
    (* The calling domain is one of the workers. *)
    let spawned = Array.init (jobs - 1) (fun w -> Domain.spawn (worker (w + 1))) in
    worker 0 ();
    Array.iter Domain.join spawned;
    (* Re-raise the first failure in submission order, as a sequential
       List.map would have surfaced it (later jobs may have run anyway). *)
    ( Array.to_list results
      |> List.map (function
           | Some (Value v) -> v
           | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false),
      Array.to_list gc_slots |> List.filter_map Fun.id )
  end

let map ?jobs ?weights f items = fst (map_gc ?jobs ?weights f items)

(* ----- simulation jobs ------------------------------------------------------ *)

type job = {
  label : string;
  params : Params.t;
  config : Config.t;
  workload : Workload.t;
}

(* Expected cost proxy: the op count of the workload program.  Cycles per
   op vary by config, but across a sweep the op count dominates — it is
   exact enough to keep the longest cells off the tail. *)
let job_weight j = float_of_int (Workload.total_ops j.workload)

let simulate_all_gc ?jobs js =
  let weights = Array.of_list (List.map job_weight js) in
  map_gc ?jobs ~weights
    (fun j -> Run.simulate ~params:j.params ~config:j.config j.workload)
    js

let simulate_all ?jobs js = fst (simulate_all_gc ?jobs js)
