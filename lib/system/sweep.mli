(** Parallel sweep runner: fan independent simulations out across domains.

    [Run.simulate] owns all its state per call (engine, network, caches,
    stats) and the transaction counter is domain-local, so independent
    (config x workload x seed) jobs parallelize without coordination.
    Results are returned in submission order and are bit-identical to a
    sequential run of the same jobs — cycles, flits, traffic and stats do
    not depend on [jobs] (asserted by [test/test_sweep.ml]).

    Each worker domain runs with its own tuned GC parameters (a larger
    minor heap and raised space_overhead, restored on exit) so one
    domain's collections do not pace another's, and claims jobs
    longest-expected-first so a heavy cell started last cannot serialize
    the tail of the sweep. *)

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core for
    the orchestrating domain's bookkeeping. *)

type worker_gc = {
  wg_jobs : int;  (** jobs this worker claimed. *)
  wg_minor_words : float;  (** minor words it allocated across them. *)
  wg_major_collections : int;  (** major collections it triggered. *)
}
(** Per-worker-domain GC accounting for one [map_gc] call. *)

val map : ?jobs:int -> ?weights:float array -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item using [jobs] worker
    domains (the calling domain is one of them), returning results in
    input order.  [jobs] defaults to {!default_jobs}; [jobs <= 1] runs
    sequentially in the calling domain.  [weights.(i)] is the expected
    relative cost of item [i]; when given, workers claim heavier items
    first (results are unaffected).  If any application raises, the first
    failure in submission order is re-raised after all workers have
    drained.  [f] must not touch domain-unsafe shared state; [Run.simulate]
    with per-job params/config/workload qualifies. *)

val map_gc :
  ?jobs:int ->
  ?weights:float array ->
  ('a -> 'b) ->
  'a list ->
  'b list * worker_gc list
(** {!map} plus per-worker GC accounting, one entry per worker domain
    that ran (in worker order, not submission order). *)

type job = {
  label : string;  (** for reports; not interpreted. *)
  params : Params.t;
  config : Config.t;
  workload : Workload.t;
}

val simulate_all : ?jobs:int -> job list -> Run.result list
(** Run every job through [Run.simulate], fanned out across domains;
    results in submission order.  Jobs are claimed longest-first by
    expected op count.  Workloads may be shared between jobs — simulation
    reads but never mutates them. *)

val simulate_all_gc : ?jobs:int -> job list -> Run.result list * worker_gc list
(** {!simulate_all} plus per-worker GC accounting (cf. {!map_gc}). *)
