(** Parallel sweep runner: fan independent simulations out across domains.

    [Run.simulate] owns all its state per call (engine, network, caches,
    stats) and the transaction counter is domain-local, so independent
    (config x workload x seed) jobs parallelize without coordination.
    Results are returned in submission order and are bit-identical to a
    sequential run of the same jobs — cycles, flits, traffic and stats do
    not depend on [jobs] (asserted by [test/test_sweep.ml]). *)

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core for
    the orchestrating domain's bookkeeping. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item using [jobs] worker
    domains (the calling domain is one of them), returning results in
    input order.  [jobs] defaults to {!default_jobs}; [jobs <= 1] runs
    sequentially in the calling domain.  If any application raises, the
    first failure in submission order is re-raised after all workers have
    drained.  [f] must not touch domain-unsafe shared state; [Run.simulate]
    with per-job params/config/workload qualifies. *)

type job = {
  label : string;  (** for reports; not interpreted. *)
  params : Params.t;
  config : Config.t;
  workload : Workload.t;
}

val simulate_all : ?jobs:int -> job list -> Run.result list
(** Run every job through [Run.simulate], fanned out across domains;
    results in submission order.  Workloads may be shared between jobs —
    simulation reads but never mutates them. *)
