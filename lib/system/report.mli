(** Normalization and summary math for the Figure 2/3 reproductions.

    The paper reports execution time and network traffic normalized to HMG
    per workload, plus Hbest/Sbest — the best hierarchical and best Spandex
    configuration per workload — and the headline averages of Sbest's
    reduction relative to Hbest (§I: 16% execution time, 27% traffic). *)

type cell = { config : string; result : Run.result }
type row = { workload : string; cells : cell list }

val normalized : row -> metric:(Run.result -> int) -> (string * float) list
(** Each config's metric divided by HMG's. *)

val best : row -> among:(string -> bool) -> metric:(Run.result -> int) -> cell
(** The minimal-metric cell among configs selected by [among]. *)

type headline = {
  time_avg : float;  (** mean of (1 - Sbest/Hbest) over workloads, in time. *)
  time_max : float;
  traffic_avg : float;
  traffic_max : float;
}

val headline : row list -> headline
(** Sbest/Hbest chosen by execution time per workload, as in §V; the
    traffic reduction uses the same chosen configurations. *)

val cycles : Run.result -> int
val flits : Run.result -> int

val same_result : Run.result -> Run.result -> bool
(** Bit-identical equality over everything a run reports — cycles, flits,
    traffic breakdown, messages, events, checks, failures, and the full
    sorted stats assoc.  Used to assert parallel sweeps match sequential
    ones. *)

val diff_result : Run.result -> Run.result -> string option
(** [None] when {!same_result}; otherwise a one-line description of the
    first differing field, for divergence diagnostics. *)

val traffic_share : Run.result -> (Spandex_proto.Msg.category * float) list
(** Per-category fraction of total flits. *)

val pp_latency : Format.formatter -> Run.result -> unit
(** Render the per-request-class latency table (count / p50 / p90 / p99 /
    max / mean in cycles) from [result.latency]; prints a hint when the
    run was untraced. *)

type fault_summary = {
  injected : int;  (** total faults the network injected. *)
  dropped : int;
  duplicated : int;
  delayed : int;
  reordered : int;
  resends : int;  (** timeout-driven re-issues across all requestors. *)
  recovered : int;  (** transactions that completed after >=1 resend. *)
  replayed : int;  (** duplicate requests answered from home reply caches. *)
}

val fault_summary : Run.result -> fault_summary
(** Collect the fault-injection and recovery counters out of a run's merged
    stats ("net.fault.*", "*.retry.*", "*.replayed"); all zero when the run
    used the reliable network. *)

val pp_fault_summary : Format.formatter -> fault_summary -> unit
