(** System parameters (paper Table VI, scaled to the event-driven model).

    All latencies are in LLC-clock cycles (2 GHz).  The GPU's 700 MHz clock
    is modelled by issuing GPU ops every [gpu_clock] cycles. *)

type placement =
  | Spread  (** round-robin the group's units across the shards. *)
  | Pin of int  (** every unit on one shard (index modulo the shard count). *)

type partition = {
  home_banks : placement;
      (** LLC (flat) or directory (H-MESI) banks; each bank, together
          with its DRAM channel, is one placement unit. *)
  gpu_complex : placement;
      (** hierarchical configs: the GPU L2 banks plus the MESI client
          backside — shared MSHR/recall state makes them a single
          placement unit; [Spread] slots that unit into the round-robin
          sequence after the home banks. *)
  cores : placement;
      (** one unit per core (with its L1); barrier workloads override
          this to a single shard, since barrier wakes are 1-cycle events
          below the network lookahead. *)
}
(** How {!Run} maps components to PDES shards (DESIGN.md §9).  Ignored by
    the sequential backends. *)

type t = {
  cpu_cores : int;
  gpu_cus : int;
  warps_per_cu : int;
  cpu_clock : int;
  gpu_clock : int;
  l1_bytes : int;
  l1_ways : int;
  gpu_l2_bytes : int;
  gpu_l2_ways : int;
  llc_bytes : int;
  llc_ways : int;
  llc_banks : int;  (** bank endpoints per shared cache level (Table VI: 16). *)
  mshrs : int;
  sb_capacity : int;
  hit_latency : int;
  flat_net_latency : int;
      (** device <-> LLC in the flat Spandex system.  Flattening removes a
          level, so the shared Spandex LLC sits at the hierarchical L2's
          distance (Table VI: Spandex "L2" hit 29-66 cycles vs H-MESI L3
          58-99). *)
  local_net_latency : int;  (** same-cluster hop in the hierarchy. *)
  cross_net_latency : int;  (** cross-cluster hop in the hierarchy. *)
  llc_access : int;
  l2_access : int;
  mem_latency : int;
  mem_interval : int;  (** cycles between DRAM accesses (bandwidth). *)
  coalesce_window : int;
  max_reqv_retries : int;
  reqs_policy : Spandex.Llc.reqs_policy;
      (** how the Spandex LLC serves writer-invalidated reads (paper III-B
          options (1)/(2)/(3)); [Reqs_auto] is the paper's evaluation. *)
  fault : Spandex_net.Fault.spec option;
      (** fault-injection plan for the interconnect; [None] (the default)
          runs the reliable network, bit-identical to the pre-fault model. *)
  watchdog_cycles : int;
      (** raise [Engine.Livelock] when no core retires an op for this many
          cycles; 0 disables the watchdog. *)
  engine_backend : Spandex_sim.Engine.backend;
      (** event-queue implementation; [Wheel_backend] (the default) is the
          timing wheel, [Heap_backend] the pre-wheel binary heap kept for
          bit-identity cross-checks. *)
  pdes_partition : partition;
      (** component-to-shard placement under [Pdes_backend]; the default
          spreads every group. *)
  trace : Spandex_sim.Trace.spec option;
      (** transaction-trace sink configuration; [None] (the default) uses
          the shared disabled sink — no events, no histograms, and results
          bit-identical to an untraced build. *)
  metrics : Spandex_obs.Metrics.spec option;
      (** time-series metrics registry configuration; [None] (the
          default) registers no probes.  Sampling shares the engine's
          inline sampler with the trace sink (no events enqueued), so
          results are bit-identical either way. *)
}

val default : t

val small : t
(** Tiny caches and short latencies: exercises evictions, recalls and
    capacity races in unit tests. *)

val bench : t
(** The harness configuration: Table VI geometry and latencies with caches
    scaled down in proportion to the scaled-down workload footprints
    (DESIGN.md §5), preserving each benchmark's cache-fit properties. *)

val pp : Format.formatter -> t -> unit
