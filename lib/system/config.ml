type llc_kind = H_mesi | Spandex_flat
type cpu_proto = Cpu_mesi | Cpu_denovo
type gpu_proto = Gpu_coh | Gpu_denovo | Gpu_adaptive | Gpu_adaptive_rw

type t = {
  name : string;
  llc : llc_kind;
  cpu : cpu_proto;
  gpu : gpu_proto;
  cpu_atomics_at_llc : bool;
}

let hmg =
  { name = "HMG"; llc = H_mesi; cpu = Cpu_mesi; gpu = Gpu_coh; cpu_atomics_at_llc = false }

let hmd =
  { name = "HMD"; llc = H_mesi; cpu = Cpu_mesi; gpu = Gpu_denovo; cpu_atomics_at_llc = false }

let smg =
  { name = "SMG"; llc = Spandex_flat; cpu = Cpu_mesi; gpu = Gpu_coh; cpu_atomics_at_llc = false }

let smd =
  { name = "SMD"; llc = Spandex_flat; cpu = Cpu_mesi; gpu = Gpu_denovo; cpu_atomics_at_llc = false }

let sdg =
  { name = "SDG"; llc = Spandex_flat; cpu = Cpu_denovo; gpu = Gpu_coh; cpu_atomics_at_llc = true }

let sdd =
  { name = "SDD"; llc = Spandex_flat; cpu = Cpu_denovo; gpu = Gpu_denovo; cpu_atomics_at_llc = false }

let sda =
  {
    name = "SDA";
    llc = Spandex_flat;
    cpu = Cpu_denovo;
    gpu = Gpu_adaptive;
    cpu_atomics_at_llc = false;
  }

let saa =
  {
    name = "SAA";
    llc = Spandex_flat;
    cpu = Cpu_denovo;
    gpu = Gpu_adaptive_rw;
    cpu_atomics_at_llc = false;
  }

let all = [ hmg; hmd; smg; smd; sdg; sdd ]
let extended = all @ [ sda; saa ]

let by_name name =
  let up = String.uppercase_ascii name in
  List.find (fun c -> c.name = up) extended

let describe c =
  Printf.sprintf "%s: LLC=%s CPU=%s GPU=%s%s" c.name
    (match c.llc with H_mesi -> "hier-MESI" | Spandex_flat -> "Spandex")
    (match c.cpu with Cpu_mesi -> "MESI" | Cpu_denovo -> "DeNovo")
    (match c.gpu with
    | Gpu_coh -> "GPUcoh"
    | Gpu_denovo -> "DeNovo"
    | Gpu_adaptive -> "DeNovo+adaptive-writes"
    | Gpu_adaptive_rw -> "DeNovo+adaptive-rw")
    (if c.cpu_atomics_at_llc then " (CPU atomics at LLC)" else "")
