(** Build a full system for a configuration and run a workload to
    completion. *)

type result = {
  cycles : int;  (** execution time: cycle at which the system quiesced. *)
  total_flits : int;  (** network traffic in flit-hops. *)
  traffic : (Spandex_proto.Msg.category * int) list;  (** Fig. 2/3 breakdown. *)
  messages : int;
  events : int;  (** engine events processed; basis for events/sec. *)
  checks : int;  (** workload [Check] ops executed. *)
  failures : Spandex_device.Check_log.failure list;
      (** data-value mismatches — any entry is a coherence bug. *)
  stats : Spandex_util.Stats.t;  (** merged per-component counters. *)
  minor_words : float;
      (** minor-heap words allocated over the whole simulation (build +
          run), from [Gc.quick_stat]; divide by [events] for a per-event
          allocation figure.  Excluded from bit-identity comparisons. *)
  major_collections : int;
      (** major GC cycles completed during the simulation; likewise
          excluded from bit-identity. *)
  latency : (string * Spandex_util.Hist.summary) list;
      (** per-request-class issue-to-reply latency summaries (class name,
          {!Spandex_util.Hist.summary}), from the trace sink's histograms;
          [[]] when tracing is disabled.  Excluded from bit-identity
          comparisons (it is empty exactly when tracing is off). *)
  trace : Spandex_sim.Trace.t;
      (** the run's trace sink, for export or timeline reconstruction;
          {!Spandex_sim.Trace.disabled} when [params.trace] was [None]. *)
  device_names : string array;
      (** endpoint display name by device id, for trace export tracks. *)
}

val simulate :
  ?params:Params.t -> config:Config.t -> Workload.t -> result
(** Raises {!Spandex_sim.Engine.Deadlock} if the system wedges, and
    [Failure] on protocol invariant violations.  Runs are deterministic.
    Each call owns all of its state and resets the domain-local transaction
    counter, so simulations must not be interleaved within one domain, but
    independent calls may run on separate domains in parallel — see
    {!Sweep}. *)

val assert_clean : result -> unit
(** Raises [Failure] describing the first data mismatch, if any. *)
