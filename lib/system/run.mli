(** Build a full system for a configuration and run a workload to
    completion. *)

type result = {
  cycles : int;  (** execution time: cycle at which the system quiesced. *)
  total_flits : int;  (** network traffic in flit-hops. *)
  traffic : (Spandex_proto.Msg.category * int) list;  (** Fig. 2/3 breakdown. *)
  messages : int;
  events : int;  (** engine events processed; basis for events/sec. *)
  checks : int;  (** workload [Check] ops executed. *)
  failures : Spandex_device.Check_log.failure list;
      (** data-value mismatches — any entry is a coherence bug. *)
  stats : Spandex_util.Stats.t;  (** merged per-component counters. *)
  minor_words : float;
      (** minor-heap words allocated over the whole simulation (build +
          run), from [Gc.quick_stat]; divide by [events] for a per-event
          allocation figure.  Excluded from bit-identity comparisons. *)
  major_collections : int;
      (** major GC cycles completed during the simulation; likewise
          excluded from bit-identity. *)
  latency : (string * Spandex_util.Hist.summary) list;
      (** per-request-class issue-to-reply latency summaries (class name,
          {!Spandex_util.Hist.summary}), from the trace sink's histograms;
          [[]] when tracing is disabled.  Excluded from bit-identity
          comparisons (it is empty exactly when tracing is off). *)
  trace : Spandex_sim.Trace.t;
      (** the run's trace sink, for export or timeline reconstruction;
          {!Spandex_sim.Trace.disabled} when [params.trace] was [None]. *)
  device_names : string array;
      (** endpoint display name by device id, for trace export tracks. *)
  shards : int;
      (** effective PDES shard count actually used (1 for the sequential
          backends; a requested count is capped by the partition — see
          [Pdes] — so this can be lower than [--shards]). *)
  shard_events : int array;
      (** engine events processed per shard, in shard order; sums to
          [events].  [[| events |]] for sequential backends. *)
  metrics : Spandex_obs.Metrics.t;
      (** the run's merged time-series registry (per-shard registries
          combined deterministically); {!Spandex_obs.Metrics.disabled}
          when [params.metrics] was [None].  Sampling shares the engine's
          inline sampler with the trace sink, so results are bit-identical
          with metrics on or off. *)
  shard_profile : Spandex_sim.Pdes.shard_profile array option;
      (** per-shard PDES profile (events, wall split, stalls, GC) in shard
          order; [None] for sequential backends.  Wall times come from a
          real clock and are excluded from bit-identity — simulated
          results are unaffected by profiling. *)
  partition : (string * int) array;
      (** component -> shard placement table (device display name, owning
          shard), in device-id order, covering the devices this workload
          instantiated; all zeros for sequential backends.  Excluded from
          bit-identity comparisons. *)
  cap_reason : string option;
      (** why the effective shard count is below the requested one
          (barrier workload, or bank/component count); [None] when the
          request was honoured. *)
  dram_channel_peaks : int array;
      (** peak DRAM service-queue depth per channel (one channel per home
          bank), in bank order. *)
}

type view = {
  view_id : int;  (** network device id of the L1. *)
  view_name : string;  (** display name, matches [device_names]. *)
  view_owned : line:int -> Spandex_util.Mask.t;
      (** words of [line] this L1 currently claims ownership of (MESI E/M
          counts as the full line; GPU-coh L1s never own). *)
  view_peek : Spandex_proto.Addr.t -> int option;
      (** locally cached value of a word, if the L1 holds a valid copy. *)
}
(** Read-only ownership/data view of one L1, for invariant oracles. *)

type llc_view = {
  lv_owner_of : Spandex_proto.Addr.t -> Spandex_proto.Msg.device_id option;
  lv_owned_mask : line:int -> Spandex_util.Mask.t;
  lv_peek : Spandex_proto.Addr.t -> int option;
}
(** Read-only registration view of the flat Spandex LLC. *)

type system = {
  sys_engine : Spandex_sim.Engine.t;
  sys_net : Spandex_net.Network.t;
  sys_check_logs : Spandex_device.Check_log.t list;
      (** one log per core, in core order; totals sum and failures
          concatenate. *)
  sys_device_names : string array;
  sys_finished : unit -> bool;
      (** all cores done, all components quiescent, nothing in flight. *)
  sys_pending : unit -> string;  (** human description of live work. *)
  sys_fingerprint : unit -> string;
      (** canonical digest of all architectural state (cache lines, MSHRs,
          store buffers, directory/LLC registration, core pcs, barriers,
          in-flight count).  Transaction ids are remapped in first-encounter
          order, so executions reaching the same state through different
          schedules digest identically.  Simulation time is excluded. *)
  sys_views : view list;  (** one per L1, in device-id order. *)
  sys_llc : llc_view option;  (** flat-LLC configs only. *)
  sys_run : unit -> result;
      (** install the watchdog (if configured) and run to completion; call
          at most once. *)
}
(** A fully built, not-yet-run system.  The model checker uses this to
    drive the engine step-by-step under its own delivery schedule instead
    of calling [sys_run]. *)

val build : ?params:Params.t -> config:Config.t -> Workload.t -> system
(** Construct the whole system — engine, network, caches, cores — and
    start the cores, but process no events.  Resets the domain-local
    transaction counter (same discipline as {!simulate}). *)

val simulate :
  ?params:Params.t -> config:Config.t -> Workload.t -> result
(** Raises {!Spandex_sim.Engine.Deadlock} if the system wedges, and
    [Failure] on protocol invariant violations.  Runs are deterministic.
    Each call owns all of its state and resets the domain-local transaction
    counter, so simulations must not be interleaved within one domain, but
    independent calls may run on separate domains in parallel — see
    {!Sweep}. *)

val assert_clean : result -> unit
(** Raises [Failure] describing the first data mismatch, if any. *)
