(* Where a group of components lands in the PDES partition. *)
type placement =
  | Spread  (* round-robin the group's units across the shards. *)
  | Pin of int  (* every unit on one shard (index modulo the shard count). *)

(* How [Run] maps components to PDES shards.  The unit of placement is a
   self-contained component: one core (with its L1), one home bank (an LLC
   or directory bank plus its DRAM channel), or — hierarchical configs —
   the whole GPU-L2 complex (L2 banks + the MESI client backside, which
   share MSHR and recall state and therefore cannot split). *)
type partition = {
  home_banks : placement;
  gpu_complex : placement;
      (* a single unit; [Spread] means "place it in the round-robin
         sequence after the home banks" rather than splitting it. *)
  cores : placement;
      (* barrier workloads override this to one shard: barrier wakes are
         1-cycle events, far below the network lookahead. *)
}

type t = {
  cpu_cores : int;
  gpu_cus : int;
  warps_per_cu : int;
  cpu_clock : int;
  gpu_clock : int;
  l1_bytes : int;
  l1_ways : int;
  gpu_l2_bytes : int;
  gpu_l2_ways : int;
  llc_bytes : int;
  llc_ways : int;
  llc_banks : int;
  mshrs : int;
  sb_capacity : int;
  hit_latency : int;
  flat_net_latency : int;
  local_net_latency : int;
  cross_net_latency : int;
  llc_access : int;
  l2_access : int;
  mem_latency : int;
  mem_interval : int;
  coalesce_window : int;
  max_reqv_retries : int;
  reqs_policy : Spandex.Llc.reqs_policy;
  (* Fault-injection plan for the interconnect; [None] runs the reliable
     network and is bit-identical to the pre-fault model. *)
  fault : Spandex_net.Fault.spec option;
  (* Raise [Engine.Livelock] when no core retires an op for this many
     cycles; 0 disables the watchdog. *)
  watchdog_cycles : int;
  (* Event-queue implementation; [Heap_backend] is the pre-wheel reference
     scheduler used by bit-identity tests. *)
  engine_backend : Spandex_sim.Engine.backend;
  (* Component-to-shard placement for the PDES backend; ignored by the
     sequential backends. *)
  pdes_partition : partition;
  (* Transaction-trace sink configuration; [None] (the default) runs with
     the shared disabled sink and is bit-identical to an untraced build. *)
  trace : Spandex_sim.Trace.spec option;
  (* Time-series metrics registry configuration; [None] (the default)
     registers no probes and is bit-identical to a metrics-off build. *)
  metrics : Spandex_obs.Metrics.spec option;
}

(* Table VI: 8 CPU cores @2GHz, 16 CUs @700MHz, 32KB 8-way L1s, 4MB GPU L2,
   8MB LLC, 128-entry store buffers and L1 MSHRs; L2 hits 21-66 cycles, L3
   hits 58-99, memory ~200-500 (we use the optimistic end — the shape of
   the comparison, not absolute time, is the target). *)
let default =
  {
    cpu_cores = 8;
    gpu_cus = 16;
    warps_per_cu = 4;
    cpu_clock = 1;
    gpu_clock = 3;
    l1_bytes = 32 * 1024;
    l1_ways = 8;
    gpu_l2_bytes = 512 * 1024;
    gpu_l2_ways = 16;
    llc_bytes = 2 * 1024 * 1024;
    llc_ways = 16;
    llc_banks = 8;
    mshrs = 64;
    sb_capacity = 128;
    hit_latency = 1;
    flat_net_latency = 8;
    local_net_latency = 8;
    cross_net_latency = 16;
    llc_access = 12;
    l2_access = 8;
    mem_latency = 160;
    mem_interval = 2;
    coalesce_window = 6;
    max_reqv_retries = 1;
    reqs_policy = Spandex.Llc.Reqs_auto;
    fault = None;
    watchdog_cycles = 200_000;
    engine_backend = Spandex_sim.Engine.Wheel_backend;
    pdes_partition =
      { home_banks = Spread; gpu_complex = Spread; cores = Spread };
    trace = None;
    metrics = None;
  }

let small =
  {
    default with
    cpu_cores = 2;
    gpu_cus = 2;
    warps_per_cu = 2;
    l1_bytes = 1024;
    l1_ways = 2;
    gpu_l2_bytes = 2048;
    gpu_l2_ways = 2;
    llc_bytes = 4096;
    llc_ways = 2;
    llc_banks = 2;
    mshrs = 8;
    sb_capacity = 4;
    flat_net_latency = 3;
    local_net_latency = 2;
    cross_net_latency = 5;
    llc_access = 2;
    l2_access = 1;
    mem_latency = 20;
    mem_interval = 1;
    coalesce_window = 2;
  }

(* Workloads are scaled ~8-16x below the paper's inputs to keep simulation
   tractable, so the caches scale with them: what must fit in an L1 (ReuseO
   tiles, the ReuseS matrix, RSCT windows) still fits, and what must
   overflow it (Indirection matrices, streaming inputs) still overflows. *)
let bench =
  {
    default with
    l1_bytes = 4 * 1024;
    gpu_l2_bytes = 128 * 1024;
    llc_bytes = 512 * 1024;
  }

let pp fmt p =
  Format.fprintf fmt
    "CPU cores %d @1x | GPU CUs %d x %d warps @%dx | L1 %dKB/%d-way | GPU L2 \
     %dKB | LLC %dKB x %d banks | mem %d cyc"
    p.cpu_cores p.gpu_cus p.warps_per_cu p.gpu_clock (p.l1_bytes / 1024)
    p.l1_ways
    (p.gpu_l2_bytes / 1024)
    (p.llc_bytes / 1024)
    p.llc_banks p.mem_latency
