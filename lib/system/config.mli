(** The six simulated cache configurations (paper Table V). *)

type llc_kind =
  | H_mesi  (** hierarchical: MESI directory LLC + intermediate GPU L2. *)
  | Spandex_flat  (** flat Spandex LLC directly interfacing all L1s. *)

type cpu_proto = Cpu_mesi | Cpu_denovo
type gpu_proto =
  | Gpu_coh
  | Gpu_denovo
  | Gpu_adaptive
      (** extension: DeNovo with a per-line reuse predictor choosing
          between ownership and write-through per store (paper V's
          dynamically-adapting future caches). *)
  | Gpu_adaptive_rw
      (** extension: [Gpu_adaptive] plus read-side adaptation — repeated
          ReqV misses to a line promote the next read to ReqO+data so the
          fill survives later acquires. *)

type t = {
  name : string;
  llc : llc_kind;
  cpu : cpu_proto;
  gpu : gpu_proto;
  cpu_atomics_at_llc : bool;
      (** SDG performs CPU atomics at the L2 via ReqWT+data rather than
          obtaining ownership, matching the GPU strategy to avoid blocking
          from inter-device synchronization (§IV-A). *)
}

val hmg : t
val hmd : t
val smg : t
val smd : t
val sdg : t
val sdd : t

val sda : t
(** Extension configuration: flat Spandex, DeNovo CPUs, adaptive-write
    DeNovo GPUs.  Not part of [all] (the paper's Table V). *)

val saa : t
(** Extension configuration: SDA plus read-side adaptation (ReqV misses
    promoted to ReqO+data after repeated misses to the same line). *)

val all : t list
(** In the paper's order: HMG, HMD, SMG, SMD, SDG, SDD. *)

val extended : t list
(** [all] plus the adaptive extension configurations (SDA, SAA) — the set
    swept by the benchmark harness and CLI. *)

val by_name : string -> t
(** Case-insensitive lookup; raises [Not_found]. *)

val describe : t -> string
