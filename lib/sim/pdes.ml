module Msg = Spandex_proto.Msg
module Spsc = Spandex_util.Spsc

type delivery = {
  d_time : int;
  d_t0 : int;
  d_tie : int;
  d_msg : Msg.t;
  d_ep : Engine.endpoint;
}

(* Coordinator decisions, broadcast through [decision]: a non-negative
   value is the next horizon; the two negatives end the run. *)
let d_done = -1
let d_raise = -2

(* Per-shard profiling state, written only by the owning shard's domain
   during the run and read by the caller afterwards.  Wall-clock phase
   split is collected only when a [clock] was injected at [create]
   (lib/sim has no Unix dependency; the system layer passes
   [Unix.gettimeofday]); the integer counters are always collected —
   they cost a handful of adds per round.  None of this touches
   simulated time, so a profiled run stays bit-identical. *)
type prof = {
  mutable p_events : int;
  mutable p_rounds : int;
  mutable p_busy_rounds : int;  (* rounds that dispatched >= 1 event. *)
  mutable p_exec_s : float;
  mutable p_barrier_s : float;
  mutable p_drain_s : float;
  mutable p_full_stalls : int;  (* pushes that found the link full. *)
  mutable p_max_link_depth : int;  (* deepest outbound link, post-push. *)
  mutable p_minor_words : float;
  mutable p_major_collections : int;
  mutable p_max_round_events : int;
  (* Per-round event counts, downsampled into at most [round_cap]
     buckets: bucket [i] sums [p_stride] consecutive rounds.  When the
     buckets fill, adjacent pairs merge and the stride doubles, so the
     time-resolved load curve survives arbitrarily long runs in bounded
     space. *)
  p_buckets : int array;
  mutable p_n_buckets : int;
  mutable p_stride : int;
  mutable p_cur : int;  (* partial sum of the bucket being filled. *)
  mutable p_cur_rounds : int;
}

let round_cap = 512

let make_prof () =
  {
    p_events = 0;
    p_rounds = 0;
    p_busy_rounds = 0;
    p_exec_s = 0.;
    p_barrier_s = 0.;
    p_drain_s = 0.;
    p_full_stalls = 0;
    p_max_link_depth = 0;
    p_minor_words = 0.;
    p_major_collections = 0;
    p_max_round_events = 0;
    p_buckets = Array.make round_cap 0;
    p_n_buckets = 0;
    p_stride = 1;
    p_cur = 0;
    p_cur_rounds = 0;
  }

let prof_record_round p ev =
  p.p_rounds <- p.p_rounds + 1;
  p.p_events <- p.p_events + ev;
  if ev > 0 then p.p_busy_rounds <- p.p_busy_rounds + 1;
  if ev > p.p_max_round_events then p.p_max_round_events <- ev;
  p.p_cur <- p.p_cur + ev;
  p.p_cur_rounds <- p.p_cur_rounds + 1;
  if p.p_cur_rounds = p.p_stride then begin
    if p.p_n_buckets = round_cap then begin
      (* Fold adjacent pairs in place; the stride doubles. *)
      for i = 0 to (round_cap / 2) - 1 do
        p.p_buckets.(i) <- p.p_buckets.(2 * i) + p.p_buckets.((2 * i) + 1)
      done;
      p.p_n_buckets <- round_cap / 2;
      p.p_stride <- 2 * p.p_stride;
      (* The partial bucket may now be mid-stride; keep accumulating. *)
      if p.p_cur_rounds < p.p_stride then ()
      else begin
        p.p_buckets.(p.p_n_buckets) <- p.p_cur;
        p.p_n_buckets <- p.p_n_buckets + 1;
        p.p_cur <- 0;
        p.p_cur_rounds <- 0
      end
    end
    else begin
      p.p_buckets.(p.p_n_buckets) <- p.p_cur;
      p.p_n_buckets <- p.p_n_buckets + 1;
      p.p_cur <- 0;
      p.p_cur_rounds <- 0
    end
  end

type shard_profile = {
  sp_events : int;
  sp_rounds : int;
  sp_busy_rounds : int;
  sp_exec_s : float;
  sp_barrier_s : float;
  sp_drain_s : float;
  sp_full_stalls : int;
  sp_max_link_depth : int;
  sp_minor_words : float;
  sp_major_collections : int;
  sp_max_round_events : int;
  sp_round_events : int array;
  sp_round_stride : int;
}

let snapshot_prof p =
  let buckets =
    if p.p_cur_rounds > 0 then begin
      let a = Array.make (p.p_n_buckets + 1) 0 in
      Array.blit p.p_buckets 0 a 0 p.p_n_buckets;
      a.(p.p_n_buckets) <- p.p_cur;
      a
    end
    else Array.sub p.p_buckets 0 p.p_n_buckets
  in
  {
    sp_events = p.p_events;
    sp_rounds = p.p_rounds;
    sp_busy_rounds = p.p_busy_rounds;
    sp_exec_s = p.p_exec_s;
    sp_barrier_s = p.p_barrier_s;
    sp_drain_s = p.p_drain_s;
    sp_full_stalls = p.p_full_stalls;
    sp_max_link_depth = p.p_max_link_depth;
    sp_minor_words = p.p_minor_words;
    sp_major_collections = p.p_major_collections;
    sp_max_round_events = p.p_max_round_events;
    sp_round_events = buckets;
    sp_round_stride = p.p_stride;
  }

type t = {
  engines : Engine.t array;
  lookahead : int;
  links : delivery Spsc.t array array;  (* [links.(src).(dst)]. *)
  (* Central blocking barrier (generation-counted, Mutex + Condition).
     A spin barrier would be faster on a dedicated core per shard, but
     shards routinely outnumber cores (CI containers have one), and a
     spinner never yields to the OS scheduler — every round would then
     cost scheduler quanta instead of microseconds.  Blocking waiters
     also re-run [on_wait] on every wakeup, so a producer blocked on a
     full link can [kick] the barrier to get its consumer to drain. *)
  bar_mutex : Mutex.t;
  bar_cond : Condition.t;
  mutable bar_arrived : int;
  mutable bar_gen : int;
  next_times : int Atomic.t array;  (* earliest pending event, or max_int. *)
  decision : int Atomic.t;
  aborted : bool Atomic.t;
  mutable failure : exn option;
  fail_lock : Mutex.t;
  clock : (unit -> float) option;  (* wall clock for the phase split. *)
  prof : prof array;  (* [prof.(s)] written only by shard [s]'s domain. *)
}

let create ?(link_capacity = 1024) ?clock ~lookahead engines =
  let n = Array.length engines in
  if n < 1 then invalid_arg "Pdes.create: need at least one shard";
  if lookahead < 1 then invalid_arg "Pdes.create: lookahead must be >= 1";
  Array.iter (fun e -> Engine.set_lookahead e lookahead) engines;
  let dummy_ep =
    { Engine.handler = (fun _ -> ()); ingress_free = 0; in_flight = ref 0 }
  in
  let dummy =
    { d_time = 0; d_t0 = 0; d_tie = 0; d_msg = Msg.dummy; d_ep = dummy_ep }
  in
  {
    engines;
    lookahead;
    links =
      Array.init n (fun _ ->
          Array.init n (fun _ -> Spsc.create ~capacity:link_capacity ~dummy));
    bar_mutex = Mutex.create ();
    bar_cond = Condition.create ();
    bar_arrived = 0;
    bar_gen = 0;
    next_times = Array.init n (fun _ -> Atomic.make max_int);
    decision = Atomic.make 0;
    aborted = Atomic.make false;
    failure = None;
    fail_lock = Mutex.create ();
    clock;
    prof = Array.init n (fun _ -> make_prof ());
  }

let record_failure t exn =
  Mutex.lock t.fail_lock;
  if t.failure = None then t.failure <- Some exn;
  Mutex.unlock t.fail_lock;
  Atomic.set t.aborted true

(* Inject every delivery queued on shard [s]'s inbound links.  Arrivals
   are at or beyond the current horizon, so injecting them is safe at any
   point of [s]'s round — mid-window (while blocked on a full outbound
   link), while waiting at a barrier, or in the drain phase. *)
let drain t s =
  let n = Array.length t.engines in
  let eng = t.engines.(s) in
  for src = 0 to n - 1 do
    if src <> s then begin
      let ch = t.links.(src).(s) in
      let rec go () =
        match Spsc.pop ch with
        | Some d ->
          Engine.inject eng ~time:d.d_time ~t0:d.d_t0 ~tie:d.d_tie d.d_msg
            d.d_ep;
          go ()
        | None -> ()
      in
      go ()
    end
  done

(* Wake every shard parked at the barrier without arriving at it.  A
   producer blocked on a full link uses this: its consumer is either
   mid-window (draining happens when it blocks on a full link of its
   own, or at window end) or parked at the post-window barrier — a kick
   makes parked shards run their [on_wait] (drain) and re-check. *)
let kick t =
  Mutex.lock t.bar_mutex;
  Condition.broadcast t.bar_cond;
  Mutex.unlock t.bar_mutex

let push t ~src_shard ~dst_shard ~time ~t0 ~tie msg ep =
  let d = { d_time = time; d_t0 = t0; d_tie = tie; d_msg = msg; d_ep = ep } in
  let ch = t.links.(src_shard).(dst_shard) in
  let p = t.prof.(src_shard) in
  if not (Spsc.try_push ch d) then begin
    (* Back-pressure: count the stall once per message, then spin.  Free
       our own inbound links so two shards saturating each other cannot
       deadlock, and kick barrier waiters so the consumer drains even if
       it already finished its window. *)
    p.p_full_stalls <- p.p_full_stalls + 1;
    let rec spin () =
      drain t src_shard;
      kick t;
      Domain.cpu_relax ();
      if not (Spsc.try_push ch d) then spin ()
    in
    spin ()
  end;
  let depth = Spsc.length ch in
  if depth > p.p_max_link_depth then p.p_max_link_depth <- depth

(* One barrier arrival for the calling shard.  Generation-counted: the
   last arriver bumps the generation and releases everyone.  Waiters run
   [on_wait] (outside the lock) on every wakeup, so the post-window
   barrier keeps draining inbound links while parked — producers blocked
   on a full link always find their consumer making progress. *)
let barrier t ~on_wait =
  Mutex.lock t.bar_mutex;
  let gen = t.bar_gen in
  t.bar_arrived <- t.bar_arrived + 1;
  if t.bar_arrived = Array.length t.engines then begin
    t.bar_arrived <- 0;
    t.bar_gen <- gen + 1;
    Condition.broadcast t.bar_cond;
    Mutex.unlock t.bar_mutex
  end
  else begin
    while t.bar_gen = gen do
      Condition.wait t.bar_cond t.bar_mutex;
      if t.bar_gen = gen then begin
        Mutex.unlock t.bar_mutex;
        on_wait ();
        Mutex.lock t.bar_mutex
      end
    done;
    Mutex.unlock t.bar_mutex
  end

let decide t ~until_done ~pending_desc =
  if Atomic.get t.aborted then d_raise
  else begin
    let n = Array.length t.engines in
    let gnext = ref max_int in
    for i = 0 to n - 1 do
      gnext := min !gnext (Atomic.get t.next_times.(i))
    done;
    let gnext = !gnext in
    (* Mirror the sequential [Engine.run] loop exactly: completion is
       evaluated once per occupied lookahead window, before dispatching
       it; the watchdog beats on the same boundary. *)
    if until_done () then d_done
    else if gnext = max_int then begin
      record_failure t (Engine.Deadlock (pending_desc ()));
      d_raise
    end
    else begin
      let b = t.lookahead * (gnext / t.lookahead) in
      match Engine.watchdog_check t.engines.(0) ~boundary:b with
      | () -> b + t.lookahead
      | exception exn ->
        record_failure t exn;
        d_raise
    end
  end

let worker t ~until_done ~pending_desc s =
  let eng = t.engines.(s) in
  let p = t.prof.(s) in
  let now = match t.clock with Some c -> c | None -> fun () -> 0. in
  let gc0 = Gc.quick_stat () in
  let continue = ref true in
  while !continue do
    Atomic.set t.next_times.(s)
      (match Engine.next_event_time eng with
      | Some u -> u
      | None -> max_int);
    (* A: every shard has published its earliest event time. *)
    let w0 = now () in
    barrier t ~on_wait:(fun () -> ());
    let w1 = now () in
    if s = 0 then Atomic.set t.decision (decide t ~until_done ~pending_desc);
    let w2 = now () in
    (* B: the decision is visible. *)
    barrier t ~on_wait:(fun () -> ());
    let w3 = now () in
    p.p_barrier_s <- p.p_barrier_s +. (w1 -. w0) +. (w3 -. w2);
    let d = Atomic.get t.decision in
    if d < 0 then continue := false
    else begin
      let e0 = Engine.events_processed eng in
      (try Engine.run_window eng ~stop:d
       with exn -> record_failure t exn);
      let w4 = now () in
      p.p_exec_s <- p.p_exec_s +. (w4 -. w3);
      prof_record_round p (Engine.events_processed eng - e0);
      (* C: every shard has finished the window, so the inbound links are
         stable; drain them before publishing next times. *)
      barrier t ~on_wait:(fun () -> drain t s);
      let w5 = now () in
      p.p_barrier_s <- p.p_barrier_s +. (w5 -. w4);
      (try drain t s with exn -> record_failure t exn);
      let w6 = now () in
      p.p_drain_s <- p.p_drain_s +. (w6 -. w5)
    end
  done;
  let gc1 = Gc.quick_stat () in
  p.p_minor_words <- gc1.Gc.minor_words -. gc0.Gc.minor_words;
  p.p_major_collections <-
    gc1.Gc.major_collections - gc0.Gc.major_collections

let run t ~until_done ~pending_desc =
  let n = Array.length t.engines in
  let domains =
    Array.init (n - 1) (fun i ->
        Domain.spawn (fun () -> worker t ~until_done ~pending_desc (i + 1)))
  in
  worker t ~until_done ~pending_desc 0;
  Array.iter Domain.join domains;
  (match t.failure with Some exn -> raise exn | None -> ());
  Array.fold_left (fun acc e -> max acc (Engine.now e)) 0 t.engines

let shard_events t = Array.map Engine.events_processed t.engines
let profile t = Array.map snapshot_prof t.prof
let lookahead t = t.lookahead
