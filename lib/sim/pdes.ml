module Msg = Spandex_proto.Msg
module Spsc = Spandex_util.Spsc

type delivery = {
  d_time : int;
  d_t0 : int;
  d_tie : int;
  d_msg : Msg.t;
  d_ep : Engine.endpoint;
}

(* Coordinator decisions, broadcast through [decision]: a non-negative
   value is the next horizon; the two negatives end the run. *)
let d_done = -1
let d_raise = -2

type t = {
  engines : Engine.t array;
  lookahead : int;
  links : delivery Spsc.t array array;  (* [links.(src).(dst)]. *)
  (* Central blocking barrier (generation-counted, Mutex + Condition).
     A spin barrier would be faster on a dedicated core per shard, but
     shards routinely outnumber cores (CI containers have one), and a
     spinner never yields to the OS scheduler — every round would then
     cost scheduler quanta instead of microseconds.  Blocking waiters
     also re-run [on_wait] on every wakeup, so a producer blocked on a
     full link can [kick] the barrier to get its consumer to drain. *)
  bar_mutex : Mutex.t;
  bar_cond : Condition.t;
  mutable bar_arrived : int;
  mutable bar_gen : int;
  next_times : int Atomic.t array;  (* earliest pending event, or max_int. *)
  decision : int Atomic.t;
  aborted : bool Atomic.t;
  mutable failure : exn option;
  fail_lock : Mutex.t;
}

let create ?(link_capacity = 1024) ~lookahead engines =
  let n = Array.length engines in
  if n < 1 then invalid_arg "Pdes.create: need at least one shard";
  if lookahead < 1 then invalid_arg "Pdes.create: lookahead must be >= 1";
  Array.iter (fun e -> Engine.set_lookahead e lookahead) engines;
  let dummy_ep =
    { Engine.handler = (fun _ -> ()); ingress_free = 0; in_flight = ref 0 }
  in
  let dummy =
    { d_time = 0; d_t0 = 0; d_tie = 0; d_msg = Msg.dummy; d_ep = dummy_ep }
  in
  {
    engines;
    lookahead;
    links =
      Array.init n (fun _ ->
          Array.init n (fun _ -> Spsc.create ~capacity:link_capacity ~dummy));
    bar_mutex = Mutex.create ();
    bar_cond = Condition.create ();
    bar_arrived = 0;
    bar_gen = 0;
    next_times = Array.init n (fun _ -> Atomic.make max_int);
    decision = Atomic.make 0;
    aborted = Atomic.make false;
    failure = None;
    fail_lock = Mutex.create ();
  }

let record_failure t exn =
  Mutex.lock t.fail_lock;
  if t.failure = None then t.failure <- Some exn;
  Mutex.unlock t.fail_lock;
  Atomic.set t.aborted true

(* Inject every delivery queued on shard [s]'s inbound links.  Arrivals
   are at or beyond the current horizon, so injecting them is safe at any
   point of [s]'s round — mid-window (while blocked on a full outbound
   link), while waiting at a barrier, or in the drain phase. *)
let drain t s =
  let n = Array.length t.engines in
  let eng = t.engines.(s) in
  for src = 0 to n - 1 do
    if src <> s then begin
      let ch = t.links.(src).(s) in
      let rec go () =
        match Spsc.pop ch with
        | Some d ->
          Engine.inject eng ~time:d.d_time ~t0:d.d_t0 ~tie:d.d_tie d.d_msg
            d.d_ep;
          go ()
        | None -> ()
      in
      go ()
    end
  done

(* Wake every shard parked at the barrier without arriving at it.  A
   producer blocked on a full link uses this: its consumer is either
   mid-window (draining happens when it blocks on a full link of its
   own, or at window end) or parked at the post-window barrier — a kick
   makes parked shards run their [on_wait] (drain) and re-check. *)
let kick t =
  Mutex.lock t.bar_mutex;
  Condition.broadcast t.bar_cond;
  Mutex.unlock t.bar_mutex

let push t ~src_shard ~dst_shard ~time ~t0 ~tie msg ep =
  let d = { d_time = time; d_t0 = t0; d_tie = tie; d_msg = msg; d_ep = ep } in
  let ch = t.links.(src_shard).(dst_shard) in
  while not (Spsc.try_push ch d) do
    (* Free our own inbound links so two shards saturating each other
       cannot deadlock, and kick barrier waiters so the consumer drains
       even if it already finished its window. *)
    drain t src_shard;
    kick t;
    Domain.cpu_relax ()
  done

(* One barrier arrival for the calling shard.  Generation-counted: the
   last arriver bumps the generation and releases everyone.  Waiters run
   [on_wait] (outside the lock) on every wakeup, so the post-window
   barrier keeps draining inbound links while parked — producers blocked
   on a full link always find their consumer making progress. *)
let barrier t ~on_wait =
  Mutex.lock t.bar_mutex;
  let gen = t.bar_gen in
  t.bar_arrived <- t.bar_arrived + 1;
  if t.bar_arrived = Array.length t.engines then begin
    t.bar_arrived <- 0;
    t.bar_gen <- gen + 1;
    Condition.broadcast t.bar_cond;
    Mutex.unlock t.bar_mutex
  end
  else begin
    while t.bar_gen = gen do
      Condition.wait t.bar_cond t.bar_mutex;
      if t.bar_gen = gen then begin
        Mutex.unlock t.bar_mutex;
        on_wait ();
        Mutex.lock t.bar_mutex
      end
    done;
    Mutex.unlock t.bar_mutex
  end

let decide t ~until_done ~pending_desc =
  if Atomic.get t.aborted then d_raise
  else begin
    let n = Array.length t.engines in
    let gnext = ref max_int in
    for i = 0 to n - 1 do
      gnext := min !gnext (Atomic.get t.next_times.(i))
    done;
    let gnext = !gnext in
    (* Mirror the sequential [Engine.run] loop exactly: completion is
       evaluated once per occupied lookahead window, before dispatching
       it; the watchdog beats on the same boundary. *)
    if until_done () then d_done
    else if gnext = max_int then begin
      record_failure t (Engine.Deadlock (pending_desc ()));
      d_raise
    end
    else begin
      let b = t.lookahead * (gnext / t.lookahead) in
      match Engine.watchdog_check t.engines.(0) ~boundary:b with
      | () -> b + t.lookahead
      | exception exn ->
        record_failure t exn;
        d_raise
    end
  end

let worker t ~until_done ~pending_desc s =
  let eng = t.engines.(s) in
  let continue = ref true in
  while !continue do
    Atomic.set t.next_times.(s)
      (match Engine.next_event_time eng with
      | Some u -> u
      | None -> max_int);
    (* A: every shard has published its earliest event time. *)
    barrier t ~on_wait:(fun () -> ());
    if s = 0 then Atomic.set t.decision (decide t ~until_done ~pending_desc);
    (* B: the decision is visible. *)
    barrier t ~on_wait:(fun () -> ());
    let d = Atomic.get t.decision in
    if d < 0 then continue := false
    else begin
      (try Engine.run_window eng ~stop:d
       with exn -> record_failure t exn);
      (* C: every shard has finished the window, so the inbound links are
         stable; drain them before publishing next times. *)
      barrier t ~on_wait:(fun () -> drain t s);
      try drain t s with exn -> record_failure t exn
    end
  done

let run t ~until_done ~pending_desc =
  let n = Array.length t.engines in
  let domains =
    Array.init (n - 1) (fun i ->
        Domain.spawn (fun () -> worker t ~until_done ~pending_desc (i + 1)))
  in
  worker t ~until_done ~pending_desc 0;
  Array.iter Domain.join domains;
  (match t.failure with Some exn -> raise exn | None -> ());
  Array.fold_left (fun acc e -> max acc (Engine.now e)) 0 t.engines

let shard_events t = Array.map Engine.events_processed t.engines
