(** Conservative parallel discrete-event simulation: the round executor
    behind [Engine.Pdes_backend].

    The simulated machine is partitioned into shards, each with its own
    {!Engine} (timing wheel + delivery heap + clock) running on a
    dedicated domain.  The only inter-shard interaction is a network
    message, and every network link has latency at least the topology's
    [min_latency] — the lookahead [L].  That gives the conservative
    invariant: an event executing in the window [b, b+L) can only
    produce cross-shard arrivals at time ≥ b+L, i.e. in a later window.
    So the run proceeds in global rounds:

    + every shard publishes the time of its earliest pending event;
    + the coordinator (shard 0) takes the global minimum [gnext],
      evaluates the completion predicate and the watchdog exactly as a
      sequential run would at that boundary, and announces the next
      horizon [H = L*(gnext/L) + L];
    + every shard dispatches all its events with time < H, sending
      cross-shard messages — stamped with the same canonical delivery
      key a sequential run would assign — over bounded SPSC links
      ({!Spandex_util.Spsc});
    + shards drain their inbound links (injecting arrivals, all ≥ H)
      and the next round begins.

    This is the degenerate null-message scheme for a fully connected
    topology with uniform lookahead: the per-neighbor horizon messages
    collapse into one barrier-synchronized global horizon.  Because the
    engine's delivery keys are a pure function of the simulated machine
    (arrival time, send time, source, per-source sequence) and each
    shard's component-event order is the sequential order restricted to
    that shard, a PDES run is bit-identical to the sequential wheel
    backend — same events, stats, traces, and finish cycle.

    A shard blocked pushing into a full link drains its own inbound
    links while spinning, so two shards saturating each other's links
    cannot deadlock.  Any exception on any shard (deadlock, livelock,
    protocol failure) aborts the round protocol on every shard and is
    re-raised on the caller's domain. *)

type t

type delivery = {
  d_time : int;  (** absolute arrival cycle at the destination. *)
  d_t0 : int;  (** send cycle (second key of the canonical merge). *)
  d_tie : int;  (** (src, per-source seq) from [Engine.cross_tie]. *)
  d_msg : Spandex_proto.Msg.t;
  d_ep : Engine.endpoint;  (** destination endpoint, owned by the dest shard. *)
}
(** One cross-shard message in flight on a link. *)

val create :
  ?link_capacity:int ->
  ?clock:(unit -> float) ->
  lookahead:int ->
  Engine.t array ->
  t
(** [create ~lookahead engines] wires an all-pairs mesh of bounded SPSC
    links between the given per-shard engines and sets every engine's
    completion-check grid to [lookahead] (≥ 1).  [engines.(0)] is the
    coordinator shard.  [?clock] (a monotonic-enough wall clock, e.g.
    [Unix.gettimeofday] — this library deliberately has no Unix
    dependency) enables the per-shard execute/barrier/drain wall-time
    split in {!profile}; without it the split reads zero but the event
    and stall counters are still collected.  Profiling never touches
    simulated time, so a profiled run is bit-identical. *)

val push :
  t ->
  src_shard:int ->
  dst_shard:int ->
  time:int ->
  t0:int ->
  tie:int ->
  Spandex_proto.Msg.t ->
  Engine.endpoint ->
  unit
(** Called by the sharded network from [src_shard]'s domain: enqueue a
    stamped cross-shard delivery.  Spins (draining [src_shard]'s own
    inbound links) when the link is full. *)

val run : t -> until_done:(unit -> bool) -> pending_desc:(unit -> string) -> int
(** Run the round protocol to completion: spawns one domain per extra
    shard (shard 0 runs on the calling domain), returns the finish cycle
    — the maximum shard clock, which equals the sequential finish cycle.
    [until_done] and [pending_desc] are evaluated only by shard 0, at
    settled points (round boundaries), so they may read cross-shard
    component state.  Re-raises the first failure ([Engine.Deadlock],
    [Engine.Livelock], assertion…) from any shard. *)

val shard_events : t -> int array
(** Events processed per shard; sums to the sequential event count. *)

type shard_profile = {
  sp_events : int;  (** events dispatched by this shard's windows. *)
  sp_rounds : int;  (** lookahead rounds the shard participated in. *)
  sp_busy_rounds : int;  (** rounds that dispatched at least one event. *)
  sp_exec_s : float;  (** wall seconds inside [Engine.run_window]. *)
  sp_barrier_s : float;  (** wall seconds parked at the three barriers. *)
  sp_drain_s : float;  (** wall seconds injecting inbound link arrivals. *)
  sp_full_stalls : int;
      (** cross-shard pushes that found the SPSC link full (each stall
          spins draining its own inbound links until space appears). *)
  sp_max_link_depth : int;  (** deepest outbound link seen, post-push. *)
  sp_minor_words : float;  (** minor-heap words allocated by this shard's
                               domain over the run ([Gc.quick_stat]). *)
  sp_major_collections : int;
  sp_max_round_events : int;  (** largest single-round event count. *)
  sp_round_events : int array;
      (** time-resolved load curve: bucket [i] sums the events of
          [sp_round_stride] consecutive rounds.  Bounded (≤ 512 buckets)
          by pair-merging with stride doubling, so the curve's shape
          survives arbitrarily long runs. *)
  sp_round_stride : int;  (** rounds per bucket (a power of two). *)
}
(** Immutable post-run snapshot of one shard's profiling counters.  The
    wall-time fields are zero unless [create] was given a [clock]. *)

val profile : t -> shard_profile array
(** Per-shard profiles, in shard order; call after {!run} returns.  The
    barrier-wait time on a waiting shard includes the inbound-link drains
    its [on_wait] callback performs while parked. *)

val lookahead : t -> int
(** The conservative lookahead (round width) this mesh synchronizes on. *)
