(** Typed, ring-buffered transaction trace sink.

    One sink per simulation records span begin/end pairs (one span per
    protocol transaction, keyed by [Txn] id and classified by request
    kind), instant events (retries, faults, nacks, replays), periodic
    counter samples (MSHR / store-buffer / queue occupancy) and every
    network message send.  Completed spans additionally feed per-request-
    class latency histograms ({!Spandex_util.Hist}).

    The disabled path is a single branch on the immutable [enabled] flag:
    every recording function starts with [if t.enabled then ...] and takes
    only unboxed int arguments, so a simulation built with {!disabled}
    allocates nothing and schedules nothing on behalf of tracing — results
    are bit-identical to a pre-trace build.  Events are stored
    struct-of-arrays in a fixed ring; when it wraps, the oldest events are
    dropped (and counted) rather than growing. *)

type spec = {
  capacity : int;
      (** ring capacity in events; rounded up to a power of two. *)
  sample_every : int;  (** cycles between occupancy counter samples. *)
}

val default_spec : spec
(** 65536 events, sample every 64 cycles. *)

type t

val disabled : t
(** The shared off sink: recording is a no-op, [on] is false.  Never
    mutated, so it is safe to share across sweep worker domains. *)

val create : spec -> t

val on : t -> bool
(** Whether this sink records.  Hot paths guard with [if Trace.on tr] so
    the disabled cost is one load + branch. *)

val sample_every : t -> int

(* ----- recording (all no-ops when disabled) ------------------------------- *)

val name : t -> string -> int
(** Intern an instant/counter name at component-creation time.  Returns 0
    on a disabled sink without mutating it. *)

val span_begin : t -> time:int -> dev:int -> txn:int -> cls:int -> line:int -> unit
(** Open the span for [txn] (a request issued by device [dev]); [cls] is
    the {!Spandex_proto.Msg.req_kind_index} of the request class. *)

val span_end : t -> time:int -> dev:int -> txn:int -> unit
(** Close [txn]'s span; records the latency into the class histogram.
    Ignored if no matching {!span_begin} was recorded. *)

val instant : t -> time:int -> dev:int -> name:int -> txn:int -> arg:int -> unit
(** A point event ([name] from {!name}); [txn] is the related transaction
    or [-1]; [arg] is event-specific (e.g. the successor txn id of a
    protocol-level retry). *)

val counter : t -> time:int -> dev:int -> name:int -> value:int -> unit

val msg_send :
  t -> time:int -> src:int -> dst:int -> txn:int -> kind:int -> line:int -> unit
(** One network message injection; [kind] is {!Spandex_proto.Msg.kind_index}. *)

(* ----- inspection ---------------------------------------------------------- *)

val total : t -> int
(** Events ever recorded (including dropped ones). *)

val recorded : t -> int
(** Events still held in the ring. *)

val dropped : t -> int

val num_classes : int
val cls_name : int -> string
(** Request-class display name by {!Spandex_proto.Msg.req_kind_index}. *)

val latency : t -> cls:int -> Spandex_util.Hist.t
(** Per-class issue-to-reply latency histogram.  Raises on {!disabled}. *)

val latency_summaries : t -> (string * Spandex_util.Hist.summary) list
(** (class name, summary) for every class with at least one completed
    span; [[]] on a disabled sink. *)

val open_spans : t -> int
(** Spans begun but not yet ended (in-flight transactions). *)

type event =
  | Span_begin of { time : int; dev : int; txn : int; cls : int; line : int }
  | Span_end of { time : int; dev : int; txn : int; cls : int; latency : int }
  | Instant of { time : int; dev : int; name : string; txn : int; arg : int }
  | Counter of { time : int; dev : int; name : string; value : int }
  | Msg_send of {
      time : int;
      src : int;
      dst : int;
      txn : int;
      kind : int;
      line : int;
    }

val iter : t -> f:(event -> unit) -> unit
(** Decode the ring oldest-to-newest. *)

val kind_name : int -> string
(** Message-kind display name by {!Spandex_proto.Msg.kind_index} (for
    rendering {!event-Msg_send} events). *)

val merge : t list -> t
(** Merge per-shard sinks into one: events are k-way merged by
    (time, shard index) — deterministic, independent of domain
    scheduling — and latency histograms recompute to the sum of the
    inputs.  Disabled sinks are skipped; a single live input is returned
    as-is; no live inputs yield {!disabled}.  The PDES backend records
    into one sink per shard (a sink is single-domain) and merges on
    export. *)

(* ----- export -------------------------------------------------------------- *)

val export_chrome :
  ?extra:(emit:(string -> unit) -> unit) ->
  t ->
  device_name:(int -> string) ->
  Buffer.t ->
  unit
(** Chrome trace-event JSON (Perfetto-loadable): one track per device
    (async "b"/"e" slices per transaction, instants, counters), plus
    thread-name metadata.  [?extra] is called after the trace's own
    events with an [emit] that appends one pre-rendered trace-event JSON
    object to the same array — the metrics registry uses it to merge its
    time series in as counter tracks. *)

val export_jsonl : t -> device_name:(int -> string) -> Buffer.t -> unit
(** One JSON object per line, schema ["spandex-trace/1"]: a header line
    then every event in order. *)
