(** Discrete-event simulation engine.

    A single global event queue ordered by (cycle, insertion order).  All
    simulated components schedule events; the engine advances time to the
    next event.  Determinism: for a fixed seed and workload the event order
    is identical across runs.

    The queue is a hierarchical timing wheel ({!Spandex_util.Wheel}):
    almost every event lands 1–100 cycles ahead, so push/pop are O(1) with
    FIFO order per cycle preserved by construction; far-future events
    (watchdog beats, retry backoff) spill to an overflow heap.  The
    pre-wheel binary-heap scheduler is retained as {!Heap_backend} so
    tests can assert the two produce bit-identical simulations. *)

type t

exception Deadlock of string
(** Raised by [run] when the queue drains while some registered completion
    condition is still unmet — a lost message or a protocol deadlock. *)

type pending_work = {
  pw_device : string;  (** component name, e.g. ["denovo_l1.2"]. *)
  pw_txn : int;  (** transaction id, or [-1] when not transaction-bound. *)
  pw_line : int;  (** line address, or [-1] when unknown. *)
  pw_what : string;  (** short description of the stuck work. *)
}
(** One item of live component work reported by a pending source — an
    MSHR entry, a buffered store, a parked op, a busy LLC line. *)

type stuck = {
  stuck_cycle : int;  (** cycle at which the queue drained. *)
  stuck_work : pending_work list;  (** live work left behind. *)
}

exception Stuck of stuck
(** Raised by [run_all] when the event queue drains while a registered
    pending source still reports live work — a silent deadlock that would
    otherwise return as if the simulation completed. *)

val pp_pending_work : Format.formatter -> pending_work -> unit
val pp_stuck : Format.formatter -> stuck -> unit

val register_pending_source : t -> (unit -> pending_work list) -> unit
(** Register a closure reporting a component's still-live work.
    Components call this once at build time; the engine polls every
    source when the queue drains (and from {!live_work}). *)

val live_work : t -> pending_work list
(** Poll every registered pending source, in registration order. *)

type livelock = {
  cycle : int;  (** cycle at which the watchdog gave up. *)
  stalled_for : int;  (** cycles since the last observed progress. *)
  detail : string;  (** pending work of the stuck components. *)
}

exception Livelock of livelock
(** Raised by the watchdog installed with {!install_watchdog} when the
    event queue keeps churning but no forward progress is observed — e.g. a
    retry storm that never completes.  Complements {!Deadlock}, which only
    fires on an empty queue. *)

val pp_livelock : Format.formatter -> livelock -> unit

type endpoint = {
  mutable handler : Spandex_proto.Msg.t -> unit;
  mutable ingress_free : int;  (** next cycle the ingress port is free. *)
  in_flight : int ref;  (** owning network's in-flight counter. *)
}
(** A network delivery target.  Owned by {!Spandex_net.Network}, which
    keeps them in a dense array indexed by device id; the engine needs the
    representation to process delivery events without closures.

    Events themselves are an implementation detail: mutable tagged records
    (Thunk / Deliver / Handle / Egress / Apply) drawn from a per-engine
    free-list and recycled at dispatch, so the steady-state hot path
    allocates no event cells.  After a Handle dispatch returns, the
    delivered message is returned to its pool unless the handler kept it
    ({!Spandex_proto.Msg.keep}). *)

type backend =
  | Wheel_backend  (** timing wheel + overflow heap (default). *)
  | Heap_backend
      (** the pre-wheel (time, seq) binary heap, kept as a reference
          scheduler for bit-identity tests. *)

val create : ?backend:backend -> ?trace:Trace.t -> unit -> t
(** [trace] (default {!Trace.disabled}) is the simulation's trace sink;
    the engine only carries it so every component can reach the shared
    sink through its engine handle without signature changes. *)

val now : t -> int
(** Current simulation cycle. *)

val trace : t -> Trace.t
(** The trace sink passed to {!create}. *)

val set_sampler : t -> every:int -> (int -> unit) -> unit
(** Install an occupancy sampler: [f time] is invoked from the event
    dispatch loop the first time simulated time reaches each multiple-ish
    of [every] cycles (exactly: at the first event dispatched once [time]
    passes the previous sample time + [every]).  The sampler runs inline —
    it never enqueues events — so installing one does not perturb event
    counts or simulated timing.  The sampler must not schedule events or
    mutate component state. *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at cycle [now t + delay]. [delay >= 0]. *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Schedule at an absolute cycle, which must not be in the past. *)

val deliver : t -> delay:int -> Spandex_proto.Msg.t -> endpoint -> unit
(** Enqueue a closure-free network-delivery event [delay] cycles ahead:
    on dispatch the engine applies the one-message-per-cycle ingress
    drain and re-queues the handler invocation, exactly as the closure
    pair it replaced (two events per delivered message). *)

val set_egress : t -> (Spandex_proto.Msg.t -> unit) -> unit
(** Install the callback {!event-Egress} events dispatch to —
    [Network.create] registers its [send] here so components can enqueue
    outbound messages without allocating a closure per message. *)

val send_later : t -> delay:int -> Spandex_proto.Msg.t -> unit
(** Closure-free form of [schedule t ~delay (fun () -> Network.send net
    msg)]: hands [msg] to the installed egress callback after [delay]
    cycles.  Fails at dispatch if no callback was installed. *)

val apply_later : t -> delay:int -> (int -> unit) -> int -> unit
(** Closure-free form of [schedule t ~delay (fun () -> k v)] for integer
    completion values. *)

val run : t -> until_done:(unit -> bool) -> pending_desc:(unit -> string) -> int
(** Drain events until [until_done ()] is true; returns the finish cycle.
    Raises {!Deadlock} (with [pending_desc ()] in the message) if the queue
    empties first.  A step limit guards against livelock. *)

val run_all : ?strict:bool -> t -> int
(** Drain every queued event and return the final cycle.  For unit tests
    that drive components directly and then inspect the settled state.
    Honors the step limit like [run], raising {!Deadlock} when exceeded.
    Raises {!Stuck} if the queue drains while any registered pending
    source still reports live work (silent deadlock).  Pass
    [~strict:false] to skip the liveness audit — for harnesses that
    deliberately pause a protocol mid-transaction to inspect
    intermediate state. *)

val next_event_time : t -> int option
(** Cycle of the earliest queued event, or [None] when the queue is
    empty.  Does not advance time. *)

val step : t -> bool
(** Dispatch exactly one event (advancing time to it); [false] when the
    queue is empty.  The model checker's execution driver — interleave
    with delivery choices between steps. *)

val install_watchdog :
  t ->
  interval:int ->
  progress:(unit -> int) ->
  active:(unit -> bool) ->
  describe:(unit -> string) ->
  unit
(** Install a periodic heartbeat (every [interval / 4] cycles) that raises
    {!Livelock} when [progress ()] — any monotone counter of forward
    progress, e.g. retired ops — has not changed for [interval] cycles
    while [active ()] still holds.  The heartbeat stops rescheduling once
    [active ()] is false; it never affects simulated timing otherwise. *)

val set_step_limit : t -> int -> unit
(** Override the default step limit (events processed) of [run]. *)

val events_processed : t -> int
