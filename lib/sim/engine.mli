(** Discrete-event simulation engine.

    Component events (callbacks, ingress grants, egress hand-offs,
    completion continuations) live in a scheduler queue ordered by
    (cycle, insertion order); network deliveries live in a separate
    delivery queue ordered by a canonical key — (arrival time, send time,
    source id, per-source sequence).  At every cycle the engine drains
    same-cycle component events before granting deliveries, so the merged
    order is a pure function of the simulated machine rather than of
    queue push interleave.  That canonical order is what makes the
    sharded PDES backend bit-identical to a sequential run: shards compute
    the same delivery keys, and per-shard component order is the
    sequential order restricted to the shard.

    The component queue is a hierarchical timing wheel
    ({!Spandex_util.Wheel}): almost every event lands 1–100 cycles ahead,
    so push/pop are O(1) with FIFO order per cycle preserved by
    construction; far-future events (retry backoff) spill to an overflow
    heap.  The pre-wheel binary-heap scheduler is retained as
    {!Heap_backend} so tests can assert the two produce bit-identical
    simulations. *)

type t

exception Deadlock of string
(** Raised by [run] when the queue drains while some registered completion
    condition is still unmet — a lost message or a protocol deadlock. *)

type pending_work = {
  pw_device : string;  (** component name, e.g. ["denovo_l1.2"]. *)
  pw_txn : int;  (** transaction id, or [-1] when not transaction-bound. *)
  pw_line : int;  (** line address, or [-1] when unknown. *)
  pw_what : string;  (** short description of the stuck work. *)
}
(** One item of live component work reported by a pending source — an
    MSHR entry, a buffered store, a parked op, a busy LLC line. *)

type stuck = {
  stuck_cycle : int;  (** cycle at which the queue drained. *)
  stuck_work : pending_work list;  (** live work left behind. *)
}

exception Stuck of stuck
(** Raised by [run_all] when the event queue drains while a registered
    pending source still reports live work — a silent deadlock that would
    otherwise return as if the simulation completed. *)

val pp_pending_work : Format.formatter -> pending_work -> unit
val pp_stuck : Format.formatter -> stuck -> unit

val register_pending_source : t -> (unit -> pending_work list) -> unit
(** Register a closure reporting a component's still-live work.
    Components call this once at build time; the engine polls every
    source when the queue drains (and from {!live_work}). *)

val live_work : t -> pending_work list
(** Poll every registered pending source, in registration order. *)

type livelock = {
  cycle : int;  (** cycle at which the watchdog gave up. *)
  stalled_for : int;  (** cycles since the last observed progress. *)
  detail : string;  (** pending work of the stuck components. *)
}

exception Livelock of livelock
(** Raised by the watchdog configured with {!set_watchdog} when the event
    queue keeps churning but no forward progress is observed — e.g. a
    retry storm that never completes.  Complements {!Deadlock}, which only
    fires on an empty queue. *)

val pp_livelock : Format.formatter -> livelock -> unit

type endpoint = {
  mutable handler : Spandex_proto.Msg.t -> unit;
  mutable ingress_free : int;  (** next cycle the ingress port is free. *)
  in_flight : int ref;  (** owning network's in-flight counter. *)
}
(** A network delivery target.  Owned by {!Spandex_net.Network}, which
    keeps them in a dense array indexed by device id; the engine needs the
    representation to process delivery events without closures.

    Component events are an implementation detail: mutable tagged records
    (Thunk / Handle / Egress / Apply) drawn from a per-engine free-list
    and recycled at dispatch, so the steady-state hot path allocates no
    event cells.  After a Handle dispatch returns, the delivered message
    is returned to its pool unless the handler kept it
    ({!Spandex_proto.Msg.keep}). *)

type backend =
  | Wheel_backend  (** timing wheel + overflow heap (default). *)
  | Heap_backend
      (** the pre-wheel (time, seq) binary heap, kept as a reference
          scheduler for bit-identity tests. *)
  | Pdes_backend of { shards : int }
      (** conservative parallel DES: the machine is partitioned into
          [shards] shards, each with its own engine (a timing wheel) on a
          dedicated domain, synchronized on the topology's min-latency
          lookahead (see {!Pdes} and [Run]).  An engine created with this
          backend is one shard's scheduler. *)

val create : ?backend:backend -> ?trace:Trace.t -> unit -> t
(** [trace] (default {!Trace.disabled}) is the simulation's trace sink;
    the engine only carries it so every component can reach the shared
    sink through its engine handle without signature changes. *)

val now : t -> int
(** Current simulation cycle. *)

val trace : t -> Trace.t
(** The trace sink passed to {!create}. *)

val set_lookahead : t -> int -> unit
(** Set the completion-check grid (default 1): {!run} evaluates
    [until_done] and the watchdog once per [l]-aligned window of event
    times instead of per event.  [Run] sets the topology's minimum
    latency, which is also the PDES synchronization horizon — so every
    backend evaluates completion at identical boundaries. *)

val lookahead : t -> int

val set_sampler : t -> every:int -> (int -> unit) -> unit
(** Install an occupancy sampler: [f time] is invoked from the event
    dispatch loop the first time simulated time reaches each multiple-ish
    of [every] cycles (exactly: at the first event dispatched once [time]
    passes the previous sample time + [every]).  The sampler runs inline —
    it never enqueues events — so installing one does not perturb event
    counts or simulated timing.  The sampler must not schedule events or
    mutate component state. *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at cycle [now t + delay]. [delay >= 0]. *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Schedule at an absolute cycle, which must not be in the past. *)

val deliver : t -> delay:int -> Spandex_proto.Msg.t -> endpoint -> unit
(** Enqueue a network delivery [delay] cycles ahead, keyed for the
    canonical merge by (arrival, send time, src, per-src seq); on dispatch
    the engine applies the one-message-per-cycle ingress drain and
    re-queues the handler invocation as a component event (two events per
    delivered message, as always). *)

val cross_tie : t -> Spandex_proto.Msg.t -> int
(** Draw the delivery tiebreak (src, per-src seq) for [msg] from this
    (sending) engine's counters — the same draw {!deliver} performs —
    without enqueueing anything.  The sharded network uses it to stamp a
    cross-shard message before pushing it onto the link channel; the
    destination shard completes the delivery with {!inject}. *)

val inject :
  t -> time:int -> t0:int -> tie:int -> Spandex_proto.Msg.t -> endpoint -> unit
(** Enqueue a delivery stamped elsewhere ([time] = absolute arrival,
    [t0] = send cycle, [tie] from {!cross_tie}).  Counts the message into
    the endpoint's in-flight counter — for cross-shard messages the
    destination shard owns the count.  [time] must not be in the shard's
    past; the PDES lookahead guarantees that. *)

val set_egress : t -> (Spandex_proto.Msg.t -> unit) -> unit
(** Install the callback Egress events dispatch to — [Network.create]
    registers its [send] here so components can enqueue outbound messages
    without allocating a closure per message. *)

val send_later : t -> delay:int -> Spandex_proto.Msg.t -> unit
(** Closure-free form of [schedule t ~delay (fun () -> Network.send net
    msg)]: hands [msg] to the installed egress callback after [delay]
    cycles.  Fails at dispatch if no callback was installed. *)

val apply_later : t -> delay:int -> (int -> unit) -> int -> unit
(** Closure-free form of [schedule t ~delay (fun () -> k v)] for integer
    completion values. *)

val run : t -> until_done:(unit -> bool) -> pending_desc:(unit -> string) -> int
(** Drain events until [until_done ()] is true; returns the finish cycle.
    Completion (and the watchdog) are evaluated at lookahead-grid window
    boundaries — the settled points a sharded run can also evaluate them
    at — not between every event.  Raises {!Deadlock} (with
    [pending_desc ()] in the message) if the queue empties first.  A step
    limit guards against livelock. *)

val run_all : ?strict:bool -> t -> int
(** Drain every queued event and return the final cycle.  For unit tests
    that drive components directly and then inspect the settled state.
    Honors the step limit like [run], raising {!Deadlock} when exceeded.
    Raises {!Stuck} if the queue drains while any registered pending
    source still reports live work (silent deadlock).  Pass
    [~strict:false] to skip the liveness audit — for harnesses that
    deliberately pause a protocol mid-transaction to inspect
    intermediate state. *)

val run_window : t -> stop:int -> unit
(** Dispatch every event with time strictly before [stop]; the shard
    executor for one PDES round.  The caller must guarantee no event
    before [stop] can still arrive from another shard.  Honors the step
    limit, raising {!Deadlock} when exceeded. *)

val next_event_time : t -> int option
(** Cycle of the earliest queued event, or [None] when the queue is
    empty.  Does not advance time. *)

val step : t -> bool
(** Dispatch exactly one event (advancing time to it); [false] when the
    queue is empty.  The model checker's execution driver — interleave
    with delivery choices between steps. *)

val set_watchdog :
  t ->
  interval:int ->
  progress:(unit -> int) ->
  describe:(unit -> string) ->
  unit
(** Configure the livelock watchdog: {!run} (and the PDES coordinator via
    {!watchdog_check}) polls [progress ()] — any monotone counter of
    forward progress, e.g. retired ops — at lookahead-grid boundaries,
    throttled to every [interval / 4] cycles, and raises {!Livelock} when
    it has not changed for [interval] cycles.  Polling happens from the
    run loop, never via heartbeat events, so the watchdog perturbs
    neither event counts nor simulated timing. *)

val watchdog_check : t -> boundary:int -> unit
(** Poll the watchdog at window boundary [boundary] (a settled point: all
    events before it have been dispatched).  No-op when no watchdog is
    configured or the boundary precedes the next scheduled beat.  Exposed
    for the PDES round coordinator; {!run} calls it internally. *)

val set_step_limit : t -> int -> unit
(** Override the default step limit (events processed) of [run]. *)

val events_processed : t -> int
