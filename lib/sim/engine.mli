(** Discrete-event simulation engine.

    A single global event queue ordered by (cycle, insertion order).  All
    simulated components schedule closures; the engine advances time to the
    next event.  Determinism: for a fixed seed and workload the event order
    is identical across runs. *)

type t

exception Deadlock of string
(** Raised by [run] when the queue drains while some registered completion
    condition is still unmet — a lost message or a protocol deadlock. *)

type livelock = {
  cycle : int;  (** cycle at which the watchdog gave up. *)
  stalled_for : int;  (** cycles since the last observed progress. *)
  detail : string;  (** pending work of the stuck components. *)
}

exception Livelock of livelock
(** Raised by the watchdog installed with {!install_watchdog} when the
    event queue keeps churning but no forward progress is observed — e.g. a
    retry storm that never completes.  Complements {!Deadlock}, which only
    fires on an empty queue. *)

val pp_livelock : Format.formatter -> livelock -> unit

val create : unit -> t

val now : t -> int
(** Current simulation cycle. *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at cycle [now t + delay]. [delay >= 0]. *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Schedule at an absolute cycle, which must not be in the past. *)

val run : t -> until_done:(unit -> bool) -> pending_desc:(unit -> string) -> int
(** Drain events until [until_done ()] is true; returns the finish cycle.
    Raises {!Deadlock} (with [pending_desc ()] in the message) if the queue
    empties first.  A step limit guards against livelock. *)

val run_all : t -> int
(** Drain every queued event and return the final cycle.  For unit tests
    that drive components directly and then inspect the settled state.
    Honors the step limit like [run], raising {!Deadlock} when exceeded. *)

val install_watchdog :
  t ->
  interval:int ->
  progress:(unit -> int) ->
  active:(unit -> bool) ->
  describe:(unit -> string) ->
  unit
(** Install a periodic heartbeat (every [interval / 4] cycles) that raises
    {!Livelock} when [progress ()] — any monotone counter of forward
    progress, e.g. retired ops — has not changed for [interval] cycles
    while [active ()] still holds.  The heartbeat stops rescheduling once
    [active ()] is false; it never affects simulated timing otherwise. *)

val set_step_limit : t -> int -> unit
(** Override the default step limit (events processed) of [run]. *)

val events_processed : t -> int
