module Hist = Spandex_util.Hist
module Msg = Spandex_proto.Msg

type spec = { capacity : int; sample_every : int }

let default_spec = { capacity = 1 lsl 16; sample_every = 64 }

(* Event kinds in the ring.  Events are stored struct-of-arrays with six
   unboxed int fields; the meaning of [ids]/[a]/[b]/[c] depends on the
   kind:

     kind         ids        a          b         c
     0 span begin txn        cls        line      -
     1 span end   txn        cls        latency   -
     2 instant    name id    txn        arg       -
     3 counter    name id    value      -         -
     4 msg send   txn        kind idx   line      dst          *)

let ek_span_begin = 0
let ek_span_end = 1
let ek_instant = 2
let ek_counter = 3
let ek_msg = 4

type t = {
  enabled : bool;
  sample_every : int;
  mask : int;  (* capacity - 1; capacity is a power of two. *)
  times : int array;
  eks : int array;
  devs : int array;
  ids : int array;
  a : int array;
  b : int array;
  c : int array;
  mutable total : int;
  (* Interned instant/counter names, [name id -> string]. *)
  name_index : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n_names : int;
  (* txn -> (begin time lsl 3) lor cls, for spans not yet ended.  Kept
     outside the ring so latency histograms survive ring wraparound. *)
  open_tbl : (int, int) Hashtbl.t;
  hists : Hist.t array;  (* per request class, by req_kind_index. *)
}

let num_classes = List.length Msg.all_req_kinds

let cls_names =
  let a = Array.make num_classes "" in
  List.iter
    (fun k -> a.(Msg.req_kind_index k) <- Msg.req_kind_name k)
    Msg.all_req_kinds;
  a

let cls_name i =
  if i >= 0 && i < num_classes then cls_names.(i) else Printf.sprintf "cls%d" i

let kind_names =
  let a = Array.make Msg.num_kinds "" in
  List.iter (fun k -> a.(Msg.kind_index k) <- Msg.kind_name k) Msg.all_kinds;
  a

let kind_name i =
  if i >= 0 && i < Array.length kind_names then kind_names.(i)
  else Printf.sprintf "kind%d" i

let disabled =
  {
    enabled = false;
    sample_every = 0;
    mask = -1;
    times = [||];
    eks = [||];
    devs = [||];
    ids = [||];
    a = [||];
    b = [||];
    c = [||];
    total = 0;
    name_index = Hashtbl.create 1;
    names = [||];
    n_names = 0;
    open_tbl = Hashtbl.create 1;
    hists = [||];
  }

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let create spec =
  if spec.capacity <= 0 then invalid_arg "Trace.create: capacity";
  let cap = pow2_at_least spec.capacity 2 in
  {
    enabled = true;
    sample_every = max 1 spec.sample_every;
    mask = cap - 1;
    times = Array.make cap 0;
    eks = Array.make cap 0;
    devs = Array.make cap 0;
    ids = Array.make cap 0;
    a = Array.make cap 0;
    b = Array.make cap 0;
    c = Array.make cap 0;
    total = 0;
    name_index = Hashtbl.create 32;
    names = Array.make 16 "";
    n_names = 0;
    open_tbl = Hashtbl.create 256;
    hists = Array.init num_classes (fun _ -> Hist.create ());
  }

let on t = t.enabled
let sample_every t = t.sample_every

let name t s =
  if not t.enabled then 0
  else
    match Hashtbl.find_opt t.name_index s with
    | Some i -> i
    | None ->
      if t.n_names = Array.length t.names then begin
        let grown = Array.make (2 * t.n_names) "" in
        Array.blit t.names 0 grown 0 t.n_names;
        t.names <- grown
      end;
      let i = t.n_names in
      t.names.(i) <- s;
      t.n_names <- i + 1;
      Hashtbl.add t.name_index s i;
      i

let push t ~time ~ek ~dev ~id ~a ~b ~c =
  let s = t.total land t.mask in
  t.times.(s) <- time;
  t.eks.(s) <- ek;
  t.devs.(s) <- dev;
  t.ids.(s) <- id;
  t.a.(s) <- a;
  t.b.(s) <- b;
  t.c.(s) <- c;
  t.total <- t.total + 1

let span_begin t ~time ~dev ~txn ~cls ~line =
  if t.enabled then begin
    Hashtbl.replace t.open_tbl txn ((time lsl 3) lor (cls land 7));
    push t ~time ~ek:ek_span_begin ~dev ~id:txn ~a:cls ~b:line ~c:0
  end

let span_end t ~time ~dev ~txn =
  if t.enabled then
    match Hashtbl.find_opt t.open_tbl txn with
    | None -> ()
    | Some packed ->
      Hashtbl.remove t.open_tbl txn;
      let cls = packed land 7 in
      let latency = time - (packed lsr 3) in
      Hist.record t.hists.(cls) latency;
      push t ~time ~ek:ek_span_end ~dev ~id:txn ~a:cls ~b:latency ~c:0

let instant t ~time ~dev ~name ~txn ~arg =
  if t.enabled then push t ~time ~ek:ek_instant ~dev ~id:name ~a:txn ~b:arg ~c:0

let counter t ~time ~dev ~name ~value =
  if t.enabled then push t ~time ~ek:ek_counter ~dev ~id:name ~a:value ~b:0 ~c:0

let msg_send t ~time ~src ~dst ~txn ~kind ~line =
  if t.enabled then
    push t ~time ~ek:ek_msg ~dev:src ~id:txn ~a:kind ~b:line ~c:dst

let total t = t.total
let recorded t = min t.total (t.mask + 1)
let dropped t = t.total - recorded t
let open_spans t = Hashtbl.length t.open_tbl

let latency t ~cls =
  if not t.enabled then invalid_arg "Trace.latency: disabled sink";
  t.hists.(cls)

let latency_summaries t =
  if not t.enabled then []
  else
    Array.to_list t.hists
    |> List.mapi (fun i h -> (cls_name i, h))
    |> List.filter (fun (_, h) -> not (Hist.is_empty h))
    |> List.map (fun (n, h) -> (n, Hist.summary h))

type event =
  | Span_begin of { time : int; dev : int; txn : int; cls : int; line : int }
  | Span_end of { time : int; dev : int; txn : int; cls : int; latency : int }
  | Instant of { time : int; dev : int; name : string; txn : int; arg : int }
  | Counter of { time : int; dev : int; name : string; value : int }
  | Msg_send of {
      time : int;
      src : int;
      dst : int;
      txn : int;
      kind : int;
      line : int;
    }

let iter t ~f =
  let first = t.total - recorded t in
  for i = first to t.total - 1 do
    let s = i land t.mask in
    let time = t.times.(s)
    and dev = t.devs.(s)
    and id = t.ids.(s)
    and a = t.a.(s)
    and b = t.b.(s)
    and c = t.c.(s) in
    let ek = t.eks.(s) in
    if ek = ek_span_begin then
      f (Span_begin { time; dev; txn = id; cls = a; line = b })
    else if ek = ek_span_end then
      f (Span_end { time; dev; txn = id; cls = a; latency = b })
    else if ek = ek_instant then
      f (Instant { time; dev; name = t.names.(id); txn = a; arg = b })
    else if ek = ek_counter then
      f (Counter { time; dev; name = t.names.(id); value = a })
    else f (Msg_send { time; src = dev; dst = c; txn = id; kind = a; line = b })
  done

(* ----- merging ---------------------------------------------------------------- *)

let time_of = function
  | Span_begin { time; _ }
  | Span_end { time; _ }
  | Instant { time; _ }
  | Counter { time; _ }
  | Msg_send { time; _ } ->
    time

(* Re-record one decoded event into [m].  A span end whose begin fell off
   the source ring is replayed verbatim (the source already computed the
   latency), so histograms still sum correctly across shards. *)
let re_record m = function
  | Span_begin { time; dev; txn; cls; line } ->
    span_begin m ~time ~dev ~txn ~cls ~line
  | Span_end { time; dev; txn; cls; latency } -> (
    match Hashtbl.find_opt m.open_tbl txn with
    | Some _ -> span_end m ~time ~dev ~txn
    | None ->
      Hist.record m.hists.(cls) latency;
      push m ~time ~ek:ek_span_end ~dev ~id:txn ~a:cls ~b:latency ~c:0)
  | Instant { time; dev; name = n; txn; arg } ->
    instant m ~time ~dev ~name:(name m n) ~txn ~arg
  | Counter { time; dev; name = n; value } ->
    counter m ~time ~dev ~name:(name m n) ~value
  | Msg_send { time; src; dst; txn; kind; line } ->
    msg_send m ~time ~src ~dst ~txn ~kind ~line

let merge ts =
  match List.filter on ts with
  | [] -> disabled
  | [ t ] -> t
  | live ->
    (* Decode each shard's ring (already time-sorted within a shard) and
       k-way merge by (time, shard index) — a deterministic order that
       does not depend on domain scheduling. *)
    let streams =
      live
      |> List.map (fun t ->
             let evs = ref [] in
             iter t ~f:(fun e -> evs := e :: !evs);
             Array.of_list (List.rev !evs))
      |> Array.of_list
    in
    let cap = List.fold_left (fun acc t -> acc + recorded t) 0 live in
    let m =
      create
        {
          capacity = max 2 cap;
          sample_every =
            List.fold_left (fun acc t -> max acc t.sample_every) 1 live;
        }
    in
    let idx = Array.map (fun _ -> 0) streams in
    let continue = ref true in
    while !continue do
      let best = ref (-1) in
      let best_t = ref max_int in
      Array.iteri
        (fun s i ->
          if i < Array.length streams.(s) then begin
            let tt = time_of streams.(s).(i) in
            if tt < !best_t then begin
              best := s;
              best_t := tt
            end
          end)
        idx;
      if !best < 0 then continue := false
      else begin
        let s = !best in
        re_record m streams.(s).(idx.(s));
        idx.(s) <- idx.(s) + 1
      end
    done;
    m

(* ----- export ---------------------------------------------------------------- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

(* Devices that appear as a track in the chrome export, in id order. *)
let devices_used t =
  let seen = Hashtbl.create 16 in
  iter t ~f:(fun ev ->
      let mark d = if not (Hashtbl.mem seen d) then Hashtbl.add seen d () in
      match ev with
      | Span_begin { dev; _ } | Span_end { dev; _ } | Instant { dev; _ } ->
        mark dev
      | Msg_send { src; dst; _ } ->
        mark src;
        mark dst
      | Counter _ -> ());
  Hashtbl.fold (fun d () acc -> d :: acc) seen [] |> List.sort compare

let export_chrome ?extra t ~device_name buf =
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n";
    Buffer.add_string buf line
  in
  List.iter
    (fun d ->
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":%s}}"
           d
           (let b = Buffer.create 16 in
            add_json_string b (device_name d);
            Buffer.contents b)))
    (devices_used t);
  let js s =
    let b = Buffer.create 16 in
    add_json_string b s;
    Buffer.contents b
  in
  iter t ~f:(fun ev ->
      match ev with
      | Span_begin { time; dev; txn; cls; line } ->
        emit
          (Printf.sprintf
             "{\"ph\":\"b\",\"cat\":%s,\"name\":%s,\"id\":\"0x%x\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"args\":{\"txn\":%d,\"line\":%d}}"
             (js (cls_name cls)) (js (cls_name cls)) txn dev time txn line)
      | Span_end { time; dev; txn; cls; latency } ->
        emit
          (Printf.sprintf
             "{\"ph\":\"e\",\"cat\":%s,\"name\":%s,\"id\":\"0x%x\",\"pid\":0,\"tid\":%d,\"ts\":%d,\"args\":{\"latency\":%d}}"
             (js (cls_name cls)) (js (cls_name cls)) txn dev time latency)
      | Instant { time; dev; name; txn; arg } ->
        emit
          (Printf.sprintf
             "{\"ph\":\"i\",\"name\":%s,\"pid\":0,\"tid\":%d,\"ts\":%d,\"s\":\"t\",\"args\":{\"txn\":%d,\"arg\":%d}}"
             (js name) dev time txn arg)
      | Counter { time; dev = _; name; value } ->
        emit
          (Printf.sprintf
             "{\"ph\":\"C\",\"name\":%s,\"pid\":0,\"ts\":%d,\"args\":{\"value\":%d}}"
             (js name) time value)
      | Msg_send { time; src; dst; txn; kind; line } ->
        emit
          (Printf.sprintf
             "{\"ph\":\"i\",\"name\":%s,\"pid\":0,\"tid\":%d,\"ts\":%d,\"s\":\"t\",\"args\":{\"txn\":%d,\"line\":%d,\"to\":%s}}"
             (js (kind_name kind)) src time txn line (js (device_name dst))));
  (* Extra pre-rendered trace-event objects (e.g. the metrics registry's
     counter tracks) join the same JSON array. *)
  (match extra with Some f -> f ~emit | None -> ());
  Buffer.add_string buf "\n]}\n"

let export_jsonl t ~device_name buf =
  let js s =
    let b = Buffer.create 16 in
    add_json_string b s;
    Buffer.contents b
  in
  Printf.bprintf buf
    "{\"schema\":\"spandex-trace/1\",\"total\":%d,\"dropped\":%d,\"open_spans\":%d}\n"
    t.total (dropped t) (open_spans t);
  iter t ~f:(fun ev ->
      (match ev with
      | Span_begin { time; dev; txn; cls; line } ->
        Printf.bprintf buf
          "{\"t\":%d,\"ev\":\"b\",\"dev\":%s,\"txn\":%d,\"cls\":%s,\"line\":%d}"
          time
          (js (device_name dev))
          txn
          (js (cls_name cls))
          line
      | Span_end { time; dev; txn; cls; latency } ->
        Printf.bprintf buf
          "{\"t\":%d,\"ev\":\"e\",\"dev\":%s,\"txn\":%d,\"cls\":%s,\"lat\":%d}"
          time
          (js (device_name dev))
          txn
          (js (cls_name cls))
          latency
      | Instant { time; dev; name; txn; arg } ->
        Printf.bprintf buf
          "{\"t\":%d,\"ev\":\"i\",\"dev\":%s,\"name\":%s,\"txn\":%d,\"arg\":%d}"
          time
          (js (device_name dev))
          (js name) txn arg
      | Counter { time; dev; name; value } ->
        Printf.bprintf buf
          "{\"t\":%d,\"ev\":\"c\",\"dev\":%s,\"name\":%s,\"value\":%d}" time
          (js (device_name dev))
          (js name) value
      | Msg_send { time; src; dst; txn; kind; line } ->
        Printf.bprintf buf
          "{\"t\":%d,\"ev\":\"m\",\"src\":%s,\"dst\":%s,\"txn\":%d,\"kind\":%s,\"line\":%d}"
          time
          (js (device_name src))
          (js (device_name dst))
          txn
          (js (kind_name kind))
          line);
      Buffer.add_char buf '\n')
