module Wheel = Spandex_util.Wheel
module Pqueue = Spandex_util.Pqueue
module Msg = Spandex_proto.Msg

type endpoint = {
  mutable handler : Msg.t -> unit;
  mutable ingress_free : int;  (** next cycle the ingress port is free. *)
  in_flight : int ref;  (** owning network's in-flight counter. *)
}

(* The dominant event kinds are represented as data instead of nested
   closures: [Handle] (tag 2) models the ingress granting a delivered
   message (one per cycle) and invoking the handler, [Egress] (tag 3) a
   component handing a message to the network after its internal access
   latency (dispatched through the callback {!set_egress} installs), and
   [Apply] (tag 4) a completion continuation fired with its result value
   (load/RMW hits).  [Thunk] (tag 0) is the fallback for every other
   component callback.  Network deliveries do not live in this queue at
   all — see [Netq] below.

   Events are mutable records drawn from a per-engine free-list instead of
   variant cells: dispatch copies the payload fields into locals, returns
   the record to the free-list, then acts, so a steady-state simulation
   allocates no event cells at all.  The tag encoding replaces the
   constructor word; unused fields hold settled dummies so a parked record
   pins no component state. *)
type ev = {
  mutable tag : int;
  mutable fn : unit -> unit;  (* Thunk *)
  mutable af : int -> unit;  (* Apply continuation *)
  mutable iarg : int;  (* Apply value *)
  mutable msg : Msg.t;  (* Handle / Egress *)
  mutable ep : endpoint;  (* Handle *)
}

let nop () = ()
let nop1 (_ : int) = ()

(* Settled fillers for unused event fields.  [dummy_ep] is shared across
   engines (and domains) but never written through. *)
let dummy_ep = { handler = (fun _ -> ()); ingress_free = 0; in_flight = ref 0 }

let fresh_ev () =
  { tag = 0; fn = nop; af = nop1; iarg = 0; msg = Msg.dummy; ep = dummy_ep }

(* Network deliveries are ordered by a key that no scheduler implementation
   detail can perturb: (arrival time, send time, src << 40 | per-src seq).
   The engine drains same-cycle component events before granting the
   cycle's deliveries, so the interleave of deliveries with component work
   is canonical — a function of the simulated machine, not of the order
   the queue happened to be pushed.  That is what lets a sharded (PDES)
   run, where pushes from different shards have no global order at all,
   reproduce the sequential engine bit for bit: every shard computes the
   same delivery keys, and the per-shard component order is the sequential
   order restricted to that shard.

   Represented as a binary min-heap over parallel int arrays (no per-entry
   boxing; [msgs]/[eps] carry the payload).  Keys are unique — [tie]
   embeds a per-source sequence number — so ordering is total. *)
module Netq = struct
  type t = {
    mutable times : int array;
    mutable t0s : int array;
    mutable ties : int array;
    mutable msgs : Msg.t array;
    mutable eps : endpoint array;
    mutable len : int;
  }

  let create () =
    {
      times = Array.make 64 0;
      t0s = Array.make 64 0;
      ties = Array.make 64 0;
      msgs = Array.make 64 Msg.dummy;
      eps = Array.make 64 dummy_ep;
      len = 0;
    }

  let is_empty q = q.len = 0
  let min_time q = q.times.(0)

  let less q i j =
    let ti = q.times.(i) and tj = q.times.(j) in
    ti < tj
    || ti = tj
       &&
       let ai = q.t0s.(i) and aj = q.t0s.(j) in
       ai < aj || (ai = aj && q.ties.(i) < q.ties.(j))

  let swap q i j =
    let t = q.times.(i) in
    q.times.(i) <- q.times.(j);
    q.times.(j) <- t;
    let t = q.t0s.(i) in
    q.t0s.(i) <- q.t0s.(j);
    q.t0s.(j) <- t;
    let t = q.ties.(i) in
    q.ties.(i) <- q.ties.(j);
    q.ties.(j) <- t;
    let m = q.msgs.(i) in
    q.msgs.(i) <- q.msgs.(j);
    q.msgs.(j) <- m;
    let e = q.eps.(i) in
    q.eps.(i) <- q.eps.(j);
    q.eps.(j) <- e

  let grow q =
    let cap = 2 * Array.length q.times in
    let times = Array.make cap 0
    and t0s = Array.make cap 0
    and ties = Array.make cap 0
    and msgs = Array.make cap Msg.dummy
    and eps = Array.make cap dummy_ep in
    Array.blit q.times 0 times 0 q.len;
    Array.blit q.t0s 0 t0s 0 q.len;
    Array.blit q.ties 0 ties 0 q.len;
    Array.blit q.msgs 0 msgs 0 q.len;
    Array.blit q.eps 0 eps 0 q.len;
    q.times <- times;
    q.t0s <- t0s;
    q.ties <- ties;
    q.msgs <- msgs;
    q.eps <- eps

  let push q ~time ~t0 ~tie msg ep =
    if q.len = Array.length q.times then grow q;
    let i = ref q.len in
    q.times.(!i) <- time;
    q.t0s.(!i) <- t0;
    q.ties.(!i) <- tie;
    q.msgs.(!i) <- msg;
    q.eps.(!i) <- ep;
    q.len <- q.len + 1;
    while !i > 0 && less q !i ((!i - 1) / 2) do
      swap q !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  (* Remove the root; callers read [msgs.(0)]/[eps.(0)] first. *)
  let drop_min q =
    q.len <- q.len - 1;
    let n = q.len in
    if n > 0 then swap q 0 n;
    (* Clear the vacated slot so it pins neither message nor endpoint. *)
    q.msgs.(n) <- Msg.dummy;
    q.eps.(n) <- dummy_ep;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      let r = l + 1 in
      let s = ref !i in
      if l < n && less q l !s then s := l;
      if r < n && less q r !s then s := r;
      if !s <> !i then begin
        swap q !i !s;
        i := !s
      end
      else continue := false
    done
end

type backend = Wheel_backend | Heap_backend | Pdes_backend of { shards : int }

(* The heap backend is the pre-wheel engine, kept as a reference
   implementation: component events go through a single (time, seq) binary
   heap, so sweeps run on it reproduce the original scheduler bit-for-bit
   and the test suite can assert the wheel engine matches it.  A
   [Pdes_backend] engine is one shard's scheduler — a wheel; the sharding
   itself lives in [Pdes]/[Run], not here. *)
type queue = Q_wheel of ev Wheel.t | Q_heap of ev Pqueue.t

type t = {
  queue : queue;
  netq : Netq.t;
  (* Per-source delivery sequence numbers (index = src device id).  Under
     PDES each device sends from exactly one shard, so the per-shard
     arrays partition the sequential engine's single array — every source
     draws the same sequence either way. *)
  mutable dseq : int array;
  mutable lookahead : int;
      (* the until_done / watchdog check grid; [Run] sets it to the
         topology's min latency so every backend — sharded or not —
         evaluates completion at the same boundaries. *)
  mutable time : int;
  mutable steps : int;
  mutable step_limit : int;
  mutable egress : Msg.t -> unit;  (** installed once by [Network.create]. *)
  trace : Trace.t;
  (* Occupancy sampler: fired inline by the dispatch loops whenever time
     reaches [next_sample], so sampling never enqueues events and the
     [steps]/event counts are identical with tracing on or off.
     [next_sample] stays [max_int] when no sampler is installed, making
     the disabled cost a single compare per event. *)
  mutable sampler : int -> unit;
  mutable next_sample : int;
  mutable sample_every : int;
  (* Registered by components at build time; each closure reports the
     component's still-live work (MSHR entries, store-buffer stores,
     parked ops) so a drained queue can be diagnosed as [Stuck] instead
     of silently returning as complete. *)
  mutable pending_sources : (unit -> pending_work list) list;
  (* Watchdog state, polled at lookahead-grid boundaries by [run] (and by
     the PDES coordinator via [watchdog_check]) — never via heartbeat
     events, which would perturb event counts and differ across shards. *)
  mutable wd_interval : int;  (* 0 = no watchdog *)
  mutable wd_beat : int;
  mutable wd_next : int;
  mutable wd_last : int;
  mutable wd_last_change : int;
  mutable wd_progress : unit -> int;
  mutable wd_describe : unit -> string;
  (* Event free-list: records recycled at dispatch, popped by the push
     helpers.  Engine-local, so no synchronization. *)
  mutable free_evs : ev array;
  mutable free_len : int;
}

and pending_work = {
  pw_device : string;  (** component name, e.g. ["denovo_l1.2"]. *)
  pw_txn : int;  (** transaction id, or [-1] when not transaction-bound. *)
  pw_line : int;  (** line address, or [-1] when unknown. *)
  pw_what : string;  (** short description of the stuck work. *)
}

exception Deadlock of string

type stuck = {
  stuck_cycle : int;  (** cycle at which the queue drained. *)
  stuck_work : pending_work list;  (** live work left behind. *)
}

exception Stuck of stuck

let pp_pending_work fmt p =
  Format.fprintf fmt "%s: %s (txn %d, line %d)" p.pw_device p.pw_what p.pw_txn
    p.pw_line

let pp_stuck fmt s =
  Format.fprintf fmt
    "event queue drained at cycle %d with %d live work item(s):" s.stuck_cycle
    (List.length s.stuck_work);
  List.iter (fun p -> Format.fprintf fmt "@\n  %a" pp_pending_work p)
    s.stuck_work

type livelock = {
  cycle : int;  (** cycle at which the watchdog gave up. *)
  stalled_for : int;  (** cycles since the last observed progress. *)
  detail : string;  (** pending work of the stuck components. *)
}

exception Livelock of livelock

let pp_livelock fmt l =
  Format.fprintf fmt "livelock at cycle %d (no progress for %d cycles): %s"
    l.cycle l.stalled_for l.detail

let create ?(backend = Wheel_backend) ?(trace = Trace.disabled) () =
  let queue =
    match backend with
    | Wheel_backend | Pdes_backend _ ->
      Q_wheel (Wheel.create ~horizon:512 ~dummy:(fresh_ev ()) ())
    | Heap_backend -> Q_heap (Pqueue.create ~capacity:1024 ())
  in
  {
    queue;
    netq = Netq.create ();
    dseq = Array.make 64 0;
    lookahead = 1;
    time = 0;
    steps = 0;
    step_limit = 500_000_000;
    egress = (fun _ -> failwith "Engine: no egress callback installed");
    trace;
    sampler = (fun _ -> ());
    next_sample = max_int;
    sample_every = 0;
    pending_sources = [];
    wd_interval = 0;
    wd_beat = 0;
    wd_next = 0;
    wd_last = 0;
    wd_last_change = 0;
    wd_progress = (fun () -> 0);
    wd_describe = (fun () -> "");
    free_evs = Array.init 64 (fun _ -> fresh_ev ());
    free_len = 64;
  }

let register_pending_source t f = t.pending_sources <- f :: t.pending_sources

let live_work t =
  (* Sources are prepended at registration; reverse so reports follow
     build order. *)
  List.concat_map (fun f -> f ()) (List.rev t.pending_sources)

let now t = t.time
let set_egress t f = t.egress <- f
let trace t = t.trace

let set_lookahead t l =
  if l <= 0 then invalid_arg "Engine.set_lookahead";
  t.lookahead <- l

let lookahead t = t.lookahead

let set_sampler t ~every f =
  if every <= 0 then invalid_arg "Engine.set_sampler: every";
  t.sampler <- f;
  t.sample_every <- every;
  t.next_sample <- t.time

let sample_now t =
  t.next_sample <- t.time + t.sample_every;
  t.sampler t.time

let q_push q ~time ev =
  match q with
  | Q_wheel w -> Wheel.push w ~time ev
  | Q_heap h -> Pqueue.push h ~time ev

let ev_alloc t =
  if t.free_len > 0 then begin
    t.free_len <- t.free_len - 1;
    t.free_evs.(t.free_len)
  end
  else fresh_ev ()

(* Clear the payload fields before parking so a free record pins neither a
   closure environment nor a message. *)
let ev_recycle t e =
  e.fn <- nop;
  e.af <- nop1;
  e.msg <- Msg.dummy;
  e.ep <- dummy_ep;
  if t.free_len = Array.length t.free_evs then begin
    let cap = 2 * t.free_len in
    let free = Array.make cap e in
    Array.blit t.free_evs 0 free 0 t.free_len;
    t.free_evs <- free
  end;
  t.free_evs.(t.free_len) <- e;
  t.free_len <- t.free_len + 1

let at t ~time f =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.at: time %d is in the past (now %d)" time t.time);
  let e = ev_alloc t in
  e.tag <- 0;
  e.fn <- f;
  q_push t.queue ~time e

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  let e = ev_alloc t in
  e.tag <- 0;
  e.fn <- f;
  q_push t.queue ~time:(t.time + delay) e

(* Delivery ties pack (src, per-src seq) into one int: src in the high
   bits, sequence below.  Device ids are small dense ints (< 2^22 with
   room to spare); sequences fit 40 bits for any plausible run. *)
let draw_tie t src =
  if src < 0 || src >= 1 lsl 22 then
    invalid_arg "Engine: src device id out of range";
  if src >= Array.length t.dseq then begin
    let grown = Array.make (max (src + 1) (2 * Array.length t.dseq)) 0 in
    Array.blit t.dseq 0 grown 0 (Array.length t.dseq);
    t.dseq <- grown
  end;
  let s = t.dseq.(src) in
  t.dseq.(src) <- s + 1;
  (src lsl 40) lor s

let deliver t ~delay (msg : Msg.t) ep =
  if delay < 0 then invalid_arg "Engine.deliver: negative delay";
  Netq.push t.netq ~time:(t.time + delay) ~t0:t.time
    ~tie:(draw_tie t msg.Msg.src) msg ep

let cross_tie t (msg : Msg.t) = draw_tie t msg.Msg.src

let inject t ~time ~t0 ~tie msg ep =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.inject: time %d is in the past (now %d)" time
         t.time);
  (* The destination shard owns the in-flight count for messages bound to
     its endpoints; a cross-shard message is counted when it crosses into
     the shard (the sender's network context never saw it). *)
  incr ep.in_flight;
  Netq.push t.netq ~time ~t0 ~tie msg ep

let send_later t ~delay msg =
  if delay < 0 then invalid_arg "Engine.send_later: negative delay";
  let e = ev_alloc t in
  e.tag <- 3;
  e.msg <- msg;
  q_push t.queue ~time:(t.time + delay) e

let apply_later t ~delay f v =
  if delay < 0 then invalid_arg "Engine.apply_later: negative delay";
  let e = ev_alloc t in
  e.tag <- 4;
  e.af <- f;
  e.iarg <- v;
  q_push t.queue ~time:(t.time + delay) e

let step_limit_hit t =
  raise
    (Deadlock
       (Printf.sprintf "step limit %d exceeded at cycle %d" t.step_limit t.time))

(* The run loops below are specialized per backend so the hot path pays no
   queue-variant dispatch per event: one match outside the loop instead of
   one inside each of is-empty / min-time / pop / push.  The wheel loop
   additionally reads the event time from the cursor after the pop,
   avoiding a second cursor advance. *)

(* Dispatch copies an event's fields into locals and recycles the record
   *before* acting, so the action's own pushes can reuse it immediately.
   After a [Handle]'s component handler returns, the message itself goes
   back to its pool unless the handler kept it (see {!Msg.recycle}). *)

let wheel_dispatch t (e : ev) =
  if t.time >= t.next_sample then sample_now t;
  match e.tag with
  | 0 ->
    let f = e.fn in
    ev_recycle t e;
    f ()
  | 2 ->
    let ep = e.ep in
    let msg = e.msg in
    ev_recycle t e;
    decr ep.in_flight;
    ep.handler msg;
    Msg.recycle msg
  | 3 ->
    let msg = e.msg in
    ev_recycle t e;
    t.egress msg
  | _ ->
    let f = e.af in
    let v = e.iarg in
    ev_recycle t e;
    f v

let heap_dispatch = wheel_dispatch

(* Grant the best pending delivery: the one-message-per-cycle ingress
   drain assigns the port slot, and the handler invocation is scheduled as
   a [Handle] component event — which the run loops drain before granting
   the next delivery, so a burst of same-cycle arrivals at one endpoint
   is granted in key order with the port back-pressure applied exactly as
   the sequential engine always has. *)
let netq_dispatch t =
  if t.time >= t.next_sample then sample_now t;
  let q = t.netq in
  let msg = q.Netq.msgs.(0) and ep = q.Netq.eps.(0) in
  Netq.drop_min q;
  let deliver_at =
    if ep.ingress_free > t.time then ep.ingress_free else t.time
  in
  ep.ingress_free <- deliver_at + 1;
  let e = ev_alloc t in
  e.tag <- 2;
  e.msg <- msg;
  e.ep <- ep;
  q_push t.queue ~time:deliver_at e

(* A drained queue is only "done" if no component still holds live work:
   an L1 waiting on a reply that will never arrive would otherwise look
   like a completed simulation. *)
let drained ~strict t =
  if not strict then t.time
  else
    match live_work t with
    | [] -> t.time
    | work -> raise (Stuck { stuck_cycle = t.time; stuck_work = work })

(* Canonical pop rule, shared by every loop below: component events first
   at equal times ([tq <= tn]), deliveries only when strictly earliest or
   the component queue is idle at that cycle.  Combined with [Handle]
   being a component event, this makes the merged order a pure function
   of the simulated machine. *)

let run_all ?(strict = true) t =
  let nq = t.netq in
  match t.queue with
  | Q_wheel w ->
    let rec loop () =
      let wempty = Wheel.is_empty w in
      if wempty && Netq.is_empty nq then drained ~strict t
      else begin
        let from_net =
          (not (Netq.is_empty nq))
          && (wempty
             ||
             match Wheel.peek_time w with
             | Some tw -> tw > Netq.min_time nq
             | None -> true)
        in
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then step_limit_hit t;
        if from_net then begin
          t.time <- Netq.min_time nq;
          netq_dispatch t
        end
        else begin
          let ev = Wheel.pop_min w in
          t.time <- Wheel.current_time w;
          wheel_dispatch t ev
        end;
        loop ()
      end
    in
    loop ()
  | Q_heap h ->
    let rec loop () =
      let hempty = Pqueue.is_empty h in
      if hempty && Netq.is_empty nq then drained ~strict t
      else begin
        let from_net =
          (not (Netq.is_empty nq))
          && (hempty || Pqueue.min_time h > Netq.min_time nq)
        in
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then step_limit_hit t;
        if from_net then begin
          t.time <- Netq.min_time nq;
          netq_dispatch t
        end
        else begin
          t.time <- Pqueue.min_time h;
          let ev = Pqueue.pop_min h in
          heap_dispatch t ev
        end;
        loop ()
      end
    in
    loop ()

let next_event_time t =
  let tn = if Netq.is_empty t.netq then None else Some (Netq.min_time t.netq) in
  let tq =
    match t.queue with
    | Q_wheel w -> Wheel.peek_time w
    | Q_heap h -> Pqueue.peek_time h
  in
  match (tq, tn) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (if a <= b then a else b)

(* Dispatch the single next event under the canonical pop rule. *)
let dispatch_one t =
  let nq = t.netq in
  let from_net =
    (not (Netq.is_empty nq))
    &&
    let tq =
      match t.queue with
      | Q_wheel w -> Wheel.peek_time w
      | Q_heap h -> Pqueue.peek_time h
    in
    match tq with Some tq -> tq > Netq.min_time nq | None -> true
  in
  t.steps <- t.steps + 1;
  if t.steps > t.step_limit then step_limit_hit t;
  if from_net then begin
    t.time <- Netq.min_time nq;
    netq_dispatch t
  end
  else
    match t.queue with
    | Q_wheel w ->
      let ev = Wheel.pop_min w in
      t.time <- Wheel.current_time w;
      wheel_dispatch t ev
    | Q_heap h ->
      t.time <- Pqueue.min_time h;
      let ev = Pqueue.pop_min h in
      heap_dispatch t ev

let step t =
  let have =
    (not (Netq.is_empty t.netq))
    ||
    match t.queue with
    | Q_wheel w -> not (Wheel.is_empty w)
    | Q_heap h -> not (Pqueue.is_empty h)
  in
  if have then begin
    dispatch_one t;
    true
  end
  else false

let set_step_limit t n = t.step_limit <- n
let events_processed t = t.steps

(* Watchdog: polled at lookahead-grid boundaries instead of via heartbeat
   events.  [boundary] values form a deterministic sequence (derived from
   event times), so sequential and sharded runs make identical stall
   decisions; the beat throttle keeps the progress census off the
   per-window path. *)
let set_watchdog t ~interval ~progress ~describe =
  if interval <= 0 then invalid_arg "Engine.set_watchdog: interval";
  t.wd_interval <- interval;
  t.wd_beat <- max 1 (interval / 4);
  t.wd_next <- 0;
  t.wd_progress <- progress;
  t.wd_describe <- describe;
  t.wd_last <- progress ();
  t.wd_last_change <- t.time

let watchdog_check t ~boundary =
  if t.wd_interval > 0 && boundary >= t.wd_next then begin
    t.wd_next <- boundary + t.wd_beat;
    let cur = t.wd_progress () in
    if cur <> t.wd_last then begin
      t.wd_last <- cur;
      t.wd_last_change <- boundary
    end
    else if boundary - t.wd_last_change >= t.wd_interval then
      raise
        (Livelock
           {
             cycle = boundary;
             stalled_for = boundary - t.wd_last_change;
             detail = t.wd_describe ();
           })
  end

(* [run] checks [until_done] at lookahead-grid boundaries, not per event:
   when the next event's window [b, b + L) differs from the last checked
   one, completion (and the watchdog) are evaluated on the settled state
   of everything before [b].  This is exactly the schedule on which the
   PDES coordinator can evaluate the same predicates — every shard has
   completed the same prefix at a window barrier — so both finish at the
   same cycle with the same event count. *)
let run t ~until_done ~pending_desc =
  let l = t.lookahead in
  let check_at = ref min_int in
  let rec loop () =
    match next_event_time t with
    | None ->
      if until_done () then t.time else raise (Deadlock (pending_desc ()))
    | Some te ->
      if te >= !check_at then
        if until_done () then t.time
        else begin
          let b = l * (te / l) in
          watchdog_check t ~boundary:b;
          check_at := b + l;
          dispatch_run t;
          loop ()
        end
      else begin
        dispatch_run t;
        loop ()
      end
  and dispatch_run t =
    match dispatch_one t with
    | () -> ()
    | exception Deadlock msg ->
      (* Step-limit overruns get the caller's pending description. *)
      raise (Deadlock (Printf.sprintf "%s: %s" msg (pending_desc ())))
  in
  loop ()

(* PDES window execution: drain every event strictly before [stop].  The
   caller (the round coordinator) guarantees no event before [stop] can
   still arrive from another shard. *)
let run_window t ~stop =
  let nq = t.netq in
  match t.queue with
  | Q_wheel w ->
    let rec loop () =
      let tq =
        match Wheel.peek_time w with Some v -> v | None -> max_int
      in
      let tn = if Netq.is_empty nq then max_int else Netq.min_time nq in
      let te = if tq <= tn then tq else tn in
      if te < stop then begin
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then step_limit_hit t;
        if tq <= tn then begin
          let ev = Wheel.pop_min w in
          t.time <- Wheel.current_time w;
          wheel_dispatch t ev
        end
        else begin
          t.time <- tn;
          netq_dispatch t
        end;
        loop ()
      end
    in
    loop ()
  | Q_heap h ->
    let rec loop () =
      let tq = if Pqueue.is_empty h then max_int else Pqueue.min_time h in
      let tn = if Netq.is_empty nq then max_int else Netq.min_time nq in
      let te = if tq <= tn then tq else tn in
      if te < stop then begin
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then step_limit_hit t;
        if tq <= tn then begin
          t.time <- tq;
          let ev = Pqueue.pop_min h in
          heap_dispatch t ev
        end
        else begin
          t.time <- tn;
          netq_dispatch t
        end;
        loop ()
      end
    in
    loop ()
