type t = {
  queue : (unit -> unit) Spandex_util.Pqueue.t;
  mutable time : int;
  mutable steps : int;
  mutable step_limit : int;
}

exception Deadlock of string

type livelock = {
  cycle : int;  (** cycle at which the watchdog gave up. *)
  stalled_for : int;  (** cycles since the last observed progress. *)
  detail : string;  (** pending work of the stuck components. *)
}

exception Livelock of livelock

let pp_livelock fmt l =
  Format.fprintf fmt "livelock at cycle %d (no progress for %d cycles): %s"
    l.cycle l.stalled_for l.detail

let create () =
  {
    queue = Spandex_util.Pqueue.create ~capacity:1024 ();
    time = 0;
    steps = 0;
    step_limit = 500_000_000;
  }

let now t = t.time

let at t ~time f =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.at: time %d is in the past (now %d)" time t.time);
  Spandex_util.Pqueue.push t.queue ~time f

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  at t ~time:(t.time + delay) f

let run_all t =
  let rec loop () =
    if Spandex_util.Pqueue.is_empty t.queue then t.time
    else begin
      t.time <- Spandex_util.Pqueue.min_time t.queue;
      let f = Spandex_util.Pqueue.pop_min t.queue in
      t.steps <- t.steps + 1;
      if t.steps > t.step_limit then
        raise
          (Deadlock
             (Printf.sprintf "step limit %d exceeded at cycle %d" t.step_limit
                t.time));
      f ();
      loop ()
    end
  in
  loop ()

let set_step_limit t n = t.step_limit <- n
let events_processed t = t.steps

(* Periodic heartbeat that raises [Livelock] when [progress] has not moved
   for [interval] cycles while [active] still holds.  [progress] is any
   monotone counter of forward progress (e.g. retired ops); [describe] is
   only evaluated to build the diagnostic. *)
let install_watchdog t ~interval ~progress ~active ~describe =
  if interval <= 0 then invalid_arg "Engine.install_watchdog: interval";
  let beat = max 1 (interval / 4) in
  let last = ref (progress ()) in
  let last_change = ref t.time in
  let rec check () =
    if active () then begin
      let cur = progress () in
      if cur <> !last then begin
        last := cur;
        last_change := t.time
      end
      else if t.time - !last_change >= interval then
        raise
          (Livelock
             {
               cycle = t.time;
               stalled_for = t.time - !last_change;
               detail = describe ();
             });
      schedule t ~delay:beat check
    end
  in
  schedule t ~delay:beat check

let run t ~until_done ~pending_desc =
  let rec loop () =
    if until_done () then t.time
    else if Spandex_util.Pqueue.is_empty t.queue then
      raise (Deadlock (pending_desc ()))
    else begin
      t.time <- Spandex_util.Pqueue.min_time t.queue;
      let f = Spandex_util.Pqueue.pop_min t.queue in
      t.steps <- t.steps + 1;
      if t.steps > t.step_limit then
        raise
          (Deadlock
             (Printf.sprintf "step limit %d exceeded at cycle %d: %s"
                t.step_limit t.time (pending_desc ())));
      f ();
      loop ()
    end
  in
  loop ()
