module Wheel = Spandex_util.Wheel
module Pqueue = Spandex_util.Pqueue
module Msg = Spandex_proto.Msg

type endpoint = {
  mutable handler : Msg.t -> unit;
  mutable ingress_free : int;  (** next cycle the ingress port is free. *)
  in_flight : int ref;  (** owning network's in-flight counter. *)
}

(* The dominant event kinds are represented as data instead of nested
   closures: [Deliver] (tag 1) models the message reaching the
   destination's ingress after the wire latency, [Handle] (tag 2) the
   ingress granting it (one message per cycle) and invoking the handler,
   [Egress] (tag 3) a component handing a message to the network after its
   internal access latency (dispatched through the callback {!set_egress}
   installs), and [Apply] (tag 4) a completion continuation fired with its
   result value (load/RMW hits).  [Thunk] (tag 0) is the fallback for
   every other component callback.

   Events are mutable records drawn from a per-engine free-list instead of
   variant cells: dispatch copies the payload fields into locals, returns
   the record to the free-list, then acts, so a steady-state simulation
   allocates no event cells at all.  A [Deliver] dispatch retags its own
   record as the [Handle] it schedules.  The tag encoding replaces the
   constructor word; unused fields hold settled dummies so a parked record
   pins no component state. *)
type ev = {
  mutable tag : int;
  mutable fn : unit -> unit;  (* Thunk *)
  mutable af : int -> unit;  (* Apply continuation *)
  mutable iarg : int;  (* Apply value *)
  mutable msg : Msg.t;  (* Deliver / Handle / Egress *)
  mutable ep : endpoint;  (* Deliver / Handle *)
}

let nop () = ()
let nop1 (_ : int) = ()

(* Settled fillers for unused event fields.  [dummy_ep] is shared across
   engines (and domains) but never written through. *)
let dummy_ep = { handler = (fun _ -> ()); ingress_free = 0; in_flight = ref 0 }

let fresh_ev () =
  { tag = 0; fn = nop; af = nop1; iarg = 0; msg = Msg.dummy; ep = dummy_ep }

type backend = Wheel_backend | Heap_backend

(* The heap backend is the pre-wheel engine, kept as a reference
   implementation: pushes go through a single (time, seq) binary heap, so
   sweeps run on it reproduce the original scheduler bit-for-bit and the
   test suite can assert the wheel engine matches it. *)
type queue = Q_wheel of ev Wheel.t | Q_heap of ev Pqueue.t

type t = {
  queue : queue;
  mutable time : int;
  mutable steps : int;
  mutable step_limit : int;
  mutable egress : Msg.t -> unit;  (** installed once by [Network.create]. *)
  trace : Trace.t;
  (* Occupancy sampler: fired inline by the dispatch loops whenever time
     reaches [next_sample], so sampling never enqueues events and the
     [steps]/event counts are identical with tracing on or off.
     [next_sample] stays [max_int] when no sampler is installed, making
     the disabled cost a single compare per event. *)
  mutable sampler : int -> unit;
  mutable next_sample : int;
  mutable sample_every : int;
  (* Registered by components at build time; each closure reports the
     component's still-live work (MSHR entries, store-buffer stores,
     parked ops) so a drained queue can be diagnosed as [Stuck] instead
     of silently returning as complete. *)
  mutable pending_sources : (unit -> pending_work list) list;
  (* Event free-list: records recycled at dispatch, popped by the push
     helpers.  Engine-local, so no synchronization. *)
  mutable free_evs : ev array;
  mutable free_len : int;
}

and pending_work = {
  pw_device : string;  (** component name, e.g. ["denovo_l1.2"]. *)
  pw_txn : int;  (** transaction id, or [-1] when not transaction-bound. *)
  pw_line : int;  (** line address, or [-1] when unknown. *)
  pw_what : string;  (** short description of the stuck work. *)
}

exception Deadlock of string

type stuck = {
  stuck_cycle : int;  (** cycle at which the queue drained. *)
  stuck_work : pending_work list;  (** live work left behind. *)
}

exception Stuck of stuck

let pp_pending_work fmt p =
  Format.fprintf fmt "%s: %s (txn %d, line %d)" p.pw_device p.pw_what p.pw_txn
    p.pw_line

let pp_stuck fmt s =
  Format.fprintf fmt
    "event queue drained at cycle %d with %d live work item(s):" s.stuck_cycle
    (List.length s.stuck_work);
  List.iter (fun p -> Format.fprintf fmt "@\n  %a" pp_pending_work p)
    s.stuck_work

type livelock = {
  cycle : int;  (** cycle at which the watchdog gave up. *)
  stalled_for : int;  (** cycles since the last observed progress. *)
  detail : string;  (** pending work of the stuck components. *)
}

exception Livelock of livelock

let pp_livelock fmt l =
  Format.fprintf fmt "livelock at cycle %d (no progress for %d cycles): %s"
    l.cycle l.stalled_for l.detail

let create ?(backend = Wheel_backend) ?(trace = Trace.disabled) () =
  let queue =
    match backend with
    | Wheel_backend ->
      Q_wheel (Wheel.create ~horizon:512 ~dummy:(fresh_ev ()) ())
    | Heap_backend -> Q_heap (Pqueue.create ~capacity:1024 ())
  in
  {
    queue;
    time = 0;
    steps = 0;
    step_limit = 500_000_000;
    egress = (fun _ -> failwith "Engine: no egress callback installed");
    trace;
    sampler = (fun _ -> ());
    next_sample = max_int;
    sample_every = 0;
    pending_sources = [];
    free_evs = Array.init 64 (fun _ -> fresh_ev ());
    free_len = 64;
  }

let register_pending_source t f = t.pending_sources <- f :: t.pending_sources

let live_work t =
  (* Sources are prepended at registration; reverse so reports follow
     build order. *)
  List.concat_map (fun f -> f ()) (List.rev t.pending_sources)

let now t = t.time
let set_egress t f = t.egress <- f
let trace t = t.trace

let set_sampler t ~every f =
  if every <= 0 then invalid_arg "Engine.set_sampler: every";
  t.sampler <- f;
  t.sample_every <- every;
  t.next_sample <- t.time

let sample_now t =
  t.next_sample <- t.time + t.sample_every;
  t.sampler t.time

let q_push q ~time ev =
  match q with
  | Q_wheel w -> Wheel.push w ~time ev
  | Q_heap h -> Pqueue.push h ~time ev

let ev_alloc t =
  if t.free_len > 0 then begin
    t.free_len <- t.free_len - 1;
    t.free_evs.(t.free_len)
  end
  else fresh_ev ()

(* Clear the payload fields before parking so a free record pins neither a
   closure environment nor a message. *)
let ev_recycle t e =
  e.fn <- nop;
  e.af <- nop1;
  e.msg <- Msg.dummy;
  e.ep <- dummy_ep;
  if t.free_len = Array.length t.free_evs then begin
    let cap = 2 * t.free_len in
    let free = Array.make cap e in
    Array.blit t.free_evs 0 free 0 t.free_len;
    t.free_evs <- free
  end;
  t.free_evs.(t.free_len) <- e;
  t.free_len <- t.free_len + 1

let at t ~time f =
  if time < t.time then
    invalid_arg
      (Printf.sprintf "Engine.at: time %d is in the past (now %d)" time t.time);
  let e = ev_alloc t in
  e.tag <- 0;
  e.fn <- f;
  q_push t.queue ~time e

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  let e = ev_alloc t in
  e.tag <- 0;
  e.fn <- f;
  q_push t.queue ~time:(t.time + delay) e

let deliver t ~delay msg ep =
  if delay < 0 then invalid_arg "Engine.deliver: negative delay";
  let e = ev_alloc t in
  e.tag <- 1;
  e.msg <- msg;
  e.ep <- ep;
  q_push t.queue ~time:(t.time + delay) e

let send_later t ~delay msg =
  if delay < 0 then invalid_arg "Engine.send_later: negative delay";
  let e = ev_alloc t in
  e.tag <- 3;
  e.msg <- msg;
  q_push t.queue ~time:(t.time + delay) e

let apply_later t ~delay f v =
  if delay < 0 then invalid_arg "Engine.apply_later: negative delay";
  let e = ev_alloc t in
  e.tag <- 4;
  e.af <- f;
  e.iarg <- v;
  q_push t.queue ~time:(t.time + delay) e

let step_limit_hit t =
  raise
    (Deadlock
       (Printf.sprintf "step limit %d exceeded at cycle %d" t.step_limit t.time))

(* The run loops below are specialized per backend so the hot path pays no
   queue-variant dispatch per event: one match outside the loop instead of
   one inside each of is-empty / min-time / pop / push.  The wheel loop
   additionally reads the event time from the cursor after the pop,
   avoiding a second cursor advance. *)

(* Dispatch copies an event's fields into locals and recycles the record
   *before* acting, so the action's own pushes can reuse it immediately.
   A [Deliver] instead retags its record in place as the [Handle] grant it
   schedules — the grant is still a separate event, so step counts and
   intra-cycle FIFO order match the closure engine this replaced exactly.
   After a [Handle]'s component handler returns, the message itself goes
   back to its pool unless the handler kept it (see {!Msg.recycle}). *)

let wheel_dispatch t w (e : ev) =
  if t.time >= t.next_sample then sample_now t;
  match e.tag with
  | 0 ->
    let f = e.fn in
    ev_recycle t e;
    f ()
  | 1 ->
    (* One message per cycle drains the ingress port. *)
    let ep = e.ep in
    let deliver_at =
      if ep.ingress_free > t.time then ep.ingress_free else t.time
    in
    ep.ingress_free <- deliver_at + 1;
    e.tag <- 2;
    Wheel.push w ~time:deliver_at e
  | 2 ->
    let ep = e.ep in
    let msg = e.msg in
    ev_recycle t e;
    decr ep.in_flight;
    ep.handler msg;
    Msg.recycle msg
  | 3 ->
    let msg = e.msg in
    ev_recycle t e;
    t.egress msg
  | _ ->
    let f = e.af in
    let v = e.iarg in
    ev_recycle t e;
    f v

let heap_dispatch t h (e : ev) =
  if t.time >= t.next_sample then sample_now t;
  match e.tag with
  | 0 ->
    let f = e.fn in
    ev_recycle t e;
    f ()
  | 1 ->
    let ep = e.ep in
    let deliver_at =
      if ep.ingress_free > t.time then ep.ingress_free else t.time
    in
    ep.ingress_free <- deliver_at + 1;
    e.tag <- 2;
    Pqueue.push h ~time:deliver_at e
  | 2 ->
    let ep = e.ep in
    let msg = e.msg in
    ev_recycle t e;
    decr ep.in_flight;
    ep.handler msg;
    Msg.recycle msg
  | 3 ->
    let msg = e.msg in
    ev_recycle t e;
    t.egress msg
  | _ ->
    let f = e.af in
    let v = e.iarg in
    ev_recycle t e;
    f v

(* A drained queue is only "done" if no component still holds live work:
   an L1 waiting on a reply that will never arrive would otherwise look
   like a completed simulation. *)
let drained ~strict t =
  if not strict then t.time
  else
    match live_work t with
    | [] -> t.time
    | work -> raise (Stuck { stuck_cycle = t.time; stuck_work = work })

let run_all ?(strict = true) t =
  match t.queue with
  | Q_wheel w ->
    let rec loop () =
      if Wheel.is_empty w then drained ~strict t
      else begin
        let ev = Wheel.pop_min w in
        t.time <- Wheel.current_time w;
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then step_limit_hit t;
        wheel_dispatch t w ev;
        loop ()
      end
    in
    loop ()
  | Q_heap h ->
    let rec loop () =
      if Pqueue.is_empty h then drained ~strict t
      else begin
        t.time <- Pqueue.min_time h;
        let ev = Pqueue.pop_min h in
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then step_limit_hit t;
        heap_dispatch t h ev;
        loop ()
      end
    in
    loop ()

let next_event_time t =
  match t.queue with
  | Q_wheel w -> Wheel.peek_time w
  | Q_heap h -> Pqueue.peek_time h

let step t =
  match t.queue with
  | Q_wheel w ->
    if Wheel.is_empty w then false
    else begin
      let ev = Wheel.pop_min w in
      t.time <- Wheel.current_time w;
      t.steps <- t.steps + 1;
      if t.steps > t.step_limit then step_limit_hit t;
      wheel_dispatch t w ev;
      true
    end
  | Q_heap h ->
    if Pqueue.is_empty h then false
    else begin
      t.time <- Pqueue.min_time h;
      let ev = Pqueue.pop_min h in
      t.steps <- t.steps + 1;
      if t.steps > t.step_limit then step_limit_hit t;
      heap_dispatch t h ev;
      true
    end

let set_step_limit t n = t.step_limit <- n
let events_processed t = t.steps

(* Periodic heartbeat that raises [Livelock] when [progress] has not moved
   for [interval] cycles while [active] still holds.  [progress] is any
   monotone counter of forward progress (e.g. retired ops); [describe] is
   only evaluated to build the diagnostic. *)
let install_watchdog t ~interval ~progress ~active ~describe =
  if interval <= 0 then invalid_arg "Engine.install_watchdog: interval";
  let beat = max 1 (interval / 4) in
  let last = ref (progress ()) in
  let last_change = ref t.time in
  let rec check () =
    if active () then begin
      let cur = progress () in
      if cur <> !last then begin
        last := cur;
        last_change := t.time
      end
      else if t.time - !last_change >= interval then
        raise
          (Livelock
             {
               cycle = t.time;
               stalled_for = t.time - !last_change;
               detail = describe ();
             });
      schedule t ~delay:beat check
    end
  in
  schedule t ~delay:beat check

let run t ~until_done ~pending_desc =
  match t.queue with
  | Q_wheel w ->
    let rec loop () =
      if until_done () then t.time
      else if Wheel.is_empty w then raise (Deadlock (pending_desc ()))
      else begin
        let ev = Wheel.pop_min w in
        t.time <- Wheel.current_time w;
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then
          raise
            (Deadlock
               (Printf.sprintf "step limit %d exceeded at cycle %d: %s"
                  t.step_limit t.time (pending_desc ())));
        wheel_dispatch t w ev;
        loop ()
      end
    in
    loop ()
  | Q_heap h ->
    let rec loop () =
      if until_done () then t.time
      else if Pqueue.is_empty h then raise (Deadlock (pending_desc ()))
      else begin
        t.time <- Pqueue.min_time h;
        let ev = Pqueue.pop_min h in
        t.steps <- t.steps + 1;
        if t.steps > t.step_limit then
          raise
            (Deadlock
               (Printf.sprintf "step limit %d exceeded at cycle %d: %s"
                  t.step_limit t.time (pending_desc ())));
        heap_dispatch t h ev;
        loop ()
      end
    in
    loop ()
