(** Log-bucketed (HDR-style) latency histogram.

    Values are non-negative integers (cycles).  Buckets below [1 lsl
    sub_bits] are exact; above that each power-of-two octave is split into
    [1 lsl sub_bits] equal sub-buckets, so the relative quantization error
    is bounded by [2 ** -sub_bits] (~3% at the default precision).  Record,
    merge and quantile extraction are all O(1) in the number of recorded
    samples (quantiles scan the fixed bucket array). *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one sample.  Negative values clamp to 0. *)

val record_n : t -> int -> n:int -> unit
(** Record the same value [n] times. *)

val count : t -> int
val is_empty : t -> bool

val merge_into : dst:t -> t -> unit
(** Fold every sample of the source into [dst]; exact min/max/total are
    preserved, bucket counts add. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0, 1]: an upper bound for the value at rank
    [ceil (q * count)], from the same bucket the exact order statistic
    falls in (clamped to the exact recorded maximum).  0 when empty. *)

val min_value : t -> int
(** Exact smallest recorded sample; 0 when empty. *)

val max_value : t -> int
(** Exact largest recorded sample; 0 when empty. *)

val mean : t -> float
(** Exact total / count (totals are tracked outside the buckets). *)

type summary = {
  count : int;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
  mean : float;
}

val summary : t -> summary

val index : int -> int
(** The bucket index a value falls in — exposed so property tests can
    assert a quantile lands in the same bucket as the exact order
    statistic, and for bucket-level equality checks. *)

val bucket_bounds : int -> int * int
(** [bucket_bounds i] is the inclusive [(lo, hi)] value range of bucket
    [i]; [index v = i] iff [lo <= v <= hi]. *)
