(* Counters live in a flat [int array] indexed by interned keys; the
   string-keyed API resolves the key through a side hashtable and is kept
   for cold paths, tests, and reports.  Hot paths resolve [key] once at
   component creation and bump the array directly. *)

type t = {
  index : (string, int) Hashtbl.t;  (** name -> slot. *)
  mutable names : string array;  (** slot -> name, insertion order. *)
  mutable counts : int array;
  mutable touched : bool array;
      (** whether the slot was ever written (interning alone must not make
          a counter appear in [names]/[to_assoc], matching the lazy
          creation semantics of the original hashtable implementation). *)
  mutable is_max : bool array;
      (** whether the slot holds a running maximum ([set_max]/[max_key])
          rather than a sum; [merge_into] must combine such slots with max,
          not addition. *)
  mutable n : int;  (** slots in use. *)
}

type key = int

let create () =
  {
    index = Hashtbl.create 32;
    names = Array.make 32 "";
    counts = Array.make 32 0;
    touched = Array.make 32 false;
    is_max = Array.make 32 false;
    n = 0;
  }

let grow t =
  let cap = 2 * Array.length t.counts in
  let names = Array.make cap "" in
  let counts = Array.make cap 0 in
  let touched = Array.make cap false in
  let is_max = Array.make cap false in
  Array.blit t.names 0 names 0 t.n;
  Array.blit t.counts 0 counts 0 t.n;
  Array.blit t.touched 0 touched 0 t.n;
  Array.blit t.is_max 0 is_max 0 t.n;
  t.names <- names;
  t.counts <- counts;
  t.touched <- touched;
  t.is_max <- is_max

let key t name =
  match Hashtbl.find_opt t.index name with
  | Some k -> k
  | None ->
    if t.n = Array.length t.counts then grow t;
    let k = t.n in
    t.n <- k + 1;
    t.names.(k) <- name;
    Hashtbl.add t.index name k;
    k

let bump_by t k n =
  t.counts.(k) <- t.counts.(k) + n;
  t.touched.(k) <- true

let bump t k = bump_by t k 1

let max_key t k n =
  if n > t.counts.(k) then t.counts.(k) <- n;
  t.touched.(k) <- true;
  t.is_max.(k) <- true

let get_key t k = t.counts.(k)

(* ----- string-keyed wrappers ------------------------------------------------ *)

let add t name n = bump_by t (key t name) n
let incr t name = add t name 1

let get t name =
  match Hashtbl.find_opt t.index name with
  | Some k -> t.counts.(k)
  | None -> 0

let set_max t name n = max_key t (key t name) n

let names t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if t.touched.(i) then acc := t.names.(i) :: !acc
  done;
  List.sort String.compare !acc

let to_assoc t = List.map (fun k -> (k, get t k)) (names t)

(* Joins [prefix ^ "." ^ name] in a caller-provided buffer: one string
   allocation per joined key instead of two intermediate concatenations. *)
let joined buf ~plen name =
  Buffer.truncate buf plen;
  Buffer.add_string buf name;
  Buffer.contents buf

let prefix_buf prefix =
  let buf = Buffer.create (String.length prefix + 24) in
  Buffer.add_string buf prefix;
  Buffer.add_char buf '.';
  (buf, Buffer.length buf)

let merge_into ~dst ~prefix src =
  let buf, plen = prefix_buf prefix in
  for i = 0 to src.n - 1 do
    if src.touched.(i) then
      if src.is_max.(i) then
        (* A running maximum stays a maximum under merge — summing two
           high-water marks would fabricate a depth never observed. *)
        set_max dst (joined buf ~plen src.names.(i)) src.counts.(i)
      else add dst (joined buf ~plen src.names.(i)) src.counts.(i)
  done

let get_prefixed t ~prefix name =
  let buf, plen = prefix_buf prefix in
  get t (joined buf ~plen name)

let pp fmt t =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s = %d@." k v) (to_assoc t)
