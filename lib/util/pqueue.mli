(** Binary-heap priority queue keyed by [(time, sequence)].

    The event engine needs stable FIFO ordering among events scheduled for
    the same cycle, so each push records a monotonically increasing sequence
    number and ties are broken by it.

    The heap array holds boxed entries and uses the first pushed entry as
    its fill element for freed slots (no [Obj.magic] dummy), so at most one
    popped value is retained per queue lifetime. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] pre-sizes the heap array (default 16); it grows by doubling
    regardless. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Insert with key [time]; FIFO among equal times. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-time element, or [None] when empty. *)

val min_time : 'a t -> int
(** Time of the minimum element.  O(1), no allocation.
    @raise Invalid_argument when empty. *)

val pop_min : 'a t -> 'a
(** Remove and return the minimum-time element's value.  Unlike {!pop}
    this allocates nothing; pair with {!min_time} in event loops.
    @raise Invalid_argument when empty. *)

val peek_time : 'a t -> int option
(** Time of the minimum element without removing it. *)

val clear : 'a t -> unit
