(* Timing wheel with an overflow heap; see the .mli for the design notes.

   Invariants:
   - [cur] is monotone; every event with time < [cur] has been popped.
   - A slot only ever holds events of a single absolute time: an entry for
     [T] is slot-resident iff it was pushed with [T - cur < horizon], and
     distinct times within [cur, cur + horizon) map to distinct slots.
   - A slot is fully drained (rd = wr, reset to 0) before the cursor moves
     past its time, so reuse for [T + horizon] never mixes batches.
   - All overflow entries for time [T] predate (in push order) every slot
     entry for [T], so popping overflow-first at [T] is global FIFO. *)

type 'a slot = {
  mutable arr : 'a array;
  mutable rd : int;  (* next index to pop. *)
  mutable wr : int;  (* next index to fill; empty iff rd = wr. *)
}

type 'a t = {
  dummy : 'a;
  horizon : int;  (* power of two. *)
  idx_mask : int;  (* horizon - 1. *)
  slots : 'a slot array;
  overflow : 'a Pqueue.t;
  mutable cur : int;  (* cursor: no pending event lives below it. *)
  mutable wheel_count : int;  (* events resident in slots. *)
  mutable size : int;  (* slots + overflow. *)
  mutable overflow_pushes : int;
}

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(horizon = 512) ?(slot_capacity = 4) ~dummy () =
  let horizon = round_pow2 (max 2 horizon) in
  let slot_capacity = max 1 slot_capacity in
  {
    dummy;
    horizon;
    idx_mask = horizon - 1;
    slots =
      Array.init horizon (fun _ ->
          { arr = Array.make slot_capacity dummy; rd = 0; wr = 0 });
    overflow = Pqueue.create ~capacity:16 ();
    cur = 0;
    wheel_count = 0;
    size = 0;
    overflow_pushes = 0;
  }

let is_empty t = t.size = 0
let length t = t.size
let overflow_pushes t = t.overflow_pushes
let current_time t = t.cur

let grow_slot t s =
  let arr = Array.make (2 * Array.length s.arr) t.dummy in
  Array.blit s.arr 0 arr 0 s.wr;
  s.arr <- arr

let push t ~time value =
  if time < t.cur then
    invalid_arg
      (Printf.sprintf "Wheel.push: time %d precedes cursor %d" time t.cur);
  if time - t.cur < t.horizon then begin
    let s = t.slots.(time land t.idx_mask) in
    if s.wr = Array.length s.arr then grow_slot t s;
    s.arr.(s.wr) <- value;
    s.wr <- s.wr + 1;
    t.wheel_count <- t.wheel_count + 1
  end
  else begin
    Pqueue.push t.overflow ~time value;
    t.overflow_pushes <- t.overflow_pushes + 1
  end;
  t.size <- t.size + 1

(* Move [cur] to the next pending time.  Caller guarantees size > 0.
   Returns [true] when the event at [cur] must come from the overflow heap
   (which holds the older pushes for that cycle), [false] for the slot. *)
let rec advance t =
  if Pqueue.is_empty t.overflow then begin
    (* Slot-only: scan for the next non-empty slot, at most horizon away. *)
    if t.slots.(t.cur land t.idx_mask).wr = 0 then begin
      t.cur <- t.cur + 1;
      advance t
    end
    else false
  end
  else begin
    let ot = Pqueue.min_time t.overflow in
    if ot = t.cur then true
    else if t.wheel_count = 0 then begin
      (* Everything pending is far-future: jump straight to it. *)
      t.cur <- ot;
      true
    end
    else if t.slots.(t.cur land t.idx_mask).wr = 0 then begin
      t.cur <- t.cur + 1;
      advance t
    end
    else false
  end

let min_time t =
  if t.size = 0 then invalid_arg "Wheel.min_time: empty";
  ignore (advance t : bool);
  t.cur

let pop_min t =
  if t.size = 0 then invalid_arg "Wheel.pop_min: empty";
  t.size <- t.size - 1;
  if advance t then Pqueue.pop_min t.overflow
  else begin
    let s = t.slots.(t.cur land t.idx_mask) in
    let v = s.arr.(s.rd) in
    s.arr.(s.rd) <- t.dummy;
    s.rd <- s.rd + 1;
    if s.rd = s.wr then begin
      s.rd <- 0;
      s.wr <- 0
    end;
    t.wheel_count <- t.wheel_count - 1;
    v
  end

let pop t =
  if t.size = 0 then None
  else begin
    let time = min_time t in
    Some (time, pop_min t)
  end

(* Non-destructive: [min_time]'s cursor advance would make pushes at times
   between the (unchanged) dispatch clock and the peeked minimum illegal —
   exactly what an event loop that peeks, declines to step, and then
   injects a present-time event (the model checker's stabilize/deliver
   cycle) needs to do.  [advance] only moves [cur], so restoring it
   re-permits those pushes; the skipped slots are empty either way. *)
let peek_time t =
  if t.size = 0 then None
  else begin
    let saved = t.cur in
    let time = min_time t in
    t.cur <- saved;
    Some time
  end

let clear t =
  Array.iter
    (fun s ->
      for i = s.rd to s.wr - 1 do
        s.arr.(i) <- t.dummy
      done;
      s.rd <- 0;
      s.wr <- 0)
    t.slots;
  Pqueue.clear t.overflow;
  t.cur <- 0;
  t.wheel_count <- 0;
  t.size <- 0
