(* Canonical-state accumulator for the model checker.

   A fingerprint is built by walking every component's architectural state
   in a fixed traversal order and appending a textual encoding of each
   field.  Two system states that differ only in transaction-id values
   should fingerprint identically: txn ids are allocated from a global
   counter, so the same protocol state reached through two different
   interleavings carries different ids.  [txn] therefore remaps each id to
   a small integer assigned in first-encounter order — callers must
   traverse state in a canonical order (components by device id, table
   entries sorted by content) for the remap to be canonical too.

   The digest is the exact encoding (not a hash), so fingerprint equality
   never produces false state merges; the explorer uses digests as
   visited-set keys directly. *)

type t = {
  buf : Buffer.t;
  txns : (int, int) Hashtbl.t;
  mutable next_txn : int;
}

let create () = { buf = Buffer.create 512; txns = Hashtbl.create 32; next_txn = 0 }

let int t n =
  Buffer.add_string t.buf (string_of_int n);
  Buffer.add_char t.buf ','

let bool t b = Buffer.add_char t.buf (if b then 'T' else 'F')

let tag t s =
  Buffer.add_char t.buf '|';
  Buffer.add_string t.buf s;
  Buffer.add_char t.buf ':'

let txn t id =
  let canon =
    match Hashtbl.find_opt t.txns id with
    | Some c -> c
    | None ->
      let c = t.next_txn in
      t.next_txn <- c + 1;
      Hashtbl.add t.txns id c;
      c
  in
  int t canon

let array t a = Array.iter (int t) a

let masked_array t ~mask a =
  Mask.iter mask ~f:(fun w -> int t a.(w))

let list t f l =
  int t (List.length l);
  List.iter (f t) l

let digest t = Buffer.contents t.buf
