type t = int

let empty = 0
let is_empty m = m = 0

let full ~words =
  assert (words >= 1 && words < Sys.int_size);
  (1 lsl words) - 1

let singleton i = 1 lsl i
let mem m i = m land (1 lsl i) <> 0
let add m i = m lor (1 lsl i)
let remove m i = m land lnot (1 lsl i)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land lnot b = 0

let lowest m =
  if m = 0 then raise Not_found;
  let rec go i m = if m land 1 <> 0 then i else go (i + 1) (m lsr 1) in
  go 0 m

let count m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let iter m ~f =
  let rec go i m =
    if m <> 0 then begin
      if m land 1 <> 0 then f i;
      go (i + 1) (m lsr 1)
    end
  in
  go 0 m

let fold m ~init ~f =
  let acc = ref init in
  iter m ~f:(fun i -> acc := f !acc i);
  !acc

let to_list m = List.rev (fold m ~init:[] ~f:(fun acc i -> i :: acc))
let of_list l = List.fold_left add empty l
let equal = Int.equal

let pp ~words fmt m =
  for i = words - 1 downto 0 do
    Format.pp_print_char fmt (if mem m i then '1' else '0')
  done
