(** Bounded single-producer single-consumer channel.

    One fixed-capacity ring per directed shard pair carries cross-shard
    message deliveries in the PDES backend.  Exactly one domain may push
    and exactly one domain may pop; under that discipline the channel is
    lock-free and every element is delivered exactly once, in FIFO order.

    The implementation is the classic two-counter ring: the producer owns
    [tail], the consumer owns [head], and each reads the other's counter
    through an [Atomic].  A slot write happens-before the [tail]
    publication that makes it visible, and the consumer's [head]
    publication happens-before the producer's re-use of the slot, so the
    plain (non-atomic) slot accesses are data-race free under the OCaml
    memory model. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** Ring of at least [capacity] slots (rounded up to a power of two).
    [dummy] fills empty slots so popped elements don't linger for the
    GC; it is never returned. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** Producer only.  [false] when the ring is full — the caller must
    retry (draining its own inbound channels first, so two shards
    blocking on each other's full rings cannot deadlock). *)

val pop : 'a t -> 'a option
(** Consumer only.  [None] when the ring is empty. *)

val length : 'a t -> int
(** Snapshot of the occupancy; exact only when quiescent. *)
