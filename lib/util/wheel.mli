(** Hierarchical timing wheel keyed by [(time, push order)].

    The simulation engine schedules almost every event a handful of cycles
    ahead (network latencies, ingress drain, tag and DRAM latencies), so a
    bucketed wheel of [horizon] one-cycle slots gives O(1) push and pop for
    the common case, with FIFO order among events of the same cycle
    preserved by construction (each slot is an append-only queue).  Events
    scheduled at or beyond [cur + horizon] — watchdog beats, retry backoff
    deadlines, fault-injection delays — fall back to an overflow binary
    heap ({!Pqueue}) and are popped directly from it when the wheel's
    cursor reaches their cycle.

    FIFO correctness across the two tiers: an overflow entry for cycle [T]
    can only have been pushed while [T >= cur + horizon], i.e. strictly
    before any direct slot push for [T] (the cursor is monotone), so
    draining the overflow heap before slot [T] at cycle [T] reproduces
    exactly the global push order a single [(time, seq)] heap would give.

    Times must be non-negative and never less than the last popped time
    (the engine's no-scheduling-into-the-past rule). *)

type 'a t

val create : ?horizon:int -> ?slot_capacity:int -> dummy:'a -> unit -> 'a t
(** [horizon] is the wheel span in cycles, rounded up to a power of two
    (default 512).  [slot_capacity] pre-sizes each slot's queue (default 4);
    slots grow by doubling.  [dummy] fills empty queue cells so popped
    values become collectable — it is never returned. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Insert with key [time]; FIFO among equal times.
    @raise Invalid_argument when [time] precedes the current cursor. *)

val min_time : 'a t -> int
(** Time of the minimum element; advances the internal cursor to it.
    O(1) when events exist at the cursor, otherwise bounded by the
    horizon (empty-slot scan) or O(1) via a direct jump when only
    overflow events remain.
    @raise Invalid_argument when empty. *)

val pop_min : 'a t -> 'a
(** Remove and return the minimum-[(time, push order)] element.  Allocates
    nothing on the slot path; pair with {!min_time} in event loops.
    @raise Invalid_argument when empty. *)

val current_time : 'a t -> int
(** The cursor position.  Immediately after {!pop_min} this is the time of
    the element just popped, letting event loops retrieve it without a
    second cursor advance (and without the tuple {!pop} allocates). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum element with its time, or [None] when
    empty.  Convenience wrapper over {!min_time}/{!pop_min}. *)

val peek_time : 'a t -> int option
(** Time of the minimum element without removing it. *)

val overflow_pushes : 'a t -> int
(** Total pushes routed to the overflow heap since creation — a cheap
    telemetry hook for checking that the horizon fits the workload. *)

val clear : 'a t -> unit
(** Drop every pending event and reset the cursor to 0, releasing held
    values for collection.  The wheel is reusable afterwards. *)
