type 'a t = {
  buf : 'a array;
  dummy : 'a;
  mask : int;
  head : int Atomic.t;  (* consumer position; producer reads to test full. *)
  tail : int Atomic.t;  (* producer position; consumer reads to test empty. *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be positive";
  let cap = pow2 capacity 1 in
  {
    buf = Array.make cap dummy;
    dummy;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = Array.length t.buf
let length t = Atomic.get t.tail - Atomic.get t.head

let try_push t x =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head >= Array.length t.buf then false
  else begin
    t.buf.(tail land t.mask) <- x;
    (* Publish after the slot write: consumers that observe the new tail
       observe the element. *)
    Atomic.set t.tail (tail + 1);
    true
  end

let pop t =
  let head = Atomic.get t.head in
  if head = Atomic.get t.tail then None
  else begin
    let x = t.buf.(head land t.mask) in
    t.buf.(head land t.mask) <- t.dummy;
    (* Publish after clearing: producers that observe the new head may
       re-use the slot. *)
    Atomic.set t.head (head + 1);
    Some x
  end
