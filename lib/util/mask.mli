(** Word bitmasks.

    A mask selects a subset of the words of a cache line (bit [i] set means
    word [i] is included).  Masks are plain ints; all Spandex multi-word
    requests carry one (paper §III-A). *)

type t = int

val empty : t
val is_empty : t -> bool

val full : words:int -> t
(** Mask selecting every word of a [words]-word line. *)

val singleton : int -> t
(** Mask selecting exactly word [i]. *)

val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** [diff a b] is the words in [a] but not [b]. *)

val subset : t -> t -> bool
(** [subset a b] is true when every word of [a] is in [b]. *)

val lowest : t -> int
(** Index of the lowest set word; raises [Not_found] on the empty mask.
    Allocation-free. *)

val count : t -> int
(** Population count. *)

val iter : t -> f:(int -> unit) -> unit
(** Visit set word indices in increasing order. *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
val to_list : t -> int list
val of_list : int list -> t
val equal : t -> t -> bool
val pp : words:int -> Format.formatter -> t -> unit
