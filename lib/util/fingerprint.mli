(** Canonical-state accumulator for the model checker.

    Components append their architectural state in a fixed traversal
    order; the resulting digest is an exact (collision-free) canonical
    encoding usable as a visited-set key.  Transaction ids are remapped to
    small integers in first-encounter order so two equivalent states
    reached through different interleavings — and hence carrying different
    global txn-counter values — fingerprint identically.  Callers must
    traverse state canonically (components by device id, hash-table
    entries sorted by content) for the remap to be deterministic. *)

type t

val create : unit -> t

val int : t -> int -> unit
val bool : t -> bool -> unit

val tag : t -> string -> unit
(** Structural separator: marks the start of a component or record so
    adjacent fields of different components cannot alias. *)

val txn : t -> int -> unit
(** Append a transaction id, remapped canonically. *)

val array : t -> int array -> unit

val masked_array : t -> mask:Mask.t -> int array -> unit
(** Append only the words selected by [mask]. *)

val list : t -> (t -> 'a -> unit) -> 'a list -> unit
(** Append the length, then each element in list order. *)

val digest : t -> string
