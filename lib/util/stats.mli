(** Named counters and scalar statistics.

    Every simulated component owns a [Stats.t] scoped with a prefix; the
    system run collects them into report rows.

    Two access paths share one counter store:
    - the string-keyed API ([incr]/[add]/[get]/...) resolves names through
      a hashtable — fine for cold paths, tests, and reports;
    - hot paths intern a {!key} once at component creation and bump an
      [int array] slot directly, with no hashing or allocation per event.

    A [t] is single-domain state, like every other simulated component. *)

type t

val create : unit -> t

(** {1 Interned keys — the hot path} *)

type key
(** Index of a counter slot, valid only for the [t] that interned it. *)

val key : t -> string -> key
(** Resolve (interning if absent) the slot for a name.  Interning alone
    does not make the counter visible in [names]/[to_assoc]; only a write
    does, matching the lazy-creation semantics of the string API. *)

val bump : t -> key -> unit
(** Add 1. O(1), no allocation. *)

val bump_by : t -> key -> int -> unit
val max_key : t -> key -> int -> unit
val get_key : t -> key -> int

(** {1 String-keyed API} *)

val incr : t -> string -> unit
(** Add 1 to a named counter, creating it at 0 if absent. *)

val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 when the counter was never touched. *)

val set_max : t -> string -> int -> unit
(** Keep the running maximum under the given name.  The counter is tagged
    as a maximum, so {!merge_into} combines it with max rather than
    addition. *)

val names : t -> string list
(** Sorted list of counters that have been touched. *)

val merge_into : dst:t -> prefix:string -> t -> unit
(** Fold [src] counters into [dst] with [prefix ^ "."] prepended.
    Additive counters add; {!set_max}/{!max_key} counters take the
    maximum (summing high-water marks would fabricate an occupancy that
    never occurred).  Each merged key is built with a single allocation
    via a shared buffer. *)

val get_prefixed : t -> prefix:string -> string -> int
(** [get_prefixed t ~prefix name] = [get t (prefix ^ "." ^ name)] without
    the intermediate concatenations. *)

val to_assoc : t -> (string * int) list
val pp : Format.formatter -> t -> unit
