(** Generic end-to-end timeout/retry table.

    Requesters register an outstanding transaction with a closure that
    re-issues the original message(s); if the transaction is still live
    when the timer fires, the messages are re-sent verbatim (same txn id)
    and the timer re-arms with exponential backoff plus jitter, up to a
    max-attempts cap.  The module is protocol-agnostic: it never sees
    messages, only opaque resend thunks, so it lives in the util layer
    with scheduling injected by the caller. *)

type config = {
  base_timeout : int;  (** cycles before the first re-send. *)
  backoff_factor : int;  (** timeout multiplier per attempt. *)
  max_timeout : int;  (** backoff ceiling, pre-jitter. *)
  jitter : int;  (** uniform random extra in [0, jitter]. *)
  max_attempts : int;  (** re-sends before declaring the txn dead. *)
}

val default : config

exception Exhausted of string
(** Raised from a timer callback when a transaction exceeds
    [max_attempts]; carries the registered description. *)

type t

val create :
  config ->
  seed:int ->
  schedule:(delay:int -> (unit -> unit) -> unit) ->
  stats:Stats.t ->
  t
(** Timer scheduling is injected so the table stays engine-agnostic;
    resends bump ["retry.resend"], recoveries ["retry.recovered"] in
    [stats]. *)

val pending : t -> int
(** Number of live (armed, not yet completed) transactions. *)

val arm : t -> txn:int -> describe:string -> resend:(unit -> unit) -> unit
(** Register [resend] for [txn] and start its timeout timer.  A second
    [arm] on a live txn (one logical operation issuing several messages
    under one id) appends to the resend list without restarting the
    timer.  @raise Exhausted (from the timer, not from [arm]) once the
    attempt cap is exceeded. *)

val complete : t -> txn:int -> unit
(** Mark [txn] finished; idempotent.  Timers are never cancelled — a
    stale timer firing after completion is a no-op. *)

val describe_pending : t -> string list
(** One sorted line per live transaction, for livelock diagnostics. *)
