(* Generic end-to-end timeout/retry table.

   Requesters register an outstanding transaction with a closure that
   re-issues the original message(s); if the transaction is still live when
   the timer fires, the messages are re-sent verbatim (same txn id) and the
   timer re-arms with exponential backoff plus jitter, up to a max-attempts
   cap.  The module is protocol-agnostic: it never sees messages, only
   opaque resend thunks, so it lives in the util layer with scheduling
   injected by the caller. *)

type config = {
  base_timeout : int;  (** cycles before the first re-send. *)
  backoff_factor : int;  (** timeout multiplier per attempt. *)
  max_timeout : int;  (** backoff ceiling, pre-jitter. *)
  jitter : int;  (** uniform random extra in [0, jitter]. *)
  max_attempts : int;  (** re-sends before declaring the txn dead. *)
}

let default =
  {
    base_timeout = 2_000;
    backoff_factor = 2;
    max_timeout = 16_000;
    jitter = 128;
    max_attempts = 20;
  }

exception Exhausted of string

type entry = {
  describe : string;
  mutable resend : (unit -> unit) list;
  mutable attempts : int;
}

type t = {
  cfg : config;
  schedule : delay:int -> (unit -> unit) -> unit;
  rng : Rng.t;
  stats : Stats.t;
  entries : (int, entry) Hashtbl.t;
}

let create cfg ~seed ~schedule ~stats =
  { cfg; schedule; rng = Rng.create ~seed; stats; entries = Hashtbl.create 32 }

let pending t = Hashtbl.length t.entries

let timeout_for t ~attempts =
  let rec scaled acc n =
    if n <= 0 || acc >= t.cfg.max_timeout then acc
    else scaled (acc * t.cfg.backoff_factor) (n - 1)
  in
  min t.cfg.max_timeout (scaled t.cfg.base_timeout attempts)
  + if t.cfg.jitter > 0 then Rng.int t.rng (t.cfg.jitter + 1) else 0

let rec arm_timer t ~txn =
  let e = Hashtbl.find t.entries txn in
  t.schedule ~delay:(timeout_for t ~attempts:e.attempts) (fun () -> fire t ~txn)

and fire t ~txn =
  match Hashtbl.find_opt t.entries txn with
  | None -> () (* completed in the meantime; timers are never cancelled. *)
  | Some e ->
    e.attempts <- e.attempts + 1;
    if e.attempts > t.cfg.max_attempts then
      raise
        (Exhausted
           (Printf.sprintf "txn %d gave up after %d attempts: %s" txn
              e.attempts e.describe))
    else begin
      Stats.incr t.stats "retry.resend";
      List.iter (fun f -> f ()) (List.rev e.resend);
      arm_timer t ~txn
    end

(* Register [resend] for [txn].  A second [arm] on a live txn (one logical
   operation issuing several messages under one id) appends to the resend
   list without restarting the timer. *)
let arm t ~txn ~describe ~resend =
  match Hashtbl.find_opt t.entries txn with
  | Some e -> e.resend <- resend :: e.resend
  | None ->
    Hashtbl.add t.entries txn { describe; resend = [ resend ]; attempts = 0 };
    arm_timer t ~txn

let complete t ~txn =
  match Hashtbl.find_opt t.entries txn with
  | None -> ()
  | Some e ->
    if e.attempts > 0 then Stats.incr t.stats "retry.recovered";
    Hashtbl.remove t.entries txn

let describe_pending t =
  Hashtbl.fold
    (fun txn e acc ->
      Printf.sprintf "txn %d (%d resends) %s" txn e.attempts e.describe :: acc)
    t.entries []
  |> List.sort compare
