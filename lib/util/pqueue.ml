type 'a entry = { time : int; seq : int; value : 'a }

(* The heap array needs a fill element of type ['a entry], which cannot be
   conjured for a polymorphic ['a].  Instead of an [Obj.magic] dummy — a
   latent soundness hazard under flambda/OCaml 5 — the array stays empty
   until the first push, whose entry then doubles as the fill element
   ([filler]).  Freed slots are overwritten with [filler] so popped values
   become collectable; the single retained filler entry (and whatever its
   value captures) is the documented cost of the safe representation. *)
type 'a t = {
  mutable heap : 'a entry array;
  mutable filler : 'a entry option;  (** fill element once known. *)
  mutable capacity : int;  (** requested initial capacity. *)
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) () =
  { heap = [||]; filler = None; capacity = max 1 capacity; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t fill =
  let cap = max t.capacity (2 * Array.length t.heap) in
  let heap = Array.make cap fill in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let push t ~time value =
  let entry = { time; seq = t.next_seq; value } in
  (match t.filler with None -> t.filler <- Some entry | Some _ -> ());
  if t.size = Array.length t.heap then grow t entry;
  t.next_seq <- t.next_seq + 1;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less entry t.heap.(parent) then begin
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let filler_exn t =
  match t.filler with Some f -> f | None -> assert false

(* Shared removal of the root; the caller has already read it. *)
let remove_min t =
  t.size <- t.size - 1;
  let last = t.heap.(t.size) in
  t.heap.(t.size) <- filler_exn t;
  if t.size > 0 then begin
    t.heap.(0) <- last;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!i) in
        t.heap.(!i) <- t.heap.(!smallest);
        t.heap.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end

let min_time t =
  if t.size = 0 then invalid_arg "Pqueue.min_time: empty";
  t.heap.(0).time

let pop_min t =
  if t.size = 0 then invalid_arg "Pqueue.pop_min: empty";
  let min = t.heap.(0) in
  remove_min t;
  min.value

let pop t =
  if t.size = 0 then None
  else begin
    let min = t.heap.(0) in
    remove_min t;
    Some (min.time, min.value)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let clear t =
  (match t.filler with
  | None -> ()
  | Some f ->
    for i = 0 to t.size - 1 do
      t.heap.(i) <- f
    done);
  t.size <- 0
