(* HDR-style bucketing: values below [sub] are their own bucket; above
   that, the octave [2^m, 2^(m+1)) is split into [sub] equal sub-buckets.
   For v >= sub with top bit m:  index = (m - sub_bits) * sub + (v lsr (m -
   sub_bits)), which is continuous with the exact region at v = sub.  The
   whole table spans every non-negative OCaml int in under 2K buckets, so
   the array is allocated eagerly and record is branch + shift + add. *)

let sub_bits = 5
let sub = 1 lsl sub_bits

(* Highest set bit of v > 0, by binary search. *)
let msb v =
  let v = ref v and r = ref 0 in
  if !v lsr 32 <> 0 then begin r := !r + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin r := !r + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin r := !r + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin r := !r + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin r := !r + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then incr r;
  !r

let index v =
  let v = if v < 0 then 0 else v in
  if v < sub then v
  else
    let shift = msb v - sub_bits in
    (shift * sub) + (v lsr shift)

(* max_int has msb 61; its index is the last slot. *)
let buckets = index max_int + 1

let bucket_bounds i =
  if i < sub then (i, i)
  else
    let shift = (i - sub) / sub in
    let offset = i - (shift * sub) in
    let lo = offset lsl shift in
    (lo, lo + (1 lsl shift) - 1)

type t = {
  counts : int array;
  mutable count : int;
  mutable min_v : int;  (* exact; max_int when empty. *)
  mutable max_v : int;  (* exact; -1 when empty. *)
  mutable total : float;  (* float: sums of cycle counts can exceed 2^62. *)
}

let create () =
  {
    counts = Array.make buckets 0;
    count = 0;
    min_v = max_int;
    max_v = -1;
    total = 0.0;
  }

let record_n t v ~n =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    let i = index v in
    t.counts.(i) <- t.counts.(i) + n;
    t.count <- t.count + n;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    t.total <- t.total +. (float_of_int v *. float_of_int n)
  end

let record t v = record_n t v ~n:1
let count t = t.count
let is_empty t = t.count = 0

let merge_into ~dst src =
  if src.count > 0 then begin
    for i = 0 to buckets - 1 do
      if src.counts.(i) <> 0 then dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
    done;
    dst.count <- dst.count + src.count;
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v;
    dst.total <- dst.total +. src.total
  end

let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v
let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count

let quantile t q =
  if t.count = 0 then 0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else r
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    let _, hi = bucket_bounds (!i - 1) in
    (* The bucket's upper bound, clipped to the exact max so p100 is
       exact and the result never exceeds anything recorded. *)
    if hi > t.max_v then t.max_v else hi
  end

type summary = {
  count : int;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
  mean : float;
}

let summary (t : t) =
  {
    count = t.count;
    p50 = quantile t 0.5;
    p90 = quantile t 0.9;
    p99 = quantile t 0.99;
    max = max_value t;
    mean = mean t;
  }
