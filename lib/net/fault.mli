(** Seeded fault-injection plan for the interconnect.

    A plan describes, per message category, the probability of dropping,
    duplicating, extra-delaying, or reordering each message.  Decisions
    are drawn from a dedicated per-(src, dst) link [Rng] stream derived
    from the plan seed, so a given (plan, seed, workload) triple is fully
    deterministic and each link's stream is independent of traffic on
    every other link — which keeps an armed plan bit-identical across
    PDES shard counts (each link is only consulted from its source
    component's shard).

    Fault eligibility follows the recovery story: only messages whose
    loss the requester can recover with an end-to-end retry timer (see
    {!faultable}) may be dropped or duplicated; everything else rides a
    lossless virtual channel and can only be delayed or reordered, with
    per-(src, dst) FIFO order preserved. *)

module Retry = Spandex_util.Retry

type probs = { drop : float; dup : float; delay : float; reorder : float }

val no_faults : probs

type spec = {
  seed : int;
  per_category : probs array;  (** indexed by [category_index], length 6. *)
  delay_min : int;  (** extra-delay fault: min added cycles. *)
  delay_max : int;  (** extra-delay fault: max added cycles. *)
  reorder_window : int;  (** reorder fault: max added skew in cycles. *)
  retry : Retry.config;  (** recovery tuning for the requesters. *)
}

val category_index : Spandex_proto.Msg.category -> int

val uniform :
  ?drop:float ->
  ?dup:float ->
  ?delay:float ->
  ?reorder:float ->
  ?delay_min:int ->
  ?delay_max:int ->
  ?reorder_window:int ->
  ?retry:Retry.config ->
  seed:int ->
  unit ->
  spec
(** A spec applying the same probabilities to every category.
    Probabilities default to 0, [delay_min]/[delay_max] to 32/256,
    [reorder_window] to 24, [retry] to {!Retry.default}. *)

val faultable : Spandex_proto.Msg.t -> bool
(** True when losing the message is recoverable by the requester's retry
    timer: plain (non-forwarded) requests and the responses that complete
    them at the requester (RspV, RspWT, RspWB, Nack, and data-less RspO
    grants).  Forwarded requests, probes, probe responses, and
    data-carrying transfers must not be dropped — no end-to-end timer can
    recover stranded ownership or the only copy of dirty data. *)

type t

val create : spec -> stats:Spandex_util.Stats.t -> t
(** Injection decisions bump ["fault.injected"] / ["fault.<what>"] (and
    ["fault.exempt"] for vetoed drops) in [stats]. *)

val retry_config : t -> Retry.config

type verdict =
  | Drop
  | Deliver of int list
      (** total delay from now per copy (>= 1 copy), FIFO-clamped. *)

val route : t -> now:int -> latency:int -> Spandex_proto.Msg.t -> verdict
(** Decide the fate of one message about to be sent with nominal
    [latency].  Arrival times are clamped to be monotone per (src, dst)
    pair so point-to-point FIFO order survives delay and reorder
    faults. *)
