(** Interconnect model.

    Messages are delivered after a topology-determined latency; each
    endpoint drains its ingress at one message per cycle, which is the only
    source of contention modelled (DESIGN.md §6).  Traffic is accounted in
    flit-hops per request category, matching the Figure 2/3 breakdown. *)

type topology = {
  latency : src:int -> dst:int -> int;  (** delivery latency in cycles. *)
  hops : src:int -> dst:int -> int;  (** link crossings, for flit-hops. *)
  min_latency : int;
      (** smallest latency over all (src, dst) pairs — the conservative
          lookahead bound the PDES backend synchronizes on. *)
}

val flat_topology : latency:int -> topology
(** Crossbar: every pair is [latency] cycles / 1 hop apart. *)

val grouped_topology :
  group_of:(int -> int) ->
  local_latency:int ->
  cross_latency:int ->
  topology
(** Two-level: endpoints in the same group are [local_latency]/1-hop apart;
    different groups cost [cross_latency] cycles and a hop count derived
    from the same link structure (cross_latency / local_latency link
    crossings, rounded, at least 1).  Used for the hierarchical baseline's
    intra-GPU vs. cross-device distances. *)

type t

type cross_send =
  src_shard:int ->
  dst_shard:int ->
  time:int ->
  t0:int ->
  tie:int ->
  Spandex_proto.Msg.t ->
  Spandex_sim.Engine.endpoint ->
  unit
(** How a sharded network hands a stamped cross-shard delivery to the
    PDES link mesh ([Pdes.push]): absolute arrival [time], send cycle
    [t0] and [tie] from [Engine.cross_tie] form the canonical delivery
    key, so the destination shard merges it exactly where a sequential
    run would. *)

val create : ?fault:Fault.spec -> Spandex_sim.Engine.t -> topology -> t
(** [?fault] arms a fault-injection plan (see {!Fault}); when absent the
    network is reliable and delivery behavior is bit-identical to before
    fault injection existed.  Equivalent to a one-shard
    {!create_sharded}. *)

val create_sharded :
  ?fault:Fault.spec ->
  Spandex_sim.Engine.t array ->
  topology ->
  shard_of:(int -> int) ->
  cross:cross_send ->
  t
(** One network spanning several per-shard engines: device [id] lives on
    shard [shard_of id], a send is accounted on the sender's shard, a
    same-shard message is delivered directly, and a cross-shard message
    leaves through [cross].  All per-shard accounting (traffic, stats,
    message and in-flight counts, trace sends) is owned by one domain;
    the aggregate accessors below sum across shards and are exact at
    settled points.  [?fault] arms one {!Fault.t} per shard (all sharing
    the plan); per-(src, dst) link RNG streams make the decisions
    shard-count-invariant, and faulted deliveries cross shards like any
    other (the total delay never undercuts the nominal latency, so the
    conservative lookahead holds). *)

val fault : t -> Fault.t option
(** Shard 0's live fault-injection state, when a plan was armed at
    [create] (every shard's instance shares the plan spec). *)

val faults_enabled : t -> bool
(** True when a fault plan is active; requesters use this to decide whether
    to arm end-to-end retry timers. *)

val register : t -> id:Spandex_proto.Msg.device_id -> (Spandex_proto.Msg.t -> unit) -> unit
(** Attach the handler invoked when a message for [id] is delivered.
    Endpoints live in a dense array indexed by device id (ids are small
    dense ints assigned by [Run]).  Re-registering an id replaces its
    handler. *)

val send : t -> Spandex_proto.Msg.t -> unit
(** Enqueue [msg] for delivery to [msg.dst] as a closure-free typed engine
    event.  Raises if the destination was never registered (checked at
    send time). *)

val set_delivery_hook :
  t -> (Spandex_proto.Msg.t -> latency:int -> unit) -> unit
(** Install the model checker's delivery hook: [send] still performs all
    trace/traffic/stats accounting, then hands the message (and its
    topology latency) to the hook instead of enqueueing delivery.  The
    hook holds messages in a pool; a scheduler re-injects them in any
    order via {!deliver_held}, making message-delivery order a checker
    choice point instead of wheel FIFO. *)

val clear_delivery_hook : t -> unit

val deliver_held : t -> Spandex_proto.Msg.t -> unit
(** Deliver a message previously captured by the delivery hook: counts it
    in flight and enqueues delivery with zero additional latency (the
    checker abstracts wire time — ordering is the choice, not timing). *)

val wrap_handler :
  t ->
  id:Spandex_proto.Msg.device_id ->
  ((Spandex_proto.Msg.t -> unit) -> Spandex_proto.Msg.t -> unit) ->
  unit
(** Replace [id]'s handler with [wrap handler] — the checker's seeded-bug
    harness uses this to intercept or corrupt a device's message handling
    without touching protocol code. *)

val in_flight : t -> int
(** Messages sent but not yet delivered, summed over shards; used for
    quiescence checks (exact at settled points — messages parked on a
    cross-shard link are counted by neither side, but links are empty at
    round horizons). *)

val shard_count : t -> int
val shard_of : t -> int -> int
(** The shard owning device [id] (as passed to {!create_sharded}). *)

val trace_sample : t -> time:int -> unit
(** Record shard 0's in-flight count into its trace sink as a
    ["net.in_flight"] counter sample; no-op when tracing is disabled. *)

val trace_sample_shard : t -> shard:int -> time:int -> unit
(** Per-shard variant, called from that shard's sampler. *)

val traffic_flits : t -> Spandex_proto.Msg.category -> int
val total_flits : t -> int
val messages_sent : t -> int
val stats : t -> Spandex_util.Stats.t
(** Shard 0's per-kind message counters, keyed by message-kind name (the
    whole network's counters on a single-shard network). *)

val shard_stats : t -> Spandex_util.Stats.t array
(** Every shard's counters, in shard order; merging them sums to the
    sequential totals. *)

val register_metrics : t -> shard:int -> Spandex_obs.Metrics.t -> unit
(** Register shard-local probes on that shard's metrics registry:
    message and per-virtual-channel flit counters, the in-flight gauge,
    and (fault runs) that shard's fault-injection outcome counters.
    Every probed value is owned by [shard]'s domain. *)

val enable_vc_depth_metrics : t -> Spandex_obs.Metrics.t -> unit
(** Arm per-virtual-channel in-flight depth gauges: the send path counts
    each enqueued delivery up, a wrapper installed around every
    registered endpoint handler counts it back down on delivery.  No-op
    on sharded networks (the depth array would be written by several
    domains) and on a disabled registry; call only after all endpoints
    have registered. *)
