(* Seeded fault-injection plan for the interconnect.

   A plan describes, per message category, the probability of dropping,
   duplicating, extra-delaying, or reordering each message.  Decisions are
   drawn from a dedicated per-(src, dst) link [Rng] stream derived from
   the plan seed alone, so a given (plan, seed, workload) triple is fully
   deterministic AND the decisions on one link are independent of the
   traffic interleaving on every other link.  That independence is what
   lets an armed plan run under the sharded PDES backend: each link is
   only ever consulted from its source component's shard, and the stream
   it produces does not depend on how many shards exist or in what order
   other shards send — so pdes == wheel bit-identity holds at any shard
   count.

   Fault eligibility follows the recovery story, not the other way round:

   - Plain requests (fwd = false) and the responses that complete them at
     the requester (RspV, RspWT, RspWB, and Nack) are end-to-end
     recoverable — the requester holds an MSHR or write-back record for
     the txn and re-issues the original message on timeout — so these may
     be dropped or duplicated.
   - Forwarded requests, probes (Inv / RvkO), probe responses (Ack /
     RspRvkO), data-carrying transfers (RspS, RspOdata, RspWTdata), and
     data-less RspO ownership grants ride a lossless virtual channel,
     mirroring real fabrics (CXL link-layer retry): dropping them would
     strand ownership or lose the only copy of dirty data, which no
     end-to-end timer can recover.  RspO in particular completes an
     ownership transfer serialized at the LLC and may originate at a
     third-party previous owner; re-soliciting it would mean re-sending
     the forwarded revocation, which a model-checker counterexample shows
     can race into a *later* registration epoch at the old owner (it
     relinquishes words the directory still registers to it).  They can
     still be delayed or reordered.

   Extra delay and reordering preserve per-(src, dst) FIFO order: the
   protocols rely on point-to-point ordering (e.g. a forwarded request
   serialized before a write-back ack at the LLC must reach the owner
   first), so arrival times are clamped to be monotone per pair, and the
   engine's event queue is FIFO-stable for equal timestamps.  Reordering
   across different sources at one ingress — where the interesting races
   live — is unrestricted. *)

module Msg = Spandex_proto.Msg
module Rng = Spandex_util.Rng
module Stats = Spandex_util.Stats
module Retry = Spandex_util.Retry

type probs = { drop : float; dup : float; delay : float; reorder : float }

let no_faults = { drop = 0.0; dup = 0.0; delay = 0.0; reorder = 0.0 }

type spec = {
  seed : int;
  per_category : probs array;  (** indexed by [category_index], length 6. *)
  delay_min : int;  (** extra-delay fault: min added cycles. *)
  delay_max : int;  (** extra-delay fault: max added cycles. *)
  reorder_window : int;  (** reorder fault: max added skew in cycles. *)
  retry : Retry.config;  (** recovery tuning for the requesters. *)
}

let category_index = function
  | Msg.Cat_ReqV -> 0
  | Msg.Cat_ReqS -> 1
  | Msg.Cat_ReqWT -> 2
  | Msg.Cat_ReqO -> 3
  | Msg.Cat_WB -> 4
  | Msg.Cat_Probe -> 5

let uniform ?(drop = 0.0) ?(dup = 0.0) ?(delay = 0.0) ?(reorder = 0.0)
    ?(delay_min = 32) ?(delay_max = 256) ?(reorder_window = 24)
    ?(retry = Retry.default) ~seed () =
  {
    seed;
    per_category = Array.make 6 { drop; dup; delay; reorder };
    delay_min;
    delay_max;
    reorder_window;
    retry;
  }

(* True when losing [msg] is recoverable by the requester's retry timer. *)
let faultable (msg : Msg.t) =
  (not msg.fwd)
  &&
  match msg.kind with
  | Msg.Req _ -> true
  | Msg.Rsp (Msg.RspV | Msg.RspWT | Msg.RspWB | Msg.Nack) -> true
  | Msg.Rsp _ | Msg.Probe _ -> false

(* One (src, dst) link: its own decision stream plus the last scheduled
   arrival for FIFO clamping.  A link is only ever touched by sends from
   [src], i.e. from a single shard. *)
type link = { rng : Rng.t; mutable last : int }

type t = {
  spec : spec;
  stats : Stats.t;
  links : (int * int, link) Hashtbl.t;
}

(* splitmix64 finalizer folding the link identity into the plan seed, so
   each link's stream is a pure function of (seed, src, dst). *)
let link_seed seed src dst =
  let mix h k =
    let h = Int64.logxor h (Int64.mul (Int64.of_int k) 0x9E3779B97F4A7C15L) in
    let h = Int64.logxor h (Int64.shift_right_logical h 30) in
    let h = Int64.mul h 0xBF58476D1CE4E5B9L in
    let h = Int64.logxor h (Int64.shift_right_logical h 27) in
    let h = Int64.mul h 0x94D049BB133111EBL in
    Int64.logxor h (Int64.shift_right_logical h 31)
  in
  Int64.to_int (mix (mix (Int64.of_int seed) (src + 1)) (dst + 1))

let link t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
    let l =
      { rng = Rng.create ~seed:(link_seed t.spec.seed src dst); last = min_int }
    in
    Hashtbl.add t.links key l;
    l

let create spec ~stats = { spec; stats; links = Hashtbl.create 64 }
let retry_config t = t.spec.retry

type verdict =
  | Drop
  | Deliver of int list
      (** total delay from now per copy (>= 1 copy), FIFO-clamped. *)

let count t what =
  Stats.incr t.stats "fault.injected";
  Stats.incr t.stats ("fault." ^ what)

let route t ~now ~latency (msg : Msg.t) =
  let p = t.spec.per_category.(category_index (Msg.category msg.kind)) in
  let lk = link t ~src:msg.src ~dst:msg.dst in
  let roll pr = pr > 0.0 && Rng.float lk.rng 1.0 < pr in
  let clamp arrival =
    let arrival = if lk.last > arrival then lk.last else arrival in
    lk.last <- arrival;
    arrival
  in
  let ok = faultable msg in
  if roll p.drop then
    if ok then begin
      count t "drop";
      Drop
    end
    else begin
      (* Wanted to drop a lossless-channel message; record the exemption so
         eligibility is observable, and deliver normally. *)
      Stats.incr t.stats "fault.exempt";
      Deliver [ clamp (now + latency) - now ]
    end
  else begin
    let extra = ref 0 in
    if roll p.delay then begin
      count t "delay";
      extra :=
        !extra + t.spec.delay_min
        + Rng.int lk.rng (max 1 (t.spec.delay_max - t.spec.delay_min + 1))
    end;
    if roll p.reorder then begin
      count t "reorder";
      extra := !extra + Rng.int lk.rng (t.spec.reorder_window + 1)
    end;
    let first = clamp (now + latency + !extra) - now in
    if ok && roll p.dup then begin
      count t "dup";
      let skew = 1 + Rng.int lk.rng (max 1 t.spec.reorder_window) in
      let second = clamp (now + first + skew) - now in
      Deliver [ first; second ]
    end
    else Deliver [ first ]
  end
