module Msg = Spandex_proto.Msg
module Engine = Spandex_sim.Engine
module Stats = Spandex_util.Stats

type topology = {
  latency : src:int -> dst:int -> int;
  hops : src:int -> dst:int -> int;
}

let flat_topology ~latency =
  { latency = (fun ~src:_ ~dst:_ -> latency); hops = (fun ~src:_ ~dst:_ -> 1) }

let grouped_topology ~group_of ~local_latency ~cross_latency =
  {
    latency =
      (fun ~src ~dst ->
        if group_of src = group_of dst then local_latency else cross_latency);
    hops = (fun ~src ~dst -> if group_of src = group_of dst then 1 else 2);
  }

module Trace = Spandex_sim.Trace

type t = {
  engine : Engine.t;
  topo : topology;
  (* Device ids are small dense ints assigned by [Run], so the endpoint
     table is a plain array indexed by id (grown on register) instead of a
     Hashtbl — no hashing on the delivery hot path. *)
  mutable endpoints : Engine.endpoint option array;
  traffic : int array;  (** flit-hops per category. *)
  stats : Stats.t;
  kind_keys : Stats.key array;  (** per-kind counters, by [Msg.kind_index]. *)
  fault : Fault.t option;  (** active fault-injection plan, if any. *)
  (* Model-checker delivery hook: when installed, [send] hands every
     accounted message here instead of enqueueing a [Deliver] event (or
     routing through the fault plan), letting the checker hold it and
     choose the delivery order; held messages re-enter via
     [deliver_held]. *)
  mutable delivery_hook : (Msg.t -> latency:int -> unit) option;
  in_flight : int ref;
  mutable messages : int;
  trace : Trace.t;  (** the engine's sink; [Trace.disabled] when off. *)
  n_in_flight : int;  (** interned trace counter/instant names. *)
  n_fault_drop : int;
  n_fault_dup : int;
  n_fault_delay : int;
}

let category_index = function
  | Msg.Cat_ReqV -> 0
  | Msg.Cat_ReqS -> 1
  | Msg.Cat_ReqWT -> 2
  | Msg.Cat_ReqO -> 3
  | Msg.Cat_WB -> 4
  | Msg.Cat_Probe -> 5

let fault t = t.fault
let faults_enabled t = Option.is_some t.fault

let register t ~id handler =
  if id < 0 then invalid_arg "Network.register: negative id";
  if id >= Array.length t.endpoints then begin
    let grown =
      Array.make (max (id + 1) (2 * Array.length t.endpoints)) None
    in
    Array.blit t.endpoints 0 grown 0 (Array.length t.endpoints);
    t.endpoints <- grown
  end;
  match t.endpoints.(id) with
  | Some ep -> ep.Engine.handler <- handler
  | None ->
    t.endpoints.(id) <-
      Some { Engine.handler; ingress_free = 0; in_flight = t.in_flight }

let endpoint t id =
  if id < 0 || id >= Array.length t.endpoints then
    failwith (Printf.sprintf "Network: unregistered endpoint %d" id)
  else
    match t.endpoints.(id) with
    | Some ep -> ep
    | None -> failwith (Printf.sprintf "Network: unregistered endpoint %d" id)

let send t (msg : Msg.t) =
  if Trace.on t.trace then
    Trace.msg_send t.trace ~time:(Engine.now t.engine) ~src:msg.src
      ~dst:msg.dst ~txn:msg.txn ~kind:(Msg.kind_index msg.kind) ~line:msg.line;
  let flits = Msg.flits msg in
  let hops = t.topo.hops ~src:msg.src ~dst:msg.dst in
  let cat = category_index (Msg.category msg.kind) in
  t.traffic.(cat) <- t.traffic.(cat) + (flits * hops);
  t.messages <- t.messages + 1;
  Stats.bump t.stats t.kind_keys.(Msg.kind_index msg.kind);
  let latency = t.topo.latency ~src:msg.src ~dst:msg.dst in
  (* Closure-free hot path: enqueue a typed [Deliver] event; the engine
     applies the one-message-per-cycle ingress drain and invokes
     [ep.handler] (decrementing [in_flight]) from the [Handle] event. *)
  let ep = endpoint t msg.dst in
  match t.delivery_hook with
  | Some hook ->
    (* The hook (model checker) holds messages arbitrarily long and may
       re-deliver them; detach from the pool. *)
    Msg.keep msg;
    hook msg ~latency
  | None -> (
  match t.fault with
  | None ->
    incr t.in_flight;
    Engine.deliver t.engine ~delay:latency msg ep
  | Some f -> (
    (* Under fault injection a message can be dropped (retry closures
       re-read it), duplicated (two Deliver events share one record) or
       replayed from a reply cache — blanket-detach instead of tracking
       which path each message takes.  Fault runs are off the measured
       hot path. *)
    Msg.keep msg;
    let now = Engine.now t.engine in
    match Fault.route f ~now ~latency msg with
    | Fault.Drop ->
      if Trace.on t.trace then
        Trace.instant t.trace ~time:now ~dev:msg.src ~name:t.n_fault_drop
          ~txn:msg.txn ~arg:(Msg.kind_index msg.kind)
    | Fault.Deliver delays ->
      (match delays with
      | [ delay ] when delay <> latency && Trace.on t.trace ->
        Trace.instant t.trace ~time:now ~dev:msg.src ~name:t.n_fault_delay
          ~txn:msg.txn ~arg:(delay - latency)
      | _ -> ());
      List.iteri
        (fun i delay ->
          (* Duplicate copies occupy the fabric too. *)
          if i > 0 then begin
            t.traffic.(cat) <- t.traffic.(cat) + (flits * hops);
            if Trace.on t.trace then
              Trace.instant t.trace ~time:now ~dev:msg.src ~name:t.n_fault_dup
                ~txn:msg.txn ~arg:delay
          end;
          incr t.in_flight;
          Engine.deliver t.engine ~delay msg ep)
        delays))

let set_delivery_hook t hook = t.delivery_hook <- Some hook
let clear_delivery_hook t = t.delivery_hook <- None

let deliver_held t (msg : Msg.t) =
  let ep = endpoint t msg.dst in
  incr t.in_flight;
  Engine.deliver t.engine ~delay:0 msg ep

let wrap_handler t ~id wrap =
  let ep = endpoint t id in
  ep.Engine.handler <- wrap ep.Engine.handler

let create ?fault engine topo =
  let stats = Stats.create () in
  let kind_keys =
    let keys = Array.make Msg.num_kinds (Stats.key stats "ReqV") in
    List.iter
      (fun k -> keys.(Msg.kind_index k) <- Stats.key stats (Msg.kind_name k))
      Msg.all_kinds;
    keys
  in
  let trace = Engine.trace engine in
  let t =
    {
      engine;
      topo;
      endpoints = Array.make 64 None;
      traffic = Array.make 6 0;
      stats;
      kind_keys;
      fault = Option.map (fun spec -> Fault.create spec ~stats) fault;
      delivery_hook = None;
      in_flight = ref 0;
      messages = 0;
      trace;
      n_in_flight = Trace.name trace "net.in_flight";
      n_fault_drop = Trace.name trace "fault.drop";
      n_fault_dup = Trace.name trace "fault.dup";
      n_fault_delay = Trace.name trace "fault.delay";
    }
  in
  (* Components enqueue outbound messages as typed [Egress] events
     ({!Engine.send_later}) instead of per-message closures; install the
     dispatch target once. *)
  Engine.set_egress engine (send t);
  t

let in_flight t = !(t.in_flight)

let trace_sample t ~time =
  Trace.counter t.trace ~time ~dev:0 ~name:t.n_in_flight
    ~value:!(t.in_flight)
let traffic_flits t cat = t.traffic.(category_index cat)
let total_flits t = Array.fold_left ( + ) 0 t.traffic
let messages_sent t = t.messages
let stats t = t.stats
