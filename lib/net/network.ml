module Msg = Spandex_proto.Msg
module Engine = Spandex_sim.Engine
module Stats = Spandex_util.Stats

type topology = {
  latency : src:int -> dst:int -> int;
  hops : src:int -> dst:int -> int;
}

let flat_topology ~latency =
  { latency = (fun ~src:_ ~dst:_ -> latency); hops = (fun ~src:_ ~dst:_ -> 1) }

let grouped_topology ~group_of ~local_latency ~cross_latency =
  {
    latency =
      (fun ~src ~dst ->
        if group_of src = group_of dst then local_latency else cross_latency);
    hops = (fun ~src ~dst -> if group_of src = group_of dst then 1 else 2);
  }

type t = {
  engine : Engine.t;
  topo : topology;
  (* Device ids are small dense ints assigned by [Run], so the endpoint
     table is a plain array indexed by id (grown on register) instead of a
     Hashtbl — no hashing on the delivery hot path. *)
  mutable endpoints : Engine.endpoint option array;
  traffic : int array;  (** flit-hops per category. *)
  stats : Stats.t;
  kind_keys : Stats.key array;  (** per-kind counters, by [Msg.kind_index]. *)
  fault : Fault.t option;  (** active fault-injection plan, if any. *)
  in_flight : int ref;
  mutable messages : int;
}

let category_index = function
  | Msg.Cat_ReqV -> 0
  | Msg.Cat_ReqS -> 1
  | Msg.Cat_ReqWT -> 2
  | Msg.Cat_ReqO -> 3
  | Msg.Cat_WB -> 4
  | Msg.Cat_Probe -> 5

let fault t = t.fault
let faults_enabled t = Option.is_some t.fault

let register t ~id handler =
  if id < 0 then invalid_arg "Network.register: negative id";
  if id >= Array.length t.endpoints then begin
    let grown =
      Array.make (max (id + 1) (2 * Array.length t.endpoints)) None
    in
    Array.blit t.endpoints 0 grown 0 (Array.length t.endpoints);
    t.endpoints <- grown
  end;
  match t.endpoints.(id) with
  | Some ep -> ep.Engine.handler <- handler
  | None ->
    t.endpoints.(id) <-
      Some { Engine.handler; ingress_free = 0; in_flight = t.in_flight }

let endpoint t id =
  if id < 0 || id >= Array.length t.endpoints then
    failwith (Printf.sprintf "Network: unregistered endpoint %d" id)
  else
    match t.endpoints.(id) with
    | Some ep -> ep
    | None -> failwith (Printf.sprintf "Network: unregistered endpoint %d" id)

(* Read eagerly at module init (always the main domain): forcing a [lazy]
   concurrently from several domains is unsafe, and parallel sweeps send
   from worker domains. *)
let trace_enabled = Option.is_some (Sys.getenv_opt "SPANDEX_TRACE")

(* SPANDEX_TRACE_WORD="<line>.<word>" additionally prints the carried value
   of one word whenever a traced message covers it. *)
let trace_word =
  Option.bind (Sys.getenv_opt "SPANDEX_TRACE_WORD") (fun s ->
      match String.split_on_char '.' s with
      | [ l; w ] -> Some (int_of_string l, int_of_string w)
      | _ -> None)

let send t (msg : Msg.t) =
  if trace_enabled then begin
    let extra =
      match (trace_word, msg.payload) with
      | Some (l, w), Spandex_proto.Msg.Data values
        when msg.line = l && Spandex_util.Mask.mem msg.mask w ->
        Printf.sprintf " {%d.%d=%d}" l w
          (Spandex_proto.Linedata.value_at ~mask:msg.mask ~values ~word:w)
      | _ -> ""
    in
    Format.eprintf "@%d %a%s@." (Engine.now t.engine) Msg.pp msg extra
  end;
  let flits = Msg.flits msg in
  let hops = t.topo.hops ~src:msg.src ~dst:msg.dst in
  let cat = category_index (Msg.category msg.kind) in
  t.traffic.(cat) <- t.traffic.(cat) + (flits * hops);
  t.messages <- t.messages + 1;
  Stats.bump t.stats t.kind_keys.(Msg.kind_index msg.kind);
  let latency = t.topo.latency ~src:msg.src ~dst:msg.dst in
  (* Closure-free hot path: enqueue a typed [Deliver] event; the engine
     applies the one-message-per-cycle ingress drain and invokes
     [ep.handler] (decrementing [in_flight]) from the [Handle] event. *)
  let ep = endpoint t msg.dst in
  match t.fault with
  | None ->
    incr t.in_flight;
    Engine.deliver t.engine ~delay:latency msg ep
  | Some f -> (
    match Fault.route f ~now:(Engine.now t.engine) ~latency msg with
    | Fault.Drop -> ()
    | Fault.Deliver delays ->
      List.iteri
        (fun i delay ->
          (* Duplicate copies occupy the fabric too. *)
          if i > 0 then t.traffic.(cat) <- t.traffic.(cat) + (flits * hops);
          incr t.in_flight;
          Engine.deliver t.engine ~delay msg ep)
        delays)

let create ?fault engine topo =
  let stats = Stats.create () in
  let kind_keys =
    let keys = Array.make Msg.num_kinds (Stats.key stats "ReqV") in
    List.iter
      (fun k -> keys.(Msg.kind_index k) <- Stats.key stats (Msg.kind_name k))
      Msg.all_kinds;
    keys
  in
  let t =
    {
      engine;
      topo;
      endpoints = Array.make 64 None;
      traffic = Array.make 6 0;
      stats;
      kind_keys;
      fault = Option.map (fun spec -> Fault.create spec ~stats) fault;
      in_flight = ref 0;
      messages = 0;
    }
  in
  (* Components enqueue outbound messages as typed [Egress] events
     ({!Engine.send_later}) instead of per-message closures; install the
     dispatch target once. *)
  Engine.set_egress engine (send t);
  t

let in_flight t = !(t.in_flight)
let traffic_flits t cat = t.traffic.(category_index cat)
let total_flits t = Array.fold_left ( + ) 0 t.traffic
let messages_sent t = t.messages
let stats t = t.stats
