module Msg = Spandex_proto.Msg
module Engine = Spandex_sim.Engine
module Stats = Spandex_util.Stats

type topology = {
  latency : src:int -> dst:int -> int;
  hops : src:int -> dst:int -> int;
}

let flat_topology ~latency =
  { latency = (fun ~src:_ ~dst:_ -> latency); hops = (fun ~src:_ ~dst:_ -> 1) }

let grouped_topology ~group_of ~local_latency ~cross_latency =
  {
    latency =
      (fun ~src ~dst ->
        if group_of src = group_of dst then local_latency else cross_latency);
    hops = (fun ~src ~dst -> if group_of src = group_of dst then 1 else 2);
  }

type endpoint = {
  mutable handler : Msg.t -> unit;
  mutable ingress_free : int;  (** next cycle the ingress port is free. *)
}

type t = {
  engine : Engine.t;
  topo : topology;
  endpoints : (int, endpoint) Hashtbl.t;
  traffic : int array;  (** flit-hops per category. *)
  stats : Stats.t;
  kind_keys : Stats.key array;  (** per-kind counters, by [Msg.kind_index]. *)
  fault : Fault.t option;  (** active fault-injection plan, if any. *)
  mutable in_flight : int;
  mutable messages : int;
}

let category_index = function
  | Msg.Cat_ReqV -> 0
  | Msg.Cat_ReqS -> 1
  | Msg.Cat_ReqWT -> 2
  | Msg.Cat_ReqO -> 3
  | Msg.Cat_WB -> 4
  | Msg.Cat_Probe -> 5

let create ?fault engine topo =
  let stats = Stats.create () in
  let kind_keys =
    let keys = Array.make Msg.num_kinds (Stats.key stats "ReqV") in
    List.iter
      (fun k -> keys.(Msg.kind_index k) <- Stats.key stats (Msg.kind_name k))
      Msg.all_kinds;
    keys
  in
  {
    engine;
    topo;
    endpoints = Hashtbl.create 64;
    traffic = Array.make 6 0;
    stats;
    kind_keys;
    fault = Option.map (fun spec -> Fault.create spec ~stats) fault;
    in_flight = 0;
    messages = 0;
  }

let fault t = t.fault
let faults_enabled t = Option.is_some t.fault

let register t ~id handler =
  match Hashtbl.find_opt t.endpoints id with
  | Some ep -> ep.handler <- handler
  | None -> Hashtbl.add t.endpoints id { handler; ingress_free = 0 }

let endpoint t id =
  match Hashtbl.find_opt t.endpoints id with
  | Some ep -> ep
  | None -> failwith (Printf.sprintf "Network: unregistered endpoint %d" id)

(* Read eagerly at module init (always the main domain): forcing a [lazy]
   concurrently from several domains is unsafe, and parallel sweeps send
   from worker domains. *)
let trace_enabled = Option.is_some (Sys.getenv_opt "SPANDEX_TRACE")

(* SPANDEX_TRACE_WORD="<line>.<word>" additionally prints the carried value
   of one word whenever a traced message covers it. *)
let trace_word =
  Option.bind (Sys.getenv_opt "SPANDEX_TRACE_WORD") (fun s ->
      match String.split_on_char '.' s with
      | [ l; w ] -> Some (int_of_string l, int_of_string w)
      | _ -> None)

let send t (msg : Msg.t) =
  if trace_enabled then begin
    let extra =
      match (trace_word, msg.payload) with
      | Some (l, w), Spandex_proto.Msg.Data values
        when msg.line = l && Spandex_util.Mask.mem msg.mask w ->
        Printf.sprintf " {%d.%d=%d}" l w
          (Spandex_proto.Linedata.value_at ~mask:msg.mask ~values ~word:w)
      | _ -> ""
    in
    Format.eprintf "@%d %a%s@." (Engine.now t.engine) Msg.pp msg extra
  end;
  let flits = Msg.flits msg in
  let hops = t.topo.hops ~src:msg.src ~dst:msg.dst in
  let cat = category_index (Msg.category msg.kind) in
  t.traffic.(cat) <- t.traffic.(cat) + (flits * hops);
  t.messages <- t.messages + 1;
  Stats.bump t.stats t.kind_keys.(Msg.kind_index msg.kind);
  let latency = t.topo.latency ~src:msg.src ~dst:msg.dst in
  let deliver ~delay =
    t.in_flight <- t.in_flight + 1;
    Engine.schedule t.engine ~delay (fun () ->
        let ep = endpoint t msg.dst in
        let now = Engine.now t.engine in
        (* One message per cycle drains the ingress port. *)
        let deliver_at =
          if ep.ingress_free > now then ep.ingress_free else now
        in
        ep.ingress_free <- deliver_at + 1;
        Engine.at t.engine ~time:deliver_at (fun () ->
            t.in_flight <- t.in_flight - 1;
            ep.handler msg))
  in
  match t.fault with
  | None -> deliver ~delay:latency
  | Some f -> (
    match Fault.route f ~now:(Engine.now t.engine) ~latency msg with
    | Fault.Drop -> ()
    | Fault.Deliver delays ->
      List.iteri
        (fun i delay ->
          (* Duplicate copies occupy the fabric too. *)
          if i > 0 then t.traffic.(cat) <- t.traffic.(cat) + (flits * hops);
          deliver ~delay)
        delays)

let in_flight t = t.in_flight
let traffic_flits t cat = t.traffic.(category_index cat)
let total_flits t = Array.fold_left ( + ) 0 t.traffic
let messages_sent t = t.messages
let stats t = t.stats
