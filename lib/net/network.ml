module Msg = Spandex_proto.Msg
module Engine = Spandex_sim.Engine
module Stats = Spandex_util.Stats

type topology = {
  latency : src:int -> dst:int -> int;
  hops : src:int -> dst:int -> int;
  min_latency : int;
}

let flat_topology ~latency =
  {
    latency = (fun ~src:_ ~dst:_ -> latency);
    hops = (fun ~src:_ ~dst:_ -> 1);
    min_latency = latency;
  }

(* Both the latency and the hop count of a link derive from the same
   classification (same group or not): a cross-group message crosses as
   many links as its latency is multiples of the local link latency, so a
   topology with cross_latency = 3 * local_latency accounts 3 flit-hops
   per flit, not a hardcoded 2. *)
let grouped_topology ~group_of ~local_latency ~cross_latency =
  let link ~src ~dst = group_of src = group_of dst in
  let cross_hops =
    max 1 ((cross_latency + (local_latency / 2)) / max 1 local_latency)
  in
  {
    latency =
      (fun ~src ~dst -> if link ~src ~dst then local_latency else cross_latency);
    hops = (fun ~src ~dst -> if link ~src ~dst then 1 else cross_hops);
    min_latency = min local_latency cross_latency;
  }

module Trace = Spandex_sim.Trace

(* Per-shard slice of the network: its engine, and all the mutable
   accounting that slice touches — so a sharded run never has two domains
   writing one counter.  A device's sends are accounted on its own shard
   (a send happens on the sending device's domain); a delivery decrements
   the in-flight counter of the destination's shard.  At settled points
   (round horizons) the per-shard counters sum to exactly the sequential
   totals, because every message is counted once on each side. *)
type shard = {
  sh_engine : Engine.t;
  sh_traffic : int array;  (** flit-hops per category. *)
  sh_stats : Stats.t;
  sh_kind_keys : Stats.key array;  (** per-kind counters, by [Msg.kind_index]. *)
  sh_in_flight : int ref;
  mutable sh_messages : int;
  sh_trace : Trace.t;  (** that engine's sink; [Trace.disabled] when off. *)
  sh_n_in_flight : int;  (** interned trace counter name. *)
  sh_n_fault_drop : int;
  sh_n_fault_dup : int;
  sh_n_fault_delay : int;
}

type cross_send =
  src_shard:int ->
  dst_shard:int ->
  time:int ->
  t0:int ->
  tie:int ->
  Msg.t ->
  Engine.endpoint ->
  unit

type t = {
  topo : topology;
  shards : shard array;
  shard_of : int -> int;  (** device id -> owning shard. *)
  (* Stamped cross-shard deliveries leave through here (the PDES link
     mesh); unused in a single-shard network. *)
  cross : cross_send;
  (* Device ids are small dense ints assigned by [Run], so the endpoint
     table is a plain array indexed by id (grown on register) instead of a
     Hashtbl — no hashing on the delivery hot path. *)
  mutable endpoints : Engine.endpoint option array;
  (* Active fault-injection plan: one [Fault.t] per shard, each charging
     its own shard's stats.  Decisions come from per-(src, dst) link RNG
     streams derived from the plan seed, and a link is only consulted by
     sends from [src] — i.e. from one shard — so the instances never
     race and the decision streams are identical at any shard count. *)
  faults : Fault.t array option;
  (* Model-checker delivery hook: when installed, [send] hands every
     accounted message here instead of enqueueing a [Deliver] event (or
     routing through the fault plan), letting the checker hold it and
     choose the delivery order; held messages re-enter via
     [deliver_held].  Single-shard only. *)
  mutable delivery_hook : (Msg.t -> latency:int -> unit) option;
  (* Per-virtual-channel (request-category) in-flight depth, armed only
     by [enable_vc_depth_metrics] on a single-shard network: the send
     path increments, a wrapper around every endpoint handler decrements.
     Cross-shard would mean two domains racing one array, so sharded runs
     leave it [None] (per-VC *send* counters remain available per
     shard). *)
  mutable vc_depth : int array option;
}

let category_index = function
  | Msg.Cat_ReqV -> 0
  | Msg.Cat_ReqS -> 1
  | Msg.Cat_ReqWT -> 2
  | Msg.Cat_ReqO -> 3
  | Msg.Cat_WB -> 4
  | Msg.Cat_Probe -> 5

let fault t = Option.map (fun a -> a.(0)) t.faults
let faults_enabled t = Option.is_some t.faults
let shard_count t = Array.length t.shards
let shard_of t id = t.shard_of id

let register t ~id handler =
  if id < 0 then invalid_arg "Network.register: negative id";
  if id >= Array.length t.endpoints then begin
    let grown =
      Array.make (max (id + 1) (2 * Array.length t.endpoints)) None
    in
    Array.blit t.endpoints 0 grown 0 (Array.length t.endpoints);
    t.endpoints <- grown
  end;
  match t.endpoints.(id) with
  | Some ep -> ep.Engine.handler <- handler
  | None ->
    (* The destination shard owns the in-flight count: it is decremented
       on delivery (the destination's domain), and incremented either on
       a same-shard send or when the destination injects a cross-shard
       arrival — never from another domain. *)
    let sh = t.shards.(t.shard_of id) in
    t.endpoints.(id) <-
      Some { Engine.handler; ingress_free = 0; in_flight = sh.sh_in_flight }

let endpoint t id =
  if id < 0 || id >= Array.length t.endpoints then
    failwith (Printf.sprintf "Network: unregistered endpoint %d" id)
  else
    match t.endpoints.(id) with
    | Some ep -> ep
    | None -> failwith (Printf.sprintf "Network: unregistered endpoint %d" id)

let send t (msg : Msg.t) =
  (* All accounting lands on the sending device's shard — [send] executes
     on that shard's domain. *)
  let ss = t.shard_of msg.Msg.src in
  let sh = t.shards.(ss) in
  let now = Engine.now sh.sh_engine in
  if Trace.on sh.sh_trace then
    Trace.msg_send sh.sh_trace ~time:now ~src:msg.src ~dst:msg.dst
      ~txn:msg.txn ~kind:(Msg.kind_index msg.kind) ~line:msg.line;
  let flits = Msg.flits msg in
  let hops = t.topo.hops ~src:msg.src ~dst:msg.dst in
  let cat = category_index (Msg.category msg.kind) in
  sh.sh_traffic.(cat) <- sh.sh_traffic.(cat) + (flits * hops);
  sh.sh_messages <- sh.sh_messages + 1;
  Stats.bump sh.sh_stats sh.sh_kind_keys.(Msg.kind_index msg.kind);
  let latency = t.topo.latency ~src:msg.src ~dst:msg.dst in
  (* Closure-free hot path: enqueue a typed [Deliver] event; the engine
     applies the one-message-per-cycle ingress drain and invokes
     [ep.handler] (decrementing [in_flight]) from the [Handle] event. *)
  let ep = endpoint t msg.dst in
  match t.delivery_hook with
  | Some hook ->
    (* The hook (model checker) holds messages arbitrarily long and may
       re-deliver them; detach from the pool. *)
    Msg.keep msg;
    hook msg ~latency
  | None -> (
  match t.faults with
  | None ->
    let ds = t.shard_of msg.Msg.dst in
    if ds = ss then begin
      (match t.vc_depth with Some a -> a.(cat) <- a.(cat) + 1 | None -> ());
      incr ep.Engine.in_flight;
      Engine.deliver sh.sh_engine ~delay:latency msg ep
    end
    else
      (* Stamp the canonical delivery key — the same draw a same-shard
         [Engine.deliver] would perform — and hand the message to the
         cross-shard link; the destination shard injects it (and counts
         it in flight) when it drains the link. *)
      t.cross ~src_shard:ss ~dst_shard:ds ~time:(now + latency) ~t0:now
        ~tie:(Engine.cross_tie sh.sh_engine msg)
        msg ep
  | Some faults -> (
    (* Under fault injection a message can be dropped (retry closures
       re-read it), duplicated (two Deliver events share one record) or
       replayed from a reply cache — blanket-detach instead of tracking
       which path each message takes.  Fault runs are off the measured
       hot path. *)
    Msg.keep msg;
    match Fault.route faults.(ss) ~now ~latency msg with
    | Fault.Drop ->
      if Trace.on sh.sh_trace then
        Trace.instant sh.sh_trace ~time:now ~dev:msg.src
          ~name:sh.sh_n_fault_drop ~txn:msg.txn
          ~arg:(Msg.kind_index msg.kind)
    | Fault.Deliver delays ->
      (match delays with
      | [ delay ] when delay <> latency && Trace.on sh.sh_trace ->
        Trace.instant sh.sh_trace ~time:now ~dev:msg.src
          ~name:sh.sh_n_fault_delay ~txn:msg.txn ~arg:(delay - latency)
      | _ -> ());
      let ds = t.shard_of msg.Msg.dst in
      List.iteri
        (fun i delay ->
          (* Duplicate copies occupy the fabric too. *)
          if i > 0 then begin
            sh.sh_traffic.(cat) <- sh.sh_traffic.(cat) + (flits * hops);
            if Trace.on sh.sh_trace then
              Trace.instant sh.sh_trace ~time:now ~dev:msg.src
                ~name:sh.sh_n_fault_dup ~txn:msg.txn ~arg:delay
          end;
          if ds = ss then begin
            (match t.vc_depth with
            | Some a -> a.(cat) <- a.(cat) + 1
            | None -> ());
            incr ep.Engine.in_flight;
            Engine.deliver sh.sh_engine ~delay msg ep
          end
          else
            (* Faulted deliveries cross shards like any other: the total
               delay never undercuts the nominal latency (extra delay and
               FIFO clamping only add), so [now + delay] respects the
               conservative lookahead.  Each copy draws its own tie —
               exactly the per-copy draws a same-shard [Engine.deliver]
               sequence would make. *)
            t.cross ~src_shard:ss ~dst_shard:ds ~time:(now + delay) ~t0:now
              ~tie:(Engine.cross_tie sh.sh_engine msg)
              msg ep)
        delays))

let set_delivery_hook t hook = t.delivery_hook <- Some hook
let clear_delivery_hook t = t.delivery_hook <- None

let deliver_held t (msg : Msg.t) =
  let ep = endpoint t msg.dst in
  incr ep.Engine.in_flight;
  Engine.deliver t.shards.(0).sh_engine ~delay:0 msg ep

let wrap_handler t ~id wrap =
  let ep = endpoint t id in
  ep.Engine.handler <- wrap ep.Engine.handler

let make_shard engine =
  let stats = Stats.create () in
  let kind_keys =
    let keys = Array.make Msg.num_kinds (Stats.key stats "ReqV") in
    List.iter
      (fun k -> keys.(Msg.kind_index k) <- Stats.key stats (Msg.kind_name k))
      Msg.all_kinds;
    keys
  in
  let trace = Engine.trace engine in
  {
    sh_engine = engine;
    sh_traffic = Array.make 6 0;
    sh_stats = stats;
    sh_kind_keys = kind_keys;
    sh_in_flight = ref 0;
    sh_messages = 0;
    sh_trace = trace;
    sh_n_in_flight = Trace.name trace "net.in_flight";
    sh_n_fault_drop = Trace.name trace "fault.drop";
    sh_n_fault_dup = Trace.name trace "fault.dup";
    sh_n_fault_delay = Trace.name trace "fault.delay";
  }

let no_cross ~src_shard:_ ~dst_shard:_ ~time:_ ~t0:_ ~tie:_ _msg _ep =
  failwith "Network: cross-shard send on a single-shard network"

let create_sharded ?fault engines topo ~shard_of ~cross =
  if Array.length engines < 1 then
    invalid_arg "Network.create_sharded: need at least one shard";
  let shards = Array.map make_shard engines in
  let t =
    {
      topo;
      shards;
      shard_of;
      cross;
      endpoints = Array.make 64 None;
      faults =
        Option.map
          (fun spec ->
            Array.map (fun sh -> Fault.create spec ~stats:sh.sh_stats) shards)
          fault;
      delivery_hook = None;
      vc_depth = None;
    }
  in
  (* Components enqueue outbound messages as typed [Egress] events
     ({!Engine.send_later}) instead of per-message closures; install the
     dispatch target once per shard engine ([send] re-derives the shard
     from the sender id). *)
  Array.iter (fun e -> Engine.set_egress e (send t)) engines;
  t

let create ?fault engine topo =
  create_sharded ?fault [| engine |] topo ~shard_of:(fun _ -> 0)
    ~cross:no_cross

let in_flight t =
  Array.fold_left (fun acc sh -> acc + !(sh.sh_in_flight)) 0 t.shards

let trace_sample t ~time =
  let sh = t.shards.(0) in
  Trace.counter sh.sh_trace ~time ~dev:0 ~name:sh.sh_n_in_flight
    ~value:!(sh.sh_in_flight)

let trace_sample_shard t ~shard ~time =
  let sh = t.shards.(shard) in
  Trace.counter sh.sh_trace ~time ~dev:0 ~name:sh.sh_n_in_flight
    ~value:!(sh.sh_in_flight)

let traffic_flits t cat =
  let i = category_index cat in
  Array.fold_left (fun acc sh -> acc + sh.sh_traffic.(i)) 0 t.shards

let total_flits t =
  Array.fold_left
    (fun acc sh -> acc + Array.fold_left ( + ) 0 sh.sh_traffic)
    0 t.shards

let messages_sent t =
  Array.fold_left (fun acc sh -> acc + sh.sh_messages) 0 t.shards

let stats t = t.shards.(0).sh_stats
let shard_stats t = Array.map (fun sh -> sh.sh_stats) t.shards

(* ----- metrics ------------------------------------------------------------- *)

(* Shard-local probes only: every value read here is owned by [shard]'s
   domain, and the registry itself is sampled from that domain. *)
let register_metrics t ~shard reg =
  let module Metrics = Spandex_obs.Metrics in
  let sh = t.shards.(shard) in
  let labels = [ ("shard", string_of_int shard) ] in
  Metrics.counter reg ~name:"spandex_net_messages_total" ~labels
    ~help:"messages sent from this shard's devices" (fun () ->
      sh.sh_messages);
  Metrics.gauge reg ~name:"spandex_net_in_flight" ~labels
    ~help:"messages sent but not yet delivered (destination-side count)"
    (fun () -> !(sh.sh_in_flight));
  List.iter
    (fun cat ->
      let i = category_index cat in
      Metrics.counter reg ~name:"spandex_net_flits_total"
        ~labels:(("vc", Msg.category_name cat) :: labels)
        ~help:"flit-hops sent per virtual channel (request category)"
        (fun () -> sh.sh_traffic.(i)))
    Msg.all_categories;
  if Option.is_some t.faults then
    List.iter
      (fun what ->
        Metrics.counter reg
          ~name:(Printf.sprintf "spandex_net_fault_%s_total" what)
          ~labels
          ~help:"fault-injection outcomes on the interconnect" (fun () ->
            Stats.get sh.sh_stats ("fault." ^ what)))
      [ "injected"; "drop"; "dup"; "delay"; "reorder"; "exempt" ]

(* Arm the per-VC in-flight depth gauges.  Single-shard networks only
   (cross-shard would race one array from two domains); call after every
   endpoint has registered — later [register] calls on fresh ids would
   bypass the decrement wrapper. *)
let enable_vc_depth_metrics t reg =
  let module Metrics = Spandex_obs.Metrics in
  if Array.length t.shards = 1 && t.vc_depth = None && Metrics.on reg then begin
    let a = Array.make 6 0 in
    t.vc_depth <- Some a;
    Array.iter
      (function
        | None -> ()
        | Some ep ->
          let prev = ep.Engine.handler in
          ep.Engine.handler <-
            (fun msg ->
              let i = category_index (Msg.category msg.Msg.kind) in
              a.(i) <- a.(i) - 1;
              prev msg))
      t.endpoints;
    List.iter
      (fun cat ->
        let i = category_index cat in
        Metrics.gauge reg ~name:"spandex_net_vc_depth"
          ~labels:[ ("vc", Msg.category_name cat) ]
          ~help:"in-flight messages per virtual channel" (fun () -> a.(i)))
      Msg.all_categories
  end
