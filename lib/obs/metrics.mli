(** Time-series metrics registry.

    A registry holds typed series — counters (cumulative, exported with a
    per-interval delta view), gauges, and ratios — each backed by a probe
    closure registered at system-build time.  {!sample} reads every probe
    and appends one (cycle, value) point per series; it is driven by the
    engine's inline sampler on the lookahead/cycle grid, which never
    enqueues events, so event counts and results are bit-identical with
    metrics on or off.

    A registry is single-domain: each PDES shard owns one and samples it
    from its own dispatch loop.  {!merge} combines the per-shard
    registries deterministically after the run.  The {!disabled} sentinel
    makes every operation a cheap no-op. *)

type spec = { sample_every : int  (** cycles between samples (≥ 1). *) }

val default_spec : spec
(** [{ sample_every = 64 }] — the trace sink's occupancy cadence. *)

type kind = Counter | Gauge | Ratio

val kind_name : kind -> string

type t

val disabled : t
(** Registration and sampling are no-ops; exports render nothing. *)

val create : spec -> t

val on : t -> bool
val sample_every : t -> int

(* ----- registration -------------------------------------------------------- *)

val counter :
  t ->
  name:string ->
  ?labels:(string * string) list ->
  ?help:string ->
  (unit -> int) ->
  unit
(** Register a cumulative counter probe (monotonically non-decreasing;
    name it with a [_total] suffix per OpenMetrics convention).  The CSV
    and Chrome exports additionally derive the per-interval delta. *)

val gauge :
  t ->
  name:string ->
  ?labels:(string * string) list ->
  ?help:string ->
  (unit -> int) ->
  unit
(** Register an instantaneous-level probe (occupancy, queue depth…). *)

val ratio :
  t ->
  name:string ->
  ?labels:(string * string) list ->
  ?help:string ->
  (unit -> int * int) ->
  unit
(** Register a probe returning (numerator, denominator); exported as the
    float quotient (0 when the denominator is 0). *)

(* ----- sampling ------------------------------------------------------------ *)

val sample : t -> time:int -> unit
(** Read every probe and append one point per series at cycle [time].
    Called from the engine's inline sampler; allocation-light (amortized
    column growth only) and never schedules events. *)

(* ----- merge & introspection ----------------------------------------------- *)

val merge : t list -> t
(** Combine registries (per-shard sinks) into one: series are copied in
    registry-then-registration order; two series with the same (name,
    labels, kind) identity merge their points by time.  Disabled inputs
    are skipped; all-disabled merges to {!disabled}. *)

val dump :
  t -> (string * (string * string) list * kind * (int * int * int) array) list
(** Every series as (name, labels, kind, [(cycle, num, den)] samples), in
    registration order — the test-facing view. *)

val num_series : t -> int
val num_samples : t -> int

(* ----- export -------------------------------------------------------------- *)

val export_openmetrics : t -> Buffer.t -> unit
(** OpenMetrics text: one family per metric name ([# TYPE]/[# HELP] once,
    ratio families export as gauges), each sample's timestamp field
    carrying the simulated cycle, terminated by [# EOF].  Names are
    sanitized to [[a-zA-Z_:][a-zA-Z0-9_:]*]; device identities belong in
    labels. *)

val export_csv : t -> Buffer.t -> unit
(** Long-format CSV: [cycle,metric,labels,kind,value,delta] — [delta] is
    the since-previous-sample difference for counters, empty otherwise. *)

val chrome_counter_events : t -> emit:(string -> unit) -> unit
(** Render every sample as a Chrome trace-event counter ("ph":"C") JSON
    object for {!Spandex_sim.Trace.export_chrome}'s [~extra] hook.
    Counters emit per-interval deltas (a rate track); gauges and ratios
    emit the sampled value. *)
