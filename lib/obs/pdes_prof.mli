(** PDES shard-profile analysis: turn the backend's raw per-shard
    counters ({!Spandex_sim.Pdes.shard_profile}) into the imbalance
    report the ROADMAP's scaling work reads — per-shard load, the
    execute / barrier-wait / inbox-drain wall split, SPSC back-pressure,
    and which shard dominates. *)

type report = {
  r_shards : Spandex_sim.Pdes.shard_profile array;
  r_total_events : int;
  r_rounds : int;  (** max over shards (they agree on completed runs). *)
  r_barrier_wait_fraction : float;
      (** summed barrier wall time / summed shard wall time, in [0, 1];
          0 when no clock was injected (untimed profiles). *)
  r_load_max_min : float;
      (** busiest / idlest shard by events; [infinity] when a shard
          dispatched nothing. *)
  r_load_max_mean : float;  (** busiest shard / mean shard load. *)
  r_dominant_shard : int;  (** argmax of per-shard events. *)
  r_timed : bool;  (** true when any wall-time field is non-zero. *)
}

val shard_desc : ?partition:(string * int) array -> int -> string
(** Human name for a shard: the components placed on it, from a
    [Run.result.partition] table.  Without a table (aggregates across
    cells whose partitions differ) shards are just numbered slots — the
    banked partition pins no fixed home complex to shard 0. *)

val add :
  Spandex_sim.Pdes.shard_profile array ->
  Spandex_sim.Pdes.shard_profile array ->
  Spandex_sim.Pdes.shard_profile array
(** Elementwise sum, for aggregating profiles across sweep cells; arrays
    of different shard counts pad with zeros.  Per-round curves are not
    commensurable across runs, so the aggregate drops them (empty
    [sp_round_events]). *)

val analyze : Spandex_sim.Pdes.shard_profile array -> report
(** Raises [Invalid_argument] on an empty array. *)

val barrier_wait_fraction : Spandex_sim.Pdes.shard_profile array -> float

val pp : ?partition:(string * int) array -> Format.formatter -> report -> unit
(** The [spandex_cli profile] table: one row per shard (events, events
    per round, busy-round share, wall split, stalls, link depth, GC),
    then the imbalance and barrier-wait summary lines; [?partition]
    names the dominant shard's components. *)
