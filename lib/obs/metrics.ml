(* Time-series metrics registry.

   Probes are registered once at system-build time and read by the
   engine's inline sampler on the lookahead/cycle grid — the same
   zero-event trick as the trace sink's occupancy sampler, so sampling
   never enqueues events and a metrics-on run is bit-identical to a
   metrics-off run.  Every sample is (cycle, value) appended to a
   growable column per series; export renders the columns as OpenMetrics
   text, CSV, or Chrome trace-event counter tracks.

   A registry is single-domain: each PDES shard owns one and samples it
   from its own dispatch loop; [merge] combines them after the run. *)

type spec = { sample_every : int }

let default_spec = { sample_every = 64 }

type kind = Counter | Gauge | Ratio

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Ratio -> "ratio"

type series = {
  sr_name : string;
  sr_labels : (string * string) list;
  sr_help : string;
  sr_kind : kind;
  sr_probe : unit -> int * int;  (* (value, 1) or (num, den) for Ratio. *)
  mutable sr_times : int array;
  mutable sr_num : int array;
  mutable sr_den : int array;
  mutable sr_len : int;
}

type t = {
  enabled : bool;
  spec : spec;
  mutable series : series array;
  mutable n_series : int;
}

let no_series : series array = [||]

let disabled =
  { enabled = false; spec = default_spec; series = no_series; n_series = 0 }

let create spec =
  if spec.sample_every < 1 then
    invalid_arg "Metrics.create: sample_every must be >= 1";
  { enabled = true; spec; series = no_series; n_series = 0 }

let on t = t.enabled
let sample_every t = t.spec.sample_every

let dummy_series =
  {
    sr_name = "";
    sr_labels = [];
    sr_help = "";
    sr_kind = Gauge;
    sr_probe = (fun () -> (0, 1));
    sr_times = [||];
    sr_num = [||];
    sr_den = [||];
    sr_len = 0;
  }

let add_series t s =
  if t.n_series = Array.length t.series then begin
    let grown =
      Array.make (max 8 (2 * Array.length t.series)) dummy_series
    in
    Array.blit t.series 0 grown 0 t.n_series;
    t.series <- grown
  end;
  t.series.(t.n_series) <- s;
  t.n_series <- t.n_series + 1

let fresh_series ~name ~labels ~help ~kind probe =
  {
    sr_name = name;
    sr_labels = labels;
    sr_help = help;
    sr_kind = kind;
    sr_probe = probe;
    sr_times = Array.make 64 0;
    sr_num = Array.make 64 0;
    sr_den = Array.make 64 0;
    sr_len = 0;
  }

let register t ~name ~labels ~help ~kind probe =
  if t.enabled then add_series t (fresh_series ~name ~labels ~help ~kind probe)

let counter t ~name ?(labels = []) ?(help = "") probe =
  register t ~name ~labels ~help ~kind:Counter (fun () -> (probe (), 1))

let gauge t ~name ?(labels = []) ?(help = "") probe =
  register t ~name ~labels ~help ~kind:Gauge (fun () -> (probe (), 1))

let ratio t ~name ?(labels = []) ?(help = "") probe =
  register t ~name ~labels ~help ~kind:Ratio probe

(* ----- sampling ------------------------------------------------------------ *)

let ensure_capacity s =
  if s.sr_len = Array.length s.sr_times then begin
    let n = 2 * Array.length s.sr_times in
    let grow a =
      let g = Array.make n 0 in
      Array.blit a 0 g 0 s.sr_len;
      g
    in
    s.sr_times <- grow s.sr_times;
    s.sr_num <- grow s.sr_num;
    s.sr_den <- grow s.sr_den
  end

let sample t ~time =
  if t.enabled then
    for i = 0 to t.n_series - 1 do
      let s = t.series.(i) in
      ensure_capacity s;
      let num, den = s.sr_probe () in
      let l = s.sr_len in
      s.sr_times.(l) <- time;
      s.sr_num.(l) <- num;
      s.sr_den.(l) <- den;
      s.sr_len <- l + 1
    done

(* ----- merge --------------------------------------------------------------- *)

let same_identity a b =
  a.sr_name = b.sr_name && a.sr_labels = b.sr_labels && a.sr_kind = b.sr_kind

(* Merge [b]'s samples into a fresh copy of [a], ordered by time (each
   input is already time-sorted; ties keep [a] first).  Used only when
   two registries carry the same (name, labels) identity — our wiring
   labels per-shard series distinctly, so this is the uncommon path. *)
let merge_series a b =
  let n = a.sr_len + b.sr_len in
  let times = Array.make (max 1 n) 0 in
  let num = Array.make (max 1 n) 0 in
  let den = Array.make (max 1 n) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < a.sr_len || !j < b.sr_len do
    let take_a =
      !j >= b.sr_len
      || (!i < a.sr_len && a.sr_times.(!i) <= b.sr_times.(!j))
    in
    let src, idx = if take_a then (a, !i) else (b, !j) in
    times.(!k) <- src.sr_times.(idx);
    num.(!k) <- src.sr_num.(idx);
    den.(!k) <- src.sr_den.(idx);
    incr k;
    if take_a then incr i else incr j
  done;
  { a with sr_times = times; sr_num = num; sr_den = den; sr_len = n }

let copy_series s =
  {
    s with
    sr_times = Array.sub s.sr_times 0 s.sr_len;
    sr_num = Array.sub s.sr_num 0 s.sr_len;
    sr_den = Array.sub s.sr_den 0 s.sr_len;
  }

let merge ts =
  let live = List.filter (fun t -> t.enabled) ts in
  match live with
  | [] -> disabled
  | first :: _ ->
    let out = create first.spec in
    List.iter
      (fun t ->
        for i = 0 to t.n_series - 1 do
          let s = t.series.(i) in
          let merged = ref false in
          for j = 0 to out.n_series - 1 do
            if (not !merged) && same_identity out.series.(j) s then begin
              out.series.(j) <- merge_series out.series.(j) s;
              merged := true
            end
          done;
          if not !merged then add_series out (copy_series s)
        done)
      live;
    out

(* ----- introspection ------------------------------------------------------- *)

let iter_series t ~f =
  for i = 0 to t.n_series - 1 do
    f t.series.(i)
  done

let dump t =
  let acc = ref [] in
  iter_series t ~f:(fun s ->
      let samples =
        Array.init s.sr_len (fun i ->
            (s.sr_times.(i), s.sr_num.(i), s.sr_den.(i)))
      in
      acc := (s.sr_name, s.sr_labels, s.sr_kind, samples) :: !acc);
  List.rev !acc

let num_series t = t.n_series

let num_samples t =
  let n = ref 0 in
  iter_series t ~f:(fun s -> n := !n + s.sr_len);
  !n

(* ----- export -------------------------------------------------------------- *)

(* OpenMetrics metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* — device
   identities go in labels, and anything else is mapped to '_'. *)
let sanitize_name n =
  let ok i c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || c = '_' || c = ':'
    || (i > 0 && c >= '0' && c <= '9')
  in
  let b = Bytes.of_string n in
  Bytes.iteri (fun i c -> if not (ok i c) then Bytes.set b i '_') b;
  if Bytes.length b = 0 then "_" else Bytes.to_string b

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let labels_openmetrics labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_name k)
               (escape_label_value v))
           labels)
    ^ "}"

let value_str s i =
  match s.sr_kind with
  | Counter | Gauge -> string_of_int s.sr_num.(i)
  | Ratio ->
    if s.sr_den.(i) = 0 then "0"
    else
      Printf.sprintf "%g"
        (float_of_int s.sr_num.(i) /. float_of_int s.sr_den.(i))

(* OpenMetrics text: one family per distinct metric name (TYPE/HELP once,
   in first-registration order), every sample with the simulated cycle in
   the timestamp field, '# EOF' terminator.  Ratio series export as
   gauges (OpenMetrics has no ratio type). *)
let export_openmetrics t buf =
  let emitted = Hashtbl.create 16 in
  let families = ref [] in
  iter_series t ~f:(fun s ->
      let fam = sanitize_name s.sr_name in
      if not (Hashtbl.mem emitted fam) then begin
        Hashtbl.add emitted fam ();
        families := fam :: !families
      end);
  List.iter
    (fun fam ->
      let om_type = ref "gauge" in
      let help = ref "" in
      iter_series t ~f:(fun s ->
          if sanitize_name s.sr_name = fam then begin
            if s.sr_kind = Counter then om_type := "counter";
            if !help = "" then help := s.sr_help
          end);
      (* An OpenMetrics counter family is named without the mandatory
         _total sample suffix. *)
      let base =
        if !om_type = "counter" && Filename.check_suffix fam "_total" then
          String.sub fam 0 (String.length fam - String.length "_total")
        else fam
      in
      Printf.bprintf buf "# TYPE %s %s\n" base !om_type;
      if !help <> "" then
        Printf.bprintf buf "# HELP %s %s\n" base (escape_label_value !help);
      iter_series t ~f:(fun s ->
          if sanitize_name s.sr_name = fam then
            let ls = labels_openmetrics s.sr_labels in
            for i = 0 to s.sr_len - 1 do
              Printf.bprintf buf "%s%s %s %d\n" fam ls (value_str s i)
                s.sr_times.(i)
            done))
    (List.rev !families);
  Buffer.add_string buf "# EOF\n"

(* CSV, long format: one row per sample.  Counters also carry the delta
   since their previous sample (the "counter-delta" view). *)
let export_csv t buf =
  Buffer.add_string buf "cycle,metric,labels,kind,value,delta\n";
  iter_series t ~f:(fun s ->
      let labels =
        String.concat ";"
          (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) s.sr_labels)
      in
      for i = 0 to s.sr_len - 1 do
        let delta =
          match s.sr_kind with
          | Counter ->
            string_of_int
              (s.sr_num.(i) - if i = 0 then 0 else s.sr_num.(i - 1))
          | Gauge | Ratio -> ""
        in
        Printf.bprintf buf "%d,%s,%s,%s,%s,%s\n" s.sr_times.(i) s.sr_name
          labels (kind_name s.sr_kind) (value_str s i) delta
      done)

(* Chrome trace-event counter tracks ("ph":"C"), for merging into the
   Perfetto export via [Trace.export_chrome ~extra].  Counters emit the
   per-interval delta — a rate track; gauges and ratios emit the sampled
   value. *)
let chrome_counter_events t ~emit =
  let b = Buffer.create 64 in
  iter_series t ~f:(fun s ->
      let name =
        match s.sr_labels with
        | [] -> s.sr_name
        | ls ->
          s.sr_name ^ "{"
          ^ String.concat ","
              (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) ls)
          ^ "}"
      in
      let jname =
        Buffer.clear b;
        Buffer.add_char b '"';
        String.iter
          (fun c ->
            match c with
            | '"' -> Buffer.add_string b "\\\""
            | '\\' -> Buffer.add_string b "\\\\"
            | c when Char.code c < 0x20 ->
              Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
            | c -> Buffer.add_char b c)
          name;
        Buffer.add_char b '"';
        Buffer.contents b
      in
      for i = 0 to s.sr_len - 1 do
        let v =
          match s.sr_kind with
          | Counter ->
            string_of_int
              (s.sr_num.(i) - if i = 0 then 0 else s.sr_num.(i - 1))
          | Gauge | Ratio -> value_str s i
        in
        emit
          (Printf.sprintf
             "{\"ph\":\"C\",\"name\":%s,\"pid\":0,\"ts\":%d,\"args\":{\"value\":%s}}"
             jname s.sr_times.(i) v)
      done)
