module Pdes = Spandex_sim.Pdes

type report = {
  r_shards : Pdes.shard_profile array;
  r_total_events : int;
  r_rounds : int;
  r_barrier_wait_fraction : float;
  r_load_max_min : float;
  r_load_max_mean : float;
  r_dominant_shard : int;
  r_timed : bool;
}

(* Under the banked partition no shard is a fixed "home complex": describe
   a shard by the components actually placed on it (from
   [Run.result.partition]) when a table is available. *)
let shard_desc ?partition s =
  match partition with
  | None -> Printf.sprintf "partition slot %d" s
  | Some table ->
    let names =
      Array.to_list table
      |> List.filter_map (fun (n, sh) -> if sh = s then Some n else None)
    in
    (match names with
    | [] -> "no components placed"
    | names -> String.concat ", " names)

let zero_profile =
  {
    Pdes.sp_events = 0;
    sp_rounds = 0;
    sp_busy_rounds = 0;
    sp_exec_s = 0.;
    sp_barrier_s = 0.;
    sp_drain_s = 0.;
    sp_full_stalls = 0;
    sp_max_link_depth = 0;
    sp_minor_words = 0.;
    sp_major_collections = 0;
    sp_max_round_events = 0;
    sp_round_events = [||];
    sp_round_stride = 1;
  }

(* Elementwise sum of two per-shard profile arrays (cells with different
   effective shard counts pad with zeros).  The per-round curves of
   different runs are not commensurable bucket-by-bucket, so the
   aggregate drops them and keeps only the scalar load statistics. *)
let add a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i ->
      let g arr = if i < Array.length arr then arr.(i) else zero_profile in
      let x = g a and y = g b in
      {
        Pdes.sp_events = x.Pdes.sp_events + y.Pdes.sp_events;
        sp_rounds = x.Pdes.sp_rounds + y.Pdes.sp_rounds;
        sp_busy_rounds = x.Pdes.sp_busy_rounds + y.Pdes.sp_busy_rounds;
        sp_exec_s = x.Pdes.sp_exec_s +. y.Pdes.sp_exec_s;
        sp_barrier_s = x.Pdes.sp_barrier_s +. y.Pdes.sp_barrier_s;
        sp_drain_s = x.Pdes.sp_drain_s +. y.Pdes.sp_drain_s;
        sp_full_stalls = x.Pdes.sp_full_stalls + y.Pdes.sp_full_stalls;
        sp_max_link_depth =
          max x.Pdes.sp_max_link_depth y.Pdes.sp_max_link_depth;
        sp_minor_words = x.Pdes.sp_minor_words +. y.Pdes.sp_minor_words;
        sp_major_collections =
          x.Pdes.sp_major_collections + y.Pdes.sp_major_collections;
        sp_max_round_events =
          max x.Pdes.sp_max_round_events y.Pdes.sp_max_round_events;
        sp_round_events = [||];
        sp_round_stride = 1;
      })

let shard_wall (p : Pdes.shard_profile) =
  p.Pdes.sp_exec_s +. p.Pdes.sp_barrier_s +. p.Pdes.sp_drain_s

let barrier_wait_fraction shards =
  let barrier =
    Array.fold_left (fun a p -> a +. p.Pdes.sp_barrier_s) 0. shards
  in
  let total = Array.fold_left (fun a p -> a +. shard_wall p) 0. shards in
  if total <= 0. then 0. else barrier /. total

let analyze shards =
  let n = Array.length shards in
  if n = 0 then invalid_arg "Pdes_prof.analyze: empty profile";
  let total_events =
    Array.fold_left (fun a p -> a + p.Pdes.sp_events) 0 shards
  in
  let rounds = Array.fold_left (fun a p -> max a p.Pdes.sp_rounds) 0 shards in
  let ev_max = ref min_int and ev_min = ref max_int and dom = ref 0 in
  Array.iteri
    (fun i p ->
      let e = p.Pdes.sp_events in
      if e > !ev_max then begin
        ev_max := e;
        dom := i
      end;
      if e < !ev_min then ev_min := e)
    shards;
  let mean = float_of_int total_events /. float_of_int n in
  {
    r_shards = shards;
    r_total_events = total_events;
    r_rounds = rounds;
    r_barrier_wait_fraction = barrier_wait_fraction shards;
    r_load_max_min =
      (if !ev_min > 0 then float_of_int !ev_max /. float_of_int !ev_min
       else Float.infinity);
    r_load_max_mean =
      (if mean > 0. then float_of_int !ev_max /. mean else 0.);
    r_dominant_shard = !dom;
    r_timed =
      Array.exists (fun p -> shard_wall p > 0.) shards;
  }

let pp ?partition fmt r =
  let n = Array.length r.r_shards in
  Format.fprintf fmt
    "PDES shard profile: %d shard%s, %d rounds, %d events@." n
    (if n = 1 then "" else "s")
    r.r_rounds r.r_total_events;
  Format.fprintf fmt
    "  shard      events  ev/round  busy%%   exec(s)  barrier(s)  drain(s)  \
     stalls  max-depth  minor(Mw)@.";
  Array.iteri
    (fun i p ->
      let rounds = max 1 p.Pdes.sp_rounds in
      Format.fprintf fmt
        "  %4d%s %11d  %8.1f  %5.1f  %8.3f  %10.3f  %8.3f  %6d  %9d  %9.2f@."
        i
        (if i = r.r_dominant_shard then "*" else " ")
        p.Pdes.sp_events
        (float_of_int p.Pdes.sp_events /. float_of_int rounds)
        (100. *. float_of_int p.Pdes.sp_busy_rounds /. float_of_int rounds)
        p.Pdes.sp_exec_s p.Pdes.sp_barrier_s p.Pdes.sp_drain_s
        p.Pdes.sp_full_stalls p.Pdes.sp_max_link_depth
        (p.Pdes.sp_minor_words /. 1e6))
    r.r_shards;
  let max_min =
    if Float.is_finite r.r_load_max_min then
      Printf.sprintf "%.2fx" r.r_load_max_min
    else "inf"
  in
  Format.fprintf fmt
    "  imbalance: max/min %s, max/mean %.2fx — dominant shard %d (%s)@."
    max_min r.r_load_max_mean r.r_dominant_shard
    (shard_desc ?partition r.r_dominant_shard);
  if r.r_timed then
    Format.fprintf fmt "  barrier-wait: %.1f%% of summed shard wall time@."
      (100. *. r.r_barrier_wait_fraction)
  else
    Format.fprintf fmt
      "  barrier-wait: n/a (no wall clock injected into this run)@."
