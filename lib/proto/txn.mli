(** Transaction identifiers, unique within a simulation.

    Responses echo the transaction id of the request they answer; forwarded
    requests preserve the original id so the remote owner's direct response
    reaches the right MSHR entry.  The counter is domain-local state: every
    simulation resets it on entry and runs on a single domain, so ids are
    deterministic per simulation and independent simulations can run on
    separate domains in parallel (see [Spandex_system.Sweep]). *)

val fresh : unit -> int

val reset : unit -> unit
(** Reset the calling domain's counter (between independent simulations,
    for reproducibility of logged ids; correctness never depends on it). *)

type allocator
(** A per-device id source: ids are [device_id + k * 4096], unique across
    devices (ids are small dense ints < 4096) and — unlike {!fresh} —
    independent of the global event interleave, so a device hands out the
    same ids whether the simulation runs on one domain or is sharded
    across several (PDES backend). *)

val allocator : id:int -> allocator
(** Raises [Invalid_argument] when [id] is outside [0, 4096). *)

val next : allocator -> int
