(** Transaction identifiers, unique within a simulation.

    Responses echo the transaction id of the request they answer; forwarded
    requests preserve the original id so the remote owner's direct response
    reaches the right MSHR entry.  The counter is domain-local state: every
    simulation resets it on entry and runs on a single domain, so ids are
    deterministic per simulation and independent simulations can run on
    separate domains in parallel (see [Spandex_system.Sweep]). *)

val fresh : unit -> int

val reset : unit -> unit
(** Reset the calling domain's counter (between independent simulations,
    for reproducibility of logged ids; correctness never depends on it). *)
