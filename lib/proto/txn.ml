(* Domain-local, not a plain global: the sweep runner executes independent
   simulations on worker domains, and a shared counter would both race and
   break the bit-identical-to-sequential guarantee.  Each simulation calls
   [reset] first, so ids depend only on the simulation's own event order,
   never on which domain runs it. *)
let counter_key = Domain.DLS.new_key (fun () -> ref 0)

let fresh () =
  let counter = Domain.DLS.get counter_key in
  incr counter;
  !counter

let reset () = Domain.DLS.get counter_key := 0

(* Per-device allocators make an id depend only on the issuing device and
   how many ids that device has drawn — never on the global interleave of
   events across devices.  That is what lets the PDES backend, which runs
   devices on different domains, hand out the same ids as the sequential
   wheel.  Ids are [id + k * 4096]: disjoint per device as long as device
   ids stay below 4096 (they are small dense ints), and [k] starts at 1 so
   no allocator ever returns its bare device id twice. *)
type allocator = { id : int; mutable next : int }

let allocator ~id =
  if id < 0 || id >= 4096 then invalid_arg "Txn.allocator: id out of range";
  { id; next = 1 }

let next a =
  let k = a.next in
  a.next <- k + 1;
  a.id + (k lsl 12)
