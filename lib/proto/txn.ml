(* Domain-local, not a plain global: the sweep runner executes independent
   simulations on worker domains, and a shared counter would both race and
   break the bit-identical-to-sequential guarantee.  Each simulation calls
   [reset] first, so ids depend only on the simulation's own event order,
   never on which domain runs it. *)
let counter_key = Domain.DLS.new_key (fun () -> ref 0)

let fresh () =
  let counter = Domain.DLS.get counter_key in
  incr counter;
  !counter

let reset () = Domain.DLS.get counter_key := 0
