module Mask = Spandex_util.Mask

(* Index loops instead of [Mask.iter ~f]: these run on the per-message hot
   path and a capturing closure per call is measurable allocation. *)
let pack ~mask ~full =
  let out = Array.make (Mask.count mask) 0 in
  let i = ref 0 in
  for w = 0 to Array.length full - 1 do
    if Mask.mem mask w then begin
      out.(!i) <- full.(w);
      incr i
    end
  done;
  out

let unpack_into ~mask ~values ~full =
  let i = ref 0 in
  for w = 0 to Array.length full - 1 do
    if Mask.mem mask w then begin
      full.(w) <- values.(!i);
      incr i
    end
  done

let iter ~mask ~values ~f =
  let n = Array.length values in
  let i = ref 0 in
  let w = ref 0 in
  while !i < n do
    if Mask.mem mask !w then begin
      f ~word:!w ~value:values.(!i);
      incr i
    end;
    incr w
  done

let extract ~mask ~values ~sub =
  assert (Mask.subset sub mask);
  let out = Array.make (Mask.count sub) 0 in
  let j = ref 0 in
  iter ~mask ~values ~f:(fun ~word ~value ->
      if Mask.mem sub word then begin
        out.(!j) <- value;
        incr j
      end);
  out

let value_at ~mask ~values ~word =
  assert (Mask.mem mask word);
  let result = ref 0 in
  iter ~mask ~values ~f:(fun ~word:w ~value ->
      if w = word then result := value);
  !result

(* An arbitrary but fixed hash of the address; distinct per word with very
   high probability, cheap, and stable across runs. *)
let init_word ~line ~word =
  let h = (line * 0x9E3779B1) + (word * 0x85EBCA77) in
  h land 0x3FFFFFFF lor 0x40000000

let fresh_line ~line =
  Array.init Addr.words_per_line (fun word -> init_word ~line ~word)
