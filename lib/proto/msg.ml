module Mask = Spandex_util.Mask

type device_id = int

type req_kind = ReqV | ReqS | ReqWT | ReqO | ReqWTdata | ReqOdata | ReqWB

type rsp_kind =
  | RspV
  | RspS
  | RspWT
  | RspO
  | RspWTdata
  | RspOdata
  | RspWB
  | RspRvkO
  | Ack
  | Nack

type probe_kind = RvkO | Inv
type kind = Req of req_kind | Rsp of rsp_kind | Probe of probe_kind
type payload = No_data | Data of int array

type t = {
  txn : int;
  kind : kind;
  line : int;
  mask : Mask.t;
  demand : Mask.t;
  payload : payload;
  src : device_id;
  dst : device_id;
  requestor : device_id;
  fwd : bool;
  amo : Amo.t option;
}

(* Per-message construction checks (payload length, demand ⊆ mask) run on
   every send, so bench runs turn them off: default on (tests exercise
   them under dune runtest), SPANDEX_CHECKS=0/false/off in the environment
   or [set_checks false] (used by `spandex_cli bench`) disables them.
   Read eagerly at module init and only mutated before domains spawn, so
   parallel sweeps see a settled value. *)
let checks =
  ref
    (match Sys.getenv_opt "SPANDEX_CHECKS" with
    | Some ("0" | "false" | "off") -> false
    | Some _ | None -> true)

let set_checks on = checks := on
let checks_enabled () = !checks

let make ~txn ~kind ~line ~mask ?demand ?(payload = No_data) ~src ~dst
    ?requestor ?(fwd = false) ?amo () =
  let demand = match demand with Some d -> d | None -> mask in
  if !checks then begin
    (match payload with
    | No_data -> ()
    | Data values ->
      if Array.length values <> Mask.count mask then
        invalid_arg
          (Printf.sprintf "Msg.make: %d values for a %d-word mask"
             (Array.length values) (Mask.count mask)));
    if not (Mask.subset demand mask) then
      invalid_arg "Msg.make: demand not a subset of mask"
  end;
  let requestor = match requestor with Some r -> r | None -> src in
  { txn; kind; line; mask; demand; payload; src; dst; requestor; fwd; amo }

let rsp_of_req = function
  | ReqV -> RspV
  | ReqS -> RspS
  | ReqWT -> RspWT
  | ReqO -> RspO
  | ReqWTdata -> RspWTdata
  | ReqOdata -> RspOdata
  | ReqWB -> RspWB

let carries_data t = match t.payload with No_data -> false | Data _ -> true

let kind_needs_data = function
  | Req (ReqV | ReqOdata | ReqS) | Probe RvkO -> true
  | Req (ReqO | ReqWT | ReqWTdata | ReqWB) | Probe Inv | Rsp _ -> false

type category = Cat_ReqV | Cat_ReqS | Cat_ReqWT | Cat_ReqO | Cat_WB | Cat_Probe

let category = function
  | Req ReqV | Rsp RspV | Rsp Nack -> Cat_ReqV
  | Req ReqS | Rsp RspS -> Cat_ReqS
  | Req ReqWT | Req ReqWTdata | Rsp RspWT | Rsp RspWTdata -> Cat_ReqWT
  | Req ReqO | Req ReqOdata | Rsp RspO | Rsp RspOdata -> Cat_ReqO
  | Req ReqWB | Rsp RspWB -> Cat_WB
  | Probe RvkO | Probe Inv | Rsp RspRvkO | Rsp Ack -> Cat_Probe

let category_name = function
  | Cat_ReqV -> "ReqV"
  | Cat_ReqS -> "ReqS"
  | Cat_ReqWT -> "ReqWT"
  | Cat_ReqO -> "ReqO"
  | Cat_WB -> "WB"
  | Cat_Probe -> "Probe"

let all_categories =
  [ Cat_ReqV; Cat_ReqS; Cat_ReqWT; Cat_ReqO; Cat_WB; Cat_Probe ]

let flit_bytes = 16

let flits t =
  match t.payload with
  | No_data -> 1
  | Data values ->
    let bytes = Array.length values * Addr.word_bytes in
    1 + ((bytes + flit_bytes - 1) / flit_bytes)

let req_kind_name = function
  | ReqV -> "ReqV"
  | ReqS -> "ReqS"
  | ReqWT -> "ReqWT"
  | ReqO -> "ReqO"
  | ReqWTdata -> "ReqWT+data"
  | ReqOdata -> "ReqO+data"
  | ReqWB -> "ReqWB"

let rsp_kind_name = function
  | RspV -> "RspV"
  | RspS -> "RspS"
  | RspWT -> "RspWT"
  | RspO -> "RspO"
  | RspWTdata -> "RspWT+data"
  | RspOdata -> "RspO+data"
  | RspWB -> "RspWB"
  | RspRvkO -> "RspRvkO"
  | Ack -> "Ack"
  | Nack -> "Nack"

let probe_kind_name = function RvkO -> "RvkO" | Inv -> "Inv"

let kind_name = function
  | Req k -> req_kind_name k
  | Rsp k -> rsp_kind_name k
  | Probe k -> probe_kind_name k

let pp_kind fmt k = Format.pp_print_string fmt (kind_name k)

(* Dense indexings so per-kind tables (traffic counters, interned stat
   keys) can be arrays instead of string-keyed maps. *)

let req_kind_index = function
  | ReqV -> 0
  | ReqS -> 1
  | ReqWT -> 2
  | ReqO -> 3
  | ReqWTdata -> 4
  | ReqOdata -> 5
  | ReqWB -> 6

let all_req_kinds = [ ReqV; ReqS; ReqWT; ReqO; ReqWTdata; ReqOdata; ReqWB ]

let num_kinds = 19

let kind_index = function
  | Req k -> req_kind_index k
  | Rsp RspV -> 7
  | Rsp RspS -> 8
  | Rsp RspWT -> 9
  | Rsp RspO -> 10
  | Rsp RspWTdata -> 11
  | Rsp RspOdata -> 12
  | Rsp RspWB -> 13
  | Rsp RspRvkO -> 14
  | Rsp Ack -> 15
  | Rsp Nack -> 16
  | Probe RvkO -> 17
  | Probe Inv -> 18

let all_kinds =
  List.map (fun k -> Req k) all_req_kinds
  @ List.map
      (fun k -> Rsp k)
      [ RspV; RspS; RspWT; RspO; RspWTdata; RspOdata; RspWB; RspRvkO; Ack; Nack ]
  @ [ Probe RvkO; Probe Inv ]

let pp fmt t =
  let data =
    match t.payload with
    | No_data -> if t.fwd then " fwd" else ""
    | Data values ->
      let vs =
        if Array.length values <= 4 then
          String.concat ","
            (List.map string_of_int (Array.to_list values))
        else Printf.sprintf "%d words" (Array.length values)
      in
      Printf.sprintf "%s +data[%s]" (if t.fwd then " fwd" else "") vs
  in
  Format.fprintf fmt "[txn=%d %a line=%d mask=%a %d->%d req=%d%s]" t.txn
    pp_kind t.kind t.line
    (Mask.pp ~words:Addr.words_per_line)
    t.mask t.src t.dst t.requestor data

module Fp = Spandex_util.Fingerprint

(* Canonical message encoding for the model checker's state fingerprint:
   everything that determines the receiver's behavior, with the txn id
   remapped through the fingerprint's canonical table. *)
let fingerprint fp t =
  Fp.tag fp "m";
  Fp.txn fp t.txn;
  Fp.int fp (kind_index t.kind);
  Fp.int fp t.line;
  Fp.int fp (t.mask :> int);
  Fp.int fp (t.demand :> int);
  Fp.int fp t.src;
  Fp.int fp t.dst;
  Fp.int fp t.requestor;
  Fp.bool fp t.fwd;
  (match t.amo with
  | None -> Fp.int fp (-1)
  | Some Amo.Read -> Fp.int fp 0
  | Some (Amo.Exch v) ->
    Fp.int fp 1;
    Fp.int fp v
  | Some (Amo.Add v) ->
    Fp.int fp 2;
    Fp.int fp v
  | Some (Amo.Max v) ->
    Fp.int fp 3;
    Fp.int fp v
  | Some (Amo.Cas { expected; desired }) ->
    Fp.int fp 4;
    Fp.int fp expected;
    Fp.int fp desired);
  match t.payload with
  | No_data -> Fp.int fp 0
  | Data values ->
    Fp.int fp (Array.length values);
    Fp.array fp values
