module Mask = Spandex_util.Mask

type device_id = int

type req_kind = ReqV | ReqS | ReqWT | ReqO | ReqWTdata | ReqOdata | ReqWB

type rsp_kind =
  | RspV
  | RspS
  | RspWT
  | RspO
  | RspWTdata
  | RspOdata
  | RspWB
  | RspRvkO
  | Ack
  | Nack

type probe_kind = RvkO | Inv
type kind = Req of req_kind | Rsp of rsp_kind | Probe of probe_kind
(* [Data_pooled] payloads are OWNED by the message: the array came from the
   per-domain size-bucketed array pool (or was freshly minted for it) and is
   returned to that pool when the message is recycled.  Use it only for
   arrays created expressly for this message ({!pooled_pack},
   {!pooled_copy}); payloads that alias longer-lived storage must stay
   [Data]. *)
type payload = No_data | Data of int array | Data_pooled of int array

type t = {
  mutable txn : int;
  mutable kind : kind;
  mutable line : int;
  mutable mask : Mask.t;
  mutable demand : Mask.t;
  mutable payload : payload;
  mutable src : device_id;
  mutable dst : device_id;
  mutable requestor : device_id;
  mutable fwd : bool;
  mutable amo : Amo.t option;
  mutable pooled : bool;
}

(* Per-message construction checks (payload length, demand ⊆ mask) run on
   every send, so bench runs turn them off: default on (tests exercise
   them under dune runtest), SPANDEX_CHECKS=0/false/off in the environment
   or [set_checks false] (used by `spandex_cli bench`) disables them.
   Read eagerly at module init and only mutated before domains spawn, so
   parallel sweeps see a settled value. *)
let checks =
  ref
    (match Sys.getenv_opt "SPANDEX_CHECKS" with
    | Some ("0" | "false" | "off") -> false
    | Some _ | None -> true)

let set_checks on = checks := on
let checks_enabled () = !checks

(* A settled record shared as a placeholder slot filler (event pools, freed
   pool slots).  Never delivered, never mutated. *)
let dummy =
  {
    txn = -1;
    kind = Rsp Ack;
    line = 0;
    mask = Mask.empty;
    demand = Mask.empty;
    payload = No_data;
    src = -1;
    dst = -1;
    requestor = -1;
    fwd = false;
    amo = None;
    pooled = false;
  }

(* Per-domain free-list of message records.  Pooling is opt-in
   ([set_pooling true], done by [Run.simulate] and the bench driver):
   hand-driven test harnesses stash delivered messages in inbox lists and
   must keep the allocate-per-message behaviour.  When enabled, [make]
   pops a recycled record and overwrites every field; the engine recycles
   a message right after its [Handle] dispatch returns unless some
   component called [keep] on it (home nodes queue/capture requests they
   will replay later; the fault path and the model checker re-deliver). *)
type pool = {
  mutable slots : t array;
  mutable len : int;
  mutable enabled : bool;
  mutable reused : int;  (* makes served from the free-list *)
  mutable minted : int;  (* makes that fell through to a fresh record *)
  arrs : int array array array;
      (* payload arrays bucketed by length (index 1..words_per_line). *)
  arr_len : int array;
}

let pool_key : pool Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        slots = [||];
        len = 0;
        enabled = false;
        reused = 0;
        minted = 0;
        arrs = Array.make (Addr.words_per_line + 1) [||];
        arr_len = Array.make (Addr.words_per_line + 1) 0;
      })

let arr_bucket_cap = 32

let arr_push p (arr : int array) =
  let n = Array.length arr in
  if n > 0 && n <= Addr.words_per_line then begin
    let cap = Array.length p.arrs.(n) in
    if p.arr_len.(n) = cap && cap < arr_bucket_cap then begin
      let grown = Array.make (max 8 (2 * cap)) [||] in
      Array.blit p.arrs.(n) 0 grown 0 cap;
      p.arrs.(n) <- grown
    end;
    if p.arr_len.(n) < Array.length p.arrs.(n) then begin
      p.arrs.(n).(p.arr_len.(n)) <- arr;
      p.arr_len.(n) <- p.arr_len.(n) + 1
    end
  end

let arr_alloc n =
  let p = Domain.DLS.get pool_key in
  if p.enabled && n > 0 && n <= Addr.words_per_line && p.arr_len.(n) > 0
  then begin
    p.arr_len.(n) <- p.arr_len.(n) - 1;
    let arr = p.arrs.(n).(p.arr_len.(n)) in
    p.arrs.(n).(p.arr_len.(n)) <- [||];
    arr
  end
  else Array.make n 0

let pooled_single v =
  let out = arr_alloc 1 in
  out.(0) <- v;
  Data_pooled out

let pooled_copy values =
  let n = Array.length values in
  let out = arr_alloc n in
  Array.blit values 0 out 0 n;
  Data_pooled out

let pooled_pack ~mask ~full =
  let n = Mask.count mask in
  let out = arr_alloc n in
  let i = ref 0 in
  let w = ref 0 in
  while !i < n do
    if Mask.mem mask !w then begin
      out.(!i) <- full.(!w);
      incr i
    end;
    incr w
  done;
  Data_pooled out

let set_pooling on =
  let p = Domain.DLS.get pool_key in
  p.enabled <- on

let pooling_enabled () = (Domain.DLS.get pool_key).enabled

let pool_stats () =
  let p = Domain.DLS.get pool_key in
  (p.reused, p.minted, p.len)

let keep t = t.pooled <- false

let recycle t =
  if t.pooled then begin
    t.pooled <- false;
    let p = Domain.DLS.get pool_key in
    (* Drop heap references so a parked free slot cannot leak a payload;
       an owned payload array goes back to its size bucket. *)
    (match t.payload with Data_pooled arr -> arr_push p arr | _ -> ());
    t.payload <- No_data;
    t.amo <- None;
    if p.enabled then begin
      if p.len = Array.length p.slots then begin
        let cap = max 64 (2 * p.len) in
        let slots = Array.make cap dummy in
        Array.blit p.slots 0 slots 0 p.len;
        p.slots <- slots
      end;
      p.slots.(p.len) <- t;
      p.len <- p.len + 1
    end
  end

let make ~txn ~kind ~line ~mask ?demand ?(payload = No_data) ~src ~dst
    ?requestor ?(fwd = false) ?amo () =
  let demand = match demand with Some d -> d | None -> mask in
  if !checks then begin
    (match payload with
    | No_data -> ()
    | Data values | Data_pooled values ->
      if Array.length values <> Mask.count mask then
        invalid_arg
          (Printf.sprintf "Msg.make: %d values for a %d-word mask"
             (Array.length values) (Mask.count mask)));
    if not (Mask.subset demand mask) then
      invalid_arg "Msg.make: demand not a subset of mask"
  end;
  let requestor = match requestor with Some r -> r | None -> src in
  let p = Domain.DLS.get pool_key in
  if p.enabled then
    if p.len > 0 then begin
      p.len <- p.len - 1;
      let t = p.slots.(p.len) in
      p.slots.(p.len) <- dummy;
      p.reused <- p.reused + 1;
      if !checks && t.pooled then
        invalid_arg "Msg pool: free slot still marked live";
      t.txn <- txn;
      t.kind <- kind;
      t.line <- line;
      t.mask <- mask;
      t.demand <- demand;
      t.payload <- payload;
      t.src <- src;
      t.dst <- dst;
      t.requestor <- requestor;
      t.fwd <- fwd;
      t.amo <- amo;
      t.pooled <- true;
      t
    end
    else begin
      p.minted <- p.minted + 1;
      {
        txn;
        kind;
        line;
        mask;
        demand;
        payload;
        src;
        dst;
        requestor;
        fwd;
        amo;
        pooled = true;
      }
    end
  else
    {
      txn;
      kind;
      line;
      mask;
      demand;
      payload;
      src;
      dst;
      requestor;
      fwd;
      amo;
      pooled = false;
    }

let rsp_of_req = function
  | ReqV -> RspV
  | ReqS -> RspS
  | ReqWT -> RspWT
  | ReqO -> RspO
  | ReqWTdata -> RspWTdata
  | ReqOdata -> RspOdata
  | ReqWB -> RspWB

let carries_data t =
  match t.payload with No_data -> false | Data _ | Data_pooled _ -> true

let kind_needs_data = function
  | Req (ReqV | ReqOdata | ReqS) | Probe RvkO -> true
  | Req (ReqO | ReqWT | ReqWTdata | ReqWB) | Probe Inv | Rsp _ -> false

type category = Cat_ReqV | Cat_ReqS | Cat_ReqWT | Cat_ReqO | Cat_WB | Cat_Probe

let category = function
  | Req ReqV | Rsp RspV | Rsp Nack -> Cat_ReqV
  | Req ReqS | Rsp RspS -> Cat_ReqS
  | Req ReqWT | Req ReqWTdata | Rsp RspWT | Rsp RspWTdata -> Cat_ReqWT
  | Req ReqO | Req ReqOdata | Rsp RspO | Rsp RspOdata -> Cat_ReqO
  | Req ReqWB | Rsp RspWB -> Cat_WB
  | Probe RvkO | Probe Inv | Rsp RspRvkO | Rsp Ack -> Cat_Probe

let category_name = function
  | Cat_ReqV -> "ReqV"
  | Cat_ReqS -> "ReqS"
  | Cat_ReqWT -> "ReqWT"
  | Cat_ReqO -> "ReqO"
  | Cat_WB -> "WB"
  | Cat_Probe -> "Probe"

let all_categories =
  [ Cat_ReqV; Cat_ReqS; Cat_ReqWT; Cat_ReqO; Cat_WB; Cat_Probe ]

let flit_bytes = 16

let flits t =
  match t.payload with
  | No_data -> 1
  | Data values | Data_pooled values ->
    let bytes = Array.length values * Addr.word_bytes in
    1 + ((bytes + flit_bytes - 1) / flit_bytes)

let req_kind_name = function
  | ReqV -> "ReqV"
  | ReqS -> "ReqS"
  | ReqWT -> "ReqWT"
  | ReqO -> "ReqO"
  | ReqWTdata -> "ReqWT+data"
  | ReqOdata -> "ReqO+data"
  | ReqWB -> "ReqWB"

let rsp_kind_name = function
  | RspV -> "RspV"
  | RspS -> "RspS"
  | RspWT -> "RspWT"
  | RspO -> "RspO"
  | RspWTdata -> "RspWT+data"
  | RspOdata -> "RspO+data"
  | RspWB -> "RspWB"
  | RspRvkO -> "RspRvkO"
  | Ack -> "Ack"
  | Nack -> "Nack"

let probe_kind_name = function RvkO -> "RvkO" | Inv -> "Inv"

let kind_name = function
  | Req k -> req_kind_name k
  | Rsp k -> rsp_kind_name k
  | Probe k -> probe_kind_name k

let pp_kind fmt k = Format.pp_print_string fmt (kind_name k)

(* Dense indexings so per-kind tables (traffic counters, interned stat
   keys) can be arrays instead of string-keyed maps. *)

let req_kind_index = function
  | ReqV -> 0
  | ReqS -> 1
  | ReqWT -> 2
  | ReqO -> 3
  | ReqWTdata -> 4
  | ReqOdata -> 5
  | ReqWB -> 6

let all_req_kinds = [ ReqV; ReqS; ReqWT; ReqO; ReqWTdata; ReqOdata; ReqWB ]

let num_kinds = 19

let kind_index = function
  | Req k -> req_kind_index k
  | Rsp RspV -> 7
  | Rsp RspS -> 8
  | Rsp RspWT -> 9
  | Rsp RspO -> 10
  | Rsp RspWTdata -> 11
  | Rsp RspOdata -> 12
  | Rsp RspWB -> 13
  | Rsp RspRvkO -> 14
  | Rsp Ack -> 15
  | Rsp Nack -> 16
  | Probe RvkO -> 17
  | Probe Inv -> 18

let all_kinds =
  List.map (fun k -> Req k) all_req_kinds
  @ List.map
      (fun k -> Rsp k)
      [ RspV; RspS; RspWT; RspO; RspWTdata; RspOdata; RspWB; RspRvkO; Ack; Nack ]
  @ [ Probe RvkO; Probe Inv ]

let pp fmt t =
  let data =
    match t.payload with
    | No_data -> if t.fwd then " fwd" else ""
    | Data values | Data_pooled values ->
      let vs =
        if Array.length values <= 4 then
          String.concat ","
            (List.map string_of_int (Array.to_list values))
        else Printf.sprintf "%d words" (Array.length values)
      in
      Printf.sprintf "%s +data[%s]" (if t.fwd then " fwd" else "") vs
  in
  Format.fprintf fmt "[txn=%d %a line=%d mask=%a %d->%d req=%d%s]" t.txn
    pp_kind t.kind t.line
    (Mask.pp ~words:Addr.words_per_line)
    t.mask t.src t.dst t.requestor data

module Fp = Spandex_util.Fingerprint

(* Canonical message encoding for the model checker's state fingerprint:
   everything that determines the receiver's behavior, with the txn id
   remapped through the fingerprint's canonical table. *)
let fingerprint fp t =
  Fp.tag fp "m";
  Fp.txn fp t.txn;
  Fp.int fp (kind_index t.kind);
  Fp.int fp t.line;
  Fp.int fp (t.mask :> int);
  Fp.int fp (t.demand :> int);
  Fp.int fp t.src;
  Fp.int fp t.dst;
  Fp.int fp t.requestor;
  Fp.bool fp t.fwd;
  (match t.amo with
  | None -> Fp.int fp (-1)
  | Some Amo.Read -> Fp.int fp 0
  | Some (Amo.Exch v) ->
    Fp.int fp 1;
    Fp.int fp v
  | Some (Amo.Add v) ->
    Fp.int fp 2;
    Fp.int fp v
  | Some (Amo.Max v) ->
    Fp.int fp 3;
    Fp.int fp v
  | Some (Amo.Cas { expected; desired }) ->
    Fp.int fp 4;
    Fp.int fp expected;
    Fp.int fp desired);
  match t.payload with
  | No_data -> Fp.int fp 0
  | Data values | Data_pooled values ->
    Fp.int fp (Array.length values);
    Fp.array fp values
