(** The Spandex message vocabulary (paper §III-A, §III-B).

    Seven device-issued request types, their responses, and the two
    LLC-initiated probes.  Forwarded requests reuse the request
    constructors: the LLC forwards a request to a remote owner by sending
    the same message with [fwd = true] and the original requestor preserved,
    so the owner can respond directly to the requestor (Fig. 1c/1d). *)

type device_id = int
(** Dense endpoint identifier assigned by the system builder.  The LLC and
    the memory controller also have device ids. *)

type req_kind =
  | ReqV  (** self-invalidated read: data only, no state at the LLC. *)
  | ReqS  (** writer-invalidated read: data + Shared state. *)
  | ReqWT  (** write-through of full words: no data response needed. *)
  | ReqO  (** ownership without data (all requested words overwritten). *)
  | ReqWTdata  (** update performed at the LLC; needs up-to-date data. *)
  | ReqOdata  (** ownership plus up-to-date data. *)
  | ReqWB  (** write-back of owned data. *)

type rsp_kind =
  | RspV
  | RspS
  | RspWT
  | RspO
  | RspWTdata
  | RspOdata
  | RspWB
  | RspRvkO  (** write-back triggered by a RvkO or forwarded ReqS. *)
  | Ack  (** response to Inv. *)
  | Nack  (** failed forwarded ReqV (owner no longer owns). *)

type probe_kind =
  | RvkO  (** revoke ownership, force write-back to the LLC. *)
  | Inv  (** invalidate Shared data. *)

type kind = Req of req_kind | Rsp of rsp_kind | Probe of probe_kind

type payload =
  | No_data
  | Data of int array
      (** word values for the set bits of [mask], in increasing word
          order; [Array.length] equals [Mask.count mask]. *)

type t = {
  txn : int;  (** transaction id; responses echo the request's. *)
  kind : kind;
  line : int;
  mask : Spandex_util.Mask.t;  (** target words within [line]. *)
  demand : Spandex_util.Mask.t;
      (** subset of [mask] the requestor actually needs.  DeNovo ReqV
          requests demand a word but ask for the rest of the line
          opportunistically (Table II: "the responding device may include
          any available up-to-date data in the line"); only demanded words
          are forwarded to remote owners or Nack-retried. *)
  payload : payload;
  src : device_id;  (** immediate sender. *)
  dst : device_id;
  requestor : device_id;  (** original requestor (survives forwarding). *)
  fwd : bool;  (** true when this request was forwarded by the LLC. *)
  amo : Amo.t option;  (** only on ReqWTdata / ReqOdata RMWs. *)
}

val make :
  txn:int ->
  kind:kind ->
  line:int ->
  mask:Spandex_util.Mask.t ->
  ?demand:Spandex_util.Mask.t ->
  ?payload:payload ->
  src:device_id ->
  dst:device_id ->
  ?requestor:device_id ->
  ?fwd:bool ->
  ?amo:Amo.t ->
  unit ->
  t
(** [requestor] defaults to [src]; [demand] to [mask]; [payload] to
    [No_data]; [fwd] to false.  When construction checks are enabled (see
    {!set_checks}), raises [Invalid_argument] if a [Data] payload length
    does not match the mask population or [demand] is not a subset of
    [mask]. *)

val set_checks : bool -> unit
(** Enable or disable {!make}'s per-message validation.  Default: on, so
    the checks run under [dune runtest]; [SPANDEX_CHECKS=0] (also [false]
    / [off]) in the environment starts with them off, any other value
    forces them on.  `spandex_cli bench` disables them unless
    [SPANDEX_CHECKS] is set, keeping validation off the measured hot
    path.  Only flip this before worker domains spawn. *)

val checks_enabled : unit -> bool

val rsp_of_req : req_kind -> rsp_kind
(** The response kind paired with each request kind (paper: "Every Spandex
    request (Req) type has an associated response (Rsp) type"). *)

val carries_data : t -> bool

val kind_needs_data : kind -> bool
(** True when serving this request (or probe) at a remote owner requires
    the word's current data — a forwarded ReqV/ReqS/ReqO+data or a RvkO.
    Data-less ownership transfers (ReqO) and everything else are false. *)

type category = Cat_ReqV | Cat_ReqS | Cat_ReqWT | Cat_ReqO | Cat_WB | Cat_Probe
(** Traffic categories used by Figures 2 and 3.  Responses count toward
    their request's category; Inv/RvkO and their Ack/RspRvkO count as
    Probe traffic. *)

val category : kind -> category
val category_name : category -> string
val all_categories : category list

val flits : t -> int
(** Network cost: 1 control flit plus 1 flit per 16 data bytes. *)

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
val kind_name : kind -> string
(** Constant string for a kind; allocation-free, unlike formatting. *)

val req_kind_name : req_kind -> string
val rsp_kind_name : rsp_kind -> string
val probe_kind_name : probe_kind -> string

val req_kind_index : req_kind -> int
(** Dense index in [0, 7); matches the order of {!all_req_kinds}. *)

val all_req_kinds : req_kind list

val kind_index : kind -> int
(** Dense index in [0, num_kinds); matches the order of {!all_kinds}. *)

val num_kinds : int
val all_kinds : kind list

val fingerprint : Spandex_util.Fingerprint.t -> t -> unit
(** Append a canonical encoding of the message (txn id remapped through
    the fingerprint's table) — used by the model checker to fingerprint
    held/queued messages. *)
