(** The Spandex message vocabulary (paper §III-A, §III-B).

    Seven device-issued request types, their responses, and the two
    LLC-initiated probes.  Forwarded requests reuse the request
    constructors: the LLC forwards a request to a remote owner by sending
    the same message with [fwd = true] and the original requestor preserved,
    so the owner can respond directly to the requestor (Fig. 1c/1d). *)

type device_id = int
(** Dense endpoint identifier assigned by the system builder.  The LLC and
    the memory controller also have device ids. *)

type req_kind =
  | ReqV  (** self-invalidated read: data only, no state at the LLC. *)
  | ReqS  (** writer-invalidated read: data + Shared state. *)
  | ReqWT  (** write-through of full words: no data response needed. *)
  | ReqO  (** ownership without data (all requested words overwritten). *)
  | ReqWTdata  (** update performed at the LLC; needs up-to-date data. *)
  | ReqOdata  (** ownership plus up-to-date data. *)
  | ReqWB  (** write-back of owned data. *)

type rsp_kind =
  | RspV
  | RspS
  | RspWT
  | RspO
  | RspWTdata
  | RspOdata
  | RspWB
  | RspRvkO  (** write-back triggered by a RvkO or forwarded ReqS. *)
  | Ack  (** response to Inv. *)
  | Nack  (** failed forwarded ReqV (owner no longer owns). *)

type probe_kind =
  | RvkO  (** revoke ownership, force write-back to the LLC. *)
  | Inv  (** invalidate Shared data. *)

type kind = Req of req_kind | Rsp of rsp_kind | Probe of probe_kind

type payload =
  | No_data
  | Data of int array
  | Data_pooled of int array
      (** Same wire meaning as [Data], but the array is owned by the
          message: it came from the per-domain payload-array pool and is
          returned there when the message is recycled.  Only create it via
          {!pooled_pack} / {!pooled_copy}, and never for arrays that alias
          longer-lived storage. *)
      (** word values for the set bits of [mask], in increasing word
          order; [Array.length] equals [Mask.count mask]. *)

type t = {
  mutable txn : int;  (** transaction id; responses echo the request's. *)
  mutable kind : kind;
  mutable line : int;
  mutable mask : Spandex_util.Mask.t;  (** target words within [line]. *)
  mutable demand : Spandex_util.Mask.t;
      (** subset of [mask] the requestor actually needs.  DeNovo ReqV
          requests demand a word but ask for the rest of the line
          opportunistically (Table II: "the responding device may include
          any available up-to-date data in the line"); only demanded words
          are forwarded to remote owners or Nack-retried. *)
  mutable payload : payload;
  mutable src : device_id;  (** immediate sender. *)
  mutable dst : device_id;
  mutable requestor : device_id;
      (** original requestor (survives forwarding). *)
  mutable fwd : bool;  (** true when this request was forwarded by the LLC. *)
  mutable amo : Amo.t option;  (** only on ReqWTdata / ReqOdata RMWs. *)
  mutable pooled : bool;
      (** pool bookkeeping: true while the record is live and owned by the
          per-domain free-list (see {!set_pooling}).  Components never
          read it; call {!keep} to detach a message you retain past its
          handler. *)
}

val make :
  txn:int ->
  kind:kind ->
  line:int ->
  mask:Spandex_util.Mask.t ->
  ?demand:Spandex_util.Mask.t ->
  ?payload:payload ->
  src:device_id ->
  dst:device_id ->
  ?requestor:device_id ->
  ?fwd:bool ->
  ?amo:Amo.t ->
  unit ->
  t
(** [requestor] defaults to [src]; [demand] to [mask]; [payload] to
    [No_data]; [fwd] to false.  When construction checks are enabled (see
    {!set_checks}), raises [Invalid_argument] if a [Data] payload length
    does not match the mask population or [demand] is not a subset of
    [mask]. *)

val set_checks : bool -> unit
(** Enable or disable {!make}'s per-message validation.  Default: on, so
    the checks run under [dune runtest]; [SPANDEX_CHECKS=0] (also [false]
    / [off]) in the environment starts with them off, any other value
    forces them on.  `spandex_cli bench` disables them unless
    [SPANDEX_CHECKS] is set, keeping validation off the measured hot
    path.  Only flip this before worker domains spawn. *)

val checks_enabled : unit -> bool

val set_pooling : bool -> unit
(** Enable or disable the per-domain message free-list (default: off).
    When on, {!make} reuses recycled records and the engine returns each
    delivered message to the pool after its handler runs, unless {!keep}
    was called on it.  Only [Run.simulate] and the bench driver turn this
    on: hand-driven harnesses that stash delivered messages must leave it
    off.  The flag and the free-list are domain-local. *)

val pooling_enabled : unit -> bool

val keep : t -> unit
(** Detach [t] from the pool: it will never be recycled and behaves like
    an ordinary GC-managed record.  Components call this when they retain
    a message past the handler that received it (blocked queues, resume
    closures, replay caches).  Idempotent; a no-op when pooling is off. *)

val pooled_pack : mask:Spandex_util.Mask.t -> full:int array -> payload
(** Pack the masked words of [full] into a payload array drawn from the
    per-domain pool (fresh when pooling is off or the bucket is empty). *)

val pooled_single : int -> payload
(** Single-word pooled payload (atomic returns). *)

val pooled_copy : int array -> payload
(** A pooled copy of [values]; see {!pooled_pack}. *)

val recycle : t -> unit
(** Return [t] to the current domain's free-list.  No-op unless [t] is
    live-and-pooled, so double recycles and recycles of kept messages are
    safe.  Called by the engine after each [Handle] dispatch; components
    never need to call it. *)

val dummy : t
(** A settled placeholder record (never delivered, never mutated) for
    pre-sizing event pools. *)

val pool_stats : unit -> int * int * int
(** [(reused, minted, free)] counters for the current domain's pool:
    makes served from the free-list, makes that allocated fresh while
    pooling was on, and records currently parked. *)

val rsp_of_req : req_kind -> rsp_kind
(** The response kind paired with each request kind (paper: "Every Spandex
    request (Req) type has an associated response (Rsp) type"). *)

val carries_data : t -> bool

val kind_needs_data : kind -> bool
(** True when serving this request (or probe) at a remote owner requires
    the word's current data — a forwarded ReqV/ReqS/ReqO+data or a RvkO.
    Data-less ownership transfers (ReqO) and everything else are false. *)

type category = Cat_ReqV | Cat_ReqS | Cat_ReqWT | Cat_ReqO | Cat_WB | Cat_Probe
(** Traffic categories used by Figures 2 and 3.  Responses count toward
    their request's category; Inv/RvkO and their Ack/RspRvkO count as
    Probe traffic. *)

val category : kind -> category
val category_name : category -> string
val all_categories : category list

val flits : t -> int
(** Network cost: 1 control flit plus 1 flit per 16 data bytes. *)

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
val kind_name : kind -> string
(** Constant string for a kind; allocation-free, unlike formatting. *)

val req_kind_name : req_kind -> string
val rsp_kind_name : rsp_kind -> string
val probe_kind_name : probe_kind -> string

val req_kind_index : req_kind -> int
(** Dense index in [0, 7); matches the order of {!all_req_kinds}. *)

val all_req_kinds : req_kind list

val kind_index : kind -> int
(** Dense index in [0, num_kinds); matches the order of {!all_kinds}. *)

val num_kinds : int
val all_kinds : kind list

val fingerprint : Spandex_util.Fingerprint.t -> t -> unit
(** Append a canonical encoding of the message (txn id remapped through
    the fingerprint's table) — used by the model checker to fingerprint
    held/queued messages. *)
