(** GPU coherence L1 (paper §II-B, Table II).

    Valid-only states: no ownership, no Shared state, so the cache never
    receives forwarded requests or probes.  Reads miss to line-granularity
    ReqV; stores write through at word granularity (coalesced per line in
    the store buffer); atomics bypass the L1 as ReqWT+data performed at the
    backing cache; synchronization acquires flash-invalidate the whole L1
    and releases drain the write-through buffer.

    The attached TU (§III-D) coalesces partial word-granularity responses
    into line fills and retries a Nacked ReqV once before converting it to
    a ReqWT+data to guarantee forward progress. *)

type config = {
  id : Spandex_proto.Msg.device_id;
  llc_id : Spandex_proto.Msg.device_id;  (** first backing-cache bank endpoint. *)
  llc_banks : int;
  sets : int;
  ways : int;
  mshrs : int;
  sb_capacity : int;
  hit_latency : int;
  coalesce_window : int;
      (** cycles a store-buffer entry ages before its write-through issues,
          giving neighbouring stores a window to coalesce. *)
  max_reqv_retries : int;  (** 1 in the paper's evaluation (§III-C). *)
}

type t

val create : Spandex_sim.Engine.t -> Spandex_net.Network.t -> config -> t
val port : t -> Spandex_device.Port.t
val stats : t -> Spandex_util.Stats.t

val trace_sample : t -> time:int -> unit
(** Record occupancy counters into the engine's trace sink; no-op when
    tracing is disabled. *)

val register_metrics : t -> device:string -> Spandex_obs.Metrics.t -> unit
(** Register the chassis occupancy/stall/retry probes, labelled
    [device]. *)

(** {2 Test introspection} *)

val holds_line : t -> line:int -> bool
val peek_word : t -> Spandex_proto.Addr.t -> int option
val valid_lines : t -> int

val fingerprint : t -> Spandex_util.Fingerprint.t -> unit
(** Append a canonical encoding of the full architectural state for the
    model checker's visited-state cache.  (GPU coherence never holds
    ownership, so it contributes no SWMR claims.) *)
