module Mask = Spandex_util.Mask
module Stats = Spandex_util.Stats
module Retry = Spandex_util.Retry
module Engine = Spandex_sim.Engine
module Trace = Spandex_sim.Trace
module Msg = Spandex_proto.Msg
module Addr = Spandex_proto.Addr
module Amo = Spandex_proto.Amo
module Linedata = Spandex_proto.Linedata
module Network = Spandex_net.Network
module Cache_frame = Spandex_mem.Cache_frame
module Mshr = Spandex_mem.Mshr
module Store_buffer = Spandex_mem.Store_buffer
module Port = Spandex_device.Port
module Tu = Spandex.Tu

type config = {
  id : Msg.device_id;
  llc_id : Msg.device_id;
  llc_banks : int;
  sets : int;
  ways : int;
  mshrs : int;
  sb_capacity : int;
  hit_latency : int;
  coalesce_window : int;
  max_reqv_retries : int;
}

(* Line fills; valid lines carry a full data copy. *)
type line = { data : int array }

type miss = {
  m_line : int;
  collector : Tu.t;
  mutable waiters : (int * (int -> unit)) list;  (* word, continuation *)
  epoch : int;  (* self-invalidation epoch at issue; stale fills not cached *)
  mutable retries : int;
}

type wt = { wt_line : int }
type atomic = { a_word : int; a_k : int -> unit }

type outstanding = Miss of miss | Wt of wt | Atomic of atomic

type t = {
  engine : Engine.t;
  net : Network.t;
  cfg : config;
  frame : line Cache_frame.t;
  sb : Store_buffer.t;
  outstanding : outstanding Mshr.t;
  sb_ages : (int, int) Hashtbl.t;  (* line -> last store cycle *)
  stats : Stats.t;
  (* Interned counters for the per-op fast paths. *)
  k_load_hit : Stats.key;
  k_load_miss : Stats.key;
  k_load_sb_fwd : Stats.key;
  k_stores : Stats.key;
  k_rmw : Stats.key;
  k_wt_issued : Stats.key;
  k_wt_words : Stats.key;
  (* End-to-end request retries; armed only when the network injects
     faults, so fault-free runs are bit-identical to the reliable model. *)
  retry : Retry.t option;
  trace : Trace.t;
  n_retry : int;  (** interned trace names (0 on a disabled sink). *)
  n_nack : int;
  n_chain : int;
  n_mshr : int;
  n_sb : int;
  mutable epoch : int;
  mutable flushing : bool;
  mutable drain_armed : bool;
  mutable release_waiters : (unit -> unit) list;
  mutable stalled_stores : (unit -> unit) list;
}

let count_outstanding t p =
  let n = ref 0 in
  Mshr.iter t.outstanding ~f:(fun ~txn:_ o -> if p o then incr n);
  !n

let wts_outstanding t = count_outstanding t (function Wt _ -> true | _ -> false)

let send t msg = Engine.send_later t.engine ~delay:t.cfg.hit_latency msg

let request t ~txn ~kind ~line ~mask ?demand ?payload ?amo () =
  let msg =
    Msg.make ~txn ~kind:(Msg.Req kind) ~line ~mask ?demand ?payload
      ~src:t.cfg.id ~dst:(t.cfg.llc_id + (line mod t.cfg.llc_banks)) ?amo ()
  in
  if Trace.on t.trace then
    Trace.span_begin t.trace ~time:(Engine.now t.engine) ~dev:t.cfg.id ~txn
      ~cls:(Msg.req_kind_index kind) ~line;
  Option.iter
    (fun r ->
      let resend =
        if Trace.on t.trace then (fun () ->
            Trace.instant t.trace ~time:(Engine.now t.engine) ~dev:t.cfg.id
              ~name:t.n_retry ~txn ~arg:(Msg.req_kind_index kind);
            Network.send t.net msg)
        else fun () -> Network.send t.net msg
      in
      Retry.arm r ~txn
        ~describe:(Format.asprintf "%a line %d" Msg.pp_kind (Msg.Req kind) line)
        ~resend)
    t.retry;
  send t msg

(* Retire [txn]: free the MSHR entry and cancel any retry timer. *)
let free_txn t ~txn =
  Mshr.free t.outstanding ~txn;
  Option.iter (fun r -> Retry.complete r ~txn) t.retry;
  if Trace.on t.trace then
    Trace.span_end t.trace ~time:(Engine.now t.engine) ~dev:t.cfg.id ~txn

(* Link a protocol-level follow-up transaction for `explain`. *)
let trace_chain t ~txn ~txn' =
  if Trace.on t.trace then
    Trace.instant t.trace ~time:(Engine.now t.engine) ~dev:t.cfg.id
      ~name:t.n_chain ~txn ~arg:txn'

(* ----- write-through drain -------------------------------------------------- *)

(* An entry issues once it has aged past the coalesce window, immediately
   when a release is flushing or the buffer is half full. *)
let entry_ready t line =
  if t.flushing || Store_buffer.count t.sb * 2 >= t.cfg.sb_capacity then true
  else
    let age =
      Engine.now t.engine
      - Option.value ~default:0 (Hashtbl.find_opt t.sb_ages line)
    in
    age >= t.cfg.coalesce_window

let check_release t =
  if t.flushing && Store_buffer.is_empty t.sb && wts_outstanding t = 0 then begin
    t.flushing <- false;
    let ws = t.release_waiters in
    t.release_waiters <- [];
    List.iter (fun k -> k ()) ws
  end

let rec arm_drain t ~delay =
  if not t.drain_armed then begin
    t.drain_armed <- true;
    Engine.schedule t.engine ~delay (fun () ->
        t.drain_armed <- false;
        drain t)
  end

and drain t =
  match Store_buffer.peek_oldest t.sb with
  | None -> check_release t
  | Some e ->
    if not (entry_ready t e.Store_buffer.line) then
      arm_drain t ~delay:(max 1 t.cfg.coalesce_window)
    else if Mshr.is_full t.outstanding then () (* retried on a response *)
    else begin
      match Mshr.alloc t.outstanding (Wt { wt_line = e.Store_buffer.line }) with
      | None -> ()
      | Some txn ->
        let e = Option.get (Store_buffer.take_oldest t.sb) in
        Hashtbl.remove t.sb_ages e.Store_buffer.line;
        let mask = e.Store_buffer.mask in
        let payload =
          Msg.Data (Linedata.pack ~mask ~full:e.Store_buffer.values)
        in
        Stats.bump t.stats t.k_wt_issued;
        Stats.bump_by t.stats t.k_wt_words (Mask.count mask);
        request t ~txn ~kind:Msg.ReqWT ~line:e.Store_buffer.line ~mask ~payload
          ();
        (* A freed entry may unblock a stalled store. *)
        let stalled = t.stalled_stores in
        t.stalled_stores <- [];
        List.iter (fun retry -> retry ()) stalled;
        drain t
    end

(* ----- loads ---------------------------------------------------------------- *)

let install_line t ~line values =
  (match Cache_frame.find t.frame ~line with
  | Some l -> Array.blit values 0 l.data 0 Addr.words_per_line
  | None -> (
    match
      Cache_frame.insert t.frame ~line
        { data = Array.copy values }
        ~can_evict:(fun ~line:_ _ -> true)
    with
    | Cache_frame.Inserted -> ()
    | Cache_frame.Evicted _ -> Stats.incr t.stats "evictions"
    | Cache_frame.No_room -> assert false));
  (* Stores buffered for this line must stay visible to local loads. *)
  match (Store_buffer.find t.sb ~line, Cache_frame.find t.frame ~line) with
  | Some e, Some l ->
    Mask.iter e.Store_buffer.mask ~f:(fun w ->
        l.data.(w) <- e.Store_buffer.values.(w))
  | _ -> ()

let complete_miss t ~txn (m : miss) (r : Tu.result) =
  free_txn t ~txn;
  if m.epoch = t.epoch then install_line t ~line:m.m_line r.Tu.values
  else Stats.incr t.stats "stale_fill_dropped";
  List.iter (fun (w, k) -> k r.Tu.values.(w)) (List.rev m.waiters);
  drain t

(* A Nacked ReqV raced past an ownership change: retry, then convert to a
   ReqWT+data (performed at the LLC) to enforce ordering (§III-C case 3). *)
let handle_nacks t ~txn (m : miss) (r : Tu.result) =
  if Trace.on t.trace then
    Trace.instant t.trace ~time:(Engine.now t.engine) ~dev:t.cfg.id
      ~name:t.n_nack ~txn ~arg:(Mask.count r.Tu.nacked);
  if m.retries < t.cfg.max_reqv_retries then begin
    m.retries <- m.retries + 1;
    Stats.incr t.stats "reqv_retry";
    let fresh = Tu.create ~demand:r.Tu.nacked in
    (* Carry over what already arrived. *)
    ignore
      (Tu.absorb fresh
         (Msg.make ~txn ~kind:(Msg.Rsp Msg.RspV)
            ~mask:(Mask.union r.Tu.data_mask r.Tu.acked)
            ~payload:
              (Msg.Data
                 (Linedata.pack
                    ~mask:(Mask.union r.Tu.data_mask r.Tu.acked)
                    ~full:r.Tu.values))
            ~line:m.m_line ~src:t.cfg.id ~dst:t.cfg.id ()));
    let m' =
      { m with collector = fresh; retries = m.retries }
    in
    free_txn t ~txn;
    (match Mshr.alloc t.outstanding (Miss m') with
    | Some txn' ->
      request t ~txn:txn' ~kind:Msg.ReqV ~line:m.m_line ~mask:r.Tu.nacked
        ~demand:r.Tu.nacked ();
      trace_chain t ~txn ~txn'
    | None -> assert false (* we just freed a slot *))
  end
  else begin
    Stats.incr t.stats "reqv_converted";
    (* One ReqWT+data (atomic read) per still-missing word. *)
    let base = Tu.create ~demand:r.Tu.nacked in
    ignore
      (Tu.absorb base
         (Msg.make ~txn ~kind:(Msg.Rsp Msg.RspV)
            ~mask:(Mask.union r.Tu.data_mask r.Tu.acked)
            ~payload:
              (Msg.Data
                 (Linedata.pack
                    ~mask:(Mask.union r.Tu.data_mask r.Tu.acked)
                    ~full:r.Tu.values))
            ~line:m.m_line ~src:t.cfg.id ~dst:t.cfg.id ()));
    let m' = { m with collector = base } in
    free_txn t ~txn;
    match Mshr.alloc t.outstanding (Miss m') with
    | Some txn' ->
      Mask.iter r.Tu.nacked ~f:(fun w ->
          request t ~txn:txn' ~kind:Msg.ReqWTdata ~line:m.m_line
            ~mask:(Mask.singleton w) ~amo:Amo.Read ());
      trace_chain t ~txn ~txn'
    | None -> assert false
  end

let rec load t (addr : Addr.t) ~k =
  let done_ v = Engine.apply_later t.engine ~delay:t.cfg.hit_latency k v in
  match Store_buffer.forward t.sb ~addr with
  | Some v ->
    Stats.bump t.stats t.k_load_sb_fwd;
    done_ v
  | None -> (
    match Cache_frame.find t.frame ~line:addr.Addr.line with
    | Some l ->
      Stats.bump t.stats t.k_load_hit;
      Cache_frame.touch t.frame ~line:addr.Addr.line;
      done_ l.data.(addr.Addr.word)
    | None -> (
      Stats.bump t.stats t.k_load_miss;
      (* Coalesce with an outstanding miss of the current epoch. *)
      match
        Mshr.find_first t.outstanding ~f:(function
          | Miss m -> m.m_line = addr.Addr.line && m.epoch = t.epoch
          | _ -> false)
      with
      | Some (_, Miss m) ->
        Stats.incr t.stats "load_miss_coalesced";
        m.waiters <- (addr.Addr.word, k) :: m.waiters
      | Some _ -> assert false
      | None -> (
        let m =
          {
            m_line = addr.Addr.line;
            collector = Tu.create ~demand:Addr.full_mask;
            waiters = [ (addr.Addr.word, k) ];
            epoch = t.epoch;
            retries = 0;
          }
        in
        match Mshr.alloc t.outstanding (Miss m) with
        | Some txn ->
          (* Line-granularity read (Table II). *)
          request t ~txn ~kind:Msg.ReqV ~line:addr.Addr.line
            ~mask:Addr.full_mask ()
        | None ->
          (* MSHRs exhausted: retry shortly. *)
          Stats.incr t.stats "mshr_stall";
          Engine.schedule t.engine ~delay:4 (fun () -> load t addr ~k))))

(* ----- stores and atomics --------------------------------------------------- *)

let rec store t (addr : Addr.t) ~value ~k =
  match Store_buffer.push t.sb ~addr ~value with
  | `Coalesced | `New ->
    Hashtbl.replace t.sb_ages addr.Addr.line (Engine.now t.engine);
    (* Keep a valid cached copy coherent with the local write. *)
    (match Cache_frame.find t.frame ~line:addr.Addr.line with
    | Some l -> l.data.(addr.Addr.word) <- value
    | None -> ());
    Stats.bump t.stats t.k_stores;
    arm_drain t ~delay:1;
    Engine.schedule t.engine ~delay:t.cfg.hit_latency k
  | `Full ->
    Stats.incr t.stats "sb_full_stall";
    t.stalled_stores <- (fun () -> store t addr ~value ~k) :: t.stalled_stores;
    arm_drain t ~delay:1

let rmw t (addr : Addr.t) amo ~k =
  (* Atomics bypass the L1 and execute at the backing cache (§II-B). *)
  Stats.bump t.stats t.k_rmw;
  match Mshr.alloc t.outstanding (Atomic { a_word = addr.Addr.word; a_k = k })
  with
  | Some txn ->
    (* The returned data makes any cached copy of the line stale. *)
    Cache_frame.remove t.frame ~line:addr.Addr.line;
    request t ~txn ~kind:Msg.ReqWTdata ~line:addr.Addr.line
      ~mask:(Mask.singleton addr.Addr.word) ~amo ()
  | None ->
    Stats.incr t.stats "mshr_stall";
    Engine.schedule t.engine ~delay:4 (fun () ->
        let rec retry () =
          match
            Mshr.alloc t.outstanding (Atomic { a_word = addr.Addr.word; a_k = k })
          with
          | Some txn ->
            Cache_frame.remove t.frame ~line:addr.Addr.line;
            request t ~txn ~kind:Msg.ReqWTdata ~line:addr.Addr.line
              ~mask:(Mask.singleton addr.Addr.word) ~amo ()
          | None -> Engine.schedule t.engine ~delay:4 retry
        in
        retry ())

(* ----- synchronization ------------------------------------------------------ *)

let acquire t ~k =
  (* Flash self-invalidation of all Valid data: single cycle (§IV-A). *)
  Stats.incr t.stats "acquire_flash";
  Stats.add t.stats "flash_invalidated" (Cache_frame.count t.frame)
  |> ignore;
  let lines =
    Cache_frame.fold t.frame ~init:[] ~f:(fun acc ~line _ -> line :: acc)
  in
  List.iter (fun line -> Cache_frame.remove t.frame ~line) lines;
  t.epoch <- t.epoch + 1;
  Engine.schedule t.engine ~delay:1 k

let release t ~k =
  Stats.incr t.stats "release";
  t.flushing <- true;
  t.release_waiters <- k :: t.release_waiters;
  arm_drain t ~delay:0;
  (* Already drained? *)
  Engine.schedule t.engine ~delay:1 (fun () -> check_release t)

(* ----- responses ------------------------------------------------------------ *)

let handle t (msg : Msg.t) =
  match msg.Msg.kind with
  | Msg.Rsp _ -> (
    match Mshr.find t.outstanding ~txn:msg.Msg.txn with
    | None -> Stats.incr t.stats "orphan_rsp"
    | Some (Wt _) ->
      (match msg.Msg.kind with
      | Msg.Rsp Msg.RspWT | Msg.Rsp Msg.RspO -> ()
      | _ -> failwith "Gpu_l1: unexpected write-through response");
      free_txn t ~txn:msg.Msg.txn;
      check_release t;
      drain t
    | Some (Atomic a) -> (
      match (msg.Msg.kind, msg.Msg.payload) with
      | Msg.Rsp Msg.RspWTdata, Msg.Data values ->
        free_txn t ~txn:msg.Msg.txn;
        a.a_k values.(0);
        drain t
      | _ -> failwith "Gpu_l1: unexpected atomic response")
    | Some (Miss m) -> (
      match Tu.absorb m.collector msg with
      | None -> ()
      | Some r ->
        if Mask.is_empty r.Tu.nacked then complete_miss t ~txn:msg.Msg.txn m r
        else handle_nacks t ~txn:msg.Msg.txn m r))
  | Msg.Probe Msg.Inv ->
    (* No Shared state: a (defensive) Inv is acknowledged without action
       (§III-C case 3). *)
    send t
      (Msg.make ~txn:msg.Msg.txn ~kind:(Msg.Rsp Msg.Ack) ~line:msg.Msg.line
         ~mask:msg.Msg.mask ~src:t.cfg.id ~dst:msg.Msg.src ())
  | Msg.Probe Msg.RvkO | Msg.Req _ ->
    failwith "Gpu_l1: received an ownership request but holds no ownership"

(* ----- construction --------------------------------------------------------- *)

let quiescent t =
  Store_buffer.is_empty t.sb && Mshr.count t.outstanding = 0
  && t.stalled_stores = []

let describe_pending t =
  let pend = ref [] in
  Mshr.iter t.outstanding ~f:(fun ~txn o ->
      let d =
        match o with
        | Miss m -> Printf.sprintf "Miss line %d" m.m_line
        | Wt w -> Printf.sprintf "Wt line %d" w.wt_line
        | Atomic a -> Printf.sprintf "Atomic word %d" a.a_word
      in
      pend := (txn, d) :: !pend);
  let shown =
    List.filteri (fun i _ -> i < 4) (List.sort compare !pend)
    |> List.map (fun (txn, d) -> Printf.sprintf "txn %d %s" txn d)
  in
  Printf.sprintf "gpu_l1 %d: sb=%d outstanding=%d stalled=%d%s" t.cfg.id
    (Store_buffer.count t.sb)
    (Mshr.count t.outstanding)
    (List.length t.stalled_stores)
    (if shown = [] then "" else " [" ^ String.concat "; " shown ^ "]")

let trace_sample t ~time =
  Trace.counter t.trace ~time ~dev:t.cfg.id ~name:t.n_mshr
    ~value:(Mshr.count t.outstanding);
  Trace.counter t.trace ~time ~dev:t.cfg.id ~name:t.n_sb
    ~value:(Store_buffer.count t.sb)

let create engine net cfg =
  let stats = Stats.create () in
  let trace = Engine.trace engine in
  let retry =
    Option.map
      (fun f ->
        Retry.create
          (Spandex_net.Fault.retry_config f)
          ~seed:(0x5EED + cfg.id)
          ~schedule:(fun ~delay k -> Engine.schedule engine ~delay k)
          ~stats)
      (Network.fault net)
  in
  let t =
    {
      engine;
      net;
      cfg;
      frame = Cache_frame.create ~sets:cfg.sets ~ways:cfg.ways;
      sb = Store_buffer.create ~capacity:cfg.sb_capacity;
      outstanding = Mshr.create ~capacity:cfg.mshrs;
      sb_ages = Hashtbl.create 64;
      stats;
      k_load_hit = Stats.key stats "load_hit";
      k_load_miss = Stats.key stats "load_miss";
      k_load_sb_fwd = Stats.key stats "load_sb_fwd";
      k_stores = Stats.key stats "stores";
      k_rmw = Stats.key stats "rmw";
      k_wt_issued = Stats.key stats "wt_issued";
      k_wt_words = Stats.key stats "wt_words";
      retry;
      trace;
      n_retry = Trace.name trace "retry.resend";
      n_nack = Trace.name trace "tu.nack";
      n_chain = Trace.name trace "txn.chain";
      n_mshr = Trace.name trace (Printf.sprintf "l1.%d.mshr" cfg.id);
      n_sb = Trace.name trace (Printf.sprintf "l1.%d.sb" cfg.id);
      epoch = 0;
      flushing = false;
      drain_armed = false;
      release_waiters = [];
      stalled_stores = [];
    }
  in
  Network.register net ~id:cfg.id (fun msg -> handle t msg);
  t

let port t =
  {
    Port.load = (fun addr ~k -> load t addr ~k);
    store = (fun addr ~value ~k -> store t addr ~value ~k);
    rmw = (fun addr amo ~k -> rmw t addr amo ~k);
    acquire = (fun ~k -> acquire t ~k);
    (* No region support: a conservative full flash (paper II-C attributes
       regions to DeNovo). *)
    acquire_region = (fun ~region:_ ~k -> acquire t ~k);
    release = (fun ~k -> release t ~k);
    quiescent = (fun () -> quiescent t);
    describe_pending = (fun () -> describe_pending t);
  }

let stats t = t.stats
let holds_line t ~line = Cache_frame.find t.frame ~line <> None

let peek_word t (addr : Addr.t) =
  Option.map
    (fun l -> l.data.(addr.Addr.word))
    (Cache_frame.find t.frame ~line:addr.Addr.line)

let valid_lines t = Cache_frame.count t.frame
